// Command o2-wrapper is the generic O₂ wrapper of Figure 2: it serves an
// O₂ database's structural information, capability interface, documents and
// pushed OQL evaluation over the YAT wire protocol.
//
// Usage:
//
//	o2-wrapper -port 6066 [-artifacts 0] [-seed 42] [-system cultural] [-base art]
//	           [-metrics-addr HOST:PORT]
//
// With -artifacts 0 (the default) the wrapper serves the paper's running
// example (Nympheas, Waterloo Bridge, Old Canvas); larger values serve a
// deterministic generated trading database of that size.
//
// With -metrics-addr the wrapper serves request counters and latency
// histograms as JSON on /metrics plus pprof under /debug/pprof/, and
// records per-request spans that carry the mediator's trace id.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/datagen"
	"repro/internal/o2"
	"repro/internal/o2wrap"
	"repro/internal/obs"
	"repro/internal/wire"
)

func main() {
	port := flag.Int("port", 6066, "TCP port to listen on")
	artifacts := flag.Int("artifacts", 0, "size of the generated database (0: paper example)")
	seed := flag.Int64("seed", 42, "workload seed")
	system := flag.String("system", "cultural", "system name (cosmetic, as in Figure 2)")
	base := flag.String("base", "art", "base name (cosmetic, as in Figure 2)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (JSON) and /debug/pprof/ on this address")
	flag.Parse()

	var db *o2.DB
	if *artifacts <= 0 {
		db = datagen.PaperDB()
	} else {
		p := datagen.DefaultParams(*artifacts)
		p.Seed = *seed
		db = datagen.Generate(p).DB
	}
	w := o2wrap.New("o2artifact", db)
	schema := w.ExportSchema()

	ln, err := net.Listen("tcp", fmt.Sprintf(":%d", *port))
	if err != nil {
		fmt.Fprintf(os.Stderr, "o2-wrapper: %v\n", err)
		os.Exit(1)
	}
	exp := wire.Exported{
		Source:    w,
		Interface: w.ExportInterface(),
		Structures: map[string]wire.StructureRef{
			"artifacts": {Model: schema, Pattern: "Artifact"},
			"persons":   {Model: schema, Pattern: "Person"},
		},
	}
	if *metricsAddr != "" {
		exp.Obs = obs.NewObserver(nil)
		plane, err := obs.Serve(*metricsAddr, exp.Obs.Reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "o2-wrapper: -metrics-addr: %v\n", err)
			os.Exit(1)
		}
		defer plane.Close()
		fmt.Printf(" metrics and pprof at http://%s/\n", plane.Addr)
	}
	srv := wire.Serve(ln, exp)
	host, _ := os.Hostname()
	// The bound port is reported (not the flag value) so -port 0 gives
	// scripts an ephemeral port they can parse from this line.
	fmt.Printf(" o2-wrapper is running at %s:%d (system %s, base %s: %d artifacts, %d persons)\n",
		host, ln.Addr().(*net.TCPAddr).Port, *system, *base, db.ExtentSize("artifacts"), db.ExtentSize("persons"))
	defer srv.Close()
	select {} // serve until killed
}
