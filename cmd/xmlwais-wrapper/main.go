// Command xmlwais-wrapper is the generic XML-Wais wrapper of Figure 2: it
// indexes a collection of XML artworks under a Wais source configuration
// (museum.src) and serves the Artworks structure, the Section 4.2
// capability interface (whole-document binds + contains) and full-text
// pushed evaluation over the YAT wire protocol.
//
// Usage:
//
//	xmlwais-wrapper -port 6060 [-works 0] [-seed 42] [-directory museum.src]
//	                [-metrics-addr HOST:PORT]
//
// With -metrics-addr the wrapper serves request counters and latency
// histograms as JSON on /metrics plus pprof under /debug/pprof/, and
// records per-request spans that carry the mediator's trace id.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/wais"
	"repro/internal/waiswrap"
	"repro/internal/wire"
)

func main() {
	port := flag.Int("port", 6060, "TCP port to listen on")
	works := flag.Int("works", 0, "size of the generated collection (0: paper example)")
	seed := flag.Int64("seed", 42, "workload seed")
	directory := flag.String("directory", "", "Wais source configuration file (museum.src format)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (JSON) and /debug/pprof/ on this address")
	flag.Parse()

	cfgSrc := datagen.MuseumSrc
	if *directory != "" {
		b, err := os.ReadFile(*directory)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmlwais-wrapper: %v\n", err)
			os.Exit(1)
		}
		cfgSrc = string(b)
	}
	cfg, err := wais.ParseConfig(cfgSrc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmlwais-wrapper: %v\n", err)
		os.Exit(1)
	}

	var docs data.Forest
	if *works <= 0 {
		docs = datagen.PaperWorks()
	} else {
		p := datagen.DefaultParams(*works)
		p.Seed = *seed
		docs = datagen.Generate(p).Works
	}
	e := wais.New(cfg.Name)
	e.Configure(cfg)
	for _, d := range docs {
		e.Add(d)
	}
	w := waiswrap.New("xmlartwork", e)

	ln, err := net.Listen("tcp", fmt.Sprintf(":%d", *port))
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmlwais-wrapper: %v\n", err)
		os.Exit(1)
	}
	exp := wire.Exported{
		Source:    w,
		Interface: w.ExportInterface(),
		Structures: map[string]wire.StructureRef{
			"works": {Model: w.ExportStructure(), Pattern: "Works"},
		},
	}
	if *metricsAddr != "" {
		exp.Obs = obs.NewObserver(nil)
		plane, err := obs.Serve(*metricsAddr, exp.Obs.Reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmlwais-wrapper: -metrics-addr: %v\n", err)
			os.Exit(1)
		}
		defer plane.Close()
		fmt.Printf(" metrics and pprof at http://%s/\n", plane.Addr)
	}
	srv := wire.Serve(ln, exp)
	host, _ := os.Hostname()
	// The bound port is reported (not the flag value) so -port 0 gives
	// scripts an ephemeral port they can parse from this line.
	fmt.Printf(" xmlwais-wrapper is running at %s:%d (source %s: %d documents, %d terms)\n",
		host, ln.Addr().(*net.TCPAddr).Port, cfg.Name, e.Size(), e.Terms())
	defer srv.Close()
	select {} // serve until killed
}
