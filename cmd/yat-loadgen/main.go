// Command yat-loadgen drives concurrent query sessions against a
// yat-mediator front door (-serve) and reports latency percentiles,
// throughput and shed counts. Each session is a closed loop: it issues a
// query over POST /query, consumes the NDJSON stream to the terminal
// line, records the end-to-end latency, and immediately issues the next
// one until the run duration elapses. Sessions are spread across tenants
// (X-Tenant header), so the run exercises the front door's per-tenant
// admission control exactly as a fleet of real clients would.
//
// Usage:
//
//	yat-loadgen -addr HOST:PORT [-sessions N] [-duration D] [-tenants N]
//	            [-query Q] [-timeout D] [-out FILE]
//	            [-assert-p99-ms MS] [-assert-no-errors] [-assert-min-queries N]
//
// Sheds (HTTP 429/503 with a structured code) are counted separately from
// errors: shedding over-limit work is the front door doing its job. The
// -assert-* flags turn the run into a pass/fail smoke gate for CI.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/datagen"
)

// result is one session's tally.
type result struct {
	latencies []float64 // ms, successful queries only
	rows      int64
	queries   int64
	sheds     map[string]int64
	errors    int64
	firstErr  string
}

// report is the JSON written to -out.
type report struct {
	Addr          string           `json:"addr"`
	Sessions      int              `json:"sessions"`
	Tenants       int              `json:"tenants"`
	DurationSec   float64          `json:"duration_sec"`
	Queries       int64            `json:"queries"`
	Rows          int64            `json:"rows"`
	Errors        int64            `json:"errors"`
	FirstError    string           `json:"first_error,omitempty"`
	Shed          map[string]int64 `json:"shed"`
	ThroughputQPS float64          `json:"throughput_qps"`
	LatencyMS     latencySummary   `json:"latency_ms"`
}

type latencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

type ndLine struct {
	Done  bool   `json:"done"`
	Rows  int    `json:"rows"`
	Error string `json:"error"`
	Code  string `json:"code"`
}

func main() {
	addr := flag.String("addr", "", "front door address (host:port), required")
	sessions := flag.Int("sessions", 100, "concurrent closed-loop sessions")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	tenants := flag.Int("tenants", 8, "tenant ids the sessions spread across")
	query := flag.String("query", "", "query to issue (default: the paper's Q1)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	out := flag.String("out", "", "write the JSON report to this file")
	assertP99 := flag.Float64("assert-p99-ms", 0, "fail if p99 latency exceeds this many ms (0 = off)")
	assertNoErrors := flag.Bool("assert-no-errors", false, "fail on any transport or execution error (sheds excluded)")
	assertMinQueries := flag.Int64("assert-min-queries", 0, "fail if fewer queries completed")
	flag.Parse()

	if *addr == "" {
		fmt.Fprintln(os.Stderr, "yat-loadgen: -addr is required")
		os.Exit(2)
	}
	q := *query
	if q == "" {
		q = datagen.Q1Src
	}
	url := "http://" + *addr + "/query"
	body, err := json.Marshal(map[string]any{"query": q})
	if err != nil {
		fmt.Fprintln(os.Stderr, "yat-loadgen:", err)
		os.Exit(2)
	}

	// One shared transport sized for the session count: sessions reuse
	// kept-alive connections instead of churning ephemeral ports.
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *sessions + 8,
			MaxIdleConnsPerHost: *sessions + 8,
			IdleConnTimeout:     90 * time.Second,
		},
	}

	fmt.Printf("yat-loadgen: %d sessions x %v against %s (%d tenants)\n",
		*sessions, *duration, *addr, *tenants)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	results := make([]*result, *sessions)
	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		res := &result{sheds: map[string]int64{}}
		results[i] = res
		tenant := fmt.Sprintf("tenant-%d", i%*tenants)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				runOne(client, url, tenant, body, res)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(results, *addr, *sessions, *tenants, elapsed)
	fmt.Printf("  %d queries, %d rows, %.1f q/s | p50 %.2fms p90 %.2fms p99 %.2fms max %.2fms | shed %v | errors %d\n",
		rep.Queries, rep.Rows, rep.ThroughputQPS,
		rep.LatencyMS.P50, rep.LatencyMS.P90, rep.LatencyMS.P99, rep.LatencyMS.Max,
		rep.Shed, rep.Errors)
	if rep.FirstError != "" {
		fmt.Printf("  first error: %s\n", rep.FirstError)
	}
	if *out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "yat-loadgen: -out:", err)
			os.Exit(1)
		}
		fmt.Printf("  report written to %s\n", *out)
	}

	failed := false
	if *assertNoErrors && rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "yat-loadgen: FAIL: %d errors (first: %s)\n", rep.Errors, rep.FirstError)
		failed = true
	}
	if *assertP99 > 0 && rep.LatencyMS.P99 > *assertP99 {
		fmt.Fprintf(os.Stderr, "yat-loadgen: FAIL: p99 %.2fms exceeds bound %.2fms\n", rep.LatencyMS.P99, *assertP99)
		failed = true
	}
	if *assertMinQueries > 0 && rep.Queries < *assertMinQueries {
		fmt.Fprintf(os.Stderr, "yat-loadgen: FAIL: only %d queries completed (want >= %d)\n", rep.Queries, *assertMinQueries)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// runOne issues one query and folds its outcome into res (res is owned by
// one session goroutine; no locking needed).
func runOne(client *http.Client, url, tenant string, body []byte, res *result) {
	start := time.Now()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		res.fail(err.Error())
		return
	}
	req.Header.Set("X-Tenant", tenant)
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		res.fail(err.Error())
		return
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var last ndLine
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		last = ndLine{}
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			res.fail("bad NDJSON: " + sc.Text())
			return
		}
	}
	if err := sc.Err(); err != nil {
		res.fail(err.Error())
		return
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		code := last.Code
		if code == "" {
			code = fmt.Sprintf("http_%d", resp.StatusCode)
		}
		res.sheds[code]++
		// A shed is an immediate refusal; pause a beat so a rate-limited
		// session does not busy-spin against the bucket.
		time.Sleep(10 * time.Millisecond)
	case resp.StatusCode != http.StatusOK:
		res.fail(fmt.Sprintf("http %d: %s", resp.StatusCode, last.Error))
	case last.Error != "":
		res.fail(last.Code + ": " + last.Error)
	case !last.Done:
		res.fail("stream ended without terminal line")
	default:
		res.queries++
		res.rows += int64(last.Rows)
		res.latencies = append(res.latencies, float64(time.Since(start).Microseconds())/1000)
	}
}

func (r *result) fail(msg string) {
	r.errors++
	if r.firstErr == "" {
		r.firstErr = msg
	}
}

func summarize(results []*result, addr string, sessions, tenants int, elapsed time.Duration) report {
	rep := report{
		Addr:        addr,
		Sessions:    sessions,
		Tenants:     tenants,
		DurationSec: elapsed.Seconds(),
		Shed:        map[string]int64{},
	}
	var all []float64
	for _, r := range results {
		rep.Queries += r.queries
		rep.Rows += r.rows
		rep.Errors += r.errors
		if rep.FirstError == "" {
			rep.FirstError = r.firstErr
		}
		for code, n := range r.sheds {
			rep.Shed[code] += n
		}
		all = append(all, r.latencies...)
	}
	if elapsed > 0 {
		rep.ThroughputQPS = float64(rep.Queries) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Float64s(all)
		sum := 0.0
		for _, v := range all {
			sum += v
		}
		rep.LatencyMS = latencySummary{
			P50:  percentile(all, 50),
			P90:  percentile(all, 90),
			P99:  percentile(all, 99),
			Max:  all[len(all)-1],
			Mean: sum / float64(len(all)),
		}
	}
	return rep
}

// percentile reads the pth percentile from sorted ms samples
// (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
