// Out-of-process wrapper deployments. The in-process wireDeploy shares one
// heap between mediator and wrappers, which makes whole-process live-heap
// measurements attribute wrapper-side evaluation (a pushed plan binds the
// whole extent at the source) to the mediator. The memory experiments
// instead spawn the real wrapper binaries as child processes serving the
// same generated workload, so runtime.MemStats sees exactly the mediator's
// live set — the quantity the streaming engine bounds.
package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"time"

	"repro/internal/datagen"
	"repro/internal/mediator"
	"repro/internal/waiswrap"
	"repro/internal/wire"
)

// ensureWrappers returns a directory holding the o2-wrapper and
// xmlwais-wrapper binaries. With dir != "" the binaries must already be
// there (the Makefile builds them); with dir == "" they are built once into
// a temp dir with the local toolchain and removed by the cleanup func.
func ensureWrappers(dir string) (string, func(), error) {
	if dir != "" {
		for _, b := range []string{"o2-wrapper", "xmlwais-wrapper"} {
			if _, err := os.Stat(filepath.Join(dir, b)); err != nil {
				return "", nil, fmt.Errorf("wrappers dir %s: %w", dir, err)
			}
		}
		return dir, func() {}, nil
	}
	tmp, err := os.MkdirTemp("", "yat-wrappers-")
	if err != nil {
		return "", nil, err
	}
	// Import paths (not ./-relative ones) so the build works from any
	// working directory inside the module, e.g. under go test.
	cmd := exec.Command("go", "build", "-o", tmp, "repro/cmd/o2-wrapper", "repro/cmd/xmlwais-wrapper")
	if out, err := cmd.CombinedOutput(); err != nil {
		os.RemoveAll(tmp)
		return "", nil, fmt.Errorf("building wrappers: %v\n%s", err, out)
	}
	return tmp, func() { os.RemoveAll(tmp) }, nil
}

var portRe = regexp.MustCompile(`is running at \S*:(\d+)`)

// spawnWrapper starts one wrapper binary on an ephemeral port and parses
// the bound port from its startup line.
func spawnWrapper(bin string, args ...string) (addr string, stop func(), err error) {
	cmd := exec.Command(bin, args...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	stop = func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if m := portRe.FindStringSubmatch(sc.Text()); m != nil {
				ready <- m[1]
				break
			}
		}
		close(ready)
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case port, ok := <-ready:
		if !ok {
			stop()
			return "", nil, fmt.Errorf("%s exited before reporting its port", bin)
		}
		if _, err := strconv.Atoi(port); err != nil {
			stop()
			return "", nil, fmt.Errorf("%s reported port %q", bin, port)
		}
		return "127.0.0.1:" + port, stop, nil
	case <-time.After(30 * time.Second):
		stop()
		return "", nil, fmt.Errorf("%s did not report a port within 30s", bin)
	}
}

// connectWire dials a wrapper and registers it (interface and exported
// structures) with the mediator.
func connectWire(m *mediator.Mediator, addr string) (func(), error) {
	c, err := wire.DialWith(context.Background(), addr, wire.Options{})
	if err != nil {
		return nil, err
	}
	iface, err := c.ImportInterface()
	if err != nil {
		c.Close()
		return nil, err
	}
	if err := m.Connect(c, iface); err != nil {
		c.Close()
		return nil, err
	}
	sts, err := c.ImportStructures()
	if err != nil {
		c.Close()
		return nil, err
	}
	for doc, ref := range sts {
		m.ImportStructure(doc, ref.Model, ref.Pattern)
	}
	return func() { c.Close() }, nil
}

// externalDeploy spawns a wrapper pair serving the n-artifact workload as
// child processes and connects a fresh mediator to them, mirroring
// wireDeploy's view program and assumptions. Only the mediator lives in
// this process.
func externalDeploy(dir string, n int) (*mediator.Mediator, func(), error) {
	var closers []func()
	teardown := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	o2Addr, stopO2, err := spawnWrapper(filepath.Join(dir, "o2-wrapper"),
		"-port", "0", "-artifacts", strconv.Itoa(n))
	if err != nil {
		return nil, nil, err
	}
	closers = append(closers, stopO2)
	waisAddr, stopWais, err := spawnWrapper(filepath.Join(dir, "xmlwais-wrapper"),
		"-port", "0", "-works", strconv.Itoa(n))
	if err != nil {
		teardown()
		return nil, nil, err
	}
	closers = append(closers, stopWais)
	m := mediator.New()
	for _, addr := range []string{o2Addr, waisAddr} {
		cl, err := connectWire(m, addr)
		if err != nil {
			teardown()
			return nil, nil, err
		}
		closers = append(closers, cl)
	}
	m.RegisterFunc("contains", waiswrap.Contains)
	if err := m.LoadProgram(datagen.View1Src); err != nil {
		teardown()
		return nil, nil, err
	}
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")
	return m, teardown, nil
}
