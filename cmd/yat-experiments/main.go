// Command yat-experiments regenerates every table of EXPERIMENTS.md: the
// per-figure experiments (F7, F8, F9), the transfer sweep (E10), the
// information-passing crossover (E11), the source-index ablation (E12),
// the optimizer-round ablation (E13), the parallel-engine worker sweep
// (E15, over live TCP wrappers), the batched-pushdown/cache sweep (E16),
// the fault-tolerance experiment (E17, Q2 under injected transport
// faults) and the profiling experiment (E18, Q2's per-operator span tree
// and the cost of tracing itself). Each table reports measured wall time,
// shipped bytes/tuples and source calls; correctness is asserted against
// the generator's ground truth on every run.
//
// Usage:
//
//	yat-experiments [-quick]
//	yat-experiments -bench-json BENCH_PR7.json
//
// With -bench-json, only the Fig. 9 Q2 measurements run (per-row, batched,
// parallel, warm cache, a 1%-fault-rate recovery variant, plus the same
// query compiled from XQuery-FLWR text) and the results are written as
// JSON for CI trend tracking instead of the human-readable tables.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"net"
	"os"
	"runtime"
	"runtime/metrics"
	"time"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/filter"
	"repro/internal/mediator"
	"repro/internal/o2wrap"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/tab"
	"repro/internal/waiswrap"
	"repro/internal/wire"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sizes, fewer repetitions")
	benchOut := flag.String("bench-json", "", "write Fig. 9 Q2 benchmark results as JSON to this file and exit")
	feedBenchOut := flag.String("feed-bench-json", "", "write the E23 feed-family benchmark results as JSON to this file and exit")
	streamSmoke := flag.Bool("stream-smoke", false, "assert the streaming engine's memory/latency/identity promises on a large-n Q2 and exit")
	wrappersDir := flag.String("wrappers", "", "directory with prebuilt o2-wrapper and xmlwais-wrapper binaries for out-of-process memory measurements (empty: build them once with the local toolchain)")
	flag.Parse()
	if *streamSmoke {
		if err := runStreamSmoke(*wrappersDir); err != nil {
			fmt.Fprintf(os.Stderr, "yat-experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *feedBenchOut != "" {
		n, sweep := 10000, []int{2000, 6000, 20000}
		if *quick {
			n, sweep = 2000, []int{400, 1200, 4000}
		}
		if err := feedBenchJSON(*feedBenchOut, n, sweep); err != nil {
			fmt.Fprintf(os.Stderr, "yat-experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchOut != "" {
		n := 1000
		if *quick {
			n = 200
		}
		if err := benchJSON(*benchOut, n, *wrappersDir); err != nil {
			fmt.Fprintf(os.Stderr, "yat-experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	sizes := []int{250, 1000, 4000}
	sweep := []int{250, 500, 1000, 2000, 4000}
	if *quick {
		sizes = []int{100, 400}
		sweep = []int{100, 200, 400}
	}
	if err := run(sizes, sweep); err != nil {
		fmt.Fprintf(os.Stderr, "yat-experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(sizes, sweep []int) error {
	fmt.Println("YAT reproduction experiments — regenerating the EXPERIMENTS.md tables")
	fmt.Println("(deterministic workload: datagen.DefaultParams, seed 42)")
	if err := figure7(sizes); err != nil {
		return err
	}
	if err := figure8(sizes); err != nil {
		return err
	}
	if err := figure9(sizes); err != nil {
		return err
	}
	if err := e10(sweep); err != nil {
		return err
	}
	if err := e11(); err != nil {
		return err
	}
	if err := e12(); err != nil {
		return err
	}
	if err := e13(sizes[len(sizes)-1]); err != nil {
		return err
	}
	if err := e15(sizes[len(sizes)-2]); err != nil {
		return err
	}
	if err := e16(sizes[len(sizes)-2]); err != nil {
		return err
	}
	if err := e17(sizes[len(sizes)-2]); err != nil {
		return err
	}
	if err := e18(sizes[len(sizes)-2]); err != nil {
		return err
	}
	return nil
}

// e18 profiles Fig. 9's Q2 over the wire deployment: where the time goes
// (the rendered per-operator span tree) and what tracing itself costs
// (batched Q2 timed with tracing off vs. on, plus the accounting invariant
// that span counts sum to global Stats).
func e18(n int) error {
	const latency = 2 * time.Millisecond
	fmt.Printf("\n== E18: profiled Q2 over wire (artifacts=%d, per-call latency %s) ==\n", n, latency)
	m, _, teardown, err := wireDeploy(n, latency)
	if err != nil {
		return err
	}
	defer teardown()
	ctx := context.Background()

	off := mediator.ExecOptions{Parallelism: 1}
	on := mediator.ExecOptions{Parallelism: 1, Trace: true}
	plain, dOff, err := med(func() (*mediator.Result, error) {
		return m.ExecuteContext(ctx, datagen.Q2Src, off)
	})
	if err != nil {
		return fmt.Errorf("E18 untraced: %w", err)
	}
	traced, dOn, err := med(func() (*mediator.Result, error) {
		return m.ExecuteContext(ctx, datagen.Q2Src, on)
	})
	if err != nil {
		return fmt.Errorf("E18 traced: %w", err)
	}
	if !plain.Tab.Equal(traced.Tab) {
		return fmt.Errorf("E18: tracing changed the result rows")
	}
	if traced.Trace == nil {
		return fmt.Errorf("E18: no trace collected")
	}
	tc := traced.Trace.TreeCounts()
	if tc.Pushes != traced.Stats.SourcePushes || tc.Tuples != traced.Stats.TuplesShipped ||
		tc.Fetches != traced.Stats.SourceFetches {
		return fmt.Errorf("E18: span counts %+v do not sum to Stats %+v", tc, traced.Stats)
	}
	fmt.Printf("%-22s %12s %8s %8s\n", "variant", "time", "rows", "spans")
	fmt.Printf("%-22s %12s %8d %8s\n", "trace off", dOff.Round(10*time.Microsecond), plain.Tab.Len(), "-")
	fmt.Printf("%-22s %12s %8d %8d\n", "trace on", dOn.Round(10*time.Microsecond), traced.Tab.Len(), traced.Trace.SpanCount())
	fmt.Println("\nprofile (trace", traced.Trace.ID+"):")
	fmt.Print(obs.Render(traced.Trace))
	return nil
}

func setup(n int) (*mediator.Mediator, *datagen.Workload, error) {
	w := datagen.Generate(datagen.DefaultParams(n))
	m, err := culturalMediator(w)
	return m, w, err
}

func culturalMediator(w *datagen.Workload) (*mediator.Mediator, error) {
	ow := o2wrap.New("o2artifact", w.DB)
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(w.Works))
	m := mediator.New()
	if err := m.Connect(ow, ow.ExportInterface()); err != nil {
		return nil, err
	}
	if err := m.Connect(ww, ww.ExportInterface()); err != nil {
		return nil, err
	}
	schema := ow.ExportSchema()
	m.ImportStructure("artifacts", schema, "Artifact")
	m.ImportStructure("persons", schema, "Person")
	m.ImportStructure("works", ww.ExportStructure(), "Works")
	m.RegisterFunc("contains", waiswrap.Contains)
	for name, fn := range ow.Funcs() {
		m.RegisterFunc(name, fn)
	}
	if err := m.LoadProgram(datagen.View1Src); err != nil {
		return nil, err
	}
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")
	return m, nil
}

func med(fn func() (*mediator.Result, error)) (*mediator.Result, time.Duration, error) {
	start := time.Now()
	res, err := fn()
	return res, time.Since(start), err
}

const rowFmt = "%-26s %8d %12s %10d %8d %8d %8d\n"
const headFmt = "%-26s %8s %12s %10s %8s %8s %8s\n"

func printHead(title string) {
	fmt.Printf("\n== %s ==\n", title)
	fmt.Printf(headFmt, "plan", "rows", "time", "bytes", "tuples", "fetches", "pushes")
}

func printRow(name string, res *mediator.Result, d time.Duration) {
	fmt.Printf(rowFmt, name, res.Tab.Len(), d.Round(10*time.Microsecond),
		res.Stats.BytesShipped, res.Stats.TuplesShipped,
		res.Stats.SourceFetches, res.Stats.SourcePushes)
}

// figure7 times the three equivalent Figure 7 plans (monolithic Bind,
// DJoin split, Join with the persons extent).
func figure7(sizes []int) error {
	fmt.Println("\n== F7: Bind splitting and DJoin-to-Join (Figure 7, upper row) ==")
	fmt.Printf("%-10s %20s %20s %20s\n", "artifacts", "monolithic Bind", "DJoin split", "Join w/ extent")
	for _, n := range sizes {
		w := datagen.Generate(datagen.DefaultParams(n))
		plans := fig7Plans()
		var times [3]time.Duration
		var rows [3]int
		for i, plan := range plans {
			p := &algebra.Project{From: plan, Cols: []string{"$t", "$o"}}
			ctx := sourceCtx(w)
			start := time.Now()
			res, err := p.Eval(ctx)
			if err != nil {
				return err
			}
			times[i] = time.Since(start)
			rows[i] = res.Len()
		}
		if rows[0] != rows[1] || rows[0] != rows[2] {
			return fmt.Errorf("F7 plans disagree: %v", rows)
		}
		fmt.Printf("%-10d %20s %20s %20s   (%d rows each)\n", n,
			times[0].Round(10*time.Microsecond), times[1].Round(10*time.Microsecond),
			times[2].Round(10*time.Microsecond), rows[0])
	}
	return nil
}

func fig7Plans() [3]algebra.Op {
	mono := algebra.Op(&algebra.Bind{Doc: "artifacts", F: filter.MustParse(
		`set[ *class[ artifact.tuple[ title: $t,
		      owners.list[ *class[ person.tuple[ name: $o ] ] ] ] ] ]`)})
	split := algebra.Op(&algebra.DJoin{
		L: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
			`set[ *class[ artifact.tuple[ title: $t, owners@$ow ] ] ]`)},
		R: &algebra.Bind{Col: "$ow", F: filter.MustParse(
			`owners.list[ *class[ person.tuple[ name: $o ] ] ]`)},
	})
	join := algebra.Op(&algebra.Join{
		L: &algebra.MapExpr{
			From: &algebra.DJoin{
				L: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
					`set[ *class[ artifact.tuple[ title: $t, owners@$ow ] ] ]`)},
				R: &algebra.Bind{Col: "$ow", F: filter.MustParse(`owners.list[ *%@$ref ]`)},
			},
			Col: "$rid", E: algebra.MustParseExpr(`id($ref)`),
		},
		R: &algebra.MapExpr{
			From: &algebra.Bind{Doc: "persons", F: filter.MustParse(
				`set[ *class@$p[ person.tuple[ name: $o ] ] ]`)},
			Col: "$pid", E: algebra.MustParseExpr(`id($p)`),
		},
		Pred: algebra.MustParseExpr(`$rid = $pid`),
	})
	return [3]algebra.Op{mono, split, join}
}

func sourceCtx(w *datagen.Workload) *algebra.Context {
	ctx := algebra.NewContext()
	ctx.Sources["o2artifact"] = o2wrap.New("o2artifact", w.DB)
	ctx.Sources["xmlartwork"] = waiswrap.New("xmlartwork", datagen.NewWaisEngine(w.Works))
	ctx.Funcs["contains"] = waiswrap.Contains
	return ctx
}

func figure8(sizes []int) error {
	for _, n := range sizes {
		m, w, err := setup(n)
		if err != nil {
			return err
		}
		printHead(fmt.Sprintf("F8: Q1 naive vs optimized (artifacts=%d, ground truth %d rows)", n, len(w.GivernyTitles)))
		naive, nd, err := med(func() (*mediator.Result, error) { return m.QueryNaive(datagen.Q1Src) })
		if err != nil {
			return err
		}
		opt, od, err := med(func() (*mediator.Result, error) { return m.Query(datagen.Q1Src) })
		if err != nil {
			return err
		}
		printRow("naive (materialize view)", naive, nd)
		printRow("optimized (Fig. 8)", opt, od)
		if naive.Tab.Len() != len(w.GivernyTitles) || !naive.Tab.EqualUnordered(opt.Tab) {
			return fmt.Errorf("F8 correctness check failed at n=%d", n)
		}
	}
	return nil
}

func figure9(sizes []int) error {
	for _, n := range sizes {
		m, w, err := setup(n)
		if err != nil {
			return err
		}
		printHead(fmt.Sprintf("F9: Q2 naive vs pushdown (artifacts=%d, ground truth %d rows)", n, len(w.Q2Titles)))
		naive, nd, err := med(func() (*mediator.Result, error) { return m.QueryNaive(datagen.Q2Src) })
		if err != nil {
			return err
		}
		opt, od, err := med(func() (*mediator.Result, error) { return m.Query(datagen.Q2Src) })
		if err != nil {
			return err
		}
		printRow("naive (materialize view)", naive, nd)
		printRow("pushdown + info passing", opt, od)
		if naive.Tab.Len() != len(w.Q2Titles) || !naive.Tab.EqualUnordered(opt.Tab) {
			return fmt.Errorf("F9 correctness check failed at n=%d", n)
		}
	}
	return nil
}

func e10(sweep []int) error {
	fmt.Println("\n== E10: transfer volume sweep (Q2 bytes shipped, naive vs optimized) ==")
	fmt.Printf("%-10s %12s %12s %8s\n", "artifacts", "naive", "optimized", "ratio")
	for _, n := range sweep {
		m, _, err := setup(n)
		if err != nil {
			return err
		}
		naive, err := m.QueryNaive(datagen.Q2Src)
		if err != nil {
			return err
		}
		opt, err := m.Query(datagen.Q2Src)
		if err != nil {
			return err
		}
		ratio := float64(naive.Stats.BytesShipped) / float64(maxI64(opt.Stats.BytesShipped, 1))
		fmt.Printf("%-10d %12d %12d %7.1fx\n", n, naive.Stats.BytesShipped, opt.Stats.BytesShipped, ratio)
	}
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func e11() error {
	fmt.Println("\n== E11: information passing crossover (bind join vs fetch-all join, artifacts=2000) ==")
	fmt.Printf("%-8s %14s %14s %14s %14s\n", "left", "bindjoin time", "fetchall time", "bindjoin tup", "fetchall tup")
	w := datagen.Generate(datagen.DefaultParams(2000))
	o2Bind := func() algebra.Op {
		return &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
			`set[ *class[ artifact.tuple[ title: $t2, price: $p ] ] ]`)}
	}
	for _, k := range []int{1, 16, 128, 1024, 1600} {
		left := tab.New("$t")
		for i := 0; i < k && i < len(w.Works); i++ {
			title := w.Works[i].Child("title")
			left.Add(tab.AtomCell(*title.Atom))
		}
		bind := &algebra.DJoin{
			L: &algebra.Literal{T: left},
			R: &algebra.SourceQuery{Source: "o2artifact",
				Plan: &algebra.Select{From: o2Bind(), Pred: algebra.MustParseExpr(`$t2 = $t`)}},
		}
		fetch := &algebra.Join{
			L:    &algebra.Literal{T: left},
			R:    &algebra.SourceQuery{Source: "o2artifact", Plan: o2Bind()},
			Pred: algebra.MustParseExpr(`$t = $t2`),
		}
		ctx1, ctx2 := sourceCtx(w), sourceCtx(w)
		t1 := time.Now()
		r1, err := bind.Eval(ctx1)
		if err != nil {
			return err
		}
		d1 := time.Since(t1)
		t2 := time.Now()
		r2, err := fetch.Eval(ctx2)
		if err != nil {
			return err
		}
		d2 := time.Since(t2)
		if !r1.EqualUnordered(r2) {
			return fmt.Errorf("E11 plans disagree at left=%d (%d vs %d rows)", k, r1.Len(), r2.Len())
		}
		fmt.Printf("%-8d %14s %14s %14d %14d\n", k,
			d1.Round(10*time.Microsecond), d2.Round(10*time.Microsecond),
			ctx1.Stats.TuplesShipped, ctx2.Stats.TuplesShipped)
	}
	return nil
}

func e12() error {
	fmt.Println("\n== E12: source index ablation (pushed point query, artifacts=5000) ==")
	fmt.Printf("%-10s %14s\n", "variant", "time/query")
	for _, indexed := range []bool{false, true} {
		p := datagen.DefaultParams(5000)
		p.NoIndexes = !indexed
		w := datagen.Generate(p)
		ow := o2wrap.New("o2artifact", w.DB)
		plan := &algebra.Select{
			From: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
				`set[ *class[ artifact.tuple[ title: $t, price: $p ] ] ]`)},
			Pred: algebra.MustParseExpr(`$t = "Painting 777"`),
		}
		const reps = 50
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := ow.Push(plan, nil); err != nil {
				return err
			}
		}
		name := "scan"
		if indexed {
			name = "indexed"
		}
		fmt.Printf("%-10s %14s\n", name, (time.Since(start) / reps).Round(time.Microsecond))
	}
	return nil
}

// e13 isolates the optimizer rounds on Q2: composition only, plus
// capability pushdown, plus information passing.
func e13(n int) error {
	m, w, err := setup(n)
	if err != nil {
		return err
	}
	printHead(fmt.Sprintf("E13: optimizer-round ablation on Q2 (artifacts=%d)", n))
	variants := []struct {
		name string
		tune func(*optimizer.Options)
	}{
		{"round 1 only", func(o *optimizer.Options) { o.DisablePushdown = true; o.InfoPassing = false }},
		{"rounds 1+2", func(o *optimizer.Options) { o.InfoPassing = false }},
		{"rounds 1+2+3 (full)", nil},
	}
	var first *mediator.Result
	for _, v := range variants {
		res, d, err := med(func() (*mediator.Result, error) { return m.QueryCustom(datagen.Q2Src, v.tune) })
		if err != nil {
			return err
		}
		printRow(v.name, res, d)
		if first == nil {
			first = res
		} else if !first.Tab.EqualUnordered(res.Tab) {
			return fmt.Errorf("E13 variants disagree (%s)", v.name)
		}
	}
	if first.Tab.Len() != len(w.Q2Titles) {
		return fmt.Errorf("E13 correctness check failed")
	}
	return nil
}

// delaySource adds a fixed service latency to every fetch and push — the
// wide-area round trip the parallel engine overlaps.
type delaySource struct {
	algebra.Source
	d time.Duration
}

func (s *delaySource) Fetch(doc string) (data.Forest, error) {
	time.Sleep(s.d)
	return s.Source.Fetch(doc)
}

func (s *delaySource) Push(plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	time.Sleep(s.d)
	return s.Source.Push(plan, params)
}

// PushBatch pays the latency once per batch — a batched push is a single
// round trip in the Section 5.3 cost model; the per-binding evaluation is
// local work at the wrapper.
func (s *delaySource) PushBatch(plan algebra.Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error) {
	return s.PushBatchContext(context.Background(), plan, bindings)
}

func (s *delaySource) PushBatchContext(ctx context.Context, plan algebra.Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error) {
	time.Sleep(s.d)
	if bs, ok := s.Source.(algebra.BatchSource); ok {
		return bs.PushBatchContext(ctx, plan, bindings)
	}
	out := make([]*tab.Tab, len(bindings))
	for i, b := range bindings {
		t, err := s.Source.Push(plan, b)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// FetchStream keeps the wrapped source's streaming capability visible
// through the latency shim (embedding the Source interface would hide it):
// the round-trip cost is paid once at open, the chunks flow at memory speed.
func (s *delaySource) FetchStream(ctx context.Context, doc string) (algebra.ForestCursor, error) {
	time.Sleep(s.d)
	if ss, ok := s.Source.(algebra.StreamSource); ok {
		return ss.FetchStream(ctx, doc)
	}
	f, err := s.Source.Fetch(doc)
	if err != nil {
		return nil, err
	}
	return algebra.NewSliceForestCursor(f, tab.DefaultStreamChunk), nil
}

// PushStream is FetchStream for pushed plans.
func (s *delaySource) PushStream(ctx context.Context, plan algebra.Op, params map[string]tab.Cell) (tab.Cursor, error) {
	time.Sleep(s.d)
	if ps, ok := s.Source.(algebra.PushStreamSource); ok {
		return ps.PushStream(ctx, plan, params)
	}
	t, err := s.Source.Push(plan, params)
	if err != nil {
		return nil, err
	}
	return tab.NewSliceCursor(t, tab.DefaultStreamChunk), nil
}

// wireDeploy stands up the Figure 2 scenario over real TCP — both wrappers
// behind wire servers with the given per-round-trip latency — and returns a
// mediator connected through wire clients plus a teardown function.
func wireDeploy(n int, latency time.Duration) (*mediator.Mediator, *datagen.Workload, func(), error) {
	return wireDeployFaulty(n, latency, [2]*faults.Injector{}, nil)
}

// wireDeployFaulty is wireDeploy with per-wrapper fault injectors (nil =
// clean) and an optional transport retry policy override for the mediator's
// wire clients (nil = default).
func wireDeployFaulty(n int, latency time.Duration, inj [2]*faults.Injector, retry *wire.RetryPolicy) (*mediator.Mediator, *datagen.Workload, func(), error) {
	w := datagen.Generate(datagen.DefaultParams(n))
	ow := o2wrap.New("o2artifact", w.DB)
	schema := ow.ExportSchema()
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(w.Works))
	exps := []wire.Exported{
		{Source: &delaySource{Source: ow, d: latency}, Interface: ow.ExportInterface(),
			Structures: map[string]wire.StructureRef{
				"artifacts": {Model: schema, Pattern: "Artifact"},
				"persons":   {Model: schema, Pattern: "Person"},
			}},
		{Source: &delaySource{Source: ww, d: latency}, Interface: ww.ExportInterface(),
			Structures: map[string]wire.StructureRef{
				"works": {Model: ww.ExportStructure(), Pattern: "Works"},
			}},
	}
	m := mediator.New()
	var closers []func()
	teardown := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	for i, exp := range exps {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			teardown()
			return nil, nil, nil, err
		}
		var serveLn net.Listener = ln
		if inj[i] != nil {
			serveLn = inj[i].Listener(ln)
		}
		srv := wire.Serve(serveLn, exp)
		closers = append(closers, srv.Close)
		c, err := wire.DialWith(context.Background(), srv.Addr(), wire.Options{Retry: retry})
		if err != nil {
			teardown()
			return nil, nil, nil, err
		}
		closers = append(closers, func() { c.Close() })
		iface, err := c.ImportInterface()
		if err != nil {
			teardown()
			return nil, nil, nil, err
		}
		if err := m.Connect(c, iface); err != nil {
			teardown()
			return nil, nil, nil, err
		}
		sts, err := c.ImportStructures()
		if err != nil {
			teardown()
			return nil, nil, nil, err
		}
		for doc, ref := range sts {
			m.ImportStructure(doc, ref.Model, ref.Pattern)
		}
	}
	m.RegisterFunc("contains", waiswrap.Contains)
	if err := m.LoadProgram(datagen.View1Src); err != nil {
		teardown()
		return nil, nil, nil, err
	}
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")
	return m, w, teardown, nil
}

// e15 sweeps the parallel execution engine's worker count on Q2's pushdown
// plan against wire wrappers with a simulated 2ms service latency. Per-row
// information passing is forced (PerRowDJoin) so the experiment keeps
// measuring what it always measured — the engine overlapping one round trip
// per DJoin outer row; E16 measures what batching saves on top. Rows and
// push counts are asserted identical to serial at every point.
func e15(n int) error {
	const latency = 2 * time.Millisecond
	m, w, teardown, err := wireDeploy(n, latency)
	if err != nil {
		return err
	}
	defer teardown()

	printHead(fmt.Sprintf("E15: parallel engine on Q2 over wire, per-row passing, %v source latency (artifacts=%d)", latency, n))
	var serial *mediator.Result
	for _, workers := range []int{1, 2, 4, 8} {
		opts := mediator.ExecOptions{Parallelism: workers, Timeout: time.Minute, PerRowDJoin: true}
		res, d, err := med(func() (*mediator.Result, error) {
			return m.ExecuteContext(context.Background(), datagen.Q2Src, opts)
		})
		if err != nil {
			return err
		}
		printRow(fmt.Sprintf("workers=%d", workers), res, d)
		if serial == nil {
			serial = res
		} else if !serial.Tab.Equal(res.Tab) || serial.Stats.SourcePushes != res.Stats.SourcePushes {
			return fmt.Errorf("E15: workers=%d diverges from serial", workers)
		}
	}
	if serial.Tab.Len() != len(w.Q2Titles) {
		return fmt.Errorf("E15 correctness check failed")
	}
	return nil
}

// e16 measures set-at-a-time information passing on Q2 over the same wire
// deployment as E15: per-row pushes (batch size 1) versus batched pushes at
// chunk sizes 8 and 64, cold versus warm wrapper-result cache. Every variant
// is asserted row-identical to the per-row baseline.
func e16(n int) error {
	const latency = 2 * time.Millisecond
	m, w, teardown, err := wireDeploy(n, latency)
	if err != nil {
		return err
	}
	defer teardown()

	printHead(fmt.Sprintf("E16: batched DJoin pushdown on Q2 over wire, %v source latency (artifacts=%d)", latency, n))
	baseline, d, err := med(func() (*mediator.Result, error) {
		return m.ExecuteContext(context.Background(), datagen.Q2Src,
			mediator.ExecOptions{Parallelism: 1, PerRowDJoin: true})
	})
	if err != nil {
		return err
	}
	printRow("batch=1 (per row)", baseline, d)
	if baseline.Tab.Len() != len(w.Q2Titles) {
		return fmt.Errorf("E16 correctness check failed")
	}
	for _, chunk := range []int{8, 64} {
		res, d, err := med(func() (*mediator.Result, error) {
			return m.ExecuteContext(context.Background(), datagen.Q2Src,
				mediator.ExecOptions{Parallelism: 1, BatchChunk: chunk})
		})
		if err != nil {
			return err
		}
		printRow(fmt.Sprintf("batch=%d", chunk), res, d)
		if !res.Tab.Equal(baseline.Tab) {
			return fmt.Errorf("E16: batch=%d diverges from per-row rows", chunk)
		}
	}
	// Cold fills the mediator's result cache, warm reruns against it.
	cold, d, err := med(func() (*mediator.Result, error) {
		return m.ExecuteContext(context.Background(), datagen.Q2Src,
			mediator.ExecOptions{Parallelism: 1, CacheSize: 4096})
	})
	if err != nil {
		return err
	}
	printRow("batch=64, cache cold", cold, d)
	warm, d, err := med(func() (*mediator.Result, error) {
		return m.ExecuteContext(context.Background(), datagen.Q2Src,
			mediator.ExecOptions{Parallelism: 1, CacheSize: 4096})
	})
	if err != nil {
		return err
	}
	printRow("batch=64, cache warm", warm, d)
	if !warm.Tab.Equal(baseline.Tab) {
		return fmt.Errorf("E16: warm-cache rows diverge")
	}
	if warm.Stats.CacheHits == 0 || warm.Stats.SourcePushes != 0 {
		return fmt.Errorf("E16: warm cache hits=%d pushes=%d, want >0 and 0",
			warm.Stats.CacheHits, warm.Stats.SourcePushes)
	}
	fmt.Printf("   warm cache: hits=%d misses=%d (cold run: misses=%d)\n",
		warm.Stats.CacheHits, warm.Stats.CacheMisses, cold.Stats.CacheMisses)
	return nil
}

// e17 exercises the fault-tolerance layer on Q2 over the wire deployment:
// first a clean run with the retry layer disabled versus enabled (the retry
// machinery must cost nothing and change nothing when the network behaves),
// then per-row Q2 under 1% and 10% injected transport faults (dropped
// connections, truncated frames, garbled payloads). Every faulted run must
// return rows identical to the clean baseline — the client absorbs the
// faults with retries and redials, which the table reports.
func e17(n int) error {
	const latency = 500 * time.Microsecond
	fmt.Printf("\n== E17: fault tolerance on Q2 over wire, per-row passing (artifacts=%d) ==\n", n)
	fmt.Printf("%-26s %8s %12s %9s %8s %8s\n", "variant", "rows", "time", "injected", "retries", "redials")

	opts := mediator.ExecOptions{Parallelism: 1, PerRowDJoin: true, Timeout: time.Minute}
	run := func(name string, rate float64, seeds [2]int64, retry *wire.RetryPolicy) (*tab.Tab, int, error) {
		var inj [2]*faults.Injector
		if rate > 0 {
			for i := range inj {
				inj[i] = faults.New(faults.Config{
					Seed:  seeds[i],
					Rate:  rate,
					Kinds: []faults.Kind{faults.Drop, faults.Truncate, faults.Garble},
					// Let the hello/interface/structures setup exchanges
					// through so faults land on query traffic.
					After: 3,
				})
			}
		}
		m, w, teardown, err := wireDeployFaulty(n, latency, inj, retry)
		if err != nil {
			return nil, 0, err
		}
		defer teardown()
		res, d, err := med(func() (*mediator.Result, error) {
			return m.ExecuteContext(context.Background(), datagen.Q2Src, opts)
		})
		if err != nil {
			return nil, 0, fmt.Errorf("E17 %s: %w", name, err)
		}
		if res.Tab.Len() != len(w.Q2Titles) {
			return nil, 0, fmt.Errorf("E17 %s: got %d rows, ground truth %d", name, res.Tab.Len(), len(w.Q2Titles))
		}
		injected := 0
		for _, in := range inj {
			if in != nil {
				injected += in.Injected()
			}
		}
		fmt.Printf("%-26s %8d %12s %9d %8d %8d\n", name, res.Tab.Len(),
			d.Round(10*time.Microsecond), injected, res.Stats.Retries, res.Stats.Redials)
		return res.Tab, injected, nil
	}

	noRetry := wire.DefaultRetryPolicy
	noRetry.MaxAttempts = 1
	clean, _, err := run("clean, retries off", 0, [2]int64{}, &noRetry)
	if err != nil {
		return err
	}
	base, _, err := run("clean, retries on", 0, [2]int64{}, nil)
	if err != nil {
		return err
	}
	if !base.Equal(clean) {
		return fmt.Errorf("E17: the retry layer changed clean results")
	}
	// At 10% the default 3 attempts leave a small chance of three faults in
	// a row exhausting the budget; a deeper budget makes recovery certain.
	hard := wire.DefaultRetryPolicy
	hard.MaxAttempts = 6
	for _, f := range []struct {
		name  string
		rate  float64
		seeds [2]int64
		retry *wire.RetryPolicy
	}{
		{"faults 1%", 0.01, [2]int64{17, 23}, nil},
		{"faults 10%", 0.10, [2]int64{29, 31}, &hard},
	} {
		got, injected, err := run(f.name, f.rate, f.seeds, f.retry)
		if err != nil {
			return err
		}
		if !got.Equal(base) {
			return fmt.Errorf("E17 %s: rows diverge from clean baseline", f.name)
		}
		if injected == 0 && f.rate >= 0.05 {
			return fmt.Errorf("E17 %s: no faults injected — nothing was exercised", f.name)
		}
	}
	return nil
}

// benchRecord is one -bench-json measurement of Q2 over the wire deployment.
type benchRecord struct {
	Name      string  `json:"name"`
	NsPerOp   int64   `json:"ns_per_op"`
	Pushes    int     `json:"source_pushes"`
	CacheHits int     `json:"cache_hits"`
	Rows      int     `json:"rows"`
	Speedup   float64 `json:"speedup_vs_per_row"`
	Retries   int     `json:"retries"`
	Redials   int     `json:"redials"`
	Injected  int     `json:"faults_injected,omitempty"`
	PeakAlloc int64   `json:"peak_alloc_bytes,omitempty"`
	FirstRow  int64   `json:"first_row_ns,omitempty"`
}

// liveSampler tracks the live-heap high-water mark of a measurement by
// forcing a collection at every sample and reading /gc/heap/live:bytes —
// the bytes the completed mark found reachable. (HeapAlloc right after a
// forced GC would also include whatever the still-running query goroutines
// allocated during the collection, a noise term that grows with allocation
// rate and run length; the per-mark live metric does not.) The recorded
// peak is therefore the largest set of rows and trees simultaneously
// retained — the quantity streaming bounds and materialization does not.
// The pre-run baseline is subtracted, so the workload and deployment
// themselves do not count.
type liveSampler struct {
	stop chan struct{}
	done chan struct{}
	base uint64
	peak uint64
}

// liveHeap forces a collection and returns the bytes its mark phase found
// reachable.
func liveHeap() uint64 {
	runtime.GC()
	sample := []metrics.Sample{{Name: "/gc/heap/live:bytes"}}
	metrics.Read(sample)
	return sample[0].Value.Uint64()
}

func startLiveSampler(period time.Duration) *liveSampler {
	s := &liveSampler{stop: make(chan struct{}), done: make(chan struct{}), base: liveHeap()}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				if live := liveHeap(); live > s.peak {
					s.peak = live
				}
			}
		}
	}()
	return s
}

// stopPeak ends sampling, takes one final forced-GC sample (so short runs
// whose result is still retained are measured even if no tick fired) and
// returns the peak live bytes above the baseline.
func (s *liveSampler) stopPeak() int64 {
	close(s.stop)
	<-s.done
	if live := liveHeap(); live > s.peak {
		s.peak = live
	}
	if s.peak <= s.base {
		return 0
	}
	return int64(s.peak - s.base)
}

// hashRow folds one row into an order-sensitive hash; cell and row
// separators keep ("ab","c") distinct from ("a","bc").
func hashRow(h hash.Hash64, r tab.Row) {
	for _, c := range r {
		io.WriteString(h, c.String())
		h.Write([]byte{0x1f})
	}
	h.Write([]byte{0x1e})
}

func tabHash(t *tab.Tab) uint64 {
	h := fnv.New64a()
	for _, r := range t.Rows {
		hashRow(h, r)
	}
	return h.Sum64()
}

// streamRun is one drained streamed query: row count and order-sensitive
// content hash (the rows themselves are never retained — that is the point),
// first-row and total latency, and the settled Result.
type streamRun struct {
	rows     int
	sum      uint64
	firstRow time.Duration
	total    time.Duration
	res      *mediator.Result
}

// streamMeasure runs src on the pipelined path without materializing: rows
// are counted and hashed as chunks arrive and then dropped, so the live set
// stays bounded while byte-identity against a materialized run remains
// checkable via tabHash.
func streamMeasure(m *mediator.Mediator, src string, opts mediator.ExecOptions) (*streamRun, error) {
	start := time.Now()
	s, err := m.StreamContext(context.Background(), src, opts)
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	r := &streamRun{}
	for c := range s.Chunks() {
		if r.rows == 0 && c.Len() > 0 {
			r.firstRow = time.Since(start)
		}
		for _, row := range c.Rows {
			hashRow(h, row)
		}
		r.rows += c.Len()
	}
	r.total = time.Since(start)
	res, err := s.Result()
	if err != nil {
		return nil, err
	}
	r.res = res
	r.sum = h.Sum64()
	return r, nil
}

// benchJSON runs the Fig. 9 Q2 variants (per-row serial and parallel,
// batched serial and parallel, warm cache, per-row under a 1% injected
// fault rate, batched with tracing on, and the same query compiled from
// XQuery-FLWR text) over the wire deployment and writes machine-readable
// results — the CI artifact BENCH_PR7.json.
func benchJSON(path string, n int, wrappers string) error {
	const latency = 2 * time.Millisecond
	m, _, teardown, err := wireDeploy(n, latency)
	if err != nil {
		return err
	}
	defer teardown()

	variants := []struct {
		name   string
		src    string
		opts   mediator.ExecOptions
		stream bool
	}{
		{name: "q2_per_row_serial", src: datagen.Q2Src, opts: mediator.ExecOptions{Parallelism: 1, PerRowDJoin: true}},
		{name: "q2_per_row_parallel4", src: datagen.Q2Src, opts: mediator.ExecOptions{Parallelism: 4, Timeout: time.Minute, PerRowDJoin: true}},
		{name: "q2_batched_serial", src: datagen.Q2Src, opts: mediator.ExecOptions{Parallelism: 1}},
		{name: "q2_batched_traced", src: datagen.Q2Src, opts: mediator.ExecOptions{Parallelism: 1, Trace: true}},
		{name: "q2_batched_parallel4", src: datagen.Q2Src, opts: mediator.ExecOptions{Parallelism: 4, Timeout: time.Minute}},
		// The pipelined engine, serial and parallel: rows never materialize
		// mediator-side (counted and hashed as chunks arrive), so these two
		// also report the live-heap peak and the first-row latency.
		{name: "q2_stream_serial", src: datagen.Q2Src, opts: mediator.ExecOptions{Parallelism: 1}, stream: true},
		{name: "q2_stream_parallel4", src: datagen.Q2Src, opts: mediator.ExecOptions{Parallelism: 4, Timeout: time.Minute}, stream: true},
		// The same query compiled from XQuery-FLWR text: parse + compile
		// overhead included, rows must match the hand-built plan exactly.
		// These run before the warm-cache variant: enabling the result
		// cache is sticky, and the compiled plan is identical to the
		// hand-built one, so it would be answered from cache.
		{name: "q2_xquery_batched_serial", src: datagen.Q2XQuerySrc, opts: mediator.ExecOptions{Parallelism: 1}},
		{name: "q2_xquery_batched_parallel4", src: datagen.Q2XQuerySrc, opts: mediator.ExecOptions{Parallelism: 4, Timeout: time.Minute}},
		{name: "q2_warm_cache", src: datagen.Q2Src, opts: mediator.ExecOptions{Parallelism: 1, CacheSize: 4096}},
	}
	var records []benchRecord
	var baseline *mediator.Result
	var baselineNs int64
	for _, v := range variants {
		if v.stream {
			sampler := startLiveSampler(25 * time.Millisecond)
			run, err := streamMeasure(m, v.src, v.opts)
			peak := sampler.stopPeak()
			if err != nil {
				return fmt.Errorf("%s: %w", v.name, err)
			}
			if run.rows != baseline.Tab.Len() || run.sum != tabHash(baseline.Tab) {
				return fmt.Errorf("%s: streamed rows diverge from per-row baseline", v.name)
			}
			records = append(records, benchRecord{
				Name:      v.name,
				NsPerOp:   run.total.Nanoseconds(),
				Pushes:    run.res.Stats.SourcePushes,
				CacheHits: run.res.Stats.CacheHits,
				Rows:      run.rows,
				Speedup:   float64(baselineNs) / float64(maxI64(run.total.Nanoseconds(), 1)),
				Retries:   run.res.Stats.Retries,
				Redials:   run.res.Stats.Redials,
				PeakAlloc: peak,
				FirstRow:  run.firstRow.Nanoseconds(),
			})
			continue
		}
		// The warm-cache variant measures its second run; the first fills
		// the cache.
		res, d, err := med(func() (*mediator.Result, error) {
			return m.ExecuteContext(context.Background(), v.src, v.opts)
		})
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		if v.opts.CacheSize > 0 {
			if res, d, err = med(func() (*mediator.Result, error) {
				return m.ExecuteContext(context.Background(), v.src, v.opts)
			}); err != nil {
				return fmt.Errorf("%s: %w", v.name, err)
			}
		}
		if baseline == nil {
			baseline, baselineNs = res, d.Nanoseconds()
		} else if !res.Tab.Equal(baseline.Tab) {
			return fmt.Errorf("%s: rows diverge from per-row baseline", v.name)
		}
		records = append(records, benchRecord{
			Name:      v.name,
			NsPerOp:   d.Nanoseconds(),
			Pushes:    res.Stats.SourcePushes,
			CacheHits: res.Stats.CacheHits,
			Rows:      res.Tab.Len(),
			Speedup:   float64(baselineNs) / float64(maxI64(d.Nanoseconds(), 1)),
			Retries:   res.Stats.Retries,
			Redials:   res.Stats.Redials,
		})
	}

	// The fault variant gets its own deployment: both wrappers behind a 1%
	// injector, per-row passing so faults land on real query traffic. Rows
	// must still match the clean baseline exactly.
	var inj [2]*faults.Injector
	for i, seed := range []int64{17, 23} {
		inj[i] = faults.New(faults.Config{
			Seed:  seed,
			Rate:  0.01,
			Kinds: []faults.Kind{faults.Drop, faults.Truncate, faults.Garble},
			After: 3,
		})
	}
	fm, _, fteardown, err := wireDeployFaulty(n, latency, inj, nil)
	if err != nil {
		return err
	}
	defer fteardown()
	res, d, err := med(func() (*mediator.Result, error) {
		return fm.ExecuteContext(context.Background(), datagen.Q2Src,
			mediator.ExecOptions{Parallelism: 1, PerRowDJoin: true, Timeout: time.Minute})
	})
	if err != nil {
		return fmt.Errorf("q2_per_row_faults_1pct: %w", err)
	}
	if !res.Tab.Equal(baseline.Tab) {
		return fmt.Errorf("q2_per_row_faults_1pct: rows diverge from clean baseline")
	}
	records = append(records, benchRecord{
		Name:      "q2_per_row_faults_1pct",
		NsPerOp:   d.Nanoseconds(),
		Pushes:    res.Stats.SourcePushes,
		CacheHits: res.Stats.CacheHits,
		Rows:      res.Tab.Len(),
		Speedup:   float64(baselineNs) / float64(maxI64(d.Nanoseconds(), 1)),
		Retries:   res.Stats.Retries,
		Redials:   res.Stats.Redials,
		Injected:  inj[0].Injected() + inj[1].Injected(),
	})
	// The streaming memory dimension: Q2 across a ≥10× result-size sweep,
	// materialized versus pipelined, against out-of-process wrappers so the
	// mediator's live set is measured alone. The streaming live-heap peak
	// must stay roughly flat while the materialized one grows with the
	// result.
	sweep, err := memorySweep([]int{400, 1200, 4000}, wrappers)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(map[string]any{
		"experiment":   "fig9_q2_batched_pushdown",
		"artifacts":    n,
		"latency_ms":   latency.Milliseconds(),
		"results":      records,
		"memory_sweep": sweep,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d variants, artifacts=%d, %d sweep points)\n", path, len(records), n, len(sweep))
	return nil
}

// memRecord is one point of the streaming memory sweep: Q2 at one workload
// size, materialized versus pipelined, with live-heap peaks and latencies.
type memRecord struct {
	Artifacts        int   `json:"artifacts"`
	Rows             int   `json:"rows"`
	MaterializedPeak int64 `json:"materialized_peak_bytes"`
	StreamingPeak    int64 `json:"streaming_peak_bytes"`
	MaterializedNs   int64 `json:"materialized_ns"`
	StreamingNs      int64 `json:"streaming_ns"`
	FirstRowNs       int64 `json:"first_row_ns"`
}

// memorySweep measures Q2 at each workload size on a fresh out-of-process
// deployment (the wrapper binaries run as child processes, so the sampled
// heap is the mediator's alone): the materialized engine first (its result
// hashed, then dropped), the pipelined engine second, rows asserted
// byte-identical via the hash.
func memorySweep(sizes []int, wrappers string) ([]memRecord, error) {
	dir, cleanup, err := ensureWrappers(wrappers)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	var out []memRecord
	for _, n := range sizes {
		m, teardown, err := externalDeploy(dir, n)
		if err != nil {
			return nil, err
		}
		rec, err := memPoint(m, n)
		teardown()
		if err != nil {
			return nil, err
		}
		out = append(out, *rec)
	}
	return out, nil
}

func memPoint(m *mediator.Mediator, n int) (*memRecord, error) {
	opts := mediator.ExecOptions{Parallelism: 1, Timeout: time.Minute}
	sampler := startLiveSampler(10 * time.Millisecond)
	base, d, err := med(func() (*mediator.Result, error) {
		return m.ExecuteContext(context.Background(), datagen.Q2Src, opts)
	})
	matPeak := sampler.stopPeak()
	if err != nil {
		return nil, err
	}
	baseSum, baseRows := tabHash(base.Tab), base.Tab.Len()
	// Drop the materialized result before sampling the streamed run, so the
	// streamed baseline starts from the same live set.
	base = nil
	_ = base
	sampler = startLiveSampler(10 * time.Millisecond)
	run, serr := streamMeasure(m, datagen.Q2Src, opts)
	streamPeak := sampler.stopPeak()
	if serr != nil {
		return nil, serr
	}
	if run.rows != baseRows || run.sum != baseSum {
		return nil, fmt.Errorf("memory sweep n=%d: streamed rows diverge from materialized", n)
	}
	return &memRecord{
		Artifacts:        n,
		Rows:             baseRows,
		MaterializedPeak: matPeak,
		StreamingPeak:    streamPeak,
		MaterializedNs:   d.Nanoseconds(),
		StreamingNs:      run.total.Nanoseconds(),
		FirstRowNs:       run.firstRow.Nanoseconds(),
	}, nil
}

// runStreamSmoke is the -stream-smoke mode: one large-n Q2 against
// out-of-process wrappers, materialized then pipelined, asserting the three
// streaming promises — byte-identical rows (checked inside memPoint),
// bounded memory (mediator live-heap peak under half the materialized
// run's) and low time-to-first-row (under 25% of total query time).
func runStreamSmoke(wrappers string) error {
	const n = 4000
	fmt.Printf("stream-smoke: Q2 over wire, artifacts=%d\n", n)
	recs, err := memorySweep([]int{n}, wrappers)
	if err != nil {
		return err
	}
	r := recs[0]
	fmt.Printf("  materialized: live-heap peak %d bytes, %s\n",
		r.MaterializedPeak, time.Duration(r.MaterializedNs).Round(time.Millisecond))
	fmt.Printf("  streaming:    live-heap peak %d bytes, %s (first row after %s)\n",
		r.StreamingPeak, time.Duration(r.StreamingNs).Round(time.Millisecond),
		time.Duration(r.FirstRowNs).Round(time.Millisecond))
	if r.StreamingPeak >= r.MaterializedPeak/2 {
		return fmt.Errorf("stream-smoke: streaming live-heap peak %d bytes is not under half the materialized %d",
			r.StreamingPeak, r.MaterializedPeak)
	}
	if 4*r.FirstRowNs >= r.StreamingNs {
		return fmt.Errorf("stream-smoke: first row after %v of a %v query, want < 25%%",
			time.Duration(r.FirstRowNs), time.Duration(r.StreamingNs))
	}
	fmt.Println("stream-smoke: OK")
	return nil
}
