// The E23 feed-family benchmarks (-feed-bench-json): cold bulk ingest,
// warm fetch-by-id pushes against the sealed indexes, the three-family
// union over live wire connections, and the ingest memory sweep — a 10×
// corpus growth over which the streaming decode pipeline's live-heap peak
// must stay flat (the reader holds one chunk window, never the dump).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/feed"
	"repro/internal/filter"
	"repro/internal/mediator"
	"repro/internal/o2wrap"
	"repro/internal/tab"
	"repro/internal/waiswrap"
	"repro/internal/wire"
)

// feedBenchRecord is one -feed-bench-json measurement.
type feedBenchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	Rows        int     `json:"rows"`
	RowsPerSec  float64 `json:"rows_per_sec,omitempty"`
	Quarantined int     `json:"quarantined,omitempty"`
	PeakAlloc   int64   `json:"peak_alloc_bytes,omitempty"`
}

// feedSweepRecord is one point of the ingest memory sweep. StreamPeak is
// the live-heap high-water mark of a drain-only pass through the decode
// pipeline (records decoded, normalized and dropped): it must not grow
// with the corpus. IngestPeak retains the store, so it grows linearly —
// reported to make the contrast visible in the artifact.
type feedSweepRecord struct {
	Records    int     `json:"records"`
	Ingested   int     `json:"ingested"`
	Quarantine int     `json:"quarantined"`
	IngestNs   int64   `json:"ingest_ns"`
	RowsPerSec float64 `json:"rows_per_sec"`
	StreamPeak int64   `json:"stream_peak_bytes"`
	IngestPeak int64   `json:"ingest_peak_bytes"`
}

// ndxmlReader renders the corpus once and returns a fresh dump reader over
// it. The rendered string is allocated before the caller samples its heap
// baseline, so only the pipeline's own window counts against the peak.
func ndxmlReader(c *datagen.FeedCorpus) (feed.Reader, error) {
	var sb strings.Builder
	if err := c.WriteNDXML(&sb); err != nil {
		return nil, err
	}
	return feed.NewNDXML(strings.NewReader(sb.String()), "bench.ndxml"), nil
}

// deployThreeFamilies connects o2artifact, xmlartwork and bulkfeed to one
// mediator over real TCP and returns it with a teardown function.
func deployThreeFamilies(n int) (*mediator.Mediator, func(), error) {
	w := datagen.Generate(datagen.DefaultParams(n))
	ow := o2wrap.New("o2artifact", w.DB)
	schema := ow.ExportSchema()
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(w.Works))
	fw := feed.New("bulkfeed", datagen.NewFeedStore(datagen.GenerateFeed(datagen.DefaultFeedParams(n))))
	exps := []wire.Exported{
		{Source: ow, Interface: ow.ExportInterface(),
			Structures: map[string]wire.StructureRef{
				"artifacts": {Model: schema, Pattern: "Artifact"},
				"persons":   {Model: schema, Pattern: "Person"},
			}},
		{Source: ww, Interface: ww.ExportInterface(),
			Structures: map[string]wire.StructureRef{
				"works": {Model: ww.ExportStructure(), Pattern: "Works"},
			}},
		{Source: fw, Interface: fw.ExportInterface(),
			Structures: map[string]wire.StructureRef{
				"records": {Model: fw.ExportStructure(), Pattern: "Records"},
			}},
	}
	m := mediator.New()
	var closers []func()
	teardown := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	for _, exp := range exps {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			teardown()
			return nil, nil, err
		}
		srv := wire.Serve(ln, exp)
		closers = append(closers, srv.Close)
		c, err := wire.Dial(srv.Addr())
		if err != nil {
			teardown()
			return nil, nil, err
		}
		closers = append(closers, func() { c.Close() })
		iface, err := c.ImportInterface()
		if err != nil {
			teardown()
			return nil, nil, err
		}
		if err := m.Connect(c, iface); err != nil {
			teardown()
			return nil, nil, err
		}
		sts, err := c.ImportStructures()
		if err != nil {
			teardown()
			return nil, nil, err
		}
		for doc, ref := range sts {
			m.ImportStructure(doc, ref.Model, ref.Pattern)
		}
	}
	m.RegisterFunc("contains", waiswrap.Contains)
	m.RegisterFunc("prefix", feed.Prefix)
	return m, teardown, nil
}

// threeFamilyTitles is one title branch per wrapper family.
func threeFamilyTitles() algebra.Op {
	return &algebra.Union{
		L: &algebra.Union{
			L: &algebra.Bind{Doc: "artifacts",
				F: filter.MustParse(`set[ *class[ artifact.tuple[ title: $t ] ] ]`)},
			R: &algebra.Bind{Doc: "works",
				F: filter.MustParse(`works[ *work[ title: $t ] ]`)},
		},
		R: &algebra.Bind{Doc: "records",
			F: filter.MustParse(`records[ *record[ title: $t ] ]`)},
	}
}

// feedBenchJSON measures the feed family and writes the E23 CI artifact
// (BENCH_PR10.json): cold ingest, warm fetch-by-id, the three-family
// union, and the ingest memory sweep.
func feedBenchJSON(path string, n int, sweep []int) error {
	corpus := datagen.GenerateFeed(datagen.DefaultFeedParams(n))
	var records []feedBenchRecord

	// Cold ingest: dump reader → decode → normalize → store, one pass.
	r, err := ndxmlReader(corpus)
	if err != nil {
		return err
	}
	store := feed.NewStore()
	start := time.Now()
	stats, err := store.Ingest(r)
	if err != nil {
		return fmt.Errorf("feed_cold_ingest: %w", err)
	}
	d := time.Since(start)
	if stats.Ingested != len(corpus.Records) {
		return fmt.Errorf("feed_cold_ingest: ingested %d, ground truth %d", stats.Ingested, len(corpus.Records))
	}
	records = append(records, feedBenchRecord{
		Name:        "feed_cold_ingest",
		NsPerOp:     d.Nanoseconds(),
		Rows:        stats.Ingested,
		RowsPerSec:  float64(len(corpus.Lines)) / d.Seconds(),
		Quarantined: stats.Quarantined,
	})

	// Warm fetch-by-id: a parameterized equality on the unique id index,
	// the plan compiled per push exactly as the wire server would.
	w := feed.New("bulkfeed", store)
	fetchPlan := &algebra.Select{
		From: &algebra.Bind{Doc: "records",
			F: filter.MustParse(`records[ *record[ id: $id, title: $t ] ]`)},
		Pred: algebra.MustParseExpr(`$id = $k`),
	}
	ops := len(corpus.Records)
	if ops > 2000 {
		ops = 2000
	}
	start = time.Now()
	for i := 0; i < ops; i++ {
		rec := corpus.Records[i%len(corpus.Records)]
		res, err := w.Push(fetchPlan, map[string]tab.Cell{"$k": tab.AtomCell(data.String(rec.ID))})
		if err != nil {
			return fmt.Errorf("feed_warm_fetch_by_id: %w", err)
		}
		if res.Len() != 1 {
			return fmt.Errorf("feed_warm_fetch_by_id: id %s returned %d rows", rec.ID, res.Len())
		}
	}
	d = time.Since(start)
	records = append(records, feedBenchRecord{
		Name:       "feed_warm_fetch_by_id",
		NsPerOp:    d.Nanoseconds() / int64(ops),
		Rows:       ops,
		RowsPerSec: float64(ops) / d.Seconds(),
	})

	// Three-family union over live wire connections, serial and parallel.
	m, teardown, err := deployThreeFamilies(n / 4)
	if err != nil {
		return err
	}
	defer teardown()
	var unionRows int
	for _, v := range []struct {
		name string
		opts mediator.ExecOptions
	}{
		{"feed_union3_serial", mediator.ExecOptions{Parallelism: 1}},
		{"feed_union3_parallel4", mediator.ExecOptions{Parallelism: 4, Timeout: time.Minute}},
	} {
		res, d, err := med(func() (*mediator.Result, error) {
			return m.ExecutePlan(context.Background(), threeFamilyTitles(), v.opts)
		})
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		if unionRows == 0 {
			unionRows = res.Tab.Len()
		} else if res.Tab.Len() != unionRows {
			return fmt.Errorf("%s: %d rows, serial run had %d", v.name, res.Tab.Len(), unionRows)
		}
		records = append(records, feedBenchRecord{
			Name:    v.name,
			NsPerOp: d.Nanoseconds(),
			Rows:    res.Tab.Len(),
		})
	}

	// The ingest memory sweep: at every corpus size, a drain-only pass
	// through the decode pipeline (nothing retained) and a full store
	// ingest. The drain peak is the pipeline's working set — one chunk
	// window — and must stay flat across the 10× growth.
	var points []feedSweepRecord
	for _, size := range sweep {
		c := datagen.GenerateFeed(datagen.DefaultFeedParams(size))

		r, err := ndxmlReader(c)
		if err != nil {
			return err
		}
		sampler := startLiveSampler(10 * time.Millisecond)
		cur := feed.NewIngestCursor(r, tab.DefaultStreamChunk)
		for {
			if _, err := cur.Next(); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				return fmt.Errorf("sweep %d drain: %w", size, err)
			}
		}
		cur.Close()
		streamPeak := sampler.stopPeak()

		r, err = ndxmlReader(c)
		if err != nil {
			return err
		}
		s := feed.NewStore()
		sampler = startLiveSampler(10 * time.Millisecond)
		start := time.Now()
		stats, err := s.Ingest(r)
		if err != nil {
			return fmt.Errorf("sweep %d ingest: %w", size, err)
		}
		d := time.Since(start)
		ingestPeak := sampler.stopPeak()
		if stats.Ingested != len(c.Records) {
			return fmt.Errorf("sweep %d: ingested %d, ground truth %d", size, stats.Ingested, len(c.Records))
		}
		points = append(points, feedSweepRecord{
			Records:    size,
			Ingested:   stats.Ingested,
			Quarantine: stats.Quarantined,
			IngestNs:   d.Nanoseconds(),
			RowsPerSec: float64(len(c.Lines)) / d.Seconds(),
			StreamPeak: streamPeak,
			IngestPeak: ingestPeak,
		})
	}
	// The flatness check, at the largest sweep point where sampling noise
	// matters least: the drain-only pipeline holds one chunk window, so its
	// peak (mostly allocate-black float from the concurrent mark) must stay
	// well under the store ingest's, which retains every record. If the
	// pipeline ever started retaining the dump the two would converge.
	if last := points[len(points)-1]; last.IngestPeak > 0 && last.StreamPeak*2 >= last.IngestPeak {
		return fmt.Errorf("sweep %d: decode pipeline live-heap peak %d is not well under the retaining ingest's %d — the pipeline is holding on to the corpus",
			last.Records, last.StreamPeak, last.IngestPeak)
	}

	out, err := json.MarshalIndent(map[string]any{
		"experiment":   "e23_feed_ingest_and_union",
		"records":      n,
		"results":      records,
		"ingest_sweep": points,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d variants, records=%d, %d sweep points)\n", path, len(records), n, len(points))
	return nil
}
