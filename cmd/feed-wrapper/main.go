// Command feed-wrapper is the bulk-feed wrapper of the third family: it
// ingests a newline-delimited (`.ndxml`) or zipped (`.xml.zip`) XML metadata
// dump through the streaming pipeline — normalizing, validating and
// quarantining record by record — and serves the indexed store over the YAT
// wire protocol under the restricted filter-by-field / fetch-by-id
// capability profile.
//
// Usage:
//
//	feed-wrapper -port 7070 -dump corpus.ndxml [-metrics-addr HOST:PORT]
//	feed-wrapper -port 7070 -records 10000 [-seed 42] [-malformed-pct 4]
//	feed-wrapper -write-dump corpus.ndxml -records 10000 [-seed 42] [-malformed-pct 4]
//
// The second form generates the deterministic datagen corpus in memory; the
// third writes it to disk (`.zip` extension selects the archive format) and
// exits, which is how the smoke scripts produce fixtures.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"repro/internal/datagen"
	"repro/internal/feed"
	"repro/internal/obs"
	"repro/internal/wire"
)

func main() {
	port := flag.Int("port", 7070, "TCP port to listen on")
	dump := flag.String("dump", "", "dump file to ingest (.ndxml or .zip)")
	records := flag.Int("records", 0, "generate a corpus of this many records instead of reading -dump")
	seed := flag.Int64("seed", 42, "corpus seed")
	malformedPct := flag.Int("malformed-pct", 4, "percentage of deliberately malformed corpus records")
	writeDump := flag.String("write-dump", "", "write the generated corpus to this path and exit")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (JSON) and /debug/pprof/ on this address")
	flag.Parse()

	if *writeDump != "" {
		if *records <= 0 {
			fail(fmt.Errorf("-write-dump needs -records"))
		}
		c := datagen.GenerateFeed(datagen.FeedParams{Records: *records, MalformedPct: *malformedPct, Seed: *seed})
		f, err := os.Create(*writeDump)
		if err != nil {
			fail(err)
		}
		if strings.HasSuffix(*writeDump, ".zip") {
			err = c.WriteZip(f, 4)
		} else {
			err = c.WriteNDXML(f)
		}
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf(" wrote %d lines (%d valid records) to %s\n", len(c.Lines), len(c.Records), *writeDump)
		return
	}

	s := feed.NewStore()
	switch {
	case *dump != "":
		r, err := feed.OpenDump(*dump)
		if err != nil {
			fail(err)
		}
		if _, err := s.Ingest(r); err != nil {
			fail(fmt.Errorf("ingest %s: %w", *dump, err))
		}
	case *records > 0:
		c := datagen.GenerateFeed(datagen.FeedParams{Records: *records, MalformedPct: *malformedPct, Seed: *seed})
		var sb strings.Builder
		if err := c.WriteNDXML(&sb); err != nil {
			fail(err)
		}
		if _, err := s.Ingest(feed.NewNDXML(strings.NewReader(sb.String()), "generated")); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("one of -dump or -records is required"))
	}
	w := feed.New("bulkfeed", s)

	ln, err := net.Listen("tcp", fmt.Sprintf(":%d", *port))
	if err != nil {
		fail(err)
	}
	exp := wire.Exported{
		Source:    w,
		Interface: w.ExportInterface(),
		Structures: map[string]wire.StructureRef{
			"records": {Model: w.ExportStructure(), Pattern: "Records"},
		},
	}
	if *metricsAddr != "" {
		exp.Obs = obs.NewObserver(nil)
		plane, err := obs.Serve(*metricsAddr, exp.Obs.Reg)
		if err != nil {
			fail(fmt.Errorf("-metrics-addr: %w", err))
		}
		defer plane.Close()
		fmt.Printf(" metrics and pprof at http://%s/\n", plane.Addr)
	}
	srv := wire.Serve(ln, exp)
	st := s.Stats()
	host, _ := os.Hostname()
	// The bound port is reported (not the flag value) so -port 0 gives
	// scripts an ephemeral port they can parse from this line.
	fmt.Printf(" feed-wrapper is running at %s:%d (source bulkfeed: %d records ingested, %d quarantined)\n",
		host, ln.Addr().(*net.TCPAddr).Port, st.Ingested, st.Quarantined)
	defer srv.Close()
	select {} // serve until killed
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "feed-wrapper: %v\n", err)
	os.Exit(1)
}
