// Command yat-mediator is the YAT mediator console of Figure 2: it connects
// remote wrappers, imports their structural and query capabilities, loads
// YAT_L integration programs and evaluates queries.
//
// Usage:
//
//	yat-mediator [-script session.txt] [-lint] [-check-types] [-parallel N] [-timeout D]
//	             [-cache N] [-partial] [-retries N] [-connect-timeout D] [-inject SPEC]
//	             [-trace-out FILE] [-metrics-addr HOST:PORT] [-serve HOST:PORT]
//	             [-tenant-concurrency N] [-tenant-queue N] [-tenant-queue-timeout D]
//	             [-tenant-rate F] [-tenant-burst N]
//
// With -serve, the mediator additionally exposes the multi-tenant HTTP
// query front door (internal/frontdoor): POST /query streams results as
// NDJSON, GET /healthz reports source health, and each tenant (X-Tenant
// header) is admitted through its own token bucket, concurrency limit and
// bounded wait queue — the -tenant-* flags set the default limits. The
// console keeps running alongside; with -script, the process keeps serving
// after the script ends. The `connect` command accepts a comma-separated
// address list to spread one logical source across replica wrapper
// processes (least-loaded routing with per-replica circuit breakers and
// failover; see the `replicas` command).
//
// With -lint, every plan is verified by the planlint static checker after
// each optimizer rewriting step and before execution; a broken invariant
// aborts the query with a diagnostic instead of a wrong answer.
//
// With -check-types, queries run in wire conformance mode: every wrapper
// response row is validated against the pushed plan's inferred pattern type
// (derived from the structures the sources exported), and a source shipping
// data that violates its own declared schema aborts the query with a
// structured violation instead of a silently wrong answer. The `typecheck`
// command renders the inferred types without executing anything.
//
// With -parallel N > 1, `query` evaluates plans on the parallel execution
// engine with N workers: independent subplans and DJoin sub-queries run
// concurrently (result rows and statistics are identical to serial
// execution). -timeout bounds each query's wall-clock time; an expired
// deadline cancels in-flight wrapper requests instead of hanging.
//
// With -cache N > 0, the mediator keeps an N-entry LRU cache of wrapper
// results keyed by (source, plan, parameter bindings): repeated pushes of the
// same sub-query — within one query's DJoin or across queries of a session —
// are answered locally without a wrapper round trip. The cache assumes
// sources do not change underneath the session.
//
// Fault tolerance controls:
//
//   - -retries N sets the transport retry budget per wrapper request
//     (attempts including the first; default 3, 1 disables retrying).
//   - -connect-timeout D bounds `connect` — TCP dial plus hello exchange
//     (default 10s).
//   - -partial makes `query` degrade gracefully: rows derivable from live
//     sources are returned and dead sources are reported per source,
//     instead of failing the whole query.
//   - -inject SPEC injects transport faults into every wrapper connection
//     (client side), for demonstrating and debugging the retry layer. SPEC
//     is comma-separated: rate=0.05,seed=1,kinds=drop+truncate+garble,
//     delay=50ms,killnth=3 (kinds defaults to drop+delay+truncate+garble).
//
// Observability controls:
//
//   - `profile <query> ;` runs the query with per-operator tracing on and
//     renders the annotated plan tree (EXPLAIN ANALYZE): wall time, rows,
//     fetches/pushes/tuples, cache hits, retry recovery and breaker state
//     per operator. -trace-out FILE additionally exports each profiled
//     query as Chrome trace-event JSON (open in chrome://tracing or
//     Perfetto; repeated profiles overwrite the file).
//   - -metrics-addr HOST:PORT serves cumulative mediator metrics as JSON
//     on /metrics and the standard pprof handlers under /debug/pprof/.
//
// The console reads commands from stdin:
//
//	connect <name> <addr>[,addr..] connect a wrapper (N addrs = replica set)
//	replicas                       per-replica routing state of replicated sources
//	import <name>                  (re)import a wrapper's capabilities
//	load <file>                    load a YAT_L program (view definitions)
//	assume <dropdoc> <keepdoc>     declare a containment assumption
//	status                         list sources and views
//	health                         per-source circuit-breaker state
//	query  <query> ;               optimize and evaluate (YAT_L or XQuery-FLWR)
//	stream <query> ;               evaluate pipelined, printing rows as they arrive
//	xq <query> ;                   evaluate XQuery-FLWR, showing the lowered rule
//	naive  <query> ;               evaluate without optimization
//	explain <query> ;              show naive and optimized plans
//	profile <query> ;              evaluate with tracing, render the span tree
//	typecheck <query> ;            show the optimized plan with inferred types
//	help                           list commands
//	quit
//
// Queries may be written in YAT_L (MAKE ... MATCH ... WITH ... WHERE ...) or
// in the XQuery-FLWR dialect of internal/xq (for $v in doc("d")/path ...);
// the mediator detects the dialect from the first token.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/faults"
	"repro/internal/feed"
	"repro/internal/frontdoor"
	"repro/internal/mediator"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/typecheck"
	"repro/internal/waiswrap"
	"repro/internal/wire"
	"repro/internal/xq"
	xqcompile "repro/internal/xq/compile"
)

// dialConfig carries the connection-level configuration every `connect`
// command uses: dial deadline, retry budget, and the optional fault
// injector wrapping each new wrapper connection.
type dialConfig struct {
	connectTimeout time.Duration
	retry          *wire.RetryPolicy
	inject         *faults.Injector
	traceOut       string        // -trace-out: Chrome trace JSON destination for `profile`
	metrics        *obs.Registry // -metrics-addr registry, fed by every query
}

func main() {
	script := flag.String("script", "", "read commands from a file instead of stdin")
	lint := flag.Bool("lint", false, "verify plan invariants after every rewrite and before execution")
	checkTypes := flag.Bool("check-types", false, "validate wrapper responses against their declared structural types")
	parallel := flag.Int("parallel", 1, "execution workers per query (1 = serial)")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none), e.g. 30s")
	cache := flag.Int("cache", 0, "wrapper-result cache entries (0 = no caching)")
	partial := flag.Bool("partial", false, "degrade gracefully: return rows from live sources, report dead ones")
	retries := flag.Int("retries", 0, "transport attempts per wrapper request (0 = default 3, 1 = no retries)")
	batchChunk := flag.Int("batch-chunk", 0, "binding sets per batched DJoin push (0 = default)")
	streamBuffer := flag.Int("stream-buffer", 0, "row buffer between a streamed query and its consumer (0 = default)")
	connectTimeout := flag.Duration("connect-timeout", 10*time.Second, "deadline for connect (dial + hello)")
	inject := flag.String("inject", "", "inject transport faults, e.g. rate=0.05,seed=1,kinds=drop+garble")
	traceOut := flag.String("trace-out", "", "write each profiled query as Chrome trace-event JSON to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (JSON) and /debug/pprof/ on this address")
	serveAddr := flag.String("serve", "", "serve the multi-tenant HTTP query front door on this address")
	tenantConcurrency := flag.Int("tenant-concurrency", 8, "front door: concurrent queries per tenant")
	tenantQueue := flag.Int("tenant-queue", 16, "front door: queued queries per tenant beyond the concurrency limit (negative = no queue)")
	tenantQueueTimeout := flag.Duration("tenant-queue-timeout", 2*time.Second, "front door: longest a queued query waits for a slot")
	tenantRate := flag.Float64("tenant-rate", 0, "front door: sustained queries/sec per tenant (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "front door: token-bucket burst per tenant (0 = derived from rate)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yat-mediator: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	sess := &dialConfig{connectTimeout: *connectTimeout}
	if *retries > 0 {
		p := wire.DefaultRetryPolicy
		p.MaxAttempts = *retries
		sess.retry = &p
	}
	if *inject != "" {
		cfg, err := parseInjectSpec(*inject)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yat-mediator: -inject: %v\n", err)
			os.Exit(1)
		}
		sess.inject = faults.New(cfg)
	}
	sess.traceOut = *traceOut
	if *metricsAddr != "" {
		sess.metrics = obs.NewRegistry()
		plane, err := obs.Serve(*metricsAddr, sess.metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yat-mediator: -metrics-addr: %v\n", err)
			os.Exit(1)
		}
		defer plane.Close()
		fmt.Printf(" metrics and pprof at http://%s/\n", plane.Addr)
	}
	host, _ := os.Hostname()
	fmt.Printf(" yat-mediator is running at %s\n", host)
	opts := mediator.ExecOptions{Parallelism: *parallel, Timeout: *timeout, CacheSize: *cache,
		AllowPartial: *partial, CheckTypes: *checkTypes,
		BatchChunk: *batchChunk, StreamBuffer: *streamBuffer}
	// Reject bad tuning values at startup, not silently at the first query.
	if err := opts.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "yat-mediator: %v\n", err)
		os.Exit(1)
	}

	m := mediator.New()
	m.CheckInvariants = *lint
	m.RegisterFunc("contains", waiswrap.Contains)
	m.RegisterFunc("prefix", feed.Prefix)
	if sess.metrics != nil {
		m.SetMetrics(sess.metrics)
	}

	serving := false
	if *serveAddr != "" {
		door := frontdoor.New(m, frontdoor.Options{
			Limits: frontdoor.Limits{
				MaxConcurrent: *tenantConcurrency,
				QueueDepth:    *tenantQueue,
				QueueTimeout:  *tenantQueueTimeout,
				RatePerSec:    *tenantRate,
				Burst:         *tenantBurst,
			},
			Exec:    opts,
			Metrics: sess.metrics,
		})
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yat-mediator: -serve: %v\n", err)
			os.Exit(1)
		}
		// No WriteTimeout: responses stream for as long as the query runs;
		// the per-query deadline (door MaxTimeout) bounds them instead.
		srv := &http.Server{Handler: door.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "yat-mediator: front door: %v\n", err)
				os.Exit(1)
			}
		}()
		fmt.Printf(" front door is running at %s\n", ln.Addr())
		serving = true
	}

	if err := repl(in, os.Stdout, m, opts, sess, !serving); err != nil {
		fmt.Fprintf(os.Stderr, "yat-mediator: %v\n", err)
		os.Exit(1)
	}
	if serving {
		// Console input is done (script consumed or stdin closed) but the
		// front door keeps serving; deployments run connect scripts this way.
		fmt.Println(" console closed; front door still serving")
		select {}
	}
}

// parseInjectSpec parses the -inject flag: comma-separated key=value pairs
// rate, seed, kinds (plus-separated), delay, killnth.
func parseInjectSpec(spec string) (faults.Config, error) {
	var cfg faults.Config
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return cfg, fmt.Errorf("bad entry %q (want key=value)", part)
		}
		var err error
		switch key {
		case "rate":
			cfg.Rate, err = strconv.ParseFloat(val, 64)
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "delay":
			cfg.Delay, err = time.ParseDuration(val)
		case "killnth":
			cfg.KillNth, err = strconv.Atoi(val)
		case "kinds":
			for _, k := range strings.Split(val, "+") {
				switch k {
				case "drop":
					cfg.Kinds = append(cfg.Kinds, faults.Drop)
				case "delay":
					cfg.Kinds = append(cfg.Kinds, faults.Delay)
				case "truncate":
					cfg.Kinds = append(cfg.Kinds, faults.Truncate)
				case "garble":
					cfg.Kinds = append(cfg.Kinds, faults.Garble)
				default:
					return cfg, fmt.Errorf("unknown kind %q", k)
				}
			}
		default:
			return cfg, fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("bad %s: %v", key, err)
		}
	}
	return cfg, nil
}

// repl reads console commands. closeOnExit controls whether wrapper
// connections are torn down when the input ends — the front door keeps
// serving queries after a -script session, so a serving process must keep
// its clients.
func repl(in io.Reader, out io.Writer, m *mediator.Mediator, opts mediator.ExecOptions, sess *dialConfig, closeOnExit bool) error {
	clients := map[string][]*wire.Client{}
	routes := map[string]*route.Replicated{}
	defer func() {
		if !closeOnExit {
			return
		}
		for _, cs := range clients {
			for _, c := range cs {
				c.Close()
			}
		}
	}()
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprint(out, "yat> ")
	var queryBuf strings.Builder
	mode := "" // "", "query", "naive", "explain", "profile", "typecheck", "xq"
	for sc.Scan() {
		line := sc.Text()
		if mode != "" {
			queryBuf.WriteString(line)
			queryBuf.WriteByte('\n')
			if strings.Contains(line, ";") {
				runQuery(out, m, mode, queryBuf.String(), opts, sess)
				queryBuf.Reset()
				mode = ""
			}
			fmt.Fprint(out, "yat> ")
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			fmt.Fprint(out, "yat> ")
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return nil
		case "connect":
			if len(fields) != 3 {
				fmt.Fprintln(out, "usage: connect <name> <host:port>[,host:port...]")
				break
			}
			if err := connect(m, clients, routes, fields[1], fields[2], sess); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			} else if n := len(clients[fields[1]]); n > 1 {
				fmt.Fprintf(out, " connected %s across %d replicas at %s\n", fields[1], n, fields[2])
			} else {
				fmt.Fprintf(out, " connected %s at %s\n", fields[1], fields[2])
			}
		case "import":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: import <name>")
				break
			}
			if err := importCaps(m, clients, fields[1]); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			} else {
				fmt.Fprintf(out, " imported %s\n", fields[1])
			}
		case "load":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: load <file>")
				break
			}
			b, err := os.ReadFile(strings.Trim(fields[1], `"`))
			if err == nil {
				err = m.LoadProgram(string(b))
			}
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			} else {
				fmt.Fprintf(out, " loaded %s (views: %s)\n", fields[1], strings.Join(m.Views(), ", "))
			}
		case "assume":
			if len(fields) < 3 {
				fmt.Fprintln(out, "usage: assume <dropdoc> <keepdoc> [modulo predicate...]")
				break
			}
			modulo := ""
			if len(fields) > 3 {
				modulo = strings.Join(fields[3:], " ")
			}
			if modulo != "" {
				m.Assume(fields[1], fields[2], modulo)
			} else {
				m.Assume(fields[1], fields[2])
			}
			fmt.Fprintf(out, " assuming %s ⊆ %s\n", fields[1], fields[2])
		case "status":
			fmt.Fprint(out, m.Describe())
		case "health":
			printHealth(out, m)
		case "replicas":
			printReplicas(out, routes)
		case "help":
			printHelp(out)
		case "query", "naive", "explain", "profile", "typecheck", "xq", "stream":
			mode = fields[0]
			rest := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
			queryBuf.WriteString(rest)
			queryBuf.WriteByte('\n')
			if strings.Contains(rest, ";") {
				runQuery(out, m, mode, queryBuf.String(), opts, sess)
				queryBuf.Reset()
				mode = ""
			}
		default:
			fmt.Fprintf(out, "unknown command %q (try 'help')\n", fields[0])
		}
		fmt.Fprint(out, "yat> ")
	}
	return sc.Err()
}

// connect dials one wrapper — or, with a comma-separated address list, N
// replica wrappers of the same logical source routed through
// route.Replicated: least-loaded selection, per-replica breakers, failover.
// Capabilities and structures are imported from the first replica (they are
// interchangeable copies by construction; route.New verifies the document
// sets agree).
func connect(m *mediator.Mediator, clients map[string][]*wire.Client, routes map[string]*route.Replicated, name, addrSpec string, sess *dialConfig) error {
	ctx := context.Background()
	if sess.connectTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sess.connectTimeout)
		defer cancel()
	}
	wopts := wire.Options{Retry: sess.retry}
	if sess.inject != nil {
		wopts.WrapConn = sess.inject.WrapConn
	}
	var cs []*wire.Client
	for _, addr := range strings.Split(addrSpec, ",") {
		c, err := wire.DialWith(ctx, strings.TrimSpace(addr), wopts)
		if err != nil {
			for _, prev := range cs {
				prev.Close()
			}
			return err
		}
		cs = append(cs, c)
	}
	iface, err := cs[0].ImportInterface()
	if err != nil {
		var re *wire.RemoteError
		if errors.As(err, &re) {
			// The source exports no interface at all: fetch-only is a
			// legitimate profile and the mediator plans around it.
			iface = nil
		} else {
			// A malformed description is a wrapper bug; connecting anyway
			// would turn it into an opaque planning failure later.
			for _, c := range cs {
				c.Close()
			}
			return fmt.Errorf("connect %s: %w", name, err)
		}
	}
	src := algebra.Source(cs[0])
	if len(cs) > 1 {
		reps := make([]algebra.Source, len(cs))
		for i, c := range cs {
			reps[i] = c
		}
		rt, err := route.New(cs[0].Name(), reps, route.Options{})
		if err != nil {
			for _, c := range cs {
				c.Close()
			}
			return err
		}
		routes[name] = rt
		src = rt
	}
	if err := m.Connect(src, iface); err != nil {
		for _, c := range cs {
			c.Close()
		}
		return err
	}
	clients[name] = cs
	return importStructures(m, cs[0])
}

func importCaps(m *mediator.Mediator, clients map[string][]*wire.Client, name string) error {
	cs, ok := clients[name]
	if !ok || len(cs) == 0 {
		return fmt.Errorf("not connected: %s", name)
	}
	return importStructures(m, cs[0])
}

// printReplicas renders each replicated source's routing table: per-replica
// breaker state, inflight load and lifetime attempts.
func printReplicas(out io.Writer, routes map[string]*route.Replicated) {
	if len(routes) == 0 {
		fmt.Fprintln(out, " no replicated sources")
		return
	}
	names := make([]string, 0, len(routes))
	for n := range routes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rt := routes[n]
		fmt.Fprintf(out, " %s (%s):\n", n, rt.SourceState())
		for _, h := range rt.Health() {
			fmt.Fprintf(out, "   #%d %s: %s inflight=%d served=%d failures=%d", h.ID, h.Addr, h.State, h.Inflight, h.Served, h.Failures)
			if h.LastErr != "" {
				fmt.Fprintf(out, " last: %s", h.LastErr)
			}
			fmt.Fprintln(out)
		}
	}
}

func importStructures(m *mediator.Mediator, c *wire.Client) error {
	sts, err := c.ImportStructures()
	if err != nil {
		return err
	}
	for doc, ref := range sts {
		m.ImportStructure(doc, ref.Model, ref.Pattern)
	}
	return nil
}

// printHelp lists every console command with a one-line usage.
func printHelp(out io.Writer) {
	fmt.Fprint(out, ` commands (queries end with ';' and may span lines):
  connect <name> <addr>[,addr..] connect a wrapper (N addrs = replica set behind one source)
  import <name>                  (re)import a wrapper's capabilities
  load <file>                    load a YAT_L program (view definitions)
  assume <drop> <keep> [modulo]  declare a containment assumption
  status                         list sources and views
  health                         per-source circuit-breaker state
  replicas                       per-replica routing state of replicated sources
  query <query> ;                optimize and evaluate (YAT_L or XQuery-FLWR)
  stream <query> ;               evaluate pipelined, printing rows as they arrive
  xq <query> ;                   evaluate XQuery-FLWR, showing the lowered YAT_L rule
  naive <query> ;                evaluate without optimization
  explain <query> ;              show naive and optimized plans
  profile <query> ;              evaluate with tracing, render the span tree
  typecheck <query> ;            show the optimized plan with inferred types
  help                           this list
  quit                           exit
`)
}

func runQuery(out io.Writer, m *mediator.Mediator, mode, src string, opts mediator.ExecOptions, sess *dialConfig) {
	src = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(src), ";"))
	switch mode {
	case "xq":
		q, err := xq.Parse(src)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		rule, err := xqcompile.Rule(q, xqcompile.Options{IsView: func(d string) bool { return m.View(d) != nil }})
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		fmt.Fprintf(out, "lowered rule:\n%s", indent(rule.String()))
		res, err := m.ExecuteContext(context.Background(), src, opts)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		printResult(out, res)
	case "explain":
		naive, err := m.Compose(src)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		opt := m.Optimize(naive)
		fmt.Fprintf(out, "naive plan:\n%s\noptimized plan:\n%s",
			indent(algebra.Describe(naive)), indent(algebra.Describe(opt)))
	case "naive":
		res, err := m.QueryNaive(src)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		printResult(out, res)
	case "profile":
		popts := opts
		popts.Trace = true
		res, err := m.ExecuteContext(context.Background(), src, popts)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		printProfile(out, res, sess.traceOut)
	case "stream":
		runStream(out, m, src, opts)
	case "typecheck":
		plan, err := m.Compose(src)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		opt := m.Optimize(plan)
		ann, err := m.TypecheckPlan(opt)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		fmt.Fprintf(out, "typed plan (root %s):\n", ann.Root)
		fmt.Fprint(out, indent(typecheck.Render(opt, ann)))
	default:
		res, err := m.ExecuteContext(context.Background(), src, opts)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		printResult(out, res)
	}
}

// runStream evaluates a query on the pipelined path and prints rows the
// moment their chunk arrives — the console's view of time-to-first-row.
// Alignment is per chunk (the widths of unseen rows are unknowable while
// streaming); the terminal line reports first-row and total latency.
func runStream(out io.Writer, m *mediator.Mediator, src string, opts mediator.ExecOptions) {
	start := time.Now()
	s, err := m.StreamContext(context.Background(), src, opts)
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	defer s.Close()
	fmt.Fprintf(out, " %s\n", strings.Join(s.Cols(), " | "))
	rows := 0
	var firstRow time.Duration
	for c := range s.Chunks() {
		if rows == 0 {
			firstRow = time.Since(start)
		}
		rows += c.Len()
		for _, r := range c.Rows {
			cells := make([]string, len(r))
			for i, cell := range r {
				cells[i] = cell.String()
			}
			fmt.Fprintf(out, " %s\n", strings.Join(cells, " | "))
		}
	}
	total := time.Since(start)
	res, err := s.Result()
	if err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
		return
	}
	fmt.Fprintf(out, " %d rows streamed (first row %v, total %v, fetches=%d pushes=%d tuples=%d bytes=%d)\n",
		rows, firstRow.Round(time.Microsecond), total.Round(time.Microsecond),
		res.Stats.SourceFetches, res.Stats.SourcePushes,
		res.Stats.TuplesShipped, res.Stats.BytesShipped)
	for _, f := range res.SourceErrors {
		cause := f.Err
		for e := cause; e != nil; e = errors.Unwrap(e) {
			cause = e
		}
		fmt.Fprintf(out, " partial: source %s unavailable: %v\n", f.Source, cause)
	}
}

// printProfile renders the EXPLAIN ANALYZE view of a traced query: the
// result summary followed by the annotated span tree, plus the optional
// Chrome trace export.
func printProfile(out io.Writer, res *mediator.Result, traceOut string) {
	printResult(out, res)
	if res.Trace == nil {
		fmt.Fprintln(out, " no trace collected")
		return
	}
	fmt.Fprintf(out, "profile (%d spans, trace %s):\n", res.Trace.SpanCount(), res.Trace.ID)
	fmt.Fprint(out, indent(obs.Render(res.Trace)))
	if traceOut == "" {
		return
	}
	b, err := obs.ChromeTrace(res.Trace)
	if err == nil {
		err = os.WriteFile(traceOut, b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(out, "error: trace-out: %v\n", err)
		return
	}
	fmt.Fprintf(out, " chrome trace written to %s\n", traceOut)
}

func printResult(out io.Writer, res *mediator.Result) {
	fmt.Fprint(out, res.Tab.String())
	fmt.Fprintf(out, " %d rows (fetches=%d pushes=%d tuples=%d bytes=%d)\n",
		res.Tab.Len(), res.Stats.SourceFetches, res.Stats.SourcePushes,
		res.Stats.TuplesShipped, res.Stats.BytesShipped)
	if res.Stats.CacheHits > 0 || res.Stats.CacheMisses > 0 {
		fmt.Fprintf(out, " cache: hits=%d misses=%d evictions=%d\n",
			res.Stats.CacheHits, res.Stats.CacheMisses, res.Stats.CacheEvictions)
	}
	if res.Stats.Retries > 0 || res.Stats.Redials > 0 {
		fmt.Fprintf(out, " recovered: retries=%d redials=%d\n", res.Stats.Retries, res.Stats.Redials)
	}
	for _, f := range res.SourceErrors {
		// The chain repeats the source name at every wrapping layer; the
		// console line wants the name once plus the root cause.
		cause := f.Err
		for e := cause; e != nil; e = errors.Unwrap(e) {
			cause = e
		}
		fmt.Fprintf(out, " partial: source %s unavailable: %v\n", f.Source, cause)
	}
}

func printHealth(out io.Writer, m *mediator.Mediator) {
	health := m.Health()
	names := make([]string, 0, len(health))
	for n := range health {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(out, " no sources connected")
		return
	}
	for _, n := range names {
		h := health[n]
		fmt.Fprintf(out, " %s: %s (failures=%d)", n, h.State, h.Failures)
		if h.LastErr != "" {
			fmt.Fprintf(out, " last: %s", h.LastErr)
		}
		fmt.Fprintln(out)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
