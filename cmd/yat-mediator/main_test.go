package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/mediator"
	"repro/internal/o2wrap"
	"repro/internal/waiswrap"
	"repro/internal/wire"
)

// newTestMediator mirrors main's mediator construction for repl tests.
func newTestMediator(lint bool) *mediator.Mediator {
	m := mediator.New()
	m.CheckInvariants = lint
	m.RegisterFunc("contains", waiswrap.Contains)
	return m
}

// startWrappers brings up the two Figure 2 wrappers on ephemeral ports.
func startWrappers(t *testing.T) (o2Addr, waisAddr string) {
	t.Helper()
	ow := o2wrap.New("o2artifact", datagen.PaperDB())
	schema := ow.ExportSchema()
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s1 := wire.Serve(ln1, wire.Exported{
		Source:    ow,
		Interface: ow.ExportInterface(),
		Structures: map[string]wire.StructureRef{
			"artifacts": {Model: schema, Pattern: "Artifact"},
			"persons":   {Model: schema, Pattern: "Person"},
		},
	})
	t.Cleanup(s1.Close)

	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(datagen.PaperWorks()))
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s2 := wire.Serve(ln2, wire.Exported{
		Source:    ww,
		Interface: ww.ExportInterface(),
		Structures: map[string]wire.StructureRef{
			"works": {Model: ww.ExportStructure(), Pattern: "Works"},
		},
	})
	t.Cleanup(s2.Close)
	return s1.Addr(), s2.Addr()
}

func TestConsoleSession(t *testing.T) {
	o2Addr, waisAddr := startWrappers(t)
	viewFile := filepath.Join(t.TempDir(), "view1.yat")
	if err := os.WriteFile(viewFile, []byte(datagen.View1Src), 0o644); err != nil {
		t.Fatal(err)
	}
	session := strings.Join([]string{
		"connect o2artifact " + o2Addr,
		"connect xmlartwork " + waisAddr,
		"load " + viewFile,
		"assume artifacts works $y > 1800",
		"assume persons works $y > 1800",
		"status",
		"query MAKE $t MATCH artworks WITH doc[ *work[ title: $t, more.cplace: $cl ] ] WHERE $cl = \"Giverny\" ;",
		"explain MAKE $t MATCH artworks WITH doc[ *work[ title: $t ] ] ;",
		"naive MAKE $t",
		"MATCH artworks WITH doc[ *work[ title: $t ] ] ;",
		"query MAKE $t MATCH nosuchdoc WITH doc[ *x[ t: $t ] ] ;",
		"bogus command",
		"quit",
	}, "\n") + "\n"
	var out strings.Builder
	// lint on: the whole session must survive plan invariant checking.
	if err := repl(strings.NewReader(session), &out, newTestMediator(true), mediator.ExecOptions{Parallelism: 1}, &dialConfig{}, true); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{
		"connected o2artifact",
		"connected xmlartwork",
		"views: artworks",
		"Nympheas",
		"optimized plan:",
		"SourceQuery",
		"Waterloo Bridge", // from the naive all-titles query
		"error:",          // unknown document
		"unknown command",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("session output missing %q:\n%s", frag, s)
		}
	}
}

// startO2Replica serves one more O₂ wrapper replica (same data) and
// returns its address.
func startO2Replica(t *testing.T) string {
	t.Helper()
	ow := o2wrap.New("o2artifact", datagen.PaperDB())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.Serve(ln, wire.Exported{Source: ow, Interface: ow.ExportInterface()})
	t.Cleanup(srv.Close)
	return srv.Addr()
}

func TestConsoleReplicatedConnect(t *testing.T) {
	o2Addr, waisAddr := startWrappers(t)
	o2Addr2 := startO2Replica(t)
	viewFile := filepath.Join(t.TempDir(), "view1.yat")
	if err := os.WriteFile(viewFile, []byte(datagen.View1Src), 0o644); err != nil {
		t.Fatal(err)
	}
	session := strings.Join([]string{
		"connect o2artifact " + o2Addr + "," + o2Addr2,
		"connect xmlartwork " + waisAddr,
		"load " + viewFile,
		"assume artifacts works $y > 1800",
		"assume persons works $y > 1800",
		"query MAKE $t MATCH artworks WITH doc[ *work[ title: $t, more.cplace: $cl ] ] WHERE $cl = \"Giverny\" ;",
		"replicas",
		"quit",
	}, "\n") + "\n"
	var out strings.Builder
	if err := repl(strings.NewReader(session), &out, newTestMediator(false), mediator.ExecOptions{Parallelism: 2}, &dialConfig{}, true); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{
		"connected o2artifact across 2 replicas",
		"Nympheas",
		"o2artifact (2/2 replicas closed)",
		"#0 " + o2Addr,
		"#1 " + o2Addr2,
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("replicated session output missing %q:\n%s", frag, s)
		}
	}
}

func TestConsoleUsageErrors(t *testing.T) {
	session := strings.Join([]string{
		"connect onlyname",
		"import notconnected",
		"load /no/such/file.yat",
		"assume x",
		"connect bad 127.0.0.1:1", // nothing listens there
		"exit",
	}, "\n") + "\n"
	var out strings.Builder
	if err := repl(strings.NewReader(session), &out, newTestMediator(false), mediator.ExecOptions{Parallelism: 4, Timeout: 30 * time.Second}, &dialConfig{}, true); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"usage: connect", "not connected", "error:", "usage: assume"} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %q in:\n%s", frag, s)
		}
	}
}
