package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
	"testing"
)

// harness type-checks one synthetic source file against the real compiled
// algebra, tab and xq packages and returns the lint findings.
func harness(t *testing.T, src string) []string {
	t.Helper()
	exports, err := exportData([]string{algebraPath, tabPath, xqPath})
	if err != nil {
		t.Fatalf("export data: %v", err)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p := exports[path]
		if p == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p)
	})
	var sealed []sealedSet
	for _, si := range sealedIfaces {
		impls, err := implementations(imp, si)
		if err != nil {
			t.Fatalf("implementations(%v): %v", si, err)
		}
		sealed = append(sealed, sealedSet{iface: si, impls: impls})
	}
	f, err := parser.ParseFile(fset, "synthetic.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: imp, Error: func(err error) { t.Errorf("type error: %v", err) }}
	conf.Check("synthetic", fset, []*ast.File{f}, info)
	return analyze(fset, []*ast.File{f}, info, "synthetic", sealed)
}

func TestImplementationSets(t *testing.T) {
	exports, err := exportData([]string{algebraPath, xqPath})
	if err != nil {
		t.Fatalf("export data: %v", err)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		return os.Open(exports[path])
	})
	ops, err := implementations(imp, sealedIface{algebraPath, "Op"})
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check a few well-known operators; the exact count tracks op.go.
	for _, want := range []string{"Bind", "Select", "Join", "DJoin", "SourceQuery", "TreeOp"} {
		if !ops[want] {
			t.Errorf("Op implementation set misses %s (have %v)", want, ops)
		}
	}
	if len(ops) < 10 {
		t.Errorf("suspiciously few Op implementations: %v", ops)
	}
	nodes, err := implementations(imp, sealedIface{xqPath, "Node"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Query", "ForClause", "PathExpr", "Step", "PosPred",
		"CmpExpr", "LogicExpr", "Literal", "ElemCons", "TextCons"} {
		if !nodes[want] {
			t.Errorf("Node implementation set misses %s (have %v)", want, nodes)
		}
	}
	if len(nodes) != 10 {
		t.Errorf("Node implementation set = %v, want exactly the 10 AST kinds", nodes)
	}
}

func TestNonExhaustiveOpSwitchIsFlagged(t *testing.T) {
	findings := harness(t, `package synthetic

import "repro/internal/algebra"

func f(op algebra.Op) int {
	switch op.(type) {
	case *algebra.Select:
		return 1
	default:
		return 0
	}
}
`)
	if len(findings) != 1 || !strings.Contains(findings[0], "misses") {
		t.Fatalf("want one exhaustiveness finding, got %v", findings)
	}
	// default: must not satisfy the check, but the missing list names ops.
	if !strings.Contains(findings[0], "Join") {
		t.Errorf("finding should name missing implementations: %v", findings)
	}
}

func TestIgnoreCommentSuppresses(t *testing.T) {
	findings := harness(t, `package synthetic

import "repro/internal/algebra"

func f(op algebra.Op) int {
	// yat-lint:ignore test only handles Select
	switch op.(type) {
	case *algebra.Select:
		return 1
	}
	return 0
}
`)
	if len(findings) != 0 {
		t.Fatalf("ignore comment not honored: %v", findings)
	}
}

func TestExhaustiveOpSwitchIsClean(t *testing.T) {
	findings := harness(t, `package synthetic

import "repro/internal/algebra"

func f(op algebra.Op) {
	switch op.(type) {
	case *algebra.Doc, *algebra.Bind, *algebra.Select, *algebra.Project,
		*algebra.MapExpr, *algebra.Join, *algebra.DJoin, *algebra.Union,
		*algebra.Intersect, *algebra.Distinct, *algebra.Group, *algebra.Sort,
		*algebra.SourceQuery, *algebra.Literal, *algebra.TreeOp:
	}
}
`)
	if len(findings) != 0 {
		t.Fatalf("exhaustive switch flagged: %v", findings)
	}
}

func TestNonExhaustiveNodeSwitchIsFlagged(t *testing.T) {
	findings := harness(t, `package synthetic

import "repro/internal/xq"

func f(n xq.Node) int {
	switch n.(type) {
	case *xq.PathExpr:
		return 1
	default:
		return 0
	}
}
`)
	if len(findings) != 1 || !strings.Contains(findings[0], "xq.Node misses") {
		t.Fatalf("want one xq.Node exhaustiveness finding, got %v", findings)
	}
	if !strings.Contains(findings[0], "ElemCons") {
		t.Errorf("finding should name missing node kinds: %v", findings)
	}
}

func TestExhaustiveNodeSwitchIsClean(t *testing.T) {
	findings := harness(t, `package synthetic

import "repro/internal/xq"

func f(n xq.Node) {
	switch n.(type) {
	case *xq.Query, *xq.ForClause, *xq.PathExpr, *xq.Step, *xq.PosPred,
		*xq.CmpExpr, *xq.LogicExpr, *xq.Literal, *xq.ElemCons, *xq.TextCons:
	}
}
`)
	if len(findings) != 0 {
		t.Fatalf("exhaustive xq.Node switch flagged: %v", findings)
	}
}

func TestSharedTabMutationIsFlagged(t *testing.T) {
	findings := harness(t, `package synthetic

import "repro/internal/tab"

func f(t *tab.Tab, u *tab.Tab) {
	t.AddRow(nil)     // mutating method on parameter
	u.Cols = nil      // field write through parameter
	local := tab.New("c")
	local.AddRow(nil) // locally constructed: fine
}
`)
	if len(findings) != 2 {
		t.Fatalf("want 2 tab-mutation findings, got %v", findings)
	}
	for _, f := range findings {
		if !strings.Contains(f, "shared *tab.Tab parameter") {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

func TestSharedTabMutationInClosure(t *testing.T) {
	findings := harness(t, `package synthetic

import "repro/internal/tab"

func f(t *tab.Tab) func() {
	return func() { t.SortBy("c") }
}
`)
	if len(findings) != 1 || !strings.Contains(findings[0], "SortBy") {
		t.Fatalf("closure mutation not flagged: %v", findings)
	}
}

// TestTreeIsClean is the regression gate: the repository itself must stay
// lint-clean (every intentional partial switch carries an ignore comment).
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	findings, err := run([]string{"repro/..."})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(findings) != 0 {
		t.Fatalf("tree has lint findings:\n%s", strings.Join(findings, "\n"))
	}
}
