// Command yat-lint is a repository-specific static analyzer for the YAT
// mediator, built only on the standard library (go/ast, go/parser,
// go/types). It enforces three invariants the general Go toolchain cannot:
//
//  1. Exhaustive sealed-interface type switches: any type switch whose tag
//     is an algebra.Op or an xq.Node must handle every implementation
//     declared in the owning package. Adding a new operator to op.go (or a
//     new AST node to internal/xq) therefore fails the lint at every
//     rewrite, execution, printing or compilation switch that silently
//     ignores it — the class of bug that turns a new operator into a no-op
//     plan node or drops a new syntax form on the floor.
//  2. No mutation of a shared *tab.Tab: a function receiving a *tab.Tab
//     parameter treats it as a shared operand (operator inputs are reused
//     across plan branches) and must not call its mutating methods
//     (Add, AddRow, SortBy, Concat) or write its fields; it must clone
//     first.
//  3. Inference-rule test coverage: the tests of internal/typecheck must
//     construct every algebra.Op implementation, so a new operator cannot
//     land without a test pinning its type inference rule (the inference
//     switch itself degrades unknown operators to Any by design, which is
//     exactly why the toolchain would never notice the gap).
//
// A finding is suppressed by a `// yat-lint:ignore <reason>` comment on the
// offending line or the line directly above it. A `default:` clause does
// NOT suppress the exhaustiveness check: a default that quietly returns the
// operator unchanged is precisely the bug the check exists to catch.
//
// Usage:
//
//	yat-lint [packages...]   (defaults to ./...)
//
// Exits 0 when clean, 1 with findings, 2 on loader errors. Test files are
// not analyzed by checks 1 and 2; check 3 reads the typecheck package's
// test files (syntactically) and runs whenever that package is in the
// analyzed set.
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

const (
	algebraPath   = "repro/internal/algebra"
	xqPath        = "repro/internal/xq"
	tabPath       = "repro/internal/tab"
	typecheckPath = "repro/internal/typecheck"
	ignoreTag     = "yat-lint:ignore"
)

// A sealedIface names an interface whose implementation set is closed within
// its declaring package, making exhaustive type switches checkable.
type sealedIface struct {
	path, name string
}

// sealedIfaces are the interfaces check 1 enforces exhaustiveness for.
var sealedIfaces = []sealedIface{
	{algebraPath, "Op"},
	{xqPath, "Node"},
}

// sealedSet pairs a sealed interface with its discovered implementations.
type sealedSet struct {
	iface sealedIface
	impls map[string]bool
}

// tabMutators are the *tab.Tab methods that modify the receiver in place.
var tabMutators = map[string]bool{
	"Add": true, "AddRow": true, "SortBy": true, "Concat": true,
}

func main() {
	pats := os.Args[1:]
	if len(pats) == 0 {
		pats = []string{"./..."}
	}
	findings, err := run(pats)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yat-lint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "yat-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// pkgInfo is the subset of `go list` output the linter needs.
type pkgInfo struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

func run(pats []string) ([]string, error) {
	pkgs, err := listPackages(pats)
	if err != nil {
		return nil, err
	}
	// The sealed-interface packages are always listed explicitly: analyzing
	// a package subset (yat-lint ./internal/foo) must not fail just because
	// the subset's dependency closure misses algebra or xq.
	exportPats := append(append([]string{}, pats...), algebraPath, xqPath)
	exports, err := exportData(exportPats)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p := exports[path]
		if p == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p)
	})

	// Each implementation set comes from the compiled declaring package, so
	// the lint tracks op.go / ast.go automatically.
	var sealed []sealedSet
	for _, si := range sealedIfaces {
		impls, err := implementations(imp, si)
		if err != nil {
			return nil, err
		}
		sealed = append(sealed, sealedSet{iface: si, impls: impls})
	}
	ops := sealed[0].impls // algebra.Op, used by check 3

	var findings []string
	for _, pkg := range pkgs {
		fs, err := lintPackage(fset, imp, pkg, sealed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pkg.ImportPath, err)
		}
		findings = append(findings, fs...)
		if pkg.ImportPath == typecheckPath {
			fs, err := checkTypecheckCoverage(ops)
			if err != nil {
				return nil, err
			}
			findings = append(findings, fs...)
		}
	}
	sort.Strings(findings)
	return findings, nil
}

// checkTypecheckCoverage (check 3) verifies that the typecheck package's
// tests construct every algebra.Op implementation. GoFiles excludes tests,
// so the test files are listed separately and inspected syntactically: a
// composite literal algebra.X{...} (or &algebra.X{...}) counts as coverage
// for operator X.
func checkTypecheckCoverage(ops map[string]bool) ([]string, error) {
	out, err := goTool([]string{"list", "-f", "{{.Dir}}\t{{range .TestGoFiles}}{{.}} {{end}}", typecheckPath})
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(strings.TrimSpace(out), "\t", 2)
	dir := parts[0]
	var names []string
	if len(parts) == 2 {
		names = strings.Fields(parts[1])
	}
	constructed := map[string]bool{}
	fset := token.NewFileSet()
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if sel, ok := cl.Type.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "algebra" {
					constructed[sel.Sel.Name] = true
				}
			}
			return true
		})
	}
	var findings []string
	for op := range ops {
		if !constructed[op] {
			findings = append(findings, fmt.Sprintf(
				"%s: tests never construct algebra.%s — its type inference rule is untested", typecheckPath, op))
		}
	}
	return findings, nil
}

// listPackages resolves the command-line patterns via the go tool.
func listPackages(pats []string) ([]pkgInfo, error) {
	args := append([]string{"list", "-f", "{{.ImportPath}}\t{{.Dir}}\t{{range .GoFiles}}{{.}} {{end}}"}, pats...)
	out, err := goTool(args)
	if err != nil {
		return nil, err
	}
	var pkgs []pkgInfo
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			continue
		}
		pkgs = append(pkgs, pkgInfo{
			ImportPath: parts[0],
			Dir:        parts[1],
			GoFiles:    strings.Fields(parts[2]),
		})
	}
	return pkgs, nil
}

// exportData maps every dependency's import path to its compiled export
// file. Modern toolchains ship no prebuilt stdlib .a files, so the default
// importer cannot be used; `go list -export` materializes export data for
// the whole dependency closure in the build cache instead.
func exportData(pats []string) (map[string]string, error) {
	args := append([]string{"list", "-deps", "-export", "-f", "{{.ImportPath}}={{.Export}}"}, pats...)
	out, err := goTool(args)
	if err != nil {
		return nil, err
	}
	m := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if i := strings.IndexByte(line, '='); i > 0 && line[i+1:] != "" {
			m[line[:i]] = line[i+1:]
		}
	}
	return m, nil
}

func goTool(args []string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go %s: %w", strings.Join(args[:2], " "), err)
	}
	return string(out), nil
}

// implementations returns the names of all concrete types in the sealed
// interface's declaring package whose value or pointer implements it.
func implementations(imp types.Importer, si sealedIface) (map[string]bool, error) {
	pkg, err := imp.Import(si.path)
	if err != nil {
		return nil, fmt.Errorf("importing %s: %w", si.path, err)
	}
	obj := pkg.Scope().Lookup(si.name)
	if obj == nil {
		return nil, fmt.Errorf("%s has no %s interface", si.path, si.name)
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil, fmt.Errorf("%s.%s is not an interface", si.path, si.name)
	}
	impls := map[string]bool{}
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() || name == si.name {
			continue
		}
		if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(types.NewPointer(tn.Type()), iface) {
			impls[name] = true
		}
	}
	if len(impls) == 0 {
		return nil, fmt.Errorf("no %s implementations found in %s", si.name, si.path)
	}
	return impls, nil
}

// lintPackage type-checks one package from source and runs both checks.
func lintPackage(fset *token.FileSet, imp types.Importer, pkg pkgInfo, sealed []sealedSet) ([]string, error) {
	var files []*ast.File
	for _, name := range pkg.GoFiles {
		path := filepath.Join(pkg.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	var typeErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	conf.Check(pkg.ImportPath, fset, files, info) // errors reported via conf.Error
	if typeErr != nil {
		return nil, typeErr
	}
	return analyze(fset, files, info, pkg.ImportPath, sealed), nil
}

// analyze runs both checks over a type-checked package.
func analyze(fset *token.FileSet, files []*ast.File, info *types.Info, pkgPath string, sealed []sealedSet) []string {
	ignored := map[string]map[int]bool{} // filename → lines carrying an ignore tag
	for _, f := range files {
		lines := map[int]bool{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, ignoreTag) {
					lines[fset.Position(c.Pos()).Line] = true
				}
			}
		}
		ignored[fset.Position(f.Pos()).Filename] = lines
	}
	c := &checker{fset: fset, info: info, sealed: sealed, ignored: ignored, pkgPath: pkgPath}
	for _, f := range files {
		c.file(f)
	}
	return c.findings
}

type checker struct {
	fset     *token.FileSet
	info     *types.Info
	sealed   []sealedSet
	ignored  map[string]map[int]bool
	pkgPath  string
	findings []string
	// params holds, per enclosing function (innermost last), the *tab.Tab
	// parameters considered shared operands.
	params []map[types.Object]bool
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	p := c.fset.Position(pos)
	if lines := c.ignored[p.Filename]; lines != nil && (lines[p.Line] || lines[p.Line-1]) {
		return
	}
	rel := p.Filename
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, p.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
	}
	c.findings = append(c.findings,
		fmt.Sprintf("%s:%d:%d: %s", rel, p.Line, p.Column, fmt.Sprintf(format, args...)))
}

func (c *checker) file(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			c.pushParams(x.Type)
		case *ast.FuncLit:
			c.pushParams(x.Type)
		case *ast.TypeSwitchStmt:
			c.checkOpSwitch(x)
		case *ast.CallExpr:
			c.checkTabCall(x)
		case *ast.AssignStmt:
			c.checkTabWrite(x)
		case *ast.IncDecStmt:
			if root := c.sharedTabRoot(x.X); root != "" {
				c.report(x.Pos(), "mutation of shared *tab.Tab parameter %s", root)
			}
		case nil:
		}
		return true
	})
	// ast.Inspect gives no post-order hook for popping one frame at a time,
	// so params frames are pushed eagerly and the stack reset per file; the
	// over-approximation is harmless because parameter objects are compared
	// by identity, never by name.
	c.params = nil
}

// pushParams records the function's *tab.Tab parameters. The tab package
// itself is exempt: Tab's own methods are the mutation API.
func (c *checker) pushParams(ft *ast.FuncType) {
	if c.pkgPath == tabPath {
		return
	}
	frame := map[types.Object]bool{}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				obj := c.info.Defs[name]
				if obj != nil && isTabPtr(obj.Type()) {
					frame[obj] = true
				}
			}
		}
	}
	c.params = append(c.params, frame)
}

func isTabPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == tabPath && named.Obj().Name() == "Tab"
}

// sharedTabRoot unwraps selector/index chains (t.Rows[i].x → t) and returns
// the parameter name when the base identifier is a shared *tab.Tab
// parameter of any enclosing function.
func (c *checker) sharedTabRoot(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := c.info.Uses[x]
			if obj == nil {
				return ""
			}
			for _, frame := range c.params {
				if frame[obj] {
					return x.Name
				}
			}
			return ""
		default:
			return ""
		}
	}
}

// checkTabCall flags mutating method calls on a shared *tab.Tab parameter.
func (c *checker) checkTabCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !tabMutators[sel.Sel.Name] {
		return
	}
	if ident, ok := sel.X.(*ast.Ident); ok {
		obj := c.info.Uses[ident]
		if obj == nil {
			return
		}
		for _, frame := range c.params {
			if frame[obj] {
				c.report(call.Pos(),
					"call to %s on shared *tab.Tab parameter %s (clone before mutating)",
					sel.Sel.Name, ident.Name)
				return
			}
		}
	}
}

// checkTabWrite flags field writes through a shared *tab.Tab parameter
// (t.Rows = ..., t.Rows[i] = ..., t.Cols = append(...)).
func (c *checker) checkTabWrite(as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		if _, isIdent := lhs.(*ast.Ident); isIdent {
			continue // plain variable assignment, not a field write
		}
		if root := c.sharedTabRoot(lhs); root != "" {
			c.report(lhs.Pos(), "write through shared *tab.Tab parameter %s (clone before mutating)", root)
		}
	}
}

// checkOpSwitch flags sealed-interface type switches (algebra.Op, xq.Node)
// that do not handle every implementation.
func (c *checker) checkOpSwitch(sw *ast.TypeSwitchStmt) {
	tag := switchTag(sw)
	if tag == nil {
		return
	}
	tv, ok := c.info.Types[tag]
	if !ok {
		return
	}
	var set *sealedSet
	for i := range c.sealed {
		if isSealedIface(tv.Type, c.sealed[i].iface) {
			set = &c.sealed[i]
			break
		}
	}
	if set == nil {
		return
	}
	handled := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			et, ok := c.info.Types[e]
			if !ok {
				continue
			}
			t := et.Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == set.iface.path {
				handled[named.Obj().Name()] = true
			}
		}
	}
	var missing []string
	for impl := range set.impls {
		if !handled[impl] {
			missing = append(missing, impl)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		c.report(sw.Pos(), "type switch over %s.%s misses %d implementation(s): %s",
			path.Base(set.iface.path), set.iface.name, len(missing), strings.Join(missing, ", "))
	}
}

// switchTag extracts the expression whose type is switched on:
// `switch x := e.(type)` or `switch e.(type)`.
func switchTag(sw *ast.TypeSwitchStmt) ast.Expr {
	var e ast.Expr
	switch a := sw.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			e = a.Rhs[0]
		}
	case *ast.ExprStmt:
		e = a.X
	}
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		return ta.X
	}
	return nil
}

func isSealedIface(t types.Type, si sealedIface) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == si.path && named.Obj().Name() == si.name
}
