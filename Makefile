GO ?= go

.PHONY: check build vet test lint bench bench-smoke

check: build vet test lint bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/yat-lint ./...

bench:
	$(GO) test -bench=. -benchmem .

# One iteration of every benchmark: catches bit-rotted benchmark code (and
# the result-equality assertions inside them) without paying for a full run.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run XXX .
