GO ?= go

.PHONY: check build vet test lint bench bench-smoke bench-json

check: build vet test lint bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/yat-lint ./...

bench:
	$(GO) test -bench=. -benchmem .

# One iteration of every benchmark: catches bit-rotted benchmark code (and
# the result-equality assertions inside them) without paying for a full run.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run XXX .

# Machine-readable Fig. 9 Q2 measurements (per-row vs batched vs cached) for
# CI trend tracking; asserts row equality across all variants as it runs.
bench-json:
	$(GO) run ./cmd/yat-experiments -quick -bench-json BENCH_PR3.json
