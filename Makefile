GO ?= go

.PHONY: check build vet test lint bench

check: build vet test lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/yat-lint ./...

bench:
	$(GO) test -bench=. -benchmem .
