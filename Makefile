GO ?= go

.PHONY: check build vet test lint bench bench-smoke bench-json feed-bench-json fault-matrix profile-smoke typecheck-smoke stream-smoke load-smoke feed-smoke bench-trace fuzz-short

check: build vet test lint fuzz-short fault-matrix bench-smoke profile-smoke typecheck-smoke stream-smoke load-smoke feed-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/yat-lint ./...

# A short fuzzing pass over the XQuery-FLWR parser: crash-freedom plus the
# parse/print/re-parse fixpoint property, seeded by the checked-in corpus.
fuzz-short:
	$(GO) test -run FuzzParseQuery -fuzz FuzzParseQuery -fuzztime 10s ./internal/xq

bench:
	$(GO) test -bench=. -benchmem .

# One iteration of every benchmark: catches bit-rotted benchmark code (and
# the result-equality assertions inside them) without paying for a full run.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run XXX .

# The fault-injection matrix: every injected fault kind (drop, truncate,
# garble, delay, kill) against Q2 over live wire wrappers, serial and
# parallel, under the race detector. Runs as part of `make test` too; this
# target re-runs just the matrix so a CI step can surface it by name.
fault-matrix:
	$(GO) test -race -run 'TestFaultMatrix|TestOnePercentFaultRate|TestAllowPartial|TestBreaker' ./internal/mediator ./internal/wire ./internal/faults

# Machine-readable Fig. 9 Q2 measurements (per-row vs batched vs traced vs
# cached vs 1%-fault recovery vs compiled-from-XQuery vs pipelined) plus the
# streaming memory sweep, for CI trend tracking; asserts row equality across
# all variants as it runs.
bench-json:
	$(GO) run ./cmd/yat-experiments -quick -bench-json BENCH_PR8.json

# Machine-readable E23 feed-family measurements: cold bulk ingest (rows/s),
# warm fetch-by-id against the sealed indexes, the three-family union over
# wire, and the ingest memory sweep whose decode-pipeline live-heap peak
# must stay flat across a 10× corpus growth.
feed-bench-json:
	$(GO) run ./cmd/yat-experiments -quick -feed-bench-json BENCH_PR10.json

# End-to-end streaming smoke: a large-n Q2 against out-of-process wrappers
# under live-heap and first-row-latency assertions, then the `stream`
# console command on the real three-process deployment. See
# scripts/stream_smoke.sh.
stream-smoke:
	./scripts/stream_smoke.sh

# End-to-end observability smoke: both wrappers and the mediator console as
# real processes, `profile` on Q2, the rendered span tree checked for
# per-operator lines, the exported Chrome trace validated as JSON, and the
# /metrics endpoints probed. See scripts/profile_smoke.sh.
profile-smoke:
	./scripts/profile_smoke.sh

# End-to-end plan-typing smoke: `typecheck` on Q2 renders the inferred
# pattern types from the wrappers' exported structures, and a query under
# -check-types (wire conformance mode) still returns rows. See
# scripts/typecheck_smoke.sh.
typecheck-smoke:
	./scripts/typecheck_smoke.sh

# End-to-end multi-tenant load smoke: two o2 replicas + the wais wrapper +
# the mediator front door as real processes, yat-loadgen driving concurrent
# closed-loop sessions across tenants, asserting zero errors and bounded
# p99; the JSON report lands in BENCH_PR9.json. Tune with LOADGEN_SESSIONS/
# LOADGEN_DURATION (the checked-in report is a 1000-session run). See
# scripts/load_smoke.sh.
load-smoke:
	./scripts/load_smoke.sh

# End-to-end bulk-feed smoke: feed-wrapper writes its zipped corpus, serves
# it after a quarantining streaming ingest, and the mediator console runs a
# query whose supported predicate is pushed (SourceQuery) while the
# unsupported one stays mediator-side. See scripts/feed_smoke.sh.
feed-smoke:
	./scripts/feed_smoke.sh

# Tracing-overhead benchmark: Fig. 9 Q2 batched with ExecOptions.Trace off
# vs. on (one iteration in CI; run without -benchtime for real numbers).
bench-trace:
	$(GO) test -bench 'BenchmarkTraceOverhead' -benchtime=1x -run XXX .
