// Package yat is the public API of this reproduction of "On Wrapping Query
// Languages and Efficient XML Integration" (Christophides, Cluet, Siméon;
// SIGMOD 2000): the YAT XML integration system — an XML algebra with Bind
// and Tree operators over ¬1NF Tab structures, the YAT_L integration
// language, a capability-description language for wrapping query languages
// (OQL, Wais full-text), and a three-round rewriting optimizer performing
// composition elimination, capability-based pushdown and information
// passing.
//
// Quick start (the paper's Section 2 application):
//
//	db := yat.PaperDB()                     // the O₂ trading database
//	works := yat.PaperWorks()               // the XML-Wais artworks
//	med, _ := yat.NewCulturalMediator(db, works)
//	res, _ := med.Query(yat.Q1)             // artifacts created at Giverny
//	fmt.Println(res.Tab)
//
// The deeper layers are importable individually: repro/internal/algebra
// (operators and plans), repro/internal/yatl (the language),
// repro/internal/capability (source descriptions), repro/internal/o2 and
// repro/internal/wais (the wrapped substrates), repro/internal/wire (the
// TCP deployment of Figure 2).
package yat

import (
	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/filter"
	"repro/internal/mediator"
	"repro/internal/o2"
	"repro/internal/o2wrap"
	"repro/internal/optimizer"
	"repro/internal/pattern"
	"repro/internal/tab"
	"repro/internal/wais"
	"repro/internal/waiswrap"
	"repro/internal/xmlenc"
	"repro/internal/yatl"
)

// Re-exported core types, so applications can hold values from the public
// API without importing internal packages directly.
type (
	// Node is a YAT data tree (an XML element, leaf or reference).
	Node = data.Node
	// Forest is an ordered sequence of trees.
	Forest = data.Forest
	// Tab is the ¬1NF relation of the algebra.
	Tab = tab.Tab
	// Op is an algebraic plan node.
	Op = algebra.Op
	// Mediator coordinates wrapped sources, views and query evaluation.
	Mediator = mediator.Mediator
	// Result bundles a query's rows, plans and execution counters.
	Result = mediator.Result
	// Interface is a source capability description (Figure 6).
	Interface = capability.Interface
	// Model is a set of named structural patterns (Figure 3).
	Model = pattern.Model
	// Program is a parsed YAT_L integration program.
	Program = yatl.Program
	// O2DB is the in-memory ODMG database substrate.
	O2DB = o2.DB
	// WaisEngine is the full-text retrieval substrate.
	WaisEngine = wais.Engine
	// O2Wrapper wraps an O₂ database as a YAT source.
	O2Wrapper = o2wrap.Wrapper
	// WaisWrapper wraps a Wais engine as a YAT source.
	WaisWrapper = waiswrap.Wrapper
)

// The paper's programs and queries.
const (
	// View1 is the integration program view1.yat of Section 2.
	View1 = datagen.View1Src
	// Q1 asks for the artifacts created at "Giverny" (Section 2).
	Q1 = datagen.Q1Src
	// Q2 asks for impressionist artworks sold under 200,000 (Section 5.3).
	Q2 = datagen.Q2Src
)

// PaperDB builds the trading database of the running example (Figure 1).
func PaperDB() *o2.DB { return datagen.PaperDB() }

// PaperWorks builds the XML works of Figure 1.
func PaperWorks() data.Forest { return datagen.PaperWorks() }

// GenerateWorkload builds a deterministic scaled workload with n artifacts
// (see repro/internal/datagen for full parameter control).
func GenerateWorkload(n int) (*o2.DB, data.Forest) {
	w := datagen.Generate(datagen.DefaultParams(n))
	return w.DB, w.Works
}

// NewMediator returns an empty mediator.
func NewMediator() *mediator.Mediator { return mediator.New() }

// NewO2Wrapper wraps an O₂ database under a source name.
func NewO2Wrapper(name string, db *o2.DB) *o2wrap.Wrapper { return o2wrap.New(name, db) }

// NewWaisWrapper indexes a forest of XML documents under the museum
// configuration and wraps the engine under a source name.
func NewWaisWrapper(name string, docs data.Forest) *waiswrap.Wrapper {
	return waiswrap.New(name, datagen.NewWaisEngine(docs))
}

// NewCulturalMediator assembles the complete Section 2 application: the O₂
// wrapper over db, the XML-Wais wrapper over works, both connected with
// capabilities and structures imported, view1 loaded, and the Figure 8
// containment assumptions declared. It returns the mediator together with
// the two wrappers (whose LastOQL / LastSearch fields expose what was
// pushed to each source).
func NewCulturalMediator(db *o2.DB, works data.Forest) (*mediator.Mediator, *o2wrap.Wrapper, *waiswrap.Wrapper, error) {
	ow := o2wrap.New("o2artifact", db)
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(works))
	m := mediator.New()
	if err := m.Connect(ow, ow.ExportInterface()); err != nil {
		return nil, nil, nil, err
	}
	if err := m.Connect(ww, ww.ExportInterface()); err != nil {
		return nil, nil, nil, err
	}
	schema := ow.ExportSchema()
	m.ImportStructure("artifacts", schema, "Artifact")
	m.ImportStructure("persons", schema, "Person")
	m.ImportStructure("works", ww.ExportStructure(), "Works")
	m.RegisterFunc("contains", waiswrap.Contains)
	for name, fn := range ow.Funcs() {
		m.RegisterFunc(name, fn)
	}
	if err := m.LoadProgram(datagen.View1Src); err != nil {
		return nil, nil, nil, err
	}
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")
	return m, ow, ww, nil
}

// ParseXML parses an XML document into a YAT tree.
func ParseXML(src string) (*data.Node, error) { return xmlenc.Parse(src) }

// SerializeXML renders a YAT tree as indented XML.
func SerializeXML(n *data.Node) string { return xmlenc.SerializeIndent(n) }

// ParseProgram parses a YAT_L integration program.
func ParseProgram(src string) (*yatl.Program, error) { return yatl.Parse(src) }

// ParseFilter parses a filter in the textual syntax.
func ParseFilter(src string) (*filter.Filter, error) { return filter.Parse(src) }

// DescribePlan renders an algebraic plan as an indented operator tree.
func DescribePlan(op algebra.Op) string { return algebra.Describe(op) }

// Optimize rewrites a plan with a standalone optimizer configured from the
// given interfaces and document-source map (most callers should use
// Mediator.Query, which wires this automatically).
func Optimize(plan algebra.Op, ifaces map[string]*capability.Interface, sourceDocs map[string]string) algebra.Op {
	return optimizer.New(optimizer.Options{
		Interfaces:  ifaces,
		SourceDocs:  sourceDocs,
		InfoPassing: true,
	}).Optimize(plan)
}
