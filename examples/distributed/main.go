// Distributed deployment: the Figure 2 installation transcript, reproduced
// in one process with real TCP connections. Two wrapper servers start on
// ephemeral ports, a mediator connects to both, imports their structural
// and query capabilities, loads view1 and evaluates Q1 and Q2 — every byte
// between mediator and wrappers travels as XML over the wire protocol.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"net"
	"os"

	yat "repro"
	"repro/internal/waiswrap"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "distributed: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// logos{simeon}: o2-wrapper -system cultural -base art -port 6066
	ow := yat.NewO2Wrapper("o2artifact", yat.PaperDB())
	schema := ow.ExportSchema()
	o2ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	o2srv := wire.Serve(o2ln, wire.Exported{
		Source:    ow,
		Interface: ow.ExportInterface(),
		Structures: map[string]wire.StructureRef{
			"artifacts": {Model: schema, Pattern: "Artifact"},
			"persons":   {Model: schema, Pattern: "Person"},
		},
	})
	defer o2srv.Close()
	fmt.Printf(" o2-wrapper is running at %s\n", o2srv.Addr())

	// sappho{christop}: xmlwais-wrapper -directory museum.src
	ww := yat.NewWaisWrapper("xmlartwork", yat.PaperWorks())
	waisln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	waissrv := wire.Serve(waisln, wire.Exported{
		Source:    ww,
		Interface: ww.ExportInterface(),
		Structures: map[string]wire.StructureRef{
			"works": {Model: ww.ExportStructure(), Pattern: "Works"},
		},
	})
	defer waissrv.Close()
	fmt.Printf(" xmlwais-wrapper is running at %s\n", waissrv.Addr())

	// cosmos{cluet}: yat-mediator
	med := yat.NewMediator()
	med.RegisterFunc("contains", waiswrap.Contains)
	for _, step := range []struct{ name, addr string }{
		{"o2artifact", o2srv.Addr()},
		{"xmlartwork", waissrv.Addr()},
	} {
		fmt.Printf("yat> connect %s %s;\n", step.name, step.addr)
		client, err := wire.Dial(step.addr)
		if err != nil {
			return err
		}
		defer client.Close()
		fmt.Printf("yat> import %s;\n", step.name)
		iface, err := client.ImportInterface()
		if err != nil {
			return err
		}
		if err := med.Connect(client, iface); err != nil {
			return err
		}
		sts, err := client.ImportStructures()
		if err != nil {
			return err
		}
		for doc, ref := range sts {
			med.ImportStructure(doc, ref.Model, ref.Pattern)
		}
	}
	fmt.Println(`yat> load "view1.yat";`)
	if err := med.LoadProgram(yat.View1); err != nil {
		return err
	}
	med.Assume("artifacts", "works", "$y > 1800")
	med.Assume("persons", "works", "$y > 1800")

	fmt.Println("\nyat> query Q1 (artifacts created at Giverny);")
	q1, err := med.Query(yat.Q1)
	if err != nil {
		return err
	}
	fmt.Print(q1.Tab)
	fmt.Printf(" (%d pushes, %d tuples shipped)\n", q1.Stats.SourcePushes, q1.Stats.TuplesShipped)

	fmt.Println("\nyat> query Q2 (impressionist artworks under 200,000);")
	q2, err := med.Query(yat.Q2)
	if err != nil {
		return err
	}
	fmt.Print(q2.Tab)
	fmt.Printf(" (%d pushes, %d tuples shipped)\n", q2.Stats.SourcePushes, q2.Stats.TuplesShipped)
	fmt.Println("\ndistributed plan for Q2:")
	fmt.Print(q2.Plan)
	return nil
}
