// Capability pushdown: a tour of Section 4 — how wrappers describe their
// query capabilities and how the mediator exploits them.
//
// The example prints the O₂ operational interface of Figure 6 and the Wais
// interface of Section 4.2 in their XML exchange format, shows which
// filters each source accepts, displays the OQL the O₂ wrapper generates
// for the Section 4.1 example, and demonstrates the contains/equality
// equivalence during Q2 optimization.
//
//	go run ./examples/capability-pushdown
package main

import (
	"fmt"
	"os"

	yat "repro"
	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/filter"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "capability-pushdown: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ow := yat.NewO2Wrapper("o2artifact", yat.PaperDB())
	ww := yat.NewWaisWrapper("xmlartwork", yat.PaperWorks())

	fmt.Println("== O2 operational interface (Figure 6) ==")
	fmt.Println(capability.Marshal(ow.ExportInterface()))
	fmt.Println("== XML-Wais operational interface (Section 4.2) ==")
	fmt.Println(capability.Marshal(ww.ExportInterface()))

	fmt.Println("== Filter acceptance ==")
	o2i, wi := ow.ExportInterface(), ww.ExportInterface()
	checks := []struct {
		iface *capability.Interface
		doc   string
		src   string
	}{
		{o2i, "artifacts", `set[ *class[ artifact.tuple[ title: $t, year: $y ] ] ]`},
		{o2i, "artifacts", `set[ *class[ artifact.tuple[ *~$attr: $v ] ] ]`},
		{wi, "works", `works[ *work@$w ]`},
		{wi, "works", `works[ *work[ title: $t ] ]`},
	}
	for _, c := range checks {
		f := filter.MustParse(c.src)
		if err := c.iface.AcceptsFilter(c.doc, f); err != nil {
			fmt.Printf("  %-12s REJECTS %s\n    reason: %v\n", c.iface.Name, c.src, err)
		} else {
			fmt.Printf("  %-12s accepts %s\n", c.iface.Name, c.src)
		}
	}

	fmt.Println("\n== Section 4.1: the wrapper translates a pushed plan to OQL ==")
	plan := &algebra.Select{
		From: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
			`set[ *class[ artifact.tuple[ title: $t, year: $y, creator: $c, price: $p,
			      owners.list[ *class[ person.tuple[ name: $n, auction: $au ] ] ] ] ] ]`)},
		Pred: algebra.MustParseExpr(`$y > 1800`),
	}
	fmt.Println("pushed algebra:")
	fmt.Print(yat.DescribePlan(plan))
	res, err := ow.Push(plan, nil)
	if err != nil {
		return err
	}
	fmt.Println("generated OQL:")
	fmt.Println(ow.LastOQL)
	fmt.Printf("result (%d rows):\n%s\n", res.Len(), res)

	fmt.Println("== Section 4.2: the contains equivalence during Q2 ==")
	med, ow2, ww2, err := yat.NewCulturalMediator(yat.PaperDB(), yat.PaperWorks())
	if err != nil {
		return err
	}
	med.Trace = func(line string) { fmt.Println("  [optimizer] " + firstLine(line)) }
	q2, err := med.Query(yat.Q2)
	if err != nil {
		return err
	}
	fmt.Println("optimized Q2 plan:")
	fmt.Print(q2.Plan)
	fmt.Printf("full-text search executed by Wais: %q\n", ww2.LastSearch)
	fmt.Printf("parameterized OQL executed by O2:\n%s\n", ow2.LastOQL)
	fmt.Printf("answer:\n%s", q2.Tab)
	return nil
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i] + " ..."
		}
	}
	return s
}
