// Cultural portal: the Web-portal scenario of the paper's introduction at
// realistic scale. A generated trading database (O₂) and museum catalog
// (XML-Wais) are integrated behind view1; the example evaluates Q1 and Q2
// under the naive and the optimized strategies and reports answer sizes,
// data transfer and source work — the quantities Section 5.3 argues
// capability-based rewriting improves.
//
//	go run ./examples/cultural-portal [-n 2000]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	yat "repro"
	"repro/internal/datagen"
	"repro/internal/mediator"
)

func main() {
	n := flag.Int("n", 2000, "number of artifacts in the trading database")
	flag.Parse()
	if err := run(*n); err != nil {
		fmt.Fprintf(os.Stderr, "cultural-portal: %v\n", err)
		os.Exit(1)
	}
}

func run(n int) error {
	w := datagen.Generate(datagen.DefaultParams(n))
	med, ow, ww, err := yat.NewCulturalMediator(w.DB, w.Works)
	if err != nil {
		return err
	}
	fmt.Printf("trading database: %d artifacts, %d persons; museum catalog: %d works\n\n",
		w.DB.ExtentSize("artifacts"), w.DB.ExtentSize("persons"), len(w.Works))

	queries := []struct {
		name, src, truth string
		want             int
	}{
		{"Q1 (artifacts created at Giverny)", yat.Q1, "generator ground truth", len(w.GivernyTitles)},
		{"Q2 (impressionist artworks under 200,000)", yat.Q2, "generator ground truth", len(w.Q2Titles)},
	}
	for _, q := range queries {
		fmt.Printf("== %s ==\n", q.name)
		naive, nd, err := timed(func() (*mediator.Result, error) { return med.QueryNaive(q.src) })
		if err != nil {
			return err
		}
		opt, od, err := timed(func() (*mediator.Result, error) { return med.Query(q.src) })
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %8s %10s %9s %8s %8s\n", "strategy", "rows", "time", "bytes", "fetches", "pushes")
		fmt.Printf("%-10s %8d %10s %9d %8d %8d\n", "naive", naive.Tab.Len(), nd.Round(time.Microsecond),
			naive.Stats.BytesShipped, naive.Stats.SourceFetches, naive.Stats.SourcePushes)
		fmt.Printf("%-10s %8d %10s %9d %8d %8d\n", "optimized", opt.Tab.Len(), od.Round(time.Microsecond),
			opt.Stats.BytesShipped, opt.Stats.SourceFetches, opt.Stats.SourcePushes)
		if naive.Tab.Len() != q.want || !naive.Tab.EqualUnordered(opt.Tab) {
			return fmt.Errorf("%s: results disagree (naive %d, optimized %d, %s %d)",
				q.name, naive.Tab.Len(), opt.Tab.Len(), q.truth, q.want)
		}
		fmt.Printf("both strategies agree with the %s (%d rows)\n\n", q.truth, q.want)
	}
	fmt.Printf("last OQL pushed to the trading database:\n  %s\n",
		oneLine(ow.LastOQL))
	fmt.Printf("last full-text search pushed to the museum catalog: %q (%d searches run)\n",
		ww.LastSearch, ww.E.SearchesRun)
	return nil
}

func timed(fn func() (*mediator.Result, error)) (*mediator.Result, time.Duration, error) {
	start := time.Now()
	res, err := fn()
	return res, time.Since(start), err
}

func oneLine(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, ' ')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}
