// Quickstart: the complete Section 2 application in one process.
//
// It builds the paper's O₂ trading database and XML-Wais artworks, wires
// them behind a mediator, materializes the integrated artworks view, and
// runs query Q1 ("what are the artifacts created at Giverny?") both naively
// and optimized, printing the plans so the Figure 8 rewriting is visible.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	yat "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	med, _, _, err := yat.NewCulturalMediator(yat.PaperDB(), yat.PaperWorks())
	if err != nil {
		return err
	}

	fmt.Println("== Integrated artworks view (view1.yat) ==")
	view, err := med.Materialize("artworks")
	if err != nil {
		return err
	}
	for _, row := range view.Rows {
		fmt.Println(yat.SerializeXML(row[0].Tree))
	}

	fmt.Println("== Q1: artifacts created at Giverny ==")
	naive, err := med.QueryNaive(yat.Q1)
	if err != nil {
		return err
	}
	opt, err := med.Query(yat.Q1)
	if err != nil {
		return err
	}
	fmt.Println("naive plan (materialize the view, then query it):")
	fmt.Print(indent(naive.NaivePlan))
	fmt.Println("optimized plan (Bind–Tree eliminated, O₂ branch pruned, pushed to Wais):")
	fmt.Print(indent(opt.Plan))
	fmt.Println("answer:")
	fmt.Print(opt.Tab)
	fmt.Printf("transfer: naive shipped %d bytes in %d fetches; optimized %d bytes in %d pushes\n",
		naive.Stats.BytesShipped, naive.Stats.SourceFetches,
		opt.Stats.BytesShipped, opt.Stats.SourcePushes)
	return nil
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "  " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
