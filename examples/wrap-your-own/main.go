// Wrap your own source: the paper's central claim is that the operational
// model wraps *any* source generically — full query languages (OQL),
// restricted engines (Wais), or, as here, a source you build yourself.
//
// This example wraps a tiny in-memory "auction ledger" — a flat table of
// (title, hammer price, sale year) rows with one capability: an equality
// lookup by title. It exports a structure, a capability interface
// admitting only that lookup, and a Push that serves it. The mediator then
// integrates the ledger with the cultural sources: a query joining the
// integrated artworks view with the ledger turns into a DJoin that calls
// the ledger once per artwork (information passing), without the ledger
// ever shipping its full table.
//
//	go run ./examples/wrap-your-own
package main

import (
	"fmt"
	"os"

	yat "repro"
	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/pattern"
	"repro/internal/tab"
)

// Ledger is the source being wrapped: a flat auction-results table.
type Ledger struct {
	rows    []ledgerRow
	Lookups int // observability: how many point lookups the mediator pushed
}

type ledgerRow struct {
	title  string
	hammer float64
	year   int64
}

// --- the wrapper: algebra.Source plus capability/structure export ---

// Name implements algebra.Source.
func (l *Ledger) Name() string { return "auctionledger" }

// Documents implements algebra.Source.
func (l *Ledger) Documents() []string { return []string{"sales"} }

// Fetch ships the whole ledger as XML (the capability the optimizer tries
// to avoid using).
func (l *Ledger) Fetch(doc string) (data.Forest, error) {
	if doc != "sales" {
		return nil, fmt.Errorf("ledger: unknown document %q", doc)
	}
	root := data.Elem("sales")
	for _, r := range l.rows {
		root.Add(data.Elem("sale",
			data.Text("title", r.title),
			data.FloatLeaf("hammer", r.hammer),
			data.IntLeaf("year", r.year),
		))
	}
	return data.Forest{root}, nil
}

// Push implements the single declared capability: Select(title = const)
// over the sale bind — a point lookup. Anything else is refused, exactly
// as the capability interface advertises.
func (l *Ledger) Push(plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	var title string
	var cols []string
	// yat-lint:ignore intentionally partial: the ledger declares a single capability (title point lookup); everything else is refused
	switch x := plan.(type) {
	case *algebra.Select:
		b, ok := x.From.(*algebra.Bind)
		if !ok || b.Doc != "sales" {
			return nil, fmt.Errorf("ledger: only selections over the sales bind are supported")
		}
		cols = b.F.Vars()
		for _, c := range algebra.SplitConj(x.Pred) {
			cmp, ok := c.(algebra.Cmp)
			if !ok || cmp.Op != algebra.OpEq {
				return nil, fmt.Errorf("ledger: only title equality is supported, got %s", c)
			}
			// One side is the bound title column; the other is a constant
			// or a DJoin parameter.
			for _, side := range []algebra.Expr{cmp.L, cmp.R} {
				if k, ok := side.(algebra.Const); ok && k.Atom.Kind == data.KindString {
					title = k.Atom.S
				}
				if v, ok := side.(algebra.Var); ok {
					if cell, ok := params[v.Name]; ok {
						if a, ok := cell.AsAtom(); ok {
							title = a.S
						}
					}
				}
			}
		}
	default:
		return nil, fmt.Errorf("ledger: operator %T is beyond the declared capabilities", plan)
	}
	if title == "" {
		return nil, fmt.Errorf("ledger: the lookup needs a title")
	}
	l.Lookups++
	out := tab.New(cols...)
	for _, r := range l.rows {
		if r.title != title {
			continue
		}
		row := make(tab.Row, len(cols))
		for i, c := range cols {
			switch c {
			case "$lt":
				row[i] = tab.AtomCell(data.String(r.title))
			case "$hammer":
				row[i] = tab.AtomCell(data.Float(r.hammer))
			case "$saleyear":
				row[i] = tab.AtomCell(data.Int(r.year))
			default:
				row[i] = tab.Null()
			}
		}
		out.AddRow(row)
	}
	return out, nil
}

// ExportStructure describes the ledger's data shape (Figure 3 style).
func (l *Ledger) ExportStructure() *pattern.Model {
	return pattern.MustParseModel(`model auctionledger
Sales := sales[ *&Sale ]
Sale  := sale[ title: String, hammer: Float, year: Int ]`)
}

// ExportInterface declares the single capability: bind sales rows by the
// fixed attribute shape, select with equality only (Figure 6 style).
func (l *Ledger) ExportInterface() *capability.Interface {
	i := capability.NewInterface("auctionledger")
	fm := capability.NewFModel("ledgerfmodel")
	str := func() *capability.FT { return &capability.FT{Kind: pattern.KString} }
	fm.Define("Fsales", &capability.FT{
		Kind: pattern.KNode, Label: "sales", Bind: capability.BindNone,
		Items: []capability.FTItem{{Star: true, Inst: capability.InstNone,
			F: &capability.FT{Kind: pattern.KNode, Label: "sale", Bind: capability.BindNone,
				Items: []capability.FTItem{
					{F: &capability.FT{Kind: pattern.KNode, Label: "title", Items: []capability.FTItem{{F: str()}}}},
					{F: &capability.FT{Kind: pattern.KNode, Label: "hammer", Items: []capability.FTItem{{F: &capability.FT{Kind: pattern.KFloat}}}}},
					{F: &capability.FT{Kind: pattern.KNode, Label: "year", Items: []capability.FTItem{{F: &capability.FT{Kind: pattern.KInt}}}}},
				}}}},
	})
	i.FModels = append(i.FModels, fm)
	i.Binds["sales"] = capability.BindCap{FModel: "ledgerfmodel", FPattern: "Fsales"}
	i.Operations = append(i.Operations,
		capability.Operation{Name: "bind", Kind: "algebra"},
		capability.Operation{Name: "select", Kind: "algebra"},
		capability.Operation{Name: "eq", Kind: "boolean"},
	)
	return i
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "wrap-your-own: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ledger := &Ledger{rows: []ledgerRow{
		{"Nympheas", 2100000, 1998},
		{"Waterloo Bridge", 410000, 1997},
		{"Dancers", 65000, 1999},
	}}

	med, _, _, err := yat.NewCulturalMediator(yat.PaperDB(), yat.PaperWorks())
	if err != nil {
		return err
	}
	if err := med.Connect(ledger, ledger.ExportInterface()); err != nil {
		return err
	}
	med.ImportStructure("sales", ledger.ExportStructure(), "Sales")

	fmt.Println("== The ledger's capability interface (what the mediator imported) ==")
	fmt.Println(capability.Marshal(ledger.ExportInterface()))

	fmt.Println("== Integrated query: artworks with their auction results ==")
	q := `MAKE result[ title: $t, year: $y, hammer: $hammer ]
MATCH artworks WITH doc[ *work[ title: $t, year: $y ] ],
      sales WITH sales[ *sale[ title: $lt, hammer: $hammer ] ]
WHERE $t = $lt`
	res, err := med.Query(q)
	if err != nil {
		return err
	}
	fmt.Println("optimized plan:")
	fmt.Print(res.Plan)
	fmt.Println("answer:")
	fmt.Print(res.Tab)
	fmt.Printf("\nledger point lookups served: %d (never shipped its table: %d fetches)\n",
		ledger.Lookups, res.Stats.SourceFetches)

	// The declared capability is the contract: unsupported pushes fail loudly.
	_, err = ledger.Push(&algebra.Bind{Doc: "sales",
		F: filter.MustParse(`sales[ *sale[ hammer: $h ] ]`)}, nil)
	fmt.Printf("\npushing beyond the declared capability: %v\n", err)
	return nil
}
