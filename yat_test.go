package yat

import (
	"strings"
	"testing"

	"repro/internal/datagen"
)

func TestQuickstartFlow(t *testing.T) {
	med, ow, ww, err := NewCulturalMediator(PaperDB(), PaperWorks())
	if err != nil {
		t.Fatal(err)
	}
	res, err := med.Query(Q1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tab.Len() != 1 {
		t.Fatalf("Q1 rows = %d", res.Tab.Len())
	}
	if a, _ := res.Tab.Rows[0][0].AsAtom(); a.S != "Nympheas" {
		t.Errorf("Q1 = %v", a)
	}
	q2, err := med.Query(Q2)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Tab.Len() != 1 {
		t.Fatalf("Q2 rows = %d", q2.Tab.Len())
	}
	if ww.LastSearch == "" {
		t.Error("Q2 must push a full-text search")
	}
	if ow.LastOQL == "" {
		t.Error("Q2 must push OQL")
	}
}

func TestFacadeXMLHelpers(t *testing.T) {
	n, err := ParseXML(`<work><title>Nympheas</title></work>`)
	if err != nil {
		t.Fatal(err)
	}
	s := SerializeXML(n)
	if !strings.Contains(s, "<title>Nympheas</title>") {
		t.Errorf("SerializeXML = %q", s)
	}
	if _, err := ParseXML("<broken"); err == nil {
		t.Error("broken XML must fail")
	}
}

func TestFacadeParsers(t *testing.T) {
	if _, err := ParseProgram(View1); err != nil {
		t.Errorf("View1: %v", err)
	}
	if _, err := ParseFilter(`works[ *work[ title: $t ] ]`); err != nil {
		t.Errorf("ParseFilter: %v", err)
	}
	if _, err := ParseFilter(`broken[`); err == nil {
		t.Error("broken filter must fail")
	}
}

func TestFacadeOptimize(t *testing.T) {
	med, _, _, err := NewCulturalMediator(PaperDB(), PaperWorks())
	if err != nil {
		t.Fatal(err)
	}
	naive, err := med.Compose(Q2)
	if err != nil {
		t.Fatal(err)
	}
	opt := med.Optimize(naive)
	if !strings.Contains(DescribePlan(opt), "SourceQuery") {
		t.Errorf("Optimize did not push:\n%s", DescribePlan(opt))
	}
}

func TestGenerateWorkloadFacade(t *testing.T) {
	db, works := GenerateWorkload(150)
	if db.ExtentSize("artifacts") != 150 || len(works) == 0 {
		t.Fatalf("workload: %d artifacts, %d works", db.ExtentSize("artifacts"), len(works))
	}
	med, _, _, err := NewCulturalMediator(db, works)
	if err != nil {
		t.Fatal(err)
	}
	w := datagen.Generate(datagen.DefaultParams(150))
	res, err := med.Query(Q1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tab.Len() != len(w.GivernyTitles) {
		t.Errorf("Q1 rows = %d, ground truth %d", res.Tab.Len(), len(w.GivernyTitles))
	}
}

func TestMaterializedViewMatchesFigure1Integration(t *testing.T) {
	med, _, _, err := NewCulturalMediator(PaperDB(), PaperWorks())
	if err != nil {
		t.Fatal(err)
	}
	view, err := med.Materialize("artworks")
	if err != nil {
		t.Fatal(err)
	}
	doc := view.Rows[0][0].Tree
	works := doc.Children("work")
	if len(works) != 2 {
		t.Fatalf("integrated works = %d", len(works))
	}
	// Each integrated work combines trading info (year, price, owners) with
	// descriptive info (style, size, optional fields).
	for _, w := range works {
		for _, field := range []string{"title", "artist", "year", "price", "style", "size", "owners", "more"} {
			if w.Child(field) == nil {
				t.Errorf("work %s lacks %s", w.Child("title"), field)
			}
		}
		if w.ID == "" {
			t.Error("works must carry Skolem identifiers")
		}
	}
}
