// Command validate-trace checks a Chrome trace-event JSON export (the
// yat-mediator -trace-out file) for structural validity — an object with a
// non-trivial traceEvents array of complete ("X") events carrying a trace
// id — and optionally probes metrics endpoints for valid JSON snapshots.
// Used by scripts/profile_smoke.sh so CI needs no jq/python.
//
// Usage:
//
//	validate-trace TRACE.json [http://host:port/metrics ...]
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

type traceFile struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: validate-trace TRACE.json [metrics-url ...]")
		os.Exit(2)
	}
	if err := validateTrace(os.Args[1]); err != nil {
		fmt.Fprintf(os.Stderr, "validate-trace: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	for _, url := range os.Args[2:] {
		if err := validateMetrics(url); err != nil {
			fmt.Fprintf(os.Stderr, "validate-trace: %s: %v\n", url, err)
			os.Exit(1)
		}
	}
}

func validateTrace(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(b, &tf); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if len(tf.TraceEvents) < 2 {
		return fmt.Errorf("only %d trace events; expected a plan-shaped tree", len(tf.TraceEvents))
	}
	for i, ev := range tf.TraceEvents {
		if ev.Phase != "X" {
			return fmt.Errorf("event %d has phase %q, want complete events (X)", i, ev.Phase)
		}
		id, _ := ev.Args["trace_id"].(string)
		if !strings.HasPrefix(id, "t") {
			return fmt.Errorf("event %d (%s) lacks a trace id", i, ev.Name)
		}
	}
	fmt.Printf("%s: %d trace events, ok\n", path, len(tf.TraceEvents))
	return nil
}

func validateMetrics(url string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var snap map[string]any
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := snap[key]; !ok {
			return fmt.Errorf("snapshot lacks %q", key)
		}
	}
	fmt.Printf("%s: ok\n", url)
	return nil
}
