#!/bin/sh
# load_smoke.sh — end-to-end multi-tenant load smoke test.
#
# Stands up the real replicated deployment as separate processes:
#
#   o2-wrapper x2 (replicas of one logical source) + xmlwais-wrapper
#       -> yat-mediator -serve (front door, replicated connect)
#       -> yat-loadgen (concurrent closed-loop sessions over HTTP)
#
# and asserts the run completes with zero transport/execution errors, a
# bounded p99 and a minimum completed-query count. The JSON report lands in
# BENCH_PR9.json (CI uploads it as an artifact).
#
# Tunables (environment):
#   LOADGEN_SESSIONS  concurrent sessions        (default 200)
#   LOADGEN_DURATION  run length                 (default 5s)
#   LOADGEN_P99_MS    p99 latency bound in ms    (default 2000)
#   LOADGEN_MIN_Q     minimum completed queries  (default 200)
#   LOADGEN_OUT       report path                (default BENCH_PR9.json)
#
# Requires only the go toolchain.
set -eu

cd "$(dirname "$0")/.."

SESSIONS="${LOADGEN_SESSIONS:-200}"
DURATION="${LOADGEN_DURATION:-5s}"
P99_MS="${LOADGEN_P99_MS:-2000}"
MIN_Q="${LOADGEN_MIN_Q:-200}"
OUT="${LOADGEN_OUT:-BENCH_PR9.json}"

WORK="$(mktemp -d)"
O2A_PORT=17186
O2B_PORT=17187
WAIS_PORT=17180
DOOR_PORT=17190
PIDS=""

cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "load-smoke: building binaries"
go build -o "$WORK/o2-wrapper" ./cmd/o2-wrapper
go build -o "$WORK/xmlwais-wrapper" ./cmd/xmlwais-wrapper
go build -o "$WORK/yat-mediator" ./cmd/yat-mediator
go build -o "$WORK/yat-loadgen" ./cmd/yat-loadgen

echo "load-smoke: starting 2 o2 replicas + 1 wais wrapper"
"$WORK/o2-wrapper" -port $O2A_PORT >"$WORK/o2a.log" 2>&1 &
PIDS="$PIDS $!"
"$WORK/o2-wrapper" -port $O2B_PORT >"$WORK/o2b.log" 2>&1 &
PIDS="$PIDS $!"
"$WORK/xmlwais-wrapper" -port $WAIS_PORT >"$WORK/wais.log" 2>&1 &
PIDS="$PIDS $!"

i=0
until grep -q "is running at" "$WORK/o2a.log" 2>/dev/null &&
      grep -q "is running at" "$WORK/o2b.log" 2>/dev/null &&
      grep -q "is running at" "$WORK/wais.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "load-smoke: FAIL — wrappers did not come up" >&2
        cat "$WORK/o2a.log" "$WORK/o2b.log" "$WORK/wais.log" >&2
        exit 1
    fi
    sleep 0.1
done

cat >"$WORK/session.txt" <<EOF
connect o2artifact 127.0.0.1:$O2A_PORT,127.0.0.1:$O2B_PORT
connect xmlartwork 127.0.0.1:$WAIS_PORT
load view1.yat
assume artifacts works \$y > 1800
assume persons works \$y > 1800
replicas
EOF

echo "load-smoke: starting the mediator front door on :$DOOR_PORT"
"$WORK/yat-mediator" -script "$WORK/session.txt" -serve 127.0.0.1:$DOOR_PORT \
    -parallel 2 -cache 256 -tenant-concurrency 16 -tenant-queue 128 \
    -tenant-queue-timeout 20s >"$WORK/mediator.log" 2>&1 &
PIDS="$PIDS $!"

i=0
until grep -q "front door is running at" "$WORK/mediator.log" 2>/dev/null &&
      grep -q "connected o2artifact across 2 replicas" "$WORK/mediator.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "load-smoke: FAIL — front door did not come up" >&2
        cat "$WORK/mediator.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "load-smoke: driving $SESSIONS sessions for $DURATION"
"$WORK/yat-loadgen" -addr 127.0.0.1:$DOOR_PORT \
    -sessions "$SESSIONS" -duration "$DURATION" -tenants 8 \
    -out "$OUT" -assert-no-errors -assert-p99-ms "$P99_MS" -assert-min-queries "$MIN_Q"

# The console must have reported the replica set connected and healthy
# (post-load distribution across replicas is pinned by the route tests).
if ! grep -q "2/2 replicas closed" "$WORK/mediator.log"; then
    echo "load-smoke: FAIL — replicas not reported healthy" >&2
    cat "$WORK/mediator.log" >&2
    exit 1
fi

echo "load-smoke: OK"
