#!/bin/sh
# feed_smoke.sh — end-to-end bulk-feed wrapper smoke test.
#
# Exercises the whole third-family path as real processes:
#   1. feed-wrapper -write-dump produces the deterministic zipped corpus.
#   2. feed-wrapper -port 0 ingests it through the streaming pipeline
#      (quarantining the malformed records) and serves the wire protocol;
#      the bound port is parsed from the startup line.
#   3. The mediator console connects, runs a query whose journal equality
#      is within the feed's capability profile and whose year comparison is
#      not, checks rows come back, and `explain` confirms the split: a
#      SourceQuery pushed to bulkfeed under a mediator-side Select.
#
# Requires only the go toolchain.
set -eu

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
PIDS=""

cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "feed-smoke: building binaries"
go build -o "$WORK/feed-wrapper" ./cmd/feed-wrapper
go build -o "$WORK/yat-mediator" ./cmd/yat-mediator

echo "feed-smoke: writing the zipped corpus fixture"
"$WORK/feed-wrapper" -write-dump "$WORK/corpus.xml.zip" -records 600 >"$WORK/write.out"
if ! grep -q "wrote 600 lines" "$WORK/write.out"; then
    echo "feed-smoke: FAIL — corpus write did not report 600 lines" >&2
    cat "$WORK/write.out" >&2
    exit 1
fi

"$WORK/feed-wrapper" -port 0 -dump "$WORK/corpus.xml.zip" >"$WORK/feed.log" 2>&1 &
PIDS="$PIDS $!"

i=0
until grep -q "is running at" "$WORK/feed.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "feed-smoke: FAIL — feed-wrapper did not come up" >&2
        cat "$WORK/feed.log" >&2
        exit 1
    fi
    sleep 0.1
done

# The ingest pipeline must have quarantined the corpus's malformed lines
# (4% of 600) rather than aborting on them.
if ! grep -q "records ingested, [1-9][0-9]* quarantined" "$WORK/feed.log"; then
    echo "feed-smoke: FAIL — startup line reports no quarantined records" >&2
    cat "$WORK/feed.log" >&2
    exit 1
fi

PORT="$(sed -n 's/.*is running at [^:]*:\([0-9][0-9]*\) .*/\1/p' "$WORK/feed.log")"
if [ -z "$PORT" ]; then
    echo "feed-smoke: FAIL — could not parse the bound port" >&2
    cat "$WORK/feed.log" >&2
    exit 1
fi

cat >"$WORK/session.txt" <<EOF
connect bulkfeed 127.0.0.1:$PORT
query MAKE result[ title: \$t, journal: \$j ]
MATCH records WITH records[ *record[ title: \$t, journal: \$j, year: \$y ] ]
WHERE \$j = "Journal of Modern Art" AND \$y > 1900 ;
explain MAKE result[ title: \$t, journal: \$j ]
MATCH records WITH records[ *record[ title: \$t, journal: \$j, year: \$y ] ]
WHERE \$j = "Journal of Modern Art" AND \$y > 1900 ;
quit
EOF

echo "feed-smoke: querying the live wrapper through the mediator console"
"$WORK/yat-mediator" -script "$WORK/session.txt" >"$WORK/console.out" 2>&1

# Rows came back, the supported predicate was pushed as a source query,
# and the unsupported ordering comparison stayed mediator-side.
for want in 'result[title:' 'SourceQuery(bulkfeed)' 'Select($y > 1900)'; do
    if ! grep -qF "$want" "$WORK/console.out"; then
        echo "feed-smoke: FAIL — console output lacks \"$want\"" >&2
        cat "$WORK/console.out" >&2
        exit 1
    fi
done
if grep -q "^error:" "$WORK/console.out"; then
    echo "feed-smoke: FAIL — console reported an error" >&2
    cat "$WORK/console.out" >&2
    exit 1
fi

echo "feed-smoke: OK"
