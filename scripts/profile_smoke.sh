#!/bin/sh
# profile_smoke.sh — end-to-end observability smoke test.
#
# Starts both wrapper servers and the mediator console as separate
# processes (the real Figure 2 deployment), runs `profile` on the paper's
# Q2, and checks that
#   - the rendered span tree contains the expected operator lines,
#   - the exported Chrome trace (TRACE_Q2.json) is valid trace-event JSON,
#   - the mediator's and wrappers' /metrics endpoints serve valid JSON.
#
# Requires only the go toolchain (JSON validation is a small Go helper).
set -eu

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
O2_PORT=17066
WAIS_PORT=17060
O2_METRICS=127.0.0.1:17166
WAIS_METRICS=127.0.0.1:17161
MED_METRICS=127.0.0.1:17167
PIDS=""

cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "profile-smoke: building binaries"
go build -o "$WORK/o2-wrapper" ./cmd/o2-wrapper
go build -o "$WORK/xmlwais-wrapper" ./cmd/xmlwais-wrapper
go build -o "$WORK/yat-mediator" ./cmd/yat-mediator
go build -o "$WORK/validate-trace" ./scripts/validate-trace

"$WORK/o2-wrapper" -port $O2_PORT -metrics-addr $O2_METRICS >"$WORK/o2.log" 2>&1 &
PIDS="$PIDS $!"
"$WORK/xmlwais-wrapper" -port $WAIS_PORT -metrics-addr $WAIS_METRICS >"$WORK/wais.log" 2>&1 &
PIDS="$PIDS $!"

# Both wrappers print an "is running at" line once their listener is up.
i=0
until grep -q "is running at" "$WORK/o2.log" 2>/dev/null &&
      grep -q "is running at" "$WORK/wais.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "profile-smoke: FAIL — wrappers did not come up" >&2
        cat "$WORK/o2.log" "$WORK/wais.log" >&2
        exit 1
    fi
    sleep 0.1
done

cat >"$WORK/session.txt" <<EOF
connect o2artifact 127.0.0.1:$O2_PORT
connect xmlartwork 127.0.0.1:$WAIS_PORT
load view1.yat
profile MAKE result[ title: \$t, price: \$p ]
MATCH artworks WITH doc[ *work[ title: \$t, style: \$s, price: \$p ] ]
WHERE \$s = "Impressionist" AND \$p < 200000 ;
quit
EOF

echo "profile-smoke: running profile on Q2"
"$WORK/yat-mediator" -script "$WORK/session.txt" \
    -trace-out TRACE_Q2.json -metrics-addr $MED_METRICS >"$WORK/profile.out" 2>&1

for want in "profile (" "DJoin" "SourceQuery(xmlartwork)" "chrome trace written"; do
    if ! grep -q "$want" "$WORK/profile.out"; then
        echo "profile-smoke: FAIL — output lacks \"$want\"" >&2
        cat "$WORK/profile.out" >&2
        exit 1
    fi
done

echo "profile-smoke: validating TRACE_Q2.json and /metrics endpoints"
"$WORK/validate-trace" TRACE_Q2.json \
    "http://$O2_METRICS/metrics" "http://$WAIS_METRICS/metrics"

echo "profile-smoke: OK (see TRACE_Q2.json)"
