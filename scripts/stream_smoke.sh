#!/bin/sh
# stream_smoke.sh — end-to-end streaming smoke test.
#
# Two stages:
#   1. `yat-experiments -stream-smoke`: a large-n Q2 against out-of-process
#      wrappers, asserting the pipelined engine's three promises — rows
#      byte-identical to the materialized engine, mediator live-heap peak
#      under half the materialized run's, first row in under 25% of total
#      query time.
#   2. The real Figure 2 deployment (both wrappers and the mediator console
#      as separate processes) running the `stream` console command on Q2,
#      checking rows arrive and the streaming summary line is printed.
#
# Requires only the go toolchain.
set -eu

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
O2_PORT=17086
WAIS_PORT=17080
PIDS=""

cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "stream-smoke: building binaries"
go build -o "$WORK/o2-wrapper" ./cmd/o2-wrapper
go build -o "$WORK/xmlwais-wrapper" ./cmd/xmlwais-wrapper
go build -o "$WORK/yat-mediator" ./cmd/yat-mediator
go build -o "$WORK/yat-experiments" ./cmd/yat-experiments

echo "stream-smoke: memory / first-row assertions (out-of-process wrappers)"
"$WORK/yat-experiments" -stream-smoke -wrappers "$WORK"

"$WORK/o2-wrapper" -port $O2_PORT >"$WORK/o2.log" 2>&1 &
PIDS="$PIDS $!"
"$WORK/xmlwais-wrapper" -port $WAIS_PORT >"$WORK/wais.log" 2>&1 &
PIDS="$PIDS $!"

# Both wrappers print an "is running at" line once their listener is up.
i=0
until grep -q "is running at" "$WORK/o2.log" 2>/dev/null &&
      grep -q "is running at" "$WORK/wais.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "stream-smoke: FAIL — wrappers did not come up" >&2
        cat "$WORK/o2.log" "$WORK/wais.log" >&2
        exit 1
    fi
    sleep 0.1
done

cat >"$WORK/session.txt" <<EOF
connect o2artifact 127.0.0.1:$O2_PORT
connect xmlartwork 127.0.0.1:$WAIS_PORT
load view1.yat
stream MAKE result[ title: \$t, price: \$p ]
MATCH artworks WITH doc[ *work[ title: \$t, style: \$s, price: \$p ] ]
WHERE \$s = "Impressionist" AND \$p < 200000 ;
quit
EOF

echo "stream-smoke: running the stream console command on Q2"
"$WORK/yat-mediator" -script "$WORK/session.txt" >"$WORK/stream.out" 2>&1

for want in "result\[title:" "rows streamed (first row"; do
    if ! grep -q "$want" "$WORK/stream.out"; then
        echo "stream-smoke: FAIL — output lacks \"$want\"" >&2
        cat "$WORK/stream.out" >&2
        exit 1
    fi
done

echo "stream-smoke: OK"
