#!/bin/sh
# typecheck_smoke.sh — end-to-end plan-typing smoke test.
#
# Starts both wrapper servers and the mediator console as separate
# processes, then exercises both halves of the typing subsystem on the
# paper's Q2:
#   - `typecheck` renders the optimized plan annotated with the pattern
#     types inferred from the structures the wrappers exported,
#   - a `query` under -check-types (wire conformance mode) still returns
#     rows — the live wrappers honor their own declared schemas.
set -eu

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
O2_PORT=17076
WAIS_PORT=17070
PIDS=""

cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "typecheck-smoke: building binaries"
go build -o "$WORK/o2-wrapper" ./cmd/o2-wrapper
go build -o "$WORK/xmlwais-wrapper" ./cmd/xmlwais-wrapper
go build -o "$WORK/yat-mediator" ./cmd/yat-mediator

"$WORK/o2-wrapper" -port $O2_PORT >"$WORK/o2.log" 2>&1 &
PIDS="$PIDS $!"
"$WORK/xmlwais-wrapper" -port $WAIS_PORT >"$WORK/wais.log" 2>&1 &
PIDS="$PIDS $!"

i=0
until grep -q "is running at" "$WORK/o2.log" 2>/dev/null &&
      grep -q "is running at" "$WORK/wais.log" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "typecheck-smoke: FAIL — wrappers did not come up" >&2
        cat "$WORK/o2.log" "$WORK/wais.log" >&2
        exit 1
    fi
    sleep 0.1
done

cat >"$WORK/session.txt" <<EOF
connect o2artifact 127.0.0.1:$O2_PORT
connect xmlartwork 127.0.0.1:$WAIS_PORT
load view1.yat
typecheck MAKE result[ title: \$t, price: \$p ]
MATCH artworks WITH doc[ *work[ title: \$t, style: \$s, price: \$p ] ]
WHERE \$s = "Impressionist" AND \$p < 200000 ;
query MAKE result[ title: \$t, price: \$p ]
MATCH artworks WITH doc[ *work[ title: \$t, style: \$s, price: \$p ] ]
WHERE \$s = "Impressionist" AND \$p < 200000 ;
quit
EOF

echo "typecheck-smoke: running typecheck + checked query on Q2"
"$WORK/yat-mediator" -check-types -script "$WORK/session.txt" >"$WORK/typecheck.out" 2>&1

for want in "typed plan (root" " :: " "SourceQuery(xmlartwork)" "String" " rows (fetches="; do
    if ! grep -q "$want" "$WORK/typecheck.out"; then
        echo "typecheck-smoke: FAIL — output lacks \"$want\"" >&2
        cat "$WORK/typecheck.out" >&2
        exit 1
    fi
done
if grep -q "error:" "$WORK/typecheck.out"; then
    echo "typecheck-smoke: FAIL — session reported an error" >&2
    cat "$WORK/typecheck.out" >&2
    exit 1
fi

echo "typecheck-smoke: OK"
