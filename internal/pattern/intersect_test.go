package pattern

import (
	"testing"

	"repro/internal/data"
)

func TestEmpty(t *testing.T) {
	m := NewModel("m")
	m.Define("Loop", Node("a", Ref("Loop")))          // no finite base case
	m.Define("Grounded", Union(Ref("Grounded"), Int())) // base case via union
	m.Define("Dead", Node("a", Ref("Missing")))

	cases := []struct {
		name string
		p    *P
		want bool
	}{
		{"any", Any(), false},
		{"int", Int(), false},
		{"node", Node("a", Str()), false},
		{"empty union", Union(), true},
		{"union with live alt", Union(Node("a"), Ref("Missing")), false},
		{"union all dead", Union(Ref("Missing"), Union()), true},
		{"unresolved ref", Ref("Missing"), true},
		{"structural cycle", Ref("Loop"), true},
		{"cycle with base case", Ref("Grounded"), false},
		{"node with dead mandatory item", Node("a", Union()), true},
		{"node with dead starred item", NodeItems("a", Starred(Union())), false},
		{"node via dead ref", Ref("Dead"), true},
	}
	for _, c := range cases {
		if got := Empty(m, c.p); got != c.want {
			t.Errorf("%s: Empty(%s) = %v, want %v", c.name, c.p, got, c.want)
		}
	}
}

func TestDisjoint(t *testing.T) {
	m := MustParseModel(`model m
Work  := work[ artist: String, title: String ]
Class := class[ artifact: tuple[ title: String, year: Int ] ]
Loop  := loop[ &Loop ]`)

	cases := []struct {
		name string
		p, q *P
		want bool
	}{
		{"int/string", Int(), Str(), true},
		{"int/float overlap", Int(), Float(), false},
		{"int/bool", Int(), Bool(), true},
		{"const/kind compatible", Const(data.Int(3)), Float(), false},
		{"const/kind incompatible", Const(data.String("x")), Int(), true},
		{"const/const equal", Const(data.Int(3)), Const(data.Int(3)), false},
		{"const/const distinct", Const(data.Int(3)), Const(data.Int(4)), true},
		{"any overlaps inhabited", Any(), Node("a", Str()), false},
		{"empty union disjoint from any", Any(), Union(), true},
		{"distinct labels", Node("a", Str()), Node("b", Str()), true},
		{"same label same item", Node("a", Str()), Node("a", Str()), false},
		{"same label disjoint items", Node("a", Str()), Node("a", Int()), true},
		{"anylabel absorbs label", Symbol(Str()), Node("a", Str()), false},
		{"arity mismatch", Node("a", Str(), Int()), Node("a", Str()), true},
		{"star absorbs arity", NodeItems("a", Starred(Str())), Node("a", Str()), false},
		{"named refs", Ref("Work"), Ref("Class"), true},
		{"ref against self", Ref("Work"), Ref("Work"), false},
		{"cyclic ref is empty hence disjoint", Ref("Loop"), Ref("Loop"), true},
		{"union splits", Union(Node("a"), Node("b")), Node("c"), true},
		{"union overlap", Union(Node("a"), Node("b")), Node("b"), false},
		{"node/atom via leaf", Node("price", Float()), Int(), false},
		{"node/atom leaf blocked", Node("price", Float()), Str(), true},
		{"node without items vs atom", Node("a"), Int(), true},
	}
	for _, c := range cases {
		if got := Disjoint(m, c.p, m, c.q); got != c.want {
			t.Errorf("%s: Disjoint(%s, %s) = %v, want %v", c.name, c.p, c.q, got, c.want)
		}
		if got := Disjoint(m, c.q, m, c.p); got != c.want {
			t.Errorf("%s (sym): Disjoint(%s, %s) = %v, want %v", c.name, c.q, c.p, got, c.want)
		}
	}
}

// TestDisjointSoundOnData cross-checks Disjoint against MatchData: whenever
// Disjoint claims two patterns share no instance, no sample tree may match
// both.
func TestDisjointSoundOnData(t *testing.T) {
	m := MustParseModel(`model m
Work := work[ artist: String, title: String ]`)
	pats := []*P{
		Int(), Float(), Str(), Bool(), Const(data.Int(5)), Const(data.String("x")),
		Any(), Node("a", Str()), Node("a", Int()), Node("b", Str()),
		NodeItems("a", Starred(Any())), Symbol(Int()), Ref("Work"),
		Union(Node("a", Str()), Int()),
	}
	trees := []*data.Node{
		data.IntLeaf("a", 5),
		data.Text("a", "x"),
		data.Text("b", "x"),
		data.FloatLeaf("a", 1.5),
		data.BoolLeaf("a", true),
		data.Elem("a", data.Text("b", "x")),
		data.Elem("work", data.Text("artist", "p"), data.Text("title", "q")),
		{Atom: &data.Atom{Kind: data.KindInt, I: 5}},
	}
	for _, p := range pats {
		for _, q := range pats {
			if !Disjoint(m, p, m, q) {
				continue
			}
			for _, tr := range trees {
				if MatchData(m, p, tr) && MatchData(m, q, tr) {
					t.Errorf("Disjoint(%s, %s) but tree matches both", p, q)
				}
			}
		}
	}
}
