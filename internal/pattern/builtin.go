package pattern

// Builtin models reproducing Figure 3 of the paper: the YAT (meta)model that
// captures all patterns, and the ODMG model to which O₂ schemas conform.
// One important property verified in the tests is the instantiation chain
// Artifact <: ODMG <: YAT.

// YATModel returns the almighty YAT metamodel: a tree is any node whose
// label is arbitrary (Symbol) and whose children are zero or more trees, or
// an atomic value, or a reference to a tree.
func YATModel() *Model {
	m := NewModel("yat")
	// Tree := ( Int | Float | Bool | String | Symbol[ *&Tree ] | &Tree )
	tree := Union(
		Int(), Float(), Bool(), Str(),
		&P{Kind: KNode, AnyLabel: true, Items: []Item{{P: Ref("Tree"), Star: true}}},
	)
	m.Define("Tree", tree)
	// Tab is the ¬1NF relation produced by Bind: a table of rows of
	// arbitrary trees (declared here so interfaces can name it).
	m.Define("Tab", Node("tab",
		&P{Kind: KNode, Label: "row", Items: []Item{{P: Ref("Tree"), Star: true}}}))
	return m
}

// ODMGModel returns the ODMG data model of Figure 3 (left): a type is an
// atomic type, a tuple of named fields, a collection, or a reference to a
// class; a class associates a name with a type.
func ODMGModel() *Model {
	m := NewModel("odmg")
	m.Define("Class", MustParse(`class[ Symbol: &Type ]`))
	m.Define("Type", MustParse(`( Int | Bool | Float | String
		| tuple[ *Symbol: &Type ]
		| set[ *&Type ] | bag[ *&Type ] | list[ *&Type ] | array[ *&Type ]
		| &Class )`))
	return m
}

// InstanceOfModel reports whether every root pattern of schema instantiates
// some root pattern of model; it realizes the schema <: model judgement of
// Figure 3 (e.g. Artifacts schema <: ODMG, Artworks structure <: YAT).
func InstanceOfModel(model, schema *Model) bool {
	for _, name := range schema.Names() {
		q := schema.Defs[name]
		ok := false
		for _, pname := range model.Names() {
			if Subsumes(model, model.Defs[pname], schema, q) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return len(schema.Names()) > 0
}
