package pattern

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/data"
)

// TestParseStringRoundTrip is the property test for the textual syntax:
// for randomly generated patterns (atoms, constants, unions, collections,
// wildcard labels, named refs, stars), re-parsing p.String() yields a
// pattern subsumption-equivalent to p under the same model. A seeded LCG
// keeps failures reproducible.

type patGen struct {
	state uint64
	n     int
}

func (g *patGen) next(n int) int {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return int((g.state >> 33) % uint64(n))
}

// genLabels includes names the printer must quote to survive re-parsing:
// XML-special characters ('.', ':', non-ASCII), digit-led names, reserved
// type names and collection constructor names used as plain element labels.
var genLabels = []string{
	"work", "artist", "title", "style", "price", "entry", "field",
	"xs:element", "my.tag", "Int", "Symbol", "set", "1862", "crémerie",
}

var genRefNames = []string{"RtA", "RtB", "RtC"}

func (g *patGen) pattern(depth int) *P {
	g.n++
	top := 10
	if depth <= 0 {
		top = 6 // atoms, consts and refs only
	}
	switch g.next(top) {
	case 0:
		return Int()
	case 1:
		return Float()
	case 2:
		return Str()
	case 3:
		return Bool()
	case 4:
		switch g.next(4) {
		case 0:
			return Const(data.Int(int64(g.next(100)) - 50))
		case 1:
			return Const(data.Float(float64(g.next(100)) + 0.5))
		case 2:
			return Const(data.Bool(g.next(2) == 0))
		default:
			return Const(data.String(fmt.Sprintf("s%d", g.next(10))))
		}
	case 5:
		return Ref(genRefNames[g.next(len(genRefNames))])
	case 6:
		// Two or more alternatives: a one-alt union renders as "(p)",
		// which the parser (correctly) collapses back to p.
		alts := make([]*P, 2+g.next(2))
		for i := range alts {
			alts[i] = g.pattern(depth - 1)
		}
		return Union(alts...)
	case 7:
		cols := []Col{ColSet, ColBag, ColList, ColArray}
		return Coll(cols[g.next(len(cols))], g.pattern(depth-1))
	case 8:
		p := NodeItems("", g.items(depth)...)
		p.AnyLabel = true
		return p
	default:
		return NodeItems(genLabels[g.next(len(genLabels))], g.items(depth)...)
	}
}

func (g *patGen) items(depth int) []Item {
	items := make([]Item, g.next(4))
	for i := range items {
		items[i] = Item{P: g.pattern(depth - 1), Star: g.next(3) == 0}
	}
	return items
}

func TestParseStringRoundTrip(t *testing.T) {
	g := &patGen{state: 20000531}
	m := NewModel("roundtrip")
	m.Define("RtA", Node("work", Str()))
	m.Define("RtB", Union(Int(), Ref("RtA")))
	m.Define("RtC", NodeItems("entry", Starred(Ref("RtC")), One(Int())))

	for i := 0; i < 1000; i++ {
		p := g.pattern(3)
		src := p.String()
		q, err := ParsePattern(src)
		if err != nil {
			t.Fatalf("#%d: ParsePattern(%q) failed: %v (from %#v)", i, src, err, p)
		}
		if !Subsumes(m, p, m, q) {
			t.Fatalf("#%d: reparsed pattern not subsumed by original\n  src: %s\n  got: %s", i, src, q)
		}
		if !Subsumes(m, q, m, p) {
			t.Fatalf("#%d: original not subsumed by reparsed pattern\n  src: %s\n  got: %s", i, src, q)
		}
		// String must be stable across the round trip, too.
		if q.String() != src {
			t.Fatalf("#%d: String not stable: %q -> %q", i, src, q.String())
		}
	}
}

// TestLabelRoundTrip pins the quoting rules for node labels that do not
// lex as plain identifiers or that collide with reserved spellings: XML
// qualified names, dotted names, digit-led names, names with quotes or
// backslashes, and reserved words used as element labels. Each must render,
// re-parse to an identical structure, and render stably.
func TestLabelRoundTrip(t *testing.T) {
	labels := []string{
		"xs:element", "my.tag", "svg.path.d", "1862", "crémerie",
		"a b", `qu"ote`, `back\slash`, "<angle>", "&amp;",
		"Int", "Float", "Bool", "String", "Any", "Symbol",
		"true", "false", "model", "set", "bag", "list", "array",
	}
	for _, label := range labels {
		for _, p := range []*P{
			Node(label),           // leaf: renders as label[]
			Node(label, Str()),    // scalar abbreviation: label: String
			Node(label, Node("work", Int()), Str()), // bracketed sequence
		} {
			src := p.String()
			q, err := ParsePattern(src)
			if err != nil {
				t.Fatalf("label %q: ParsePattern(%q) failed: %v", label, src, err)
			}
			if q.Kind != KNode || q.Label != label || q.AnyLabel || q.Col != ColNone {
				t.Fatalf("label %q: re-parsed %q to %#v", label, src, q)
			}
			if q.String() != src {
				t.Fatalf("label %q: String not stable: %q -> %q", label, src, q.String())
			}
			if !Subsumes(nil, p, nil, q) || !Subsumes(nil, q, nil, p) {
				t.Fatalf("label %q: not equivalent after round trip (%s)", label, src)
			}
		}
	}
	// A collection node keeps its bare spelling and its kind.
	c := Coll(ColSet, Str())
	if got := c.String(); !strings.HasPrefix(got, "set[") {
		t.Fatalf("collection rendering changed: %q", got)
	}
	q, err := ParsePattern(c.String())
	if err != nil || q.Col != ColSet {
		t.Fatalf("collection round trip: %v, col %v", err, q.Col)
	}
}

// TestParseModelRoundTrip does the same for whole models: render with
// Model.String, re-parse, and check every definition equivalent.
func TestParseModelRoundTrip(t *testing.T) {
	g := &patGen{state: 971112}
	for i := 0; i < 50; i++ {
		m := NewModel("m")
		m.Define("RtA", Node("work", Str()))
		// A definition that is a bare reference can form a pure ref cycle
		// (RtB := &RtB), which resolve() treats as undefined — wrap those.
		def := func(name string, p *P) {
			if p.Kind == KRef {
				p = Node("entry", p)
			}
			m.Define(name, p)
		}
		def("RtB", g.pattern(2))
		def("RtC", g.pattern(3))
		src := m.String()
		m2, err := ParseModel(src)
		if err != nil {
			t.Fatalf("#%d: ParseModel failed: %v\n%s", i, err, src)
		}
		for _, name := range m.Names() {
			p, q := m.Lookup(name), m2.Lookup(name)
			if q == nil {
				t.Fatalf("#%d: %s lost in round trip\n%s", i, name, src)
			}
			if !Subsumes(m, p, m2, q) || !Subsumes(m2, q, m, p) {
				t.Fatalf("#%d: %s not equivalent after round trip\n%s", i, name, src)
			}
		}
	}
}
