// Package pattern implements the YAT type system: tree patterns that
// describe structural information at various levels of genericity (model,
// schema, data), related through the *instantiation* mechanism of Section 2
// and Figure 3 of the paper. A pattern is a tree whose nodes are atomic
// types, labeled nodes with (possibly starred) ordered child sequences,
// alternatives (the ∨ symbol), references to named patterns (the & symbol),
// or the Symbol wildcard standing for "any label".
//
// The two central judgements are:
//
//   - MatchData: is a data tree an instance of a pattern?
//   - Subsumes:  does one pattern instantiate another (Artifact <: ODMG <: YAT)?
//
// Both are decided by a memoized structural simulation; for the starred
// sequences appearing in YAT patterns the algorithm is polynomial and exact
// on unambiguous patterns (cf. Beeri & Milo, ICDT'99, cited by the paper),
// and sound (never wrongly accepts) in general.
package pattern

import (
	"fmt"
	"strings"

	"repro/internal/data"
)

// Kind enumerates pattern node kinds.
type Kind int

// Pattern node kinds.
const (
	KAny    Kind = iota // the YAT top pattern: any tree
	KInt                // atomic type Int
	KFloat              // atomic type Float
	KBool               // atomic type Bool
	KString             // atomic type String
	KConst              // a data-level constant atom
	KNode               // labeled node with ordered child sequence
	KUnion              // alternatives (∨)
	KRef                // reference to a named pattern (&Name)
)

// Col enumerates collection kinds attached to a node pattern.
type Col int

// Collection kinds. ColNone marks plain element nodes; the others mirror the
// ODMG collection constructors of Figure 3.
const (
	ColNone Col = iota
	ColSet
	ColBag
	ColList
	ColArray
)

// String returns the YAT spelling of the collection kind.
func (c Col) String() string {
	switch c {
	case ColSet:
		return "set"
	case ColBag:
		return "bag"
	case ColList:
		return "list"
	case ColArray:
		return "array"
	default:
		return ""
	}
}

// ColFromString parses a collection kind name; unknown names yield ColNone.
func ColFromString(s string) Col {
	switch s {
	case "set":
		return ColSet
	case "bag":
		return ColBag
	case "list":
		return ColList
	case "array":
		return ColArray
	default:
		return ColNone
	}
}

// Item is one element of a node pattern's child sequence; Star marks
// multiple occurrence (zero or more).
type Item struct {
	P    *P
	Star bool
}

// P is a pattern node.
type P struct {
	Kind     Kind
	Label    string     // KNode: the node label ("" with AnyLabel set means Symbol)
	AnyLabel bool       // KNode: label is the Symbol wildcard
	Col      Col        // KNode: collection kind
	Const    *data.Atom // KConst: the constant
	Name     string     // KRef: referenced pattern name
	Items    []Item     // KNode: ordered child sequence
	Alts     []*P       // KUnion: alternatives
}

// Convenience constructors.

// Any returns the top pattern matching any tree.
func Any() *P { return &P{Kind: KAny} }

// Int returns the Int atomic-type pattern.
func Int() *P { return &P{Kind: KInt} }

// Float returns the Float atomic-type pattern.
func Float() *P { return &P{Kind: KFloat} }

// Bool returns the Bool atomic-type pattern.
func Bool() *P { return &P{Kind: KBool} }

// Str returns the String atomic-type pattern.
func Str() *P { return &P{Kind: KString} }

// Const returns a constant pattern matched only by that atom.
func Const(a data.Atom) *P { return &P{Kind: KConst, Const: &a} }

// Node returns a labeled node pattern with single (unstarred) children.
func Node(label string, kids ...*P) *P {
	items := make([]Item, len(kids))
	for i, k := range kids {
		items[i] = Item{P: k}
	}
	return &P{Kind: KNode, Label: label, Items: items}
}

// NodeItems returns a labeled node pattern with an explicit item sequence.
func NodeItems(label string, items ...Item) *P {
	return &P{Kind: KNode, Label: label, Items: items}
}

// Symbol returns a node pattern whose label is the Symbol wildcard.
func Symbol(kids ...*P) *P {
	n := Node("", kids...)
	n.AnyLabel = true
	return n
}

// Coll returns a collection node pattern (label = collection name) holding
// zero or more members matching member.
func Coll(c Col, member *P) *P {
	return &P{Kind: KNode, Label: c.String(), Col: c, Items: []Item{{P: member, Star: true}}}
}

// Union returns an alternatives pattern.
func Union(alts ...*P) *P { return &P{Kind: KUnion, Alts: alts} }

// Ref returns a reference to the named pattern.
func Ref(name string) *P { return &P{Kind: KRef, Name: name} }

// Starred wraps p as a starred item.
func Starred(p *P) Item { return Item{P: p, Star: true} }

// One wraps p as a single-occurrence item.
func One(p *P) Item { return Item{P: p} }

// Model is a set of named patterns, as exported by a wrapper (Figure 3
// shows the ODMG model, the Artifacts schema and the Artworks structure;
// all are Models in this package).
type Model struct {
	Name string
	Defs map[string]*P
	// Roots lists the entry-point pattern names in declaration order.
	Roots []string
}

// NewModel returns an empty model with the given name.
func NewModel(name string) *Model {
	return &Model{Name: name, Defs: make(map[string]*P)}
}

// Define adds (or replaces) a named pattern and records it as a root.
func (m *Model) Define(name string, p *P) {
	if _, exists := m.Defs[name]; !exists {
		m.Roots = append(m.Roots, name)
	}
	m.Defs[name] = p
}

// Lookup resolves a pattern name, returning nil if absent.
func (m *Model) Lookup(name string) *P {
	if m == nil {
		return nil
	}
	return m.Defs[name]
}

// resolve chases KRef chains within the model (cycle-safe).
func (m *Model) resolve(p *P) *P {
	seen := 0
	for p != nil && p.Kind == KRef {
		q := m.Lookup(p.Name)
		if q == nil || seen > len(m.Defs)+1 {
			return nil
		}
		p = q
		seen++
	}
	return p
}

// Names returns the defined pattern names in declaration order.
func (m *Model) Names() []string {
	out := make([]string, len(m.Roots))
	copy(out, m.Roots)
	return out
}

// Clone returns a deep copy of the model (patterns shared; patterns are
// treated as immutable once defined).
func (m *Model) Clone() *Model {
	c := NewModel(m.Name)
	for _, n := range m.Roots {
		c.Define(n, m.Defs[n])
	}
	return c
}

// ---------------------------------------------------------------------------
// Data matching
// ---------------------------------------------------------------------------

// MatchData reports whether tree is an instance of pattern p in model m
// (m supplies the definitions for KRef; it may be nil when p is closed).
// References in the data are matched against KRef/class patterns by
// label only, since the referenced object lives elsewhere in the store.
func MatchData(m *Model, p *P, tree *data.Node) bool {
	return (&matcher{m: m}).match(p, tree)
}

type matcher struct {
	m *Model
	// inflight guards against non-terminating KRef cycles on the same node.
	inflight map[[2]any]bool
}

func (mt *matcher) match(p *P, n *data.Node) bool {
	if p == nil {
		return false
	}
	switch p.Kind {
	case KAny:
		return n != nil
	case KInt:
		return n != nil && n.Atom != nil && n.Atom.Kind == data.KindInt
	case KFloat:
		return n != nil && n.Atom != nil && (n.Atom.Kind == data.KindFloat || n.Atom.Kind == data.KindInt)
	case KBool:
		return n != nil && n.Atom != nil && n.Atom.Kind == data.KindBool
	case KString:
		return n != nil && n.Atom != nil && n.Atom.Kind == data.KindString
	case KConst:
		return n != nil && n.Atom != nil && n.Atom.Equal(*p.Const)
	case KUnion:
		for _, a := range p.Alts {
			if mt.match(a, n) {
				return true
			}
		}
		return false
	case KRef:
		q := mt.m.resolve(p)
		if q == nil {
			return false
		}
		if mt.inflight == nil {
			mt.inflight = make(map[[2]any]bool)
		}
		key := [2]any{q, n}
		if mt.inflight[key] {
			return false // structural cycle cannot be satisfied by finite data
		}
		mt.inflight[key] = true
		ok := mt.match(q, n)
		delete(mt.inflight, key)
		return ok
	case KNode:
		if n == nil {
			return false
		}
		// A reference in the data matches any node pattern: its label is the
		// edge name, and the target's structure is checked where the target
		// is defined (references are not chased during matching).
		if n.IsRef() {
			return true
		}
		if !p.AnyLabel && n.Label != p.Label {
			return false
		}
		if n.Atom != nil {
			// A leaf matches a node pattern with a single atomic child item.
			if len(p.Items) == 1 && !p.Items[0].Star {
				return mt.match(p.Items[0].P, n)
			}
			if len(p.Items) == 1 && p.Items[0].Star {
				return mt.match(p.Items[0].P, n) // one occurrence
			}
			return false
		}
		if p.Col == ColSet || p.Col == ColBag {
			return mt.matchUnordered(p.Items, n.Kids)
		}
		return mt.matchSeq(p.Items, n.Kids)
	default:
		return false
	}
}

// matchSeq matches a data child list against a pattern item sequence with
// memoized backtracking over (item index, kid index).
func (mt *matcher) matchSeq(items []Item, kids []*data.Node) bool {
	type key struct{ i, j int }
	memo := make(map[key]bool)
	var rec func(i, j int) bool
	rec = func(i, j int) bool {
		if i == len(items) {
			return j == len(kids)
		}
		k := key{i, j}
		if v, ok := memo[k]; ok {
			return v
		}
		memo[k] = false // provisional: break cycles
		it := items[i]
		var ok bool
		if it.Star {
			// zero occurrences, or consume one kid and stay
			ok = rec(i+1, j) ||
				(j < len(kids) && mt.match(it.P, kids[j]) && rec(i, j+1))
		} else {
			ok = j < len(kids) && mt.match(it.P, kids[j]) && rec(i+1, j+1)
		}
		memo[k] = ok
		return ok
	}
	return rec(0, 0)
}

// matchUnordered matches set/bag contents: every kid must match some item,
// and every non-starred item must be matched exactly once. YAT collection
// patterns are almost always a single starred member, for which this is
// exact; with several items it is a greedy assignment (sound for disjoint
// alternatives).
func (mt *matcher) matchUnordered(items []Item, kids []*data.Node) bool {
	needed := make([]bool, len(items)) // non-star items still unmatched
	for i, it := range items {
		needed[i] = !it.Star
	}
	for _, k := range kids {
		found := false
		// Prefer satisfying required items first.
		for i, it := range items {
			if needed[i] && mt.match(it.P, k) {
				needed[i] = false
				found = true
				break
			}
		}
		if found {
			continue
		}
		for _, it := range items {
			if it.Star && mt.match(it.P, k) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for _, n := range needed {
		if n {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Pattern subsumption (instantiation between patterns)
// ---------------------------------------------------------------------------

// Subsumes reports whether pattern q (with definitions in mq) instantiates
// pattern p (with definitions in mp); i.e. every instance of q is an
// instance of p, written q <: p. It is coinductive over named references,
// so recursive patterns such as Fclass/Ftype are supported.
func Subsumes(mp *Model, p *P, mq *Model, q *P) bool {
	s := &subsumer{mp: mp, mq: mq, assume: make(map[[2]*P]bool)}
	return s.sub(p, q)
}

type subsumer struct {
	mp, mq *Model
	assume map[[2]*P]bool
}

func (s *subsumer) sub(p, q *P) bool {
	if p == nil || q == nil {
		return false
	}
	// Resolve references, coinductively assuming in-flight pairs hold.
	if p.Kind == KRef || q.Kind == KRef {
		key := [2]*P{p, q}
		if v, ok := s.assume[key]; ok {
			return v
		}
		s.assume[key] = true // coinductive hypothesis
		rp, rq := p, q
		if p.Kind == KRef {
			rp = s.mp.resolve(p)
		}
		if q.Kind == KRef {
			rq = s.mq.resolve(q)
		}
		ok := rp != nil && rq != nil && s.sub(rp, rq)
		s.assume[key] = ok
		return ok
	}
	switch p.Kind {
	case KAny:
		return true
	case KInt, KFloat, KBool, KString:
		if q.Kind == p.Kind {
			return true
		}
		if p.Kind == KFloat && q.Kind == KInt {
			return true // Int values are acceptable where Float is expected
		}
		if q.Kind == KConst {
			switch p.Kind {
			case KInt:
				return q.Const.Kind == data.KindInt
			case KFloat:
				return q.Const.IsNumeric()
			case KBool:
				return q.Const.Kind == data.KindBool
			case KString:
				return q.Const.Kind == data.KindString
			}
		}
		if q.Kind == KUnion {
			return s.allAlts(p, q)
		}
		return false
	case KConst:
		if q.Kind == KConst {
			return p.Const.Equal(*q.Const)
		}
		if q.Kind == KUnion {
			return s.allAlts(p, q)
		}
		return false
	case KUnion:
		if q.Kind == KUnion {
			return s.allAlts(p, q)
		}
		for _, a := range p.Alts {
			if s.sub(a, q) {
				return true
			}
		}
		return false
	case KNode:
		if q.Kind == KUnion {
			return s.allAlts(p, q)
		}
		if q.Kind != KNode {
			return false
		}
		if !p.AnyLabel && (q.AnyLabel || q.Label != p.Label) {
			return false
		}
		if p.Col != ColNone && q.Col != p.Col {
			return false
		}
		return s.subSeq(p.Items, q.Items)
	default:
		return false
	}
}

// allAlts reports that every alternative of union q is subsumed by p.
func (s *subsumer) allAlts(p, q *P) bool {
	for _, a := range q.Alts {
		if !s.sub(p, a) {
			return false
		}
	}
	return len(q.Alts) > 0
}

// subSeq decides containment of the item sequence q in the item sequence p:
// every child list generated by q must be generated by p. Dynamic program
// over (qi, pi); a starred q item must be absorbed by a subsuming starred
// p item (sound, and exact for the unambiguous sequences of YAT schemas).
func (s *subsumer) subSeq(pItems, qItems []Item) bool {
	type key struct{ qi, pi int }
	memo := make(map[key]int) // 0 unknown, 1 true, 2 false
	var rec func(qi, pi int) bool
	rec = func(qi, pi int) bool {
		if qi == len(qItems) {
			// remaining p items must all be optional (starred)
			for ; pi < len(pItems); pi++ {
				if !pItems[pi].Star {
					return false
				}
			}
			return true
		}
		k := key{qi, pi}
		if v := memo[k]; v != 0 {
			return v == 1
		}
		memo[k] = 2
		qit := qItems[qi]
		ok := false
		if pi < len(pItems) {
			pit := pItems[pi]
			if qit.Star {
				// Absorb q* into a subsuming p*; or skip an (optional) p*.
				if pit.Star && s.sub(pit.P, qit.P) && (rec(qi+1, pi) || rec(qi+1, pi+1)) {
					ok = true
				}
				if !ok && pit.Star && rec(qi, pi+1) {
					ok = true
				}
			} else {
				if pit.Star {
					// p* matches this single item (stay or advance), or is skipped.
					if s.sub(pit.P, qit.P) && (rec(qi+1, pi) || rec(qi+1, pi+1)) {
						ok = true
					}
					if !ok && rec(qi, pi+1) {
						ok = true
					}
				} else if s.sub(pit.P, qit.P) && rec(qi+1, pi+1) {
					ok = true
				}
			}
		}
		if ok {
			memo[k] = 1
		}
		return ok
	}
	return rec(0, 0)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

// String renders the pattern in the textual syntax accepted by Parse.
func (p *P) String() string {
	var b strings.Builder
	p.write(&b)
	return b.String()
}

func (p *P) write(b *strings.Builder) {
	if p == nil {
		b.WriteString("<nil>")
		return
	}
	switch p.Kind {
	case KAny:
		b.WriteString("Any")
	case KInt:
		b.WriteString("Int")
	case KFloat:
		b.WriteString("Float")
	case KBool:
		b.WriteString("Bool")
	case KString:
		b.WriteString("String")
	case KConst:
		if p.Const.Kind == data.KindString {
			fmt.Fprintf(b, "%q", p.Const.S)
		} else {
			b.WriteString(p.Const.Text())
		}
	case KRef:
		b.WriteByte('&')
		b.WriteString(p.Name)
	case KUnion:
		b.WriteByte('(')
		for i, a := range p.Alts {
			if i > 0 {
				b.WriteString(" | ")
			}
			a.write(b)
		}
		b.WriteByte(')')
	case KNode:
		if p.AnyLabel {
			b.WriteString("Symbol")
		} else {
			writeLabel(b, p.Label, p.Col)
		}
		if len(p.Items) == 0 {
			b.WriteString("[]")
			return
		}
		if len(p.Items) == 1 && !p.Items[0].Star && isScalar(p.Items[0].P) {
			b.WriteString(": ")
			p.Items[0].P.write(b)
			return
		}
		b.WriteString("[ ")
		for i, it := range p.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			if it.Star {
				b.WriteByte('*')
			}
			it.P.write(b)
		}
		b.WriteString(" ]")
	}
}

// writeLabel writes a node label, quoting it whenever the bare spelling
// would not survive ParsePattern: XML names may contain characters outside
// the identifier alphabet ('.', ':', any non-ASCII), start with a digit, or
// collide with a reserved type name, the Symbol wildcard, or a collection
// keyword whose kind the node does not carry.
func writeLabel(b *strings.Builder, label string, col Col) {
	if plainLabel(label, col) {
		b.WriteString(label)
		return
	}
	b.WriteByte('"')
	for i := 0; i < len(label); i++ {
		if label[i] == '"' || label[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(label[i])
	}
	b.WriteByte('"')
}

// plainLabel reports whether the label lexes back as the same bare name and
// re-parses to the same node (no reserved meaning, collection kind intact).
func plainLabel(label string, col Col) bool {
	if label == "" || !isIdentStart(label[0]) {
		return false
	}
	for i := 1; i < len(label); i++ {
		if !isIdentChar(label[i]) {
			return false
		}
	}
	switch label {
	case "Int", "Float", "Bool", "String", "Any", "Symbol", "true", "false", "model":
		return false
	}
	return ColFromString(label) == col
}

func isScalar(p *P) bool {
	switch p.Kind {
	case KInt, KFloat, KBool, KString, KAny, KConst, KRef:
		return true
	default:
		return false
	}
}

// String renders the model as a sequence of name := pattern definitions.
func (m *Model) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model %s\n", m.Name)
	for _, n := range m.Names() {
		fmt.Fprintf(&b, "  %s := %s\n", n, m.Defs[n])
	}
	return b.String()
}
