package pattern

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/xmlenc"
)

// artifactsSchema is the Artifacts schema of Figure 3, in textual syntax.
const artifactsSchemaSrc = `
model artifacts
Artifact := class[ artifact: tuple[ title: String, year: Int, creator: String,
                                    price: Float, owners: list[ *&Person ] ] ]
Person   := class[ person: tuple[ name: String, auction: Float ] ]
`

// artworksStructure is the partially structured Artworks structure of
// Figure 3: mandatory elements followed by any additional fields.
const artworksStructureSrc = `
model artworks
Works := works[ *&Work ]
Work  := work[ artist: String, title: String, style: String, size: String,
               *&Field ]
Field := Symbol[ *( Int | Float | Bool | String | &Field ) ]
`

func artifactsSchema() *Model   { return MustParseModel(artifactsSchemaSrc) }
func artworksStructure() *Model { return MustParseModel(artworksStructureSrc) }

func monetWork(extra ...*data.Node) *data.Node {
	w := data.Elem("work",
		data.Text("artist", "Claude Monet"),
		data.Text("title", "Nympheas"),
		data.Text("style", "Impressionist"),
		data.Text("size", "21 x 61"),
	)
	return w.Add(extra...)
}

func monetArtifact() *data.Node {
	return data.Elem("class",
		data.Elem("artifact",
			data.Elem("tuple",
				data.Text("title", "Nympheas"),
				data.IntLeaf("year", 1897),
				data.Text("creator", "Claude Monet"),
				data.FloatLeaf("price", 1500000),
				data.Elem("owners", data.Elem("list",
					data.RefNode("Person", "p1"),
					data.RefNode("Person", "p2"),
				)),
			),
		),
	).WithID("a1")
}

func TestParseRendersBack(t *testing.T) {
	cases := []string{
		"Int",
		"String",
		"Any",
		`"Giverny"`,
		"&Person",
		"(Int | Float)",
		"work[ title: String, *&Field ]",
		"set[ *&Type ]",
		"Symbol[ *&Tree ]",
		"tuple[]",
	}
	for _, src := range cases {
		p, err := ParsePattern(src)
		if err != nil {
			t.Errorf("ParsePattern(%q): %v", src, err)
			continue
		}
		back, err := ParsePattern(p.String())
		if err != nil {
			t.Errorf("reparse of %q (%q): %v", src, p.String(), err)
			continue
		}
		if back.String() != p.String() {
			t.Errorf("print/parse not stable: %q -> %q -> %q", src, p.String(), back.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"work[",
		"work[ *, ]",
		"&",
		"( Int | )",
		"]",
		`"unterminated`,
		"work[ Int ] extra",
		"1.2.3",
	}
	for _, src := range bad {
		if _, err := ParsePattern(src); err == nil {
			t.Errorf("ParsePattern(%q) should fail", src)
		}
	}
}

func TestParseModelErrors(t *testing.T) {
	bad := []string{
		"",
		"notmodel x",
		"model",
		"model m X = Int",
		"model m X := ",
		"model m 42 := Int",
	}
	for _, src := range bad {
		if _, err := ParseModel(src); err == nil {
			t.Errorf("ParseModel(%q) should fail", src)
		}
	}
}

func TestMatchDataAtoms(t *testing.T) {
	cases := []struct {
		p    *P
		n    *data.Node
		want bool
	}{
		{Int(), data.IntLeaf("x", 5), true},
		{Int(), data.FloatLeaf("x", 5), false},
		{Float(), data.IntLeaf("x", 5), true}, // numeric widening
		{Float(), data.FloatLeaf("x", 5), true},
		{Str(), data.Text("x", "hi"), true},
		{Str(), data.IntLeaf("x", 5), false},
		{Bool(), data.BoolLeaf("x", true), true},
		{Const(data.String("Giverny")), data.Text("x", "Giverny"), true},
		{Const(data.String("Giverny")), data.Text("x", "Paris"), false},
		{Any(), data.Elem("anything"), true},
	}
	for i, c := range cases {
		if got := MatchData(nil, c.p, c.n); got != c.want {
			t.Errorf("case %d: MatchData(%v, %v) = %v, want %v", i, c.p, c.n, got, c.want)
		}
	}
}

func TestMatchDataWork(t *testing.T) {
	m := artworksStructure()
	work := m.Lookup("Work")
	if !MatchData(m, work, monetWork()) {
		t.Error("mandatory-only work must match")
	}
	withExtra := monetWork(data.Text("cplace", "Giverny"), data.Text("history", "..."))
	if !MatchData(m, work, withExtra) {
		t.Error("work with extra fields must match (star of Field)")
	}
	missing := data.Elem("work", data.Text("artist", "X"))
	if MatchData(m, work, missing) {
		t.Error("work missing mandatory elements must not match")
	}
	wrongOrder := data.Elem("work",
		data.Text("title", "T"), data.Text("artist", "A"),
		data.Text("style", "S"), data.Text("size", "Z"))
	if MatchData(m, work, wrongOrder) {
		t.Error("ordered sequence: swapped mandatory elements must not match")
	}
}

func TestMatchDataArtifact(t *testing.T) {
	m := artifactsSchema()
	if !MatchData(m, m.Lookup("Artifact"), monetArtifact()) {
		t.Error("Monet artifact must match the Artifact schema")
	}
	bad := monetArtifact()
	bad.Kids[0].Kids[0].Kids[1] = data.Text("year", "not a number")
	if MatchData(m, m.Lookup("Artifact"), bad) {
		t.Error("string year must not match Int")
	}
}

func TestMatchDataSetUnordered(t *testing.T) {
	p := MustParse("set[ *Int ]")
	if !MatchData(nil, p, data.Elem("set", data.IntLeaf("x", 1), data.IntLeaf("y", 2))) {
		t.Error("set of ints should match")
	}
	mixed := MustParse("tuple[ a: Int, b: String ]")
	ordered := data.Elem("tuple", data.IntLeaf("a", 1), data.Text("b", "x"))
	if !MatchData(nil, mixed, ordered) {
		t.Error("tuple in order should match")
	}
}

func TestMatchUnorderedRequired(t *testing.T) {
	// set with one required and one starred member pattern
	p := &P{Kind: KNode, Label: "set", Col: ColSet, Items: []Item{
		{P: Node("a", Int())},
		{P: Node("b", Str()), Star: true},
	}}
	ok := data.Elem("set", data.Text("b", "x"), data.IntLeaf("a", 1))
	if !MatchData(nil, p, ok) {
		t.Error("unordered match with required item in any position")
	}
	missing := data.Elem("set", data.Text("b", "x"))
	if MatchData(nil, p, missing) {
		t.Error("required member missing must fail")
	}
	stranger := data.Elem("set", data.IntLeaf("a", 1), data.Text("c", "x"))
	if MatchData(nil, p, stranger) {
		t.Error("unmatched member must fail")
	}
}

func TestMatchDataRefs(t *testing.T) {
	m := artifactsSchema()
	// references inside data match node patterns shallowly
	listP := MustParse("list[ *&Person ]")
	n := data.Elem("list", data.RefNode("Person", "p1"))
	if !MatchData(m, listP, n) {
		t.Error("reference member should match class pattern shallowly")
	}
}

func TestSubsumesBasics(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		{"Any", "work[ Int ]", true},
		{"Int", "Int", true},
		{"Float", "Int", true},
		{"Int", "Float", false},
		{"Int", "42", true},
		{"String", `"Giverny"`, true},
		{"Int", `"Giverny"`, false},
		{"(Int | String)", "Int", true},
		{"(Int | String)", "(String | Int)", true},
		{"Int", "(Int | String)", false},
		{"work[ title: String ]", "work[ title: String ]", true},
		{"work[ title: String ]", "work[ title: Any ]", false},
		{"work[ title: Any ]", "work[ title: String ]", true},
		{"Symbol[ Int ]", "work[ Int ]", true},
		{"work[ Int ]", "Symbol[ Int ]", false},
		{"work[ *Int ]", "work[ Int, Int ]", true},
		{"work[ Int, Int ]", "work[ *Int ]", false},
		{"work[ a: Int, *Symbol[ String ] ]", "work[ a: Int, b: String, c: String ]", true},
		{"work[ *(Int | String) ]", "work[ *Int, *String ]", true},
		{"work[ *Int ]", "work[ *Int, *String ]", false},
		{"set[ *Int ]", "set[ *Int ]", true},
		{"set[ *Int ]", "bag[ *Int ]", false}, // collection kinds differ
		{"work[ *Int ]", "work[]", true},
		{"work[]", "work[ Int ]", false},
	}
	for i, c := range cases {
		p, q := MustParse(c.p), MustParse(c.q)
		if got := Subsumes(nil, p, nil, q); got != c.want {
			t.Errorf("case %d: Subsumes(%s, %s) = %v, want %v", i, c.p, c.q, got, c.want)
		}
	}
}

func TestFigure3Instantiation(t *testing.T) {
	yat := YATModel()
	odmg := ODMGModel()
	arts := artifactsSchema()
	works := artworksStructure()

	if !InstanceOfModel(yat, odmg) {
		t.Error("ODMG <: YAT must hold")
	}
	if !InstanceOfModel(odmg, arts) {
		t.Error("Artifacts <: ODMG must hold")
	}
	if !InstanceOfModel(yat, arts) {
		t.Error("Artifacts <: YAT must hold (transitivity through the chain)")
	}
	if !InstanceOfModel(yat, works) {
		t.Error("Artworks <: YAT must hold")
	}
	if InstanceOfModel(odmg, works) {
		t.Error("Artworks is partially structured; it is not an ODMG instance")
	}
	// And data-level: the Monet artifact instantiates its schema class,
	// whose pattern instantiates the ODMG Class.
	if !Subsumes(odmg, odmg.Lookup("Class"), arts, arts.Lookup("Artifact")) {
		t.Error("Artifact <: Class must hold")
	}
	if !MatchData(arts, arts.Lookup("Artifact"), monetArtifact()) {
		t.Error("data <: schema must hold")
	}
}

func TestSubsumesRecursive(t *testing.T) {
	// Mutually recursive patterns: Fields may nest fields.
	m1 := MustParseModel(`model a
F := Symbol[ *( String | &F ) ]`)
	m2 := MustParseModel(`model b
G := cplace[ *( "Giverny" | &G ) ]`)
	if !Subsumes(m1, m1.Lookup("F"), m2, m2.Lookup("G")) {
		t.Error("recursive G must instantiate recursive F")
	}
	m3 := MustParseModel(`model c
H := cplace[ *( Int | &H ) ]`)
	if Subsumes(m1, m1.Lookup("F"), m3, m3.Lookup("H")) {
		t.Error("Int fields do not instantiate String-only F")
	}
}

func TestSubsumesReflexiveOnSchemas(t *testing.T) {
	for _, m := range []*Model{artifactsSchema(), artworksStructure(), ODMGModel(), YATModel()} {
		for _, name := range m.Names() {
			if !Subsumes(m, m.Defs[name], m, m.Defs[name]) {
				t.Errorf("%s.%s must subsume itself", m.Name, name)
			}
		}
	}
}

func TestMatchImpliesSubsumedMatch(t *testing.T) {
	// If data matches q and q <: p then data matches p (soundness of
	// subsumption wrt matching) — checked on the cultural fixtures.
	m := artifactsSchema()
	odmg := ODMGModel()
	d := monetArtifact()
	if !MatchData(m, m.Lookup("Artifact"), d) {
		t.Fatal("fixture must match its schema")
	}
	if !Subsumes(odmg, odmg.Lookup("Class"), m, m.Lookup("Artifact")) {
		t.Fatal("Artifact <: Class")
	}
	if !MatchData(odmg, odmg.Lookup("Class"), d) {
		t.Error("data matching Artifact must match Class")
	}
}

func TestModelXMLRoundTrip(t *testing.T) {
	for _, m := range []*Model{artifactsSchema(), artworksStructure(), ODMGModel(), YATModel()} {
		s := MarshalModel(m)
		back, err := UnmarshalModel(s)
		if err != nil {
			t.Fatalf("model %s: %v\n%s", m.Name, err, s)
		}
		if back.Name != m.Name {
			t.Errorf("name %q -> %q", m.Name, back.Name)
		}
		if strings.Join(back.Names(), ",") != strings.Join(m.Names(), ",") {
			t.Errorf("names %v -> %v", m.Names(), back.Names())
		}
		for _, n := range m.Names() {
			if back.Defs[n].String() != m.Defs[n].String() {
				t.Errorf("model %s pattern %s: %s -> %s", m.Name, n, m.Defs[n], back.Defs[n])
			}
		}
	}
}

func TestPatternXMLErrors(t *testing.T) {
	bad := []string{
		`<leaf label="Complex"/>`,
		`<ref/>`,
		`<const type="Int" value="xx"/>`,
		`<const type="Float" value="xx"/>`,
		`<const type="Void" value="1"/>`,
		`<unknown/>`,
		`<node label="a"><star/></node>`,
	}
	for _, src := range bad {
		n, err := xmlenc.Parse(src)
		if err != nil {
			t.Fatalf("fixture %q: %v", src, err)
		}
		if _, err := FromXML(n); err == nil {
			t.Errorf("FromXML(%q) should fail", src)
		}
	}
}

// genPattern produces a pseudo-random closed pattern.
func genPattern(seed int64, depth int) *P {
	labels := []string{"work", "title", "artist", "owners", "set", "tuple"}
	s := seed
	next := func(n int64) int64 {
		s = s*6364136223846793005 + 1442695040888963407
		v := (s >> 33) % n
		if v < 0 {
			v = -v
		}
		return v
	}
	var build func(d int) *P
	build = func(d int) *P {
		if d <= 0 || next(4) == 0 {
			switch next(5) {
			case 0:
				return Int()
			case 1:
				return Str()
			case 2:
				return Float()
			case 3:
				return Const(data.String(labels[next(int64(len(labels)))]))
			default:
				return Any()
			}
		}
		switch next(5) {
		case 0:
			return Union(build(d-1), build(d-1))
		default:
			l := labels[next(int64(len(labels)))]
			n := &P{Kind: KNode, Label: l, Col: ColFromString(l)}
			if next(5) == 0 {
				n.Label, n.AnyLabel = "", true
			}
			k := int(next(3))
			for i := 0; i < k; i++ {
				n.Items = append(n.Items, Item{P: build(d - 1), Star: next(3) == 0})
			}
			return n
		}
	}
	return build(depth)
}

func TestPropertySubsumesReflexive(t *testing.T) {
	f := func(seed int64) bool {
		p := genPattern(seed, 4)
		return Subsumes(nil, p, nil, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAnySubsumesAll(t *testing.T) {
	f := func(seed int64) bool {
		return Subsumes(nil, Any(), nil, genPattern(seed, 4))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyXMLRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		p := genPattern(seed, 4)
		back, err := FromXML(ToXML(p))
		if err != nil {
			return false
		}
		return back.String() == p.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		p := genPattern(seed, 4)
		back, err := ParsePattern(p.String())
		if err != nil {
			t.Logf("seed %d: %q: %v", seed, p.String(), err)
			return false
		}
		return back.String() == p.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
