package pattern

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/data"
)

// The textual pattern syntax, used throughout tests and by the mediator
// console. It mirrors the graphical notation of Figure 3:
//
//	Artifact := class[ tuple[ title: String, year: Int, creator: String,
//	                          price: Float, owners: list[ *&Person ] ] ]
//	Type     := ( Int | Bool | Float | String | tuple[ *Symbol: &Type ]
//	            | set[ *&Type ] | &Class )
//
// `*` marks multiple occurrence, `&Name` references a named pattern,
// `( a | b )` is an alternative, `Symbol` is the any-label wildcard, and
// `label: p` abbreviates `label[ p ]`. The labels set/bag/list/array carry
// their collection kind.

type tokKind int

const (
	tEOF tokKind = iota
	tName
	tString
	tNumber
	tPunct // one of []():,*&|=
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '#': // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.IndexByte("[]():,*&|=", c) >= 0:
			// ":=" is two tokens (':' '='); callers handle it.
			l.toks = append(l.toks, token{tPunct, string(c), l.pos})
			l.pos++
		case c == '"':
			start := l.pos
			l.pos++
			var b strings.Builder
			for l.pos < len(l.src) && l.src[l.pos] != '"' {
				if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
					l.pos++
				}
				b.WriteByte(l.src[l.pos])
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("pattern: unterminated string at offset %d", start)
			}
			l.pos++
			l.toks = append(l.toks, token{tString, b.String(), start})
		case c >= '0' && c <= '9' || c == '-':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
				l.pos++
			}
			l.toks = append(l.toks, token{tNumber, l.src[start:l.pos], start})
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{tName, l.src[start:l.pos], start})
		default:
			return nil, fmt.Errorf("pattern: unexpected character %q at offset %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tEOF, "", l.pos})
	return l.toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '@' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c == '\'' || c == '-' || (c >= '0' && c <= '9')
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(text string) error {
	t := p.cur()
	if t.kind == tPunct && t.text == text {
		p.i++
		return nil
	}
	return fmt.Errorf("pattern: expected %q at offset %d, got %q", text, t.pos, t.text)
}

func (p *parser) isPunct(text string) bool {
	t := p.cur()
	return t.kind == tPunct && t.text == text
}

// ParsePattern parses a single pattern in the textual syntax.
func ParsePattern(src string) (*P, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pat, err := p.pattern()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, fmt.Errorf("pattern: trailing input at offset %d", p.cur().pos)
	}
	return pat, nil
}

// MustParse is ParsePattern panicking on error; for fixtures and tests.
func MustParse(src string) *P {
	p, err := ParsePattern(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseModel parses a model definition:
//
//	model name
//	Name := pattern
//	...
func ParseModel(src string) (*Model, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	t := p.next()
	if t.kind != tName || t.text != "model" {
		return nil, fmt.Errorf("pattern: expected 'model' at offset %d", t.pos)
	}
	nameTok := p.next()
	if nameTok.kind != tName {
		return nil, fmt.Errorf("pattern: expected model name at offset %d", nameTok.pos)
	}
	m := NewModel(nameTok.text)
	for p.cur().kind != tEOF {
		def := p.next()
		if def.kind != tName {
			return nil, fmt.Errorf("pattern: expected definition name at offset %d", def.pos)
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		pat, err := p.pattern()
		if err != nil {
			return nil, err
		}
		m.Define(def.text, pat)
	}
	return m, nil
}

// MustParseModel is ParseModel panicking on error.
func MustParseModel(src string) *Model {
	m, err := ParseModel(src)
	if err != nil {
		panic(err)
	}
	return m
}

func (p *parser) pattern() (*P, error) {
	t := p.cur()
	switch t.kind {
	case tString:
		p.i++
		// A quoted name followed by '[' or ':' is a node label: XML names
		// may contain characters outside the identifier alphabet or collide
		// with reserved words, and String() quotes them (cf. writeLabel).
		// Quoted labels never carry reserved meaning — no Symbol wildcard,
		// no collection kind.
		if p.isPunct("[") || p.isPunct(":") {
			node := &P{Kind: KNode, Label: t.text}
			if err := p.nodeSuffix(node); err != nil {
				return nil, err
			}
			return node, nil
		}
		return Const(data.String(t.text)), nil
	case tNumber:
		p.i++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("pattern: bad number %q at offset %d", t.text, t.pos)
			}
			return Const(data.Float(f)), nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pattern: bad number %q at offset %d", t.text, t.pos)
		}
		return Const(data.Int(v)), nil
	case tPunct:
		switch t.text {
		case "&":
			p.i++
			n := p.next()
			if n.kind != tName {
				return nil, fmt.Errorf("pattern: expected name after '&' at offset %d", n.pos)
			}
			return Ref(n.text), nil
		case "(":
			p.i++
			var alts []*P
			for {
				a, err := p.pattern()
				if err != nil {
					return nil, err
				}
				alts = append(alts, a)
				if p.isPunct("|") {
					p.i++
					continue
				}
				break
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			if len(alts) == 1 {
				return alts[0], nil
			}
			return Union(alts...), nil
		}
		return nil, fmt.Errorf("pattern: unexpected %q at offset %d", t.text, t.pos)
	case tName:
		p.i++
		switch t.text {
		case "Int":
			return Int(), nil
		case "Float":
			return Float(), nil
		case "Bool":
			return Bool(), nil
		case "String":
			return Str(), nil
		case "Any":
			return Any(), nil
		case "true":
			return Const(data.Bool(true)), nil
		case "false":
			return Const(data.Bool(false)), nil
		}
		node := &P{Kind: KNode, Label: t.text}
		if t.text == "Symbol" {
			node.Label, node.AnyLabel = "", true
		}
		node.Col = ColFromString(t.text)
		if err := p.nodeSuffix(node); err != nil {
			return nil, err
		}
		return node, nil
	default:
		return nil, fmt.Errorf("pattern: unexpected end of input")
	}
}

// nodeSuffix parses a node's child sequence: `[ items ]`, the `label: p`
// scalar abbreviation, or nothing (a leaf node). A following ":=" definition
// head is left untouched.
func (p *parser) nodeSuffix(node *P) error {
	switch {
	case p.isPunct("["):
		p.i++
		items, err := p.items()
		if err != nil {
			return err
		}
		node.Items = items
		return p.expect("]")
	case p.isPunct(":"):
		if p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tPunct && p.toks[p.i+1].text == "=" {
			return nil
		}
		p.i++
		kid, err := p.pattern()
		if err != nil {
			return err
		}
		node.Items = []Item{{P: kid}}
	}
	return nil
}

func (p *parser) items() ([]Item, error) {
	var items []Item
	if p.isPunct("]") {
		return items, nil
	}
	for {
		star := false
		if p.isPunct("*") {
			p.i++
			star = true
		}
		pat, err := p.pattern()
		if err != nil {
			return nil, err
		}
		items = append(items, Item{P: pat, Star: star})
		if p.isPunct(",") {
			p.i++
			continue
		}
		return items, nil
	}
}
