package pattern

// Emptiness and disjointness analysis over patterns (the "empty
// intersection" machinery behind plan typing, Section 2's instantiation
// order read contrapositively: if no data tree can instantiate both p and
// q, any operator whose input is typed p and whose consumer demands q is
// provably dead).
//
// Both predicates are conservative in the safe direction for static
// analysis: Empty returns true only when p provably has no instances, and
// Disjoint returns true only when p and q provably share no instance.
// "Instance" here means a materialized (non-reference) data tree:
// reference nodes match every node pattern under MatchData, so with refs
// admitted nothing involving node patterns would ever be disjoint. The
// analyses that build on these predicates (dead-branch pruning, wire
// conformance) deal in shipped wrapper rows, which are materialized.

// Empty reports whether p provably has no instances under m: an
// unresolvable reference, a union with no satisfiable alternative, a node
// one of whose mandatory items is empty, or a reference cycle with no
// finite base case (a least-fixpoint reading: every data tree is finite).
func Empty(m *Model, p *P) bool {
	e := &emptiness{m: m, memo: map[*P]bool{}, inflight: map[*P]bool{}}
	return e.empty(p)
}

type emptiness struct {
	m        *Model
	memo     map[*P]bool
	inflight map[*P]bool
}

func (e *emptiness) empty(p *P) bool {
	if p == nil {
		return true
	}
	if v, ok := e.memo[p]; ok {
		return v
	}
	// Inductive (least-fixpoint) treatment of cycles: while a pattern's
	// emptiness is being computed, assume it is empty; only a finite
	// derivation avoiding the cycle can prove it inhabited.
	if e.inflight[p] {
		return true
	}
	e.inflight[p] = true
	defer delete(e.inflight, p)

	v := false
	switch p.Kind {
	case KRef:
		if e.m == nil {
			v = true
		} else if def := e.m.Lookup(p.Name); def == nil {
			v = true
		} else {
			v = e.empty(def)
		}
	case KUnion:
		v = true
		for _, alt := range p.Alts {
			if !e.empty(alt) {
				v = false
				break
			}
		}
	case KNode:
		for _, it := range p.Items {
			if !it.Star && e.empty(it.P) {
				v = true
				break
			}
		}
	}
	e.memo[p] = v
	return v
}

// Disjoint reports whether p (under mp) and q (under mq) provably have no
// common materialized instance. It is sound but incomplete: false means
// "a common instance may exist". Reference patterns are compared
// coinductively (a cyclic comparison with no finite witness of overlap
// stays disjoint).
func Disjoint(mp *Model, p *P, mq *Model, q *P) bool {
	if Empty(mp, p) || Empty(mq, q) {
		return true
	}
	d := &disjointer{mp: mp, mq: mq, assume: map[[2]*P]bool{}}
	return d.disjoint(p, q)
}

type disjointer struct {
	mp, mq *Model
	assume map[[2]*P]bool
}

func (d *disjointer) disjoint(p, q *P) bool {
	if p == nil || q == nil {
		// Unknown type: no claim.
		return false
	}
	key := [2]*P{p, q}
	if v, ok := d.assume[key]; ok {
		return v
	}
	// Coinductive assumption: cyclic pairs are disjoint unless some finite
	// unfolding exhibits a shared shape.
	d.assume[key] = true
	v := d.decide(p, q)
	d.assume[key] = v
	return v
}

func (d *disjointer) decide(p, q *P) bool {
	if p.Kind == KRef {
		if d.mp == nil {
			return false
		}
		def := d.mp.Lookup(p.Name)
		if def == nil {
			return true
		}
		return d.disjoint(def, q)
	}
	if q.Kind == KRef {
		if d.mq == nil {
			return false
		}
		def := d.mq.Lookup(q.Name)
		if def == nil {
			return true
		}
		return d.disjoint(p, def)
	}
	if p.Kind == KUnion {
		for _, alt := range p.Alts {
			if !d.disjoint(alt, q) {
				return false
			}
		}
		return true
	}
	if q.Kind == KUnion {
		for _, alt := range q.Alts {
			if !d.disjoint(p, alt) {
				return false
			}
		}
		return true
	}
	if p.Kind == KAny || q.Kind == KAny {
		return false
	}
	// Normalize so the non-node side (if any) is q.
	if q.Kind == KNode && p.Kind != KNode {
		p, q = q, p
	}
	switch p.Kind {
	case KNode:
		if q.Kind == KNode {
			return d.disjointNodes(p, q)
		}
		return d.disjointNodeAtom(p, q)
	default:
		return atomsDisjoint(p, q)
	}
}

// atomsDisjoint decides disjointness between two atomic/constant patterns.
// Int <: Float, so those two overlap; a constant overlaps exactly the
// atomic kinds that subsume it (mirroring subsumer.sub's KConst cases).
func atomsDisjoint(p, q *P) bool {
	if p.Kind == KConst && q.Kind == KConst {
		return !p.Const.Equal(*q.Const)
	}
	if q.Kind == KConst {
		p, q = q, p
	}
	if p.Kind == KConst {
		// q is a plain atomic kind.
		return !Subsumes(nil, q, nil, p)
	}
	if (p.Kind == KInt || p.Kind == KFloat) && (q.Kind == KInt || q.Kind == KFloat) {
		return false
	}
	return p.Kind != q.Kind
}

// disjointNodeAtom: an atomic (or constant) pattern matches only nodes
// that carry an atom, and a node pattern matches an atom-carrying node
// only through the leaf rule — exactly one item whose pattern matches the
// leaf itself. So the two overlap exactly when p has a single item
// compatible with q.
func (d *disjointer) disjointNodeAtom(p, q *P) bool {
	if len(p.Items) != 1 {
		return true
	}
	return d.disjoint(p.Items[0].P, q)
}

func (d *disjointer) disjointNodes(p, q *P) bool {
	if !p.AnyLabel && !q.AnyLabel && p.Label != q.Label {
		return true
	}
	// Compare mandatory arity ranges: a node with k mandatory items needs
	// at least k children, and with no star items admits at most
	// len(Items) children. (Leaf instances are covered: a leaf matches
	// only patterns with exactly one item, which have arity range
	// containing 1.)
	pMin, pMax := arity(p)
	qMin, qMax := arity(q)
	if pMin > qMax || qMin > pMax {
		return true
	}
	// Single-mandatory-item vs single-mandatory-item: the shared child
	// must instantiate both.
	if pMin == 1 && pMax == 1 && qMin == 1 && qMax == 1 {
		return d.disjoint(firstMandatory(p), firstMandatory(q))
	}
	return false
}

// arity returns the (min, max) number of children a node pattern admits;
// max is maxInt when a starred item is present.
func arity(p *P) (int, int) {
	min, max := 0, 0
	for _, it := range p.Items {
		if it.Star {
			max = int(^uint(0) >> 1)
		} else {
			min++
			if max != int(^uint(0)>>1) {
				max++
			}
		}
	}
	return min, max
}

func firstMandatory(p *P) *P {
	for _, it := range p.Items {
		if !it.Star {
			return it.P
		}
	}
	return nil
}
