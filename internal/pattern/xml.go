package pattern

import (
	"fmt"
	"strconv"

	"repro/internal/data"
	"repro/internal/xmlenc"
)

// XML serialization of patterns and models. Wrappers and mediators exchange
// structural metadata in XML (Section 2); the dialect here follows the
// Figure 6 conventions: <node label=... col=...>, <leaf label="Int"/>,
// <star>, <union>, <ref pattern=.../>, <any/>, plus <const> for data-level
// constants. Models serialize as <model name=...> with one <pattern name=...>
// element per definition.

// ToXML converts a pattern to its XML tree representation.
func ToXML(p *P) *data.Node {
	if p == nil {
		return data.Elem("nil")
	}
	switch p.Kind {
	case KAny:
		return data.Elem("any")
	case KInt, KFloat, KBool, KString:
		leaf := data.Elem("leaf")
		leaf.Add(data.Text("@label", kindLabel(p.Kind)))
		return leaf
	case KConst:
		c := data.Elem("const")
		c.Add(data.Text("@type", p.Const.Kind.String()))
		c.Add(data.Text("@value", p.Const.Text()))
		return c
	case KRef:
		r := data.Elem("ref")
		r.Add(data.Text("@pattern", p.Name))
		return r
	case KUnion:
		u := data.Elem("union")
		for _, a := range p.Alts {
			u.Add(ToXML(a))
		}
		return u
	case KNode:
		n := data.Elem("node")
		label := p.Label
		if p.AnyLabel {
			label = "Symbol"
		}
		n.Add(data.Text("@label", label))
		if p.Col != ColNone {
			n.Add(data.Text("@col", p.Col.String()))
		}
		for _, it := range p.Items {
			kid := ToXML(it.P)
			if it.Star {
				kid = data.Elem("star", kid)
			}
			n.Add(kid)
		}
		return n
	default:
		return data.Elem("nil")
	}
}

func kindLabel(k Kind) string {
	switch k {
	case KInt:
		return "Int"
	case KFloat:
		return "Float"
	case KBool:
		return "Bool"
	default:
		return "String"
	}
}

// FromXML converts an XML tree produced by ToXML back into a pattern.
func FromXML(n *data.Node) (*P, error) {
	if n == nil {
		return nil, fmt.Errorf("pattern: nil XML node")
	}
	switch n.Label {
	case "any":
		return Any(), nil
	case "nil":
		return nil, fmt.Errorf("pattern: nil pattern element")
	case "leaf":
		l := attr(n, "label")
		switch l {
		case "Int":
			return Int(), nil
		case "Float":
			return Float(), nil
		case "Bool":
			return Bool(), nil
		case "String":
			return Str(), nil
		default:
			return nil, fmt.Errorf("pattern: unknown leaf label %q", l)
		}
	case "const":
		return constFromXML(n)
	case "ref":
		name := attr(n, "pattern")
		if name == "" {
			return nil, fmt.Errorf("pattern: <ref> without pattern attribute")
		}
		return Ref(name), nil
	case "union":
		u := &P{Kind: KUnion}
		for _, k := range n.Kids {
			if isAttr(k) {
				continue
			}
			a, err := FromXML(k)
			if err != nil {
				return nil, err
			}
			u.Alts = append(u.Alts, a)
		}
		return u, nil
	case "node":
		p := &P{Kind: KNode, Label: attr(n, "label")}
		if p.Label == "Symbol" {
			p.Label, p.AnyLabel = "", true
		}
		p.Col = ColFromString(attr(n, "col"))
		for _, k := range n.Kids {
			if isAttr(k) {
				continue
			}
			star := false
			src := k
			if k.Label == "star" {
				star = true
				src = firstElem(k)
				if src == nil {
					return nil, fmt.Errorf("pattern: empty <star>")
				}
			}
			kid, err := FromXML(src)
			if err != nil {
				return nil, err
			}
			p.Items = append(p.Items, Item{P: kid, Star: star})
		}
		return p, nil
	default:
		return nil, fmt.Errorf("pattern: unknown element <%s>", n.Label)
	}
}

func constFromXML(n *data.Node) (*P, error) {
	typ, val := attr(n, "type"), attr(n, "value")
	switch typ {
	case "Int":
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pattern: bad Int const %q", val)
		}
		return Const(data.Int(v)), nil
	case "Float":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("pattern: bad Float const %q", val)
		}
		return Const(data.Float(v)), nil
	case "Bool":
		return Const(data.Bool(val == "true")), nil
	case "String":
		return Const(data.String(val)), nil
	default:
		return nil, fmt.Errorf("pattern: unknown const type %q", typ)
	}
}

func attr(n *data.Node, name string) string {
	if c := n.Child("@" + name); c != nil && c.Atom != nil {
		return c.Atom.S
	}
	return ""
}

func isAttr(n *data.Node) bool {
	return len(n.Label) > 0 && n.Label[0] == '@'
}

func firstElem(n *data.Node) *data.Node {
	for _, k := range n.Kids {
		if !isAttr(k) {
			return k
		}
	}
	return nil
}

// ModelToXML serializes a model to its XML tree.
func ModelToXML(m *Model) *data.Node {
	root := data.Elem("model")
	root.Add(data.Text("@name", m.Name))
	for _, name := range m.Names() {
		pe := data.Elem("pattern")
		pe.Add(data.Text("@name", name))
		pe.Add(ToXML(m.Defs[name]))
		root.Add(pe)
	}
	return root
}

// ModelFromXML parses a model from its XML tree.
func ModelFromXML(n *data.Node) (*Model, error) {
	if n == nil || n.Label != "model" {
		return nil, fmt.Errorf("pattern: expected <model> element")
	}
	m := NewModel(attr(n, "name"))
	for _, k := range n.Kids {
		if k.Label != "pattern" {
			continue
		}
		name := attr(k, "name")
		body := firstElem(k)
		if name == "" || body == nil {
			return nil, fmt.Errorf("pattern: malformed <pattern> element")
		}
		p, err := FromXML(body)
		if err != nil {
			return nil, fmt.Errorf("pattern %s: %w", name, err)
		}
		m.Define(name, p)
	}
	return m, nil
}

// MarshalModel renders the model as an XML string.
func MarshalModel(m *Model) string { return xmlenc.SerializeIndent(ModelToXML(m)) }

// UnmarshalModel parses a model from an XML string.
func UnmarshalModel(src string) (*Model, error) {
	n, err := xmlenc.Parse(src)
	if err != nil {
		return nil, err
	}
	return ModelFromXML(n)
}
