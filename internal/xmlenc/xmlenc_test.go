package xmlenc

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/data"
)

// figure1Object is the first object of Figure 1 of the paper.
const figure1Object = `
<object id="a1" class="artifact">
  <tuple>
    <title> Nympheas </title>
    <year> 1897 </year>
    <creator> Claude Monet </creator>
  </tuple>
  <owners refs="p1 p2 p3"/>
</object>`

func TestParseFigure1Object(t *testing.T) {
	n, err := Parse(figure1Object)
	if err != nil {
		t.Fatal(err)
	}
	if n.Label != "object" || n.ID != "a1" {
		t.Fatalf("root = %v", n)
	}
	if got := n.Child("@class").Atom.S; got != "artifact" {
		t.Errorf("class attr = %q", got)
	}
	tup := n.Child("tuple")
	if tup == nil || len(tup.Kids) != 3 {
		t.Fatalf("tuple = %v", tup)
	}
	if got := tup.Child("title").Atom.S; got != "Nympheas" {
		t.Errorf("title = %q (whitespace should be trimmed)", got)
	}
	owners := n.Child("owners")
	if len(owners.Kids) != 3 {
		t.Fatalf("owners = %v", owners)
	}
	for i, id := range []string{"p1", "p2", "p3"} {
		if owners.Kids[i].Ref != id {
			t.Errorf("owners[%d].Ref = %q, want %q", i, owners.Kids[i].Ref, id)
		}
	}
}

func TestParseMixedContent(t *testing.T) {
	src := `<history>Painted with <technique>Oil on canvas</technique> in ...</history>`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Kids) != 3 {
		t.Fatalf("mixed content kids = %d: %v", len(n.Kids), n)
	}
	if n.Kids[0].Atom.S != "Painted with" || n.Kids[1].Label != "technique" || n.Kids[2].Atom.S != "in ..." {
		t.Errorf("mixed parse = %v", n)
	}
}

func TestParseEntitiesAndCDATA(t *testing.T) {
	n, err := Parse(`<size>21 &lt; 61 &amp; more &#65;<![CDATA[<raw>]]></size>`)
	if err != nil {
		t.Fatal(err)
	}
	want := "21 < 61 & more A<raw>"
	if got := n.TextContent(); got != want {
		t.Errorf("text = %q, want %q", got, want)
	}
	if _, err := Parse(`<a>&bogus;</a>`); err == nil {
		t.Error("unknown entity must fail")
	}
	if _, err := Parse(`<a>&#xZZ;</a>`); err == nil {
		t.Error("bad char ref must fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`plain text`,
		`<a>`,
		`<a></b>`,
		`<a attr></a>`,
		`<a attr=>`,
		`<a attr="x></a>`,
		`<a><!-- unterminated</a>`,
		`<a/><b/>`,
		`<a/>trailing`,
		`<1tag/>`,
		`<a /b>`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("<a>\n<b>\n</c>\n</a>")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("expected ParseError, got %v", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "mismatched") {
		t.Errorf("error message = %q", pe.Error())
	}
}

func TestPrologCommentsDoctype(t *testing.T) {
	src := `<?xml version="1.0"?>
<!DOCTYPE doc [<!ELEMENT doc ANY>]>
<!-- a comment -->
<doc><x>1</x></doc>
<!-- trailing -->`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Label != "doc" || n.Child("x").Atom.S != "1" {
		t.Errorf("parsed = %v", n)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	orig := data.Elem("object",
		data.Text("@class", "artifact"),
		data.Elem("tuple",
			data.Text("title", "Nymphéas & friends"),
			data.Text("creator", `Claude "Oscar" Monet`),
		),
		data.Elem("owners", data.RefNode("ref", "p1"), data.RefNode("ref", "p2")),
		data.Elem("empty"),
	).WithID("a1")
	xmlText := Serialize(orig)
	back, err := Parse(xmlText)
	if err != nil {
		t.Fatalf("reparse %q: %v", xmlText, err)
	}
	if !data.Equal(orig, back) {
		t.Errorf("round trip mismatch:\norig: %v\nback: %v\nxml: %s", orig, back, xmlText)
	}
}

func TestSerializeRefsAttribute(t *testing.T) {
	n := data.Elem("owners", data.RefNode("ref", "p1"), data.RefNode("ref", "p2"))
	s := Serialize(n)
	if s != `<owners refs="p1 p2"/>` {
		t.Errorf("Serialize = %q", s)
	}
}

func TestSerializeIndent(t *testing.T) {
	n := data.Elem("work", data.Text("artist", "Claude Monet"), data.Text("title", "Nympheas"))
	s := SerializeIndent(n)
	want := "<work>\n  <artist>Claude Monet</artist>\n  <title>Nympheas</title>\n</work>\n"
	if s != want {
		t.Errorf("SerializeIndent = %q, want %q", s, want)
	}
}

func TestSerializeRefNode(t *testing.T) {
	n := data.RefNode("owner", "p1")
	s := Serialize(n)
	back, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ref != "p1" || back.Label != "owner" {
		t.Errorf("ref round trip = %v via %q", back, s)
	}
}

func TestForestRoundTrip(t *testing.T) {
	f := data.Forest{
		data.Text("a", "1"),
		data.Elem("b", data.Text("c", "2")),
	}
	s := SerializeForest(f)
	back, err := ParseForest(s)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(back) {
		t.Errorf("forest round trip: %v -> %q -> %v", f, s, back)
	}
	empty, err := ParseForest("  \n ")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty forest parse = %v, %v", empty, err)
	}
}

func TestEscape(t *testing.T) {
	if got := Escape(`<a&"'>`); got != "&lt;a&amp;&quot;&apos;&gt;" {
		t.Errorf("Escape = %q", got)
	}
}

func TestInferAtoms(t *testing.T) {
	n := data.Elem("work",
		data.Text("year", "1897"),
		data.Text("price", "1500000.5"),
		data.Text("sold", "true"),
		data.Text("title", "Nympheas"),
	)
	typed := InferAtoms(n)
	if typed.Child("year").Atom.Kind != data.KindInt || typed.Child("year").Atom.I != 1897 {
		t.Errorf("year = %v", typed.Child("year").Atom)
	}
	if typed.Child("price").Atom.Kind != data.KindFloat {
		t.Errorf("price = %v", typed.Child("price").Atom)
	}
	if typed.Child("sold").Atom.Kind != data.KindBool || !typed.Child("sold").Atom.B {
		t.Errorf("sold = %v", typed.Child("sold").Atom)
	}
	if typed.Child("title").Atom.Kind != data.KindString {
		t.Errorf("title = %v", typed.Child("title").Atom)
	}
	// original untouched
	if n.Child("year").Atom.Kind != data.KindString {
		t.Error("InferAtoms must not mutate its input")
	}
}

// genXMLTree builds a random tree whose shape survives XML round-tripping:
// labels non-empty, string atoms space-collapsed, no bare text kids.
func genXMLTree(seed int64, depth int) *data.Node {
	labels := []string{"work", "title", "artist", "style", "owners", "person", "doc"}
	s := seed
	next := func(n int64) int64 {
		s = s*6364136223846793005 + 1442695040888963407
		v := (s >> 33) % n
		if v < 0 {
			v = -v
		}
		return v
	}
	var build func(d int) *data.Node
	build = func(d int) *data.Node {
		l := labels[next(int64(len(labels)))]
		if d <= 0 || next(3) == 0 {
			switch next(3) {
			case 0:
				return data.IntLeaf(l, next(100000))
			case 1:
				return data.Text(l, "v"+labels[next(int64(len(labels)))])
			default:
				return data.RefNode(l, "id"+labels[next(int64(len(labels)))])
			}
		}
		n := data.Elem(l)
		k := int(next(4))
		for i := 0; i < k; i++ {
			n.Add(build(d - 1))
		}
		return n
	}
	return build(depth)
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		orig := genXMLTree(seed, 4)
		back, err := Parse(Serialize(orig))
		if err != nil {
			t.Logf("seed %d: parse error %v on %q", seed, err, Serialize(orig))
			return false
		}
		// Int atoms come back as strings from XML; retype before comparing.
		return data.EqualValue(InferAtoms(orig), InferAtoms(back))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		// Serialize then parse a leaf containing arbitrary text.
		clean := strings.Join(strings.Fields(s), " ") // parser collapses whitespace
		if strings.ContainsAny(clean, "\x00") {
			return true
		}
		for _, r := range clean {
			if r < 0x20 {
				return true // control chars are not representable in XML 1.0
			}
		}
		n := data.Text("t", clean)
		back, err := Parse(Serialize(n))
		if err != nil {
			return false
		}
		if clean == "" {
			return true // <t></t> parses as empty element, not empty text
		}
		return back.Atom != nil && back.Atom.S == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
