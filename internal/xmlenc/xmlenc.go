// Package xmlenc is the XML substrate of the YAT reproduction: a hand-rolled
// scanner, parser and serializer converting between XML text and YAT trees
// (internal/data). Wrappers and mediators communicate data, structures and
// operations in XML (Section 2 of the paper), so this package underlies the
// wire protocol, the capability-description language and data export.
//
// Mapping conventions (matching Figure 1 of the paper):
//
//   - an `id` attribute becomes the node identifier (data.Node.ID);
//   - a `refs` attribute becomes one reference child per whitespace-separated
//     identifier (e.g. <owners refs="p1 p2 p3"/>);
//   - a `ref` attribute makes the element itself a reference node;
//   - any other attribute name becomes a child element labeled "@name";
//   - character data becomes an unlabeled string leaf; an element whose only
//     child would be such a leaf becomes a leaf carrying the text directly.
package xmlenc

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/data"
)

// ParseError reports a syntax error with its byte offset and line.
type ParseError struct {
	Offset int
	Line   int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xml: line %d (offset %d): %s", e.Line, e.Offset, e.Msg)
}

type scanner struct {
	src string
	pos int
}

func (s *scanner) errf(format string, args ...any) error {
	line := 1 + strings.Count(s.src[:s.pos], "\n")
	return &ParseError{Offset: s.pos, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (s *scanner) eof() bool { return s.pos >= len(s.src) }

func (s *scanner) peek() byte {
	if s.eof() {
		return 0
	}
	return s.src[s.pos]
}

func (s *scanner) skipSpace() {
	for !s.eof() {
		switch s.src[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (s *scanner) name() (string, error) {
	start := s.pos
	if s.eof() || !isNameStart(s.src[s.pos]) {
		return "", s.errf("expected name")
	}
	for !s.eof() && isNameChar(s.src[s.pos]) {
		s.pos++
	}
	return s.src[start:s.pos], nil
}

// skipMisc consumes comments, processing instructions and doctype
// declarations between markup.
func (s *scanner) skipMisc() error {
	for {
		s.skipSpace()
		if s.pos+3 < len(s.src) && s.src[s.pos:s.pos+4] == "<!--" {
			end := strings.Index(s.src[s.pos+4:], "-->")
			if end < 0 {
				return s.errf("unterminated comment")
			}
			s.pos += 4 + end + 3
			continue
		}
		if s.pos+1 < len(s.src) && s.src[s.pos:s.pos+2] == "<?" {
			end := strings.Index(s.src[s.pos+2:], "?>")
			if end < 0 {
				return s.errf("unterminated processing instruction")
			}
			s.pos += 2 + end + 2
			continue
		}
		if s.pos+1 < len(s.src) && s.src[s.pos:s.pos+2] == "<!" &&
			!(s.pos+8 < len(s.src) && s.src[s.pos:s.pos+9] == "<![CDATA[") {
			// DOCTYPE etc: skip to matching '>'
			depth := 0
			for ; s.pos < len(s.src); s.pos++ {
				switch s.src[s.pos] {
				case '<':
					depth++
				case '>':
					depth--
					if depth == 0 {
						s.pos++
						goto again
					}
				}
			}
			return s.errf("unterminated declaration")
		}
		return nil
	again:
	}
}

// Parse parses an XML document and returns its root element as a YAT tree.
func Parse(src string) (*data.Node, error) {
	s := &scanner{src: src}
	if err := s.skipMisc(); err != nil {
		return nil, err
	}
	if s.eof() || s.peek() != '<' {
		return nil, s.errf("expected root element")
	}
	n, err := s.element()
	if err != nil {
		return nil, err
	}
	if err := s.skipMisc(); err != nil {
		return nil, err
	}
	s.skipSpace()
	if !s.eof() {
		return nil, s.errf("trailing content after root element")
	}
	return n, nil
}

// ParseForest parses a sequence of sibling XML elements (no single root),
// as produced when serializing a data.Forest.
func ParseForest(src string) (data.Forest, error) {
	s := &scanner{src: src}
	var out data.Forest
	for {
		if err := s.skipMisc(); err != nil {
			return nil, err
		}
		s.skipSpace()
		if s.eof() {
			return out, nil
		}
		if s.peek() != '<' {
			return nil, s.errf("expected element")
		}
		n, err := s.element()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
}

func (s *scanner) element() (*data.Node, error) {
	if s.peek() != '<' {
		return nil, s.errf("expected '<'")
	}
	s.pos++
	label, err := s.name()
	if err != nil {
		return nil, err
	}
	n := &data.Node{Label: label}
	// attributes
	for {
		s.skipSpace()
		if s.eof() {
			return nil, s.errf("unterminated start tag <%s", label)
		}
		c := s.peek()
		if c == '/' || c == '>' {
			break
		}
		aname, err := s.name()
		if err != nil {
			return nil, err
		}
		s.skipSpace()
		if s.peek() != '=' {
			return nil, s.errf("expected '=' after attribute %q", aname)
		}
		s.pos++
		s.skipSpace()
		aval, err := s.attrValue()
		if err != nil {
			return nil, err
		}
		switch aname {
		case "id":
			n.ID = aval
		case "ref":
			n.Ref = aval
		case "refs":
			for _, id := range strings.Fields(aval) {
				n.Add(data.RefNode("ref", id))
			}
		default:
			n.Add(data.Text("@"+aname, aval))
		}
	}
	if s.peek() == '/' {
		s.pos++
		if s.peek() != '>' {
			return nil, s.errf("expected '>' after '/'")
		}
		s.pos++
		return n, nil
	}
	s.pos++ // '>'
	if err := s.content(n); err != nil {
		return nil, err
	}
	// closing tag
	cname, err := s.name()
	if err != nil {
		return nil, err
	}
	if cname != label {
		return nil, s.errf("mismatched closing tag </%s> for <%s>", cname, label)
	}
	s.skipSpace()
	if s.peek() != '>' {
		return nil, s.errf("expected '>' in closing tag")
	}
	s.pos++
	normalizeLeaf(n)
	return n, nil
}

// normalizeLeaf collapses <e>text</e> into a leaf node labeled e.
func normalizeLeaf(n *data.Node) {
	if len(n.Kids) == 1 && n.Kids[0].Label == "" && n.Kids[0].Atom != nil && n.Ref == "" {
		n.Atom = n.Kids[0].Atom
		n.Kids = nil
	}
}

// content parses mixed element/text content until the matching `</` is
// consumed (leaving the scanner positioned at the closing tag name).
func (s *scanner) content(parent *data.Node) error {
	var text strings.Builder
	flush := func() {
		t := strings.TrimSpace(text.String())
		text.Reset()
		if t != "" {
			parent.Add(&data.Node{Atom: &data.Atom{Kind: data.KindString, S: collapseSpace(t)}})
		}
	}
	for {
		if s.eof() {
			return s.errf("unterminated element <%s>", parent.Label)
		}
		c := s.src[s.pos]
		if c != '<' {
			if c == '&' {
				r, err := s.entity()
				if err != nil {
					return err
				}
				text.WriteString(r)
				continue
			}
			text.WriteByte(c)
			s.pos++
			continue
		}
		// markup
		if s.pos+8 < len(s.src) && s.src[s.pos:s.pos+9] == "<![CDATA[" {
			end := strings.Index(s.src[s.pos+9:], "]]>")
			if end < 0 {
				return s.errf("unterminated CDATA")
			}
			text.WriteString(s.src[s.pos+9 : s.pos+9+end])
			s.pos += 9 + end + 3
			continue
		}
		if s.pos+3 < len(s.src) && s.src[s.pos:s.pos+4] == "<!--" {
			end := strings.Index(s.src[s.pos+4:], "-->")
			if end < 0 {
				return s.errf("unterminated comment")
			}
			s.pos += 4 + end + 3
			continue
		}
		if s.pos+1 < len(s.src) && s.src[s.pos+1] == '?' {
			end := strings.Index(s.src[s.pos+2:], "?>")
			if end < 0 {
				return s.errf("unterminated processing instruction")
			}
			s.pos += 2 + end + 2
			continue
		}
		if s.pos+1 < len(s.src) && s.src[s.pos+1] == '/' {
			flush()
			s.pos += 2
			return nil
		}
		flush()
		kid, err := s.element()
		if err != nil {
			return err
		}
		parent.Add(kid)
	}
}

func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

func (s *scanner) attrValue() (string, error) {
	q := s.peek()
	if q != '"' && q != '\'' {
		return "", s.errf("expected quoted attribute value")
	}
	s.pos++
	var b strings.Builder
	for {
		if s.eof() {
			return "", s.errf("unterminated attribute value")
		}
		c := s.src[s.pos]
		if c == q {
			s.pos++
			return b.String(), nil
		}
		if c == '&' {
			r, err := s.entity()
			if err != nil {
				return "", err
			}
			b.WriteString(r)
			continue
		}
		b.WriteByte(c)
		s.pos++
	}
}

func (s *scanner) entity() (string, error) {
	end := strings.IndexByte(s.src[s.pos:], ';')
	if end < 0 || end > 12 {
		return "", s.errf("unterminated entity reference")
	}
	ent := s.src[s.pos+1 : s.pos+end]
	s.pos += end + 1
	switch ent {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "quot":
		return "\"", nil
	case "apos":
		return "'", nil
	}
	if strings.HasPrefix(ent, "#") {
		base, digits := 10, ent[1:]
		if strings.HasPrefix(digits, "x") || strings.HasPrefix(digits, "X") {
			base, digits = 16, digits[1:]
		}
		code, err := strconv.ParseInt(digits, base, 32)
		if err != nil {
			return "", s.errf("bad character reference &%s;", ent)
		}
		return string(rune(code)), nil
	}
	return "", s.errf("unknown entity &%s;", ent)
}

// Escape returns s with the five predefined XML entities escaped.
func Escape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		case '"':
			b.WriteString("&quot;")
		case '\'':
			b.WriteString("&apos;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// Serialize renders a YAT tree as XML text, inverse to Parse: identifiers
// become id attributes, reference-only children collapse into refs
// attributes, "@name" children become attributes, leaves become element text.
func Serialize(n *data.Node) string {
	var b strings.Builder
	serialize(&b, n, -1)
	return b.String()
}

// SerializeIndent renders the tree as indented XML.
func SerializeIndent(n *data.Node) string {
	var b strings.Builder
	serialize(&b, n, 0)
	b.WriteByte('\n')
	return b.String()
}

// SerializeForest renders each tree of the forest in order.
func SerializeForest(f data.Forest) string {
	var b strings.Builder
	for i, n := range f {
		if i > 0 {
			b.WriteByte('\n')
		}
		serialize(&b, n, 0)
	}
	return b.String()
}

func serialize(b *strings.Builder, n *data.Node, indent int) {
	if n == nil {
		return
	}
	pad := ""
	if indent >= 0 {
		pad = strings.Repeat("  ", indent)
	}
	if n.Label == "" && n.Atom != nil { // bare text node
		b.WriteString(pad)
		b.WriteString(Escape(n.Atom.Text()))
		return
	}
	b.WriteString(pad)
	b.WriteByte('<')
	b.WriteString(n.Label)
	if n.ID != "" {
		fmt.Fprintf(b, ` id="%s"`, Escape(n.ID))
	}
	if n.Ref != "" {
		fmt.Fprintf(b, ` ref="%s"`, Escape(n.Ref))
	}
	// Split children: attributes, pure-ref run, others.
	var attrs, refs, kids []*data.Node
	for _, k := range n.Kids {
		switch {
		case strings.HasPrefix(k.Label, "@") && k.Atom != nil:
			attrs = append(attrs, k)
		case k.Label == "ref" && k.IsRef() && k.ID == "":
			refs = append(refs, k)
		default:
			kids = append(kids, k)
		}
	}
	for _, a := range attrs {
		fmt.Fprintf(b, ` %s="%s"`, a.Label[1:], Escape(a.Atom.Text()))
	}
	if len(refs) > 0 {
		ids := make([]string, len(refs))
		for i, r := range refs {
			ids[i] = r.Ref
		}
		fmt.Fprintf(b, ` refs="%s"`, Escape(strings.Join(ids, " ")))
	}
	if n.Atom != nil {
		b.WriteByte('>')
		b.WriteString(Escape(n.Atom.Text()))
		b.WriteString("</")
		b.WriteString(n.Label)
		b.WriteByte('>')
		return
	}
	if len(kids) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	inline := true
	for _, k := range kids {
		if !(k.Label == "" && k.Atom != nil) {
			inline = false
			break
		}
	}
	if inline || indent < 0 {
		for _, k := range kids {
			serialize(b, k, -1)
		}
	} else {
		for _, k := range kids {
			b.WriteByte('\n')
			serialize(b, k, indent+1)
		}
		b.WriteByte('\n')
		b.WriteString(pad)
	}
	b.WriteString("</")
	b.WriteString(n.Label)
	b.WriteByte('>')
}

// InferAtoms returns a copy of the tree in which every string leaf whose text
// parses as an integer, float or boolean is retyped accordingly. Wrappers
// apply it when the source (e.g. Wais) stores untyped text but the imported
// structure declares Int or Float fields.
func InferAtoms(n *data.Node) *data.Node {
	c := n.Clone()
	c.Walk(func(m *data.Node) bool {
		if m.Atom != nil && m.Atom.Kind == data.KindString {
			s := strings.TrimSpace(m.Atom.S)
			if v, err := strconv.ParseInt(s, 10, 64); err == nil {
				a := data.Int(v)
				m.Atom = &a
			} else if v, err := strconv.ParseFloat(s, 64); err == nil {
				a := data.Float(v)
				m.Atom = &a
			} else if s == "true" || s == "false" {
				a := data.Bool(s == "true")
				m.Atom = &a
			}
		}
		return true
	})
	return c
}
