package tab

import (
	"fmt"
	"strconv"

	"repro/internal/data"
	"repro/internal/xmlenc"
)

// XML serialization of Tab structures, used by the wire protocol when a
// wrapper ships the result of a pushed query back to the mediator. The
// format is self-describing:
//
//	<tab cols="$t $a">
//	  <row>
//	    <atom type="String">Nympheas</atom>
//	    <tree><work>...</work></tree>
//	  </row>
//	</tab>
//
// Cell elements are <null/>, <atom type=...>, <tree>, <seq> or a nested
// <tab>.

// ToXML converts the Tab to its XML tree.
func ToXML(t *Tab) *data.Node {
	root := data.Elem("tab")
	cols := ""
	for i, c := range t.Cols {
		if i > 0 {
			cols += " "
		}
		cols += c
	}
	root.Add(data.Text("@cols", cols))
	for _, r := range t.Rows {
		row := data.Elem("row")
		for _, c := range r {
			row.Add(cellToXML(c))
		}
		root.Add(row)
	}
	return root
}

func cellToXML(c Cell) *data.Node {
	switch c.Kind {
	case CNull:
		return data.Elem("null")
	case CAtom:
		n := data.Leaf("atom", c.Atom)
		n.Kids = append(n.Kids, data.Text("@type", c.Atom.Kind.String()))
		return n
	case CTree:
		return data.Elem("tree", c.Tree)
	case CSeq:
		s := data.Elem("seq")
		s.Kids = append(s.Kids, c.Seq...)
		return s
	case CTab:
		return ToXML(c.Tab)
	default:
		return data.Elem("null")
	}
}

// FromXML parses a Tab from its XML tree.
func FromXML(n *data.Node) (*Tab, error) {
	if n == nil || n.Label != "tab" {
		return nil, fmt.Errorf("tab: expected <tab> element, got %v", n)
	}
	var cols []string
	if c := n.Child("@cols"); c != nil && c.Atom != nil && c.Atom.S != "" {
		cols = splitFields(c.Atom.S)
	}
	t := New(cols...)
	for _, k := range n.Kids {
		if k.Label != "row" {
			continue
		}
		row := make(Row, 0, len(cols))
		for _, cn := range k.Kids {
			if len(cn.Label) > 0 && cn.Label[0] == '@' {
				continue
			}
			c, err := cellFromXML(cn)
			if err != nil {
				return nil, err
			}
			row = append(row, c)
		}
		if len(row) != len(cols) {
			return nil, fmt.Errorf("tab: row with %d cells for %d columns", len(row), len(cols))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func cellFromXML(n *data.Node) (Cell, error) {
	switch n.Label {
	case "null":
		return Null(), nil
	case "atom":
		typ := ""
		if c := n.Child("@type"); c != nil && c.Atom != nil {
			typ = c.Atom.S
		}
		text := ""
		if n.Atom != nil {
			text = n.Atom.Text()
		} else {
			// The parser keeps the text as an unlabeled child when the
			// element also carries attributes.
			for _, k := range n.Kids {
				if k.Label == "" && k.Atom != nil {
					text = k.Atom.Text()
					break
				}
			}
		}
		switch typ {
		case "Int":
			v, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return Null(), fmt.Errorf("tab: bad Int atom %q", text)
			}
			return AtomCell(data.Int(v)), nil
		case "Float":
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return Null(), fmt.Errorf("tab: bad Float atom %q", text)
			}
			return AtomCell(data.Float(v)), nil
		case "Bool":
			return AtomCell(data.Bool(text == "true")), nil
		case "String":
			return AtomCell(data.String(text)), nil
		default:
			return Null(), fmt.Errorf("tab: unknown atom type %q", typ)
		}
	case "tree":
		var body *data.Node
		for _, k := range n.Kids {
			if len(k.Label) > 0 && k.Label[0] == '@' {
				continue
			}
			body = k
			break
		}
		if body == nil {
			return Null(), fmt.Errorf("tab: empty <tree> cell")
		}
		return TreeCell(body), nil
	case "seq":
		var f data.Forest
		for _, k := range n.Kids {
			if len(k.Label) > 0 && k.Label[0] == '@' {
				continue
			}
			f = append(f, k)
		}
		return SeqCell(f), nil
	case "tab":
		nested, err := FromXML(n)
		if err != nil {
			return Null(), err
		}
		return TabCell(nested), nil
	default:
		return Null(), fmt.Errorf("tab: unknown cell element <%s>", n.Label)
	}
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

// Marshal renders the Tab as an XML string.
func Marshal(t *Tab) string { return xmlenc.Serialize(ToXML(t)) }

// Unmarshal parses a Tab from an XML string.
func Unmarshal(src string) (*Tab, error) {
	n, err := xmlenc.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromXML(n)
}
