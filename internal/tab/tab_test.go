package tab

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/data"
)

func work(title, artist string) *data.Node {
	return data.Elem("work", data.Text("title", title), data.Text("artist", artist))
}

// figure4Tab builds the Tab of Figure 4: one row per work with its title,
// artist, style, size and optional fields.
func figure4Tab() *Tab {
	t := New("$t", "$a", "$s", "$si", "$fields")
	t.Add(
		AtomCell(data.String("Nympheas")),
		AtomCell(data.String("Claude Monet")),
		AtomCell(data.String("Impressionist")),
		AtomCell(data.String("21 x 61")),
		SeqCell(data.Forest{data.Text("cplace", "Giverny")}),
	)
	t.Add(
		AtomCell(data.String("Waterloo Bridge")),
		AtomCell(data.String("Claude Monet")),
		AtomCell(data.String("Impressionist")),
		AtomCell(data.String("29.2 x 46.4")),
		SeqCell(data.Forest{data.Elem("history", data.Text("technique", "Oil on canvas"))}),
	)
	return t
}

func TestCellAsAtom(t *testing.T) {
	if a, ok := AtomCell(data.Int(5)).AsAtom(); !ok || a.I != 5 {
		t.Error("atom cell AsAtom")
	}
	if a, ok := TreeCell(data.Text("title", "X")).AsAtom(); !ok || a.S != "X" {
		t.Error("leaf tree cell AsAtom")
	}
	if _, ok := TreeCell(work("a", "b")).AsAtom(); ok {
		t.Error("interior tree is not an atom")
	}
	if _, ok := Null().AsAtom(); ok {
		t.Error("null is not an atom")
	}
}

func TestCellEqualAcrossKinds(t *testing.T) {
	// an atom and a leaf tree with the same value compare equal
	if !AtomCell(data.String("X")).Equal(TreeCell(data.Text("t", "X"))) {
		t.Error("atom vs leaf-tree equality")
	}
	if AtomCell(data.String("X")).Equal(TreeCell(work("a", "b"))) {
		t.Error("atom vs interior tree must differ")
	}
	if !Null().Equal(Null()) {
		t.Error("null equals null")
	}
	if Null().Equal(AtomCell(data.Int(0))) {
		t.Error("null differs from atom")
	}
}

func TestCellCompareConsistent(t *testing.T) {
	cells := []Cell{
		Null(),
		AtomCell(data.Int(1)),
		AtomCell(data.Int(2)),
		AtomCell(data.String("a")),
		TreeCell(work("a", "b")),
		SeqCell(data.Forest{work("a", "b")}),
		TabCell(New("$x")),
	}
	for i, a := range cells {
		for j, b := range cells {
			ab, ba := a.Compare(b), b.Compare(a)
			if ab != -ba {
				t.Errorf("Compare not antisymmetric for %d,%d", i, j)
			}
			if (ab == 0) != a.Equal(b) && i != j {
				// Compare==0 should coincide with Equal for these samples
				t.Errorf("Compare/Equal inconsistent for %d,%d", i, j)
			}
		}
	}
}

func TestCellKeyConsistentWithEqual(t *testing.T) {
	a := AtomCell(data.String("X"))
	b := TreeCell(data.Text("t", "X"))
	if a.Key() != b.Key() {
		t.Error("equal cells must share a key")
	}
	c := TreeCell(work("a", "b"))
	d := TreeCell(work("a", "b"))
	if c.Key() != d.Key() {
		t.Error("equal trees share keys")
	}
	e := TreeCell(work("a", "c"))
	if c.Key() == e.Key() {
		t.Error("different trees should not share keys")
	}
}

func TestAsForest(t *testing.T) {
	if f := AtomCell(data.Int(3)).AsForest(); len(f) != 1 || f[0].Atom.I != 3 {
		t.Errorf("atom AsForest = %v", f)
	}
	if f := TreeCell(work("a", "b")).AsForest(); len(f) != 1 {
		t.Errorf("tree AsForest = %v", f)
	}
	seq := data.Forest{work("a", "b"), work("c", "d")}
	if f := SeqCell(seq).AsForest(); len(f) != 2 {
		t.Errorf("seq AsForest = %v", f)
	}
	if f := Null().AsForest(); f != nil {
		t.Errorf("null AsForest = %v", f)
	}
	nested := New("$x")
	nested.Add(AtomCell(data.Int(1)))
	f := TabCell(nested).AsForest()
	if len(f) != 1 || f[0].Label != "row" {
		t.Errorf("tab AsForest = %v", f)
	}
}

func TestProjectAndRename(t *testing.T) {
	tb := figure4Tab()
	p := tb.Project("$a", "title=$t")
	if strings.Join(p.Cols, ",") != "$a,title" {
		t.Fatalf("cols = %v", p.Cols)
	}
	if p.Len() != 2 {
		t.Fatalf("rows = %d", p.Len())
	}
	if a, _ := p.Rows[0][1].AsAtom(); a.S != "Nympheas" {
		t.Errorf("renamed col value = %v", p.Rows[0][1])
	}
	// unknown column yields nulls
	q := tb.Project("$nope")
	if !q.Rows[0][0].IsNull() {
		t.Error("projection of unknown column must be null")
	}
}

func TestSortByAndSorted(t *testing.T) {
	tb := New("$t")
	tb.Add(AtomCell(data.String("b")))
	tb.Add(AtomCell(data.String("a")))
	tb.Add(AtomCell(data.String("c")))
	tb.SortBy("$t")
	got := ""
	for _, r := range tb.Rows {
		a, _ := r[0].AsAtom()
		got += a.S
	}
	if got != "abc" {
		t.Errorf("SortBy order = %q", got)
	}
	s := figure4Tab().Sorted()
	if s.Len() != 2 {
		t.Error("Sorted preserves rows")
	}
}

func TestGroupBy(t *testing.T) {
	tb := New("$a", "$t")
	tb.Add(AtomCell(data.String("Monet")), AtomCell(data.String("Nympheas")))
	tb.Add(AtomCell(data.String("Monet")), AtomCell(data.String("Waterloo Bridge")))
	tb.Add(AtomCell(data.String("Degas")), AtomCell(data.String("Dancers")))
	g := tb.GroupBy("$group", "$a")
	if g.Len() != 2 {
		t.Fatalf("groups = %d", g.Len())
	}
	if strings.Join(g.Cols, ",") != "$a,$group" {
		t.Fatalf("group cols = %v", g.Cols)
	}
	first := g.Rows[0]
	if a, _ := first[0].AsAtom(); a.S != "Monet" {
		t.Errorf("first group key = %v (first-seen order)", first[0])
	}
	if first[1].Tab.Len() != 2 {
		t.Errorf("Monet group size = %d", first[1].Tab.Len())
	}
	if g.Rows[1][1].Tab.Len() != 1 {
		t.Errorf("Degas group size = %d", g.Rows[1][1].Tab.Len())
	}
}

func TestDistinct(t *testing.T) {
	tb := New("$x")
	tb.Add(AtomCell(data.Int(1)))
	tb.Add(AtomCell(data.Int(2)))
	tb.Add(AtomCell(data.Int(1)))
	d := tb.Distinct()
	if d.Len() != 2 {
		t.Errorf("distinct rows = %d", d.Len())
	}
}

func TestConcat(t *testing.T) {
	a := New("$x")
	a.Add(AtomCell(data.Int(1)))
	b := New("$x")
	b.Add(AtomCell(data.Int(2)))
	if err := a.Concat(b); err != nil || a.Len() != 2 {
		t.Errorf("concat: %v len=%d", err, a.Len())
	}
	c := New("$y")
	if err := a.Concat(c); err == nil {
		t.Error("mismatched cols must fail")
	}
	d := New("$x", "$y")
	if err := a.Concat(d); err == nil {
		t.Error("mismatched arity must fail")
	}
}

func TestEqualUnordered(t *testing.T) {
	a := New("$x")
	a.Add(AtomCell(data.Int(1)))
	a.Add(AtomCell(data.Int(2)))
	b := New("$x")
	b.Add(AtomCell(data.Int(2)))
	b.Add(AtomCell(data.Int(1)))
	if a.Equal(b) {
		t.Error("ordered equality should fail")
	}
	if !a.EqualUnordered(b) {
		t.Error("unordered equality should hold")
	}
	c := New("$x")
	c.Add(AtomCell(data.Int(2)))
	c.Add(AtomCell(data.Int(2)))
	if a.EqualUnordered(c) {
		t.Error("bag semantics: multiplicities matter")
	}
}

func TestAddPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with wrong arity must panic")
		}
	}()
	New("$a", "$b").Add(AtomCell(data.Int(1)))
}

func TestStringRendering(t *testing.T) {
	s := figure4Tab().String()
	for _, frag := range []string{"$t", "$fields", "Nympheas", "Waterloo Bridge"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Tab.String missing %q in:\n%s", frag, s)
		}
	}
	var nilTab *Tab
	if nilTab.String() != "<nil tab>" {
		t.Error("nil tab rendering")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	tb := figure4Tab()
	tb.Add(Null(), AtomCell(data.Int(1897)), AtomCell(data.Float(1.5)),
		AtomCell(data.Bool(true)), TreeCell(work("T", "A")))
	s := Marshal(tb)
	back, err := Unmarshal(s)
	if err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, s)
	}
	if !tb.EqualUnordered(back) || !tb.Equal(back) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s\nxml: %s", tb, back, s)
	}
}

func TestXMLNestedTab(t *testing.T) {
	inner := New("$t")
	inner.Add(AtomCell(data.String("Nympheas")))
	outer := New("$a", "$g")
	outer.Add(AtomCell(data.String("Monet")), TabCell(inner))
	back, err := Unmarshal(Marshal(outer))
	if err != nil {
		t.Fatal(err)
	}
	if !outer.Equal(back) {
		t.Errorf("nested round trip:\n%s\nvs\n%s", outer, back)
	}
}

func TestXMLErrors(t *testing.T) {
	bad := []string{
		`<notatab/>`,
		`<tab cols="$a"><row><atom type="Int">xx</atom></row></tab>`,
		`<tab cols="$a"><row><atom type="Float">xx</atom></row></tab>`,
		`<tab cols="$a"><row><atom type="Void">1</atom></row></tab>`,
		`<tab cols="$a"><row><mystery/></row></tab>`,
		`<tab cols="$a $b"><row><null/></row></tab>`,
		`<tab cols="$a"><row><tree/></row></tab>`,
	}
	for _, src := range bad {
		if _, err := Unmarshal(src); err == nil {
			t.Errorf("Unmarshal(%q) should fail", src)
		}
	}
}

func TestPropertyXMLRoundTrip(t *testing.T) {
	f := func(vals []int64, strs []string) bool {
		tb := New("$i", "$s")
		n := len(vals)
		if len(strs) < n {
			n = len(strs)
		}
		for i := 0; i < n; i++ {
			clean := strings.Join(strings.Fields(strs[i]), " ")
			ok := clean != ""
			for _, r := range clean {
				if r < 0x20 {
					ok = false
				}
			}
			if !ok {
				clean = "x"
			}
			tb.Add(AtomCell(data.Int(vals[i])), AtomCell(data.String(clean)))
		}
		back, err := Unmarshal(Marshal(tb))
		if err != nil {
			return false
		}
		return tb.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
