// Package tab implements the Tab structure of the YAT algebra: the ¬1NF
// relation produced by the Bind operator and consumed by the classical
// operators (Select, Project, Join, ...) as described in Section 3.1 and
// Figure 4 of the paper. A Tab has named columns (the filter's variables)
// and rows of cells; a cell holds an atomic value, a tree, an ordered
// sequence of trees (a collect-star binding such as $fields), or a nested
// Tab (the result of grouping).
package tab

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/data"
)

// CellKind discriminates the four cell shapes.
type CellKind int

// Cell kinds.
const (
	CNull CellKind = iota // absent value (outer operations, optional fields)
	CAtom                 // atomic value
	CTree                 // a single tree
	CSeq                  // an ordered sequence of trees
	CTab                  // a nested table
)

// Cell is one Tab entry.
type Cell struct {
	Kind CellKind
	Atom data.Atom
	Tree *data.Node
	Seq  data.Forest
	Tab  *Tab
}

// Null returns the absent cell.
func Null() Cell { return Cell{Kind: CNull} }

// AtomCell wraps an atomic value.
func AtomCell(a data.Atom) Cell { return Cell{Kind: CAtom, Atom: a} }

// TreeCell wraps a tree.
func TreeCell(n *data.Node) Cell { return Cell{Kind: CTree, Tree: n} }

// SeqCell wraps a sequence of trees.
func SeqCell(f data.Forest) Cell { return Cell{Kind: CSeq, Seq: f} }

// TabCell wraps a nested table.
func TabCell(t *Tab) Cell { return Cell{Kind: CTab, Tab: t} }

// IsNull reports whether the cell is absent.
func (c Cell) IsNull() bool { return c.Kind == CNull }

// AsAtom extracts an atomic value: directly for CAtom, from a leaf tree for
// CTree. The boolean reports success.
func (c Cell) AsAtom() (data.Atom, bool) {
	switch c.Kind {
	case CAtom:
		return c.Atom, true
	case CTree:
		return c.Tree.AtomValue()
	default:
		return data.Atom{}, false
	}
}

// AsForest views the cell as a sequence of trees: a CSeq directly, a CTree
// as a singleton, an atom as a singleton unlabeled leaf, a nested tab as its
// rows rendered to trees.
func (c Cell) AsForest() data.Forest {
	switch c.Kind {
	case CSeq:
		return c.Seq
	case CTree:
		return data.Forest{c.Tree}
	case CAtom:
		a := c.Atom
		return data.Forest{{Atom: &a}}
	case CTab:
		var out data.Forest
		for _, r := range c.Tab.Rows {
			row := data.Elem("row")
			for i, cc := range r {
				cell := data.Elem(c.Tab.Cols[i])
				cell.Kids = cc.AsForest()
				row.Add(cell)
			}
			out = append(out, row)
		}
		return out
	default:
		return nil
	}
}

// Equal reports deep value equality of two cells.
func (c Cell) Equal(d Cell) bool {
	if c.Kind != d.Kind {
		// Atom cells and leaf tree cells with the same atom compare equal:
		// sources differ in whether they ship bare atoms or leaf elements.
		ca, cok := c.AsAtom()
		da, dok := d.AsAtom()
		if cok && dok {
			return ca.Equal(da)
		}
		return false
	}
	switch c.Kind {
	case CNull:
		return true
	case CAtom:
		return c.Atom.Equal(d.Atom)
	case CTree:
		return data.EqualValue(c.Tree, d.Tree)
	case CSeq:
		return c.Seq.Equal(d.Seq)
	case CTab:
		return c.Tab.Equal(d.Tab)
	default:
		return false
	}
}

// Compare defines a total order over cells (for Sort and Group): nulls
// first, then by kind, atoms/trees/seqs by their natural orders.
func (c Cell) Compare(d Cell) int {
	ca, cok := c.AsAtom()
	da, dok := d.AsAtom()
	if cok && dok {
		return ca.Compare(da)
	}
	if c.Kind != d.Kind {
		if c.Kind < d.Kind {
			return -1
		}
		return 1
	}
	switch c.Kind {
	case CNull:
		return 0
	case CTree:
		return data.Compare(c.Tree, d.Tree)
	case CSeq:
		n := len(c.Seq)
		if len(d.Seq) < n {
			n = len(d.Seq)
		}
		for i := 0; i < n; i++ {
			if r := data.Compare(c.Seq[i], d.Seq[i]); r != 0 {
				return r
			}
		}
		switch {
		case len(c.Seq) < len(d.Seq):
			return -1
		case len(c.Seq) > len(d.Seq):
			return 1
		default:
			return 0
		}
	case CTab:
		return strings.Compare(c.Tab.String(), d.Tab.String())
	default:
		return 0
	}
}

// Key returns a string usable as a hash-map key, consistent with Equal.
func (c Cell) Key() string {
	if a, ok := c.AsAtom(); ok {
		return "a:" + a.Kind.String() + ":" + a.Text()
	}
	switch c.Kind {
	case CNull:
		return "_"
	case CTree:
		return fmt.Sprintf("t:%016x", data.Hash(c.Tree))
	case CSeq:
		var b strings.Builder
		b.WriteString("s:")
		for _, n := range c.Seq {
			fmt.Fprintf(&b, "%016x.", data.Hash(n))
		}
		return b.String()
	case CTab:
		return "T:" + c.Tab.String()
	default:
		return "?"
	}
}

// String renders the cell compactly.
func (c Cell) String() string {
	switch c.Kind {
	case CNull:
		return "⊥"
	case CAtom:
		return c.Atom.Text()
	case CTree:
		return c.Tree.String()
	case CSeq:
		return c.Seq.String()
	case CTab:
		return "⟨" + strings.ReplaceAll(c.Tab.String(), "\n", "; ") + "⟩"
	default:
		return "?"
	}
}

// Row is one Tab row; cells align with the Tab's Cols.
type Row []Cell

// Clone copies the row (cells share underlying trees, which are immutable
// by convention once placed in a Tab).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports cell-wise equality.
func (r Row) Equal(s Row) bool {
	if len(r) != len(s) {
		return false
	}
	for i := range r {
		if !r[i].Equal(s[i]) {
			return false
		}
	}
	return true
}

// Key concatenates cell keys; rows with equal keys are Equal.
func (r Row) Key() string {
	parts := make([]string, len(r))
	for i, c := range r {
		parts[i] = c.Key()
	}
	return strings.Join(parts, "|")
}

// Tab is the ¬1NF relation of the YAT algebra.
type Tab struct {
	Cols []string
	Rows []Row
}

// New returns an empty Tab with the given columns.
func New(cols ...string) *Tab {
	return &Tab{Cols: append([]string(nil), cols...)}
}

// Add appends a row; it must have exactly one cell per column.
func (t *Tab) Add(cells ...Cell) *Tab {
	if len(cells) != len(t.Cols) {
		panic(fmt.Sprintf("tab: row with %d cells for %d columns %v", len(cells), len(t.Cols), t.Cols))
	}
	t.Rows = append(t.Rows, Row(cells))
	return t
}

// AddRow appends a pre-built row with the same arity check.
func (t *Tab) AddRow(r Row) *Tab { return t.Add(r...) }

// Len reports the number of rows.
func (t *Tab) Len() int { return len(t.Rows) }

// ColIndex returns the position of a column, or -1.
func (t *Tab) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Cell returns the cell at (row, column name); Null if the column is absent.
func (t *Tab) Cell(row int, col string) Cell {
	i := t.ColIndex(col)
	if i < 0 {
		return Null()
	}
	return t.Rows[row][i]
}

// Project returns a new Tab with the named columns in the given order.
// Unknown columns yield all-null columns (outer semantics on optional
// fields); renames are performed with "new=old" entries.
func (t *Tab) Project(cols ...string) *Tab {
	type src struct {
		name string
		idx  int
	}
	plan := make([]src, len(cols))
	for i, c := range cols {
		name, old := c, c
		if j := strings.IndexByte(c, '='); j >= 0 {
			name, old = c[:j], c[j+1:]
		}
		plan[i] = src{name, t.ColIndex(old)}
	}
	out := &Tab{Cols: make([]string, len(cols))}
	for i, p := range plan {
		out.Cols[i] = p.name
	}
	for _, r := range t.Rows {
		row := make(Row, len(plan))
		for i, p := range plan {
			if p.idx < 0 {
				row[i] = Null()
			} else {
				row[i] = r[p.idx]
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Equal reports column- and row-wise equality (ordered).
func (t *Tab) Equal(u *Tab) bool {
	if t == nil || u == nil {
		return t == u
	}
	if len(t.Cols) != len(u.Cols) || len(t.Rows) != len(u.Rows) {
		return false
	}
	for i := range t.Cols {
		if t.Cols[i] != u.Cols[i] {
			return false
		}
	}
	for i := range t.Rows {
		if !t.Rows[i].Equal(u.Rows[i]) {
			return false
		}
	}
	return true
}

// EqualUnordered reports equality up to row order (bag semantics), used by
// the optimizer's semantics-preservation tests: rewritten plans may produce
// rows in a different order.
func (t *Tab) EqualUnordered(u *Tab) bool {
	if t == nil || u == nil {
		return t == u
	}
	if len(t.Cols) != len(u.Cols) || len(t.Rows) != len(u.Rows) {
		return false
	}
	for i := range t.Cols {
		if t.Cols[i] != u.Cols[i] {
			return false
		}
	}
	counts := make(map[string]int, len(t.Rows))
	for _, r := range t.Rows {
		counts[r.Key()]++
	}
	for _, r := range u.Rows {
		counts[r.Key()]--
	}
	for _, v := range counts {
		if v != 0 {
			return false
		}
	}
	return true
}

// SortBy sorts rows by the given columns in order (stable).
func (t *Tab) SortBy(cols ...string) {
	idx := make([]int, 0, len(cols))
	for _, c := range cols {
		if i := t.ColIndex(c); i >= 0 {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(t.Rows, func(a, b int) bool {
		for _, i := range idx {
			if r := t.Rows[a][i].Compare(t.Rows[b][i]); r != 0 {
				return r < 0
			}
		}
		return false
	})
}

// Sorted returns a copy of the Tab with rows sorted by all columns; useful
// to canonicalise before comparisons.
func (t *Tab) Sorted() *Tab {
	out := &Tab{Cols: append([]string(nil), t.Cols...), Rows: make([]Row, len(t.Rows))}
	for i, r := range t.Rows {
		out.Rows[i] = r
	}
	sort.SliceStable(out.Rows, func(a, b int) bool {
		return strings.Compare(out.Rows[a].Key(), out.Rows[b].Key()) < 0
	})
	return out
}

// GroupBy partitions rows by the key columns and returns a Tab with the key
// columns plus one nested-Tab column named into, containing the remaining
// columns of each group (in first-seen key order).
func (t *Tab) GroupBy(into string, keys ...string) *Tab {
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		keyIdx[i] = t.ColIndex(k)
	}
	var restCols []string
	var restIdx []int
	for i, c := range t.Cols {
		used := false
		for _, ki := range keyIdx {
			if i == ki {
				used = true
				break
			}
		}
		if !used {
			restCols = append(restCols, c)
			restIdx = append(restIdx, i)
		}
	}
	out := New(append(append([]string(nil), keys...), into)...)
	order := []string{}
	groups := map[string]*Tab{}
	keyRows := map[string]Row{}
	for _, r := range t.Rows {
		kr := make(Row, len(keyIdx))
		for i, ki := range keyIdx {
			if ki < 0 {
				kr[i] = Null()
			} else {
				kr[i] = r[ki]
			}
		}
		k := kr.Key()
		g, ok := groups[k]
		if !ok {
			g = New(restCols...)
			groups[k] = g
			keyRows[k] = kr
			order = append(order, k)
		}
		rest := make(Row, len(restIdx))
		for i, ri := range restIdx {
			rest[i] = r[ri]
		}
		g.Rows = append(g.Rows, rest)
	}
	for _, k := range order {
		out.AddRow(append(keyRows[k].Clone(), TabCell(groups[k])))
	}
	return out
}

// Distinct returns a copy with duplicate rows removed (first occurrence
// kept), implementing set semantics where required.
func (t *Tab) Distinct() *Tab {
	out := New(t.Cols...)
	seen := make(map[string]bool, len(t.Rows))
	for _, r := range t.Rows {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// Concat appends the rows of u (columns must match).
func (t *Tab) Concat(u *Tab) error {
	if len(t.Cols) != len(u.Cols) {
		return fmt.Errorf("tab: cannot concat %v with %v", t.Cols, u.Cols)
	}
	for i := range t.Cols {
		if t.Cols[i] != u.Cols[i] {
			return fmt.Errorf("tab: cannot concat %v with %v", t.Cols, u.Cols)
		}
	}
	t.Rows = append(t.Rows, u.Rows...)
	return nil
}

// String renders the Tab as an aligned text table, one row per line.
func (t *Tab) String() string {
	if t == nil {
		return "<nil tab>"
	}
	widths := make([]int, len(t.Cols))
	cells := make([][]string, len(t.Rows))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for ri, r := range t.Rows {
		cells[ri] = make([]string, len(r))
		for ci, c := range r {
			s := c.String()
			if len(s) > 48 {
				s = s[:45] + "..."
			}
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range t.Cols {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for ri := range cells {
		for ci := range cells[ri] {
			if ci > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[ci], cells[ri][ci])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
