package tab

import "io"

// DefaultStreamChunk is the number of rows moved per chunk on the streaming
// execution path. Chunks (rather than single rows) keep per-row interface
// and channel overhead off the hot path while still bounding memory by
// O(chunk), Volcano-style.
const DefaultStreamChunk = 128

// Cursor is a pull iterator over a relation, yielding it one chunk at a
// time. Next returns the next non-nil chunk, or io.EOF when the relation is
// exhausted; any other error is terminal. Chunks are owned by the consumer
// (producers must not reuse them). Close releases underlying resources
// (connections, goroutines) and must be safe to call more than once and
// after Next returned an error; abandoning a cursor without draining it is
// the normal way to cancel upstream work.
type Cursor interface {
	// Cols is the column list shared by every chunk the cursor yields.
	Cols() []string
	// Next returns the next chunk, io.EOF at the end of the stream, or a
	// terminal error. Implementations may return empty chunks; callers
	// should skip them rather than treat them as end-of-stream.
	Next() (*Tab, error)
	// Close releases resources; idempotent.
	Close() error
}

// sliceCursor streams an already-materialized table in chunks, without
// copying rows.
type sliceCursor struct {
	t     *Tab
	chunk int
	pos   int
}

// NewSliceCursor returns a cursor over t yielding chunks of at most chunk
// rows (DefaultStreamChunk when chunk < 1). The chunks alias t's rows.
func NewSliceCursor(t *Tab, chunk int) Cursor {
	if chunk < 1 {
		chunk = DefaultStreamChunk
	}
	return &sliceCursor{t: t, chunk: chunk}
}

func (c *sliceCursor) Cols() []string { return c.t.Cols }

func (c *sliceCursor) Next() (*Tab, error) {
	if c.pos >= len(c.t.Rows) {
		return nil, io.EOF
	}
	end := c.pos + c.chunk
	if end > len(c.t.Rows) {
		end = len(c.t.Rows)
	}
	out := &Tab{Cols: c.t.Cols, Rows: c.t.Rows[c.pos:end:end]}
	c.pos = end
	return out, nil
}

func (c *sliceCursor) Close() error {
	c.pos = len(c.t.Rows)
	return nil
}

// FuncCursor adapts a pair of closures to the Cursor interface; the zero
// value of CloseFn is fine for cursors with nothing to release.
type FuncCursor struct {
	Columns []string
	NextFn  func() (*Tab, error)
	CloseFn func() error
	closed  bool
}

func (c *FuncCursor) Cols() []string { return c.Columns }

func (c *FuncCursor) Next() (*Tab, error) {
	if c.closed {
		return nil, io.EOF
	}
	return c.NextFn()
}

func (c *FuncCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.CloseFn != nil {
		return c.CloseFn()
	}
	return nil
}

// rechunkCursor bounds the chunk size of an inner cursor.
type rechunkCursor struct {
	in      Cursor
	chunk   int
	pending *Tab // oversized chunk being sliced out
	pos     int
}

// Rechunk wraps a cursor so no chunk it yields exceeds chunk rows
// (DefaultStreamChunk when chunk < 1): oversized chunks are sliced without
// copying, bounded ones pass through unchanged. Producers whose natural
// unit is bigger than a chunk — a Bind matching one large tree, a wrapper
// answering a whole batch — use it to restore the bounded-chunk invariant
// downstream consumers size their buffers by.
func Rechunk(in Cursor, chunk int) Cursor {
	if chunk < 1 {
		chunk = DefaultStreamChunk
	}
	return &rechunkCursor{in: in, chunk: chunk}
}

func (c *rechunkCursor) Cols() []string { return c.in.Cols() }

func (c *rechunkCursor) Next() (*Tab, error) {
	for {
		if c.pending != nil {
			end := c.pos + c.chunk
			if end > len(c.pending.Rows) {
				end = len(c.pending.Rows)
			}
			out := &Tab{Cols: c.pending.Cols, Rows: c.pending.Rows[c.pos:end:end]}
			c.pos = end
			if c.pos >= len(c.pending.Rows) {
				c.pending, c.pos = nil, 0
			}
			return out, nil
		}
		t, err := c.in.Next()
		if err != nil {
			return nil, err
		}
		if t.Len() <= c.chunk {
			return t, nil
		}
		c.pending, c.pos = t, 0
	}
}

func (c *rechunkCursor) Close() error {
	c.pending, c.pos = nil, 0
	return c.in.Close()
}

// Drain pulls a cursor to exhaustion, concatenating every chunk into one
// materialized table, and closes it. It is the bridge from the streaming
// path back to the materialized API: Drain(stream) must be row-identical to
// the materialized evaluation of the same plan.
func Drain(c Cursor) (*Tab, error) {
	defer c.Close()
	out := New(c.Cols()...)
	for {
		chunk, err := c.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, chunk.Rows...)
	}
}
