// Package faults injects transport faults into wire connections. The
// mediator of the paper integrates autonomous sources it does not control;
// the only way to test that setting honestly is to make the transport
// misbehave on purpose. An Injector wraps a net.Listener (server side) or a
// net.Conn (client side) and — deterministically under a seed — drops,
// delays, truncates or garbles response frames, or kills connections
// outright. The wire client's retry layer and the mediator's per-source
// breakers are exercised against exactly these faults, both in the test
// matrix (internal/mediator, internal/wire) and interactively via
// `yat-mediator -inject`.
//
// The injector understands the wire framing convention (a 4-byte length
// header followed by the payload, each written/read with its own calls), so
// faults land on whole response frames: a Garble corrupts the payload but
// never the header, a Truncate delivers the header and half the payload,
// and a Drop suppresses the entire response.
package faults

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// None delivers the exchange untouched.
	None Kind = iota
	// Drop closes the connection instead of delivering the response; the
	// peer observes a bare EOF mid-request (a retryable transport error).
	Drop
	// Delay stalls the response by Config.Delay before delivering it
	// intact; combined with a short client deadline it simulates a stalled
	// wrapper.
	Delay
	// Truncate delivers the frame header and half the payload, then closes
	// the connection: the peer's framed read fails with an unexpected EOF.
	Truncate
	// Garble flips payload bytes while keeping the frame length intact: the
	// frame arrives whole but its XML no longer parses.
	Garble
	// Kill closes the connection without delivering anything, like Drop;
	// it exists as a distinct kind so Config.KillNth can target exactly the
	// Nth exchange (e.g. a batched push mid-flight) deterministically.
	Kill
)

// String names a fault kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Truncate:
		return "truncate"
	case Garble:
		return "garble"
	case Kill:
		return "kill"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ErrInjected is the sentinel wrapped by every error the injector
// manufactures, so tests can tell an injected failure from a real one.
var ErrInjected = errors.New("faults: injected fault")

// Config parameterizes an Injector.
type Config struct {
	// Seed makes the fault sequence reproducible: two injectors with the
	// same Config emit the same decision sequence.
	Seed int64
	// Rate is the per-exchange probability of injecting a fault.
	Rate float64
	// Kinds are the faults drawn when the Rate fires; empty means every
	// kind except None and Kill (Kill is reserved for KillNth).
	Kinds []Kind
	// Delay is the stall applied by Delay faults (default 50ms).
	Delay time.Duration
	// After suppresses Rate-drawn faults for the first After exchanges, so
	// setup traffic (dial-time hello, interface and structure imports)
	// completes cleanly and faults land on query traffic only. KillNth is
	// unaffected: it targets an absolute exchange index.
	After int
	// Max caps the total number of Rate-drawn faults (0 = unlimited); with
	// Rate 1 and Max 1 the injector faults exactly one exchange, the
	// deterministic "fail once, recover on retry" scenario.
	Max int
	// KillNth, when positive, kills the connection serving the Nth
	// exchange seen by this injector (1-based), independent of Rate —
	// the deterministic "die mid-batch on request N" scenario.
	KillNth int
}

// Injector decides, per request/response exchange, whether and how to
// misbehave. One injector may wrap any number of listeners and connections;
// decisions are drawn from a single seeded stream, so a serial workload
// observes a reproducible fault sequence.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	rng      *rand.Rand
	n        int          // exchanges decided so far
	injected int          // faults injected so far (for Config.Max)
	counts   map[Kind]int // injected faults by kind
}

// New returns an injector over the given configuration.
func New(cfg Config) *Injector {
	if cfg.Delay <= 0 {
		cfg.Delay = 50 * time.Millisecond
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = []Kind{Drop, Delay, Truncate, Garble}
	}
	return &Injector{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		counts: make(map[Kind]int),
	}
}

// decide draws the fault for the next exchange.
func (inj *Injector) decide() Kind {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.n++
	k := None
	switch {
	case inj.cfg.KillNth > 0 && inj.n == inj.cfg.KillNth:
		k = Kill
	case inj.n <= inj.cfg.After:
	case inj.cfg.Max > 0 && inj.injected >= inj.cfg.Max:
	case inj.cfg.Rate > 0 && inj.rng.Float64() < inj.cfg.Rate:
		k = inj.cfg.Kinds[inj.rng.Intn(len(inj.cfg.Kinds))]
	}
	if k != None {
		inj.injected++
		inj.counts[k]++
	}
	return k
}

// Exchanges reports how many exchanges the injector has decided.
func (inj *Injector) Exchanges() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.n
}

// Counts reports how many faults of each kind were injected so far.
func (inj *Injector) Counts() map[Kind]int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[Kind]int, len(inj.counts))
	for k, v := range inj.counts {
		out[k] = v
	}
	return out
}

// Injected reports the total number of injected faults.
func (inj *Injector) Injected() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.injected
}

// Listener wraps a server-side listener: every accepted connection applies
// faults to the response frames it writes.
func (inj *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, inj: inj}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &serverConn{Conn: c, inj: l.inj}, nil
}

// serverConn applies faults to outgoing response frames. The wire server
// alternates ReadFrame (request) / WriteFrame (response) on one goroutine,
// so the first Write after a Read starts a response: that is where the
// fault decision for the exchange is drawn. WriteFrame emits the 4-byte
// header and the payload as separate writes, letting Garble and Truncate
// leave the header intact.
type serverConn struct {
	net.Conn
	inj *Injector

	mu       sync.Mutex
	sawRead  bool
	cur      Kind
	respWrit int // writes within the current response (1st = header)
}

func (c *serverConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.sawRead = true
	c.mu.Unlock()
	return n, err
}

func (c *serverConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.sawRead {
		c.sawRead = false
		c.cur = c.inj.decide()
		c.respWrit = 0
		if c.cur == Delay {
			d := c.inj.cfg.Delay
			c.mu.Unlock()
			time.Sleep(d)
			c.mu.Lock()
		}
	}
	c.respWrit++
	k, nth := c.cur, c.respWrit
	c.mu.Unlock()
	switch k {
	case Drop, Kill:
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection killed (%s)", ErrInjected, k)
	case Truncate:
		if nth == 1 && len(p) == 4 {
			return c.Conn.Write(p) // header passes; the payload is cut
		}
		half := len(p) / 2
		if half > 0 {
			c.Conn.Write(p[:half])
		}
		c.Conn.Close()
		return half, fmt.Errorf("%w: frame truncated", ErrInjected)
	case Garble:
		if nth == 1 && len(p) == 4 {
			return c.Conn.Write(p) // keep framing valid; corrupt content only
		}
		return c.Conn.Write(garbled(p))
	default:
		return c.Conn.Write(p)
	}
}

// WrapConn wraps a client-side connection: faults apply to the response
// frames it reads. The wire client writes a request and then reads the
// 4-byte header and payload with separate calls, so the first Read after a
// Write draws the exchange's fault decision, and payload reads (every read
// after the header) carry the corruption.
func (inj *Injector) WrapConn(c net.Conn) net.Conn {
	return &clientConn{Conn: c, inj: inj}
}

type clientConn struct {
	net.Conn
	inj *Injector

	mu       sync.Mutex
	sawWrite bool
	cur      Kind
	reads    int // reads within the current response (1st = header)
}

func (c *clientConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.sawWrite = true
	c.mu.Unlock()
	return c.Conn.Write(p)
}

func (c *clientConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.sawWrite {
		c.sawWrite = false
		c.cur = c.inj.decide()
		c.reads = 0
		if c.cur == Delay {
			d := c.inj.cfg.Delay
			c.mu.Unlock()
			time.Sleep(d)
			c.mu.Lock()
		}
	}
	c.reads++
	k, nth := c.cur, c.reads
	c.mu.Unlock()
	switch k {
	case Drop, Kill:
		// Surface what a killed peer really looks like to the reader — a
		// bare EOF — so the client's error taxonomy classifies the injected
		// fault exactly like the genuine article.
		c.Conn.Close()
		return 0, io.EOF
	case Truncate:
		n, err := c.Conn.Read(p)
		if nth == 1 || err != nil {
			return n, err // header passes intact
		}
		c.Conn.Close()
		return n / 2, nil // deliver half; the next read hits the closed conn
	case Garble:
		n, err := c.Conn.Read(p)
		if nth > 1 && n > 0 {
			copy(p[:n], garbled(p[:n]))
		}
		return n, err
	default:
		return c.Conn.Read(p)
	}
}

// garbled returns a copy of p with bytes flipped so that XML content no
// longer parses; the length (and hence the framing) is preserved.
func garbled(p []byte) []byte {
	q := make([]byte, len(p))
	copy(q, p)
	for i := range q {
		if i%3 == 0 {
			q[i] ^= 0xa5
		}
	}
	return q
}
