package faults

import (
	"bytes"
	"testing"
	"time"
)

func drain(inj *Injector, n int) []Kind {
	out := make([]Kind, n)
	for i := range out {
		out[i] = inj.decide()
	}
	return out
}

func TestDecideDeterministicUnderSeed(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 0.5}
	a := drain(New(cfg), 200)
	b := drain(New(cfg), 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	faults := 0
	for _, k := range a {
		if k != None {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("rate 0.5 injected %d/200 faults", faults)
	}
}

func TestAfterSuppressesEarlyFaults(t *testing.T) {
	inj := New(Config{Seed: 1, Rate: 1, After: 3})
	seq := drain(inj, 5)
	for i := 0; i < 3; i++ {
		if seq[i] != None {
			t.Errorf("exchange %d faulted during After window: %v", i+1, seq[i])
		}
	}
	if seq[3] == None || seq[4] == None {
		t.Errorf("exchanges past After must fault at rate 1: %v", seq)
	}
}

func TestMaxCapsInjectedFaults(t *testing.T) {
	inj := New(Config{Seed: 1, Rate: 1, Max: 2})
	drain(inj, 10)
	if got := inj.Injected(); got != 2 {
		t.Errorf("Injected() = %d, want 2", got)
	}
}

func TestKillNthTargetsExactExchange(t *testing.T) {
	inj := New(Config{Seed: 1, KillNth: 4})
	seq := drain(inj, 6)
	for i, k := range seq {
		want := None
		if i == 3 {
			want = Kill
		}
		if k != want {
			t.Errorf("exchange %d = %v, want %v", i+1, k, want)
		}
	}
	if inj.Counts()[Kill] != 1 {
		t.Errorf("Counts()[Kill] = %d, want 1", inj.Counts()[Kill])
	}
}

func TestGarbledPreservesLength(t *testing.T) {
	p := []byte(`<tab cols="name"><row><cell>Nympheas</cell></row></tab>`)
	q := garbled(p)
	if len(q) != len(p) {
		t.Fatalf("garbled length %d != %d", len(q), len(p))
	}
	if bytes.Equal(q, p) {
		t.Fatal("garbled payload identical to original")
	}
}

func TestDefaults(t *testing.T) {
	inj := New(Config{Seed: 1, Rate: 1})
	if inj.cfg.Delay != 50*time.Millisecond {
		t.Errorf("default delay = %v", inj.cfg.Delay)
	}
	for _, k := range inj.cfg.Kinds {
		if k == Kill || k == None {
			t.Errorf("default kinds include %v", k)
		}
	}
	if inj.Exchanges() != 0 {
		t.Errorf("fresh injector Exchanges() = %d", inj.Exchanges())
	}
}
