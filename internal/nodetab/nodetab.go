// Package nodetab implements the pre/post-order node-numbering tables that
// let XPath axes compile to algebraic predicates instead of mediator-side
// tree walks. For every document <d> a source exports, it can additionally
// export a synthetic document <d>.nodes holding one row per node of <d>:
//
//	node[ pre: Int, post: Int, parent: Int, name: String, pos: Int,
//	      value: <atom>?, tree[ <subtree> ] ]
//
// pre/post are global DFS entry/exit ranks, parent is the parent's pre rank
// (-1 at roots), name is the node label, pos the 1-based index among
// same-label siblings, value the atomic content of leaves, and tree wraps
// the original subtree (shared, not copied). With this encoding the XPath
// axes become ordinary comparisons the three-round optimizer can push:
//
//	child      s/t:   t.parent = s.pre
//	parent     s/t:   t.pre    = s.parent
//	descendant s//t:  s.pre < t.pre  AND  t.post < s.post
//	ancestor   t//s:  t.pre < s.pre  AND  s.post < t.post
//
// (the interval containment of the pre/post plane; see DESIGN.md §12).
// The package also centralizes the capability fragments both wrappers
// export for their node tables (filter pattern, structural schema, scoped
// operations) and a small evaluator wrappers use to answer pushed plans
// over node tables.
package nodetab

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
	"repro/internal/pattern"
	"repro/internal/tab"
)

// Suffix distinguishes node-table documents from the documents they number.
const Suffix = ".nodes"

// Doc returns the node-table document name for a base document.
func Doc(base string) string { return base + Suffix }

// IsNodes reports whether name denotes a node-table document.
func IsNodes(name string) bool { return strings.HasSuffix(name, Suffix) }

// Base returns the numbered document's name ("works.nodes" -> "works").
func Base(name string) string { return strings.TrimSuffix(name, Suffix) }

// FieldOrder is the canonical child order of a node row. Filters compiled
// against node tables must list their items in this order (the capability
// checker matches filter items against the Fnodes pattern as an in-order
// subsequence).
var FieldOrder = []string{"pre", "post", "parent", "name", "pos", "value", "tree"}

// Build numbers a forest: one node[...] tree per node of the input, in
// document order, with global pre/post ranks across the whole forest. The
// tree child shares the original subtree pointers; callers must treat built
// tables as read-only, like any fetched document.
func Build(forest data.Forest) data.Forest {
	var out data.Forest
	pre, post := 0, 0
	var walk func(n *data.Node, parent int, pos int)
	walk = func(n *data.Node, parent int, pos int) {
		myPre := pre
		pre++
		row := data.Elem("node",
			data.IntLeaf("pre", int64(myPre)),
			// post is patched after the children are numbered.
			data.IntLeaf("post", 0),
			data.IntLeaf("parent", int64(parent)),
			data.Text("name", n.Label),
			data.IntLeaf("pos", int64(pos)),
		)
		if n.Atom != nil {
			row.Add(data.Leaf("value", *n.Atom))
		}
		row.Add(data.Elem("tree", n))
		out = append(out, row)
		counts := map[string]int{}
		for _, k := range n.Kids {
			counts[k.Label]++
			walk(k, myPre, counts[k.Label])
		}
		row.Child("post").Atom.I = int64(post)
		post++
	}
	counts := map[string]int{}
	for _, n := range forest {
		counts[n.Label]++
		walk(n, -1, counts[n.Label])
	}
	return out
}

// FT returns the Fnodes capability pattern: any subset of the canonical
// fields may be constrained or content-bound, and tree binds the original
// subtree. Every field position is atomic except tree, so filters cannot
// navigate below the row fields — navigation happens via joins on the
// numbering, which is the point of the encoding.
func FT() *capability.FT {
	atom := func(label string, leaf *capability.FT) capability.FTItem {
		return capability.FTItem{F: &capability.FT{
			Kind: pattern.KNode, Label: label, Bind: capability.BindNone,
			Items: []capability.FTItem{{F: leaf}},
		}}
	}
	intLeaf := func() *capability.FT { return &capability.FT{Kind: pattern.KInt} }
	anyAtom := &capability.FT{Kind: pattern.KUnion, Alts: []*capability.FT{
		{Kind: pattern.KInt}, {Kind: pattern.KFloat},
		{Kind: pattern.KBool}, {Kind: pattern.KString},
	}}
	return &capability.FT{
		Kind: pattern.KNode, Label: "node", Bind: capability.BindTree,
		Items: []capability.FTItem{
			atom("pre", intLeaf()),
			atom("post", intLeaf()),
			atom("parent", intLeaf()),
			atom("name", &capability.FT{Kind: pattern.KString}),
			atom("pos", intLeaf()),
			atom("value", anyAtom),
			{F: &capability.FT{
				Kind: pattern.KNode, Label: "tree", Bind: capability.BindNone,
				Items: []capability.FTItem{{F: &capability.FT{Kind: pattern.KAny}}},
			}},
		},
	}
}

// FPatternName is the name node-table bind capabilities refer to.
const FPatternName = "Fnodes"

// StructureModel returns the structural schema of a node table, for plan
// typing and planlint label checking.
func StructureModel() *pattern.Model {
	m := pattern.NewModel("Nodes_Structure")
	row := pattern.Node("node",
		pattern.Node("pre", pattern.Int()),
		pattern.Node("post", pattern.Int()),
		pattern.Node("parent", pattern.Int()),
		pattern.Node("name", pattern.Str()),
		pattern.Node("pos", pattern.Int()),
	)
	row.Items = append(row.Items,
		pattern.Starred(pattern.Node("value",
			pattern.Union(pattern.Int(), pattern.Float(), pattern.Bool(), pattern.Str()))),
		pattern.Item{P: pattern.Node("tree", pattern.Any())},
	)
	m.Define("Nodes", row)
	return m
}

// StructurePatternName is the pattern name within StructureModel.
const StructurePatternName = "Nodes"

// Operations returns the capability entries a source should declare for its
// node-table documents, scoped to exactly those documents: the comparison
// predicates axis joins compile to, plus select/project/join so the
// optimizer may push them. Scoping matters — a source whose extents support
// join must not thereby claim it can join an extent against a node table.
func Operations(nodesDocs []string) []capability.Operation {
	docs := append([]string(nil), nodesDocs...)
	names := []struct{ name, kind string }{
		{"select", "algebra"}, {"project", "algebra"}, {"join", "algebra"},
		{"eq", "boolean"}, {"neq", "boolean"},
		{"lt", "boolean"}, {"leq", "boolean"},
		{"gt", "boolean"}, {"geq", "boolean"},
	}
	out := make([]capability.Operation, 0, len(names))
	for _, n := range names {
		out = append(out, capability.Operation{Name: n.name, Kind: n.kind, Docs: docs})
	}
	return out
}

// Export adds node-table documents for every base document of iface: a bind
// capability over the Fnodes pattern (defined into the interface's first
// fmodel), the structural schema, and the scoped operations. It returns the
// node-table document names.
func Export(iface *capability.Interface, baseDocs []string) []string {
	var nodesDocs []string
	for _, b := range baseDocs {
		nodesDocs = append(nodesDocs, Doc(b))
	}
	if len(iface.FModels) == 0 {
		iface.FModels = append(iface.FModels, capability.NewFModel(iface.Name+"-fmodel"))
	}
	fm := iface.FModels[0]
	fm.Define(FPatternName, FT())
	sm := StructureModel()
	for _, nd := range nodesDocs {
		iface.Binds[nd] = capability.BindCap{FModel: fm.Name, FPattern: FPatternName}
		iface.Structures[nd] = capability.StructureRef{Model: sm, Pattern: StructurePatternName}
	}
	iface.Operations = append(iface.Operations, Operations(nodesDocs)...)
	return nodesDocs
}

// ---------------------------------------------------------------------------
// Pushed-plan evaluation
// ---------------------------------------------------------------------------

// Eval answers a pushed plan over node-table documents: Bind/Select/Project/
// Join shapes only, comparison predicates only — exactly the operations
// Operations declares. table resolves a base document to its already-built
// node table (typically Cache.Get over the wrapper's ordinary fetch path).
func Eval(plan algebra.Op, params map[string]tab.Cell, table func(base string) (data.Forest, error)) (*tab.Tab, error) {
	docs := map[string]bool{}
	if err := validate(plan, docs); err != nil {
		return nil, err
	}
	ctx := algebra.NewContext()
	ctx.Params = params
	for nd := range docs {
		built, err := table(Base(nd))
		if err != nil {
			return nil, fmt.Errorf("nodetab: building table for %s: %w", Base(nd), err)
		}
		ctx.Catalog[nd] = built
	}
	return algebra.Run(plan, ctx)
}

// validate walks a pushed plan, collecting the node-table documents it binds
// and rejecting shapes outside the declared capability.
func validate(op algebra.Op, docs map[string]bool) error {
	// yat-lint:ignore intentionally partial: the default rejects everything outside the declared pushable shapes
	switch x := op.(type) {
	case *algebra.Bind:
		if x.From != nil {
			return fmt.Errorf("nodetab: dependent binds cannot be pushed")
		}
		if !IsNodes(x.Doc) {
			return fmt.Errorf("nodetab: bind over %q is not a node table", x.Doc)
		}
		docs[x.Doc] = true
		return nil
	case *algebra.Select:
		if err := validPred(x.Pred); err != nil {
			return err
		}
		return validate(x.From, docs)
	case *algebra.Project:
		return validate(x.From, docs)
	case *algebra.Join:
		if err := validPred(x.Pred); err != nil {
			return err
		}
		if err := validate(x.L, docs); err != nil {
			return err
		}
		return validate(x.R, docs)
	default:
		return fmt.Errorf("nodetab: operator %T cannot be pushed", op)
	}
}

// validPred accepts boolean combinations of comparisons over variables and
// constants — no function calls, which node tables do not declare.
func validPred(e algebra.Expr) error {
	switch x := e.(type) {
	case algebra.Cmp:
		return nil
	case algebra.And:
		if err := validPred(x.L); err != nil {
			return err
		}
		return validPred(x.R)
	case algebra.Or:
		if err := validPred(x.L); err != nil {
			return err
		}
		return validPred(x.R)
	case algebra.Not:
		return validPred(x.E)
	default:
		return fmt.Errorf("nodetab: predicate %T cannot be pushed", e)
	}
}

// TouchesPlan reports whether any Bind in the plan targets a node table;
// wrappers use it to route pushes to Eval.
func TouchesPlan(plan algebra.Op) bool {
	found := false
	algebra.Walk(plan, func(op algebra.Op) bool {
		if b, ok := op.(*algebra.Bind); ok && IsNodes(b.Doc) {
			found = true
		}
		return !found
	})
	return found
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

// Cache memoizes built node tables per base document so repeated pushes
// (batched DJoin chunks, retries) do not renumber the document every time.
// Invalidate must be called if the underlying document changes.
type Cache struct {
	mu sync.Mutex
	m  map[string]data.Forest
}

// Get returns the cached table for base, building it via fetch on a miss.
func (c *Cache) Get(base string, fetch func(string) (data.Forest, error)) (data.Forest, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.m[base]; ok {
		return f, nil
	}
	forest, err := fetch(base)
	if err != nil {
		return nil, err
	}
	built := Build(forest)
	if c.m == nil {
		c.m = map[string]data.Forest{}
	}
	c.m[base] = built
	return built, nil
}

// Invalidate drops the cached table for base (all tables when base is "").
func (c *Cache) Invalidate(base string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if base == "" {
		c.m = nil
		return
	}
	delete(c.m, base)
}

// FieldIndex returns the canonical position of a field label, or -1.
func FieldIndex(label string) int {
	for i, f := range FieldOrder {
		if f == label {
			return i
		}
	}
	return -1
}
