package nodetab

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
	"repro/internal/filter"
)

// fixture builds a small two-document forest:
//
//	work[ title:"A", more[ cplace:"X" ] ]
//	work[ title:"B" ]
func fixture() data.Forest {
	return data.Forest{
		data.Elem("work",
			data.Text("title", "A"),
			data.Elem("more", data.Text("cplace", "X")),
		),
		data.Elem("work", data.Text("title", "B")),
	}
}

func rowField(row *data.Node, f string) data.Atom {
	c := row.Child(f)
	if c == nil || c.Atom == nil {
		return data.Atom{}
	}
	return *c.Atom
}

func TestBuildNumbering(t *testing.T) {
	table := Build(fixture())
	if len(table) != 6 {
		t.Fatalf("expected 6 node rows, got %d", len(table))
	}
	// Rows are emitted in pre-order: pre ranks are 0..n-1 in sequence.
	byPre := map[int64]*data.Node{}
	for i, row := range table {
		pre := rowField(row, "pre").I
		if pre != int64(i) {
			t.Fatalf("row %d has pre %d; want pre-order emission", i, pre)
		}
		byPre[pre] = row
	}
	// Structural spot checks.
	root0 := byPre[0]
	if rowField(root0, "name").S != "work" || rowField(root0, "parent").I != -1 {
		t.Fatalf("root row mangled: %s", root0)
	}
	if rowField(root0, "pos").I != 1 {
		t.Fatalf("first work should have pos 1")
	}
	// Second work root: pre 4 (work, title, more, cplace precede it).
	root1 := byPre[4]
	if rowField(root1, "name").S != "work" || rowField(root1, "pos").I != 2 {
		t.Fatalf("second work row mangled: %s", root1)
	}
	// cplace is a leaf with a value and parent = more's pre.
	cplace := byPre[3]
	if rowField(cplace, "name").S != "cplace" || rowField(cplace, "value").S != "X" {
		t.Fatalf("cplace row mangled: %s", cplace)
	}
	if rowField(cplace, "parent").I != 2 {
		t.Fatalf("cplace parent should be more's pre (2), got %d", rowField(cplace, "parent").I)
	}
	// Descendant containment: cplace is a descendant of work#1.
	if !(rowField(root0, "pre").I < rowField(cplace, "pre").I &&
		rowField(cplace, "post").I < rowField(root0, "post").I) {
		t.Fatalf("pre/post containment violated: work=%s cplace=%s", root0, cplace)
	}
	// Non-descendant: work#2 is outside work#1's interval.
	if rowField(root1, "post").I < rowField(root0, "post").I {
		t.Fatalf("sibling roots must not nest")
	}
	// The tree child shares the original subtree.
	tree := root0.Child("tree")
	if tree == nil || len(tree.Kids) != 1 || tree.Kids[0].Child("title") == nil {
		t.Fatalf("tree child should wrap the original subtree")
	}
}

func TestFnodesAcceptsCompiledFilters(t *testing.T) {
	iface := capability.NewInterface("src")
	Export(iface, []string{"works"})
	cases := []string{
		`node[ name: "title", tree: $t ]`,
		`node[ parent: -1, name: "work", tree: $w ]`,
		`node[ pre: $p, post: $q, parent: $r, name: $n, pos: $k, value: $v, tree: $t ]`,
		`node[ name: "work", pos: 2, tree: $w ]`,
	}
	for _, src := range cases {
		f, err := filter.Parse(src)
		if err != nil {
			t.Fatalf("parse %s: %v", src, err)
		}
		if err := iface.AcceptsFilter("works.nodes", f); err != nil {
			t.Fatalf("Fnodes rejected %s: %v", src, err)
		}
	}
	// Navigation below tree is not pushable (fields are atomic; tree is a
	// single opaque Any position, its one item slot consumed by the subtree).
	bad, err := filter.Parse(`node[ name: $n, value[ a: $x, b: $y ] ]`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := iface.AcceptsFilter("works.nodes", bad); err == nil {
		t.Fatalf("navigation below an atomic field should be rejected")
	}
	// Scoped operations: join is declared for the node table only.
	if !iface.CoversOperation("join", []string{"works.nodes"}) {
		t.Fatalf("join should cover the node table")
	}
	if iface.CoversOperation("join", []string{"works"}) {
		t.Fatalf("join must not leak to the base document")
	}
}

func TestEvalDescendantRangeJoin(t *testing.T) {
	// doc("works")//title as the wrapper would receive it: two binds over the
	// node table joined on interval containment.
	workF, err := filter.Parse(`node[ parent: -1, name: "work", pre: $wp, post: $wq ]`)
	if err != nil {
		t.Fatal(err)
	}
	titleF, err := filter.Parse(`node[ name: "title", pre: $tp, post: $tq, tree: $t ]`)
	if err != nil {
		t.Fatal(err)
	}
	plan := &algebra.Join{
		L: &algebra.Bind{Doc: "works.nodes", F: workF},
		R: &algebra.Bind{Doc: "works.nodes", F: titleF},
		Pred: algebra.And{
			L: algebra.Cmp{Op: algebra.OpLt, L: algebra.Var{Name: "$wp"}, R: algebra.Var{Name: "$tp"}},
			R: algebra.Cmp{Op: algebra.OpLt, L: algebra.Var{Name: "$tq"}, R: algebra.Var{Name: "$wq"}},
		},
	}
	calls := 0
	table := func(base string) (data.Forest, error) {
		if base != "works" {
			return nil, fmt.Errorf("unexpected base %q", base)
		}
		calls++
		return Build(fixture()), nil
	}
	out, err := Eval(plan, nil, table)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if calls != 1 {
		t.Fatalf("table built %d times; want 1", calls)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("expected 2 title matches, got %d:\n%s", len(out.Rows), out)
	}
	ti := -1
	for i, c := range out.Cols {
		if c == "$t" {
			ti = i
		}
	}
	if ti < 0 {
		t.Fatalf("no $t column in %v", out.Cols)
	}
	got := map[string]bool{}
	for _, r := range out.Rows {
		for _, n := range r[ti].AsForest() {
			got[n.TextContent()] = true
		}
	}
	if !got["A"] || !got["B"] {
		t.Fatalf("expected titles A and B, got %v", got)
	}
}

func TestEvalRejectsForeignShapes(t *testing.T) {
	f, err := filter.Parse(`node[ name: $n ]`)
	if err != nil {
		t.Fatal(err)
	}
	table := func(string) (data.Forest, error) { return nil, nil }
	// Bind over a non-node document.
	_, err = Eval(&algebra.Bind{Doc: "works", F: f}, nil, table)
	if err == nil {
		t.Fatalf("bind over base document should be rejected")
	}
	// Function calls in predicates.
	_, err = Eval(&algebra.Select{
		From: &algebra.Bind{Doc: "works.nodes", F: f},
		Pred: algebra.Call{Name: "contains", Args: []algebra.Expr{algebra.Var{Name: "$n"}}},
	}, nil, table)
	if err == nil {
		t.Fatalf("call predicates should be rejected")
	}
	// Unsupported operators.
	_, err = Eval(&algebra.Distinct{From: &algebra.Bind{Doc: "works.nodes", F: f}}, nil, table)
	if err == nil {
		t.Fatalf("distinct should be rejected")
	}
}

func TestCache(t *testing.T) {
	var c Cache
	calls := 0
	fetch := func(string) (data.Forest, error) {
		calls++
		return fixture(), nil
	}
	a, err := c.Get("works", fetch)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get("works", fetch)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("fetch called %d times; want 1", calls)
	}
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("cached tables wrong size")
	}
	c.Invalidate("works")
	if _, err := c.Get("works", fetch); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("invalidate should force a rebuild")
	}
}
