package data

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleWork() *Node {
	return Elem("work",
		Text("artist", "Claude Monet"),
		Text("title", "Nympheas"),
		Text("style", "Impressionist"),
		Text("size", "21 x 61"),
		Text("cplace", "Giverny"),
	)
}

func TestAtomText(t *testing.T) {
	cases := []struct {
		a    Atom
		want string
	}{
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Float(1.5), "1.5"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{String("Giverny"), "Giverny"},
	}
	for _, c := range cases {
		if got := c.a.Text(); got != c.want {
			t.Errorf("Text(%v) = %q, want %q", c.a, got, c.want)
		}
	}
}

func TestAtomEqualNumericCoercion(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	if Int(3).Equal(String("3")) {
		t.Error("Int(3) should not equal String(\"3\")")
	}
	if !String("a").Equal(String("a")) {
		t.Error("identical strings must be equal")
	}
}

func TestAtomCompare(t *testing.T) {
	if Int(1).Compare(Float(2)) != -1 {
		t.Error("1 < 2.0 expected")
	}
	if Float(2).Compare(Int(1)) != 1 {
		t.Error("2.0 > 1 expected")
	}
	if String("a").Compare(String("b")) != -1 {
		t.Error("a < b expected")
	}
	if Bool(false).Compare(Bool(true)) != -1 {
		t.Error("false < true expected")
	}
	if Bool(true).Compare(Bool(true)) != 0 {
		t.Error("true == true expected")
	}
	// Cross-kind ordering is stable and antisymmetric.
	if Bool(true).Compare(String("x")) == String("x").Compare(Bool(true)) {
		t.Error("cross-kind comparison must be antisymmetric")
	}
}

func TestNodeConstructionAndAccess(t *testing.T) {
	w := sampleWork()
	if w.Label != "work" || len(w.Kids) != 5 {
		t.Fatalf("unexpected shape: %v", w)
	}
	if got := w.Child("title").TextContent(); got != "Nympheas" {
		t.Errorf("title = %q", got)
	}
	if w.Child("missing") != nil {
		t.Error("missing child should be nil")
	}
	if got := w.Path("title"); got == nil || got.Atom.S != "Nympheas" {
		t.Errorf("Path(title) = %v", got)
	}
	if w.Path("title", "nothing") != nil {
		t.Error("Path through a leaf should be nil")
	}
}

func TestChildren(t *testing.T) {
	n := Elem("works", sampleWork(), sampleWork(), Text("other", "x"))
	if got := len(n.Children("work")); got != 2 {
		t.Errorf("Children(work) = %d, want 2", got)
	}
	if got := len(n.Children("absent")); got != 0 {
		t.Errorf("Children(absent) = %d, want 0", got)
	}
}

func TestAtomValue(t *testing.T) {
	leaf := Text("title", "Nympheas")
	if a, ok := leaf.AtomValue(); !ok || a.S != "Nympheas" {
		t.Errorf("AtomValue(leaf) = %v %v", a, ok)
	}
	wrapped := Elem("title", &Node{Atom: &Atom{Kind: KindString, S: "X"}})
	if a, ok := wrapped.AtomValue(); !ok || a.S != "X" {
		t.Errorf("AtomValue(wrapped) = %v %v", a, ok)
	}
	if _, ok := sampleWork().AtomValue(); ok {
		t.Error("interior node should have no atom value")
	}
}

func TestTextContent(t *testing.T) {
	n := Elem("history",
		Text("", "Painted with"),
		Text("technique", "Oil on canvas"),
		Text("", "in ..."),
	)
	want := "Painted with Oil on canvas in ..."
	if got := n.TextContent(); got != want {
		t.Errorf("TextContent = %q, want %q", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	w := sampleWork().WithID("w1")
	c := w.Clone()
	if !Equal(w, c) {
		t.Fatal("clone must be Equal to original")
	}
	c.Kids[0].Atom.S = "mutated"
	if Equal(w, c) {
		t.Error("mutating the clone must not affect the original")
	}
	if w.Kids[0].Atom.S != "Claude Monet" {
		t.Error("original mutated through clone")
	}
}

func TestEqualVsEqualValue(t *testing.T) {
	a := sampleWork().WithID("a1")
	b := sampleWork().WithID("a2")
	if Equal(a, b) {
		t.Error("different IDs must break Equal")
	}
	if !EqualValue(a, b) {
		t.Error("EqualValue must ignore IDs")
	}
	c := sampleWork()
	c.Kids[1].Atom.S = "Waterloo Bridge"
	if EqualValue(a, c) {
		t.Error("different titles must break EqualValue")
	}
}

func TestEqualNilAndRef(t *testing.T) {
	if !Equal(nil, nil) {
		t.Error("nil == nil")
	}
	if Equal(nil, Elem("x")) || Equal(Elem("x"), nil) {
		t.Error("nil != non-nil")
	}
	r1, r2 := RefNode("owner", "p1"), RefNode("owner", "p2")
	if Equal(r1, r2) {
		t.Error("refs to different ids differ")
	}
	if !Equal(r1, RefNode("owner", "p1")) {
		t.Error("identical refs are equal")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	nodes := []*Node{
		nil,
		Text("a", "x"),
		Text("a", "y"),
		Text("b", "x"),
		Elem("a", Text("k", "v")),
		Elem("a", Text("k", "v"), Text("k2", "v")),
		RefNode("a", "p1"),
	}
	for i, a := range nodes {
		for j, b := range nodes {
			cab, cba := Compare(a, b), Compare(b, a)
			if cab != -cba {
				t.Errorf("Compare not antisymmetric for %d,%d: %d vs %d", i, j, cab, cba)
			}
			if i == j && cab != 0 {
				t.Errorf("Compare(x,x) != 0 for %d", i)
			}
		}
	}
}

func TestHashConsistentWithEqualValue(t *testing.T) {
	a := sampleWork().WithID("a1")
	b := sampleWork().WithID("zzz")
	if Hash(a) != Hash(b) {
		t.Error("Hash must ignore IDs (consistent with EqualValue)")
	}
	c := sampleWork()
	c.Kids[0].Atom.S = "Degas"
	if Hash(a) == Hash(c) {
		t.Error("different content should hash differently (with high probability)")
	}
}

func TestHashDistinguishesStructure(t *testing.T) {
	// label nesting vs flat must differ
	a := Elem("a", Elem("b", Text("c", "x")))
	b := Elem("a", Elem("b"), Text("c", "x"))
	if Hash(a) == Hash(b) {
		t.Error("nesting should affect hash")
	}
}

func TestSizeDepth(t *testing.T) {
	w := sampleWork()
	if w.Size() != 6 {
		t.Errorf("Size = %d, want 6", w.Size())
	}
	if w.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", w.Depth())
	}
	var nilNode *Node
	if nilNode.Size() != 0 || nilNode.Depth() != 0 {
		t.Error("nil node has size/depth 0")
	}
}

func TestWalkOrderAndPruning(t *testing.T) {
	w := sampleWork()
	var labels []string
	w.Walk(func(n *Node) bool {
		labels = append(labels, n.Label)
		return true
	})
	want := "work artist title style size cplace"
	if got := strings.Join(labels, " "); got != want {
		t.Errorf("walk order = %q, want %q", got, want)
	}
	count := 0
	w.Walk(func(n *Node) bool {
		count++
		return false // prune at root
	})
	if count != 1 {
		t.Errorf("pruned walk visited %d nodes, want 1", count)
	}
}

func TestSortKids(t *testing.T) {
	n := Elem("set", Text("x", "c"), Text("x", "a"), Text("x", "b"))
	n.SortKids()
	got := n.Kids[0].Atom.S + n.Kids[1].Atom.S + n.Kids[2].Atom.S
	if got != "abc" {
		t.Errorf("SortKids produced %q", got)
	}
}

func TestStringRendering(t *testing.T) {
	n := Elem("object",
		Text("name", "Doctor X"),
		IntLeaf("auction", 1500000),
		RefNode("owner", "p1"),
	).WithID("p3")
	s := n.String()
	for _, frag := range []string{"p3=object", `name:"Doctor X"`, "auction:1500000", "owner:&p1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	var nilNode *Node
	if nilNode.String() != "nil" {
		t.Error("nil String")
	}
}

func TestIndentRendering(t *testing.T) {
	s := sampleWork().Indent()
	if !strings.Contains(s, "work\n  artist: Claude Monet\n") {
		t.Errorf("Indent = %q", s)
	}
}

func TestForest(t *testing.T) {
	f := Forest{Text("a", "1"), Text("b", "2")}
	g := f.Clone()
	if !f.Equal(g) {
		t.Error("cloned forest equal")
	}
	g[0].Atom.S = "mut"
	if f.Equal(g) {
		t.Error("mutation must break equality")
	}
	if f.Equal(f[:1]) {
		t.Error("different lengths differ")
	}
	if s := f.String(); !strings.Contains(s, `a:"1"`) {
		t.Errorf("forest String = %q", s)
	}
}

func TestStoreRegisterLookupDeref(t *testing.T) {
	st := NewStore()
	p1 := Elem("person", Text("name", "Doctor X")).WithID("p1")
	root := Elem("db", p1, Elem("artifact", RefNode("owner", "p1")).WithID("a1"))
	st.Register(root)
	if st.Len() != 2 {
		t.Errorf("store Len = %d, want 2", st.Len())
	}
	if st.Lookup("p1") != p1 {
		t.Error("lookup p1 failed")
	}
	ref := root.Kids[1].Kids[0]
	if got := st.Deref(ref); got != p1 {
		t.Errorf("Deref = %v", got)
	}
	if st.Deref(p1) != p1 {
		t.Error("Deref of non-ref is identity")
	}
	if st.Deref(RefNode("x", "nope")) != nil {
		t.Error("dangling ref derefs to nil")
	}
}

// genTree builds a pseudo-random tree from a seed; used in property tests.
func genTree(seed int64, depth int) *Node {
	labels := []string{"work", "title", "artist", "style", "owners", "person"}
	s := seed
	next := func(n int64) int64 {
		s = s*6364136223846793005 + 1442695040888963407
		v := (s >> 33) % n
		if v < 0 {
			v = -v
		}
		return v
	}
	var build func(d int) *Node
	build = func(d int) *Node {
		l := labels[next(int64(len(labels)))]
		if d <= 0 || next(3) == 0 {
			switch next(3) {
			case 0:
				return IntLeaf(l, next(1000))
			case 1:
				return Text(l, labels[next(int64(len(labels)))])
			default:
				return FloatLeaf(l, float64(next(100))/4)
			}
		}
		n := Elem(l)
		k := int(next(4))
		for i := 0; i < k; i++ {
			n.Add(build(d - 1))
		}
		return n
	}
	return build(depth)
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		n := genTree(seed, 4)
		c := n.Clone()
		return Equal(n, c) && EqualValue(n, c) && Hash(n) == Hash(c) && Compare(n, c) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCompareConsistentWithEqual(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := genTree(s1, 3), genTree(s2, 3)
		if Compare(a, b) == 0 {
			// Compare==0 implies EqualValue (ids absent in generated trees)
			return EqualValue(a, b)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyHashRespectsEqualValue(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := genTree(s1, 3), genTree(s2, 3)
		if EqualValue(a, b) {
			return Hash(a) == Hash(b)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
