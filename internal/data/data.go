// Package data implements the YAT data model: ordered, labeled trees that
// can represent any mix of well-formed and valid XML data, as described in
// Section 2 of "On Wrapping Query Languages and Efficient XML Integration"
// (SIGMOD 2000) and in the companion paper "Your mediators need data
// conversion!" (SIGMOD 1998).
//
// A tree node carries a label and either an atomic value (leaves), a list of
// ordered children (interior nodes), or a reference to another identified
// tree. Node identifiers are used for O₂ object identity and for identifiers
// minted by Skolem functions during integration.
package data

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// AtomKind enumerates the atomic value types of the YAT model.
type AtomKind int

// Atomic type tags. These mirror the leaf types of the YAT metamodel
// (Figure 3 of the paper): Int, Float, Bool, String. Symbol is the type of
// labels and appears only in patterns, never in data.
const (
	KindInt AtomKind = iota
	KindFloat
	KindBool
	KindString
)

// String returns the YAT spelling of the atomic type.
func (k AtomKind) String() string {
	switch k {
	case KindInt:
		return "Int"
	case KindFloat:
		return "Float"
	case KindBool:
		return "Bool"
	case KindString:
		return "String"
	default:
		return fmt.Sprintf("AtomKind(%d)", int(k))
	}
}

// Atom is an atomic value: one of int64, float64, bool or string.
type Atom struct {
	Kind AtomKind
	I    int64
	F    float64
	B    bool
	S    string
}

// Int returns an integer atom.
func Int(v int64) Atom { return Atom{Kind: KindInt, I: v} }

// Float returns a floating-point atom.
func Float(v float64) Atom { return Atom{Kind: KindFloat, F: v} }

// Bool returns a boolean atom.
func Bool(v bool) Atom { return Atom{Kind: KindBool, B: v} }

// String returns a string atom.
func String(v string) Atom { return Atom{Kind: KindString, S: v} }

// IsNumeric reports whether the atom is an Int or a Float.
func (a Atom) IsNumeric() bool { return a.Kind == KindInt || a.Kind == KindFloat }

// AsFloat returns the numeric value of an Int or Float atom.
func (a Atom) AsFloat() float64 {
	if a.Kind == KindInt {
		return float64(a.I)
	}
	return a.F
}

// Text renders the atom as it would appear as XML character data.
func (a Atom) Text() string {
	switch a.Kind {
	case KindInt:
		return strconv.FormatInt(a.I, 10)
	case KindFloat:
		return strconv.FormatFloat(a.F, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(a.B)
	default:
		return a.S
	}
}

// Equal reports atom equality. Ints and Floats compare numerically so that
// sources with different numeric affinities (O₂ Float prices vs integer
// literals in queries) can be joined.
func (a Atom) Equal(b Atom) bool {
	if a.IsNumeric() && b.IsNumeric() {
		return a.AsFloat() == b.AsFloat()
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindBool:
		return a.B == b.B
	default:
		return a.S == b.S
	}
}

// Compare orders atoms: numerics numerically, strings lexicographically,
// bools false<true; across kinds the order is Kind-based. It returns
// -1, 0 or +1.
func (a Atom) Compare(b Atom) int {
	if a.IsNumeric() && b.IsNumeric() {
		x, y := a.AsFloat(), b.AsFloat()
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	}
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case KindBool:
		switch {
		case a.B == b.B:
			return 0
		case !a.B:
			return -1
		default:
			return 1
		}
	default:
		return strings.Compare(a.S, b.S)
	}
}

// Node is a YAT tree node. Exactly one of the following holds:
//
//   - leaf atom: Atom != nil, no children, no Ref;
//   - reference: Ref != "" (points at the identified tree Ref), no children;
//   - interior node: zero or more ordered children.
//
// A node may additionally carry an identifier (ID), as with O₂ objects
// ("a1", "p3" in Figure 1) or identifiers created by Skolem functions.
type Node struct {
	Label string
	Atom  *Atom
	Ref   string
	ID    string
	Kids  []*Node
}

// Elem constructs an interior node with the given label and children.
func Elem(label string, kids ...*Node) *Node { return &Node{Label: label, Kids: kids} }

// Leaf constructs a leaf node holding an atomic value.
func Leaf(label string, a Atom) *Node { return &Node{Label: label, Atom: &a} }

// Text constructs a leaf node holding a string atom.
func Text(label, s string) *Node { return Leaf(label, String(s)) }

// IntLeaf constructs a leaf node holding an integer atom.
func IntLeaf(label string, v int64) *Node { return Leaf(label, Int(v)) }

// FloatLeaf constructs a leaf node holding a float atom.
func FloatLeaf(label string, v float64) *Node { return Leaf(label, Float(v)) }

// BoolLeaf constructs a leaf node holding a boolean atom.
func BoolLeaf(label string, v bool) *Node { return Leaf(label, Bool(v)) }

// RefNode constructs a reference node pointing at the tree identified by id.
func RefNode(label, id string) *Node { return &Node{Label: label, Ref: id} }

// WithID returns n after setting its identifier; it enables fluent
// construction of identified trees.
func (n *Node) WithID(id string) *Node {
	n.ID = id
	return n
}

// IsLeaf reports whether n is an atomic leaf.
func (n *Node) IsLeaf() bool { return n != nil && n.Atom != nil }

// IsRef reports whether n is a reference node.
func (n *Node) IsRef() bool { return n != nil && n.Ref != "" }

// Add appends children and returns n.
func (n *Node) Add(kids ...*Node) *Node {
	n.Kids = append(n.Kids, kids...)
	return n
}

// Child returns the first child with the given label, or nil.
func (n *Node) Child(label string) *Node {
	for _, k := range n.Kids {
		if k.Label == label {
			return k
		}
	}
	return nil
}

// Children returns all children with the given label.
func (n *Node) Children(label string) []*Node {
	var out []*Node
	for _, k := range n.Kids {
		if k.Label == label {
			out = append(out, k)
		}
	}
	return out
}

// Path descends through the first children matching each label in turn,
// returning nil if any step is missing.
func (n *Node) Path(labels ...string) *Node {
	cur := n
	for _, l := range labels {
		if cur == nil {
			return nil
		}
		cur = cur.Child(l)
	}
	return cur
}

// AtomValue returns the node's atom if it is a leaf; if the node has exactly
// one leaf child (the common <title>Nympheas</title> XML shape), that child's
// atom is returned. The boolean reports success.
func (n *Node) AtomValue() (Atom, bool) {
	if n == nil {
		return Atom{}, false
	}
	if n.Atom != nil {
		return *n.Atom, true
	}
	if len(n.Kids) == 1 && n.Kids[0].Atom != nil && n.Kids[0].Label == "" {
		return *n.Kids[0].Atom, true
	}
	return Atom{}, false
}

// TextContent concatenates, in document order, every atom in the subtree.
func (n *Node) TextContent() string {
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	if n == nil {
		return
	}
	if n.Atom != nil {
		b.WriteString(n.Atom.Text())
		return
	}
	for i, k := range n.Kids {
		if i > 0 {
			b.WriteByte(' ')
		}
		k.appendText(b)
	}
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Label: n.Label, Ref: n.Ref, ID: n.ID}
	if n.Atom != nil {
		a := *n.Atom
		c.Atom = &a
	}
	if len(n.Kids) > 0 {
		c.Kids = make([]*Node, len(n.Kids))
		for i, k := range n.Kids {
			c.Kids[i] = k.Clone()
		}
	}
	return c
}

// Size returns the number of nodes in the subtree.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, k := range n.Kids {
		s += k.Size()
	}
	return s
}

// Depth returns the height of the subtree (a leaf has depth 1).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	d := 0
	for _, k := range n.Kids {
		if kd := k.Depth(); kd > d {
			d = kd
		}
	}
	return d + 1
}

// Equal reports deep structural equality of two trees: same labels, atoms,
// references and identically ordered equal children. Identifiers participate
// so that two distinct objects with equal state remain distinguishable, as
// in the object model.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Label != b.Label || a.Ref != b.Ref || a.ID != b.ID {
		return false
	}
	if (a.Atom == nil) != (b.Atom == nil) {
		return false
	}
	if a.Atom != nil && !a.Atom.Equal(*b.Atom) {
		return false
	}
	if len(a.Kids) != len(b.Kids) {
		return false
	}
	for i := range a.Kids {
		if !Equal(a.Kids[i], b.Kids[i]) {
			return false
		}
	}
	return true
}

// EqualValue is like Equal but ignores identifiers, comparing only labels,
// atoms, references and structure. It implements value equality for Tab
// cells, where identity is irrelevant to predicate evaluation.
func EqualValue(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Label != b.Label || a.Ref != b.Ref {
		return false
	}
	if (a.Atom == nil) != (b.Atom == nil) {
		return false
	}
	if a.Atom != nil && !a.Atom.Equal(*b.Atom) {
		return false
	}
	if len(a.Kids) != len(b.Kids) {
		return false
	}
	for i := range a.Kids {
		if !EqualValue(a.Kids[i], b.Kids[i]) {
			return false
		}
	}
	return true
}

// Compare defines a total order over trees, used by Sort and Group. Leaves
// order by atom; otherwise by label, then reference, then children
// lexicographically, then identifier.
func Compare(a, b *Node) int {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return -1
	case b == nil:
		return 1
	}
	if a.IsLeaf() && b.IsLeaf() && a.Label == b.Label {
		return a.Atom.Compare(*b.Atom)
	}
	if c := strings.Compare(a.Label, b.Label); c != 0 {
		return c
	}
	if (a.Atom == nil) != (b.Atom == nil) {
		if a.Atom != nil {
			return -1
		}
		return 1
	}
	if a.Atom != nil {
		if c := a.Atom.Compare(*b.Atom); c != 0 {
			return c
		}
	}
	if c := strings.Compare(a.Ref, b.Ref); c != 0 {
		return c
	}
	n := len(a.Kids)
	if len(b.Kids) < n {
		n = len(b.Kids)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a.Kids[i], b.Kids[i]); c != 0 {
			return c
		}
	}
	if c := len(a.Kids) - len(b.Kids); c != 0 {
		if c < 0 {
			return -1
		}
		return 1
	}
	return strings.Compare(a.ID, b.ID)
}

// Hash returns a 64-bit structural hash of the tree (identifiers excluded,
// consistent with EqualValue). It lets Group and hash joins bucket trees.
func Hash(n *Node) uint64 {
	h := fnv.New64a()
	hashInto(h, n)
	return h.Sum64()
}

type hasher interface {
	Write(p []byte) (int, error)
}

func hashInto(h hasher, n *Node) {
	if n == nil {
		h.Write([]byte{0})
		return
	}
	h.Write([]byte{1})
	h.Write([]byte(n.Label))
	h.Write([]byte{0})
	if n.Atom != nil {
		h.Write([]byte{byte(n.Atom.Kind) + 2})
		switch n.Atom.Kind {
		case KindInt:
			writeUint64(h, uint64(n.Atom.I))
		case KindFloat:
			writeUint64(h, math.Float64bits(n.Atom.F))
		case KindBool:
			if n.Atom.B {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		default:
			h.Write([]byte(n.Atom.S))
		}
	}
	h.Write([]byte(n.Ref))
	h.Write([]byte{0})
	for _, k := range n.Kids {
		hashInto(h, k)
	}
	h.Write([]byte{2})
}

func writeUint64(h hasher, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
}

// SortKids sorts the children of n in Compare order; used to normalise
// set-valued collections before comparison.
func (n *Node) SortKids() {
	sort.SliceStable(n.Kids, func(i, j int) bool { return Compare(n.Kids[i], n.Kids[j]) < 0 })
}

// Walk calls fn for every node of the subtree in document order. If fn
// returns false the node's children are skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, k := range n.Kids {
		k.Walk(fn)
	}
}

// String renders a compact single-line form of the tree, convenient in tests
// and error messages: label[kid, kid], label:"atom", &id references and
// id= prefixes for identified trees.
func (n *Node) String() string {
	var b strings.Builder
	n.writeString(&b)
	return b.String()
}

func (n *Node) writeString(b *strings.Builder) {
	if n == nil {
		b.WriteString("nil")
		return
	}
	if n.ID != "" {
		b.WriteString(n.ID)
		b.WriteByte('=')
	}
	b.WriteString(n.Label)
	switch {
	case n.Atom != nil:
		b.WriteByte(':')
		if n.Atom.Kind == KindString {
			b.WriteString(strconv.Quote(n.Atom.S))
		} else {
			b.WriteString(n.Atom.Text())
		}
	case n.Ref != "":
		b.WriteString(":&")
		b.WriteString(n.Ref)
	default:
		b.WriteByte('[')
		for i, k := range n.Kids {
			if i > 0 {
				b.WriteString(", ")
			}
			k.writeString(b)
		}
		b.WriteByte(']')
	}
}

// Indent renders a multi-line indented form of the tree.
func (n *Node) Indent() string {
	var b strings.Builder
	n.writeIndent(&b, 0)
	return b.String()
}

func (n *Node) writeIndent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	if n == nil {
		b.WriteString("nil\n")
		return
	}
	if n.ID != "" {
		b.WriteString(n.ID)
		b.WriteByte('=')
	}
	b.WriteString(n.Label)
	switch {
	case n.Atom != nil:
		b.WriteString(": ")
		b.WriteString(n.Atom.Text())
		b.WriteByte('\n')
	case n.Ref != "":
		b.WriteString(": &")
		b.WriteString(n.Ref)
		b.WriteByte('\n')
	default:
		b.WriteByte('\n')
		for _, k := range n.Kids {
			k.writeIndent(b, depth+1)
		}
	}
}

// Forest is an ordered sequence of trees, e.g. the members of a collection
// or the sequence bound to a collect-star variable such as $fields.
type Forest []*Node

// Clone deep-copies the forest.
func (f Forest) Clone() Forest {
	out := make(Forest, len(f))
	for i, n := range f {
		out[i] = n.Clone()
	}
	return out
}

// Equal reports element-wise EqualValue of two forests.
func (f Forest) Equal(g Forest) bool {
	if len(f) != len(g) {
		return false
	}
	for i := range f {
		if !EqualValue(f[i], g[i]) {
			return false
		}
	}
	return true
}

// String renders the forest as a bracketed list.
func (f Forest) String() string {
	parts := make([]string, len(f))
	for i, n := range f {
		parts[i] = n.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Store resolves identifiers to trees; it backs reference traversal
// (`&` edges in Figure 1, e.g. owners refs="p1 p2 p3"). A Store is safe for
// concurrent use: parallel plan evaluation registers fetched documents and
// dereferences identifiers from multiple workers at once.
type Store struct {
	mu   sync.RWMutex
	byID map[string]*Node
}

// NewStore returns an empty identifier store.
func NewStore() *Store { return &Store{byID: make(map[string]*Node)} }

// Register records every identified node of the subtree. Later
// registrations of the same identifier overwrite earlier ones.
func (s *Store) Register(n *Node) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n.Walk(func(m *Node) bool {
		if m.ID != "" {
			s.byID[m.ID] = m
		}
		return true
	})
}

// Lookup resolves an identifier, returning nil if unknown.
func (s *Store) Lookup(id string) *Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byID[id]
}

// Deref resolves a node: reference nodes are chased through the store (one
// hop), others returned unchanged. A dangling reference yields nil.
func (s *Store) Deref(n *Node) *Node {
	if n == nil || !n.IsRef() {
		return n
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byID[n.Ref]
}

// Len reports the number of registered identifiers.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}
