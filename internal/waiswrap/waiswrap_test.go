package waiswrap

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/filter"
	"repro/internal/pattern"
	"repro/internal/tab"
)

func wrapper() *Wrapper {
	return New("xmlartwork", datagen.NewWaisEngine(datagen.PaperWorks()))
}

func TestFetchWorks(t *testing.T) {
	w := wrapper()
	forest, err := w.Fetch("works")
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 1 || forest[0].Label != "works" || len(forest[0].Kids) != 2 {
		t.Fatalf("forest = %v", forest)
	}
	if _, err := w.Fetch("nosuch"); err == nil {
		t.Error("unknown document must fail")
	}
}

func TestExportStructureFigure3(t *testing.T) {
	w := wrapper()
	m := w.ExportStructure()
	if !pattern.InstanceOfModel(pattern.YATModel(), m) {
		t.Error("Artworks structure must instantiate the YAT metamodel")
	}
	// The exported documents match the exported structure.
	forest, _ := w.Fetch("works")
	for _, work := range forest[0].Kids {
		if !pattern.MatchData(m, m.Lookup("Work"), work) {
			t.Errorf("work does not match structure: %s", work)
		}
	}
}

func TestExportInterface(t *testing.T) {
	w := wrapper()
	i := w.ExportInterface()
	back, err := capability.Unmarshal(capability.Marshal(i))
	if err != nil {
		t.Fatal(err)
	}
	if !back.HasOperation("contains") || back.EquivalenceTo("contains") == nil {
		t.Error("contains operation/equivalence lost")
	}
	if err := back.AcceptsFilter("works", filter.MustParse(`works[ *work@$w ]`)); err != nil {
		t.Errorf("must accept whole-document binds: %v", err)
	}
	if err := back.AcceptsFilter("works", filter.MustParse(`works[ *work[ title: $t ] ]`)); err == nil {
		t.Error("must reject navigation inside documents")
	}
}

func TestPushContains(t *testing.T) {
	w := wrapper()
	plan := &algebra.Select{
		From: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)},
		Pred: algebra.MustParseExpr(`contains($w, "Giverny")`),
	}
	res, err := w.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d\n%s", res.Len(), res)
	}
	doc := res.Rows[0][0].Tree
	if doc.Child("title").Atom.S != "Nympheas" {
		t.Errorf("doc = %s", doc)
	}
	if w.LastSearch != "Giverny" {
		t.Errorf("LastSearch = %q", w.LastSearch)
	}
	if w.E.SearchesRun == 0 {
		t.Error("search must run on the engine")
	}
}

func TestPushMultipleContains(t *testing.T) {
	w := wrapper()
	plan := &algebra.Select{
		From: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)},
		Pred: algebra.MustParseExpr(`contains($w, "Impressionist") AND contains($w, "Oil")`),
	}
	res, err := w.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	if res.Rows[0][0].Tree.Child("title").Atom.S != "Waterloo Bridge" {
		t.Errorf("doc = %s", res.Rows[0][0].Tree)
	}
}

func TestPushWithoutPredicateShipsAll(t *testing.T) {
	w := wrapper()
	plan := &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)}
	res, err := w.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
}

func TestPushParameterizedContains(t *testing.T) {
	w := wrapper()
	plan := &algebra.Select{
		From: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)},
		Pred: algebra.Call{Name: "contains", Args: []algebra.Expr{algebra.Var{Name: "$w"}, algebra.Var{Name: "$text"}}},
	}
	params := map[string]tab.Cell{"$text": tab.AtomCell(data.String("Giverny"))}
	res, err := w.Push(plan, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
}

func TestPushProjectionRename(t *testing.T) {
	w := wrapper()
	plan := &algebra.Project{
		From: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)},
		Cols: []string{"$doc=$w"},
	}
	res, err := w.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols[0] != "$doc" || res.Len() != 2 {
		t.Fatalf("res = %s", res)
	}
}

func TestPushRejectsUnsupported(t *testing.T) {
	w := wrapper()
	bad := []algebra.Op{
		&algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work[ title: $t ] ]`)},
		&algebra.Bind{Doc: "artifacts", F: filter.MustParse(`set[ *class@$c ]`)},
		&algebra.Bind{Doc: "works", F: filter.MustParse(`works[ work@$w ]`)},
		&algebra.Bind{Doc: "works", F: filter.MustParse(`works@$all[ *work@$w ]`)},
		&algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *($docs) ]`)},
		&algebra.Select{
			From: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)},
			Pred: algebra.MustParseExpr(`$w = "x"`)},
		&algebra.Select{
			From: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)},
			Pred: algebra.MustParseExpr(`contains($w, $unbound)`)},
		&algebra.Union{
			L: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)},
			R: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w2 ]`)}},
	}
	for i, plan := range bad {
		if _, err := w.Push(plan, nil); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestContainsFunction(t *testing.T) {
	doc := datagen.PaperWorks()[0]
	ok, err := Contains([]tab.Cell{tab.TreeCell(doc), tab.AtomCell(data.String("Giverny"))})
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := ok.AsAtom(); !a.B {
		t.Error("Nympheas contains Giverny")
	}
	ok, _ = Contains([]tab.Cell{tab.TreeCell(doc), tab.AtomCell(data.String("Cubist"))})
	if a, _ := ok.AsAtom(); a.B {
		t.Error("Nympheas does not contain Cubist")
	}
	// multiword: all words must appear
	ok, _ = Contains([]tab.Cell{tab.TreeCell(doc), tab.AtomCell(data.String("Claude Giverny"))})
	if a, _ := ok.AsAtom(); !a.B {
		t.Error("multiword contains")
	}
	if _, err := Contains([]tab.Cell{tab.TreeCell(doc)}); err == nil {
		t.Error("arity check")
	}
	if _, err := Contains([]tab.Cell{tab.TreeCell(doc), tab.AtomCell(data.Int(5))}); err == nil {
		t.Error("type check")
	}
}

func TestPushAgreesWithLocalContains(t *testing.T) {
	// Pushing contains to the engine and evaluating contains mediator-side
	// over the fetched documents must agree — the declared equivalence is
	// sound for this engine.
	w := wrapper()
	plan := &algebra.Select{
		From: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)},
		Pred: algebra.MustParseExpr(`contains($w, "Impressionist")`),
	}
	pushed, err := w.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := algebra.NewContext()
	ctx.Sources["xmlartwork"] = w
	ctx.Funcs["contains"] = Contains
	local, err := plan.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pushed.EqualUnordered(local) {
		t.Errorf("pushed:\n%s\nlocal:\n%s", pushed, local)
	}
	if !strings.Contains(w.LastSearch, "Impressionist") {
		t.Errorf("LastSearch = %q", w.LastSearch)
	}
}
