package waiswrap

import (
	"context"
	"fmt"
	"io"

	"repro/internal/algebra"
	"repro/internal/nodetab"
	"repro/internal/tab"
)

// The Wais wrapper streams pushed queries natively: the search phase is
// cheap (id lists), only document retrieval is O(result), and retrieval is
// paced by the consumer below.
var _ algebra.PushStreamSource = (*Wrapper)(nil)

// PushStream implements algebra.PushStreamSource: the same capability check
// and full-text search as Push, but the matched documents are retrieved
// lazily in bounded chunks as the consumer pulls — a large result never
// materializes wrapper-side. Node-table plans keep the materialized
// evaluation (their results are joins over the whole numbering anyway) and
// are served as a chunked slice.
func (w *Wrapper) PushStream(ctx context.Context, plan algebra.Op, params map[string]tab.Cell) (tab.Cursor, error) {
	if nodetab.TouchesPlan(plan) {
		t, err := nodetab.Eval(plan, params, w.nodeTable)
		if err != nil {
			return nil, err
		}
		return tab.NewSliceCursor(t, tab.DefaultStreamChunk), nil
	}
	docVar, ids, err := w.compilePush(plan, params)
	if err != nil {
		return nil, err
	}
	outCols := plan.Columns()
	// Unlike Push, which discovers an unbound output column on the first
	// row, validate the whole column set at open time so a bad plan fails
	// before any chunk is shipped.
	for _, c := range outCols {
		if c != docVar && renamedFrom(plan, c) != docVar {
			return nil, fmt.Errorf("waiswrap: output column %s is not bound", c)
		}
	}
	pos := 0
	return &tab.FuncCursor{
		Columns: outCols,
		NextFn: func() (*tab.Tab, error) {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if pos >= len(ids) {
				return nil, io.EOF
			}
			hi := pos + tab.DefaultStreamChunk
			if hi > len(ids) {
				hi = len(ids)
			}
			out := tab.New(outCols...)
			for _, id := range ids[pos:hi] {
				doc := w.E.Retrieve(id)
				row := make(tab.Row, len(outCols))
				for i := range outCols {
					row[i] = tab.TreeCell(doc)
				}
				out.AddRow(row)
			}
			pos = hi
			return out, nil
		},
	}, nil
}
