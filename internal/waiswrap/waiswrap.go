// Package waiswrap implements the generic XML-Wais wrapper of the paper
// (`xmlwais-wrapper` in Figure 2): it exports the Artworks structure
// (Figure 3), the restrictive capability interface of Section 4.2 — only
// whole documents can be bound, the only pushable predicate is the
// full-text contains — and the declared equivalence connecting contains
// with the algebra's equality predicate.
package waiswrap

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/nodetab"
	"repro/internal/pattern"
	"repro/internal/tab"
	"repro/internal/wais"
)

// Wrapper wraps one Wais engine.
type Wrapper struct {
	E         *wais.Engine
	SourceNme string
	// LastSearch records the text of the most recent pushed full-text
	// search (observability for tests and examples). Writes are serialized
	// by lastMu so concurrent pushes do not race; read it only after the
	// pushes of interest have completed.
	LastSearch string
	lastMu     sync.Mutex
	// nodes caches the pre/post-order node table of the works document
	// (rebuilt lazily; the engine is append-only in the experiments).
	nodes nodetab.Cache
}

// New returns a wrapper over the engine.
func New(name string, e *wais.Engine) *Wrapper {
	return &Wrapper{E: e, SourceNme: name}
}

// Name implements algebra.Source.
func (w *Wrapper) Name() string { return w.SourceNme }

// Documents implements algebra.Source: the works document and its
// pre/post-order node table (PR 7: pushable XPath axes).
func (w *Wrapper) Documents() []string { return []string{"works", nodetab.Doc("works")} }

// Fetch implements algebra.Source: it ships the entire indexed collection
// (in its retrievable view) under a works root — the costly path the
// optimizer tries to avoid.
func (w *Wrapper) Fetch(doc string) (data.Forest, error) {
	if nodetab.IsNodes(doc) && nodetab.Base(doc) == "works" {
		return w.nodeTable("works")
	}
	if doc != "works" {
		return nil, fmt.Errorf("waiswrap: unknown document %q", doc)
	}
	root := data.Elem("works")
	for i := 0; i < w.E.Size(); i++ {
		root.Add(w.E.Retrieve(i))
	}
	return data.Forest{root}, nil
}

// nodeTable returns the cached node table of a base document.
func (w *Wrapper) nodeTable(base string) (data.Forest, error) {
	return w.nodes.Get(base, func(b string) (data.Forest, error) {
		if b != "works" {
			return nil, fmt.Errorf("waiswrap: unknown document %q", b)
		}
		return w.Fetch(b)
	})
}

// ExportStructure returns the Artworks structure of Figure 3: works with
// mandatory artist/title/style/size elements followed by arbitrary
// additional fields.
func (w *Wrapper) ExportStructure() *pattern.Model {
	return pattern.MustParseModel(`model Artworks_Structure
Works := works[ *&Work ]
Work  := work[ artist: String, title: String, style: String, size: String,
               *&Field ]
Field := Symbol[ *( Int | Float | Bool | String | &Field ) ]`)
}

// ExportInterface builds the Section 4.2 interface: the Fworks pattern
// (bind whole documents only), bind/select operations, the contains
// external predicate and the contains/equality equivalence.
func (w *Wrapper) ExportInterface() *capability.Interface {
	i := capability.NewInterface(w.SourceNme)
	fm := capability.NewFModel("waisfmodel")
	fm.Define("Fworks", &capability.FT{
		Kind: pattern.KNode, Label: "works",
		Bind: capability.BindNone, Inst: capability.InstGround,
		Items: []capability.FTItem{{Star: true, Inst: capability.InstNone,
			F: &capability.FT{Kind: pattern.KRef, Name: "work", Bind: capability.BindTree}}},
	})
	i.FModels = append(i.FModels, fm)
	i.Binds["works"] = capability.BindCap{FModel: "waisfmodel", FPattern: "Fworks"}
	i.Structures["works"] = capability.StructureRef{Model: w.ExportStructure(), Pattern: "Works"}
	i.Operations = append(i.Operations,
		capability.Operation{Name: "bind", Kind: "algebra",
			Inputs: []capability.Sig{
				{Model: "Artworks_Structure", Pattern: "Works"},
				{Model: "waisfmodel", Pattern: "Fworks", IsFilter: true},
			},
			Output: &capability.Sig{Model: "yat", Pattern: "Tab"}},
		capability.Operation{Name: "select", Kind: "algebra"},
		capability.Operation{Name: "contains", Kind: "external",
			Inputs: []capability.Sig{
				{Model: "Artworks_Structure", Pattern: "Work"},
				{Leaf: "String"},
			},
			Output: &capability.Sig{Leaf: "Bool"}},
	)
	i.Equivalences = append(i.Equivalences, capability.Equivalence{
		Name: "contains-eq", From: "eq", To: "contains", Scope: "work",
	})
	// Node table: pushable XPath-axis predicates over pre/post numbering.
	nodetab.Export(i, []string{"works"})
	return i
}

// Contains is the external predicate's local semantics: the tree's text
// contains every word of the argument. The mediator registers it so that
// contains can also be evaluated mediator-side when it cannot be pushed.
func Contains(args []tab.Cell) (tab.Cell, error) {
	if len(args) != 2 {
		return tab.Null(), fmt.Errorf("contains expects (tree, string)")
	}
	text, ok := args[1].AsAtom()
	if !ok || text.Kind != data.KindString {
		return tab.Null(), fmt.Errorf("contains expects a string argument")
	}
	var hay strings.Builder
	for _, n := range args[0].AsForest() {
		hay.WriteString(n.TextContent())
		hay.WriteByte(' ')
	}
	tokens := wais.Tokenize(hay.String())
	set := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		set[t] = true
	}
	for _, t := range wais.Tokenize(text.S) {
		if !set[t] {
			return tab.AtomCell(data.Bool(false)), nil
		}
	}
	return tab.AtomCell(data.Bool(true)), nil
}

// Push implements algebra.Source. The only supported shapes — exactly the
// declared capabilities — are Project*/Select* over Bind(works) with the
// Fworks filter; selections may only carry contains predicates over the
// bound document variable (possibly with parameters inlined from a DJoin).
func (w *Wrapper) Push(plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	if nodetab.TouchesPlan(plan) {
		return nodetab.Eval(plan, params, w.nodeTable)
	}
	docVar, ids, err := w.compilePush(plan, params)
	if err != nil {
		return nil, err
	}
	outCols := plan.Columns()
	out := tab.New(outCols...)
	for _, id := range ids {
		doc := w.E.Retrieve(id)
		row := make(tab.Row, len(outCols))
		for i, c := range outCols {
			if c == docVar || renamedFrom(plan, c) == docVar {
				row[i] = tab.TreeCell(doc)
			} else {
				return nil, fmt.Errorf("waiswrap: output column %s is not bound", c)
			}
		}
		out.AddRow(row)
	}
	return out, nil
}

// compilePush runs the capability check and search evaluation shared by
// Push and PushStream: it validates the plan against the declared shapes,
// performs the full-text searches, and returns the bound document variable
// plus the matching document ids — everything but the row retrieval, which
// the two entry points pace differently.
func (w *Wrapper) compilePush(plan algebra.Op, params map[string]tab.Cell) (string, []int, error) {
	var docVar string
	var searches []string
	var walk func(op algebra.Op) error
	walk = func(op algebra.Op) error {
		// yat-lint:ignore intentionally partial: accepts exactly the declared capability shapes; the default refuses the push
		switch x := op.(type) {
		case *algebra.Project:
			return walk(x.From)
		case *algebra.Select:
			if err := walk(x.From); err != nil {
				return err
			}
			for _, conj := range algebra.SplitConj(x.Pred) {
				call, ok := conj.(algebra.Call)
				if !ok || call.Name != "contains" || len(call.Args) != 2 {
					return fmt.Errorf("waiswrap: only contains predicates can be pushed, got %s", conj)
				}
				v, ok := call.Args[0].(algebra.Var)
				if !ok || v.Name != docVar {
					return fmt.Errorf("waiswrap: contains must apply to the bound document variable")
				}
				text, err := stringArg(call.Args[1], params)
				if err != nil {
					return err
				}
				searches = append(searches, text)
			}
			return nil
		case *algebra.Bind:
			if x.Doc != "works" {
				return fmt.Errorf("waiswrap: only binds over works can be pushed")
			}
			v, err := docVarOf(x.F.Root)
			if err != nil {
				return err
			}
			docVar = v
			return nil
		default:
			return fmt.Errorf("waiswrap: operator %T cannot be pushed", op)
		}
	}
	if err := walk(plan); err != nil {
		return "", nil, err
	}
	// Evaluate: full-text search for each contains, intersected.
	var ids []int
	if len(searches) == 0 {
		ids = make([]int, w.E.Size())
		for i := range ids {
			ids[i] = i
		}
	} else {
		ids = w.E.Search(searches[0])
		for _, s := range searches[1:] {
			ids = wais.And(ids, w.E.Search(s))
		}
		w.lastMu.Lock()
		w.LastSearch = strings.Join(searches, " AND ")
		w.lastMu.Unlock()
	}
	return docVar, ids, nil
}

// docVarOf checks the Fworks shape works[ *work@$w ] and returns $w.
func docVarOf(root *filter.FNode) (string, error) {
	if root.Label != "works" || root.Var != "" || root.LabelVar != "" {
		return "", fmt.Errorf("waiswrap: filter must match the works root without binding it")
	}
	if len(root.Items) != 1 || !root.Items[0].Star {
		return "", fmt.Errorf("waiswrap: filter must iterate documents (*work@$w)")
	}
	it := root.Items[0]
	if it.CollectVar != "" {
		return "", fmt.Errorf("waiswrap: collect-star push is not supported")
	}
	wn := it.F
	if wn.Label != "work" || wn.Var == "" || len(wn.Items) > 0 {
		return "", fmt.Errorf("waiswrap: only whole documents can be bound (work@$w)")
	}
	return wn.Var, nil
}

func stringArg(e algebra.Expr, params map[string]tab.Cell) (string, error) {
	switch x := e.(type) {
	case algebra.Const:
		if x.Atom.Kind != data.KindString {
			return "", fmt.Errorf("waiswrap: contains expects a string constant")
		}
		return x.Atom.S, nil
	case algebra.Var:
		if c, ok := params[x.Name]; ok {
			if a, ok := c.AsAtom(); ok && a.Kind == data.KindString {
				return a.S, nil
			}
		}
		return "", fmt.Errorf("waiswrap: contains argument %s is not a bound string", x.Name)
	default:
		return "", fmt.Errorf("waiswrap: unsupported contains argument %T", e)
	}
}

// renamedFrom resolves a projected output column back to its source column
// through Project renames (new=old).
func renamedFrom(plan algebra.Op, col string) string {
	cur := col
	algebra.Walk(plan, func(op algebra.Op) bool {
		if p, ok := op.(*algebra.Project); ok {
			for _, c := range p.Cols {
				if i := strings.IndexByte(c, '='); i >= 0 && c[:i] == cur {
					cur = c[i+1:]
				}
			}
		}
		return true
	})
	return cur
}
