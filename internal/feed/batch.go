package feed

import (
	"context"
	"fmt"

	"repro/internal/algebra"
	"repro/internal/tab"
)

// The wrapper evaluates batched pushes natively (algebra.BatchSource): a
// mediator ships a parameterized fetch-by-id or filter plan once per batch
// instead of once per binding row.
var _ algebra.BatchSource = (*Wrapper)(nil)

// PushBatch implements algebra.BatchSource: the plan is evaluated once per
// binding set. All-or-error: a failing binding aborts the batch and no
// partial results are returned.
func (w *Wrapper) PushBatch(plan algebra.Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error) {
	return w.PushBatchContext(context.Background(), plan, bindings)
}

// PushBatchContext implements algebra.BatchSource: PushBatch under a
// cancellation context, checked between bindings. The plan compiles once;
// only the index lookups and row verification repeat per binding, which is
// what makes a batched fetch-by-id cheap.
func (w *Wrapper) PushBatchContext(ctx context.Context, plan algebra.Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error) {
	out := make([]*tab.Tab, len(bindings))
	for i, b := range bindings {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		q, err := w.compilePush(plan, b)
		if err != nil {
			return nil, fmt.Errorf("binding %d: %w", i, err)
		}
		t, err := w.evalRows(q, w.candidates(q), b)
		if err != nil {
			return nil, fmt.Errorf("binding %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}
