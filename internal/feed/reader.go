package feed

import (
	"archive/zip"
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/data"
	"repro/internal/xmlenc"
)

// Reader yields dump records one at a time. Next returns io.EOF when the
// dump is exhausted and *MalformedError for a record that cannot be decoded
// — the caller may keep pulling past it, which is how ingest quarantines
// broken records without aborting the feed. Any other error is a transport
// failure and terminal.
type Reader interface {
	Next() (*data.Node, error)
	Close() error
}

// MalformedError reports one undecodable record: the dump entry and line it
// came from and why it was rejected. It is recoverable — Next keeps working
// after returning it.
type MalformedError struct {
	Entry  string // file or zip-entry name
	Line   int    // 1-based line within the entry
	Reason string
}

func (e *MalformedError) Error() string {
	return fmt.Sprintf("feed: %s line %d: %s", e.Entry, e.Line, e.Reason)
}

// ndxmlReader decodes newline-delimited XML: one record element per line,
// blank lines ignored. Lines are parsed as they are read — the reader holds
// one line and the decoded tree, never the dump.
type ndxmlReader struct {
	entry string
	br    *bufio.Reader
	line  int
	close io.Closer
}

// NewNDXML returns a Reader over newline-delimited XML. The entry name
// appears in MalformedError diagnostics.
func NewNDXML(r io.Reader, entry string) Reader {
	return &ndxmlReader{entry: entry, br: bufio.NewReaderSize(r, 64<<10)}
}

func (r *ndxmlReader) Next() (*data.Node, error) {
	for {
		line, err := r.br.ReadString('\n')
		if err != nil && err != io.EOF {
			return nil, err
		}
		if line != "" {
			r.line++
		}
		if s := strings.TrimSpace(line); s != "" {
			n, perr := xmlenc.Parse(s)
			if perr != nil {
				return nil, &MalformedError{Entry: r.entry, Line: r.line, Reason: perr.Error()}
			}
			return xmlenc.InferAtoms(n), nil
		}
		if err == io.EOF {
			return nil, io.EOF
		}
	}
}

func (r *ndxmlReader) Close() error {
	if r.close != nil {
		return r.close.Close()
	}
	return nil
}

// zipReader iterates the `.ndxml`/`.xml` entries of a zip archive in order,
// composing an ndxmlReader over each entry's decompressing stream: one
// entry is open at a time and entries are never slurped.
type zipReader struct {
	entries []*zip.File
	pos     int
	cur     Reader
	curRC   io.ReadCloser
	close   io.Closer
}

// NewZip returns a Reader over the record-bearing entries of a zip archive.
func NewZip(r io.ReaderAt, size int64) (Reader, error) {
	zr, err := zip.NewReader(r, size)
	if err != nil {
		return nil, err
	}
	return newZipReader(zr, nil), nil
}

func newZipReader(zr *zip.Reader, close io.Closer) *zipReader {
	out := &zipReader{close: close}
	for _, f := range zr.File {
		if strings.HasSuffix(f.Name, ".ndxml") || strings.HasSuffix(f.Name, ".xml") {
			out.entries = append(out.entries, f)
		}
	}
	return out
}

func (r *zipReader) Next() (*data.Node, error) {
	for {
		if r.cur == nil {
			if r.pos >= len(r.entries) {
				return nil, io.EOF
			}
			rc, err := r.entries[r.pos].Open()
			if err != nil {
				return nil, fmt.Errorf("feed: entry %s: %w", r.entries[r.pos].Name, err)
			}
			r.cur = NewNDXML(rc, r.entries[r.pos].Name)
			r.curRC = rc
			r.pos++
		}
		n, err := r.cur.Next()
		if err == io.EOF {
			r.curRC.Close()
			r.cur, r.curRC = nil, nil
			continue
		}
		return n, err
	}
}

func (r *zipReader) Close() error {
	if r.curRC != nil {
		r.curRC.Close()
		r.cur, r.curRC = nil, nil
	}
	if r.close != nil {
		return r.close.Close()
	}
	return nil
}

// OpenDump opens a dump file by extension: `.ndxml` as newline-delimited
// XML, `.zip` (conventionally `.xml.zip`) as a zip of such entries.
func OpenDump(path string) (Reader, error) {
	switch {
	case strings.HasSuffix(path, ".ndxml"):
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		r := NewNDXML(f, path).(*ndxmlReader)
		r.close = f
		return r, nil
	case strings.HasSuffix(path, ".zip"):
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		zr, err := zip.NewReader(f, st.Size())
		if err != nil {
			f.Close()
			return nil, err
		}
		return newZipReader(zr, f), nil
	default:
		return nil, fmt.Errorf("feed: %s: unknown dump format (want .ndxml or .zip)", path)
	}
}
