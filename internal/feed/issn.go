// Package feed implements the third wrapper family of ROADMAP item 5: a
// source wrapping bulk XML metadata dumps (newline-delimited `.ndxml` files
// and zip archives of them) behind the restricted capability profile of
// modern feed APIs — filter-by-field (equality and prefix over normalized
// fields) plus fetch-by-id, and nothing else.
//
// The package has three layers. The readers (reader.go) decode dumps one
// record at a time without slurping the file, so ingest memory stays flat
// at one record plus buffering. Ingest (store.go) normalizes and validates
// every field — checksum-verified ISSNs in canonical form, collapsed
// whitespace, ranged years — and quarantines malformed records with
// per-reason counters instead of aborting the feed. The store indexes the
// surviving records per field for the exact operations the capability
// interface (wrapper.go) declares; everything else stays mediator-side.
package feed

import (
	"fmt"
	"strings"
)

// NormalizeISSN canonicalizes an ISSN to the "NNNN-NNNC" form and verifies
// its ISO 3297 checksum: the first seven digits weighted 8..2, summed, and
// the check character making the total a multiple of 11 (10 is written X).
// Dashes and spaces in the input are ignored; a lowercase x check digit is
// accepted and uppercased.
func NormalizeISSN(s string) (string, error) {
	var digits []byte
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9':
			digits = append(digits, c)
		case c == 'x' || c == 'X':
			digits = append(digits, 'X')
		case c == '-' || c == ' ':
			// separators are ignored
		default:
			return "", fmt.Errorf("issn %q: invalid character %q", s, c)
		}
	}
	if len(digits) != 8 {
		return "", fmt.Errorf("issn %q: want 8 digits, have %d", s, len(digits))
	}
	sum := 0
	for i := 0; i < 7; i++ {
		if digits[i] == 'X' {
			return "", fmt.Errorf("issn %q: X only valid as check digit", s)
		}
		sum += int(digits[i]-'0') * (8 - i)
	}
	check := (11 - sum%11) % 11
	want := byte('0' + check)
	if check == 10 {
		want = 'X'
	}
	if digits[7] != want {
		return "", fmt.Errorf("issn %q: checksum mismatch (check digit %c, want %c)", s, digits[7], want)
	}
	var b strings.Builder
	b.Write(digits[:4])
	b.WriteByte('-')
	b.Write(digits[4:])
	return b.String(), nil
}

// issnCheckDigit computes the check character for the seven leading digits
// of an ISSN; datagen uses it to mint valid identifiers.
func ISSNCheckDigit(seven string) (byte, error) {
	if len(seven) != 7 {
		return 0, fmt.Errorf("issn prefix %q: want 7 digits", seven)
	}
	sum := 0
	for i := 0; i < 7; i++ {
		c := seven[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("issn prefix %q: invalid digit %q", seven, c)
		}
		sum += int(c-'0') * (8 - i)
	}
	check := (11 - sum%11) % 11
	if check == 10 {
		return 'X', nil
	}
	return byte('0' + check), nil
}
