package feed

import (
	"context"
	"fmt"
	"io"

	"repro/internal/algebra"
	"repro/internal/tab"
)

// The feed wrapper streams pushed queries natively: the index lookups are
// cheap (ascending id lists), only record matching and predicate
// verification are O(result), and both are paced by the consumer below. A
// native FetchStream is deliberately absent — the records document is
// single-rooted, and re-chunking it under synthetic roots would change the
// semantics of a mediator-side bind over the whole root; the wire layer
// already adapts Fetch into bounded stream frames.
var _ algebra.PushStreamSource = (*Wrapper)(nil)

// PushStream implements algebra.PushStreamSource: the same compilation and
// index narrowing as Push, but candidate records are matched, verified and
// projected lazily in bounded chunks as the consumer pulls — a large result
// never materializes wrapper-side.
func (w *Wrapper) PushStream(ctx context.Context, plan algebra.Op, params map[string]tab.Cell) (tab.Cursor, error) {
	q, err := w.compilePush(plan, params)
	if err != nil {
		return nil, err
	}
	// Unlike Push, which discovers a column mismatch when the rows land,
	// validate the output column lineup at open time so a bad plan fails
	// before any chunk is shipped. The filter's binding columns are
	// deterministic (pre-order variables), so the projected shape is known
	// without evaluating a row.
	cols := q.f.Vars()
	for _, p := range q.projects {
		cols = p
	}
	if len(cols) != len(q.outCols) {
		return nil, fmt.Errorf("feed: pushed plan columns %v do not line up with %v", cols, q.outCols)
	}
	for i, c := range cols {
		if c != q.outCols[i] {
			return nil, fmt.Errorf("feed: pushed plan columns %v do not line up with %v", cols, q.outCols)
		}
	}
	ids := w.candidates(q)
	pos := 0
	return &tab.FuncCursor{
		Columns: q.outCols,
		NextFn: func() (*tab.Tab, error) {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if pos >= len(ids) {
				return nil, io.EOF
			}
			hi := pos + tab.DefaultStreamChunk
			if hi > len(ids) {
				hi = len(ids)
			}
			out, err := w.evalRows(q, ids[pos:hi], params)
			if err != nil {
				return nil, err
			}
			pos = hi
			return out, nil
		},
	}, nil
}
