package feed

import (
	"errors"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/tab"
)

// Fields are the normalized record fields, in document order. Every
// surviving record carries all of them; each is indexed for equality and
// prefix lookup, id uniquely.
var Fields = []string{"id", "title", "issn", "journal", "year", "publisher"}

// Stats counts one ingest run: records accepted into the store, records
// quarantined, and the quarantine reasons. Quarantine is deliberate
// degradation — a malformed record is counted and skipped, never aborts
// the feed and never reaches the indexes.
type Stats struct {
	Ingested    int
	Quarantined int
	// Reasons histograms the quarantine causes, keyed by a stable slug
	// ("decode" for undecodable lines, else the offending field name).
	Reasons map[string]int
}

func (s *Stats) quarantine(reason string) {
	s.Quarantined++
	if s.Reasons == nil {
		s.Reasons = make(map[string]int)
	}
	s.Reasons[reason]++
}

// index supports the two declared lookups on one field: equality via the
// exact map, prefix via an ordered key list. Keys hold the normalized text
// of the field value.
type index struct {
	exact map[string][]int
	keys  []string // sorted unique keys, rebuilt at the end of each Ingest
}

func (ix *index) add(key string, rec int) {
	if ix.exact == nil {
		ix.exact = make(map[string][]int)
	}
	if _, seen := ix.exact[key]; !seen {
		ix.keys = append(ix.keys, key) // sorted by Store.Ingest once the run ends
	}
	ix.exact[key] = append(ix.exact[key], rec)
}

// Store holds the ingested, normalized records and their field indexes. It
// is write-once: Ingest runs before the wrapper starts serving, reads are
// lock-free thereafter.
type Store struct {
	recs  data.Forest
	byID  map[string]int
	idx   map[string]*index
	stats Stats
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{byID: make(map[string]int), idx: make(map[string]*index)}
	for _, f := range Fields {
		s.idx[f] = &index{}
	}
	return s
}

// Ingest drains the reader into the store through an IngestCursor, one
// bounded chunk of normalized records at a time — the pipeline never holds
// more of the dump than one chunk window. Malformed records (undecodable
// lines included) are quarantined and counted, valid ones are appended and
// indexed. Only a transport error from the reader is returned — a dump full
// of garbage ingests cleanly as zero records and a large Quarantined count.
func (s *Store) Ingest(r Reader) (Stats, error) {
	cur := NewIngestCursor(r, tab.DefaultStreamChunk)
	defer cur.Close()
	var run Stats
	for {
		t, err := cur.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			s.merge(merged(run, cur.Stats()))
			return merged(run, cur.Stats()), err
		}
		for _, row := range t.Rows {
			rec, ok := recordOf(row)
			if !ok {
				run.quarantine("decode") // defensive: the cursor only yields record trees
				continue
			}
			id := rec.Child("id").Atom.S
			if _, dup := s.byID[id]; dup {
				run.quarantine("duplicate-id")
				continue
			}
			pos := len(s.recs)
			s.recs = append(s.recs, rec)
			s.byID[id] = pos
			for _, f := range Fields {
				s.idx[f].add(fieldKey(rec.Child(f)), pos)
			}
			run.Ingested++
		}
	}
	s.sealIndexes()
	run = merged(run, cur.Stats())
	s.merge(run)
	return run, nil
}

// merged combines two stat sets into a fresh one.
func merged(a, b Stats) Stats {
	out := Stats{Ingested: a.Ingested + b.Ingested, Quarantined: a.Quarantined + b.Quarantined}
	for k, v := range a.Reasons {
		if out.Reasons == nil {
			out.Reasons = make(map[string]int)
		}
		out.Reasons[k] += v
	}
	for k, v := range b.Reasons {
		if out.Reasons == nil {
			out.Reasons = make(map[string]int)
		}
		out.Reasons[k] += v
	}
	return out
}

// merge folds a run's stats into the store's cumulative stats.
func (s *Store) merge(run Stats) {
	s.stats.Ingested += run.Ingested
	s.stats.Quarantined += run.Quarantined
	for k, v := range run.Reasons {
		if s.stats.Reasons == nil {
			s.stats.Reasons = make(map[string]int)
		}
		s.stats.Reasons[k] += v
	}
}

func (s *Store) sealIndexes() {
	for _, ix := range s.idx {
		sort.Strings(ix.keys)
	}
}

// normalizeRecord validates and canonicalizes one decoded record, returning
// the normalized copy or the quarantine reason. The rules: the element must
// be a <record> carrying every normalized field exactly once; id and title
// must be non-empty after whitespace collapsing; the issn must pass its
// checksum and is rewritten in canonical NNNN-NNNC form; the year must be
// an integer in [1400, 2100] and is stored as an Int atom.
func normalizeRecord(n *data.Node) (*data.Node, string) {
	if n.Label != "record" {
		return nil, "not-a-record"
	}
	out := data.Elem("record")
	for _, f := range Fields {
		kids := n.Children(f)
		if len(kids) != 1 {
			return nil, f
		}
		a, ok := kids[0].AtomValue()
		if !ok {
			return nil, f
		}
		switch f {
		case "year":
			var y int64
			switch a.Kind {
			case data.KindInt:
				y = a.I
			case data.KindString:
				v, err := strconv.ParseInt(strings.TrimSpace(a.S), 10, 64)
				if err != nil {
					return nil, f
				}
				y = v
			default:
				return nil, f
			}
			if y < 1400 || y > 2100 {
				return nil, f
			}
			out.Add(data.IntLeaf("year", y))
		case "issn":
			canon, err := NormalizeISSN(a.Text())
			if err != nil {
				return nil, f
			}
			out.Add(data.Text("issn", canon))
		default:
			v := collapseSpace(a.Text())
			if v == "" && (f == "id" || f == "title") {
				return nil, f
			}
			out.Add(data.Text(f, v))
		}
	}
	return out, ""
}

// collapseSpace trims and collapses internal whitespace runs to one space.
func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// fieldKey is the index key of a normalized field leaf: its textual form.
func fieldKey(n *data.Node) string {
	if n == nil || n.Atom == nil {
		return ""
	}
	return n.Atom.Text()
}

// Len returns the number of ingested records.
func (s *Store) Len() int { return len(s.recs) }

// Record returns the i-th ingested record.
func (s *Store) Record(i int) *data.Node { return s.recs[i] }

// Stats returns the cumulative ingest statistics.
func (s *Store) Stats() Stats { return s.stats }

// Indexed reports whether the field has an index (every normalized field
// does; anything else answers mediator-side).
func (s *Store) Indexed(field string) bool { _, ok := s.idx[field]; return ok }

// ByField returns the records whose field equals the key exactly.
func (s *Store) ByField(field, key string) []int {
	if ix, ok := s.idx[field]; ok {
		return ix.exact[key]
	}
	return nil
}

// ByPrefix returns the records whose field starts with the prefix, using
// the ordered key list: one binary search, then a scan of matching keys.
func (s *Store) ByPrefix(field, prefix string) []int {
	ix, ok := s.idx[field]
	if !ok {
		return nil
	}
	var out []int
	from := sort.SearchStrings(ix.keys, prefix)
	for _, k := range ix.keys[from:] {
		if !strings.HasPrefix(k, prefix) {
			break
		}
		out = append(out, ix.exact[k]...)
	}
	sort.Ints(out)
	return out
}

// LookupID resolves a record by its unique id — the fetch-by-id operation.
func (s *Store) LookupID(id string) (int, bool) {
	i, ok := s.byID[id]
	return i, ok
}
