package feed

import (
	"errors"
	"io"

	"repro/internal/data"
	"repro/internal/tab"
)

// IngestCursor bridges a dump Reader into the engine's chunk-pull cursor
// contract: each Next decodes, normalizes and validates at most one chunk of
// records, so the window of live dump data is one chunk regardless of dump
// size. Malformed records (undecodable lines included) are quarantined into
// the cursor's Stats as they are encountered — the stream never aborts on
// bad input, only on transport errors.
//
// The cursor yields one column, "record", holding the normalized record
// tree. Store.Ingest drains one; callers wanting a raw normalized stream
// (benchmarks, future bulk loads) can drain it themselves.
type IngestCursor struct {
	r      Reader
	chunk  int
	stats  Stats
	closed bool
}

// NewIngestCursor returns an ingest cursor over the reader, yielding chunks
// of at most chunk records (DefaultStreamChunk when chunk < 1). Closing the
// cursor closes the reader.
func NewIngestCursor(r Reader, chunk int) *IngestCursor {
	if chunk < 1 {
		chunk = tab.DefaultStreamChunk
	}
	return &IngestCursor{r: r, chunk: chunk}
}

// Cols implements tab.Cursor.
func (c *IngestCursor) Cols() []string { return []string{"record"} }

// Next implements tab.Cursor: the next chunk of normalized records, io.EOF
// once the dump is exhausted. Quarantined records are counted, never
// yielded, and never end a chunk early on their own.
func (c *IngestCursor) Next() (*tab.Tab, error) {
	if c.closed {
		return nil, io.EOF
	}
	out := tab.New("record")
	for out.Len() < c.chunk {
		n, err := c.r.Next()
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			if out.Len() > 0 {
				return out, nil
			}
			return nil, io.EOF
		default:
			var mal *MalformedError
			if errors.As(err, &mal) {
				c.stats.quarantine("decode")
				continue
			}
			return nil, err
		}
		rec, reason := normalizeRecord(n)
		if reason != "" {
			c.stats.quarantine(reason)
			continue
		}
		out.AddRow(tab.Row{tab.TreeCell(rec)})
	}
	return out, nil
}

// Close implements tab.Cursor; idempotent, closes the reader.
func (c *IngestCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.r.Close()
}

// Stats returns the quarantine counts accumulated so far. Records the
// cursor has yielded are not counted as ingested here — that is the
// consumer's call (Store.Ingest adds duplicate-id quarantines of its own).
func (c *IngestCursor) Stats() Stats { return c.stats }

// recordOf extracts the normalized record tree from a cursor row.
func recordOf(row tab.Row) (*data.Node, bool) {
	if len(row) != 1 {
		return nil, false
	}
	a := row[0]
	if a.Kind != tab.CTree || a.Tree == nil {
		return nil, false
	}
	return a.Tree, true
}
