package feed

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/pattern"
	"repro/internal/tab"
)

// Wrapper serves one ingested store over the source interfaces: the records
// document, the restricted capability profile (field-enumerating binds,
// equality and prefix selections, nothing else) and pushed evaluation
// answered from the field indexes. The store must be fully ingested before
// the wrapper starts serving; reads are lock-free.
type Wrapper struct {
	S         *Store
	SourceNme string
}

// New returns a wrapper over the store.
func New(name string, s *Store) *Wrapper {
	return &Wrapper{S: s, SourceNme: name}
}

// Name implements algebra.Source.
func (w *Wrapper) Name() string { return w.SourceNme }

// Documents implements algebra.Source: one bulk document.
func (w *Wrapper) Documents() []string { return []string{"records"} }

// Fetch implements algebra.Source: the whole feed under a records root —
// the costly path the optimizer avoids when the filter can be pushed.
func (w *Wrapper) Fetch(doc string) (data.Forest, error) {
	if doc != "records" {
		return nil, fmt.Errorf("feed: unknown document %q", doc)
	}
	root := data.Elem("records")
	root.Kids = append(root.Kids, w.S.recs...)
	return data.Forest{root}, nil
}

// ExportStructure returns the structural model of the normalized feed.
func (w *Wrapper) ExportStructure() *pattern.Model {
	return pattern.MustParseModel(`model Feed_Structure
Records := records[ *&Record ]
Record  := record[ id: String, title: String, issn: String, journal: String,
                   year: Int, publisher: String ]`)
}

// ExportInterface declares the bulk-feed capability profile, deliberately
// different from both existing families. Unlike o2 (full filters, joins,
// all comparison operators) and wais (whole-document binds, contains only),
// a feed source accepts field-enumerating binds — the filter may iterate
// records, bind whole records, and bind or constrain ground-labelled atomic
// fields — and exactly two predicates: equality (the indexed
// filter-by-field / fetch-by-id lookups) and the external prefix operation.
// No project, no join, no ordering comparisons: those stay mediator-side.
func (w *Wrapper) ExportInterface() *capability.Interface {
	i := capability.NewInterface(w.SourceNme)
	fm := capability.NewFModel("feedfmodel")
	fm.Define("Frecords", &capability.FT{
		Kind: pattern.KNode, Label: "records",
		Bind: capability.BindNone, Inst: capability.InstGround,
		Items: []capability.FTItem{{Star: true, Inst: capability.InstNone,
			F: &capability.FT{Kind: pattern.KRef, Name: "Frecord", Bind: capability.BindTree}}},
	})
	fm.Define("Frecord", &capability.FT{
		Kind: pattern.KNode, Label: "record", Bind: capability.BindTree,
		Items: []capability.FTItem{{Star: true, Inst: capability.InstAny,
			F: &capability.FT{Kind: pattern.KRef, Name: "Ffield"}}},
	})
	// Fields must be named concretely (inst=ground) and cannot carry
	// variables themselves; their single atomic child position takes a
	// content variable or a constant, and navigation below it is refused.
	fm.Define("Ffield", &capability.FT{
		Kind: pattern.KNode, AnyLabel: true,
		Bind: capability.BindNone, Inst: capability.InstGround,
		Items: []capability.FTItem{{F: &capability.FT{Kind: pattern.KUnion,
			Alts: []*capability.FT{{Kind: pattern.KInt}, {Kind: pattern.KString}}}}},
	})
	i.FModels = append(i.FModels, fm)
	i.Binds["records"] = capability.BindCap{FModel: "feedfmodel", FPattern: "Frecords"}
	i.Structures["records"] = capability.StructureRef{Model: w.ExportStructure(), Pattern: "Records"}
	i.Operations = append(i.Operations,
		capability.Operation{Name: "bind", Kind: "algebra",
			Inputs: []capability.Sig{
				{Model: "Feed_Structure", Pattern: "Records"},
				{Model: "feedfmodel", Pattern: "Frecords", IsFilter: true},
			},
			Output: &capability.Sig{Model: "yat", Pattern: "Tab"}},
		capability.Operation{Name: "select", Kind: "algebra", Docs: []string{"records"}},
		capability.Operation{Name: "eq", Kind: "boolean", Docs: []string{"records"}},
		capability.Operation{Name: "prefix", Kind: "external", Docs: []string{"records"},
			Inputs: []capability.Sig{{Leaf: "String"}, {Leaf: "String"}},
			Output: &capability.Sig{Leaf: "Bool"}},
	)
	return i
}

// Prefix is the external predicate's semantics: the first argument's text
// starts with the second. The mediator registers it so prefix predicates
// can also be evaluated mediator-side when they cannot be pushed.
func Prefix(args []tab.Cell) (tab.Cell, error) {
	if len(args) != 2 {
		return tab.Null(), fmt.Errorf("prefix expects (value, string)")
	}
	p, ok := args[1].AsAtom()
	if !ok || p.Kind != data.KindString {
		return tab.Null(), fmt.Errorf("prefix expects a string prefix argument")
	}
	return tab.AtomCell(data.Bool(strings.HasPrefix(cellText(args[0]), p.S))), nil
}

// cellText is the text a predicate sees for a cell: the atom's text, or the
// concatenated text content of a bound tree.
func cellText(c tab.Cell) string {
	if a, ok := c.AsAtom(); ok {
		return a.Text()
	}
	var b strings.Builder
	for _, n := range c.AsForest() {
		b.WriteString(n.TextContent())
	}
	return b.String()
}

// pushedPred is one pushed conjunct in compiled form: eq or prefix, with
// the operand expressions kept for per-row verification and — when one side
// is a field variable and the other a ground value — the index lookup that
// narrows the candidate records.
type pushedPred struct {
	prefix bool // prefix(l, r) rather than l = r
	l, r   algebra.Expr
	field  string // indexed field, "" when the predicate cannot use an index
	key    string // ground comparand for the index lookup
}

// pushQuery is a compiled pushed plan: the bind filter, the field each
// filter variable names (docVar maps to ""), the pushed predicates and the
// projection steps to replay on the matched rows.
type pushQuery struct {
	f        *filter.Filter
	varField map[string]string
	preds    []pushedPred
	projects [][]string
	outCols  []string
}

// compilePush validates a pushed plan against the declared capability
// shapes — Select*/Project* over Bind(records) with a field-enumerating
// filter, predicates limited to eq and prefix over bound variables,
// constants and DJoin parameters — and compiles it for evaluation.
func (w *Wrapper) compilePush(plan algebra.Op, params map[string]tab.Cell) (*pushQuery, error) {
	q := &pushQuery{outCols: plan.Columns()}
	var walk func(op algebra.Op) error
	walk = func(op algebra.Op) error {
		// yat-lint:ignore intentionally partial: accepts exactly the declared capability shapes; the default refuses the push
		switch x := op.(type) {
		case *algebra.Project:
			if err := walk(x.From); err != nil {
				return err
			}
			q.projects = append(q.projects, x.Cols)
			return nil
		case *algebra.Select:
			if err := walk(x.From); err != nil {
				return err
			}
			for _, conj := range algebra.SplitConj(x.Pred) {
				p, err := w.compilePred(q, conj, params)
				if err != nil {
					return err
				}
				q.preds = append(q.preds, p)
			}
			return nil
		case *algebra.Bind:
			if x.Doc != "records" || x.From != nil {
				return fmt.Errorf("feed: only binds over records can be pushed")
			}
			vf, err := fieldVarsOf(x.F.Root)
			if err != nil {
				return err
			}
			q.f = x.F
			q.varField = vf
			return nil
		default:
			return fmt.Errorf("feed: operator %T cannot be pushed", op)
		}
	}
	if err := walk(plan); err != nil {
		return nil, err
	}
	return q, nil
}

// compilePred compiles one conjunct: an equality comparison or a prefix
// call. Operands must be variables (bound by the filter or arriving as
// DJoin parameters) or constants; when a field variable meets a ground
// value, the predicate is annotated for index lookup.
func (w *Wrapper) compilePred(q *pushQuery, e algebra.Expr, params map[string]tab.Cell) (pushedPred, error) {
	switch x := e.(type) {
	case algebra.Cmp:
		if x.Op != algebra.OpEq {
			return pushedPred{}, fmt.Errorf("feed: only equality comparisons can be pushed, got %s", e)
		}
		p := pushedPred{l: x.L, r: x.R}
		w.annotateIndex(q, &p, params)
		return p, nil
	case algebra.Call:
		if x.Name != "prefix" || len(x.Args) != 2 {
			return pushedPred{}, fmt.Errorf("feed: only prefix predicates can be pushed, got %s", e)
		}
		p := pushedPred{prefix: true, l: x.Args[0], r: x.Args[1]}
		w.annotateIndex(q, &p, params)
		return p, nil
	default:
		return pushedPred{}, fmt.Errorf("feed: predicate %s cannot be pushed", e)
	}
}

// annotateIndex marks a predicate for index lookup when one operand is a
// field-bound variable and the other resolves to a ground atom. Equality is
// symmetric; prefix only indexes through its first argument.
func (w *Wrapper) annotateIndex(q *pushQuery, p *pushedPred, params map[string]tab.Cell) {
	try := func(fe, ge algebra.Expr) bool {
		v, ok := fe.(algebra.Var)
		if !ok {
			return false
		}
		field, bound := q.varField[v.Name]
		if !bound || field == "" || !w.S.Indexed(field) {
			return false
		}
		key, ok := groundText(ge, q, params)
		if !ok {
			return false
		}
		p.field, p.key = field, key
		return true
	}
	if try(p.l, p.r) {
		return
	}
	if !p.prefix {
		try(p.r, p.l)
	}
}

// groundText resolves an expression to ground text: a constant, or a
// variable answered by the DJoin parameters (a variable the filter binds is
// not ground — it varies per row).
func groundText(e algebra.Expr, q *pushQuery, params map[string]tab.Cell) (string, bool) {
	switch x := e.(type) {
	case algebra.Const:
		return x.Atom.Text(), true
	case algebra.Var:
		if _, bound := q.varField[x.Name]; bound {
			return "", false
		}
		if c, ok := params[x.Name]; ok {
			if a, ok := c.AsAtom(); ok {
				return a.Text(), true
			}
		}
		return "", false
	default:
		return "", false
	}
}

// fieldVarsOf validates the bind filter against the exported shape —
// records[ *record(@$r)[ field: $v | field: const ... ] ] — and maps every
// variable to the field it binds ("" for the record tree variable).
func fieldVarsOf(root *filter.FNode) (map[string]string, error) {
	if root.Label != "records" || root.Var != "" || root.LabelVar != "" {
		return nil, fmt.Errorf("feed: filter must match the records root without binding it")
	}
	if len(root.Items) != 1 || !root.Items[0].Star {
		return nil, fmt.Errorf("feed: filter must iterate records (*record[...])")
	}
	it := root.Items[0]
	if it.CollectVar != "" {
		return nil, fmt.Errorf("feed: collect-star push is not supported")
	}
	rec := it.F
	if rec.Label != "record" || rec.LabelVar != "" {
		return nil, fmt.Errorf("feed: only record elements can be iterated")
	}
	vars := map[string]string{}
	if rec.Var != "" {
		vars[rec.Var] = ""
	}
	for _, fi := range rec.Items {
		if fi.Star || fi.Descend || fi.CollectVar != "" {
			return nil, fmt.Errorf("feed: record fields must be enumerated concretely")
		}
		fn := fi.F
		if fn.Label == "" || fn.AnyLabel || fn.LabelVar != "" || fn.Var != "" {
			return nil, fmt.Errorf("feed: fields must be named concretely and not bound as trees")
		}
		if len(fn.Items) == 0 {
			continue // bare existence requirement, nothing to bind
		}
		if len(fn.Items) != 1 || fn.Items[0].Star || fn.Items[0].F == nil {
			return nil, fmt.Errorf("feed: field %s must constrain its content only", fn.Label)
		}
		content := fn.Items[0].F
		if len(content.Items) > 0 || content.Label != "" {
			return nil, fmt.Errorf("feed: navigation below field %s is not supported", fn.Label)
		}
		if content.Var != "" {
			if prev, dup := vars[content.Var]; dup && prev != fn.Label {
				return nil, fmt.Errorf("feed: variable %s bound to two fields", content.Var)
			}
			vars[content.Var] = fn.Label
		}
	}
	return vars, nil
}

// candidates returns the record positions the pushed predicates allow,
// intersecting one index lookup per annotated predicate; nil means every
// record (a bare bind is a scan — still correct, just not narrowed).
func (w *Wrapper) candidates(q *pushQuery) []int {
	var ids []int
	first := true
	for i := range q.preds {
		p := &q.preds[i]
		if p.field == "" {
			continue
		}
		var hit []int
		if p.prefix {
			hit = w.S.ByPrefix(p.field, p.key)
		} else {
			hit = w.S.ByField(p.field, p.key)
		}
		if first {
			ids, first = hit, false
			continue
		}
		ids = intersect(ids, hit)
	}
	if first {
		ids = make([]int, w.S.Len())
		for i := range ids {
			ids[i] = i
		}
	}
	return ids
}

// intersect merges two ascending id lists.
func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// evalRows matches the bind filter against the candidate records and
// verifies every pushed predicate per binding row (index lookups narrow,
// the predicates decide), then replays the projection steps.
func (w *Wrapper) evalRows(q *pushQuery, ids []int, params map[string]tab.Cell) (*tab.Tab, error) {
	root := data.Elem("records")
	for _, id := range ids {
		root.Kids = append(root.Kids, w.S.recs[id])
	}
	t := q.f.MatchForest(nil, data.Forest{root})
	if len(q.preds) > 0 {
		kept := tab.New(t.Cols...)
		for _, row := range t.Rows {
			ok, err := q.holds(t, row, params)
			if err != nil {
				return nil, err
			}
			if ok {
				kept.AddRow(row)
			}
		}
		t = kept
	}
	for _, cols := range q.projects {
		t = t.Project(cols...)
	}
	if len(t.Cols) != len(q.outCols) {
		return nil, fmt.Errorf("feed: pushed plan columns %v do not line up with %v", t.Cols, q.outCols)
	}
	for i, c := range t.Cols {
		if c != q.outCols[i] {
			return nil, fmt.Errorf("feed: pushed plan columns %v do not line up with %v", t.Cols, q.outCols)
		}
	}
	return t, nil
}

// holds evaluates every pushed predicate on one binding row.
func (q *pushQuery) holds(t *tab.Tab, row tab.Row, params map[string]tab.Cell) (bool, error) {
	for i := range q.preds {
		p := &q.preds[i]
		l, err := operand(p.l, t, row, params)
		if err != nil {
			return false, err
		}
		r, err := operand(p.r, t, row, params)
		if err != nil {
			return false, err
		}
		if p.prefix {
			pa, ok := r.AsAtom()
			if !ok || pa.Kind != data.KindString {
				return false, fmt.Errorf("feed: prefix expects a string prefix argument")
			}
			if !strings.HasPrefix(cellText(l), pa.S) {
				return false, nil
			}
			continue
		}
		if !l.Equal(r) {
			return false, nil
		}
	}
	return true, nil
}

// operand resolves one predicate operand on a row: a constant, a variable
// bound by the filter, or a DJoin parameter.
func operand(e algebra.Expr, t *tab.Tab, row tab.Row, params map[string]tab.Cell) (tab.Cell, error) {
	switch x := e.(type) {
	case algebra.Const:
		return tab.AtomCell(x.Atom), nil
	case algebra.Var:
		if i := t.ColIndex(x.Name); i >= 0 {
			return row[i], nil
		}
		if c, ok := params[x.Name]; ok {
			return c, nil
		}
		return tab.Null(), fmt.Errorf("feed: predicate variable %s is not bound", x.Name)
	default:
		return tab.Null(), fmt.Errorf("feed: unsupported predicate operand %T", e)
	}
}

// Push implements algebra.Source: compile, narrow through the indexes,
// match, verify, project.
func (w *Wrapper) Push(plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	q, err := w.compilePush(plan, params)
	if err != nil {
		return nil, err
	}
	return w.evalRows(q, w.candidates(q), params)
}
