package feed_test

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/feed"
	"repro/internal/filter"
	"repro/internal/pattern"
	"repro/internal/tab"
)

func TestNormalizeISSN(t *testing.T) {
	cases := []struct{ in, want string }{
		{"0378-5955", "0378-5955"},
		{"03785955", "0378-5955"},
		{"0378 5955", "0378-5955"},
		{"2434-561x", "2434-561X"},
	}
	for _, c := range cases {
		got, err := feed.NormalizeISSN(c.in)
		if err != nil || got != c.want {
			t.Errorf("NormalizeISSN(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"0378-5954", "0378-595", "0378-59555", "03x8-5955", "0378_5955", ""} {
		if _, err := feed.NormalizeISSN(bad); err == nil {
			t.Errorf("NormalizeISSN(%q) must fail", bad)
		}
	}
}

func TestISSNCheckDigitMintsValid(t *testing.T) {
	for _, seven := range []string{"0378595", "2434561", "0000000", "9999999"} {
		c, err := feed.ISSNCheckDigit(seven)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := feed.NormalizeISSN(seven + string(c)); err != nil {
			t.Errorf("minted issn %s%c does not verify: %v", seven, c, err)
		}
	}
}

const goodLine = `<record><id>rec-1</id><title>Painting 1</title><issn>0378-5955</issn><journal>Journal of Modern Art</journal><year>1901</year><publisher>Musee Press</publisher></record>`

// TestNDXMLReaderQuarantine pins the recoverable-error contract: a broken
// line surfaces as *MalformedError naming the entry and line, and the
// reader keeps yielding records past it.
func TestNDXMLReaderQuarantine(t *testing.T) {
	dump := goodLine + "\n\n<record><id>x</id><title>\n" + strings.ReplaceAll(goodLine, "rec-1", "rec-2") + "\n"
	r := feed.NewNDXML(strings.NewReader(dump), "t.ndxml")
	defer r.Close()
	if n, err := r.Next(); err != nil || n.Label != "record" {
		t.Fatalf("first record: %v, %v", n, err)
	}
	_, err := r.Next()
	mal, ok := err.(*feed.MalformedError)
	if !ok {
		t.Fatalf("want *MalformedError, got %v", err)
	}
	if mal.Entry != "t.ndxml" || mal.Line != 3 {
		t.Errorf("malformed at %s line %d, want t.ndxml line 3", mal.Entry, mal.Line)
	}
	if n, err := r.Next(); err != nil || n.Child("id").Atom.S != "rec-2" {
		t.Fatalf("reader must continue past a malformed line: %v, %v", n, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

// TestZipMatchesNDXML pins that the two dump formats ingest identically.
func TestZipMatchesNDXML(t *testing.T) {
	c := datagen.GenerateFeed(datagen.FeedParams{Records: 200, MalformedPct: 10, Seed: 7})
	var nd strings.Builder
	if err := c.WriteNDXML(&nd); err != nil {
		t.Fatal(err)
	}
	var zb bytes.Buffer
	if err := c.WriteZip(&zb, 3); err != nil {
		t.Fatal(err)
	}
	s1 := feed.NewStore()
	if _, err := s1.Ingest(feed.NewNDXML(strings.NewReader(nd.String()), "c.ndxml")); err != nil {
		t.Fatal(err)
	}
	zr, err := feed.NewZip(bytes.NewReader(zb.Bytes()), int64(zb.Len()))
	if err != nil {
		t.Fatal(err)
	}
	s2 := feed.NewStore()
	if _, err := s2.Ingest(zr); err != nil {
		t.Fatal(err)
	}
	if s1.Len() != len(c.Records) || s2.Len() != len(c.Records) {
		t.Fatalf("ingested %d (ndxml) / %d (zip), want %d", s1.Len(), s2.Len(), len(c.Records))
	}
	if st1, st2 := s1.Stats(), s2.Stats(); st1.Quarantined != st2.Quarantined {
		t.Fatalf("quarantine differs across formats: %v vs %v", st1, st2)
	}
}

// TestIngestQuarantineHistogram pins the per-reason quarantine counts
// against the generator's ground truth.
func TestIngestQuarantineHistogram(t *testing.T) {
	c := datagen.GenerateFeed(datagen.FeedParams{Records: 500, MalformedPct: 12, Seed: 3})
	s := datagen.NewFeedStore(c)
	st := s.Stats()
	if st.Ingested != len(c.Records) {
		t.Fatalf("Ingested = %d, want %d", st.Ingested, len(c.Records))
	}
	wantQ := 0
	for reason, n := range c.Malformed {
		wantQ += n
		if st.Reasons[reason] != n {
			t.Errorf("Reasons[%q] = %d, want %d", reason, st.Reasons[reason], n)
		}
	}
	if st.Quarantined != wantQ {
		t.Errorf("Quarantined = %d, want %d", st.Quarantined, wantQ)
	}
	if wantQ == 0 {
		t.Fatal("corpus generated no malformed lines; raise MalformedPct")
	}
}

// TestIngestCursorBoundedChunks pins the flat-memory contract of the
// ingest bridge: every chunk is bounded, malformed records are counted in
// the cursor's stats, and the yielded records are already normalized.
func TestIngestCursorBoundedChunks(t *testing.T) {
	c := datagen.GenerateFeed(datagen.FeedParams{Records: 300, MalformedPct: 10, Seed: 11})
	var nd strings.Builder
	if err := c.WriteNDXML(&nd); err != nil {
		t.Fatal(err)
	}
	cur := feed.NewIngestCursor(feed.NewNDXML(strings.NewReader(nd.String()), "c.ndxml"), 32)
	defer cur.Close()
	total := 0
	for {
		chunk, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if chunk.Len() == 0 || chunk.Len() > 32 {
			t.Fatalf("chunk of %d rows, want 1..32", chunk.Len())
		}
		for _, row := range chunk.Rows {
			rec := row[0].Tree
			if _, err := feed.NormalizeISSN(rec.Child("issn").Atom.S); err != nil {
				t.Fatalf("cursor yielded unnormalized record: %v", err)
			}
		}
		total += chunk.Len()
	}
	// Duplicate-id quarantine happens store-side; the cursor yields those
	// records, so they count toward the total here.
	if want := len(c.Records) + c.Malformed["duplicate-id"]; total != want {
		t.Fatalf("cursor yielded %d records, want %d", total, want)
	}
	if got := cur.Stats().Quarantined; got != c.Malformed["decode"]+c.Malformed["issn"]+c.Malformed["title"]+c.Malformed["year"] {
		t.Fatalf("cursor quarantined %d, histogram %v", got, c.Malformed)
	}
}

func feedFixture(t *testing.T) (*feed.Wrapper, *datagen.FeedCorpus) {
	t.Helper()
	c := datagen.GenerateFeed(datagen.FeedParams{Records: 400, MalformedPct: 5, Seed: 42})
	return feed.New("bulkfeed", datagen.NewFeedStore(c)), c
}

func TestStoreLookups(t *testing.T) {
	w, c := feedFixture(t)
	s := w.S
	want := 0
	for _, r := range c.Records {
		if r.Journal == "Journal of Modern Art" {
			want++
		}
	}
	if got := len(s.ByField("journal", "Journal of Modern Art")); got != want {
		t.Errorf("ByField(journal) = %d rows, want %d", got, want)
	}
	wantP := 0
	for _, r := range c.Records {
		if strings.HasPrefix(r.Journal, "Journal of") {
			wantP++
		}
	}
	if got := len(s.ByPrefix("journal", "Journal of")); got != wantP {
		t.Errorf("ByPrefix(journal) = %d rows, want %d", got, wantP)
	}
	id := c.Records[17].ID
	i, ok := s.LookupID(id)
	if !ok || s.Record(i).Child("id").Atom.S != id {
		t.Errorf("LookupID(%s) failed", id)
	}
	if _, ok := s.LookupID("rec-nosuch"); ok {
		t.Error("LookupID must miss on unknown ids")
	}
}

func TestExportStructureMatchesRecords(t *testing.T) {
	w, _ := feedFixture(t)
	m := w.ExportStructure()
	if !pattern.InstanceOfModel(pattern.YATModel(), m) {
		t.Error("feed structure must instantiate the YAT metamodel")
	}
	forest, err := w.Fetch("records")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range forest[0].Kids[:10] {
		if !pattern.MatchData(m, m.Lookup("Record"), rec) {
			t.Errorf("record does not match exported structure: %s", rec)
		}
	}
}

func TestExportInterfaceProfile(t *testing.T) {
	w, _ := feedFixture(t)
	i := w.ExportInterface()
	back, err := capability.Unmarshal(capability.Marshal(i))
	if err != nil {
		t.Fatal(err)
	}
	if !back.HasOperation("eq") || !back.HasOperation("prefix") {
		t.Error("eq/prefix operations lost in the XML round trip")
	}
	if back.HasOperation("contains") || back.HasOperation("lt") || back.HasOperation("join") {
		t.Error("feed profile must not grow wais or o2 operations")
	}
	if err := back.AcceptsFilter("records", filter.MustParse(`records[ *record@$r[ title: $t, issn: $i ] ]`)); err != nil {
		t.Errorf("must accept field-enumerating binds: %v", err)
	}
	if err := back.AcceptsFilter("records", filter.MustParse(`records@$d[ *record[ title: $t ] ]`)); err == nil {
		t.Error("must reject binding the records root")
	}
	if err := back.AcceptsFilter("records", filter.MustParse(`records[ *record[ history[ technique: $x ] ] ]`)); err == nil {
		t.Error("must reject navigation below fields")
	}
}

func eqPlan(field, val string) algebra.Op {
	return &algebra.Select{
		From: &algebra.Bind{Doc: "records", F: filter.MustParse(
			`records[ *record[ id: $id, title: $t, ` + field + `: $f ] ]`)},
		Pred: algebra.MustParseExpr(`$f = "` + val + `"`),
	}
}

func TestPushEquality(t *testing.T) {
	w, c := feedFixture(t)
	res, err := w.Push(eqPlan("journal", "Revue des Beaux-Arts"), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range c.Records {
		if r.Journal == "Revue des Beaux-Arts" {
			want++
		}
	}
	if res.Len() != want {
		t.Fatalf("rows = %d, want %d", res.Len(), want)
	}
}

func TestPushFetchByID(t *testing.T) {
	w, c := feedFixture(t)
	res, err := w.Push(eqPlan("id", c.Records[3].ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("fetch-by-id rows = %d, want 1", res.Len())
	}
	if got := res.Rows[0][res.ColIndex("$t")]; got.Atom.S != c.Records[3].Title {
		t.Errorf("title = %v, want %s", got, c.Records[3].Title)
	}
}

func TestPushPrefix(t *testing.T) {
	w, c := feedFixture(t)
	plan := &algebra.Select{
		From: &algebra.Bind{Doc: "records", F: filter.MustParse(
			`records[ *record[ id: $id, journal: $j ] ]`)},
		Pred: algebra.MustParseExpr(`prefix($j, "Journal of")`),
	}
	res, err := w.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range c.Records {
		if strings.HasPrefix(r.Journal, "Journal of") {
			want++
		}
	}
	if res.Len() != want {
		t.Fatalf("prefix rows = %d, want %d", res.Len(), want)
	}
}

func TestPushParameterized(t *testing.T) {
	w, c := feedFixture(t)
	plan := &algebra.Select{
		From: &algebra.Bind{Doc: "records", F: filter.MustParse(
			`records[ *record[ id: $id, title: $t ] ]`)},
		Pred: algebra.MustParseExpr(`$id = $k`),
	}
	res, err := w.Push(plan, map[string]tab.Cell{"$k": tab.AtomCell(data.String(c.Records[9].ID))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("parameterized fetch-by-id rows = %d, want 1", res.Len())
	}
}

func TestPushRejectsBeyondProfile(t *testing.T) {
	w, _ := feedFixture(t)
	ordered := &algebra.Select{
		From: &algebra.Bind{Doc: "records", F: filter.MustParse(
			`records[ *record[ id: $id, year: $y ] ]`)},
		Pred: algebra.MustParseExpr(`$y > 1900`),
	}
	if _, err := w.Push(ordered, nil); err == nil {
		t.Error("ordering comparison must be refused")
	}
	contains := &algebra.Select{
		From: &algebra.Bind{Doc: "records", F: filter.MustParse(
			`records[ *record[ id: $id, title: $t ] ]`)},
		Pred: algebra.MustParseExpr(`contains($t, "Painting")`),
	}
	if _, err := w.Push(contains, nil); err == nil {
		t.Error("contains must be refused")
	}
	wholeDoc := &algebra.Bind{Doc: "records", F: filter.MustParse(`records@$d`)}
	if _, err := w.Push(wholeDoc, nil); err == nil {
		t.Error("binding the records root must be refused")
	}
}

func TestPushStreamMatchesPush(t *testing.T) {
	w, _ := feedFixture(t)
	plan := eqPlan("publisher", "Musee Press")
	oneShot, err := w.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := w.PushStream(context.Background(), plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	streamed := tab.New(cur.Cols()...)
	for {
		chunk, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if chunk.Len() > tab.DefaultStreamChunk {
			t.Fatalf("chunk of %d rows exceeds the stream chunk bound", chunk.Len())
		}
		streamed.Rows = append(streamed.Rows, chunk.Rows...)
	}
	if streamed.Len() != oneShot.Len() {
		t.Fatalf("streamed %d rows, one-shot %d", streamed.Len(), oneShot.Len())
	}
}

func TestPushStreamHonoursContext(t *testing.T) {
	w, _ := feedFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := w.PushStream(ctx, eqPlan("publisher", "Musee Press"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	cancel()
	if _, err := cur.Next(); err == nil || err == io.EOF {
		t.Fatalf("cancelled stream must fail, got %v", err)
	}
}

func TestPushBatch(t *testing.T) {
	w, c := feedFixture(t)
	plan := &algebra.Select{
		From: &algebra.Bind{Doc: "records", F: filter.MustParse(
			`records[ *record[ id: $id, title: $t ] ]`)},
		Pred: algebra.MustParseExpr(`$id = $k`),
	}
	bindings := []map[string]tab.Cell{
		{"$k": tab.AtomCell(data.String(c.Records[0].ID))},
		{"$k": tab.AtomCell(data.String(c.Records[1].ID))},
		{"$k": tab.AtomCell(data.String("rec-nosuch"))},
	}
	tabs, err := w.PushBatch(plan, bindings)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 || tabs[0].Len() != 1 || tabs[1].Len() != 1 || tabs[2].Len() != 0 {
		t.Fatalf("batch lens = %v", []int{tabs[0].Len(), tabs[1].Len(), tabs[2].Len()})
	}
}
