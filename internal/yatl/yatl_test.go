package yatl

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/data"
)

// view1Src is the integration program of Section 2 (view1.yat): one
// artworks document combining the O₂ trading information with the XML-Wais
// descriptive information.
const view1Src = `
# view1.yat — cultural goods integration (Section 2)
artworks() :=
MAKE doc[ *artwork($t, $c) := work[ title: $t, artist: $a, year: $y, price: $p,
          style: $s, size: $si, owners[ *owner: $o ], more: $fields ] ]
MATCH artifacts WITH set[ *class[ artifact.tuple[ title: $t, year: $y, creator: $c, price: $p,
          owners.list[ *class[ person.tuple[ name: $o, auction: $au ] ] ] ] ] ],
      works WITH works[ *work[ artist: $a, title: $t', style: $s, size: $si, *($fields) ] ]
WHERE $y > 1800 AND $c = $a AND $t = $t' ;
`

// q1Src is query Q1: what are the artifacts created at "Giverny"?
const q1Src = `
MAKE $t
MATCH artworks WITH doc[ *work[ title: $t, more.cplace: $cl ] ]
WHERE $cl = "Giverny"
`

// paperArtifacts builds the O₂ artifacts extent as exported in YAT form.
func paperArtifacts() (data.Forest, data.Forest) {
	p1 := data.Elem("class",
		data.Elem("person", data.Elem("tuple",
			data.Text("name", "Doctor X"),
			data.FloatLeaf("auction", 1500000),
		))).WithID("p1")
	p2 := data.Elem("class",
		data.Elem("person", data.Elem("tuple",
			data.Text("name", "Mme Y"),
			data.FloatLeaf("auction", 200000),
		))).WithID("p2")
	a1 := data.Elem("class",
		data.Elem("artifact", data.Elem("tuple",
			data.Text("title", "Nympheas"),
			data.IntLeaf("year", 1897),
			data.Text("creator", "Claude Monet"),
			data.FloatLeaf("price", 1500000),
			data.Elem("owners", data.Elem("list",
				data.RefNode("owner", "p1"), data.RefNode("owner", "p2"))),
		))).WithID("a1")
	a2 := data.Elem("class",
		data.Elem("artifact", data.Elem("tuple",
			data.Text("title", "Waterloo Bridge"),
			data.IntLeaf("year", 1900),
			data.Text("creator", "Claude Monet"),
			data.FloatLeaf("price", 800000),
			data.Elem("owners", data.Elem("list", data.RefNode("owner", "p1"))),
		))).WithID("a2")
	old := data.Elem("class",
		data.Elem("artifact", data.Elem("tuple",
			data.Text("title", "Old Canvas"),
			data.IntLeaf("year", 1750),
			data.Text("creator", "Anonymous"),
			data.FloatLeaf("price", 1000),
			data.Elem("owners", data.Elem("list", data.RefNode("owner", "p2"))),
		))).WithID("a3")
	artifacts := data.Forest{data.Elem("set", a1, a2, old)}
	persons := data.Forest{p1, p2}
	return artifacts, persons
}

func paperWorks() data.Forest {
	return data.Forest{data.Elem("works",
		data.Elem("work",
			data.Text("artist", "Claude Monet"),
			data.Text("title", "Nympheas"),
			data.Text("style", "Impressionist"),
			data.Text("size", "21 x 61"),
			data.Text("cplace", "Giverny"),
		),
		data.Elem("work",
			data.Text("artist", "Claude Monet"),
			data.Text("title", "Waterloo Bridge"),
			data.Text("style", "Impressionist"),
			data.Text("size", "29.2 x 46.4"),
			data.Elem("history", data.Text("technique", "Oil on canvas")),
		),
	)}
}

func paperCtx() *algebra.Context {
	ctx := algebra.NewContext()
	artifacts, persons := paperArtifacts()
	ctx.Catalog["artifacts"] = artifacts
	ctx.Catalog["persons"] = persons
	ctx.Catalog["works"] = paperWorks()
	for _, f := range []data.Forest{artifacts, persons} {
		for _, n := range f {
			ctx.Store.Register(n)
		}
	}
	return ctx
}

func TestParseView1(t *testing.T) {
	p, err := Parse(view1Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	r := p.Rules[0]
	if r.Name != "artworks" || len(r.Params) != 0 {
		t.Errorf("head = %s(%v)", r.Name, r.Params)
	}
	if len(r.Matches) != 2 || r.Matches[0].Doc != "artifacts" || r.Matches[1].Doc != "works" {
		t.Fatalf("matches = %+v", r.Matches)
	}
	if r.Where == nil || !strings.Contains(r.Where.String(), "1800") {
		t.Errorf("where = %v", r.Where)
	}
	if p.Rule("artworks") == nil || p.Rule("nope") != nil {
		t.Error("Rule lookup")
	}
}

func TestParsePrintStability(t *testing.T) {
	p := MustParse(view1Src)
	printed := p.String()
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if p2.String() != printed {
		t.Errorf("print/parse unstable:\n%s\nvs\n%s", printed, p2.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`artworks() := MATCH a WITH b[] ;`, // no MAKE
		`artworks() := MAKE x[] ;`,         // no MATCH
		`artworks := MAKE x[] MATCH a WITH b[] ;`,         // no parens
		`() := MAKE x[] MATCH a WITH b[] ;`,               // no name
		`r() := MAKE x[ MATCH a WITH b[] ;`,               // broken cons
		`r() := MAKE x[] MATCH a b[] ;`,                   // no WITH
		`r() := MAKE x[] MATCH two words WITH b[] ;`,      // bad doc name
		`r() := MAKE x[] MATCH a WITH b[ ;`,               // broken filter
		`r() := MAKE x[] MATCH a WITH b[] WHERE $x = ;`,   // broken where
		`r() := WHERE $x = 1 MAKE x[] MATCH a WITH b[] ;`, // order
		`r() := MAKE x[] WHERE $x = 1 MATCH a WITH b[] ;`, // order
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestKeywordInsideBracketsAndStrings(t *testing.T) {
	// MAKE/MATCH/WHERE appearing inside filters or strings must not split.
	src := `r() :=
MAKE doc[ note: "MATCH me WHERE you can" ]
MATCH a WITH b[ MAKEBELIEVE: $x ]
WHERE $x != "WHERE" ;`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules[0].Matches) != 1 {
		t.Errorf("matches = %d", len(p.Rules[0].Matches))
	}
}

func TestFigure5Translation(t *testing.T) {
	r := MustParse(view1Src).Rules[0]
	plan, err := Translate(&r)
	if err != nil {
		t.Fatal(err)
	}
	s := algebra.Describe(plan)
	// Figure 5 shape: Tree over Join over (Select over Bind(artifacts),
	// Bind(works)).
	want := []string{"Tree(", "Join(", "Select(", "Bind(artifacts", "Bind(works"}
	for _, frag := range want {
		if !strings.Contains(s, frag) {
			t.Errorf("plan missing %q:\n%s", frag, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Errorf("plan has %d ops, want 5:\n%s", len(lines), s)
	}
	// The Select (year > 1800) must sit directly above Bind(artifacts).
	selLine, bindLine := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "Select(") {
			selLine = i
		}
		if strings.Contains(l, "Bind(artifacts") {
			bindLine = i
		}
	}
	if bindLine != selLine+1 {
		t.Errorf("Select not directly above Bind(artifacts):\n%s", s)
	}
	// Join carries the cross-input predicates.
	if !strings.Contains(s, "$c = $a") || !strings.Contains(s, "$t = $t'") {
		t.Errorf("join predicates missing:\n%s", s)
	}
}

func TestView1Evaluation(t *testing.T) {
	ctx := paperCtx()
	r := MustParse(view1Src).Rules[0]
	plan, err := Translate(&r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("view produced %d documents", res.Len())
	}
	doc := res.Rows[0][0].Tree
	works := doc.Children("work")
	if len(works) != 2 {
		t.Fatalf("view works = %d, want 2 (Nympheas, Waterloo Bridge):\n%s",
			len(works), doc.Indent())
	}
	nym := works[0]
	if nym.Child("title").Atom.S != "Nympheas" {
		t.Errorf("first work = %s", nym)
	}
	if nym.ID == "" {
		t.Error("Skolem must identify artworks")
	}
	owners := nym.Child("owners")
	if len(owners.Kids) != 2 {
		t.Errorf("Nympheas owners = %d, want 2", len(owners.Kids))
	}
	if owners.Kids[0].Atom.S != "Doctor X" {
		t.Errorf("owner = %s", owners.Kids[0])
	}
	more := nym.Child("more")
	if more == nil || len(more.Kids) != 1 || more.Kids[0].Label != "cplace" {
		t.Errorf("more = %s", more)
	}
	// The old (year 1750) artifact is filtered out; Dancers is absent from
	// the O₂ source, so only two integrated artworks exist.
	if doc.Child("work").Child("year").Atom.I != 1897 {
		t.Errorf("year = %v", doc.Child("work").Child("year"))
	}
}

func TestQ1OverMaterializedView(t *testing.T) {
	ctx := paperCtx()
	view := MustParse(view1Src).Rules[0]
	vplan, err := Translate(&view)
	if err != nil {
		t.Fatal(err)
	}
	vres, err := vplan.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var forest data.Forest
	for _, r := range vres.Rows {
		forest = append(forest, r[0].Tree)
	}
	ctx.Catalog["artworks"] = forest

	q1, err := ParseQuery(q1Src)
	if err != nil {
		t.Fatal(err)
	}
	qplan, err := Translate(q1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := qplan.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("Q1 rows = %d\n%s", res.Len(), res)
	}
	if got := res.Rows[0][0].Tree.Atom.S; got != "Nympheas" {
		t.Errorf("Q1 answer = %q, want Nympheas", got)
	}
}

func TestTranslateUnboundWhereVariable(t *testing.T) {
	r := MustParseQuery(`MAKE $t MATCH works WITH works[ *work[ title: $t ] ] WHERE $ghost = 1`)
	plan, err := Translate(r)
	if err != nil {
		t.Fatal(err)
	}
	ctx := paperCtx()
	if _, err := plan.Eval(ctx); err == nil {
		t.Error("unbound WHERE variable must surface at evaluation")
	}
}

func TestTranslateCrossJoinWithoutPredicate(t *testing.T) {
	r := MustParseQuery(`MAKE pair[ a: $x, b: $y ]
MATCH works WITH works[ *work[ title: $x ] ],
      works WITH works[ *work[ artist: $y ] ]`)
	plan, err := Translate(r)
	if err != nil {
		t.Fatal(err)
	}
	ctx := paperCtx()
	res, err := plan.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// 2 titles x 1 distinct artist (both works are by Monet), grouped by
	// distinct ($x,$y) pairs.
	if res.Len() != 2 {
		t.Errorf("cross rows = %d\n%s", res.Len(), res)
	}
}
