// Package yatl implements the YAT_L integration language of Section 2: rules
// of the form
//
//	artworks() :=
//	MAKE  <construction>
//	MATCH <doc> WITH <filter> (, <doc> WITH <filter>)*
//	WHERE <predicate> ;
//
// and their algebraic translation (Section 3.2, Figure 5):
//
//  1. named documents are the input operations;
//  2. each MATCH statement translates into a Bind capturing its
//     filtering/binding semantics;
//  3. predicates involving various inputs translate into Joins;
//  4. other predicates translate into Selects (placed directly above the
//     Bind they concern);
//  5. the MAKE clause translates into a Tree operation.
package yatl

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/filter"
)

// Rule is one YAT_L rule: a named query. The rule name is the name of the
// document the rule defines (e.g. "artworks").
type Rule struct {
	Name    string
	Params  []string
	Make    *algebra.Cons
	Matches []Match
	Where   algebra.Expr // nil when absent
}

// Match is one `doc WITH filter` clause.
type Match struct {
	Doc string
	F   *filter.Filter
}

// Program is a sequence of rules (an integration program such as view1.yat).
type Program struct {
	Rules []Rule
}

// Rule returns the named rule, or nil.
func (p *Program) Rule(name string) *Rule {
	for i := range p.Rules {
		if p.Rules[i].Name == name {
			return &p.Rules[i]
		}
	}
	return nil
}

// String renders the program in parseable YAT_L syntax.
func (p *Program) String() string {
	var b strings.Builder
	for i := range p.Rules {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(p.Rules[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders one rule.
func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) :=\n", r.Name, strings.Join(r.Params, ", "))
	fmt.Fprintf(&b, "MAKE %s\n", r.Make)
	b.WriteString("MATCH ")
	for i, m := range r.Matches {
		if i > 0 {
			b.WriteString(",\n      ")
		}
		fmt.Fprintf(&b, "%s WITH %s", m.Doc, m.F)
	}
	if r.Where != nil {
		fmt.Fprintf(&b, "\nWHERE %s", r.Where)
	}
	b.WriteString(" ;")
	return b.String()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

// Parse parses a YAT_L program: rules terminated by ';'. Comments run from
// '#' to end of line.
func Parse(src string) (*Program, error) {
	p := &Program{}
	for _, chunk := range splitRules(src) {
		if strings.TrimSpace(chunk) == "" {
			continue
		}
		r, err := parseRule(chunk)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, *r)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("yatl: empty program")
	}
	return p, nil
}

// MustParse is Parse panicking on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseQuery parses a single anonymous query (a MAKE/MATCH/WHERE block
// without a rule head), as typed at the mediator console (e.g. Q1).
func ParseQuery(src string) (*Rule, error) {
	src = stripComments(src)
	src = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(src), ";"))
	return parseBody("query", nil, src)
}

// MustParseQuery is ParseQuery panicking on error.
func MustParseQuery(src string) *Rule {
	r, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return r
}

func stripComments(src string) string {
	lines := strings.Split(src, "\n")
	for i, l := range lines {
		inStr := false
		for j := 0; j < len(l); j++ {
			switch l[j] {
			case '"':
				inStr = !inStr
			case '#':
				if !inStr {
					lines[i] = l[:j]
					j = len(l)
				}
			}
		}
	}
	return strings.Join(lines, "\n")
}

func splitRules(src string) []string {
	src = stripComments(src)
	var out []string
	start := 0
	inStr := false
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '"':
			inStr = !inStr
		case ';':
			if !inStr {
				out = append(out, src[start:i])
				start = i + 1
			}
		}
	}
	if strings.TrimSpace(src[start:]) != "" {
		out = append(out, src[start:])
	}
	return out
}

func parseRule(src string) (*Rule, error) {
	// head: NAME '(' params ')' ':='
	idx := strings.Index(src, ":=")
	if idx < 0 {
		return nil, fmt.Errorf("yatl: rule without ':=' head in %q", firstLine(src))
	}
	head := strings.TrimSpace(src[:idx])
	open := strings.IndexByte(head, '(')
	close_ := strings.LastIndexByte(head, ')')
	if open < 0 || close_ < open {
		return nil, fmt.Errorf("yatl: malformed rule head %q", head)
	}
	name := strings.TrimSpace(head[:open])
	if name == "" {
		return nil, fmt.Errorf("yatl: rule without a name")
	}
	var params []string
	for _, pstr := range strings.Split(head[open+1:close_], ",") {
		if s := strings.TrimSpace(pstr); s != "" {
			params = append(params, s)
		}
	}
	return parseBody(name, params, src[idx+2:])
}

func firstLine(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// parseBody parses `MAKE ... MATCH ... [WHERE ...]`, locating the keywords
// at bracket depth zero and delegating the three sections to the
// construction, filter and expression parsers.
func parseBody(name string, params []string, src string) (*Rule, error) {
	makePos := keywordPos(src, "MAKE")
	matchPos := keywordPos(src, "MATCH")
	wherePos := keywordPos(src, "WHERE")
	if makePos < 0 || matchPos < 0 || matchPos < makePos {
		return nil, fmt.Errorf("yatl: rule %s must have MAKE followed by MATCH", name)
	}
	makeSrc := src[makePos+4 : matchPos]
	var matchSrc, whereSrc string
	if wherePos >= 0 {
		if wherePos < matchPos {
			return nil, fmt.Errorf("yatl: rule %s has WHERE before MATCH", name)
		}
		matchSrc = src[matchPos+5 : wherePos]
		whereSrc = src[wherePos+5:]
	} else {
		matchSrc = src[matchPos+5:]
	}
	r := &Rule{Name: name, Params: params}
	cons, err := algebra.ParseCons(strings.TrimSpace(makeSrc))
	if err != nil {
		return nil, fmt.Errorf("yatl: rule %s MAKE: %w", name, err)
	}
	r.Make = cons
	for _, clause := range splitTop(matchSrc) {
		parts := splitKeyword(clause, "WITH")
		if parts == nil {
			return nil, fmt.Errorf("yatl: rule %s: MATCH clause %q lacks WITH", name, firstLine(clause))
		}
		doc := strings.TrimSpace(parts[0])
		if doc == "" || strings.ContainsAny(doc, " \t\n") {
			return nil, fmt.Errorf("yatl: rule %s: bad document name %q", name, doc)
		}
		f, err := filter.Parse(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("yatl: rule %s MATCH %s: %w", name, doc, err)
		}
		r.Matches = append(r.Matches, Match{Doc: doc, F: f})
	}
	if len(r.Matches) == 0 {
		return nil, fmt.Errorf("yatl: rule %s has no MATCH clauses", name)
	}
	if strings.TrimSpace(whereSrc) != "" {
		e, err := algebra.ParseExpr(strings.TrimSpace(whereSrc))
		if err != nil {
			return nil, fmt.Errorf("yatl: rule %s WHERE: %w", name, err)
		}
		r.Where = e
	}
	return r, nil
}

// keywordPos finds a top-level (bracket depth 0, outside strings) keyword
// occurrence delimited by non-word characters. It returns -1 when absent.
func keywordPos(src, kw string) int {
	depth, inStr := 0, false
	for i := 0; i+len(kw) <= len(src); i++ {
		c := src[i]
		switch c {
		case '"':
			inStr = !inStr
			continue
		case '[', '(':
			if !inStr {
				depth++
			}
			continue
		case ']', ')':
			if !inStr {
				depth--
			}
			continue
		}
		if inStr || depth != 0 {
			continue
		}
		if src[i:i+len(kw)] == kw &&
			(i == 0 || !isWordByte(src[i-1])) &&
			(i+len(kw) == len(src) || !isWordByte(src[i+len(kw)])) {
			return i
		}
	}
	return -1
}

// splitTop splits on commas at bracket depth zero.
func splitTop(src string) []string {
	var out []string
	depth, inStr, start := 0, false, 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '"':
			inStr = !inStr
		case '[', '(':
			if !inStr {
				depth++
			}
		case ']', ')':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				out = append(out, src[start:i])
				start = i + 1
			}
		}
	}
	if strings.TrimSpace(src[start:]) != "" {
		out = append(out, src[start:])
	}
	return out
}

func splitKeyword(src, kw string) []string {
	i := keywordPos(src, kw)
	if i < 0 {
		return nil
	}
	return []string{src[:i], src[i+len(kw):]}
}

func isWordByte(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// ---------------------------------------------------------------------------
// Algebraic translation (Section 3.2)
// ---------------------------------------------------------------------------

// Translate turns a rule into its algebraic plan, following the five
// translation steps of Section 3.2. The resulting shape for the view1 rule
// is exactly Figure 5: Bind leaves, per-input Selects, Joins for
// cross-input predicates, a Tree on top.
func Translate(r *Rule) (algebra.Op, error) {
	if len(r.Matches) == 0 {
		return nil, fmt.Errorf("yatl: rule %s has no inputs", r.Name)
	}
	conjuncts := algebra.SplitConj(orTrue(r.Where))
	used := make([]bool, len(conjuncts))

	// Step 1+2: one Bind per MATCH clause over its named document.
	plans := make([]algebra.Op, len(r.Matches))
	varsOf := make([]map[string]bool, len(r.Matches))
	for i, m := range r.Matches {
		plans[i] = &algebra.Bind{Doc: m.Doc, F: m.F}
		varsOf[i] = varSet(m.F.Vars())
	}
	// Step 4 (applied early, as in Figure 5): single-input predicates
	// become Selects directly above their Bind.
	for i := range plans {
		var mine []algebra.Expr
		for ci, c := range conjuncts {
			if used[ci] {
				continue
			}
			if coveredBy(c, varsOf[i]) {
				mine = append(mine, c)
				used[ci] = true
			}
		}
		if len(mine) > 0 {
			plans[i] = &algebra.Select{From: plans[i], Pred: algebra.Conj(mine...)}
		}
	}
	// Step 3: fold the inputs left to right with Joins carrying the
	// cross-input predicates that become applicable.
	cur := plans[0]
	curVars := varsOf[0]
	for i := 1; i < len(plans); i++ {
		merged := union(curVars, varsOf[i])
		var preds []algebra.Expr
		for ci, c := range conjuncts {
			if used[ci] {
				continue
			}
			if coveredBy(c, merged) {
				preds = append(preds, c)
				used[ci] = true
			}
		}
		cur = &algebra.Join{L: cur, R: plans[i], Pred: algebra.Conj(preds...)}
		curVars = merged
	}
	// Any leftover predicate (e.g. referencing an unknown variable) is a
	// final Select so that evaluation reports the unbound variable.
	var rest []algebra.Expr
	for ci, c := range conjuncts {
		if !used[ci] {
			rest = append(rest, c)
		}
	}
	if len(rest) > 0 {
		cur = &algebra.Select{From: cur, Pred: algebra.Conj(rest...)}
	}
	// Step 5: MAKE translates into a Tree operation.
	return &algebra.TreeOp{From: cur, C: r.Make}, nil
}

func orTrue(e algebra.Expr) algebra.Expr {
	if e == nil {
		return algebra.TrueExpr()
	}
	return e
}

func varSet(vs []string) map[string]bool {
	m := make(map[string]bool, len(vs))
	for _, v := range vs {
		m[v] = true
	}
	return m
}

func union(a, b map[string]bool) map[string]bool {
	m := make(map[string]bool, len(a)+len(b))
	for k := range a {
		m[k] = true
	}
	for k := range b {
		m[k] = true
	}
	return m
}

func coveredBy(e algebra.Expr, vars map[string]bool) bool {
	for _, v := range e.Vars() {
		if !vars[v] {
			return false
		}
	}
	return true
}
