package optimizer

import (
	"strings"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/pattern"
)

// ---------------------------------------------------------------------------
// Selection pushdown
// ---------------------------------------------------------------------------

// pushSelections moves selection conjuncts as close to the leaves as their
// variables allow, and merges adjacent Selects. It rebuilds the plan
// bottom-up.
func pushSelections(op algebra.Op) algebra.Op {
	op = rebuildChildren(op, pushSelections)
	sel, ok := op.(*algebra.Select)
	if !ok {
		return op
	}
	conjs := algebra.SplitConj(sel.Pred)
	child, rest := sink(sel.From, conjs)
	if len(rest) == 0 {
		return child
	}
	return &algebra.Select{From: child, Pred: algebra.Conj(rest...)}
}

// sink pushes the given conjuncts into op where possible; it returns the
// rebuilt operator and the conjuncts that could not be placed below.
func sink(op algebra.Op, conjs []algebra.Expr) (algebra.Op, []algebra.Expr) {
	// yat-lint:ignore intentionally partial: operators without a sink rule keep the selection above them (default)
	switch x := op.(type) {
	case *algebra.Select:
		// Merge and retry below.
		return sink(x.From, append(algebra.SplitConj(x.Pred), conjs...))
	case *algebra.Join:
		lcols, rcols := colSet(x.L.Columns()), colSet(x.R.Columns())
		var lp, rp, here []algebra.Expr
		for _, c := range conjs {
			switch {
			case covered(c, lcols):
				lp = append(lp, c)
			case covered(c, rcols):
				rp = append(rp, c)
			default:
				here = append(here, c)
			}
		}
		l, lrest := sink(x.L, lp)
		r, rrest := sink(x.R, rp)
		join := &algebra.Join{L: wrapSelect(l, lrest), R: wrapSelect(r, rrest), Pred: x.Pred}
		if len(here) > 0 {
			return &algebra.Select{From: join, Pred: algebra.Conj(here...)}, nil
		}
		return join, nil
	case *algebra.DJoin:
		// The right side of a DJoin sees left columns as parameters; only
		// left-covered conjuncts sink safely into the left side.
		lcols := colSet(x.L.Columns())
		var lp, rest []algebra.Expr
		for _, c := range conjs {
			if covered(c, lcols) {
				lp = append(lp, c)
			} else {
				rest = append(rest, c)
			}
		}
		l, lrest := sink(x.L, lp)
		return &algebra.DJoin{L: wrapSelect(l, lrest), R: x.R}, rest
	case *algebra.Distinct:
		child, rest := sink(x.From, conjs)
		return &algebra.Distinct{From: wrapSelect(child, rest)}, nil
	case *algebra.Project:
		// Rewrite conjunct variables through the renames; conjuncts whose
		// variables all survive below the projection sink through it.
		toSrc := map[string]string{}
		for _, c := range x.Cols {
			name, src := c, c
			if i := strings.IndexByte(c, '='); i >= 0 {
				name, src = c[:i], c[i+1:]
			}
			toSrc[name] = src
		}
		var down []algebra.Expr
		var stay []algebra.Expr
		for _, c := range conjs {
			if r, ok := renameExpr(c, toSrc); ok {
				down = append(down, r)
			} else {
				stay = append(stay, c)
			}
		}
		child, rest := sink(x.From, down)
		return &algebra.Project{From: wrapSelect(child, rest), Cols: x.Cols}, stay
	case *algebra.Bind:
		if x.From == nil {
			return op, conjs
		}
		// Conjuncts over the input columns can sink below the Bind.
		below := colSet(x.From.Columns())
		var lp, rest []algebra.Expr
		for _, c := range conjs {
			if covered(c, below) {
				lp = append(lp, c)
			} else {
				rest = append(rest, c)
			}
		}
		child, lrest := sink(x.From, lp)
		return &algebra.Bind{From: wrapSelect(child, lrest), Doc: x.Doc, Col: x.Col, F: x.F}, rest
	default:
		return op, conjs
	}
}

// wrapSelect places the conjuncts directly above op (they could not sink
// deeper but belong to this branch).
func wrapSelect(op algebra.Op, conjs []algebra.Expr) algebra.Op {
	if len(conjs) == 0 {
		return op
	}
	return &algebra.Select{From: op, Pred: algebra.Conj(conjs...)}
}

func colSet(cols []string) map[string]bool {
	m := make(map[string]bool, len(cols))
	for _, c := range cols {
		m[c] = true
	}
	return m
}

func covered(e algebra.Expr, cols map[string]bool) bool {
	for _, v := range e.Vars() {
		if !cols[v] {
			return false
		}
	}
	return true
}

// rebuildChildren maps fn over an operator's children, rebuilding the node.
func rebuildChildren(op algebra.Op, fn func(algebra.Op) algebra.Op) algebra.Op {
	switch x := op.(type) {
	case *algebra.Select:
		return &algebra.Select{From: fn(x.From), Pred: x.Pred}
	case *algebra.Project:
		return &algebra.Project{From: fn(x.From), Cols: x.Cols}
	case *algebra.MapExpr:
		return &algebra.MapExpr{From: fn(x.From), Col: x.Col, E: x.E}
	case *algebra.Join:
		return &algebra.Join{L: fn(x.L), R: fn(x.R), Pred: x.Pred}
	case *algebra.DJoin:
		return &algebra.DJoin{L: fn(x.L), R: fn(x.R)}
	case *algebra.Union:
		return &algebra.Union{L: fn(x.L), R: fn(x.R)}
	case *algebra.Intersect:
		return &algebra.Intersect{L: fn(x.L), R: fn(x.R)}
	case *algebra.Distinct:
		return &algebra.Distinct{From: fn(x.From)}
	case *algebra.Group:
		return &algebra.Group{From: fn(x.From), Keys: x.Keys, Into: x.Into}
	case *algebra.Sort:
		return &algebra.Sort{From: fn(x.From), Cols: x.Cols}
	case *algebra.TreeOp:
		return &algebra.TreeOp{From: fn(x.From), C: x.C, OutCol: x.OutCol}
	case *algebra.Bind:
		if x.From != nil {
			return &algebra.Bind{From: fn(x.From), Doc: x.Doc, Col: x.Col, F: x.F}
		}
		return op
	case *algebra.SourceQuery:
		return op // pushed plans are opaque to mediator rewriting
	case *algebra.Doc, *algebra.Literal:
		return op // leaves
	default:
		return op
	}
}

// ---------------------------------------------------------------------------
// Projection pruning and source-branch elimination
// ---------------------------------------------------------------------------

// pruneColumns walks top-down with the set of columns needed above each
// operator, narrowing projections and — under a declared containment
// assumption — eliminating join branches none of whose columns are needed
// (the source pruning of Figure 8).
func (o *Optimizer) pruneColumns(op algebra.Op, needed map[string]bool) algebra.Op {
	// yat-lint:ignore intentionally partial: operators without a pruning rule conservatively need all their columns (default)
	switch x := op.(type) {
	case *algebra.Project:
		// Columns feeding the projection. The projection itself narrows to
		// the needed columns: keeping a column the parent pruned away would
		// reference data the pruned input no longer produces.
		below := map[string]bool{}
		cols := make([]string, 0, len(x.Cols))
		for _, c := range x.Cols {
			name, src := c, c
			if i := strings.IndexByte(c, '='); i >= 0 {
				name, src = c[:i], c[i+1:]
			}
			if needed[name] {
				below[src] = true
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 && len(x.Cols) > 0 {
			// Nothing above needs any column (e.g. a constant construction):
			// keep one so the plan stays well-formed.
			c := x.Cols[0]
			src := c
			if i := strings.IndexByte(c, '='); i >= 0 {
				src = c[i+1:]
			}
			below[src] = true
			cols = []string{c}
		}
		return &algebra.Project{From: o.pruneColumns(x.From, below), Cols: cols}
	case *algebra.Select:
		n2 := union(needed, varSet(x.Pred.Vars()))
		return &algebra.Select{From: o.pruneColumns(x.From, n2), Pred: x.Pred}
	case *algebra.MapExpr:
		n2 := union(needed, varSet(x.E.Vars()))
		return &algebra.MapExpr{From: o.pruneColumns(x.From, n2), Col: x.Col, E: x.E}
	case *algebra.Join:
		n2 := union(needed, varSet(x.Pred.Vars()))
		lcols, rcols := colSet(x.L.Columns()), colSet(x.R.Columns())
		if repl, ok := o.pruneJoinBranch(x, x.L, x.R, needed); ok {
			return o.pruneColumns(repl, colSet(repl.Columns()))
		}
		if repl, ok := o.pruneJoinBranch(x, x.R, x.L, needed); ok {
			return o.pruneColumns(repl, colSet(repl.Columns()))
		}
		return &algebra.Join{
			L:    o.pruneColumns(x.L, intersect(n2, lcols)),
			R:    o.pruneColumns(x.R, intersect(n2, rcols)),
			Pred: x.Pred,
		}
	case *algebra.DJoin:
		rfree := freeVars(x.R)
		n2 := union(needed, rfree)
		return &algebra.DJoin{
			L: o.pruneColumns(x.L, intersect(n2, colSet(x.L.Columns()))),
			R: x.R,
		}
	case *algebra.Distinct:
		return &algebra.Distinct{From: o.pruneColumns(x.From, needed)}
	case *algebra.Bind:
		if x.From == nil {
			return o.simplifyBindFilter(x, needed)
		}
		n2 := union(needed, map[string]bool{x.Col: true})
		return &algebra.Bind{From: o.pruneColumns(x.From, n2), Doc: x.Doc, Col: x.Col,
			F: x.F}
	case *algebra.TreeOp:
		return &algebra.TreeOp{From: o.pruneColumns(x.From, varSet(x.C.AllVars())), C: x.C, OutCol: x.OutCol}
	default:
		return rebuildChildren(op, func(c algebra.Op) algebra.Op {
			return o.pruneColumns(c, colSet(c.Columns()))
		})
	}
}

// pruneJoinBranch eliminates the drop side of a join (Figure 8's source
// pruning) when (i) a containment assumption declares the join lossless for
// the kept side — e.g. "all artifacts are available in the XML source" —
// and (ii) every needed column coming from the dropped side can be sourced
// from the kept side through a join equality ($t from $t'). The replacement
// is a Project over the kept side carrying those renames.
func (o *Optimizer) pruneJoinBranch(j *algebra.Join, drop, keep algebra.Op, needed map[string]bool) (algebra.Op, bool) {
	a := o.assumed(drop, keep)
	if a == nil {
		return nil, false
	}
	// Every selection inside the dropped branch must be absorbed by the
	// assumption; otherwise dropping it would un-filter the result.
	absorbed := map[string]bool{}
	for _, p := range a.Modulo {
		absorbed[p] = true
	}
	sound := true
	algebra.Walk(drop, func(n algebra.Op) bool {
		if s, ok := n.(*algebra.Select); ok {
			for _, c := range algebra.SplitConj(s.Pred) {
				if !absorbed[c.String()] {
					sound = false
				}
			}
		}
		return sound
	})
	if !sound {
		return nil, false
	}
	dropCols, keepCols := colSet(drop.Columns()), colSet(keep.Columns())
	// Equalities usable for substitution.
	eqMap := map[string]string{}
	for _, c := range algebra.SplitConj(j.Pred) {
		if a, b, ok := algebra.EqColumns(c); ok {
			if dropCols[a] && keepCols[b] {
				eqMap[a] = b
			}
			if dropCols[b] && keepCols[a] {
				eqMap[b] = a
			}
		}
	}
	var cols []string
	for c := range needed {
		switch {
		case keepCols[c]:
			cols = append(cols, c)
		case dropCols[c]:
			src, ok := eqMap[c]
			if !ok {
				return nil, false
			}
			cols = append(cols, c+"="+src)
		}
	}
	sortStrings(cols)
	o.trace("pruned join branch under containment assumption: kept %v", cols)
	return &algebra.Project{From: keep, Cols: cols}, true
}

// assumed returns the containment assumption covering dropping the drop
// side while keeping keep, or nil.
func (o *Optimizer) assumed(drop, keep algebra.Op) *Containment {
	dropDocs, keepDocs := docsUnder(drop), docsUnder(keep)
	for i := range o.opts.Assume {
		a := &o.opts.Assume[i]
		for _, dd := range dropDocs {
			if dd != a.Drop {
				continue
			}
			for _, kd := range keepDocs {
				if kd == a.Keep {
					return a
				}
			}
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func docsUnder(op algebra.Op) []string {
	var out []string
	algebra.Walk(op, func(n algebra.Op) bool {
		// yat-lint:ignore intentionally partial: only Bind and Doc name documents
		switch x := n.(type) {
		case *algebra.Bind:
			if x.Doc != "" {
				out = append(out, x.Doc)
			}
		case *algebra.Doc:
			out = append(out, x.Name)
		}
		return true
	})
	return out
}

// freeVars returns the variables an operator subtree references but does
// not itself bind (DJoin parameters).
func freeVars(op algebra.Op) map[string]bool {
	bound := map[string]bool{}
	free := map[string]bool{}
	algebra.Walk(op, func(n algebra.Op) bool {
		for _, c := range n.Columns() {
			bound[c] = true
		}
		var refs []string
		// yat-lint:ignore intentionally partial: only predicate/expression/parameter operators reference variables; columns of others are collected above
		switch x := n.(type) {
		case *algebra.Select:
			refs = x.Pred.Vars()
		case *algebra.MapExpr:
			refs = x.E.Vars()
		case *algebra.Join:
			refs = x.Pred.Vars()
		case *algebra.Bind:
			if x.From == nil && x.Doc == "" {
				refs = append(refs, x.Col)
			}
		}
		for _, v := range refs {
			free[v] = true
		}
		return true
	})
	out := map[string]bool{}
	for v := range free {
		if !bound[v] {
			out[v] = true
		}
	}
	return out
}

func union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func intersect(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func varSet(vs []string) map[string]bool {
	m := make(map[string]bool, len(vs))
	for _, v := range vs {
		m[v] = true
	}
	return m
}

// ---------------------------------------------------------------------------
// Type-driven filter simplification (Figure 7, lower middle and right)
// ---------------------------------------------------------------------------

// simplifyBindFilter uses the structural type of a document (when known) to
// simplify a leaf Bind: items binding only unneeded variables are dropped
// when the type guarantees their presence (structured queries over
// semistructured data — the projection rewriting of Figure 7).
func (o *Optimizer) simplifyBindFilter(b *algebra.Bind, needed map[string]bool) algebra.Op {
	st, ok := o.opts.Structures[b.Doc]
	if !ok {
		return b
	}
	root := b.F.Root.Clone()
	simplifyNode(root, st.Model, st.Model.Lookup(st.Pattern), needed)
	return &algebra.Bind{Doc: b.Doc, Col: b.Col, F: filter.New(root).WithModel(b.F.Model)}
}

// simplifyNode drops child items whose variables are all unneeded and whose
// presence is mandatory under the pattern.
func simplifyNode(fn *filter.FNode, m *pattern.Model, p *pattern.P, needed map[string]bool) {
	p = resolve(m, p)
	if p == nil || fn == nil {
		return
	}
	var kept []filter.FItem
	for _, it := range fn.Items {
		if it.CollectVar != "" || it.Descend || it.F == nil {
			kept = append(kept, it)
			continue
		}
		anyNeeded := false
		for _, v := range it.F.VarsBelow() {
			if needed[v] {
				anyNeeded = true
				break
			}
		}
		if !anyNeeded && !it.F.HasConstraints() && mandatoryChild(m, p, it.F.Label) != nil {
			continue // mandatory, unbound, unconstrained: drop
		}
		if sub := childPattern(m, p, it.F.Label); sub != nil {
			simplifyNode(it.F, m, sub, needed)
		}
		kept = append(kept, it)
	}
	fn.Items = kept
}

func resolve(m *pattern.Model, p *pattern.P) *pattern.P {
	for p != nil && p.Kind == pattern.KRef {
		p = m.Lookup(p.Name)
	}
	return p
}

// mandatoryChild returns the pattern of a non-starred (mandatory) child
// with the given label, or nil when the child is optional or unknown.
func mandatoryChild(m *pattern.Model, p *pattern.P, label string) *pattern.P {
	p = resolve(m, p)
	if p == nil {
		return nil
	}
	if p.Kind == pattern.KUnion {
		return nil // optional under some alternative: keep
	}
	if p.Kind != pattern.KNode {
		return nil
	}
	for _, it := range p.Items {
		sub := resolve(m, it.P)
		if sub != nil && sub.Kind == pattern.KNode && !sub.AnyLabel && sub.Label == label {
			if it.Star {
				return nil // repetition: occurrence not guaranteed
			}
			return sub
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Label-variable expansion (Figure 7, lower right)
// ---------------------------------------------------------------------------

// expandLabelVars rewrites a Bind whose filter uses a label variable over a
// document with precise type information into a union of Binds with
// concrete labels plus a Map computing the label constant — after which
// each branch can be pushed to a structured source such as O₂.
func (o *Optimizer) expandLabelVars(op algebra.Op) algebra.Op {
	op = rebuildChildren(op, o.expandLabelVars)
	b, ok := op.(*algebra.Bind)
	if !ok || b.Doc == "" {
		return op
	}
	st, stOK := o.opts.Structures[b.Doc]
	if !stOK {
		return op
	}
	site, labels := findLabelVarSite(b.F.Root, st.Model, st.Model.Lookup(st.Pattern))
	if site == nil || len(labels) == 0 {
		return op
	}
	var cur algebra.Op
	for _, label := range labels {
		root := b.F.Root.Clone()
		target := findEquivalent(root, b.F.Root, site)
		lv := target.LabelVar
		target.LabelVar = ""
		target.Label = label
		// A concrete attribute occurs once: the expanded item is no longer
		// a multiple-occurrence position.
		clearStar(root, target)
		branch := algebra.Op(&algebra.Bind{Doc: b.Doc, Col: b.Col,
			F: filter.New(root).WithModel(b.F.Model)})
		branch = &algebra.MapExpr{From: branch, Col: lv,
			E: algebra.Const{Atom: data.String(label)}}
		branch = &algebra.Project{From: branch, Cols: b.F.Vars()}
		if cur == nil {
			cur = branch
		} else {
			cur = &algebra.Union{L: cur, R: branch}
		}
	}
	return cur
}

// findLabelVarSite locates a filter node with a label variable whose
// position in the type pattern enumerates concrete labels (tuple fields).
func findLabelVarSite(fn *filter.FNode, m *pattern.Model, p *pattern.P) (*filter.FNode, []string) {
	p = resolve(m, p)
	if fn == nil || p == nil {
		return nil, nil
	}
	if p.Kind == pattern.KUnion {
		for _, a := range p.Alts {
			if site, labels := findLabelVarSite(fn, m, a); site != nil {
				return site, labels
			}
		}
		return nil, nil
	}
	if p.Kind != pattern.KNode {
		return nil, nil
	}
	for i := range fn.Items {
		it := &fn.Items[i]
		if it.F == nil {
			continue
		}
		if it.F.LabelVar != "" {
			// enumerate the labels of the pattern's children
			var labels []string
			for _, pit := range p.Items {
				sub := resolve(m, pit.P)
				if sub != nil && sub.Kind == pattern.KNode && !sub.AnyLabel && sub.Label != "" {
					labels = append(labels, sub.Label)
				}
			}
			if len(labels) > 0 {
				return it.F, labels
			}
			return nil, nil
		}
		// descend along the matching child; when the filter has an extra
		// wrapping level (the extent set around class patterns), re-align by
		// matching the child against the pattern root itself
		if sub := childPattern(m, p, it.F.Label); sub != nil {
			if site, labels := findLabelVarSite(it.F, m, sub); site != nil {
				return site, labels
			}
		} else if it.F.Label == p.Label || it.F.Label != "" && p.Label == "" {
			if site, labels := findLabelVarSite(it.F, m, p); site != nil {
				return site, labels
			}
		}
	}
	// The filter may wrap the pattern in extra levels (set of classes):
	// retry each filter child against the same pattern.
	for i := range fn.Items {
		if f := fn.Items[i].F; f != nil && f.Label != p.Label && f.LabelVar == "" {
			if site, labels := findLabelVarSite(f, m, p); site != nil {
				return site, labels
			}
		}
	}
	return nil, nil
}

func childPattern(m *pattern.Model, p *pattern.P, label string) *pattern.P {
	p = resolve(m, p)
	if p == nil || p.Kind != pattern.KNode {
		return nil
	}
	for _, it := range p.Items {
		sub := resolve(m, it.P)
		if sub != nil && sub.Kind == pattern.KNode && sub.Label == label {
			return sub
		}
	}
	return nil
}

// clearStar drops the star flag on the item holding target.
func clearStar(root *filter.FNode, target *filter.FNode) {
	for i := range root.Items {
		if root.Items[i].F == target {
			root.Items[i].Star = false
			return
		}
		if root.Items[i].F != nil {
			clearStar(root.Items[i].F, target)
		}
	}
}

// findEquivalent finds in the cloned tree the node at the same position as
// target is in orig.
func findEquivalent(clone, orig *filter.FNode, target *filter.FNode) *filter.FNode {
	if orig == target {
		return clone
	}
	for i := range orig.Items {
		if orig.Items[i].F == nil {
			continue
		}
		if got := findEquivalent(clone.Items[i].F, orig.Items[i].F, target); got != nil {
			return got
		}
	}
	return nil
}

// renameExpr rewrites an expression's variables through a rename map; it
// reports false when a variable has no image (the conjunct cannot cross
// the projection).
func renameExpr(e algebra.Expr, toSrc map[string]string) (algebra.Expr, bool) {
	switch x := e.(type) {
	case algebra.Var:
		src, ok := toSrc[x.Name]
		if !ok {
			return nil, false
		}
		return algebra.Var{Name: src}, true
	case algebra.Const:
		return x, true
	case algebra.Cmp:
		l, ok1 := renameExpr(x.L, toSrc)
		r, ok2 := renameExpr(x.R, toSrc)
		if !ok1 || !ok2 {
			return nil, false
		}
		return algebra.Cmp{Op: x.Op, L: l, R: r}, true
	case algebra.And:
		l, ok1 := renameExpr(x.L, toSrc)
		r, ok2 := renameExpr(x.R, toSrc)
		if !ok1 || !ok2 {
			return nil, false
		}
		return algebra.And{L: l, R: r}, true
	case algebra.Or:
		l, ok1 := renameExpr(x.L, toSrc)
		r, ok2 := renameExpr(x.R, toSrc)
		if !ok1 || !ok2 {
			return nil, false
		}
		return algebra.Or{L: l, R: r}, true
	case algebra.Not:
		inner, ok := renameExpr(x.E, toSrc)
		if !ok {
			return nil, false
		}
		return algebra.Not{E: inner}, true
	case algebra.Arith:
		l, ok1 := renameExpr(x.L, toSrc)
		r, ok2 := renameExpr(x.R, toSrc)
		if !ok1 || !ok2 {
			return nil, false
		}
		return algebra.Arith{Op: x.Op, L: l, R: r}, true
	case algebra.Call:
		args := make([]algebra.Expr, len(x.Args))
		for i, a := range x.Args {
			r, ok := renameExpr(a, toSrc)
			if !ok {
				return nil, false
			}
			args[i] = r
		}
		return algebra.Call{Name: x.Name, Args: args}, true
	default:
		return nil, false
	}
}
