package optimizer

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/datagen"
	"repro/internal/filter"
	"repro/internal/o2wrap"
	"repro/internal/tab"
	"repro/internal/waiswrap"
)

// culturalOpts assembles full optimizer options from real wrapper
// interfaces, together with a context evaluating against those wrappers.
func culturalOpts(n int) (Options, *algebra.Context, *datagen.Workload) {
	w := datagen.Generate(datagen.DefaultParams(n))
	ow := o2wrap.New("o2artifact", w.DB)
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(w.Works))
	ctx := algebra.NewContext()
	ctx.Sources["o2artifact"] = ow
	ctx.Sources["xmlartwork"] = ww
	ctx.Funcs["contains"] = waiswrap.Contains
	schema := ow.ExportSchema()
	opts := Options{
		Interfaces: map[string]*capability.Interface{
			"o2artifact": ow.ExportInterface(),
			"xmlartwork": ww.ExportInterface(),
		},
		SourceDocs: map[string]string{
			"artifacts": "o2artifact", "persons": "o2artifact", "works": "xmlartwork",
		},
		Structures: map[string]Structure{
			"artifacts": {Model: schema, Pattern: "Artifact"},
			"persons":   {Model: schema, Pattern: "Person"},
			"works":     {Model: ww.ExportStructure(), Pattern: "Works"},
		},
		InfoPassing:     true,
		CheckInvariants: true,
	}
	return opts, ctx, w
}

// q2LikePlan is the composed Q2 shape after round 1: a cross-source join
// under the style/price selections.
func q2LikePlan() algebra.Op {
	return &algebra.Select{
		From: &algebra.Join{
			L: &algebra.Select{
				From: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
					`set[ *class[ artifact.tuple[ title: $t, year: $y, creator: $c, price: $p ] ] ]`)},
				Pred: algebra.MustParseExpr(`$y > 1800`),
			},
			R: &algebra.Bind{Doc: "works", F: filter.MustParse(
				`works[ *work[ artist: $a, title: $t', style: $s ] ]`)},
			Pred: algebra.MustParseExpr(`$c = $a AND $t = $t'`),
		},
		Pred: algebra.MustParseExpr(`$s = "Impressionist" AND $p < 200000`),
	}
}

func TestFullPipelinePushesBothSources(t *testing.T) {
	opts, ctx, _ := culturalOpts(120)
	var traces []string
	opts.Trace = func(s string) { traces = append(traces, s) }
	o := New(opts)
	plan := q2LikePlan()
	opt, err := o.OptimizeChecked(plan)
	if err != nil {
		t.Fatalf("invariant broken during optimization: %v", err)
	}
	s := algebra.Describe(opt)
	for _, frag := range []string{"SourceQuery(o2artifact)", "SourceQuery(xmlartwork)", "DJoin", "contains("} {
		if !strings.Contains(s, frag) {
			t.Errorf("optimized plan missing %q:\n%s", frag, s)
		}
	}
	if len(traces) == 0 {
		t.Error("trace must record rewritings")
	}
	// Semantics preserved against the unoptimized plan.
	want, err := plan.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	opts2, ctx2, _ := culturalOpts(120)
	_ = opts2
	got, err := opt.Eval(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Sorted().EqualUnordered(got.Project(want.Cols...)) {
		t.Errorf("pipeline changed semantics: %d vs %d rows", want.Len(), got.Len())
	}
	if want.Len() == 0 {
		t.Fatal("degenerate fixture")
	}
}

func TestRound3SwapsSides(t *testing.T) {
	// When only the LEFT side ends in a source query, round 3 swaps the
	// join before converting it to a DJoin.
	opts, ctx, _ := culturalOpts(60)
	o := New(opts)
	o.fresh = newFreshVars(&algebra.Doc{Name: "x"})
	plan := &algebra.Join{
		L: &algebra.SourceQuery{Source: "o2artifact",
			Plan: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
				`set[ *class[ artifact.tuple[ title: $t2, price: $p ] ] ]`)}},
		R:    &algebra.Literal{T: leftTitles(ctx, t)},
		Pred: algebra.MustParseExpr(`$t2 = $t`),
	}
	out := o.round3(plan)
	s := algebra.Describe(out)
	if !strings.Contains(s, "DJoin") {
		t.Fatalf("round 3 did not convert:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if !strings.Contains(lines[1], "Literal") {
		t.Errorf("literal side must become the outer loop:\n%s", s)
	}
	got, err := out.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() || got.Len() == 0 {
		t.Errorf("rows: swapped %d vs original %d", got.Len(), want.Len())
	}
}

func leftTitles(ctx *algebra.Context, t *testing.T) *tab.Tab {
	t.Helper()
	res, err := (&algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work[ title: $t ] ]`)}).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	res.Rows = res.Rows[:3]
	return res
}

func TestRound3LeavesNonEquiJoins(t *testing.T) {
	opts, _, _ := culturalOpts(20)
	o := New(opts)
	plan := &algebra.Join{
		L: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work[ title: $t ] ]`)},
		R: &algebra.SourceQuery{Source: "o2artifact",
			Plan: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
				`set[ *class[ artifact.tuple[ price: $p ] ] ]`)}},
		Pred: algebra.MustParseExpr(`$p > 100`),
	}
	out := o.round3(plan)
	if strings.Contains(algebra.Describe(out), "DJoin") {
		t.Errorf("non-equi join must not convert:\n%s", algebra.Describe(out))
	}
}

func TestSplitForCapabilities(t *testing.T) {
	opts, ctx, _ := culturalOpts(40)
	o := New(opts)
	o.fresh = newFreshVars(&algebra.Doc{Name: "x"})
	b := &algebra.Bind{Doc: "works", F: filter.MustParse(
		`works[ *work[ title: $t, style: $s ] ]`)}
	out := o.splitForCapabilities(b)
	s := algebra.Describe(out)
	if !strings.Contains(s, "Bind(works, works[ *work@$w") {
		t.Fatalf("split did not produce a document-level bind:\n%s", s)
	}
	want, err := b.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualUnordered(got.Project(want.Cols...)) {
		t.Error("split changed semantics")
	}
	// Directly acceptable binds stay intact.
	ok := &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)}
	if o.splitForCapabilities(ok) != algebra.Op(ok) {
		t.Error("acceptable bind must not split")
	}
	// O2 binds are acceptable as-is: no split either.
	o2b := &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
		`set[ *class[ artifact.tuple[ title: $t ] ] ]`)}
	if o.splitForCapabilities(o2b) != algebra.Op(o2b) {
		t.Error("O2 bind must not split")
	}
}

func TestIntroduceEquivalences(t *testing.T) {
	opts, ctx, _ := culturalOpts(40)
	o := New(opts)
	o.fresh = newFreshVars(&algebra.Doc{Name: "x"})
	split := o.splitForCapabilities(&algebra.Bind{Doc: "works", F: filter.MustParse(
		`works[ *work[ title: $t, style: $s ] ]`)})
	plan := &algebra.Select{From: split, Pred: algebra.MustParseExpr(`$s = "Impressionist"`)}
	out := o.introduceEquivalences(plan)
	s := algebra.Describe(out)
	if !strings.Contains(s, `contains(`) {
		t.Fatalf("equivalence not applied:\n%s", s)
	}
	// idempotent: a second pass must not duplicate the contains select
	again := o.introduceEquivalences(out)
	if strings.Count(algebra.Describe(again), "contains(") != strings.Count(s, "contains(") {
		t.Error("introduceEquivalences is not idempotent")
	}
	// semantics preserved
	want, err := plan.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualUnordered(got) {
		t.Errorf("equivalence changed semantics: %d vs %d rows", want.Len(), got.Len())
	}
	// No equivalence for non-string or non-matching predicates.
	numeric := &algebra.Select{From: split, Pred: algebra.MustParseExpr(`$s = 5`)}
	if strings.Contains(algebra.Describe(o.introduceEquivalences(numeric)), "contains(") {
		t.Error("numeric equality must not introduce contains")
	}
}

func TestPruneJoinBranchWithAssumption(t *testing.T) {
	opts, ctx, _ := culturalOpts(60)
	opts.Assume = []Containment{{Drop: "artifacts", Keep: "works"}}
	o := New(opts)
	join := &algebra.Join{
		L: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
			`set[ *class[ artifact.tuple[ title: $t ] ] ]`)},
		R: &algebra.Bind{Doc: "works", F: filter.MustParse(
			`works[ *work[ title: $t', style: $s ] ]`)},
		Pred: algebra.MustParseExpr(`$t = $t'`),
	}
	pruned := o.pruneColumns(join, varSet([]string{"$t", "$s"}))
	s := algebra.Describe(pruned)
	if strings.Contains(s, "artifacts") {
		t.Fatalf("branch not pruned:\n%s", s)
	}
	if !strings.Contains(s, "$t=$t'") {
		t.Errorf("join-equality rename missing:\n%s", s)
	}
	got, err := pruned.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&algebra.Project{From: join, Cols: []string{"$t", "$s"}}).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualUnordered(got.Project("$t", "$s")) {
		t.Errorf("pruning changed semantics under the (true) assumption: %d vs %d rows",
			want.Len(), got.Len())
	}
	// Without the assumption nothing is pruned.
	o2 := New(Options{})
	if !strings.Contains(algebra.Describe(o2.pruneColumns(join, varSet([]string{"$t", "$s"}))), "artifacts") {
		t.Error("pruning requires a declared assumption")
	}
	// With a needed column that has no equality image, pruning must refuse.
	o3 := New(opts)
	kept := o3.pruneColumns(join, varSet([]string{"$t", "$s", "$t'"}))
	_ = kept // $t and $t' both needed: rename works for both ($t=$t', $t' direct)
}

func TestExpandLabelVarsDirect(t *testing.T) {
	opts, ctx, _ := culturalOpts(30)
	o := New(opts)
	b := &algebra.Bind{Doc: "persons", F: filter.MustParse(
		`set[ *class[ person.tuple[ *~$l: $v ] ] ]`)}
	out := o.expandLabelVars(b)
	s := algebra.Describe(out)
	if !strings.Contains(s, "Union") || !strings.Contains(s, "Map($l") {
		t.Fatalf("label variable not expanded:\n%s", s)
	}
	want, err := b.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Sorted().EqualUnordered(got.Project(want.Cols...).Sorted()) {
		t.Errorf("expansion changed semantics:\n%s\nvs\n%s", want.Sorted(), got.Sorted())
	}
	// Each expanded branch is now acceptable to O2.
	iface := opts.Interfaces["o2artifact"]
	algebra.Walk(out, func(op algebra.Op) bool {
		if bind, ok := op.(*algebra.Bind); ok && bind.Doc != "" {
			if err := iface.AcceptsFilter(bind.Doc, bind.F); err != nil {
				t.Errorf("expanded branch not acceptable: %v", err)
			}
		}
		return true
	})
}

func TestFreeVarsAndDocsUnder(t *testing.T) {
	plan := &algebra.DJoin{
		L: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)},
		R: &algebra.Select{
			From: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
				`set[ *class[ artifact.tuple[ title: $t2 ] ] ]`)},
			Pred: algebra.MustParseExpr(`$t2 = $outer`),
		},
	}
	fv := freeVars(plan.R)
	if !fv["$outer"] || fv["$t2"] {
		t.Errorf("freeVars = %v", fv)
	}
	docs := docsUnder(plan)
	if len(docs) != 2 {
		t.Errorf("docsUnder = %v", docs)
	}
}

func TestMergeSourceJoins(t *testing.T) {
	opts, ctx, _ := culturalOpts(50)
	o := New(opts)
	join := &algebra.Join{
		L: &algebra.SourceQuery{Source: "o2artifact",
			Plan: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
				`set[ *class[ artifact.tuple[ title: $t, creator: $c ] ] ]`)}},
		R: &algebra.SourceQuery{Source: "o2artifact",
			Plan: &algebra.Bind{Doc: "persons", F: filter.MustParse(
				`set[ *class[ person.tuple[ name: $n ] ] ]`)}},
		Pred: algebra.MustParseExpr(`$c = $n`),
	}
	out := o.mergeSourceJoins(join)
	s := algebra.Describe(out)
	if strings.Count(s, "SourceQuery") != 1 {
		t.Fatalf("join not merged into one pushed query:\n%s", s)
	}
	want, err := join.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualUnordered(got) {
		t.Errorf("merge changed semantics: %d vs %d rows", want.Len(), got.Len())
	}
	// Different sources never merge.
	cross := &algebra.Join{
		L: join.L,
		R: &algebra.SourceQuery{Source: "xmlartwork",
			Plan: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)}},
		Pred: algebra.TrueExpr(),
	}
	if strings.Count(algebra.Describe(o.mergeSourceJoins(cross)), "SourceQuery") != 2 {
		t.Error("cross-source join must not merge")
	}
	// A source without the join operation never merges.
	waisJoin := &algebra.Join{
		L: &algebra.SourceQuery{Source: "xmlartwork",
			Plan: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)}},
		R: &algebra.SourceQuery{Source: "xmlartwork",
			Plan: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w2 ]`)}},
		Pred: algebra.TrueExpr(),
	}
	if strings.Count(algebra.Describe(o.mergeSourceJoins(waisJoin)), "SourceQuery") != 2 {
		t.Error("Wais declares no join: must not merge")
	}
}
