package optimizer

import (
	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
)

// Round 2 — capability-based pushdown (Section 5.3, Figure 9). Three steps:
//
//  1. split Binds whose filters a source rejects as a whole but whose
//     document level it accepts (Figure 7's Bind-split applied for
//     capability matching);
//  2. apply declared equivalences: a selection with equality over a value
//     bound inside a document implies a contains selection over the
//     document variable (Section 4.2), which the source can evaluate;
//  3. wrap maximal admissible Select*/Project*-over-Bind chains in
//     SourceQuery nodes.

func (o *Optimizer) round2(plan algebra.Op) algebra.Op {
	plan = o.splitForCapabilities(plan)
	o.verify("round2/splitForCapabilities", plan)
	plan = o.introduceEquivalences(plan)
	o.verify("round2/introduceEquivalences", plan)
	plan = pushSelections(plan)
	o.verify("round2/pushSelections", plan)
	plan = o.wrapSources(plan)
	o.verify("round2/wrapSources", plan)
	plan = o.mergeSourceJoins(plan)
	o.verify("round2/mergeSourceJoins", plan)
	return plan
}

// mergeSourceJoins merges a Join of two queries pushed to the same source
// into a single pushed query when the source declared the join operation
// and can evaluate the predicate — a full query language such as OQL
// evaluates multi-extent joins natively (Section 4.1).
func (o *Optimizer) mergeSourceJoins(op algebra.Op) algebra.Op {
	op = rebuildChildren(op, o.mergeSourceJoins)
	j, ok := op.(*algebra.Join)
	if !ok {
		return op
	}
	l, lok := j.L.(*algebra.SourceQuery)
	r, rok := j.R.(*algebra.SourceQuery)
	if !lok || !rok || l.Source != r.Source {
		return op
	}
	iface := o.opts.Interfaces[l.Source]
	// A single declared join entry must cover every document the merged plan
	// touches: a source may join its extents and, separately, its node
	// tables, without claiming it can join across the two families.
	docs := bindDocsUnder(&algebra.Join{L: l.Plan, R: r.Plan})
	if iface == nil || !iface.CoversOperation("join", docs) {
		return op
	}
	bound := colSet(append(l.Columns(), r.Columns()...))
	for _, c := range algebra.SplitConj(j.Pred) {
		if !o.predAcceptable(iface, c, bound, docs) {
			return op
		}
	}
	o.trace("merged same-source join at %s", l.Source)
	return &algebra.SourceQuery{Source: l.Source,
		Plan: &algebra.Join{L: l.Plan, R: r.Plan, Pred: j.Pred}}
}

// bindDocsUnder returns the distinct documents bound anywhere in a (pushed)
// plan, the document set capability scoping is checked against.
func bindDocsUnder(op algebra.Op) []string {
	seen := map[string]bool{}
	var docs []string
	algebra.Walk(op, func(n algebra.Op) bool {
		if b, ok := n.(*algebra.Bind); ok && b.Doc != "" && !seen[b.Doc] {
			seen[b.Doc] = true
			docs = append(docs, b.Doc)
		}
		return true
	})
	return docs
}

func (o *Optimizer) ifaceFor(doc string) *capability.Interface {
	src, ok := o.opts.SourceDocs[doc]
	if !ok {
		return nil
	}
	return o.opts.Interfaces[src]
}

// splitForCapabilities splits document Binds that a source rejects directly
// but accepts at the document level.
func (o *Optimizer) splitForCapabilities(op algebra.Op) algebra.Op {
	op = rebuildChildren(op, o.splitForCapabilities)
	b, ok := op.(*algebra.Bind)
	if !ok || b.Doc == "" {
		return op
	}
	iface := o.ifaceFor(b.Doc)
	if iface == nil || iface.AcceptsFilter(b.Doc, b.F) == nil {
		return op // directly acceptable (or no source): leave intact
	}
	docBind, residual, ok := SplitBindDoc(b, o.fresh.fresh)
	if !ok {
		return op
	}
	if iface.AcceptsFilter(docBind.Doc, docBind.F) != nil {
		return op
	}
	o.trace("split Bind(%s) for capability matching", b.Doc)
	residual.From = docBind
	return residual
}

// introduceEquivalences inserts contains selections implied by equality
// selections, directly above the document-level Bind they restrict.
func (o *Optimizer) introduceEquivalences(op algebra.Op) algebra.Op {
	op = rebuildChildren(op, o.introduceEquivalences)
	sel, ok := op.(*algebra.Select)
	if !ok {
		return op
	}
	for _, conj := range algebra.SplitConj(sel.Pred) {
		v, text, ok := eqStringConst(conj)
		if !ok {
			continue
		}
		docVar, docBind := o.containsTarget(sel.From, v)
		if docBind == nil {
			continue
		}
		contains := algebra.Call{Name: "contains", Args: []algebra.Expr{
			algebra.Var{Name: docVar}, algebra.Const{Atom: data.String(text)}}}
		if hasContains(sel.From, contains) {
			continue // already introduced (fixpoint safety)
		}
		o.trace("introduced %s from %s (declared equivalence)", contains, conj)
		return &algebra.Select{
			From: insertAboveBind(sel.From, docBind, contains),
			Pred: sel.Pred,
		}
	}
	return op
}

// eqStringConst recognises `$x = "str"` (either side).
func eqStringConst(e algebra.Expr) (string, string, bool) {
	c, ok := e.(algebra.Cmp)
	if !ok || c.Op != algebra.OpEq {
		return "", "", false
	}
	if v, ok := c.L.(algebra.Var); ok {
		if k, ok := c.R.(algebra.Const); ok && k.Atom.Kind == data.KindString {
			return v.Name, k.Atom.S, true
		}
	}
	if v, ok := c.R.(algebra.Var); ok {
		if k, ok := c.L.(algebra.Const); ok && k.Atom.Kind == data.KindString {
			return v.Name, k.Atom.S, true
		}
	}
	return "", "", false
}

// containsTarget finds, below op, a residual Bind binding v over a document
// variable whose document Bind belongs to a source declaring an
// eq→contains equivalence. It returns the document variable and its Bind.
func (o *Optimizer) containsTarget(op algebra.Op, v string) (string, *algebra.Bind) {
	var docVar string
	var docBind *algebra.Bind
	algebra.Walk(op, func(n algebra.Op) bool {
		if docBind != nil {
			return false
		}
		rb, ok := n.(*algebra.Bind)
		if !ok || rb.Col == "" || rb.Doc != "" {
			return true
		}
		if !contains(rb.F.Vars(), v) {
			return true
		}
		// rb binds v over column rb.Col; find the document Bind below that
		// binds rb.Col over a source with the equivalence.
		algebra.Walk(rb, func(m algebra.Op) bool {
			db, ok := m.(*algebra.Bind)
			if !ok || db.Doc == "" || !contains(db.F.Vars(), rb.Col) {
				return true
			}
			iface := o.ifaceFor(db.Doc)
			if iface == nil || iface.EquivalenceTo("contains") == nil {
				return true
			}
			docVar, docBind = rb.Col, db
			return false
		})
		return docBind == nil
	})
	return docVar, docBind
}

func contains(vs []string, v string) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// hasContains reports whether an identical contains selection already
// exists in the subtree.
func hasContains(op algebra.Op, call algebra.Call) bool {
	found := false
	algebra.Walk(op, func(n algebra.Op) bool {
		if s, ok := n.(*algebra.Select); ok {
			for _, c := range algebra.SplitConj(s.Pred) {
				if c.String() == call.String() {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// insertAboveBind rebuilds op with Select(pred) inserted directly above the
// given Bind node.
func insertAboveBind(op algebra.Op, target *algebra.Bind, pred algebra.Expr) algebra.Op {
	if op == algebra.Op(target) {
		return &algebra.Select{From: target, Pred: pred}
	}
	return rebuildChildren(op, func(c algebra.Op) algebra.Op {
		return insertAboveBind(c, target, pred)
	})
}

// ---------------------------------------------------------------------------
// Source wrapping
// ---------------------------------------------------------------------------

var boolOpNames = map[algebra.CmpOp]string{
	algebra.OpEq: "eq", algebra.OpNe: "neq",
	algebra.OpLt: "lt", algebra.OpLe: "leq",
	algebra.OpGt: "gt", algebra.OpGe: "geq",
}

// wrapSources wraps maximal admissible chains in SourceQuery nodes,
// splitting Selects into pushable and residual parts.
func (o *Optimizer) wrapSources(op algebra.Op) algebra.Op {
	if out, ok := o.tryWrap(op); ok {
		return out
	}
	return rebuildChildren(op, o.wrapSources)
}

// tryWrap attempts to wrap the chain rooted at op.
func (o *Optimizer) tryWrap(op algebra.Op) (algebra.Op, bool) {
	// Find the chain: Select/Project* down to Bind(doc).
	var bind *algebra.Bind
	cur := op
chain:
	for {
		// yat-lint:ignore intentionally partial: only Select/Project* over Bind(doc) chains are wrappable
		switch x := cur.(type) {
		case *algebra.Select:
			cur = x.From
		case *algebra.Project:
			cur = x.From
		case *algebra.Bind:
			if x.Doc == "" || x.From != nil {
				return nil, false
			}
			bind = x
			break chain
		default:
			return nil, false
		}
	}
	iface := o.ifaceFor(bind.Doc)
	if iface == nil || !iface.HasOperationFor("bind", bind.Doc) {
		return nil, false
	}
	if err := iface.AcceptsFilter(bind.Doc, bind.F); err != nil {
		return nil, false
	}
	docs := []string{bind.Doc}
	boundVars := colSet(bind.F.Vars())
	// Rebuild the chain bottom-up, pushing what the interface accepts.
	var build func(op algebra.Op) (pushed algebra.Op, residual []func(algebra.Op) algebra.Op)
	build = func(op algebra.Op) (algebra.Op, []func(algebra.Op) algebra.Op) {
		// yat-lint:ignore intentionally partial: mirrors the chain walk above; only Bind/Project/Select occur
		switch x := op.(type) {
		case *algebra.Bind:
			return x, nil
		case *algebra.Project:
			inner, res := build(x.From)
			if iface.CoversOperation("project", docs) && len(res) == 0 {
				return &algebra.Project{From: inner, Cols: x.Cols}, nil
			}
			cols := x.Cols
			res = append(res, func(in algebra.Op) algebra.Op {
				return &algebra.Project{From: in, Cols: cols}
			})
			return inner, res
		case *algebra.Select:
			inner, res := build(x.From)
			var push, keep []algebra.Expr
			for _, c := range algebra.SplitConj(x.Pred) {
				if iface.CoversOperation("select", docs) && o.predAcceptable(iface, c, boundVars, docs) && len(res) == 0 {
					push = append(push, c)
				} else {
					keep = append(keep, c)
				}
			}
			if len(push) > 0 {
				inner = &algebra.Select{From: inner, Pred: algebra.Conj(push...)}
			}
			if len(keep) > 0 {
				pred := algebra.Conj(keep...)
				res = append(res, func(in algebra.Op) algebra.Op {
					return &algebra.Select{From: in, Pred: pred}
				})
			}
			return inner, res
		default:
			return op, nil
		}
	}
	pushed, residual := build(op)
	sq := algebra.Op(&algebra.SourceQuery{Source: o.opts.SourceDocs[bind.Doc], Plan: pushed})
	for _, wrap := range residual {
		sq = wrap(sq)
	}
	o.trace("pushed to %s:\n%s", o.opts.SourceDocs[bind.Doc], algebra.Describe(pushed))
	return sq, true
}

// predAcceptable reports whether a conjunct can be evaluated by the source
// for the documents the pushed plan touches: comparisons need the
// corresponding declared boolean operation covering docs, calls the declared
// external/method operation; every variable must be bound by the pushed Bind
// or arrive as a DJoin parameter (free in this plan).
func (o *Optimizer) predAcceptable(iface *capability.Interface, e algebra.Expr, bound map[string]bool, docs []string) bool {
	switch x := e.(type) {
	case algebra.Cmp:
		if !iface.CoversOperation(boolOpNames[x.Op], docs) {
			return false
		}
		return o.operandAcceptable(iface, x.L, bound, docs) && o.operandAcceptable(iface, x.R, bound, docs)
	case algebra.Call:
		op := iface.OperationFor(x.Name, docs)
		if op == nil || (op.Kind != "external" && op.Kind != "method") {
			return false
		}
		for _, a := range x.Args {
			if !o.operandAcceptable(iface, a, bound, docs) {
				return false
			}
		}
		return true
	case algebra.And:
		return o.predAcceptable(iface, x.L, bound, docs) && o.predAcceptable(iface, x.R, bound, docs)
	case algebra.Or:
		return o.predAcceptable(iface, x.L, bound, docs) && o.predAcceptable(iface, x.R, bound, docs)
	case algebra.Not:
		return o.predAcceptable(iface, x.E, bound, docs)
	default:
		return false
	}
}

func (o *Optimizer) operandAcceptable(iface *capability.Interface, e algebra.Expr, bound map[string]bool, docs []string) bool {
	switch x := e.(type) {
	case algebra.Var:
		return true // bound vars evaluate at the source; free vars arrive as parameters
	case algebra.Const:
		return true
	case algebra.Arith:
		return o.operandAcceptable(iface, x.L, bound, docs) && o.operandAcceptable(iface, x.R, bound, docs)
	case algebra.Call:
		op := iface.OperationFor(x.Name, docs)
		if op == nil || (op.Kind != "external" && op.Kind != "method") {
			return false
		}
		for _, a := range x.Args {
			if !o.operandAcceptable(iface, a, bound, docs) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// ---------------------------------------------------------------------------
// Round 3 — information passing
// ---------------------------------------------------------------------------

// round3 converts cross-source Joins whose right side is a pushed source
// query into DJoins, injecting the join predicate into the pushed plan so
// that left-hand bindings flow to the source as parameters (the nested-loop
// information passing of Figure 9).
func (o *Optimizer) round3(op algebra.Op) algebra.Op {
	op = rebuildChildren(op, o.round3)
	j, ok := op.(*algebra.Join)
	if !ok {
		return op
	}
	sq := innermostSourceQuery(j.R)
	if sq == nil {
		// Joins are commutative: when only the left side ends in a source
		// query, swap so that the source query becomes the parameterized
		// inner side of the nested loop.
		if lsq := innermostSourceQuery(j.L); lsq != nil {
			j = &algebra.Join{L: j.R, R: j.L, Pred: j.Pred}
			sq = lsq
		} else {
			return op
		}
	}
	iface := o.opts.Interfaces[sq.Source]
	sqDocs := bindDocsUnder(sq.Plan)
	if iface == nil || !iface.CoversOperation("select", sqDocs) {
		return op
	}
	lcols := colSet(j.L.Columns())
	rcols := colSet(j.R.Columns())
	var inject, rest []algebra.Expr
	for _, c := range algebra.SplitConj(j.Pred) {
		a, b, ok := algebra.EqColumns(c)
		if ok && iface.CoversOperation("eq", sqDocs) &&
			((lcols[a] && rcols[b]) || (lcols[b] && rcols[a])) {
			inject = append(inject, c)
		} else {
			rest = append(rest, c)
		}
	}
	if len(inject) == 0 {
		return op
	}
	o.trace("information passing: Join → DJoin over %s", sq.Source)
	newSQ := &algebra.SourceQuery{Source: sq.Source,
		Plan: &algebra.Select{From: sq.Plan, Pred: algebra.Conj(inject...)}}
	right := replaceSourceQuery(j.R, sq, newSQ)
	var out algebra.Op = &algebra.DJoin{L: j.L, R: right}
	if len(rest) > 0 {
		out = &algebra.Select{From: out, Pred: algebra.Conj(rest...)}
	}
	return out
}

// innermostSourceQuery returns the SourceQuery at the bottom of a
// Select/Project chain, or nil.
func innermostSourceQuery(op algebra.Op) *algebra.SourceQuery {
	// yat-lint:ignore intentionally partial: anything but a Select/Project chain ends the search
	switch x := op.(type) {
	case *algebra.SourceQuery:
		return x
	case *algebra.Select:
		return innermostSourceQuery(x.From)
	case *algebra.Project:
		return innermostSourceQuery(x.From)
	default:
		return nil
	}
}

func replaceSourceQuery(op algebra.Op, from, to *algebra.SourceQuery) algebra.Op {
	if op == algebra.Op(from) {
		return to
	}
	return rebuildChildren(op, func(c algebra.Op) algebra.Op {
		return replaceSourceQuery(c, from, to)
	})
}
