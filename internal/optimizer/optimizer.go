package optimizer

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/pattern"
	"repro/internal/planlint"
	"repro/internal/typecheck"
)

// Containment is a declared assumption letting the optimizer prune a join
// branch (Figure 8's "because all artifacts are available in the XML
// source"): joining Keep with the Drop branch loses no Keep rows, so when
// no column of Drop is needed the Drop branch can be eliminated. Modulo
// lists the selection conjuncts (in their printed form) that the assumption
// absorbs — for the cultural view, "$y > 1800", because every catalogued
// work corresponds to a post-1800 artifact. A branch carrying any other
// selection (e.g. a predicate pushed down from the user query) is never
// pruned: the assumption says nothing about it.
type Containment struct {
	Drop   string   // document whose branch may be eliminated
	Keep   string   // document whose rows are preserved by the join
	Modulo []string // selection conjuncts the assumption absorbs
}

// Structure names the structural pattern governing a document's data, used
// by type-driven rewritings (Figure 7, lower middle/right).
type Structure struct {
	Model   *pattern.Model
	Pattern string
}

// Options configure the optimizer. Zero-value options yield a conservative
// optimizer that only performs composition simplification and pushdown of
// selections/projections.
type Options struct {
	// Interfaces maps source names to their capability interfaces.
	Interfaces map[string]*capability.Interface
	// SourceDocs maps document names to the source exporting them.
	SourceDocs map[string]string
	// Structures maps document names to their structural types.
	Structures map[string]Structure
	// Assume lists containment assumptions enabling source pruning.
	Assume []Containment
	// InfoPassing enables round 3 (Join → DJoin with parameter passing).
	InfoPassing bool
	// Ablation switches (used by the EXPERIMENTS.md benchmarks).
	DisableComposition bool // skip Bind–Tree elimination
	DisablePushdown    bool // skip capability-based pushdown (round 2)
	DisableTypeRules   bool // skip type-driven filter simplification
	// PruneDeadBranches lets round 1 eliminate operators the type inference
	// proves dead under the declared Structures: a Union branch with a
	// provably-empty type is dropped, a Join/DJoin with a provably-empty
	// side collapses to an empty literal. Off by default — it changes plan
	// shape based on schema claims, so callers opt in.
	PruneDeadBranches bool
	// CheckInvariants verifies plan well-formedness with planlint after
	// every rewriting step of every round; the first violation — named by
	// the round and rule that introduced it — is reported through Trace and
	// returned by OptimizeChecked. A rewrite that unbinds a variable,
	// breaks Skolem arity or pushes an infeasible subplan is caught at the
	// step that did it, not as a wrong answer at execution time. The same
	// gate verifies every step against the input plan's inferred type: a
	// rewrite whose root row type is no longer subsumed by the original's
	// is reported as a *TypeError (see typedverify.go).
	CheckInvariants bool
	// Trace receives one line per applied rewriting when non-nil.
	Trace func(string)
}

// InvariantError reports a plan invariant broken by a rewriting step: Stage
// names the round and rule ("round2/wrapSources"), Diags the violations.
type InvariantError struct {
	Stage string
	Diags []planlint.Diagnostic
}

// Error implements error.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("optimizer: invariant broken after %s: %v", e.Stage, planlint.Error(e.Diags))
}

// Optimizer rewrites algebraic plans.
type Optimizer struct {
	opts     Options
	fresh    *freshVars
	err      error // first invariant violation (CheckInvariants only)
	tcfg     *typecheck.Config
	origType *typecheck.RowType // input plan's root type (typed verification baseline)
}

// New returns an optimizer over the given options.
func New(opts Options) *Optimizer { return &Optimizer{opts: opts} }

func (o *Optimizer) trace(format string, args ...any) {
	if o.opts.Trace != nil {
		o.opts.Trace(fmt.Sprintf(format, args...))
	}
}

// Optimize runs the three rewriting rounds of Section 6 and returns the
// rewritten plan. The input plan is not mutated. With CheckInvariants set,
// violations are reported through Trace only; use OptimizeChecked to also
// receive them as an error.
func (o *Optimizer) Optimize(plan algebra.Op) algebra.Op {
	out, _ := o.optimize(plan)
	return out
}

// OptimizeChecked optimizes like Optimize and returns the first invariant
// violation as an *InvariantError (always nil unless Options.CheckInvariants
// is set). The returned plan is the full rewriting result either way.
func (o *Optimizer) OptimizeChecked(plan algebra.Op) (algebra.Op, error) {
	return o.optimize(plan)
}

func (o *Optimizer) optimize(plan algebra.Op) (algebra.Op, error) {
	o.fresh = newFreshVars(plan)
	o.err = nil
	o.tcfg = o.typecheckConfig()
	o.captureRootType(plan)
	o.verify("input", plan)
	out := o.round1(plan)
	if !o.opts.DisablePushdown {
		out = o.round2(out)
	}
	if o.opts.InfoPassing {
		out = o.round3(out)
		o.verify("round3/infoPassing", out)
	}
	return out, o.err
}

// lintConfig assembles the static knowledge planlint needs from the
// optimizer options.
func (o *Optimizer) lintConfig() *planlint.Config {
	structures := make(map[string]planlint.Structure, len(o.opts.Structures))
	for doc, st := range o.opts.Structures {
		structures[doc] = planlint.Structure{Model: st.Model, Pattern: st.Pattern}
	}
	return &planlint.Config{
		Interfaces: o.opts.Interfaces,
		SourceDocs: o.opts.SourceDocs,
		Structures: structures,
	}
}

// verify checks the plan after one rewriting step and records the first
// violation, naming the stage (round and rule) that introduced it. Verifying
// after every step — not only at round boundaries — pins a miscompile to the
// exact rule.
func (o *Optimizer) verify(stage string, plan algebra.Op) {
	if !o.opts.CheckInvariants || o.err != nil {
		return
	}
	if ds := planlint.Check(plan, o.lintConfig()); len(ds) > 0 {
		o.err = &InvariantError{Stage: stage, Diags: ds}
		o.trace("INVARIANT BROKEN after %s:\n%v", stage, planlint.Error(ds))
		return
	}
	o.verifyTypes(stage, plan)
}

// round1 simplifies compositions: Bind–Tree elimination, selection
// pushdown, projection pruning with source elimination, type-driven filter
// simplification and label-variable expansion, iterated to a fixpoint.
func (o *Optimizer) round1(plan algebra.Op) algebra.Op {
	prev := ""
	for iter := 0; iter < 6; iter++ {
		if !o.opts.DisableComposition {
			plan = o.eliminateCompositions(plan)
			o.verify("round1/eliminateCompositions", plan)
		}
		plan = pushSelections(plan)
		o.verify("round1/pushSelections", plan)
		plan = o.pruneColumns(plan, colSet(plan.Columns()))
		o.verify("round1/pruneColumns", plan)
		if o.opts.PruneDeadBranches && !o.opts.DisableTypeRules {
			plan = o.pruneDeadBranches(plan)
			o.verify("round1/pruneDeadBranches", plan)
		}
		if !o.opts.DisableTypeRules {
			plan = o.expandLabelVars(plan)
			o.verify("round1/expandLabelVars", plan)
		}
		plan = pushSelections(plan)
		o.verify("round1/pushSelections", plan)
		plan = simplifyProjects(plan)
		o.verify("round1/simplifyProjects", plan)
		cur := algebra.Describe(plan)
		if cur == prev {
			break
		}
		prev = cur
		o.trace("round1 iteration %d:\n%s", iter+1, cur)
	}
	return plan
}

// eliminateCompositions applies the Bind–Tree equivalence wherever a Bind
// reads the output column of a Tree operator (view composition, Figure 8).
func (o *Optimizer) eliminateCompositions(op algebra.Op) algebra.Op {
	op = rebuildChildren(op, o.eliminateCompositions)
	b, ok := op.(*algebra.Bind)
	if !ok || b.From == nil {
		return op
	}
	t, ok := b.From.(*algebra.TreeOp)
	if !ok {
		return op
	}
	if out, ok := EliminateBindTree(b, t); ok {
		o.trace("eliminated Bind–Tree composition over %s", t.Detail())
		return out
	}
	return op
}

// simplifyProjects removes identity projections and collapses stacked ones.
func simplifyProjects(op algebra.Op) algebra.Op {
	op = rebuildChildren(op, simplifyProjects)
	p, ok := op.(*algebra.Project)
	if !ok {
		return op
	}
	if inner, ok := p.From.(*algebra.Project); ok {
		// compose the rename maps
		innerSrc := map[string]string{}
		for _, c := range inner.Cols {
			name, src := c, c
			if i := indexEq(c); i >= 0 {
				name, src = c[:i], c[i+1:]
			}
			innerSrc[name] = src
		}
		cols := make([]string, len(p.Cols))
		for i, c := range p.Cols {
			name, src := c, c
			if j := indexEq(c); j >= 0 {
				name, src = c[:j], c[j+1:]
			}
			if deep, ok := innerSrc[src]; ok {
				src = deep
			}
			if name == src {
				cols[i] = name
			} else {
				cols[i] = name + "=" + src
			}
		}
		return simplifyProjects(&algebra.Project{From: inner.From, Cols: cols})
	}
	from := p.From.Columns()
	if len(from) == len(p.Cols) {
		identity := true
		for i, c := range p.Cols {
			if c != from[i] {
				identity = false
				break
			}
		}
		if identity {
			return p.From
		}
	}
	return op
}
