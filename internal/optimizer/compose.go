// Package optimizer implements the rewriting techniques of Section 5 and
// the three-round strategy of Section 6:
//
//	round 1 — composition simplification: Bind–Tree elimination (Figure 8),
//	          Bind splitting (Figure 7), selection/projection pushdown,
//	          type-driven filter simplification, source-branch pruning;
//	round 2 — capability-based pushdown: wrap maximal admissible subplans
//	          in SourceQuery nodes, applying declared equivalences such as
//	          the contains/equality connection (Section 4.2, Figure 9);
//	round 3 — information passing: turn cross-source Joins into DJoins
//	          whose right-hand side is a parameterized source query.
package optimizer

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/tab"
)

// ---------------------------------------------------------------------------
// Bind splitting (Figure 7, lower left)
// ---------------------------------------------------------------------------

// SplitBindDoc splits a document Bind with a single starred member filter
// into an elementary document-level Bind (binding whole members to a fresh
// variable) followed by a Bind over that variable carrying the inner
// structure. This is the linear Bind-split of Figure 7; it lets the
// document-level part match restrictive capabilities such as Wais's Fworks.
func SplitBindDoc(b *algebra.Bind, fresh func() string) (*algebra.Bind, *algebra.Bind, bool) {
	root := b.F.Root
	if b.Doc == "" || root.Var != "" || root.LabelVar != "" || len(root.Items) != 1 {
		return nil, nil, false
	}
	it := root.Items[0]
	if !it.Star || it.CollectVar != "" || it.Descend || it.F == nil {
		return nil, nil, false
	}
	member := it.F
	if member.Label == "" || member.LabelVar != "" {
		return nil, nil, false
	}
	if len(member.Items) == 0 && member.Var != "" {
		return nil, nil, false // already elementary
	}
	docVar := member.Var
	if docVar == "" {
		docVar = fresh()
	}
	docFilter := &filter.FNode{Label: root.Label, Items: []filter.FItem{{
		Star: true,
		F:    &filter.FNode{Label: member.Label, Var: docVar},
	}}}
	residualRoot := member.Clone()
	residualRoot.Var = "" // bound by the document-level Bind already
	docBind := &algebra.Bind{Doc: b.Doc, From: b.From, Col: b.Col,
		F: filter.New(docFilter).WithModel(b.F.Model)}
	residual := &algebra.Bind{Col: docVar,
		F: filter.New(residualRoot).WithModel(b.F.Model)}
	return docBind, residual, true
}

// ---------------------------------------------------------------------------
// Bind–Tree elimination (Figure 8)
// ---------------------------------------------------------------------------

// composition is the outcome of matching a query filter against a view's
// construction pattern.
type composition struct {
	renames   []string          // projection entries "fvar=cvar"
	constCols map[string]string // fvar bound to a constant label/value
	consts    []algebra.Expr    // equality constraints on cons variables
	residuals []residualBind    // navigation into spliced variables
	empty     bool              // the filter requires structure never built
}

type residualBind struct {
	consVar string
	f       *filter.FNode
}

// EliminateBindTree rewrites Bind(F) ∘ Tree(C) into a Project (with
// renaming) over the Tree's input, plus residual Binds for navigation into
// spliced variables and Selects for constants — the key equivalence of
// Section 5.2. It returns (rewritten, true) on success; the rewritten plan
// has exactly the filter's variables as columns.
func EliminateBindTree(b *algebra.Bind, t *algebra.TreeOp) (algebra.Op, bool) {
	if b.From != t || b.Col != t.Columns()[0] {
		return nil, false
	}
	comp := &composition{constCols: map[string]string{}}
	if !comp.match(b.F.Root, t.C, 0) {
		return nil, false
	}
	outCols := b.F.Vars()
	if comp.empty {
		return &algebra.Literal{T: tab.New(outCols...)}, true
	}
	// Base: the view's input rows.
	var cur algebra.Op = t.From
	if len(comp.consts) > 0 {
		cur = &algebra.Select{From: cur, Pred: algebra.Conj(comp.consts...)}
	}
	// Keep only the columns the composition consumes, then deduplicate:
	// binding over the constructed tree sees one row per *group*.
	var keep []string
	seen := map[string]bool{}
	for _, r := range comp.renames {
		cv := r[indexEq(r)+1:]
		if !seen[cv] {
			seen[cv] = true
			keep = append(keep, cv)
		}
	}
	for _, rb := range comp.residuals {
		if !seen[rb.consVar] {
			seen[rb.consVar] = true
			keep = append(keep, rb.consVar)
		}
	}
	cur = &algebra.Distinct{From: &algebra.Project{From: cur, Cols: keep}}
	for _, rb := range comp.residuals {
		cur = &algebra.Bind{From: cur, Col: rb.consVar, F: filter.New(rb.f).WithModel(b.F.Model)}
	}
	// Final projection: filter variables in order, renamed from cons
	// variables or computed constants.
	srcOf := map[string]string{}
	for _, r := range comp.renames {
		i := indexEq(r)
		srcOf[r[:i]] = r[i+1:]
	}
	var maps algebra.Op = cur
	final := make([]string, 0, len(outCols))
	for _, fv := range outCols {
		switch {
		case srcOf[fv] != "":
			final = append(final, fv+"="+srcOf[fv])
		case comp.constCols[fv] != "":
			maps = &algebra.MapExpr{From: maps, Col: fv,
				E: algebra.Const{Atom: data.String(comp.constCols[fv])}}
			final = append(final, fv)
		default:
			// Residual binds already produce this column under its own name.
			final = append(final, fv)
		}
	}
	return &algebra.Project{From: maps, Cols: final}, true
}

func indexEq(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '=' {
			return i
		}
	}
	return -1
}

// match relates a filter node with a construction node. starSeen counts the
// distinct starred construction subtrees the filter has entered on this
// branch: binding under two sibling stars would expose cross products the
// underlying rows do not contain, so composition fails there.
func (c *composition) match(fn *filter.FNode, cn *algebra.Cons, depth int) bool {
	if fn == nil || cn == nil {
		return false
	}
	if fn.Type != nil || fn.LabelVar != "" && cn.LabelVar != "" {
		return false // type filters and label-var/label-var need runtime data
	}
	// Label discipline.
	label := cn.Label
	switch {
	case fn.LabelVar != "":
		if label == "" {
			return false
		}
		c.constCols[fn.LabelVar] = label
	case fn.AnyLabel:
		if label == "" {
			return false
		}
	case fn.Label != "":
		if cn.LabelVar != "" {
			return false
		}
		if label != fn.Label {
			c.empty = true
			return true
		}
	}
	// Constants in the construction.
	if cn.Const != nil {
		if fn.Const != nil {
			if !fn.Const.Equal(*cn.Const) {
				c.empty = true
			}
			return true
		}
		if fn.Var != "" || len(fn.Items) == 1 && varOnly(fn.Items[0].F) {
			v := fn.Var
			if v == "" {
				v = fn.Items[0].F.Var
			}
			c.constCols[v] = cn.Const.Text()
			return true
		}
		// Constant content requirement: `kind: "painting"`.
		if len(fn.Items) == 1 && fn.Items[0].F != nil &&
			fn.Items[0].F.Label == "" && fn.Items[0].F.Const != nil {
			if !fn.Items[0].F.Const.Equal(*cn.Const) {
				c.empty = true
			}
			return true
		}
		if len(fn.Items) > 0 {
			c.empty = true
		}
		return true
	}
	// Spliced variable content (more: $fields, or bare $t).
	if cn.Var != "" {
		if fn.Var != "" && cn.Label == "" {
			// bare splice bound as a whole
			c.renames = append(c.renames, fn.Var+"="+cn.Var)
			return len(fn.Items) == 0
		}
		if fn.Var != "" {
			return false // binding the constructed wrapper tree is not supported
		}
		if fn.Const != nil {
			c.consts = append(c.consts, algebra.Eq(algebra.Var{Name: cn.Var},
				algebra.Const{Atom: *fn.Const}))
			return true
		}
		switch len(fn.Items) {
		case 0:
			return true
		case 1:
			it := fn.Items[0]
			if it.CollectVar != "" || it.Descend {
				return false
			}
			if varOnly(it.F) {
				// content variable over an atomic splice: direct rename
				c.renames = append(c.renames, it.F.Var+"="+cn.Var)
				return true
			}
			c.residuals = append(c.residuals, residualBind{consVar: cn.Var, f: it.F.Clone()})
			return true
		default:
			return false
		}
	}
	if fn.Var != "" {
		return false // would need the constructed subtree itself
	}
	if fn.Const != nil {
		c.empty = true // constant leaf against a non-leaf construction
		return true
	}
	// Structural children.
	starBranch := -1
	for _, fi := range fn.Items {
		if fi.CollectVar != "" || fi.Descend {
			return false
		}
		idx, ci := findConsKid(cn, fi.F)
		if ci == nil {
			c.empty = true
			return true
		}
		_ = idx
		if ci.Star && fi.F.HasVars() {
			// At most one variable-binding filter item may iterate a starred
			// construction child per node: a second one (same star twice or a
			// sibling star) would expose cross products of group instances
			// that the underlying rows do not contain.
			if starBranch >= 0 {
				return false
			}
			starBranch = 1
		}
		if !c.match(fi.F, ci.C, depth+1) {
			return false
		}
		if c.empty {
			return true
		}
	}
	return true
}

func varOnly(f *filter.FNode) bool {
	return f != nil && f.Label == "" && !f.AnyLabel && f.LabelVar == "" &&
		f.Var != "" && f.Const == nil && f.Type == nil && len(f.Items) == 0
}

// findConsKid locates the construction child a filter item can match:
// a labeled child with the same label, any child for wildcard filters.
func findConsKid(cn *algebra.Cons, fn *filter.FNode) (int, *algebra.ConsItem) {
	for i := range cn.Kids {
		ci := &cn.Kids[i]
		kidLabel := ci.C.Label
		switch {
		case fn.Label != "":
			if kidLabel == fn.Label || ci.C.LabelVar != "" {
				return i, ci
			}
		case fn.AnyLabel || fn.LabelVar != "":
			if kidLabel != "" || ci.C.LabelVar != "" {
				return i, ci
			}
		default:
			return i, ci
		}
	}
	return -1, nil
}

// freshVars hands out collision-free variable names.
type freshVars struct {
	used map[string]bool
	n    int
}

func newFreshVars(plan algebra.Op) *freshVars {
	fv := &freshVars{used: map[string]bool{}}
	algebra.Walk(plan, func(op algebra.Op) bool {
		for _, c := range op.Columns() {
			fv.used[c] = true
		}
		return true
	})
	return fv
}

func (fv *freshVars) fresh() string {
	for {
		fv.n++
		v := fmt.Sprintf("$w%d", fv.n)
		if !fv.used[v] {
			fv.used[v] = true
			return v
		}
	}
}
