package optimizer

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/filter"
	"repro/internal/pattern"
	"repro/internal/planlint"
	"repro/internal/typecheck"
)

// planGen generates random well-formed plans over the cultural-portal
// catalog (the random-query style of internal/mediator/random_test.go,
// lifted from YAT_L to the algebra). Every generated plan is valid by
// construction: variables are bound before use, filters only require labels
// the declared patterns can produce, and join sides carry disjoint columns.
type planGen struct {
	seed uint64
	n    int // unique-variable counter
}

func (g *planGen) next(n int) int {
	g.seed = g.seed*6364136223846793005 + 1442695040888963407
	return int((g.seed >> 33) % uint64(n))
}

// leaf returns a Bind over one of the catalog documents with a random field
// subset; vars maps column → true for the numeric ones (usable in range
// predicates).
func (g *planGen) leaf() (algebra.Op, []string, map[string]bool) {
	g.n++
	sfx := fmt.Sprintf("%d", g.n)
	type field struct {
		item    string
		v       string
		numeric bool
	}
	docs := []struct {
		doc    string
		shape  string // %s receives the joined field items
		fields []field
	}{
		{"artifacts", `set[ *class[ artifact.tuple[ %s ] ] ]`, []field{
			{"title: $t", "$t", false},
			{"year: $y", "$y", true},
			{"creator: $c", "$c", false},
			{"price: $p", "$p", true},
		}},
		{"persons", `set[ *class[ person.tuple[ %s ] ] ]`, []field{
			{"name: $n", "$n", false},
		}},
		{"works", `works[ *work[ %s ] ]`, []field{
			{"artist: $a", "$a", false},
			{"title: $t", "$t", false},
			{"style: $s", "$s", false},
		}},
	}
	d := docs[g.next(len(docs))]
	nf := 1 + g.next(len(d.fields))
	chosen := map[int]bool{}
	for len(chosen) < nf {
		chosen[g.next(len(d.fields))] = true
	}
	var items, cols []string
	numeric := map[string]bool{}
	for i, f := range d.fields {
		if !chosen[i] {
			continue
		}
		// Suffix every variable so join sides never collide.
		items = append(items, strings.ReplaceAll(f.item, f.v, f.v+sfx))
		cols = append(cols, f.v+sfx)
		if f.numeric {
			numeric[f.v+sfx] = true
		}
	}
	b := &algebra.Bind{Doc: d.doc, F: filter.MustParse(fmt.Sprintf(d.shape, strings.Join(items, ", ")))}
	return b, cols, numeric
}

// gen builds a random plan of the given depth budget over the leaf.
func (g *planGen) gen(depth int) (algebra.Op, []string, map[string]bool) {
	if depth <= 0 {
		return g.leaf()
	}
	op, cols, numeric := g.gen(depth - 1)
	switch g.next(6) {
	case 0: // Select over a bound variable
		var pred algebra.Expr
		for v := range numeric {
			pred = algebra.MustParseExpr(v + " > 1800")
			break
		}
		if pred == nil {
			pred = algebra.MustParseExpr(cols[g.next(len(cols))] + ` != "zzz"`)
		}
		return &algebra.Select{From: op, Pred: pred}, cols, numeric
	case 1: // Project onto a column subset
		keep := cols[:1+g.next(len(cols))]
		n2 := map[string]bool{}
		for _, c := range keep {
			if numeric[c] {
				n2[c] = true
			}
		}
		return &algebra.Project{From: op, Cols: keep}, keep, n2
	case 2: // Join with a fresh leaf on a string equality
		r, rcols, rnum := g.leaf()
		pred := algebra.MustParseExpr(cols[g.next(len(cols))] + " = " + rcols[g.next(len(rcols))])
		all := append(append([]string{}, cols...), rcols...)
		for v := range rnum {
			numeric[v] = true
		}
		return &algebra.Join{L: op, R: r, Pred: pred}, all, numeric
	case 3: // Distinct
		return &algebra.Distinct{From: op}, cols, numeric
	case 4: // Sort by a column
		return &algebra.Sort{From: op, Cols: cols[:1]}, cols, numeric
	default: // Tree with a Skolem-function construction over the columns
		c := &algebra.Cons{Label: "entry", Skolem: "obj" + fmt.Sprint(g.n), SkolemArgs: cols[:1]}
		for _, col := range cols {
			c.Kids = append(c.Kids, algebra.ConsItem{
				C: &algebra.Cons{Label: strings.TrimPrefix(col, "$"), Var: col}})
		}
		t := &algebra.TreeOp{From: op, C: c}
		return t, t.Columns(), map[string]bool{}
	}
}

// TestOptimizerPreservesInvariantsOnRandomPlans is the property test: for N
// random valid plans, every rewriting round's output still passes
// planlint.Check — OptimizeChecked verifies after each rule and returns the
// first violation with the rule's name. The same loop is the type-system
// property test: every planlint-accepted plan typechecks (with a non-empty
// root — the generator only builds satisfiable filters), and all three
// optimizer rounds preserve the inferred root type, both through the
// per-stage internal verification and an explicit end-to-end subsumption
// check on the final plan.
func TestOptimizerPreservesInvariantsOnRandomPlans(t *testing.T) {
	opts, _, _ := culturalOpts(30)
	g := &planGen{seed: 20000531}
	for i := 0; i < 500; i++ {
		plan, _, _ := g.gen(1 + g.next(4))
		cfg := New(opts).lintConfig()
		if ds := planlint.Check(plan, cfg); len(ds) > 0 {
			t.Fatalf("generator produced an invalid plan (seed %d):\n%s\n%v",
				i, algebra.Describe(plan), planlint.Error(ds))
		}
		o := New(opts)
		tcfg := o.typecheckConfig()
		orig, err := typecheck.Infer(plan, tcfg)
		if err != nil {
			t.Fatalf("plan %d: lint-accepted plan fails to typecheck: %v\n%s",
				i, err, algebra.Describe(plan))
		}
		if orig.Root.Empty {
			t.Fatalf("plan %d: satisfiable plan inferred empty (%s)\n%s",
				i, orig.Root, algebra.Describe(plan))
		}
		out, err := o.OptimizeChecked(plan)
		if err != nil {
			t.Errorf("plan %d: %v\ninput:\n%s", i, err, algebra.Describe(plan))
			continue
		}
		// Belt and braces: the final plan passes a fresh check too.
		if ds := planlint.Check(out, cfg); len(ds) > 0 {
			t.Errorf("plan %d: final plan fails lint:\n%s\n%v",
				i, algebra.Describe(out), planlint.Error(ds))
		}
		// End-to-end: the optimized root type is subsumed per shared column
		// by the original's (the per-stage verification asserts this after
		// every rule; this re-checks the composition from outside).
		opt, err := typecheck.Infer(out, tcfg)
		if err != nil {
			t.Errorf("plan %d: optimized plan fails to typecheck: %v", i, err)
			continue
		}
		for _, col := range opt.Root.Cols {
			want, got := orig.Root.Type(col), opt.Root.Type(col)
			if want == nil || got == nil {
				continue
			}
			if !pattern.Subsumes(opt.Model, want, opt.Model, got) {
				t.Errorf("plan %d: column %s widened by optimization: %s not subsumed by %s\ninput:\n%s\noutput:\n%s",
					i, col, got, want, algebra.Describe(plan), algebra.Describe(out))
			}
		}
	}
}

// TestOptimizeCheckedReportsBrokenInput verifies the diagnostic path: an
// invalid plan is caught at the "input" stage with a typed error.
func TestOptimizeCheckedReportsBrokenInput(t *testing.T) {
	opts, _, _ := culturalOpts(10)
	bad := &algebra.Select{
		From: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work[ title: $t ] ]`)},
		Pred: algebra.MustParseExpr(`$ghost = 1`),
	}
	_, err := New(opts).OptimizeChecked(bad)
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InvariantError, got %v", err)
	}
	if ie.Stage != "input" {
		t.Errorf("stage = %q, want input", ie.Stage)
	}
	if len(ie.Diags) == 0 || ie.Diags[0].Code != planlint.CodeUnboundVar {
		t.Errorf("diagnostics = %v", ie.Diags)
	}
	// Optimize (unchecked) still returns a plan and does not panic.
	if New(opts).Optimize(bad) == nil {
		t.Error("Optimize must still return the rewritten plan")
	}
}

// TestVerifyNamesRoundAndRule checks the stage naming contract: a violation
// introduced mid-pipeline carries the round/rule label of the step that
// produced it.
func TestVerifyNamesRoundAndRule(t *testing.T) {
	opts, _, _ := culturalOpts(10)
	o := New(opts)
	o.verify("round2/wrapSources", &algebra.Select{
		From: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work[ title: $t ] ]`)},
		Pred: algebra.MustParseExpr(`$ghost = 1`),
	})
	var ie *InvariantError
	if !errors.As(o.err, &ie) {
		t.Fatalf("verify did not record the violation: %v", o.err)
	}
	if ie.Stage != "round2/wrapSources" {
		t.Errorf("stage = %q", ie.Stage)
	}
	if !strings.Contains(ie.Error(), "round2/wrapSources") {
		t.Errorf("error text must name the rule: %v", ie)
	}
}
