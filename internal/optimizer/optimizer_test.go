package optimizer

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/pattern"
	"repro/internal/tab"
)

func worksDoc(n int) *data.Node {
	doc := data.Elem("works")
	for i := 0; i < n; i++ {
		w := data.Elem("work",
			data.Text("artist", "Artist "+string(rune('A'+i%5))),
			data.Text("title", "T"+string(rune('a'+i%7))),
			data.Text("style", "Impressionist"),
			data.Text("size", "10 x 10"),
		)
		if i%3 == 0 {
			w.Add(data.Text("cplace", "Giverny"))
		}
		doc.Add(w)
	}
	return doc
}

func evalCtx(n int) *algebra.Context {
	ctx := algebra.NewContext()
	ctx.Catalog["works"] = data.Forest{worksDoc(n)}
	return ctx
}

func TestSplitBindDoc(t *testing.T) {
	b := &algebra.Bind{Doc: "works",
		F: filter.MustParse(`works[ *work[ title: $t, *($fields) ] ]`)}
	fresh := newFreshVars(b)
	docBind, residual, ok := SplitBindDoc(b, fresh.fresh)
	if !ok {
		t.Fatal("split failed")
	}
	residual.From = docBind
	ctx1, ctx2 := evalCtx(9), evalCtx(9)
	direct, err := b.Eval(ctx1)
	if err != nil {
		t.Fatal(err)
	}
	split, err := residual.Eval(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	// The split plan carries the extra document variable; project it away.
	proj := split.Project(direct.Cols...)
	if !direct.EqualUnordered(proj) {
		t.Errorf("split changed semantics:\n%s\nvs\n%s", direct, proj)
	}
	// With a pre-existing document variable, it is reused.
	b2 := &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w[ title: $t ] ]`)}
	db2, _, ok := SplitBindDoc(b2, fresh.fresh)
	if !ok || !strings.Contains(db2.F.String(), "$w") {
		t.Errorf("doc var not reused: %v", db2.F)
	}
	// Non-splittable shapes.
	for _, src := range []string{`works[ *work@$w ]`, `works[ work[ a: $x ] ]`, `works@$r[ *work[ a: $x ] ]`} {
		nb := &algebra.Bind{Doc: "works", F: filter.MustParse(src)}
		if _, _, ok := SplitBindDoc(nb, fresh.fresh); ok {
			t.Errorf("split should fail for %s", src)
		}
	}
}

// viewPlan builds a small Tree over literal rows for composition tests.
func viewPlan(rows *tab.Tab, cons string) *algebra.TreeOp {
	return &algebra.TreeOp{From: &algebra.Literal{T: rows}, C: algebra.MustParseCons(cons)}
}

func viewRows() *tab.Tab {
	tb := tab.New("$t", "$a", "$fields")
	add := func(title, artist string, extra ...*data.Node) {
		tb.Add(tab.AtomCell(data.String(title)), tab.AtomCell(data.String(artist)),
			tab.SeqCell(data.Forest(extra)))
	}
	add("Nympheas", "Monet", data.Text("cplace", "Giverny"))
	add("Bridge", "Monet")
	add("Dancers", "Degas", data.Text("cplace", "Paris"))
	add("Dancers", "Degas", data.Text("cplace", "Paris")) // duplicate row: one group
	return tb
}

func TestEliminateBindTreeBasic(t *testing.T) {
	tree := viewPlan(viewRows(), `doc[ *w($t, $a) := work[ title: $t, artist: $a, more: $fields ] ]`)
	bind := &algebra.Bind{From: tree, Col: "$doc",
		F: filter.MustParse(`doc[ *work[ title: $qt, more.cplace: $cl ] ]`)}
	out, ok := EliminateBindTree(bind, tree)
	if !ok {
		t.Fatal("composition failed")
	}
	if strings.Contains(algebra.Describe(out), "Tree(") {
		t.Errorf("Tree not eliminated:\n%s", algebra.Describe(out))
	}
	want, err := bind.Eval(algebra.NewContext())
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Eval(algebra.NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if !want.Project("$qt", "$cl").EqualUnordered(got) {
		t.Errorf("composition changed semantics:\nwant\n%s\ngot\n%s", want.Project("$qt", "$cl"), got)
	}
	if got.Len() != 2 {
		t.Errorf("rows = %d (Nympheas, Dancers)", got.Len())
	}
}

func TestEliminateBindTreeConstants(t *testing.T) {
	tree := viewPlan(viewRows(), `doc[ *w($t) := work[ title: $t, kind: "painting" ] ]`)
	// Constant agreement: filter checks the constructed constant.
	ok1 := &algebra.Bind{From: tree, Col: "$doc",
		F: filter.MustParse(`doc[ *work[ title: $qt, kind: "painting" ] ]`)}
	out, ok := EliminateBindTree(ok1, tree)
	if !ok {
		t.Fatal("composition failed")
	}
	got, err := out.Eval(algebra.NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("rows = %d, want 3 distinct titles", got.Len())
	}
	// Constant disagreement: statically empty.
	bad := &algebra.Bind{From: tree, Col: "$doc",
		F: filter.MustParse(`doc[ *work[ title: $qt, kind: "sculpture" ] ]`)}
	out2, ok := EliminateBindTree(bad, tree)
	if !ok {
		t.Fatal("composition failed")
	}
	if _, isLit := out2.(*algebra.Literal); !isLit {
		t.Errorf("disagreeing constant should yield an empty literal:\n%s", algebra.Describe(out2))
	}
	// Constant bound to a variable.
	cv := &algebra.Bind{From: tree, Col: "$doc",
		F: filter.MustParse(`doc[ *work[ title: $qt, kind: $k ] ]`)}
	out3, ok := EliminateBindTree(cv, tree)
	if !ok {
		t.Fatal("composition failed")
	}
	got3, err := out3.Eval(algebra.NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := got3.Rows[0][got3.ColIndex("$k")].AsAtom(); a.S != "painting" {
		t.Errorf("$k = %v", a)
	}
}

func TestEliminateBindTreeMissingElement(t *testing.T) {
	tree := viewPlan(viewRows(), `doc[ *w($t) := work[ title: $t ] ]`)
	bind := &algebra.Bind{From: tree, Col: "$doc",
		F: filter.MustParse(`doc[ *work[ ghost: $g ] ]`)}
	out, ok := EliminateBindTree(bind, tree)
	if !ok {
		t.Fatal("composition failed")
	}
	got, err := out.Eval(algebra.NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("rows = %d, want 0 (element never constructed)", got.Len())
	}
}

func TestEliminateBindTreeRefusesCrossStars(t *testing.T) {
	tree := viewPlan(viewRows(), `doc[ *w($t) := work[ title: $t ], *v($a) := artist[ name: $a ] ]`)
	bind := &algebra.Bind{From: tree, Col: "$doc",
		F: filter.MustParse(`doc[ *work[ title: $qt ], *artist[ name: $qa ] ]`)}
	if _, ok := EliminateBindTree(bind, tree); ok {
		t.Error("two var-binding star items must refuse composition (cross-product hazard)")
	}
}

func TestEliminateBindTreeSkolemLabelVar(t *testing.T) {
	tree := viewPlan(viewRows(), `doc[ *w($t) := work[ title: $t ] ]`)
	// label variable over a fixed construction label binds the constant
	bind := &algebra.Bind{From: tree, Col: "$doc",
		F: filter.MustParse(`doc[ *~$l[ title: $qt ] ]`)}
	out, ok := EliminateBindTree(bind, tree)
	if !ok {
		t.Fatal("composition failed")
	}
	got, err := out.Eval(algebra.NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := got.Rows[0][got.ColIndex("$l")].AsAtom(); a.S != "work" {
		t.Errorf("$l = %v", a)
	}
}

func TestSelectionPushdownThroughJoin(t *testing.T) {
	l := &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work[ title: $t ] ]`)}
	r := &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work[ title: $t2, style: $s ] ]`)}
	plan := &algebra.Select{
		From: &algebra.Join{L: l, R: r, Pred: algebra.MustParseExpr(`$t = $t2`)},
		Pred: algebra.MustParseExpr(`$s = "Impressionist" AND $t != "x"`),
	}
	out := pushSelections(plan)
	s := algebra.Describe(out)
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if !strings.Contains(lines[0], "Join") {
		t.Errorf("selects not pushed below join:\n%s", s)
	}
	// Semantics preserved.
	a, err := plan.Eval(evalCtx(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := out.Eval(evalCtx(10))
	if err != nil {
		t.Fatal(err)
	}
	if !a.EqualUnordered(b) {
		t.Error("pushdown changed semantics")
	}
}

func TestSimplifyProjects(t *testing.T) {
	base := &algebra.Literal{T: tab.New("$a", "$b")}
	plan := &algebra.Project{
		From: &algebra.Project{From: base, Cols: []string{"$x=$a", "$b"}},
		Cols: []string{"$y=$x"},
	}
	out := simplifyProjects(plan)
	p, ok := out.(*algebra.Project)
	if !ok || len(p.Cols) != 1 || p.Cols[0] != "$y=$a" {
		t.Errorf("collapsed projection = %s", algebra.Describe(out))
	}
	ident := &algebra.Project{From: base, Cols: []string{"$a", "$b"}}
	if simplifyProjects(ident) != base {
		t.Error("identity projection not removed")
	}
}

func worksStructure() Structure {
	m := pattern.MustParseModel(`model artworks
Works := works[ *&Work ]
Work  := work[ artist: String, title: String, style: String, size: String, *&Field ]
Field := Symbol[ *( Int | Float | Bool | String | &Field ) ]`)
	return Structure{Model: m, Pattern: "Works"}
}

func TestTypeDrivenFilterSimplification(t *testing.T) {
	// Figure 7 (lower middle): only title and artist are wanted; mandatory
	// unused items (style, size) are dropped from the filter, the optional
	// cplace is kept (it filters).
	o := New(Options{Structures: map[string]Structure{"works": worksStructure()}})
	b := &algebra.Bind{Doc: "works",
		F: filter.MustParse(`works[ *work[ artist: $a, title: $t, style: $s, size: $si, cplace: $cl ] ]`)}
	out := o.pruneColumns(b, varSet([]string{"$t", "$cl"}))
	nb := out.(*algebra.Bind)
	fs := nb.F.String()
	if strings.Contains(fs, "style") || strings.Contains(fs, "size") || strings.Contains(fs, "artist") {
		t.Errorf("mandatory unused items not dropped: %s", fs)
	}
	if !strings.Contains(fs, "cplace") {
		t.Errorf("optional item wrongly dropped: %s", fs)
	}
	// Semantics on data that satisfies the structure are unchanged for the
	// needed columns.
	a, err := b.Eval(evalCtx(10))
	if err != nil {
		t.Fatal(err)
	}
	bres, err := nb.Eval(evalCtx(10))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Project("$t", "$cl").EqualUnordered(bres.Project("$t", "$cl")) {
		t.Error("type-driven simplification changed semantics")
	}
}

func TestTypeSimplificationKeepsConstraints(t *testing.T) {
	o := New(Options{Structures: map[string]Structure{"works": worksStructure()}})
	b := &algebra.Bind{Doc: "works",
		F: filter.MustParse(`works[ *work[ title: $t, style: "Impressionist" ] ]`)}
	out := o.pruneColumns(b, varSet([]string{"$t"}))
	if !strings.Contains(out.(*algebra.Bind).F.String(), "Impressionist") {
		t.Error("constant constraints must never be dropped")
	}
}

func TestOptimizeIsIdempotentOnSimplePlans(t *testing.T) {
	o := New(Options{})
	plan := &algebra.Select{
		From: &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work[ title: $t ] ]`)},
		Pred: algebra.MustParseExpr(`$t = "Ta"`),
	}
	once := o.Optimize(plan)
	twice := o.Optimize(once)
	if algebra.Describe(once) != algebra.Describe(twice) {
		t.Errorf("not idempotent:\n%s\nvs\n%s", algebra.Describe(once), algebra.Describe(twice))
	}
}

func TestPropertyPushdownPreservesSemantics(t *testing.T) {
	f := func(nWorks uint8, constIdx uint8) bool {
		n := int(nWorks%16) + 1
		title := "T" + string(rune('a'+constIdx%7))
		plan := &algebra.Select{
			From: &algebra.Join{
				L:    &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work[ title: $t ] ]`)},
				R:    &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work[ title: $t2, artist: $a ] ]`)},
				Pred: algebra.MustParseExpr(`$t = $t2`),
			},
			Pred: algebra.Eq(algebra.Var{Name: "$t"}, algebra.Const{Atom: data.String(title)}),
		}
		out := pushSelections(plan)
		a, err1 := plan.Eval(evalCtx(n))
		b, err2 := out.Eval(evalCtx(n))
		if err1 != nil || err2 != nil {
			return false
		}
		return a.EqualUnordered(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
