package optimizer

// Typed rewrite verification: under Options.CheckInvariants the optimizer
// infers the plan's root row type once on the input (typecheck.Infer) and
// re-infers it after every rewriting step. A rewrite must keep each root
// column's inferred type subsumed by the original's — a rewrite that
// changes what a column can contain is a miscompile even when the plan
// stays well-formed, and is reported as a *TypeError naming the stage and
// the deepest operator that introduced the offending type. A step whose
// result is provably empty is exempt (every per-column claim is vacuous),
// which is exactly what makes dead-branch pruning type-sound.

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/pattern"
	"repro/internal/tab"
	"repro/internal/typecheck"
)

// TypeError reports a rewriting step that changed the plan's inferred type:
// column Col's type under the rewritten plan (Got) is not subsumed by its
// type under the original plan (Want). Path locates the deepest operator of
// the rewritten plan whose inferred type for Col already violates the
// subsumption, in planlint's path notation.
type TypeError struct {
	Stage string
	Path  string
	Col   string
	Want  *pattern.P
	Got   *pattern.P
}

// Error implements error.
func (e *TypeError) Error() string {
	return fmt.Sprintf("optimizer: type changed after %s: column %s at %s has inferred type %s, not subsumed by the original %s",
		e.Stage, e.Col, e.Path, renderPat(e.Got), renderPat(e.Want))
}

func renderPat(p *pattern.P) string {
	if p == nil {
		return "Any"
	}
	return p.String()
}

// typecheckConfig maps the optimizer's structures into the inference
// configuration.
func (o *Optimizer) typecheckConfig() *typecheck.Config {
	st := make(map[string]typecheck.Structure, len(o.opts.Structures))
	for doc, s := range o.opts.Structures {
		st[doc] = typecheck.Structure{Model: s.Model, Pattern: s.Pattern}
	}
	return &typecheck.Config{Structures: st}
}

// captureRootType records the input plan's inferred root type as the
// baseline every rewriting step is verified against.
func (o *Optimizer) captureRootType(plan algebra.Op) {
	o.origType = nil
	if !o.opts.CheckInvariants {
		return
	}
	if ann, err := typecheck.Infer(plan, o.tcfg); err == nil {
		o.origType = ann.Root
	}
}

// verifyTypes asserts the rewritten plan's root type is subsumed per column
// by the original's; called from verify after the well-formedness lint.
func (o *Optimizer) verifyTypes(stage string, plan algebra.Op) {
	if o.origType == nil || o.origType.Empty || o.err != nil {
		return
	}
	ann, err := typecheck.Infer(plan, o.tcfg)
	if err != nil || ann.Root.Empty {
		// A provably-empty result makes every per-column claim vacuous
		// (dead-branch pruning legitimately lands here).
		return
	}
	for _, col := range ann.Root.Cols {
		want := o.origType.Type(col)
		got := ann.Root.Type(col)
		if want == nil || got == nil {
			// Unknown on either side: nothing provable. Losing inferable
			// precision is not a type change; only a provable one is.
			continue
		}
		if !pattern.Subsumes(ann.Model, want, ann.Model, got) {
			path := blamePath(plan, ann, col, want)
			o.err = &TypeError{Stage: stage, Path: path, Col: col, Want: want, Got: got}
			o.trace("TYPE CHANGED after %s: column %s at %s: %s not subsumed by %s",
				stage, col, path, got, want)
			return
		}
	}
}

// blamePath locates the deepest operator whose inferred type for col
// already violates the subsumption against want, in planlint's path
// notation (operator short names joined by '/', with L/R side markers).
func blamePath(plan algebra.Op, ann *typecheck.Annotation, col string, want *pattern.P) string {
	var walk func(op algebra.Op, path string) (string, bool)
	walk = func(op algebra.Op, path string) (string, bool) {
		if op == nil {
			return "", false
		}
		path = extendPath(path, opShort(op))
		for i, ch := range op.Children() {
			p := path
			if seg := childSeg(op, i); seg != "" {
				p = extendPath(path, seg)
			}
			if bp, ok := walk(ch, p); ok {
				return bp, ok
			}
		}
		if rt := ann.Types[op]; rt != nil && !rt.Empty {
			if got := rt.Type(col); got != nil && !pattern.Subsumes(ann.Model, want, ann.Model, got) {
				return path, true
			}
		}
		return "", false
	}
	if bp, ok := walk(plan, ""); ok {
		return bp
	}
	return opShort(plan)
}

func extendPath(path, seg string) string {
	if path == "" {
		return seg
	}
	return path + "/" + seg
}

// opShort mirrors planlint's operator short names so TypeError paths and
// lint diagnostic paths read alike.
func opShort(op algebra.Op) string {
	// yat-lint:ignore intentionally partial: unknown operators fall back to their Go type name
	switch op.(type) {
	case *algebra.Doc:
		return "Doc"
	case *algebra.Bind:
		return "Bind"
	case *algebra.Select:
		return "Select"
	case *algebra.Project:
		return "Project"
	case *algebra.MapExpr:
		return "Map"
	case *algebra.Join:
		return "Join"
	case *algebra.DJoin:
		return "DJoin"
	case *algebra.Union:
		return "Union"
	case *algebra.Intersect:
		return "Intersect"
	case *algebra.Distinct:
		return "Distinct"
	case *algebra.Group:
		return "Group"
	case *algebra.Sort:
		return "Sort"
	case *algebra.TreeOp:
		return "Tree"
	case *algebra.SourceQuery:
		return "SourceQuery"
	case *algebra.Literal:
		return "Literal"
	default:
		return fmt.Sprintf("%T", op)
	}
}

// childSeg returns the path segment marking which side of a binary operator
// a child sits on (empty for unary operators, matching planlint).
func childSeg(op algebra.Op, i int) string {
	// yat-lint:ignore intentionally partial: only binary operators need side markers
	switch op.(type) {
	case *algebra.Join, *algebra.DJoin, *algebra.Union, *algebra.Intersect:
		return []string{"L", "R"}[i]
	}
	return ""
}

// pruneDeadBranches eliminates operators the type inference proves dead
// (Options.PruneDeadBranches, round 1): a Union branch whose type is empty
// is dropped — renaming the surviving right branch to the left's column
// names Union would have output — and a Join/DJoin with a provably-empty
// side collapses to an empty literal, letting projection pruning eliminate
// the other side's source access too.
func (o *Optimizer) pruneDeadBranches(plan algebra.Op) algebra.Op {
	ann, err := typecheck.Infer(plan, o.tcfg)
	if err != nil {
		return plan
	}
	empty := func(op algebra.Op) bool {
		rt := ann.Types[op]
		return rt != nil && rt.Empty
	}
	var rw func(op algebra.Op) algebra.Op
	rw = func(op algebra.Op) algebra.Op {
		// Decide on the original operators: the annotation is keyed by the
		// pre-rewrite pointers, so inspect before rebuilding.
		// yat-lint:ignore intentionally partial: only set-combining operators have a prunable side
		switch x := op.(type) {
		case *algebra.Union:
			le, re := empty(x.L), empty(x.R)
			switch {
			case re && !le:
				o.trace("pruned provably-empty right branch of Union")
				return rw(x.L)
			case le && !re:
				lc, rc := x.L.Columns(), x.R.Columns()
				if len(lc) != len(rc) {
					break // malformed union; the lint reports it
				}
				// Union outputs the left column names; keep them by renaming.
				cols := make([]string, len(lc))
				for i := range lc {
					if lc[i] == rc[i] {
						cols[i] = lc[i]
					} else {
						cols[i] = lc[i] + "=" + rc[i]
					}
				}
				o.trace("pruned provably-empty left branch of Union")
				return &algebra.Project{From: rw(x.R), Cols: cols}
			}
		case *algebra.Join:
			if empty(x.L) || empty(x.R) {
				o.trace("collapsed Join with provably-empty side to an empty literal")
				return &algebra.Literal{T: tab.New(x.Columns()...)}
			}
		case *algebra.DJoin:
			if empty(x.L) || empty(x.R) {
				o.trace("collapsed DJoin with provably-empty side to an empty literal")
				return &algebra.Literal{T: tab.New(x.Columns()...)}
			}
		}
		return rebuildChildren(op, rw)
	}
	return rw(plan)
}
