package optimizer

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/filter"
	"repro/internal/pattern"
)

// typedOpts declares one document schema so the type inference has
// something to prove: docs conforms to doc[ *item[ name[String], num[Int] ] ].
func typedOpts() Options {
	m := pattern.NewModel("test")
	m.Define("Doc", pattern.NodeItems("doc",
		pattern.Starred(pattern.Node("item",
			pattern.Node("name", pattern.Str()),
			pattern.Node("num", pattern.Int())))))
	return Options{
		Structures:      map[string]Structure{"docs": {Model: m, Pattern: "Doc"}},
		CheckInvariants: true,
	}
}

// TestVerifyTypesCatchesBreakingRewrite feeds verify a "rewrite" that
// silently changes a column's type — the plans are well-formed, planlint is
// happy with both, but $n went from String to Int — and expects a TypeError
// locating the operator that introduced the change.
func TestVerifyTypesCatchesBreakingRewrite(t *testing.T) {
	orig := &algebra.Select{
		From: &algebra.Bind{Doc: "docs", F: filter.MustParse(`doc[ *item[ name: $n ] ]`)},
		Pred: algebra.MustParseExpr(`$n = "x"`),
	}
	broken := &algebra.Select{
		From: &algebra.Bind{Doc: "docs", F: filter.MustParse(`doc[ *item[ num: $n ] ]`)},
		Pred: algebra.MustParseExpr(`$n = "x"`),
	}
	o := New(typedOpts())
	o.tcfg = o.typecheckConfig()
	o.captureRootType(orig)
	o.verify("round1/breakingRewrite", broken)
	if o.err == nil {
		t.Fatal("type-changing rewrite not caught")
	}
	te, ok := o.err.(*TypeError)
	if !ok {
		t.Fatalf("err = %v (%T), want *TypeError", o.err, o.err)
	}
	if te.Stage != "round1/breakingRewrite" {
		t.Errorf("Stage = %q", te.Stage)
	}
	if te.Col != "$n" {
		t.Errorf("Col = %q, want $n", te.Col)
	}
	// The blame path names the deepest operator carrying the changed type.
	if te.Path != "Select/Bind" {
		t.Errorf("Path = %q, want Select/Bind", te.Path)
	}
	if !strings.Contains(te.Error(), "not subsumed") {
		t.Errorf("Error() = %q", te.Error())
	}
}

// TestVerifyTypesAcceptsRefiningRewrite: narrowing a column's type (the
// rewritten type is subsumed by the original) is fine.
func TestVerifyTypesAcceptsRefiningRewrite(t *testing.T) {
	orig := &algebra.Bind{Doc: "docs", F: filter.MustParse(`doc[ *item[ $f ] ]`)}
	refined := &algebra.Bind{Doc: "docs", F: filter.MustParse(`doc[ *item[ name@$f ] ]`)}
	o := New(typedOpts())
	o.tcfg = o.typecheckConfig()
	o.captureRootType(orig)
	o.verify("round1/refine", refined)
	if o.err != nil {
		t.Fatalf("refining rewrite rejected: %v", o.err)
	}
}

func TestPruneDeadBranchesUnion(t *testing.T) {
	live := func() *algebra.Bind {
		return &algebra.Bind{Doc: "docs", F: filter.MustParse(`doc[ *item[ name: $n ] ]`)}
	}
	// Well-formed (planlint accepts it: every label exists in the schema) but
	// provably dead: num can never carry the string constant.
	dead := func() *algebra.Bind {
		return &algebra.Bind{Doc: "docs", F: filter.MustParse(`doc[ *item[ name: $n, num: "zap" ] ]`)}
	}
	opts := typedOpts()
	opts.PruneDeadBranches = true
	for name, plan := range map[string]algebra.Op{
		"DeadRight": &algebra.Union{L: live(), R: dead()},
		"DeadLeft":  &algebra.Union{L: dead(), R: live()},
	} {
		t.Run(name, func(t *testing.T) {
			out, err := New(opts).OptimizeChecked(plan)
			if err != nil {
				t.Fatalf("OptimizeChecked: %v", err)
			}
			if got, want := algebra.Describe(out), algebra.Describe(live()); got != want {
				t.Errorf("pruned plan:\n%s\nwant:\n%s", got, want)
			}
		})
	}
	// Without the flag the union survives.
	out, err := New(typedOpts()).OptimizeChecked(&algebra.Union{L: live(), R: dead()})
	if err != nil {
		t.Fatalf("OptimizeChecked: %v", err)
	}
	if _, ok := out.(*algebra.Union); !ok {
		t.Errorf("union pruned without PruneDeadBranches: %s", algebra.Describe(out))
	}
}

func TestPruneDeadBranchesCollapsesJoin(t *testing.T) {
	live := &algebra.Bind{Doc: "docs", F: filter.MustParse(`doc[ *item[ name: $n ] ]`)}
	dead := &algebra.Bind{Doc: "docs", F: filter.MustParse(`doc[ *item[ name: $m, num: "zap" ] ]`)}
	opts := typedOpts()
	opts.PruneDeadBranches = true
	out, err := New(opts).OptimizeChecked(&algebra.Join{
		L: live, R: dead, Pred: algebra.MustParseExpr(`$n = $m`),
	})
	if err != nil {
		t.Fatalf("OptimizeChecked: %v", err)
	}
	lit, ok := out.(*algebra.Literal)
	if !ok {
		t.Fatalf("join not collapsed: %s", algebra.Describe(out))
	}
	if lit.T.Len() != 0 {
		t.Errorf("collapsed literal has %d rows", lit.T.Len())
	}
}
