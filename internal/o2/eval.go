package o2

import (
	"fmt"
	"sort"
)

// OQL evaluation: nested-loop iteration over the from-ranges with dependent
// paths, predicate filtering, struct projection, distinct and order-by.
// When the where-clause contains `var.attr = literal` over an extent range
// with a hash index, the index restricts that range's candidates — the
// associative access of Section 5.3.

type oenv map[string]Val

// Execute parses and runs an OQL query, returning the result collection
// (a bag, or a set under distinct).
func (db *DB) Execute(src string) (Val, error) {
	q, err := ParseOQL(src)
	if err != nil {
		return Nil(), err
	}
	return db.Run(q)
}

// Run evaluates a parsed query. Concurrent Runs are safe: evaluation only
// reads the schema, extents and indexes; the query counter is locked.
func (db *DB) Run(q *Query) (Val, error) {
	db.statsMu.Lock()
	db.QueriesRun++
	db.statsMu.Unlock()
	var out []Val
	env := oenv{}
	err := db.iterate(q, q.Ranges, env, func() error {
		if q.Where != nil {
			ok, err := db.truth(q.Where, env)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		v, err := db.project(q, env)
		if err != nil {
			return err
		}
		out = append(out, v)
		return nil
	})
	if err != nil {
		return Nil(), err
	}
	if len(q.OrderBy) > 0 {
		if err := db.orderBy(q, out, env); err != nil {
			return Nil(), err
		}
	}
	kind := CBag
	if q.Distinct {
		kind = CSet
		var dedup []Val
		for _, v := range out {
			found := false
			for _, d := range dedup {
				if d.Equal(v) {
					found = true
					break
				}
			}
			if !found {
				dedup = append(dedup, v)
			}
		}
		out = dedup
	}
	return Coll(kind, out...), nil
}

// orderBy sorts results by re-evaluating order keys; it requires each order
// key to be a projected field or a literal path over the projection.
func (db *DB) orderBy(q *Query, out []Val, env oenv) error {
	keys := make([][]Val, len(out))
	for i, row := range out {
		keys[i] = make([]Val, len(q.OrderBy))
		for j, ob := range q.OrderBy {
			// Order keys reference projected fields by name.
			p, ok := ob.E.(*OPath)
			if !ok || len(p.Steps) != 0 || row.Kind != VTuple {
				return fmt.Errorf("oql: order by supports projected field names only")
			}
			v, exists := row.Fields[p.Root]
			if !exists {
				return fmt.Errorf("oql: order by unknown field %q", p.Root)
			}
			keys[i][j] = v
		}
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for j, ob := range q.OrderBy {
			c := keys[idx[a]][j].Compare(keys[idx[b]][j])
			if ob.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	sorted := make([]Val, len(out))
	for i, k := range idx {
		sorted[i] = out[k]
	}
	copy(out, sorted)
	return nil
}

func (db *DB) project(q *Query, env oenv) (Val, error) {
	if q.Star {
		if len(q.Ranges) == 1 {
			return env[q.Ranges[0].Var], nil
		}
		pairs := []any{}
		for _, r := range q.Ranges {
			pairs = append(pairs, r.Var, env[r.Var])
		}
		return Tuple(pairs...), nil
	}
	if len(q.Proj) == 1 && q.Proj[0].Name == "" {
		return db.eval(q.Proj[0].E, env)
	}
	pairs := []any{}
	for i, p := range q.Proj {
		v, err := db.eval(p.E, env)
		if err != nil {
			return Nil(), err
		}
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("f%d", i+1)
		}
		pairs = append(pairs, name, v)
	}
	return Tuple(pairs...), nil
}

// iterate runs fn for every binding of the remaining ranges.
func (db *DB) iterate(q *Query, ranges []Range, env oenv, fn func() error) error {
	if len(ranges) == 0 {
		return fn()
	}
	r := ranges[0]
	coll, err := db.rangeCandidates(q, r, env)
	if err != nil {
		return err
	}
	for _, elem := range coll {
		env[r.Var] = elem
		if err := db.iterate(q, ranges[1:], env, fn); err != nil {
			return err
		}
	}
	delete(env, r.Var)
	return nil
}

// rangeCandidates resolves the collection a range iterates, using a hash
// index when the range scans a whole extent and the where-clause pins an
// indexed attribute to a literal.
func (db *DB) rangeCandidates(q *Query, r Range, env oenv) ([]Val, error) {
	// Direct extent scan: try the index.
	if len(r.Path.Steps) == 0 {
		if _, bound := env[r.Path.Root]; !bound {
			if oids, ok := db.Extents[r.Path.Root]; ok {
				cls := db.Schema.ClassByExtent(r.Path.Root)
				if cls != nil && q.Where != nil {
					if sel, ok := db.indexableConjunct(q.Where, r.Var, cls); ok {
						return sel, nil
					}
				}
				out := make([]Val, len(oids))
				for i, oid := range oids {
					out[i] = Oid(oid)
				}
				return out, nil
			}
		}
	}
	v, err := db.evalPath(r.Path, env)
	if err != nil {
		return nil, err
	}
	if v.Kind != VColl {
		return nil, fmt.Errorf("oql: range %s iterates a non-collection %s", r.Var, v)
	}
	return v.Elems, nil
}

// indexableConjunct scans the where-clause conjuncts for `var.attr = lit`
// with an index on (class, attr); it returns the restricted candidates.
func (db *DB) indexableConjunct(e OExpr, rangeVar string, cls *Class) ([]Val, bool) {
	switch x := e.(type) {
	case OBool:
		if x.Op == "and" {
			if got, ok := db.indexableConjunct(x.L, rangeVar, cls); ok {
				return got, true
			}
			return db.indexableConjunct(x.R, rangeVar, cls)
		}
	case OCmp:
		if x.Op != "=" {
			return nil, false
		}
		path, lit := x.L, x.R
		p, ok := path.(*OPath)
		if !ok {
			p, ok = lit.(*OPath)
			if !ok {
				return nil, false
			}
			lit = x.L
		}
		l, ok := lit.(OLit)
		if !ok {
			return nil, false
		}
		if p.Root != rangeVar || len(p.Steps) != 1 || p.Steps[0].Method {
			return nil, false
		}
		oids, ok := db.IndexLookup(cls.Name, p.Steps[0].Name, l.V)
		if !ok {
			return nil, false
		}
		out := make([]Val, len(oids))
		for i, oid := range oids {
			out[i] = Oid(oid)
		}
		return out, true
	}
	return nil, false
}

func (db *DB) truth(e OExpr, env oenv) (bool, error) {
	v, err := db.eval(e, env)
	if err != nil {
		return false, err
	}
	if v.Kind != VBool {
		return false, fmt.Errorf("oql: predicate evaluated to %s, not boolean", v)
	}
	return v.B, nil
}

func (db *DB) eval(e OExpr, env oenv) (Val, error) {
	switch x := e.(type) {
	case OLit:
		return x.V, nil
	case *OPath:
		return db.evalPath(x, env)
	case OCmp:
		l, err := db.eval(x.L, env)
		if err != nil {
			return Nil(), err
		}
		r, err := db.eval(x.R, env)
		if err != nil {
			return Nil(), err
		}
		switch x.Op {
		case "=":
			return Bool(l.Equal(r)), nil
		case "!=":
			return Bool(!l.Equal(r)), nil
		}
		if !l.IsNumeric() && l.Kind != VStr || !r.IsNumeric() && r.Kind != VStr {
			return Nil(), fmt.Errorf("oql: ordered comparison on %s and %s", l, r)
		}
		c := l.Compare(r)
		switch x.Op {
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		case ">=":
			return Bool(c >= 0), nil
		default:
			return Nil(), fmt.Errorf("oql: unknown comparison %q", x.Op)
		}
	case OBool:
		if x.Op == "not" {
			v, err := db.truth(x.R, env)
			if err != nil {
				return Nil(), err
			}
			return Bool(!v), nil
		}
		l, err := db.truth(x.L, env)
		if err != nil {
			return Nil(), err
		}
		if x.Op == "and" && !l {
			return Bool(false), nil
		}
		if x.Op == "or" && l {
			return Bool(true), nil
		}
		r, err := db.truth(x.R, env)
		if err != nil {
			return Nil(), err
		}
		return Bool(r), nil
	case OArith:
		l, err := db.eval(x.L, env)
		if err != nil {
			return Nil(), err
		}
		r, err := db.eval(x.R, env)
		if err != nil {
			return Nil(), err
		}
		if !l.IsNumeric() || !r.IsNumeric() {
			return Nil(), fmt.Errorf("oql: arithmetic on %s and %s", l, r)
		}
		if l.Kind == VInt && r.Kind == VInt && x.Op != "/" {
			switch x.Op {
			case "+":
				return Int(l.I + r.I), nil
			case "-":
				return Int(l.I - r.I), nil
			case "*":
				return Int(l.I * r.I), nil
			}
		}
		a, b := l.AsFloat(), r.AsFloat()
		switch x.Op {
		case "+":
			return Float(a + b), nil
		case "-":
			return Float(a - b), nil
		case "*":
			return Float(a * b), nil
		case "/":
			if b == 0 {
				return Nil(), fmt.Errorf("oql: division by zero")
			}
			return Float(a / b), nil
		default:
			return Nil(), fmt.Errorf("oql: unknown operator %q", x.Op)
		}
	default:
		return Nil(), fmt.Errorf("oql: unsupported expression %T", e)
	}
}

// evalPath resolves a path: the root is a bound variable or a named extent;
// steps navigate tuple attributes (dereferencing oids transparently) or
// invoke methods.
func (db *DB) evalPath(p *OPath, env oenv) (Val, error) {
	var cur Val
	if v, ok := env[p.Root]; ok {
		cur = v
	} else if oids, ok := db.Extents[p.Root]; ok {
		elems := make([]Val, len(oids))
		for i, oid := range oids {
			elems[i] = Oid(oid)
		}
		cur = Coll(CSet, elems...)
	} else {
		return Nil(), fmt.Errorf("oql: unknown name %q", p.Root)
	}
	for _, s := range p.Steps {
		if s.Method {
			if cur.Kind != VOid {
				return Nil(), fmt.Errorf("oql: method %s on non-object %s", s.Name, cur)
			}
			o := db.Objects[cur.S]
			if o == nil {
				return Nil(), fmt.Errorf("oql: dangling reference %s", cur.S)
			}
			m := db.Schema.Classes[o.Class].Methods[s.Name]
			if m == nil {
				return Nil(), fmt.Errorf("oql: class %s has no method %q", o.Class, s.Name)
			}
			v, err := m.Fn(db, o)
			if err != nil {
				return Nil(), err
			}
			cur = v
			continue
		}
		// Dereference before attribute access.
		if cur.Kind == VOid {
			o := db.Objects[cur.S]
			if o == nil {
				return Nil(), fmt.Errorf("oql: dangling reference %s", cur.S)
			}
			cur = o.Value
		}
		if cur.Kind != VTuple {
			return Nil(), fmt.Errorf("oql: attribute %q on non-tuple %s", s.Name, cur)
		}
		v, ok := cur.Fields[s.Name]
		if !ok {
			return Nil(), fmt.Errorf("oql: unknown attribute %q", s.Name)
		}
		cur = v
	}
	return cur, nil
}
