// Package o2 is the structured-source substrate of the reproduction: an
// in-memory ODMG-style object database standing in for the (commercial,
// long-defunct) O₂ system the paper wraps. It provides a schema manager
// (classes, tuple types, collections, references, methods), named extents,
// object identity, hash indexes for associative access, and an OQL subset
// (select–from–where with path expressions over nested collections, method
// calls, order by, distinct) sufficient for every query of Section 4.1.
package o2

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// VKind discriminates runtime values.
type VKind int

// Value kinds.
const (
	VNil VKind = iota
	VInt
	VFloat
	VBool
	VStr
	VTuple
	VColl
	VOid
)

// Val is an O₂ runtime value.
type Val struct {
	Kind   VKind
	I      int64
	F      float64
	B      bool
	S      string // VStr and VOid
	Names  []string
	Fields map[string]Val
	Col    CollKind
	Elems  []Val
}

// CollKind enumerates ODMG collection constructors.
type CollKind int

// Collection kinds.
const (
	CSet CollKind = iota
	CBag
	CList
	CArray
)

// String names the collection kind.
func (c CollKind) String() string {
	switch c {
	case CSet:
		return "set"
	case CBag:
		return "bag"
	case CList:
		return "list"
	default:
		return "array"
	}
}

// Value constructors.

// Nil returns the nil value.
func Nil() Val { return Val{Kind: VNil} }

// Int wraps an integer.
func Int(v int64) Val { return Val{Kind: VInt, I: v} }

// Float wraps a float.
func Float(v float64) Val { return Val{Kind: VFloat, F: v} }

// Bool wraps a boolean.
func Bool(v bool) Val { return Val{Kind: VBool, B: v} }

// Str wraps a string.
func Str(v string) Val { return Val{Kind: VStr, S: v} }

// Oid wraps an object identifier.
func Oid(id string) Val { return Val{Kind: VOid, S: id} }

// Tuple builds a tuple value with fields in the given order.
func Tuple(pairs ...any) Val {
	v := Val{Kind: VTuple, Fields: map[string]Val{}}
	for i := 0; i+1 < len(pairs); i += 2 {
		name := pairs[i].(string)
		v.Names = append(v.Names, name)
		v.Fields[name] = pairs[i+1].(Val)
	}
	return v
}

// Coll builds a collection value.
func Coll(kind CollKind, elems ...Val) Val {
	return Val{Kind: VColl, Col: kind, Elems: elems}
}

// IsNumeric reports whether the value is Int or Float.
func (v Val) IsNumeric() bool { return v.Kind == VInt || v.Kind == VFloat }

// AsFloat widens a numeric value.
func (v Val) AsFloat() float64 {
	if v.Kind == VInt {
		return float64(v.I)
	}
	return v.F
}

// Equal compares two values (numeric widening, deep for tuples/collections;
// sets compare order-insensitively).
func (v Val) Equal(w Val) bool {
	if v.IsNumeric() && w.IsNumeric() {
		return v.AsFloat() == w.AsFloat()
	}
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case VNil:
		return true
	case VBool:
		return v.B == w.B
	case VStr, VOid:
		return v.S == w.S
	case VTuple:
		if len(v.Names) != len(w.Names) {
			return false
		}
		for _, n := range v.Names {
			wf, ok := w.Fields[n]
			if !ok || !v.Fields[n].Equal(wf) {
				return false
			}
		}
		return true
	case VColl:
		if v.Col != w.Col || len(v.Elems) != len(w.Elems) {
			return false
		}
		if v.Col == CSet || v.Col == CBag {
			a, b := append([]Val(nil), v.Elems...), append([]Val(nil), w.Elems...)
			sortVals(a)
			sortVals(b)
			for i := range a {
				if !a[i].Equal(b[i]) {
					return false
				}
			}
			return true
		}
		for i := range v.Elems {
			if !v.Elems[i].Equal(w.Elems[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare defines a total order usable for sorting (ORDER BY, set
// normalization); cross-kind ordering is by kind.
func (v Val) Compare(w Val) int {
	if v.IsNumeric() && w.IsNumeric() {
		a, b := v.AsFloat(), w.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.Kind != w.Kind {
		if v.Kind < w.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case VBool:
		switch {
		case v.B == w.B:
			return 0
		case !v.B:
			return -1
		default:
			return 1
		}
	case VStr, VOid:
		return strings.Compare(v.S, w.S)
	default:
		return strings.Compare(v.String(), w.String())
	}
}

func sortVals(vs []Val) {
	sort.SliceStable(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
}

// String renders the value in OQL-ish literal syntax.
func (v Val) String() string {
	switch v.Kind {
	case VNil:
		return "nil"
	case VInt:
		return fmt.Sprintf("%d", v.I)
	case VFloat:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v.F), "0"), ".")
	case VBool:
		return fmt.Sprintf("%t", v.B)
	case VStr:
		return fmt.Sprintf("%q", v.S)
	case VOid:
		return "&" + v.S
	case VTuple:
		parts := make([]string, len(v.Names))
		for i, n := range v.Names {
			parts[i] = fmt.Sprintf("%s: %s", n, v.Fields[n])
		}
		return "tuple(" + strings.Join(parts, ", ") + ")"
	case VColl:
		parts := make([]string, len(v.Elems))
		for i, e := range v.Elems {
			parts[i] = e.String()
		}
		return v.Col.String() + "(" + strings.Join(parts, ", ") + ")"
	default:
		return "?"
	}
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

// TKind discriminates schema types.
type TKind int

// Type kinds.
const (
	TInt TKind = iota
	TFloat
	TBool
	TStr
	TTuple
	TColl
	TClass
)

// Type is an ODMG type.
type Type struct {
	Kind   TKind
	Fields []Field  // TTuple
	Col    CollKind // TColl
	Elem   *Type    // TColl
	Class  string   // TClass
}

// Field is a named tuple component.
type Field struct {
	Name string
	Type *Type
}

// Type constructors.

// TyInt returns the Int type.
func TyInt() *Type { return &Type{Kind: TInt} }

// TyFloat returns the Float type.
func TyFloat() *Type { return &Type{Kind: TFloat} }

// TyBool returns the Bool type.
func TyBool() *Type { return &Type{Kind: TBool} }

// TyStr returns the String type.
func TyStr() *Type { return &Type{Kind: TStr} }

// TyTuple builds a tuple type.
func TyTuple(fields ...Field) *Type { return &Type{Kind: TTuple, Fields: fields} }

// TyColl builds a collection type.
func TyColl(kind CollKind, elem *Type) *Type {
	return &Type{Kind: TColl, Col: kind, Elem: elem}
}

// TyClass builds a reference-to-class type.
func TyClass(name string) *Type { return &Type{Kind: TClass, Class: name} }

// F builds a field.
func F(name string, t *Type) Field { return Field{Name: name, Type: t} }

// Field returns the tuple field with the given name, or nil.
func (t *Type) Field(name string) *Type {
	if t == nil || t.Kind != TTuple {
		return nil
	}
	for _, f := range t.Fields {
		if f.Name == name {
			return f.Type
		}
	}
	return nil
}

// String renders the type in ODL-ish syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TInt:
		return "integer"
	case TFloat:
		return "float"
	case TBool:
		return "boolean"
	case TStr:
		return "string"
	case TTuple:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.Name + ": " + f.Type.String()
		}
		return "tuple(" + strings.Join(parts, ", ") + ")"
	case TColl:
		return t.Col.String() + "<" + t.Elem.String() + ">"
	case TClass:
		return t.Class
	default:
		return "?"
	}
}

// Method is a class method implemented by a Go function.
type Method struct {
	Name   string
	Class  string
	Output *Type
	Fn     func(db *DB, self *Object) (Val, error)
}

// Class declares a class with its value type, extent name and methods.
type Class struct {
	Name    string
	Type    *Type
	Extent  string
	Methods map[string]*Method
}

// Schema is the database schema: classes and their declaration order.
type Schema struct {
	Classes map[string]*Class
	Order   []string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema { return &Schema{Classes: map[string]*Class{}} }

// AddClass declares a class with an extent of the given name.
func (s *Schema) AddClass(name string, typ *Type, extent string) *Class {
	c := &Class{Name: name, Type: typ, Extent: extent, Methods: map[string]*Method{}}
	if _, ok := s.Classes[name]; !ok {
		s.Order = append(s.Order, name)
	}
	s.Classes[name] = c
	return c
}

// AddMethod registers a method on a class.
func (s *Schema) AddMethod(class, name string, out *Type, fn func(*DB, *Object) (Val, error)) error {
	c := s.Classes[class]
	if c == nil {
		return fmt.Errorf("o2: unknown class %q", class)
	}
	c.Methods[name] = &Method{Name: name, Class: class, Output: out, Fn: fn}
	return nil
}

// ClassByExtent finds the class whose extent has the given name.
func (s *Schema) ClassByExtent(extent string) *Class {
	for _, n := range s.Order {
		if s.Classes[n].Extent == extent {
			return s.Classes[n]
		}
	}
	return nil
}

// Object is a class instance with identity.
type Object struct {
	OID   string
	Class string
	Value Val
}

// DB is the database: schema, objects, extents and indexes.
type DB struct {
	Schema  *Schema
	Objects map[string]*Object
	Extents map[string][]string // extent name -> ordered oids
	indexes map[string]map[string][]string
	nextOID int
	// QueriesRun counts executed OQL queries (observability for the
	// experiments: how many queries a mediator pushed). Guarded by statsMu:
	// a parallel mediator pushes queries from several workers at once.
	QueriesRun int
	statsMu    sync.Mutex
}

// NewDB returns an empty database over a schema.
func NewDB(s *Schema) *DB {
	return &DB{
		Schema:  s,
		Objects: map[string]*Object{},
		Extents: map[string][]string{},
		indexes: map[string]map[string][]string{},
	}
}

// NewObject creates an object of the class, inserts it in the class extent
// and returns its oid.
func (db *DB) NewObject(class string, v Val) (string, error) {
	c := db.Schema.Classes[class]
	if c == nil {
		return "", fmt.Errorf("o2: unknown class %q", class)
	}
	if err := db.checkType(c.Type, v); err != nil {
		return "", fmt.Errorf("o2: new %s: %w", class, err)
	}
	db.nextOID++
	oid := fmt.Sprintf("%s%d", strings.ToLower(class[:1]), db.nextOID)
	db.Objects[oid] = &Object{OID: oid, Class: class, Value: v}
	db.Extents[c.Extent] = append(db.Extents[c.Extent], oid)
	return oid, nil
}

// Get resolves an oid.
func (db *DB) Get(oid string) *Object { return db.Objects[oid] }

// checkType verifies a value against a schema type (the schema manager's
// consistency check).
func (db *DB) checkType(t *Type, v Val) error {
	switch t.Kind {
	case TInt:
		if v.Kind != VInt {
			return fmt.Errorf("expected integer, got %s", v)
		}
	case TFloat:
		if !v.IsNumeric() {
			return fmt.Errorf("expected float, got %s", v)
		}
	case TBool:
		if v.Kind != VBool {
			return fmt.Errorf("expected boolean, got %s", v)
		}
	case TStr:
		if v.Kind != VStr {
			return fmt.Errorf("expected string, got %s", v)
		}
	case TTuple:
		if v.Kind != VTuple {
			return fmt.Errorf("expected tuple, got %s", v)
		}
		for _, f := range t.Fields {
			fv, ok := v.Fields[f.Name]
			if !ok {
				return fmt.Errorf("missing field %q", f.Name)
			}
			if err := db.checkType(f.Type, fv); err != nil {
				return fmt.Errorf("field %q: %w", f.Name, err)
			}
		}
	case TColl:
		if v.Kind != VColl || v.Col != t.Col {
			return fmt.Errorf("expected %s, got %s", t.Col, v)
		}
		for i, e := range v.Elems {
			if err := db.checkType(t.Elem, e); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
	case TClass:
		if v.Kind != VOid {
			return fmt.Errorf("expected reference to %s, got %s", t.Class, v)
		}
		o := db.Objects[v.S]
		if o == nil {
			return fmt.Errorf("dangling reference %s", v.S)
		}
		if o.Class != t.Class {
			return fmt.Errorf("reference %s has class %s, expected %s", v.S, o.Class, t.Class)
		}
	}
	return nil
}

// BuildIndex builds (or rebuilds) a hash index over class.attr equality,
// the "source specific fast access structure" of Section 5.3.
func (db *DB) BuildIndex(class, attr string) error {
	c := db.Schema.Classes[class]
	if c == nil {
		return fmt.Errorf("o2: unknown class %q", class)
	}
	if c.Type.Field(attr) == nil {
		return fmt.Errorf("o2: class %s has no attribute %q", class, attr)
	}
	idx := map[string][]string{}
	for _, oid := range db.Extents[c.Extent] {
		o := db.Objects[oid]
		key := o.Value.Fields[attr].String()
		idx[key] = append(idx[key], oid)
	}
	db.indexes[class+"."+attr] = idx
	return nil
}

// IndexLookup returns the oids with attr equal to v, and whether an index
// exists for (class, attr).
func (db *DB) IndexLookup(class, attr string, v Val) ([]string, bool) {
	idx, ok := db.indexes[class+"."+attr]
	if !ok {
		return nil, false
	}
	return idx[v.String()], true
}

// HasIndex reports whether (class, attr) is indexed.
func (db *DB) HasIndex(class, attr string) bool {
	_, ok := db.indexes[class+"."+attr]
	return ok
}

// ExtentSize reports the cardinality of an extent.
func (db *DB) ExtentSize(extent string) int { return len(db.Extents[extent]) }
