package o2

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// artDB builds the cultural-goods trading database of the paper: Person and
// Artifact classes with the art extents, plus the current_price method.
func artDB(t *testing.T) *DB {
	t.Helper()
	s := NewSchema()
	s.AddClass("Person", TyTuple(
		F("name", TyStr()),
		F("auction", TyFloat()),
	), "persons")
	s.AddClass("Artifact", TyTuple(
		F("title", TyStr()),
		F("year", TyInt()),
		F("creator", TyStr()),
		F("price", TyFloat()),
		F("owners", TyColl(CList, TyClass("Person"))),
	), "artifacts")
	if err := s.AddMethod("Artifact", "current_price", TyFloat(),
		func(db *DB, self *Object) (Val, error) {
			return Float(self.Value.Fields["price"].AsFloat() * 1.1), nil
		}); err != nil {
		t.Fatal(err)
	}
	db := NewDB(s)
	p1, err := db.NewObject("Person", Tuple("name", Str("Doctor X"), "auction", Float(1500000)))
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := db.NewObject("Person", Tuple("name", Str("Mme Y"), "auction", Float(200000)))
	mk := func(title string, year int64, creator string, price float64, owners ...string) {
		refs := make([]Val, len(owners))
		for i, o := range owners {
			refs[i] = Oid(o)
		}
		_, err := db.NewObject("Artifact", Tuple(
			"title", Str(title), "year", Int(year), "creator", Str(creator),
			"price", Float(price), "owners", Coll(CList, refs...)))
		if err != nil {
			t.Fatal(err)
		}
	}
	mk("Nympheas", 1897, "Claude Monet", 1500000, p1, p2)
	mk("Waterloo Bridge", 1900, "Claude Monet", 800000, p1)
	mk("Old Canvas", 1750, "Anonymous", 1000, p2)
	return db
}

func TestSchemaAndObjects(t *testing.T) {
	db := artDB(t)
	if db.ExtentSize("artifacts") != 3 || db.ExtentSize("persons") != 2 {
		t.Fatalf("extents = %d/%d", db.ExtentSize("artifacts"), db.ExtentSize("persons"))
	}
	c := db.Schema.ClassByExtent("artifacts")
	if c == nil || c.Name != "Artifact" {
		t.Fatalf("ClassByExtent = %v", c)
	}
	if db.Schema.ClassByExtent("nope") != nil {
		t.Error("unknown extent should be nil")
	}
	oid := db.Extents["artifacts"][0]
	o := db.Get(oid)
	if o == nil || o.Value.Fields["title"].S != "Nympheas" {
		t.Errorf("object = %+v", o)
	}
}

func TestTypeChecking(t *testing.T) {
	db := artDB(t)
	cases := []Val{
		Tuple("name", Int(5), "auction", Float(1)),           // wrong field type
		Tuple("auction", Float(1)),                           // missing field
		Str("not a tuple"),                                   // wrong kind
		Tuple("name", Str("x"), "auction", Str("not float")), // string for float
	}
	for i, v := range cases {
		if _, err := db.NewObject("Person", v); err == nil {
			t.Errorf("case %d: NewObject should reject %s", i, v)
		}
	}
	// int accepted where float expected
	if _, err := db.NewObject("Person", Tuple("name", Str("Z"), "auction", Int(5))); err != nil {
		t.Errorf("int should widen to float: %v", err)
	}
	// dangling and mistyped references
	if _, err := db.NewObject("Artifact", Tuple(
		"title", Str("T"), "year", Int(1900), "creator", Str("C"),
		"price", Float(1), "owners", Coll(CList, Oid("ghost")))); err == nil {
		t.Error("dangling reference must be rejected")
	}
	if _, err := db.NewObject("Artifact", Tuple(
		"title", Str("T"), "year", Int(1900), "creator", Str("C"),
		"price", Float(1), "owners", Coll(CList, Oid(db.Extents["artifacts"][0])))); err == nil {
		t.Error("reference of the wrong class must be rejected")
	}
	if _, err := db.NewObject("Ghost", Nil()); err == nil {
		t.Error("unknown class must be rejected")
	}
}

// section41Query is the OQL query the wrapper generates in Section 4.1.
const section41Query = `
select t: A.title, y: A.year, c: A.creator, p: A.price, n: O.name, au: O.auction
from A in artifacts, O in A.owners
where A.year > 1800`

func TestSection41Query(t *testing.T) {
	db := artDB(t)
	res, err := db.Execute(section41Query)
	if err != nil {
		t.Fatal(err)
	}
	// Nympheas has 2 owners, Waterloo Bridge 1; Old Canvas is pre-1800.
	if res.Kind != VColl || len(res.Elems) != 3 {
		t.Fatalf("result = %s", res)
	}
	first := res.Elems[0]
	if first.Fields["t"].S != "Nympheas" || first.Fields["n"].S != "Doctor X" {
		t.Errorf("first row = %s", first)
	}
	if first.Fields["y"].I != 1897 {
		t.Errorf("year = %s", first.Fields["y"])
	}
}

func TestSelectStarAndDistinct(t *testing.T) {
	db := artDB(t)
	res, err := db.Execute(`select * from A in artifacts`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Elems) != 3 || res.Elems[0].Kind != VOid {
		t.Fatalf("select * = %s", res)
	}
	res, err = db.Execute(`select distinct A.creator from A in artifacts`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Elems) != 2 || res.Kind != VColl || res.Col != CSet {
		t.Errorf("distinct creators = %s", res)
	}
}

func TestOrderBy(t *testing.T) {
	db := artDB(t)
	res, err := db.Execute(`select t: A.title, y: A.year from A in artifacts order by y desc`)
	if err != nil {
		t.Fatal(err)
	}
	years := []int64{}
	for _, r := range res.Elems {
		years = append(years, r.Fields["y"].I)
	}
	if years[0] != 1900 || years[2] != 1750 {
		t.Errorf("order = %v", years)
	}
	if _, err := db.Execute(`select t: A.title from A in artifacts order by ghost`); err == nil {
		t.Error("unknown order key must fail")
	}
}

func TestMethodCall(t *testing.T) {
	db := artDB(t)
	res, err := db.Execute(`select p: A.current_price() from A in artifacts where A.title = "Nympheas"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Elems) != 1 {
		t.Fatalf("rows = %d", len(res.Elems))
	}
	if got := res.Elems[0].Fields["p"].AsFloat(); got < 1649999 || got > 1650001 {
		t.Errorf("current_price = %v", got)
	}
	if _, err := db.Execute(`select A.nosuch() from A in artifacts`); err == nil {
		t.Error("unknown method must fail")
	}
}

func TestDependentRanges(t *testing.T) {
	db := artDB(t)
	res, err := db.Execute(`select n: O.name from A in artifacts, O in A.owners where A.title = "Nympheas"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Elems) != 2 {
		t.Fatalf("owners = %d", len(res.Elems))
	}
	names := res.Elems[0].Fields["n"].S + "," + res.Elems[1].Fields["n"].S
	if names != "Doctor X,Mme Y" {
		t.Errorf("names = %s", names)
	}
}

func TestIndexedAccess(t *testing.T) {
	db := artDB(t)
	if err := db.BuildIndex("Artifact", "creator"); err != nil {
		t.Fatal(err)
	}
	if !db.HasIndex("Artifact", "creator") || db.HasIndex("Artifact", "title") {
		t.Error("HasIndex wrong")
	}
	oids, ok := db.IndexLookup("Artifact", "creator", Str("Claude Monet"))
	if !ok || len(oids) != 2 {
		t.Fatalf("index lookup = %v %v", oids, ok)
	}
	// Indexed and unindexed evaluation agree.
	q := `select t: A.title from A in artifacts where A.creator = "Claude Monet"`
	withIdx, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	db2 := artDB(t)
	without, err := db2.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !withIdx.Equal(without) {
		t.Errorf("indexed %s != scan %s", withIdx, without)
	}
	if err := db.BuildIndex("Ghost", "x"); err == nil {
		t.Error("index on unknown class must fail")
	}
	if err := db.BuildIndex("Artifact", "ghost"); err == nil {
		t.Error("index on unknown attribute must fail")
	}
}

func TestOQLParseErrors(t *testing.T) {
	bad := []string{
		``,
		`selec t from a in b`,
		`select from a in b`,
		`select x`,
		`select x from`,
		`select x from a b`,
		`select x from a in`,
		`select x from a in b where`,
		`select x from a in b order x`,
		`select a.f(1) from a in b`,
		`select "unterminated from a in b`,
		`select x from a in b extra`,
		`select 1.2.3 from a in b`,
	}
	for _, src := range bad {
		if _, err := ParseOQL(src); err == nil {
			t.Errorf("ParseOQL(%q) should fail", src)
		}
	}
}

func TestOQLEvalErrors(t *testing.T) {
	db := artDB(t)
	bad := []string{
		`select A.ghost from A in artifacts`,
		`select A.title from A in ghostextent`,
		`select A.title from A in artifacts where A.title`,
		`select A.title from A in artifacts where A.owners > 1`,
		`select A.title from A in artifacts where A.title + 1 = 2`,
		`select A.title from A in artifacts where A.price / 0 = 2`,
		`select O.name from O in artifacts, X in O.title`,
		`select A.title.deeper from A in artifacts`,
	}
	for _, src := range bad {
		if _, err := db.Execute(src); err == nil {
			t.Errorf("Execute(%q) should fail", src)
		}
	}
}

func TestOQLPrintParseStability(t *testing.T) {
	cases := []string{
		section41Query,
		`select * from A in artifacts`,
		`select distinct A.creator from A in artifacts where A.year > 1800 and not (A.price <= 10) or A.title != "x"`,
		`select t: A.title from A in artifacts order by t desc`,
		`select p: A.current_price() from A in artifacts`,
		`select v: (A.price + 1) * 2 - 3 / 4 from A in artifacts`,
	}
	for _, src := range cases {
		q, err := ParseOQL(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		printed := q.String()
		q2, err := ParseOQL(printed)
		if err != nil {
			t.Errorf("reparse %q: %v", printed, err)
			continue
		}
		if q2.String() != printed {
			t.Errorf("unstable: %q -> %q", printed, q2.String())
		}
	}
}

func TestValEqualCompare(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("numeric widening in Equal")
	}
	if !Coll(CSet, Int(1), Int(2)).Equal(Coll(CSet, Int(2), Int(1))) {
		t.Error("set equality is order-insensitive")
	}
	if Coll(CList, Int(1), Int(2)).Equal(Coll(CList, Int(2), Int(1))) {
		t.Error("list equality is ordered")
	}
	if Coll(CSet, Int(1)).Equal(Coll(CBag, Int(1))) {
		t.Error("collection kinds differ")
	}
	if !Tuple("a", Int(1)).Equal(Tuple("a", Int(1))) {
		t.Error("tuple equality")
	}
	if Tuple("a", Int(1)).Equal(Tuple("a", Int(2))) {
		t.Error("tuple field inequality")
	}
	if Str("a").Compare(Str("b")) != -1 || Int(2).Compare(Int(1)) != 1 {
		t.Error("compare basics")
	}
}

func TestValString(t *testing.T) {
	v := Tuple("t", Str("Nympheas"), "o", Coll(CList, Oid("p1")))
	s := v.String()
	for _, frag := range []string{`t: "Nympheas"`, "list(&p1)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Val.String missing %q: %s", frag, s)
		}
	}
}

func TestPropertyIndexedEqualsScan(t *testing.T) {
	// Build a database with n artifacts over a small creator domain; the
	// indexed plan must return the same rows as the scan for any creator.
	f := func(seed int64) bool {
		s := NewSchema()
		s.AddClass("A", TyTuple(F("c", TyStr()), F("v", TyInt())), "as")
		db := NewDB(s)
		db2 := NewDB(s)
		x := seed
		next := func(n int64) int64 {
			x = x*6364136223846793005 + 1442695040888963407
			v := (x >> 33) % n
			if v < 0 {
				v = -v
			}
			return v
		}
		for i := int64(0); i < 20; i++ {
			v := Tuple("c", Str(string(rune('a'+next(4)))), "v", Int(next(100)))
			db.NewObject("A", v)
			db2.NewObject("A", v)
		}
		if err := db.BuildIndex("A", "c"); err != nil {
			return false
		}
		q := `select v: A.v from A in as where A.c = "b"`
		r1, err1 := db.Execute(q)
		r2, err2 := db2.Execute(q)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Equal(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOQLPrintParse(t *testing.T) {
	// Random query generator: print/parse must be a fixpoint.
	s := int64(99)
	next := func(n int64) int64 {
		s = s*6364136223846793005 + 1442695040888963407
		v := (s >> 33) % n
		if v < 0 {
			v = -v
		}
		return v
	}
	attrs := []string{"title", "year", "creator", "price"}
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	for i := 0; i < 200; i++ {
		proj := fmt.Sprintf("a%d: A.%s", i, attrs[next(int64(len(attrs)))])
		if next(3) == 0 {
			proj += fmt.Sprintf(", b%d: O.name", i)
		}
		where := ""
		if next(2) == 0 {
			where = fmt.Sprintf(" where A.%s %s %d and not (A.price > %d.5) or A.title = \"x%d\"",
				attrs[next(int64(len(attrs)))], ops[next(int64(len(ops)))], next(2000), next(1000), next(50))
		}
		order := ""
		if next(3) == 0 {
			order = fmt.Sprintf(" order by a%d desc", i)
		}
		src := "select " + proj + " from A in artifacts, O in A.owners" + where + order
		q, err := ParseOQL(src)
		if err != nil {
			t.Fatalf("seed %d: parse %q: %v", i, src, err)
		}
		printed := q.String()
		q2, err := ParseOQL(printed)
		if err != nil {
			t.Fatalf("seed %d: reparse %q: %v", i, printed, err)
		}
		if q2.String() != printed {
			t.Fatalf("seed %d: unstable:\n%s\nvs\n%s", i, printed, q2.String())
		}
	}
}
