package o2

import (
	"fmt"
	"strconv"
	"strings"
)

// OQL subset: select [distinct] <projection> from <ranges> [where <pred>]
// [order by <exprs>], with path expressions navigating attributes and
// references, dependent ranges over nested collections (o in A.owners), and
// method calls (A.current_price()). This is the fragment exercised by the
// wrapper translation of Section 4.1.

// Query is a parsed OQL query.
type Query struct {
	Distinct bool
	Star     bool
	Proj     []ProjItem
	Ranges   []Range
	Where    OExpr
	OrderBy  []OrderItem
}

// ProjItem is one projection, optionally labeled (struct projection).
type ProjItem struct {
	Name string
	E    OExpr
}

// Range is `var in path`.
type Range struct {
	Var  string
	Path *OPath
}

// OrderItem is one order-by key.
type OrderItem struct {
	E    OExpr
	Desc bool
}

// OExpr is an OQL expression node.
type OExpr interface{ oqlString() string }

// OPath is a path expression: root identifier followed by attribute steps
// and method calls.
type OPath struct {
	Root  string
	Steps []OStep
}

// OStep is one path step.
type OStep struct {
	Name   string
	Method bool
}

func (p *OPath) oqlString() string {
	var b strings.Builder
	b.WriteString(p.Root)
	for _, s := range p.Steps {
		b.WriteByte('.')
		b.WriteString(s.Name)
		if s.Method {
			b.WriteString("()")
		}
	}
	return b.String()
}

// OLit is a literal.
type OLit struct{ V Val }

func (l OLit) oqlString() string { return l.V.String() }

// OCmp is a comparison.
type OCmp struct {
	Op   string
	L, R OExpr
}

func (c OCmp) oqlString() string {
	return fmt.Sprintf("%s %s %s", c.L.oqlString(), c.Op, c.R.oqlString())
}

// OBool is a boolean connective (and/or) or negation (not, L nil).
type OBool struct {
	Op   string
	L, R OExpr
}

func (b OBool) oqlString() string {
	if b.Op == "not" {
		return "not (" + b.R.oqlString() + ")"
	}
	return "(" + b.L.oqlString() + " " + b.Op + " " + b.R.oqlString() + ")"
}

// OArith is arithmetic.
type OArith struct {
	Op   string
	L, R OExpr
}

func (a OArith) oqlString() string {
	return "(" + a.L.oqlString() + " " + a.Op + " " + a.R.oqlString() + ")"
}

// String renders the query in OQL concrete syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("select ")
	if q.Distinct {
		b.WriteString("distinct ")
	}
	if q.Star {
		b.WriteString("*")
	} else {
		parts := make([]string, len(q.Proj))
		for i, p := range q.Proj {
			if p.Name != "" {
				parts[i] = p.Name + ": " + p.E.oqlString()
			} else {
				parts[i] = p.E.oqlString()
			}
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteString("\nfrom ")
	parts := make([]string, len(q.Ranges))
	for i, r := range q.Ranges {
		parts[i] = r.Var + " in " + r.Path.oqlString()
	}
	b.WriteString(strings.Join(parts, ", "))
	if q.Where != nil {
		b.WriteString("\nwhere ")
		b.WriteString(q.Where.oqlString())
	}
	if len(q.OrderBy) > 0 {
		b.WriteString("\norder by ")
		op := make([]string, len(q.OrderBy))
		for i, o := range q.OrderBy {
			op[i] = o.E.oqlString()
			if o.Desc {
				op[i] += " desc"
			}
		}
		b.WriteString(strings.Join(op, ", "))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Lexer / parser
// ---------------------------------------------------------------------------

type otok struct {
	kind string // kw, ident, num, str, punct, eof
	text string
	pos  int
}

var oqlKeywords = map[string]bool{
	"select": true, "distinct": true, "from": true, "where": true,
	"order": true, "by": true, "in": true, "and": true, "or": true,
	"not": true, "asc": true, "desc": true, "true": true, "false": true,
}

func olex(src string) ([]otok, error) {
	var toks []otok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '<' && i+1 < len(src) && src[i+1] == '=',
			c == '>' && i+1 < len(src) && src[i+1] == '=',
			c == '!' && i+1 < len(src) && src[i+1] == '=',
			c == '<' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, otok{"punct", src[i : i+2], i})
			i += 2
		case strings.IndexByte("().,:*+-/<>=", c) >= 0:
			toks = append(toks, otok{"punct", string(c), i})
			i++
		case c == '"' || c == '\'':
			q := c
			start := i
			i++
			var b strings.Builder
			for i < len(src) && src[i] != q {
				if src[i] == '\\' && i+1 < len(src) {
					i++
				}
				b.WriteByte(src[i])
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("oql: unterminated string at offset %d", start)
			}
			i++
			toks = append(toks, otok{"str", b.String(), start})
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			toks = append(toks, otok{"num", src[start:i], start})
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			start := i
			for i < len(src) && (src[i] == '_' || src[i] >= 'a' && src[i] <= 'z' ||
				src[i] >= 'A' && src[i] <= 'Z' || src[i] >= '0' && src[i] <= '9') {
				i++
			}
			word := src[start:i]
			kind := "ident"
			if oqlKeywords[strings.ToLower(word)] {
				kind = "kw"
				word = strings.ToLower(word)
			}
			toks = append(toks, otok{kind, word, start})
		default:
			return nil, fmt.Errorf("oql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, otok{"eof", "", i})
	return toks, nil
}

type oparser struct {
	toks []otok
	i    int
}

func (p *oparser) cur() otok { return p.toks[p.i] }

func (p *oparser) kw(s string) bool {
	t := p.cur()
	return t.kind == "kw" && t.text == s
}

func (p *oparser) punct(s string) bool {
	t := p.cur()
	return t.kind == "punct" && t.text == s
}

func (p *oparser) expectKw(s string) error {
	if !p.kw(s) {
		return fmt.Errorf("oql: expected %q at offset %d, got %q", s, p.cur().pos, p.cur().text)
	}
	p.i++
	return nil
}

// ParseOQL parses an OQL query.
func ParseOQL(src string) (*Query, error) {
	toks, err := olex(src)
	if err != nil {
		return nil, err
	}
	p := &oparser{toks: toks}
	q := &Query{}
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	if p.kw("distinct") {
		p.i++
		q.Distinct = true
	}
	if p.punct("*") {
		p.i++
		q.Star = true
	} else {
		for {
			item := ProjItem{}
			// Labeled projection: IDENT ':' expr
			if p.cur().kind == "ident" && p.toks[p.i+1].kind == "punct" && p.toks[p.i+1].text == ":" {
				item.Name = p.cur().text
				p.i += 2
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item.E = e
			q.Proj = append(q.Proj, item)
			if p.punct(",") {
				p.i++
				continue
			}
			break
		}
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	for {
		v := p.cur()
		if v.kind != "ident" {
			return nil, fmt.Errorf("oql: expected range variable at offset %d", v.pos)
		}
		p.i++
		if err := p.expectKw("in"); err != nil {
			return nil, err
		}
		path, err := p.path()
		if err != nil {
			return nil, err
		}
		q.Ranges = append(q.Ranges, Range{Var: v.text, Path: path})
		if p.punct(",") {
			p.i++
			continue
		}
		break
	}
	if p.kw("where") {
		p.i++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.kw("order") {
		p.i++
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{E: e}
			if p.kw("desc") {
				p.i++
				item.Desc = true
			} else if p.kw("asc") {
				p.i++
			}
			q.OrderBy = append(q.OrderBy, item)
			if p.punct(",") {
				p.i++
				continue
			}
			break
		}
	}
	if p.cur().kind != "eof" {
		return nil, fmt.Errorf("oql: trailing input at offset %d", p.cur().pos)
	}
	return q, nil
}

// MustParseOQL is ParseOQL panicking on error.
func MustParseOQL(src string) *Query {
	q, err := ParseOQL(src)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *oparser) path() (*OPath, error) {
	t := p.cur()
	if t.kind != "ident" {
		return nil, fmt.Errorf("oql: expected identifier at offset %d", t.pos)
	}
	p.i++
	path := &OPath{Root: t.text}
	for p.punct(".") {
		p.i++
		s := p.cur()
		if s.kind != "ident" {
			return nil, fmt.Errorf("oql: expected attribute after '.' at offset %d", s.pos)
		}
		p.i++
		step := OStep{Name: s.text}
		if p.punct("(") {
			p.i++
			if !p.punct(")") {
				return nil, fmt.Errorf("oql: method arguments are not supported at offset %d", p.cur().pos)
			}
			p.i++
			step.Method = true
		}
		path.Steps = append(path.Steps, step)
	}
	return path, nil
}

func (p *oparser) expr() (OExpr, error) { return p.orExpr() }

func (p *oparser) orExpr() (OExpr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.kw("or") {
		p.i++
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = OBool{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *oparser) andExpr() (OExpr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.kw("and") {
		p.i++
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = OBool{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *oparser) notExpr() (OExpr, error) {
	if p.kw("not") {
		p.i++
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return OBool{Op: "not", R: e}, nil
	}
	return p.cmpExpr()
}

func (p *oparser) cmpExpr() (OExpr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "!=", "<>", "=", "<", ">"} {
		if p.punct(op) {
			p.i++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if op == "<>" {
				op = "!="
			}
			return OCmp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *oparser) addExpr() (OExpr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.punct("+") || p.punct("-") {
		op := p.cur().text
		p.i++
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = OArith{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *oparser) mulExpr() (OExpr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.punct("*") || p.punct("/") {
		op := p.cur().text
		p.i++
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = OArith{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *oparser) unary() (OExpr, error) {
	t := p.cur()
	switch {
	case p.punct("-"):
		p.i++
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return OArith{Op: "-", L: OLit{Int(0)}, R: e}, nil
	case p.punct("("):
		p.i++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if !p.punct(")") {
			return nil, fmt.Errorf("oql: expected ')' at offset %d", p.cur().pos)
		}
		p.i++
		return e, nil
	case t.kind == "num":
		p.i++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("oql: bad number %q", t.text)
			}
			return OLit{Float(f)}, nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("oql: bad number %q", t.text)
		}
		return OLit{Int(v)}, nil
	case t.kind == "str":
		p.i++
		return OLit{Str(t.text)}, nil
	case t.kind == "kw" && (t.text == "true" || t.text == "false"):
		p.i++
		return OLit{Bool(t.text == "true")}, nil
	case t.kind == "ident":
		return p.path()
	default:
		return nil, fmt.Errorf("oql: unexpected %q at offset %d", t.text, t.pos)
	}
}
