package wais

import (
	"testing"
	"testing/quick"

	"repro/internal/data"
)

func monet() *data.Node {
	return data.Elem("work",
		data.Text("artist", "Claude Monet"),
		data.Text("title", "Nympheas"),
		data.Text("style", "Impressionist"),
		data.Text("size", "21 x 61"),
		data.Text("cplace", "Giverny"),
	)
}

func waterloo() *data.Node {
	return data.Elem("work",
		data.Text("artist", "Claude Monet"),
		data.Text("title", "Waterloo Bridge"),
		data.Text("style", "Impressionist"),
		data.Elem("history",
			data.Text("", "Painted with"),
			data.Text("technique", "Oil on canvas"),
		),
	)
}

func dancers() *data.Node {
	return data.Elem("work",
		data.Text("artist", "Edgar Degas"),
		data.Text("title", "Dancers"),
		data.Text("style", "Realist"),
	)
}

func engine() *Engine {
	e := New("museum")
	e.Add(monet())
	e.Add(waterloo())
	e.Add(dancers())
	return e
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Painted with Oil-on-Canvas, in 1897!")
	want := []string{"painted", "with", "oil", "on", "canvas", "in", "1897"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(Tokenize("  ...  ")) != 0 {
		t.Error("punctuation-only text has no tokens")
	}
}

func TestSearchContains(t *testing.T) {
	e := engine()
	if got := e.Search("Impressionist"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Search(Impressionist) = %v", got)
	}
	if got := e.Search("impressionist"); len(got) != 2 {
		t.Errorf("search must be case-insensitive: %v", got)
	}
	if got := e.Search("Oil canvas"); len(got) != 1 || got[0] != 1 {
		t.Errorf("multi-word search = %v", got)
	}
	if got := e.Search("Giverny"); len(got) != 1 || got[0] != 0 {
		t.Errorf("Search(Giverny) = %v", got)
	}
	if got := e.Search("nothing-here"); len(got) != 0 {
		t.Errorf("absent term = %v", got)
	}
	if got := e.Search(""); got != nil {
		t.Errorf("empty query = %v", got)
	}
	if !e.Contains(0, "Giverny") || e.Contains(1, "Giverny") {
		t.Error("Contains per-document check wrong")
	}
	if e.SearchesRun == 0 {
		t.Error("SearchesRun must count")
	}
}

func TestSearchField(t *testing.T) {
	e := engine()
	got, err := e.SearchField("style", "Impressionist")
	if err != nil || len(got) != 2 {
		t.Errorf("SearchField(style) = %v, %v", got, err)
	}
	// "Monet" appears under artist, not style.
	got, err = e.SearchField("style", "Monet")
	if err != nil || len(got) != 0 {
		t.Errorf("SearchField(style, Monet) = %v, %v", got, err)
	}
	got, err = e.SearchField("technique", "Oil")
	if err != nil || len(got) != 1 || got[0] != 1 {
		t.Errorf("nested field search = %v, %v", got, err)
	}
	if _, err := e.SearchField("ghostfield", "x"); err != nil {
		t.Errorf("unknown field is empty, not an error (all fields queryable): %v", err)
	}
}

func TestConfigQueryableRetrievable(t *testing.T) {
	cfg, err := ParseConfig(`
# museum.src
source museum
queryable style cplace technique
retrievable artist title style
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "museum" || len(cfg.Queryable) != 3 || len(cfg.Retrievable) != 3 {
		t.Fatalf("config = %+v", cfg)
	}
	e := engine()
	e.Configure(cfg)
	if _, err := e.SearchField("artist", "Monet"); err == nil {
		t.Error("artist is not queryable under this configuration")
	}
	if _, err := e.SearchField("style", "Impressionist"); err != nil {
		t.Errorf("style must stay queryable: %v", err)
	}
	doc := e.Retrieve(0)
	if doc.Child("artist") == nil || doc.Child("title") == nil {
		t.Error("retrievable fields must be exported")
	}
	if doc.Child("cplace") != nil || doc.Child("size") != nil {
		t.Errorf("non-retrievable fields must be hidden: %s", doc)
	}
	// The original document is untouched.
	if e.Doc(0).Child("cplace") == nil {
		t.Error("Retrieve must not mutate the stored document")
	}
}

func TestParseConfigErrors(t *testing.T) {
	bad := []string{
		``,
		`queryable a b`,
		`source a b`,
		`wibble x`,
	}
	for _, src := range bad {
		if _, err := ParseConfig(src); err == nil {
			t.Errorf("ParseConfig(%q) should fail", src)
		}
	}
}

func TestBooleanOps(t *testing.T) {
	e := engine()
	imp := e.Search("Impressionist")
	monetDocs := e.Search("Monet")
	if got := And(imp, monetDocs); len(got) != 2 {
		t.Errorf("And = %v", got)
	}
	degas := e.Search("Degas")
	if got := Or(imp, degas); len(got) != 3 {
		t.Errorf("Or = %v", got)
	}
	if got := e.Not(imp); len(got) != 1 || got[0] != 2 {
		t.Errorf("Not = %v", got)
	}
	if got := Or(nil, degas); len(got) != 1 {
		t.Errorf("Or with empty = %v", got)
	}
	if got := And(nil, imp); len(got) != 0 {
		t.Errorf("And with empty = %v", got)
	}
}

func TestRetrieveBounds(t *testing.T) {
	e := engine()
	if e.Doc(-1) != nil || e.Doc(99) != nil || e.Retrieve(99) != nil {
		t.Error("out-of-range documents are nil")
	}
	if e.Size() != 3 || e.Terms() == 0 {
		t.Errorf("size=%d terms=%d", e.Size(), e.Terms())
	}
}

func TestDuplicateTermsIndexedOnce(t *testing.T) {
	e := New("t")
	e.Add(data.Elem("work", data.Text("note", "oil oil oil")))
	if got := e.Search("oil"); len(got) != 1 {
		t.Errorf("posting list = %v (duplicates must collapse)", got)
	}
}

func TestPropertySearchConsistentWithContains(t *testing.T) {
	f := func(seed int64) bool {
		words := []string{"monet", "degas", "oil", "giverny", "bridge", "dance"}
		s := seed
		next := func(n int64) int64 {
			s = s*6364136223846793005 + 1442695040888963407
			v := (s >> 33) % n
			if v < 0 {
				v = -v
			}
			return v
		}
		e := New("p")
		for d := 0; d < 8; d++ {
			doc := data.Elem("work")
			for w := int64(0); w < 1+next(5); w++ {
				doc.Add(data.Text("note", words[next(int64(len(words)))]))
			}
			e.Add(doc)
		}
		term := words[next(int64(len(words)))]
		hits := e.Search(term)
		for id := 0; id < e.Size(); id++ {
			if member(hits, id) != e.Contains(id, term) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBooleanLaws(t *testing.T) {
	f := func(seed int64) bool {
		e := engine()
		a := e.Search("Impressionist")
		b := e.Search("Monet")
		// And/Or are commutative; And(a,a)=a; Or(a,a)=a; Not(Not(a))=a.
		if !eqInts(And(a, b), And(b, a)) || !eqInts(Or(a, b), Or(b, a)) {
			return false
		}
		if !eqInts(And(a, a), a) || !eqInts(Or(a, a), a) {
			return false
		}
		return eqInts(e.Not(e.Not(a)), a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
