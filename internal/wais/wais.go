// Package wais is the full-text substrate of the reproduction, standing in
// for the free WAIS-sf engine (Z39.50) wrapped in Section 4.2. It stores
// XML documents, maintains an inverted index of their text (globally and
// per field), answers `contains` and attribute/value queries with sorted
// posting-list merges, and honours the Z39.50 separation between what may
// be queried and what may be retrieved (the queryable/retrievable field
// configuration of a Wais source description such as museum.src).
package wais

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/data"
)

// Engine is an in-memory Wais-like full-text retrieval engine.
type Engine struct {
	Name string
	docs []*data.Node
	// index maps a term to the sorted list of documents containing it.
	index map[string][]int
	// fieldIndex maps field -> term -> sorted document list; the field of a
	// token is the label of its innermost enclosing element.
	fieldIndex map[string]map[string][]int
	// queryable restricts which fields may appear in queries (nil: all);
	// retrievable restricts which fields are exported (nil: all).
	queryable   map[string]bool
	retrievable map[string]bool
	// SearchesRun counts executed searches (observability for experiments).
	// Guarded by statsMu: a parallel mediator runs searches concurrently.
	SearchesRun int
	statsMu     sync.Mutex
}

// countSearch bumps the search counter under its lock.
func (e *Engine) countSearch() {
	e.statsMu.Lock()
	e.SearchesRun++
	e.statsMu.Unlock()
}

// New returns an empty engine.
func New(name string) *Engine {
	return &Engine{
		Name:       name,
		index:      map[string][]int{},
		fieldIndex: map[string]map[string][]int{},
	}
}

// Config is a Wais source configuration (museum.src): the source name and
// the queryable/retrievable field lists. Empty lists mean "all fields".
type Config struct {
	Name        string
	Queryable   []string
	Retrievable []string
}

// ParseConfig parses the line-based source configuration format:
//
//	source museum
//	queryable style cplace history technique
//	retrievable artist title style size
//
// Lines starting with '#' are comments.
func ParseConfig(src string) (*Config, error) {
	c := &Config{}
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "source":
			if len(fields) != 2 {
				return nil, fmt.Errorf("wais: line %d: source expects one name", ln+1)
			}
			c.Name = fields[1]
		case "queryable":
			c.Queryable = append(c.Queryable, fields[1:]...)
		case "retrievable":
			c.Retrievable = append(c.Retrievable, fields[1:]...)
		default:
			return nil, fmt.Errorf("wais: line %d: unknown directive %q", ln+1, fields[0])
		}
	}
	if c.Name == "" {
		return nil, fmt.Errorf("wais: configuration lacks a source name")
	}
	return c, nil
}

// Configure applies a source configuration to the engine.
func (e *Engine) Configure(c *Config) {
	e.Name = c.Name
	if len(c.Queryable) > 0 {
		e.queryable = map[string]bool{}
		for _, f := range c.Queryable {
			e.queryable[f] = true
		}
	}
	if len(c.Retrievable) > 0 {
		e.retrievable = map[string]bool{}
		for _, f := range c.Retrievable {
			e.retrievable[f] = true
		}
	}
}

// Queryable reports whether a field may be queried.
func (e *Engine) Queryable(field string) bool {
	return e.queryable == nil || e.queryable[field]
}

// Retrievable reports whether a field is exported on retrieval.
func (e *Engine) Retrievable(field string) bool {
	return e.retrievable == nil || e.retrievable[field]
}

// Tokenize lowercases and splits text on non-alphanumeric characters.
func Tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Add indexes a document and returns its document number.
func (e *Engine) Add(doc *data.Node) int {
	id := len(e.docs)
	e.docs = append(e.docs, doc)
	var walk func(n *data.Node, field string)
	walk = func(n *data.Node, field string) {
		if n.Label != "" {
			field = n.Label
		}
		if n.Atom != nil {
			for _, term := range Tokenize(n.Atom.Text()) {
				e.post(term, id)
				e.postField(field, term, id)
			}
			return
		}
		for _, k := range n.Kids {
			walk(k, field)
		}
	}
	walk(doc, "")
	return id
}

func (e *Engine) post(term string, id int) {
	l := e.index[term]
	if len(l) == 0 || l[len(l)-1] != id {
		e.index[term] = append(l, id)
	}
}

func (e *Engine) postField(field, term string, id int) {
	m := e.fieldIndex[field]
	if m == nil {
		m = map[string][]int{}
		e.fieldIndex[field] = m
	}
	l := m[term]
	if len(l) == 0 || l[len(l)-1] != id {
		m[term] = append(l, id)
	}
}

// Size reports the number of indexed documents.
func (e *Engine) Size() int { return len(e.docs) }

// Doc returns the raw stored document.
func (e *Engine) Doc(id int) *data.Node {
	if id < 0 || id >= len(e.docs) {
		return nil
	}
	return e.docs[id]
}

// Retrieve returns the exportable view of a document: a copy restricted to
// retrievable fields (Z39.50 lets a source export less than it stores).
func (e *Engine) Retrieve(id int) *data.Node {
	doc := e.Doc(id)
	if doc == nil {
		return nil
	}
	if e.retrievable == nil {
		return doc.Clone()
	}
	out := &data.Node{Label: doc.Label, ID: doc.ID}
	for _, k := range doc.Kids {
		if e.retrievable[k.Label] {
			out.Kids = append(out.Kids, k.Clone())
		}
	}
	return out
}

// Search returns the documents containing every word of text (conjunctive
// full-text search), sorted by document number. It implements the contains
// predicate of Section 4.2.
func (e *Engine) Search(text string) []int {
	e.countSearch()
	terms := Tokenize(text)
	if len(terms) == 0 {
		return nil
	}
	res := e.index[terms[0]]
	for _, t := range terms[1:] {
		res = intersect(res, e.index[t])
	}
	return append([]int(nil), res...)
}

// SearchField returns the documents whose field contains every word of
// text — the attribute/value textual query of Z39.50. Querying a
// non-queryable field is an error, mirroring the protocol's separation
// between retrievable and queryable information.
func (e *Engine) SearchField(field, text string) ([]int, error) {
	if !e.Queryable(field) {
		return nil, fmt.Errorf("wais: field %q is not queryable", field)
	}
	e.countSearch()
	m := e.fieldIndex[field]
	terms := Tokenize(text)
	if len(terms) == 0 || m == nil {
		return nil, nil
	}
	res := m[terms[0]]
	for _, t := range terms[1:] {
		res = intersect(res, m[t])
	}
	return append([]int(nil), res...), nil
}

// Contains reports whether one document's text contains every word of text.
func (e *Engine) Contains(id int, text string) bool {
	for _, t := range Tokenize(text) {
		if !member(e.index[t], id) {
			return false
		}
	}
	return true
}

// And intersects two document lists.
func And(a, b []int) []int { return intersect(a, b) }

// Or merges two document lists.
func Or(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = appendUnique(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = appendUnique(out, b[j])
			j++
		default:
			out = appendUnique(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Not returns the documents of the engine not present in a.
func (e *Engine) Not(a []int) []int {
	var out []int
	for id := range e.docs {
		if !member(a, id) {
			out = append(out, id)
		}
	}
	return out
}

func appendUnique(out []int, v int) []int {
	if len(out) == 0 || out[len(out)-1] != v {
		out = append(out, v)
	}
	return out
}

func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func member(l []int, id int) bool {
	i := sort.SearchInts(l, id)
	return i < len(l) && l[i] == id
}

// Terms returns the number of distinct indexed terms (diagnostics).
func (e *Engine) Terms() int { return len(e.index) }
