// Package frontdoor is the mediator's multi-tenant query API: an
// HTTP/JSON front end over one shared Mediator with per-tenant admission
// control. Each tenant gets a token bucket (sustained rate + burst), a
// concurrency limit and a bounded, deadline-capped wait queue; work beyond
// those limits is shed with a structured ShedError naming the tenant and
// the limit it hit, so a flooding tenant degrades itself — not the
// mediator, and not its neighbours. Admitted queries stream their rows as
// NDJSON through the mediator's bounded streaming path, so the front
// door's memory stays flat no matter how large the result.
package frontdoor

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mediator"
	"repro/internal/obs"
)

// Shed codes carried by ShedError.
const (
	ShedRateLimited  = "rate_limited"  // token bucket empty
	ShedQueueFull    = "queue_full"    // wait queue at QueueDepth
	ShedQueueTimeout = "queue_timeout" // queued longer than QueueTimeout
)

// ShedError reports an admission rejection: which tenant, which limit.
type ShedError struct {
	Tenant string
	Code   string
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("frontdoor: tenant %q shed: %s", e.Tenant, e.Code)
}

// Limits bound one tenant's use of the shared mediator.
type Limits struct {
	// MaxConcurrent is the number of queries a tenant may have executing
	// at once (0 = default 8).
	MaxConcurrent int
	// QueueDepth is how many queries may wait for a slot beyond
	// MaxConcurrent before further arrivals are shed (0 = default 16,
	// negative = no queue: over-limit arrivals shed immediately).
	QueueDepth int
	// QueueTimeout caps how long a queued query waits for a slot
	// (0 = default 2s).
	QueueTimeout time.Duration
	// RatePerSec is the sustained admission rate of the token bucket;
	// 0 disables rate limiting for the tenant.
	RatePerSec float64
	// Burst is the bucket capacity (0 = max(1, RatePerSec)).
	Burst int
}

func (l Limits) withDefaults() Limits {
	if l.MaxConcurrent <= 0 {
		l.MaxConcurrent = 8
	}
	if l.QueueDepth == 0 {
		l.QueueDepth = 16
	}
	if l.QueueDepth < 0 {
		l.QueueDepth = 0
	}
	if l.QueueTimeout <= 0 {
		l.QueueTimeout = 2 * time.Second
	}
	if l.Burst <= 0 {
		l.Burst = int(l.RatePerSec)
		if l.Burst < 1 {
			l.Burst = 1
		}
	}
	return l
}

// Options configure a Door.
type Options struct {
	// Limits apply to every tenant without an explicit entry in Tenants.
	Limits Limits
	// Tenants overrides Limits per tenant id.
	Tenants map[string]Limits
	// Exec is the base execution configuration applied to every query
	// (parallelism, caching, partial-result policy). Per-request options
	// may tighten the timeout but never loosen anything.
	Exec mediator.ExecOptions
	// MaxTimeout caps the per-query deadline; requests may ask for less,
	// never more (0 = default 30s).
	MaxTimeout time.Duration
	// Metrics, when non-nil, receives per-tenant admission and latency
	// instruments (fd_* names) alongside the mediator's own metrics.
	Metrics *obs.Registry
}

// Door is the multi-tenant admission layer over one shared Mediator.
type Door struct {
	med        *mediator.Mediator
	defaults   Limits
	overrides  map[string]Limits
	exec       mediator.ExecOptions
	maxTimeout time.Duration
	metrics    *obs.Registry

	mu      sync.Mutex
	tenants map[string]*tenant
}

// tenant is one tenant's live admission state.
type tenant struct {
	name   string
	lim    Limits
	sem    chan struct{} // MaxConcurrent execution slots
	queued atomic.Int64  // waiters, bounded by QueueDepth
	bucket bucket
}

// bucket is a token bucket: RatePerSec refill, Burst capacity.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func (b *bucket) allow(lim Limits, now time.Time) bool {
	if lim.RatePerSec <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.tokens = float64(lim.Burst)
	} else {
		b.tokens += now.Sub(b.last).Seconds() * lim.RatePerSec
		if max := float64(lim.Burst); b.tokens > max {
			b.tokens = max
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// New builds a front door over m.
func New(m *mediator.Mediator, opts Options) *Door {
	if opts.MaxTimeout <= 0 {
		opts.MaxTimeout = 30 * time.Second
	}
	return &Door{
		med:        m,
		defaults:   opts.Limits.withDefaults(),
		overrides:  opts.Tenants,
		exec:       opts.Exec,
		maxTimeout: opts.MaxTimeout,
		metrics:    opts.Metrics,
		tenants:    map[string]*tenant{},
	}
}

// Mediator exposes the shared mediator behind the door.
func (d *Door) Mediator() *mediator.Mediator { return d.med }

// tenantFor returns (creating on first sight) a tenant's admission state.
func (d *Door) tenantFor(name string) *tenant {
	d.mu.Lock()
	defer d.mu.Unlock()
	tn, ok := d.tenants[name]
	if !ok {
		lim := d.defaults
		if o, ok := d.overrides[name]; ok {
			lim = o.withDefaults()
		}
		tn = &tenant{name: name, lim: lim, sem: make(chan struct{}, lim.MaxConcurrent)}
		d.tenants[name] = tn
	}
	return tn
}

// tryQueue claims a queue position if the queue has room.
func (tn *tenant) tryQueue() bool {
	for {
		q := tn.queued.Load()
		if q >= int64(tn.lim.QueueDepth) {
			return false
		}
		if tn.queued.CompareAndSwap(q, q+1) {
			return true
		}
	}
}

// Admit runs tenant admission: the token bucket first (floods bounce off
// the cheapest check), then a concurrency slot, waiting in the bounded
// queue when none is free. On success the returned release must be called
// when the query — including its streamed rows — finishes; it is
// idempotent. On rejection the error is a *ShedError (or the caller's
// context error while queued).
func (d *Door) Admit(ctx context.Context, tenantName string) (release func(), err error) {
	tn := d.tenantFor(tenantName)
	if !tn.bucket.allow(tn.lim, time.Now()) {
		d.count("fd_shed_rate", tenantName)
		return nil, &ShedError{Tenant: tenantName, Code: ShedRateLimited}
	}
	select {
	case tn.sem <- struct{}{}:
	default:
		if !tn.tryQueue() {
			d.count("fd_shed_queue_full", tenantName)
			return nil, &ShedError{Tenant: tenantName, Code: ShedQueueFull}
		}
		d.gauge("fd_queued", tenantName, tn.queued.Load())
		timer := time.NewTimer(tn.lim.QueueTimeout)
		var admitted bool
		select {
		case tn.sem <- struct{}{}:
			admitted = true
		case <-timer.C:
		case <-ctx.Done():
		}
		timer.Stop()
		d.gauge("fd_queued", tenantName, tn.queued.Add(-1))
		if !admitted {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			d.count("fd_shed_queue_timeout", tenantName)
			return nil, &ShedError{Tenant: tenantName, Code: ShedQueueTimeout}
		}
	}
	d.gauge("fd_running", tenantName, int64(len(tn.sem)))
	var once sync.Once
	return func() {
		once.Do(func() {
			<-tn.sem
			d.gauge("fd_running", tenantName, int64(len(tn.sem)))
		})
	}, nil
}

func (d *Door) count(name, tenant string) {
	if d.metrics != nil {
		d.metrics.TenantCounter(name, tenant).Add(1)
	}
}

func (d *Door) gauge(name, tenant string, v int64) {
	if d.metrics != nil {
		d.metrics.TenantGauge(name, tenant).Set(v)
	}
}

func (d *Door) observe(name, tenant string, v float64) {
	if d.metrics != nil {
		d.metrics.TenantHistogram(name, tenant).Observe(v)
	}
}
