package frontdoor

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// QueryRequest is the POST /query body. The tenant id comes from the
// X-Tenant header, falling back to the body's field, falling back to
// "anonymous" — every request is attributed to some tenant, so the
// anonymous pool shares one set of limits instead of bypassing admission.
type QueryRequest struct {
	Query     string `json:"query"`
	Tenant    string `json:"tenant,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// Streamed response lines (NDJSON). The first line carries the columns,
// then one line per row, then exactly one terminal line: done or error.
type colsLine struct {
	Cols []string `json:"cols"`
}

type rowLine struct {
	Row []string `json:"row"`
}

type doneLine struct {
	Done      bool    `json:"done"`
	Rows      int     `json:"rows"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Pushes    int     `json:"pushes"`
	Fetches   int     `json:"fetches"`
	Partial   int     `json:"partial_sources,omitempty"`
}

type errLine struct {
	Error  string `json:"error"`
	Code   string `json:"code"`
	Tenant string `json:"tenant,omitempty"`
}

// shedStatus maps a shed code to its HTTP status: rate limiting is the
// client's pace (429), queue exhaustion is the service's capacity (503).
func shedStatus(code string) int {
	if code == ShedRateLimited {
		return http.StatusTooManyRequests
	}
	return http.StatusServiceUnavailable
}

// Handler returns the front door's HTTP surface:
//
//	POST /query   — execute a query, stream rows as NDJSON
//	GET  /healthz — mediator liveness + per-source breaker states
func (d *Door) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", d.handleQuery)
	mux.HandleFunc("/healthz", d.handleHealth)
	return mux
}

func (d *Door) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only", "")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error(), "")
		return
	}
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, "bad_request", "empty query", "")
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = req.Tenant
	}
	if tenant == "" {
		tenant = "anonymous"
	}

	start := time.Now()
	release, err := d.Admit(r.Context(), tenant)
	if err != nil {
		var shed *ShedError
		if errors.As(err, &shed) {
			httpError(w, shedStatus(shed.Code), shed.Code, shed.Error(), tenant)
			return
		}
		httpError(w, http.StatusRequestTimeout, "canceled", err.Error(), tenant)
		return
	}
	defer release()

	opts := d.exec
	opts.Timeout = d.maxTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < opts.Timeout {
			opts.Timeout = t
		}
	}

	d.count("fd_queries", tenant)
	s, err := d.med.StreamContext(r.Context(), req.Query, opts)
	if err != nil {
		d.count("fd_errors", tenant)
		httpError(w, http.StatusBadRequest, "query_error", err.Error(), tenant)
		return
	}
	defer s.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	_ = enc.Encode(colsLine{Cols: s.Cols()})
	if flusher != nil {
		flusher.Flush()
	}

	// Rows flow chunk by chunk off the mediator's bounded stream; the
	// encoder writes straight to the response so memory stays flat and the
	// client sees first rows before the query finishes.
	rows := 0
	for chunk := range s.Chunks() {
		for _, row := range chunk.Rows {
			line := rowLine{Row: make([]string, len(row))}
			for i, c := range row {
				line.Row[i] = c.String()
			}
			if err := enc.Encode(line); err != nil {
				// Client went away: drain via Close (deferred) and stop.
				d.count("fd_client_gone", tenant)
				return
			}
			rows++
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	res, err := s.Result()
	elapsed := time.Since(start)
	d.observe("fd_latency_ms", tenant, float64(elapsed.Microseconds())/1000)
	if err != nil {
		// Too late for an HTTP status — the terminal NDJSON line carries
		// the failure instead.
		d.count("fd_errors", tenant)
		_ = enc.Encode(errLine{Error: err.Error(), Code: "exec_error", Tenant: tenant})
		return
	}
	if d.metrics != nil {
		d.metrics.TenantCounter("fd_rows", tenant).Add(int64(rows))
	}
	_ = enc.Encode(doneLine{
		Done:      true,
		Rows:      rows,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Pushes:    res.Stats.SourcePushes,
		Fetches:   res.Stats.SourceFetches,
		Partial:   len(res.SourceErrors),
	})
	if flusher != nil {
		flusher.Flush()
	}
}

func (d *Door) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only", "")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"ok":      true,
		"sources": d.med.Health(),
	})
}

func httpError(w http.ResponseWriter, status int, code, msg, tenant string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errLine{Error: msg, Code: code, Tenant: tenant})
}
