package frontdoor_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/frontdoor"
	"repro/internal/mediator"
	"repro/internal/o2wrap"
	"repro/internal/obs"
	"repro/internal/waiswrap"
)

// paperMediator builds the Figure 2 deployment in-process.
func paperMediator(t *testing.T) *mediator.Mediator {
	t.Helper()
	m := mediator.New()
	ow := o2wrap.New("o2artifact", datagen.PaperDB())
	if err := m.Connect(ow, ow.ExportInterface()); err != nil {
		t.Fatal(err)
	}
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(datagen.PaperWorks()))
	if err := m.Connect(ww, ww.ExportInterface()); err != nil {
		t.Fatal(err)
	}
	m.RegisterFunc("contains", waiswrap.Contains)
	if err := m.LoadProgram(datagen.View1Src); err != nil {
		t.Fatal(err)
	}
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")
	return m
}

// ndLine is any NDJSON response line.
type ndLine struct {
	Cols  []string `json:"cols"`
	Row   []string `json:"row"`
	Done  bool     `json:"done"`
	Rows  int      `json:"rows"`
	Error string   `json:"error"`
	Code  string   `json:"code"`
}

// postQuery runs one query through the handler and parses the NDJSON.
func postQuery(t *testing.T, url, tenant, query string) (int, []ndLine) {
	t.Helper()
	body, _ := json.Marshal(frontdoor.QueryRequest{Query: query})
	req, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []ndLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var l ndLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	return resp.StatusCode, lines
}

func TestQueryStreamsNDJSON(t *testing.T) {
	d := frontdoor.New(paperMediator(t), frontdoor.Options{})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	status, lines := postQuery(t, srv.URL, "acme", datagen.Q1Src)
	if status != http.StatusOK {
		t.Fatalf("status = %d, lines = %+v", status, lines)
	}
	if len(lines) < 3 {
		t.Fatalf("want cols + rows + done, got %+v", lines)
	}
	if len(lines[0].Cols) == 0 {
		t.Fatalf("first line must carry columns: %+v", lines[0])
	}
	last := lines[len(lines)-1]
	if !last.Done || last.Error != "" {
		t.Fatalf("terminal line: %+v", last)
	}
	var rows int
	for _, l := range lines[1 : len(lines)-1] {
		if l.Row == nil {
			t.Fatalf("mid line without row: %+v", l)
		}
		rows++
	}
	if rows != last.Rows || rows != 1 {
		t.Fatalf("Q1 rows = %d, terminal says %d (want 1)", rows, last.Rows)
	}
	if !strings.Contains(strings.Join(lines[1].Row, " "), "Nympheas") {
		t.Fatalf("Q1 row = %v", lines[1].Row)
	}
}

func TestQueryErrorIsStructured(t *testing.T) {
	d := frontdoor.New(paperMediator(t), frontdoor.Options{})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	status, lines := postQuery(t, srv.URL, "acme", "THIS IS NOT A QUERY")
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d", status)
	}
	if len(lines) != 1 || lines[0].Code != "query_error" || lines[0].Error == "" {
		t.Fatalf("error body: %+v", lines)
	}
}

func TestAdmissionLimits(t *testing.T) {
	d := frontdoor.New(paperMediator(t), frontdoor.Options{
		Tenants: map[string]frontdoor.Limits{
			"cap1":  {MaxConcurrent: 1, QueueDepth: -1},
			"timed": {MaxConcurrent: 1, QueueDepth: 1, QueueTimeout: 30 * time.Millisecond},
			"slow":  {MaxConcurrent: 4, RatePerSec: 0.001, Burst: 1},
		},
	})
	ctx := context.Background()

	// Concurrency cap with no queue: second admission sheds immediately.
	rel, err := d.Admit(ctx, "cap1")
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Admit(ctx, "cap1")
	var shed *frontdoor.ShedError
	if !errors.As(err, &shed) || shed.Code != frontdoor.ShedQueueFull {
		t.Fatalf("want queue_full, got %v", err)
	}
	rel()
	if rel2, err := d.Admit(ctx, "cap1"); err != nil {
		t.Fatalf("slot not released: %v", err)
	} else {
		rel2()
	}

	// Bounded queue with deadline: a queued admission times out.
	relT, err := d.Admit(ctx, "timed")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = d.Admit(ctx, "timed")
	if !errors.As(err, &shed) || shed.Code != frontdoor.ShedQueueTimeout {
		t.Fatalf("want queue_timeout, got %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("queue timeout fired too early")
	}
	relT()

	// Token bucket: burst of 1, negligible refill — second call sheds.
	relS, err := d.Admit(ctx, "slow")
	if err != nil {
		t.Fatal(err)
	}
	relS()
	_, err = d.Admit(ctx, "slow")
	if !errors.As(err, &shed) || shed.Code != frontdoor.ShedRateLimited {
		t.Fatalf("want rate_limited, got %v", err)
	}

	// Isolation: all that shedding never touched another tenant.
	relB, err := d.Admit(ctx, "bystander")
	if err != nil {
		t.Fatalf("bystander tenant affected: %v", err)
	}
	relB()
}

func TestShedOverHTTP(t *testing.T) {
	reg := obs.NewRegistry()
	d := frontdoor.New(paperMediator(t), frontdoor.Options{
		Tenants: map[string]frontdoor.Limits{
			"full":    {MaxConcurrent: 1, QueueDepth: -1},
			"limited": {MaxConcurrent: 4, RatePerSec: 0.001, Burst: 1},
		},
		Metrics: reg,
	})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Hold tenant "full"'s only slot, then hit the API.
	rel, err := d.Admit(context.Background(), "full")
	if err != nil {
		t.Fatal(err)
	}
	status, lines := postQuery(t, srv.URL, "full", datagen.Q1Src)
	rel()
	if status != http.StatusServiceUnavailable {
		t.Fatalf("queue_full status = %d", status)
	}
	if len(lines) != 1 || lines[0].Code != frontdoor.ShedQueueFull {
		t.Fatalf("queue_full body: %+v", lines)
	}

	// Exhaust "limited"'s burst, then hit the API: 429.
	if status, _ := postQuery(t, srv.URL, "limited", datagen.Q1Src); status != http.StatusOK {
		t.Fatalf("burst query status = %d", status)
	}
	status, lines = postQuery(t, srv.URL, "limited", datagen.Q1Src)
	if status != http.StatusTooManyRequests {
		t.Fatalf("rate_limited status = %d", status)
	}
	if len(lines) != 1 || lines[0].Code != frontdoor.ShedRateLimited {
		t.Fatalf("rate_limited body: %+v", lines)
	}

	// The sheds are visible per tenant in the metrics registry.
	if reg.TenantCounter("fd_shed_queue_full", "full").Value() == 0 {
		t.Error("queue_full shed not counted")
	}
	if reg.TenantCounter("fd_shed_rate", "limited").Value() == 0 {
		t.Error("rate shed not counted")
	}
}

func TestHealthEndpoint(t *testing.T) {
	d := frontdoor.New(paperMediator(t), frontdoor.Options{})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		OK      bool                             `json:"ok"`
		Sources map[string]mediator.SourceHealth `json:"sources"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.OK || len(body.Sources) != 2 {
		t.Fatalf("healthz: %+v", body)
	}
}

// TestConcurrentTenantsOverHTTP drives many tenants through the full HTTP
// path at once: every admitted query must stream the same correct result.
func TestConcurrentTenantsOverHTTP(t *testing.T) {
	d := frontdoor.New(paperMediator(t), frontdoor.Options{
		Limits: frontdoor.Limits{MaxConcurrent: 8, QueueDepth: 64, QueueTimeout: 30 * time.Second},
	})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := string(rune('a' + g%4))
			status, lines := postQuery(t, srv.URL, tenant, datagen.Q1Src)
			if status != http.StatusOK {
				t.Errorf("tenant %s: status %d: %+v", tenant, status, lines)
				return
			}
			last := lines[len(lines)-1]
			if !last.Done || last.Rows != 1 {
				t.Errorf("tenant %s: terminal %+v", tenant, last)
			}
		}(g)
	}
	wg.Wait()
}
