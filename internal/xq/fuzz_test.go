package xq

import "testing"

// FuzzParseQuery checks two properties over arbitrary input: Parse never
// panics, and when it succeeds the printed form is a fixpoint — the canonical
// text reparses, and printing the reparse yields the identical string.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`doc("works")//title`,
		`doc("d")/a//b/@c/parent::e/ancestor::f/child::g/descendant::h/*`,
		`doc("d")/work[2][price < 100 and (style = "a" or not(. = "b"))]/title`,
		`for $w in doc("artworks")/doc/work where $w/more/cplace = "Giverny" return $w/title`,
		`for $w in doc("artworks")/doc/work where $w/style = "Impressionist" and $w/price < 200000 return <result><title>{$w/title}</title><price>{$w/price}</price></result>`,
		`for $w in doc("w")/a, $t in $w/b return <r>label{$t}</r>`,
		`for $w in doc("d")/a where $w/x = "s\"t" or $w/y <= 1.5 return $w`,
		`$v/x[3]`,
		`for $w in doc("d")/a return 42`,
		`not a query at all`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q1, err := Parse(src)
		if err != nil {
			return
		}
		p1 := Print(q1)
		q2, err := Parse(p1)
		if err != nil {
			t.Fatalf("canonical form does not reparse:\n src = %q\n p1  = %q\n err = %v", src, p1, err)
		}
		if p2 := Print(q2); p1 != p2 {
			t.Fatalf("print is not a fixpoint:\n src = %q\n p1  = %q\n p2  = %q", src, p1, p2)
		}
	})
}
