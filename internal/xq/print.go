package xq

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/data"
)

// Print renders a query in the canonical textual form accepted by Parse.
// Parse∘Print is the identity on ASTs, and Print∘Parse reaches a fixpoint
// after one round trip (the fuzz target checks this).
func Print(q *Query) string {
	var b strings.Builder
	writeNode(&b, q)
	return b.String()
}

// PrintNode renders any AST node (diagnostics, tests).
func PrintNode(n Node) string {
	var b strings.Builder
	writeNode(&b, n)
	return b.String()
}

func writeNode(b *strings.Builder, n Node) {
	switch x := n.(type) {
	case *Query:
		// A synthesized bare-path query prints back as the bare path.
		if len(x.Fors) == 1 && x.Where == nil {
			if ret, ok := x.Return.(*PathExpr); ok &&
				ret.Var == x.Fors[0].Var && len(ret.Steps) == 0 {
				writeNode(b, x.Fors[0].Src)
				return
			}
		}
		b.WriteString("for ")
		for i, f := range x.Fors {
			if i > 0 {
				b.WriteString(", ")
			}
			writeNode(b, f)
		}
		if x.Where != nil {
			b.WriteString(" where ")
			writeNode(b, x.Where)
		}
		b.WriteString(" return ")
		writeNode(b, x.Return)
	case *ForClause:
		b.WriteString(x.Var)
		b.WriteString(" in ")
		writeNode(b, x.Src)
	case *PathExpr:
		head := false
		switch {
		case x.Doc != "":
			b.WriteString("doc(")
			b.WriteString(quote(x.Doc))
			b.WriteString(")")
			head = true
		case x.Var != "":
			b.WriteString(x.Var)
			head = true
		}
		if !head && len(x.Steps) == 0 {
			b.WriteString(".")
			return
		}
		for i, st := range x.Steps {
			writeStep(b, st, head || i > 0)
		}
	case *Step:
		writeStep(b, x, true)
	case *PosPred:
		fmt.Fprintf(b, "[%d]", x.N)
	case *CmpExpr:
		writeNode(b, x.L)
		b.WriteString(" ")
		b.WriteString(x.Op.String())
		b.WriteString(" ")
		writeNode(b, x.R)
	case *LogicExpr:
		if x.Kind == LNot {
			b.WriteString("not(")
			if len(x.Kids) > 0 {
				writeNode(b, x.Kids[0])
			}
			b.WriteString(")")
			return
		}
		sep := " " + x.Kind.String() + " "
		for i, k := range x.Kids {
			if i > 0 {
				b.WriteString(sep)
			}
			// Parenthesize nested connectives so precedence survives the
			// round trip (`(a or b) and c`).
			if _, nested := k.(*LogicExpr); nested {
				b.WriteString("(")
				writeNode(b, k)
				b.WriteString(")")
			} else {
				writeNode(b, k)
			}
		}
	case *Literal:
		switch x.Atom.Kind {
		case data.KindString:
			b.WriteString(quote(x.Atom.S))
		case data.KindBool:
			if x.Atom.B {
				b.WriteString("true()")
			} else {
				b.WriteString("false()")
			}
		case data.KindFloat:
			s := strconv.FormatFloat(x.Atom.F, 'f', -1, 64)
			// Keep integral floats float-typed across a round trip: "2"
			// would reparse as an Int.
			if !strings.ContainsRune(s, '.') {
				s += ".0"
			}
			b.WriteString(s)
		default:
			b.WriteString(strconv.FormatInt(x.Atom.I, 10))
		}
	case *ElemCons:
		b.WriteString("<")
		b.WriteString(x.Name)
		b.WriteString(">")
		for _, k := range x.Kids {
			// yat-lint:ignore deliberately partial: anything but nested constructors prints inside {...}
			switch k.(type) {
			case *ElemCons, *TextCons:
				writeNode(b, k)
			default:
				b.WriteString("{")
				writeNode(b, k)
				b.WriteString("}")
			}
		}
		b.WriteString("</")
		b.WriteString(x.Name)
		b.WriteString(">")
	case *TextCons:
		b.WriteString(x.S)
	}
}

// writeStep renders one step; sep states whether a `/`-family separator must
// precede it (false only for the first step of a relative path).
func writeStep(b *strings.Builder, st *Step, sep bool) {
	switch st.Axis {
	case Desc:
		if sep {
			b.WriteString("//")
		} else {
			b.WriteString("descendant::")
		}
	case Child:
		if sep {
			b.WriteString("/")
		}
	case Attr:
		if sep {
			b.WriteString("/")
		}
		b.WriteString("@")
	case Parent:
		if sep {
			b.WriteString("/")
		}
		b.WriteString("parent::")
	case Ancestor:
		if sep {
			b.WriteString("/")
		}
		b.WriteString("ancestor::")
	}
	if st.Wild {
		b.WriteString("*")
	} else {
		b.WriteString(st.Name)
	}
	for _, pr := range st.Preds {
		if _, ok := pr.(*PosPred); ok {
			writeNode(b, pr)
			continue
		}
		b.WriteString("[")
		writeNode(b, pr)
		b.WriteString("]")
	}
}

// quote renders a string literal, escaping only the quote and backslash (the
// scanner preserves every other byte verbatim, so this is a faithful round
// trip even for control characters).
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' || c == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
	b.WriteByte('"')
	return b.String()
}
