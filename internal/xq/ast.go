// Package xq implements the XPath/XQuery-FLWR front-end of the mediator: a
// lexer and recursive-descent parser for an XPath subset (child `/`,
// descendant `//`, attribute `@`, name tests, `[...]` predicates with
// comparisons and positional filters, reverse axes `parent::`/`ancestor::`)
// and FLWR expressions
//
//	for $v in <path> (, $v2 in <path>)* [where <cond>] return <constructor>
//
// producing a typed AST. The companion package xq/compile lowers the AST
// into the YAT algebra; see DESIGN.md §12 for the axis-encoding scheme.
package xq

import "repro/internal/data"

// Node is the sealed interface of all AST node types. yat-lint checks that
// type switches over Node are exhaustive, like switches over algebra.Op.
type Node interface {
	isNode()
}

// Axis enumerates the supported XPath axes.
type Axis int

// Supported axes. Child is the default; Desc is the `//` shorthand for
// descendant-or-self::node()/child (we implement the common descendant
// semantics); Attr addresses the `@name` children of the XML encoding;
// Parent and Ancestor are the reverse axes.
const (
	Child Axis = iota
	Desc
	Attr
	Parent
	Ancestor
)

// String returns the axis spelling used in error messages and printing.
func (a Axis) String() string {
	switch a {
	case Child:
		return "child"
	case Desc:
		return "descendant"
	case Attr:
		return "attribute"
	case Parent:
		return "parent"
	case Ancestor:
		return "ancestor"
	default:
		return "axis(?)"
	}
}

// Query is a full FLWR query. A bare path query parses into a synthesized
// single-clause Query whose Return splices the bound variable.
type Query struct {
	Fors   []*ForClause
	Where  Node // nil, CmpExpr or LogicExpr
	Return Node // ElemCons, PathExpr or Literal
}

// ForClause binds Var to each node selected by Src.
type ForClause struct {
	Var string // "$w"
	Src *PathExpr
}

// PathExpr is a path: rooted at a document (Doc != ""), at a variable
// (Var != ""), or relative to the context node (both empty, used inside
// predicates: `more/cplace = "X"`).
type PathExpr struct {
	Doc   string // doc("works") root
	Var   string // $w root
	Steps []*Step
}

// Step is one location step.
type Step struct {
	Axis  Axis
	Name  string // name test; "" iff Wild
	Wild  bool   // `*`
	Preds []Node // PosPred, CmpExpr or LogicExpr, in syntactic order
}

// PosPred is a positional predicate [n] (1-based among same-name siblings).
type PosPred struct {
	N int
}

// CmpOp enumerates comparison operators in predicates and where clauses.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the operator spelling.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "op(?)"
	}
}

// CmpExpr compares two operands; operands are PathExpr or Literal.
type CmpExpr struct {
	Op   CmpOp
	L, R Node
}

// LogicKind enumerates boolean connectives.
type LogicKind int

// Boolean connectives.
const (
	LAnd LogicKind = iota
	LOr
	LNot
)

// String returns the connective spelling.
func (k LogicKind) String() string {
	switch k {
	case LAnd:
		return "and"
	case LOr:
		return "or"
	case LNot:
		return "not"
	default:
		return "logic(?)"
	}
}

// LogicExpr combines conditions: and/or have two or more kids, not exactly
// one.
type LogicExpr struct {
	Kind LogicKind
	Kids []Node
}

// Literal is an atomic constant: string, integer, float or boolean.
type Literal struct {
	Atom data.Atom
}

// ElemCons constructs an element `<name>...</name>`; kids are ElemCons,
// TextCons, or embedded expressions (PathExpr, Literal) from `{...}` braces.
type ElemCons struct {
	Name string
	Kids []Node
}

// TextCons is raw character content inside an element constructor.
type TextCons struct {
	S string
}

func (*Query) isNode()     {}
func (*ForClause) isNode() {}
func (*PathExpr) isNode()  {}
func (*Step) isNode()      {}
func (*PosPred) isNode()   {}
func (*CmpExpr) isNode()   {}
func (*LogicExpr) isNode() {}
func (*Literal) isNode()   {}
func (*ElemCons) isNode()  {}
func (*TextCons) isNode()  {}
