package xq

import (
	"strings"
	"testing"

	"repro/internal/data"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseBarePath(t *testing.T) {
	q := mustParse(t, `doc("works")//title`)
	if len(q.Fors) != 1 || q.Where != nil {
		t.Fatalf("bare path should desugar to one clause: %s", Print(q))
	}
	src := q.Fors[0].Src
	if src.Doc != "works" || len(src.Steps) != 1 {
		t.Fatalf("path mangled: %s", PrintNode(src))
	}
	if src.Steps[0].Axis != Desc || src.Steps[0].Name != "title" {
		t.Fatalf("step mangled: %+v", src.Steps[0])
	}
	ret, ok := q.Return.(*PathExpr)
	if !ok || ret.Var != q.Fors[0].Var {
		t.Fatalf("return should splice the bound variable")
	}
}

func TestParseAxes(t *testing.T) {
	q := mustParse(t, `doc("d")/a//b/@c/parent::e/ancestor::f/child::g/descendant::h/*`)
	steps := q.Fors[0].Src.Steps
	want := []struct {
		axis Axis
		name string
		wild bool
	}{
		{Child, "a", false}, {Desc, "b", false}, {Attr, "c", false},
		{Parent, "e", false}, {Ancestor, "f", false}, {Child, "g", false},
		{Desc, "h", false}, {Child, "", true},
	}
	if len(steps) != len(want) {
		t.Fatalf("got %d steps, want %d: %s", len(steps), len(want), Print(q))
	}
	for i, w := range want {
		if steps[i].Axis != w.axis || steps[i].Name != w.name || steps[i].Wild != w.wild {
			t.Fatalf("step %d: got %+v, want %+v", i, steps[i], w)
		}
	}
	// @ attributes address the @name children of the XML encoding.
	if steps[2].Axis != Attr {
		t.Fatalf("@c should be an attribute step")
	}
}

func TestParsePredicates(t *testing.T) {
	q := mustParse(t, `doc("d")/work[2][price < 100 and (style = "a" or not(. = "b"))]/title`)
	st := q.Fors[0].Src.Steps[0]
	if len(st.Preds) != 2 {
		t.Fatalf("want 2 predicates, got %d", len(st.Preds))
	}
	if pp, ok := st.Preds[0].(*PosPred); !ok || pp.N != 2 {
		t.Fatalf("first predicate should be positional [2]: %#v", st.Preds[0])
	}
	and, ok := st.Preds[1].(*LogicExpr)
	if !ok || and.Kind != LAnd || len(and.Kids) != 2 {
		t.Fatalf("second predicate should be a 2-way and: %s", PrintNode(st.Preds[1]))
	}
	cmp, ok := and.Kids[0].(*CmpExpr)
	if !ok || cmp.Op != OpLt {
		t.Fatalf("left conjunct should be price < 100")
	}
	rel, ok := cmp.L.(*PathExpr)
	if !ok || rel.Doc != "" || rel.Var != "" || rel.Steps[0].Name != "price" {
		t.Fatalf("price should parse as a relative path: %#v", cmp.L)
	}
	or, ok := and.Kids[1].(*LogicExpr)
	if !ok || or.Kind != LOr {
		t.Fatalf("right conjunct should be an or")
	}
	if not, ok := or.Kids[1].(*LogicExpr); !ok || not.Kind != LNot {
		t.Fatalf("or's right kid should be a not(...)")
	}
}

func TestParseFLWR(t *testing.T) {
	q := mustParse(t, `for $w in doc("artworks")/doc/work, $p in doc("persons")/set/class
		where $w/style = "Impressionist" and $w/price < 200000
		return <result><title>{$w/title}</title><price>{$w/price}</price></result>`)
	if len(q.Fors) != 2 {
		t.Fatalf("want 2 for clauses")
	}
	if q.Fors[1].Var != "$p" || q.Fors[1].Src.Doc != "persons" {
		t.Fatalf("second clause mangled: %s", PrintNode(q.Fors[1]))
	}
	and, ok := q.Where.(*LogicExpr)
	if !ok || and.Kind != LAnd {
		t.Fatalf("where should be an and")
	}
	lhs := and.Kids[0].(*CmpExpr).L.(*PathExpr)
	if lhs.Var != "$w" || lhs.Steps[0].Name != "style" {
		t.Fatalf("where lhs mangled: %s", PrintNode(lhs))
	}
	el, ok := q.Return.(*ElemCons)
	if !ok || el.Name != "result" || len(el.Kids) != 2 {
		t.Fatalf("return constructor mangled: %s", PrintNode(q.Return))
	}
	title := el.Kids[0].(*ElemCons)
	if emb, ok := title.Kids[0].(*PathExpr); !ok || emb.Var != "$w" {
		t.Fatalf("embed mangled: %s", PrintNode(title))
	}
}

func TestParseDependentClauseAndText(t *testing.T) {
	q := mustParse(t, `for $w in doc("w")/a, $t in $w/b return <r>label{$t}</r>`)
	if q.Fors[1].Src.Var != "$w" {
		t.Fatalf("dependent clause should root at $w")
	}
	el := q.Return.(*ElemCons)
	if txt, ok := el.Kids[0].(*TextCons); !ok || txt.S != "label" {
		t.Fatalf("raw text mangled: %s", PrintNode(el))
	}
}

func TestParseLiterals(t *testing.T) {
	q := mustParse(t, `for $w in doc("d")/a where $w/x = "s\"t" and $w/y = 1.5 and $w/z = true() and $w/k != -3 return $w`)
	and := q.Where.(*LogicExpr)
	atoms := make([]data.Atom, 0, 4)
	for _, k := range and.Kids {
		atoms = append(atoms, k.(*CmpExpr).R.(*Literal).Atom)
	}
	if atoms[0].S != `s"t` || atoms[1].F != 1.5 || atoms[2].B != true || atoms[3].I != -3 {
		t.Fatalf("literal atoms mangled: %v", atoms)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`for`,
		`for $w in`,
		`for $w in doc("d")/a return`,
		`doc("d")/`,
		`doc("d"`,
		`doc("d")//parent::x`,
		`for $w in doc("d")/a where $w/x return $w`, // existence preds unsupported
		`for $w in doc("d")/a return <r>{$w}`,       // unterminated element
		`for $w in doc("d")/a return <r></s>`,       // mismatched tags
		`doc("d")/a[0]`,                             // positions are 1-based
		`doc("d")/a trailing`,
		`doc("d")/@*`,
	}
	for _, src := range bad {
		if q, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail, got %s", src, Print(q))
		}
	}
}

func TestIsQuery(t *testing.T) {
	for _, src := range []string{`for $w in doc("d")/a return $w`, `doc("works")//title`, `$w/title`, `  for $x in doc("d")/a return $x`} {
		if !IsQuery(src) {
			t.Errorf("IsQuery(%q) = false, want true", src)
		}
	}
	// YAT_L bodies and '.'-rooted text are not the xq dialect: Parse has no
	// top-level context-rooted form, so routing them here would always fail.
	for _, src := range []string{`MAKE $t`, `./title`, `.`, ``, `forge $x`} {
		if IsQuery(src) {
			t.Errorf("IsQuery(%q) = true, want false", src)
		}
	}
}

func TestIntegralFloatRoundTrip(t *testing.T) {
	// data.Float(2) must print in a form that reparses as a float, or
	// Parse∘Print is not the identity on ASTs.
	if s := PrintNode(&Literal{Atom: data.Float(2)}); s != "2.0" {
		t.Fatalf("integral float prints as %q, want \"2.0\"", s)
	}
	q := mustParse(t, `for $w in doc("d")/a where $w/y = 2.0 return $w`)
	q2 := mustParse(t, Print(q))
	atom := q2.Where.(*CmpExpr).R.(*Literal).Atom
	if atom.Kind != data.KindFloat || atom.F != 2 {
		t.Fatalf("float literal reparsed as %v", atom)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{
		`doc("works")//title`,
		`doc("d")/a//b/@c/parent::e/ancestor::f`,
		`doc("d")/work[2][price < 100 and (style = "a" or not(. = "b"))]/title`,
		`for $w in doc("artworks")/doc/work where $w/more/cplace = "Giverny" return $w/title`,
		`for $w in doc("artworks")/doc/work where $w/style = "Impressionist" and $w/price < 200000 return <result><title>{$w/title}</title><price>{$w/price}</price></result>`,
		`for $w in doc("w")/a, $t in $w/b return <r>label{$t}</r>`,
		`for $w in doc("d")/a where $w/x = "s\"t" or $w/y <= 1.5 return $w`,
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		p1 := Print(q1)
		q2, err := Parse(p1)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v\noriginal: %q", p1, err, src)
		}
		p2 := Print(q2)
		if p1 != p2 {
			t.Fatalf("print not a fixpoint:\n p1 = %q\n p2 = %q", p1, p2)
		}
		// The canonical form stays close to the input modulo whitespace.
		if strings.Join(strings.Fields(src), " ") != p1 && src != p1 {
			t.Logf("canonicalized %q -> %q", src, p1)
		}
	}
}
