// Package compile lowers xq ASTs into the YAT algebra. A query becomes a
// yatl.Rule — MAKE from the return constructor, MATCH clauses from the for
// paths, WHERE from the conditions — and yatl.Translate produces the plan,
// so compiled queries get exactly the Bind/Select/Join/Tree shapes the
// three-round optimizer, the batching engine and AllowPartial already
// handle.
//
// Two encodings cover the axis spectrum (DESIGN.md §12):
//
//   - Filter route (default): forward child/attribute steps become YAT
//     filters over the named document, exactly the shapes a hand-written
//     YAT_L query uses. Descendant steps in predicate or return extensions
//     become ** descent items.
//
//   - Nodes route: a path using `//`, reverse axes or positional predicates
//     anywhere in its for clause compiles against the source's `<doc>.nodes`
//     table (internal/nodetab): one Bind per location step over node[...]
//     filters in canonical field order, with axes as pre/post/parent
//     comparisons the optimizer can push to wrappers as range joins.
package compile

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/nodetab"
	"repro/internal/xq"
	"repro/internal/yatl"
)

// Options configure compilation.
type Options struct {
	// IsView reports whether a document names a mediator view. Node-table
	// routes need the pre/post numbering only sources export, so reverse
	// axes, `//` and positional predicates over a view are refused with a
	// targeted error instead of a late "unknown document <view>.nodes".
	IsView func(doc string) bool
}

// Compile lowers a query to an executable algebra plan.
func Compile(q *xq.Query, opt Options) (algebra.Op, error) {
	r, err := Rule(q, opt)
	if err != nil {
		return nil, err
	}
	return yatl.Translate(r)
}

// Rule lowers a query to the equivalent YAT_L rule (the intermediate form;
// the console's `xq` command displays it).
func Rule(q *xq.Query, opt Options) (*yatl.Rule, error) {
	c := &compiler{
		opt:     opt,
		used:    map[string]bool{},
		anchors: map[string]*anchor{},
		ext:     map[*filter.FNode]map[string]*filter.FNode{},
		content: map[*filter.FNode]string{},
	}
	collectVars(q, c.used)
	for _, f := range q.Fors {
		if err := c.forClause(f); err != nil {
			return nil, err
		}
	}
	if q.Where != nil {
		e, err := c.cond(q.Where, nil)
		if err != nil {
			return nil, err
		}
		c.conjs = append(c.conjs, e)
	}
	make_, err := c.cons(q.Return)
	if err != nil {
		return nil, err
	}
	r := &yatl.Rule{Name: "xq", Make: make_}
	for _, s := range c.slots {
		f := s.root
		if s.nb != nil {
			f = s.nb.render()
		}
		r.Matches = append(r.Matches, yatl.Match{Doc: s.doc, F: filter.New(f)})
	}
	if len(c.conjs) > 0 {
		r.Where = algebra.Conj(c.conjs...)
	}
	return r, nil
}

// NeedsNodes reports whether a path requires the node-table encoding:
// descendant or reverse axes, or a positional predicate, on any of its
// steps.
func NeedsNodes(p *xq.PathExpr) bool { return needsNodesSteps(p.Steps) }

func needsNodesSteps(steps []*xq.Step) bool {
	for _, st := range steps {
		switch st.Axis {
		case xq.Desc, xq.Parent, xq.Ancestor:
			return true
		}
		for _, pr := range st.Preds {
			if _, ok := pr.(*xq.PosPred); ok {
				return true
			}
		}
	}
	return false
}

// anchor is the compilation site a for variable is bound at: a filter node
// (filter route) or a node-table bind (nodes route).
type anchor struct {
	fn *filter.FNode
	nb *nodeBind
}

// slot is one pending MATCH clause, in creation order.
type slot struct {
	doc  string
	root *filter.FNode // filter route
	nb   *nodeBind     // nodes route
}

type compiler struct {
	opt     Options
	used    map[string]bool // variable names taken (user vars + minted)
	n       int
	slots   []*slot
	conjs   []algebra.Expr
	anchors map[string]*anchor
	// ext memoizes extension children per filter node, keyed by "/label"
	// (child) or "//label" (descent), so `$w/title` in where and return
	// shares one binding.
	ext map[*filter.FNode]map[string]*filter.FNode
	// content memoizes the content variable bound at a filter node.
	content map[*filter.FNode]string
}

// collectVars marks every $variable occurring in the query so minted names
// never collide.
func collectVars(n xq.Node, used map[string]bool) {
	switch x := n.(type) {
	case *xq.Query:
		for _, f := range x.Fors {
			collectVars(f, used)
		}
		if x.Where != nil {
			collectVars(x.Where, used)
		}
		collectVars(x.Return, used)
	case *xq.ForClause:
		used[x.Var] = true
		collectVars(x.Src, used)
	case *xq.PathExpr:
		if x.Var != "" {
			used[x.Var] = true
		}
		for _, st := range x.Steps {
			collectVars(st, used)
		}
	case *xq.Step:
		for _, pr := range x.Preds {
			collectVars(pr, used)
		}
	case *xq.CmpExpr:
		collectVars(x.L, used)
		collectVars(x.R, used)
	case *xq.LogicExpr:
		for _, k := range x.Kids {
			collectVars(k, used)
		}
	case *xq.ElemCons:
		for _, k := range x.Kids {
			collectVars(k, used)
		}
	case *xq.PosPred, *xq.Literal, *xq.TextCons:
		// no variables
	}
}

// fresh mints an unused variable name.
func (c *compiler) fresh() string {
	for {
		c.n++
		v := fmt.Sprintf("$xq%d", c.n)
		if !c.used[v] {
			c.used[v] = true
			return v
		}
	}
}

// ---------------------------------------------------------------------------
// For clauses
// ---------------------------------------------------------------------------

func (c *compiler) forClause(f *xq.ForClause) error {
	if _, dup := c.anchors[f.Var]; dup {
		return fmt.Errorf("xq: variable %s bound twice", f.Var)
	}
	p := f.Src
	var a *anchor
	switch {
	case p.Doc != "":
		var err error
		if needsNodesSteps(p.Steps) {
			a, err = c.docNodesClause(p)
		} else {
			a, err = c.docFilterClause(p)
		}
		if err != nil {
			return err
		}
	case p.Var != "":
		base, ok := c.anchors[p.Var]
		if !ok {
			return fmt.Errorf("xq: for clause %s references unbound variable %s", f.Var, p.Var)
		}
		var err error
		if base.nb != nil {
			nb, e := c.nodeSteps(base.nb, p.Steps, true)
			a, err = &anchor{nb: nb}, e
		} else {
			if needsNodesSteps(p.Steps) {
				return fmt.Errorf("xq: %s: descendant/reverse axes and positional predicates on a path rooted at %s need a document-rooted path (node tables exist per source document)", f.Var, p.Var)
			}
			fn, e := c.filterSteps(base.fn, p.Steps, true)
			a, err = &anchor{fn: fn}, e
		}
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("xq: for clause %s must iterate a doc(...)- or variable-rooted path", f.Var)
	}
	c.anchors[f.Var] = a
	return nil
}

// docFilterClause compiles a document-rooted forward path into one MATCH
// clause: the first step names the tree root, later steps are starred
// element items (the `doc[ *work[...] ]` convention of hand-written rules).
func (c *compiler) docFilterClause(p *xq.PathExpr) (*anchor, error) {
	root := &filter.FNode{}
	rest := p.Steps
	if len(rest) > 0 {
		st := rest[0]
		if st.Axis == xq.Parent || st.Axis == xq.Ancestor {
			return nil, fmt.Errorf("xq: the document root of %q has no %s", p.Doc, st.Axis)
		}
		root.Label, root.AnyLabel = stepLabel(st)
		if err := c.stepPreds(st, &anchor{fn: root}); err != nil {
			return nil, err
		}
		rest = rest[1:]
	}
	c.slots = append(c.slots, &slot{doc: p.Doc, root: root})
	fn, err := c.filterSteps(root, rest, true)
	if err != nil {
		return nil, err
	}
	return &anchor{fn: fn}, nil
}

// docNodesClause compiles a document-rooted path carrying descendant,
// reverse-axis or positional steps against the document's node table.
func (c *compiler) docNodesClause(p *xq.PathExpr) (*anchor, error) {
	if c.opt.IsView != nil && c.opt.IsView(p.Doc) {
		return nil, fmt.Errorf("xq: %q is a view: descendant/reverse axes and positional predicates need the pre/post node numbering only source documents export; query the underlying source directly", p.Doc)
	}
	nb, err := c.nodeSteps(nil, p.Steps, true)
	if err != nil {
		return nil, err
	}
	if nb == nil {
		return nil, fmt.Errorf("xq: doc(%q) alone cannot use the node-table route", p.Doc)
	}
	// Patch the document onto every bind the chain created (nodeSteps is
	// shared with variable-rooted extensions, which inherit the doc).
	for _, s := range c.slots {
		if s.nb != nil && s.nb.doc == "" {
			s.nb.doc = nodetab.Doc(p.Doc)
			s.doc = s.nb.doc
		}
	}
	return &anchor{nb: nb}, nil
}

// stepLabel returns the filter label for a step (attributes address the
// `@name` children of the XML encoding).
func stepLabel(st *xq.Step) (label string, anyLabel bool) {
	if st.Wild {
		return "", true
	}
	if st.Axis == xq.Attr {
		return "@" + st.Name, false
	}
	return st.Name, false
}

// ---------------------------------------------------------------------------
// Filter route
// ---------------------------------------------------------------------------

// filterSteps extends a filter node with a chain of steps; star marks for
// clause iteration (hand-rule convention: `*work[...]`), extensions from
// where/return stay unstarred (`title: $t`).
func (c *compiler) filterSteps(from *filter.FNode, steps []*xq.Step, star bool) (*filter.FNode, error) {
	cur := from
	for _, st := range steps {
		switch st.Axis {
		case xq.Parent, xq.Ancestor:
			return nil, fmt.Errorf("xq: %s:: steps need a document-rooted path over a source document (node tables)", st.Axis)
		}
		label, anyLabel := stepLabel(st)
		key := "/" + label
		if st.Axis == xq.Desc {
			key = "//" + label
		}
		if anyLabel {
			key += "*"
		}
		var next *filter.FNode
		if !star && len(st.Preds) == 0 {
			if m := c.ext[cur]; m != nil {
				next = m[key]
			}
		}
		if next == nil {
			next = &filter.FNode{Label: label, AnyLabel: anyLabel}
			cur.Items = append(cur.Items, filter.FItem{
				F:       next,
				Star:    star,
				Descend: st.Axis == xq.Desc,
			})
			if !star && len(st.Preds) == 0 {
				if c.ext[cur] == nil {
					c.ext[cur] = map[string]*filter.FNode{}
				}
				c.ext[cur][key] = next
			}
		}
		if err := c.stepPreds(st, &anchor{fn: next}); err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// stepPreds lowers a step's predicate list at its anchor; positional
// predicates only make sense on the nodes route.
func (c *compiler) stepPreds(st *xq.Step, at *anchor) error {
	for _, pr := range st.Preds {
		if pp, ok := pr.(*xq.PosPred); ok {
			if at.nb == nil {
				return fmt.Errorf("xq: positional predicate [%d] needs a document-rooted path over a source document (node tables)", pp.N)
			}
			if st.Wild {
				return fmt.Errorf("xq: positional predicate [%d] on a wildcard step is unsupported (the node table's pos counts same-name siblings, not position among all selected nodes)", pp.N)
			}
			if at.nb.posConst != nil {
				return fmt.Errorf("xq: step %s carries more than one positional predicate ([%d] and [%d])", st.Name, *at.nb.posConst, pp.N)
			}
			k := int64(pp.N)
			at.nb.posConst = &k
			continue
		}
		e, err := c.cond(pr, at)
		if err != nil {
			return err
		}
		c.conjs = append(c.conjs, e)
	}
	return nil
}

// contentVar binds (once) the atomic content of a filter node.
func (c *compiler) contentVar(fn *filter.FNode) string {
	if v, ok := c.content[fn]; ok {
		return v
	}
	v := c.fresh()
	fn.Items = append(fn.Items, filter.FItem{F: &filter.FNode{Var: v}})
	c.content[fn] = v
	return v
}

// treeVar binds (once) the subtree of a filter node (`work@$w[...]`).
func (c *compiler) treeVar(fn *filter.FNode) string {
	if fn.Var == "" {
		fn.Var = c.fresh()
	}
	return fn.Var
}

// ---------------------------------------------------------------------------
// Nodes route
// ---------------------------------------------------------------------------

// nodeBind is one pending Bind over a node table. Variables are allocated
// on demand and the node[...] filter rendered at the end, in the canonical
// nodetab.FieldOrder wrappers declare.
type nodeBind struct {
	doc         string
	pre, post   string // range/axis variables ("" = unused)
	parent      string
	value, tree string
	parentConst *int64
	nameConst   string // "" = wildcard
	posConst    *int64
	kids        map[string]*nodeBind // extension memo
}

func (nb *nodeBind) preVar(c *compiler) string {
	if nb.pre == "" {
		nb.pre = c.fresh()
	}
	return nb.pre
}

func (nb *nodeBind) postVar(c *compiler) string {
	if nb.post == "" {
		nb.post = c.fresh()
	}
	return nb.post
}

func (nb *nodeBind) parentVar(c *compiler) string {
	if nb.parent == "" {
		nb.parent = c.fresh()
	}
	return nb.parent
}

func (nb *nodeBind) valueVar(c *compiler) string {
	if nb.value == "" {
		nb.value = c.fresh()
	}
	return nb.value
}

func (nb *nodeBind) treeVar(c *compiler) string {
	if nb.tree == "" {
		nb.tree = c.fresh()
	}
	return nb.tree
}

// render produces the node[...] filter, fields in canonical order.
func (nb *nodeBind) render() *filter.FNode {
	root := &filter.FNode{Label: "node"}
	field := func(label, v string, konst *data.Atom) {
		if v == "" && konst == nil {
			return
		}
		// Constants and variables sit in content position (the canonical
		// `parent: -1` / `pre: $p` forms the capability checker expects).
		fn := &filter.FNode{Label: label}
		if konst != nil {
			fn.Items = append(fn.Items, filter.FItem{F: &filter.FNode{Const: konst}})
		}
		if v != "" {
			fn.Items = append(fn.Items, filter.FItem{F: &filter.FNode{Var: v}})
		}
		root.Items = append(root.Items, filter.FItem{F: fn})
	}
	intAtom := func(p *int64) *data.Atom {
		if p == nil {
			return nil
		}
		a := data.Int(*p)
		return &a
	}
	field("pre", nb.pre, nil)
	field("post", nb.post, nil)
	field("parent", nb.parent, intAtom(nb.parentConst))
	var name *data.Atom
	if nb.nameConst != "" {
		a := data.String(nb.nameConst)
		name = &a
	}
	field("name", "", name)
	field("pos", "", intAtom(nb.posConst))
	field("value", nb.value, nil)
	field("tree", nb.tree, nil)
	return root
}

// nodeSteps compiles a chain of steps into node-table binds joined by axis
// predicates over the pre/post/parent numbering. from == nil starts at the
// document root. iterate marks for-clause iteration (mirroring filterSteps'
// star): iteration binds are always fresh and never memoized, so two for
// clauses over the same path stay independent cartesian sources; only
// where/return extensions share binds through the kids memo.
func (c *compiler) nodeSteps(from *nodeBind, steps []*xq.Step, iterate bool) (*nodeBind, error) {
	cur := from
	for _, st := range steps {
		label, anyLabel := stepLabel(st)
		key := fmt.Sprintf("%d/%s", st.Axis, label)
		memoize := !iterate && cur != nil && len(st.Preds) == 0
		if memoize {
			if nb := cur.kids[key]; nb != nil {
				cur = nb
				continue
			}
		}
		nb := &nodeBind{kids: map[string]*nodeBind{}}
		if cur != nil {
			nb.doc = cur.doc
		}
		if !anyLabel {
			nb.nameConst = label
		}
		if err := c.axisConj(cur, nb, st.Axis); err != nil {
			return nil, err
		}
		c.slots = append(c.slots, &slot{doc: nb.doc, nb: nb})
		if memoize {
			cur.kids[key] = nb
		}
		if err := c.stepPreds(st, &anchor{nb: nb}); err != nil {
			return nil, err
		}
		cur = nb
	}
	return cur, nil
}

// axisConj emits the axis predicate connecting s (context) to t (the new
// step); s == nil means the document root.
func (c *compiler) axisConj(s, t *nodeBind, axis xq.Axis) error {
	lt := func(a, b string) algebra.Expr {
		return algebra.Cmp{Op: algebra.OpLt, L: algebra.Var{Name: a}, R: algebra.Var{Name: b}}
	}
	if s == nil {
		switch axis {
		case xq.Child, xq.Attr:
			k := int64(-1)
			t.parentConst = &k
		case xq.Desc:
			// every node is a descendant of the document root
		case xq.Parent, xq.Ancestor:
			return fmt.Errorf("xq: the document root has no %s", axis)
		}
		return nil
	}
	switch axis {
	case xq.Child, xq.Attr:
		c.conjs = append(c.conjs, algebra.VarEq(t.parentVar(c), s.preVar(c)))
	case xq.Desc:
		c.conjs = append(c.conjs, lt(s.preVar(c), t.preVar(c)), lt(t.postVar(c), s.postVar(c)))
	case xq.Parent:
		c.conjs = append(c.conjs, algebra.VarEq(t.preVar(c), s.parentVar(c)))
	case xq.Ancestor:
		c.conjs = append(c.conjs, lt(t.preVar(c), s.preVar(c)), lt(s.postVar(c), t.postVar(c)))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Conditions and operands
// ---------------------------------------------------------------------------

// cond lowers a boolean condition; ctx anchors relative paths (step
// predicates), nil at the where clause.
func (c *compiler) cond(n xq.Node, ctx *anchor) (algebra.Expr, error) {
	// yat-lint:ignore deliberately partial: non-condition nodes rejected by the error default
	switch x := n.(type) {
	case *xq.CmpExpr:
		l, err := c.operand(x.L, ctx)
		if err != nil {
			return nil, err
		}
		r, err := c.operand(x.R, ctx)
		if err != nil {
			return nil, err
		}
		return algebra.Cmp{Op: algebra.CmpOp(x.Op.String()), L: l, R: r}, nil
	case *xq.LogicExpr:
		if x.Kind == xq.LNot {
			e, err := c.cond(x.Kids[0], ctx)
			if err != nil {
				return nil, err
			}
			return algebra.Not{E: e}, nil
		}
		var out algebra.Expr
		for _, k := range x.Kids {
			e, err := c.cond(k, ctx)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = e
			} else if x.Kind == xq.LAnd {
				out = algebra.And{L: out, R: e}
			} else {
				out = algebra.Or{L: out, R: e}
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("xq: unsupported condition %T (conditions are comparisons combined with and/or/not)", n)
	}
}

// operand lowers one comparison operand to a scalar expression.
func (c *compiler) operand(n xq.Node, ctx *anchor) (algebra.Expr, error) {
	// yat-lint:ignore deliberately partial: non-operand nodes rejected by the error default
	switch x := n.(type) {
	case *xq.Literal:
		return algebra.Const{Atom: x.Atom}, nil
	case *xq.PathExpr:
		v, err := c.resolve(x, ctx, false)
		if err != nil {
			return nil, err
		}
		return algebra.Var{Name: v}, nil
	default:
		return nil, fmt.Errorf("xq: unsupported operand %T (operands are paths and literals)", n)
	}
}

// resolve binds a path expression to a variable: the atomic content of the
// addressed node (tree == false) or its whole subtree (tree == true).
func (c *compiler) resolve(p *xq.PathExpr, ctx *anchor, tree bool) (string, error) {
	at := ctx
	switch {
	case p.Var != "":
		a, ok := c.anchors[p.Var]
		if !ok {
			return "", fmt.Errorf("xq: unbound variable %s", p.Var)
		}
		at = a
	case p.Doc != "":
		return "", fmt.Errorf("xq: doc(%q) cannot appear as an operand; bind it with a for clause", p.Doc)
	case at == nil:
		return "", fmt.Errorf("xq: relative path is only meaningful inside a step predicate")
	}
	if at.nb != nil {
		nb, err := c.nodeSteps(at.nb, p.Steps, false)
		if err != nil {
			return "", err
		}
		if tree {
			return nb.treeVar(c), nil
		}
		return nb.valueVar(c), nil
	}
	fn, err := c.filterSteps(at.fn, p.Steps, false)
	if err != nil {
		return "", err
	}
	if tree {
		return c.treeVar(fn), nil
	}
	return c.contentVar(fn), nil
}

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

// cons lowers the return clause to a construction pattern.
func (c *compiler) cons(n xq.Node) (*algebra.Cons, error) {
	// yat-lint:ignore deliberately partial: non-constructor nodes rejected by the error default
	switch x := n.(type) {
	case *xq.PathExpr:
		// A whole for variable splices its subtree; a path extension
		// splices the addressed content (so `return $w/title` yields the
		// title text, matching `MAKE $t` over `title: $t`).
		wantTree := x.Var != "" && len(x.Steps) == 0
		v, err := c.resolve(x, nil, wantTree)
		if err != nil {
			return nil, err
		}
		return &algebra.Cons{Var: v}, nil
	case *xq.Literal:
		a := x.Atom
		return &algebra.Cons{Const: &a}, nil
	case *xq.TextCons:
		a := data.String(x.S)
		return &algebra.Cons{Const: &a}, nil
	case *xq.ElemCons:
		out := &algebra.Cons{Label: x.Name}
		for _, k := range x.Kids {
			kc, err := c.cons(k)
			if err != nil {
				return nil, err
			}
			out.Kids = append(out.Kids, algebra.ConsItem{C: kc})
		}
		return out, nil
	default:
		return nil, fmt.Errorf("xq: unsupported constructor %T", n)
	}
}
