package compile

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/nodetab"
	"repro/internal/tab"
	"repro/internal/xq"
)

func compilePlan(t *testing.T, src string, opt Options) algebra.Op {
	t.Helper()
	q, err := xq.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	plan, err := Compile(q, opt)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return plan
}

func worksContext() *algebra.Context {
	ctx := algebra.NewContext()
	works := datagen.PaperWorks()
	ctx.Catalog["works"] = works
	ctx.Catalog[nodetab.Doc("works")] = nodetab.Build(works)
	return ctx
}

func rows(t *testing.T, got *tab.Tab) []string {
	t.Helper()
	var out []string
	for _, r := range got.Rows {
		var parts []string
		for _, c := range r {
			parts = append(parts, c.String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func TestRuleShapeFilterRoute(t *testing.T) {
	q, err := xq.Parse(`for $w in doc("artworks")/doc/work where $w/more/cplace = "Giverny" return $w/title`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Rule(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Matches) != 1 || r.Matches[0].Doc != "artworks" {
		t.Fatalf("matches = %+v", r.Matches)
	}
	fs := r.Matches[0].F.String()
	if !strings.Contains(fs, "*work") {
		t.Errorf("for-path steps should be starred: %s", fs)
	}
	if !strings.Contains(fs, "title") || !strings.Contains(fs, "cplace") {
		t.Errorf("extensions missing from filter: %s", fs)
	}
	if r.Where == nil || !strings.Contains(r.Where.String(), `"Giverny"`) {
		t.Errorf("where = %v", r.Where)
	}
	// The rule renders as parseable YAT_L.
	if !strings.Contains(r.String(), "MAKE") {
		t.Errorf("rule = %s", r)
	}
}

func TestRuleShapeNodesRoute(t *testing.T) {
	q, err := xq.Parse(`doc("works")/work//technique`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Rule(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Matches) != 2 {
		t.Fatalf("want one match per step, got %+v", r.Matches)
	}
	for _, m := range r.Matches {
		if m.Doc != "works.nodes" {
			t.Errorf("match doc = %q", m.Doc)
		}
	}
	f0 := r.Matches[0].F.String()
	if !strings.Contains(f0, `name: "work"`) || !strings.Contains(f0, "parent: -1") {
		t.Errorf("root step filter = %s", f0)
	}
	// Canonical field order: pre before post before parent before name.
	if pre, post := strings.Index(f0, "pre"), strings.Index(f0, "post"); pre < 0 || post < pre {
		t.Errorf("field order violated: %s", f0)
	}
	w := r.Where.String()
	if strings.Count(w, "<") != 2 {
		t.Errorf("descendant axis should lower to two range comparisons: %s", w)
	}
}

func TestEvalFilterRoute(t *testing.T) {
	plan := compilePlan(t, `for $w in doc("works")/work where $w/style = "Impressionist" return $w/title`, Options{})
	got, err := algebra.Run(plan, worksContext())
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, got)
	if len(rs) != 2 || !strings.Contains(rs[0], "Nympheas") || !strings.Contains(rs[1], "Waterloo Bridge") {
		t.Errorf("rows = %v", rs)
	}
}

func TestEvalNodesRouteDescendant(t *testing.T) {
	// //technique reaches through the history element only the node table
	// encodes positionally.
	plan := compilePlan(t, `doc("works")/work//technique`, Options{})
	got, err := algebra.Run(plan, worksContext())
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, got)
	if len(rs) != 1 || !strings.Contains(rs[0], "Oil on canvas") {
		t.Errorf("rows = %v", rs)
	}
}

func TestEvalNodesRoutePositionalAndValue(t *testing.T) {
	// The second work, by value comparison on a child.
	plan := compilePlan(t, `for $w in doc("works")/work[2] return $w/title`, Options{})
	got, err := algebra.Run(plan, worksContext())
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, got)
	if len(rs) != 1 || !strings.Contains(rs[0], "Waterloo Bridge") {
		t.Errorf("rows = %v", rs)
	}
}

func TestEvalNodesRouteReverseAxis(t *testing.T) {
	// Which works contain a technique? Walk back up with ancestor::.
	plan := compilePlan(t, `for $t in doc("works")//technique, $w in $t/ancestor::work return $w/title`, Options{})
	got, err := algebra.Run(plan, worksContext())
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, got)
	if len(rs) != 1 || !strings.Contains(rs[0], "Waterloo Bridge") {
		t.Errorf("rows = %v", rs)
	}
}

func TestNodesRouteIterationBindsStayIndependent(t *testing.T) {
	// Regression: two for clauses iterating the same var-rooted path must
	// compile to distinct binds forming a cartesian product. The nodes-route
	// extension memo used to alias them, collapsing the pairs and letting a
	// predicate on $a silently constrain $b.
	works := data.Forest{
		data.Elem("work",
			data.Text("title", "t1"),
			data.Text("title", "t2"),
		),
	}
	ctx := algebra.NewContext()
	ctx.Catalog["dup"] = works
	ctx.Catalog[nodetab.Doc("dup")] = nodetab.Build(works)

	src := `for $w in doc("dup")//work, $a in $w/title, $b in $w/title return <p><x>{$a}</x><y>{$b}</y></p>`
	q, err := xq.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Rule(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Matches) != 3 {
		t.Fatalf("want one bind for work plus one per title clause, got %d matches:\n%s", len(r.Matches), r)
	}
	plan, err := Compile(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := algebra.Run(plan, ctx)
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, got)
	if len(rs) != 4 {
		t.Fatalf("cartesian of two 2-title clauses should yield 4 rows, got %v", rs)
	}
	cross := 0
	for _, row := range rs {
		if strings.Contains(row, "t1") && strings.Contains(row, "t2") {
			cross++
		}
	}
	if cross != 2 {
		t.Errorf("want 2 mixed (t1,t2)/(t2,t1) rows, got %d in %v", cross, rs)
	}

	// A predicate on $a must not leak onto $b.
	plan = compilePlan(t, `for $w in doc("dup")//work, $a in $w/title, $b in $w/title where $a = "t1" return $b`, Options{})
	got, err = algebra.Run(plan, ctx)
	if err != nil {
		t.Fatal(err)
	}
	rs = rows(t, got)
	if len(rs) != 2 {
		t.Errorf("filtering $a should leave both $b bindings, got %v", rs)
	}
}

func TestEvalConstructor(t *testing.T) {
	plan := compilePlan(t, `for $w in doc("works")/work where $w/cplace = "Giverny" return <hit><title>{$w/title}</title><at>{$w/cplace}</at></hit>`, Options{})
	got, err := algebra.Run(plan, worksContext())
	if err != nil {
		t.Fatal(err)
	}
	rs := rows(t, got)
	if len(rs) != 1 || !strings.Contains(rs[0], "Nympheas") || !strings.Contains(rs[0], "Giverny") {
		t.Errorf("rows = %v", rs)
	}
}

func TestCompileErrors(t *testing.T) {
	isView := func(d string) bool { return d == "artworks" }
	cases := []string{
		`doc("artworks")//title`,                              // nodes route over a view
		`for $w in doc("d")/a where $q/x = 1 return $w`,       // unbound variable
		`for $w in doc("d")/a where x = 1 return $w`,          // relative path outside a step predicate
		`for $w in doc("d")/parent::b return $w`,              // the document root has no parent
		`for $w in doc("d")/a, $t in $w/parent::b return $w`,  // reverse axis on filter anchor
		`for $w in doc("d")/a, $w in $w/b return $w`,          // duplicate binding
		`for $w in doc("d")/a[2][3] return $w`,                // two positional predicates on one step
		`for $w in doc("d")/*[2] return $w`,                   // positional predicate on a wildcard step
	}
	for _, src := range cases {
		q, err := xq.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(q, Options{IsView: isView}); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}
