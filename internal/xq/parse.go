package xq

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/data"
)

// Parse parses an XQuery-FLWR query or a bare path expression. A bare path
// `doc("works")//title` is sugar for
//
//	for $x in doc("works")//title return $x
//
// and parses into the synthesized single-clause Query.
func Parse(src string) (*Query, error) {
	p := &parser{src: src}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	p.ws()
	if !p.eof() {
		return nil, p.errf("unexpected input after query: %q", p.rest(12))
	}
	return q, nil
}

// parser is a hand-rolled scanner/parser over the source text. Scanning is
// context-driven rather than token-stream based so that element constructors
// can switch to raw-text mode and `<` can mean both "less than" and "open
// tag" depending on position.
type parser struct {
	src string
	pos int
}

// ---------------------------------------------------------------------------
// Scanner helpers
// ---------------------------------------------------------------------------

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) rest(n int) string {
	r := p.src[p.pos:]
	if len(r) > n {
		r = r[:n] + "…"
	}
	return r
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("xq: at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

// ws skips whitespace.
func (p *parser) ws() {
	for !p.eof() {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// lit consumes the literal s if it is next (after whitespace).
func (p *parser) lit(s string) bool {
	p.ws()
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

// peekLit reports whether s is next without consuming it.
func (p *parser) peekLit(s string) bool {
	p.ws()
	return strings.HasPrefix(p.src[p.pos:], s)
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || (c >= '0' && c <= '9')
}

// name scans an XML name; empty when none is next.
func (p *parser) name() string {
	p.ws()
	start := p.pos
	if p.eof() || !isNameStart(p.src[p.pos]) {
		return ""
	}
	for !p.eof() && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos]
}

// keyword consumes kw only when it is next as a whole word.
func (p *parser) keyword(kw string) bool {
	p.ws()
	save := p.pos
	if n := p.name(); n == kw {
		return true
	}
	p.pos = save
	return false
}

// peekKeyword reports whether kw is next as a whole word.
func (p *parser) peekKeyword(kw string) bool {
	save := p.pos
	ok := p.keyword(kw)
	p.pos = save
	return ok
}

// variable scans `$name`; empty when none is next.
func (p *parser) variable() string {
	p.ws()
	save := p.pos
	if p.eof() || p.src[p.pos] != '$' {
		return ""
	}
	p.pos++
	n := ""
	for !p.eof() && isNameChar(p.src[p.pos]) {
		p.pos++
		n = p.src[save+1 : p.pos]
	}
	if n == "" {
		p.pos = save
		return ""
	}
	return "$" + n
}

// stringLit scans a quoted string ('...' or "..."); backslash escapes the
// next character (only `\` and the quote need escaping; everything else is
// preserved verbatim).
func (p *parser) stringLit() (string, bool, error) {
	p.ws()
	if p.eof() || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", false, nil
	}
	quote := p.src[p.pos]
	p.pos++
	var b strings.Builder
	for {
		if p.eof() {
			return "", false, p.errf("unterminated string literal")
		}
		c := p.src[p.pos]
		p.pos++
		switch c {
		case quote:
			return b.String(), true, nil
		case '\\':
			if p.eof() {
				return "", false, p.errf("unterminated escape")
			}
			b.WriteByte(p.src[p.pos])
			p.pos++
		default:
			b.WriteByte(c)
		}
	}
}

// number scans an optionally negative integer or decimal literal.
func (p *parser) number() (*data.Atom, error) {
	p.ws()
	save := p.pos
	if !p.eof() && p.src[p.pos] == '-' {
		p.pos++
	}
	start := p.pos
	for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		p.pos = save
		return nil, nil
	}
	isFloat := false
	if !p.eof() && p.src[p.pos] == '.' && p.pos+1 < len(p.src) &&
		p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9' {
		isFloat = true
		p.pos++
		for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
	}
	text := p.src[save:p.pos]
	if !isFloat {
		if v, err := strconv.ParseInt(text, 10, 64); err == nil {
			a := data.Int(v)
			return &a, nil
		}
		// Fall through to float for magnitudes beyond int64.
	}
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return nil, p.errf("bad number %q", text)
	}
	a := data.Float(v)
	return &a, nil
}

// ---------------------------------------------------------------------------
// Grammar
// ---------------------------------------------------------------------------

// query parses a FLWR expression or a bare path.
func (p *parser) query() (*Query, error) {
	p.ws()
	if p.peekKeyword("for") {
		return p.flwr()
	}
	// Bare path sugar.
	path, err := p.rootedPath()
	if err != nil {
		return nil, err
	}
	if path == nil {
		return nil, p.errf("expected 'for' or a rooted path, got %q", p.rest(12))
	}
	v := "$x"
	return &Query{
		Fors:   []*ForClause{{Var: v, Src: path}},
		Return: &PathExpr{Var: v},
	}, nil
}

// flwr parses `for $v in path (, $v in path)* [where cond] return cons`.
func (p *parser) flwr() (*Query, error) {
	if !p.keyword("for") {
		return nil, p.errf("expected 'for'")
	}
	q := &Query{}
	for {
		v := p.variable()
		if v == "" {
			return nil, p.errf("expected variable after 'for'")
		}
		if !p.keyword("in") {
			return nil, p.errf("expected 'in' after %s", v)
		}
		src, err := p.rootedPath()
		if err != nil {
			return nil, err
		}
		if src == nil {
			return nil, p.errf("expected a path after 'in'")
		}
		q.Fors = append(q.Fors, &ForClause{Var: v, Src: src})
		if !p.lit(",") {
			break
		}
	}
	if p.keyword("where") {
		cond, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		q.Where = cond
	}
	if !p.keyword("return") {
		return nil, p.errf("expected 'return'")
	}
	ret, err := p.constructor()
	if err != nil {
		return nil, err
	}
	q.Return = ret
	return q, nil
}

// rootedPath parses `doc("name") steps` or `$v steps`; nil when neither is
// next.
func (p *parser) rootedPath() (*PathExpr, error) {
	p.ws()
	save := p.pos
	if p.keyword("doc") {
		if !p.lit("(") {
			p.pos = save
			return nil, nil
		}
		doc, ok, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		if !ok || doc == "" {
			return nil, p.errf("expected non-empty document name string in doc(...)")
		}
		if !p.lit(")") {
			return nil, p.errf("expected ')' after doc(%q", doc)
		}
		steps, err := p.steps(false)
		if err != nil {
			return nil, err
		}
		return &PathExpr{Doc: doc, Steps: steps}, nil
	}
	if v := p.variable(); v != "" {
		steps, err := p.steps(false)
		if err != nil {
			return nil, err
		}
		return &PathExpr{Var: v, Steps: steps}, nil
	}
	return nil, nil
}

// steps parses a possibly empty sequence of `/step`, `//step`. With rel
// true, the first step may appear without a leading slash (relative paths in
// predicates).
func (p *parser) steps(rel bool) ([]*Step, error) {
	var out []*Step
	for {
		p.ws()
		var axis Axis
		switch {
		case p.lit("//"):
			axis = Desc
		case p.lit("/"):
			axis = Child
		case rel && len(out) == 0:
			// Relative first step with no separator.
			axis = Child
		default:
			return out, nil
		}
		st, err := p.step(axis)
		if err != nil {
			return nil, err
		}
		if st == nil {
			if rel && len(out) == 0 && axis == Child {
				return nil, nil // not a path at all
			}
			return nil, p.errf("expected a step after '/'")
		}
		out = append(out, st)
	}
}

// step parses one location step: optional axis prefix, name test or `*`,
// then predicates. The separator-implied axis (Child or Desc) combines with
// an explicit prefix by letting the prefix win (XPath spells reverse axes
// `/parent::x`; `//parent::x` is rejected).
func (p *parser) step(sepAxis Axis) (*Step, error) {
	p.ws()
	axis := sepAxis
	explicit := false
	switch {
	case p.lit("@"):
		axis, explicit = Attr, true
	default:
		for _, ax := range []struct {
			kw string
			a  Axis
		}{{"parent", Parent}, {"ancestor", Ancestor}, {"child", Child},
			{"descendant", Desc}, {"attribute", Attr}} {
			save := p.pos
			if p.keyword(ax.kw) {
				if p.lit("::") {
					axis, explicit = ax.a, true
					break
				}
				p.pos = save
			}
		}
	}
	if explicit && sepAxis == Desc {
		return nil, p.errf("'//' cannot combine with an explicit axis")
	}
	st := &Step{Axis: axis}
	p.ws()
	if p.lit("*") {
		st.Wild = true
	} else {
		n := p.name()
		if n == "" {
			if explicit {
				return nil, p.errf("expected a name test after axis %s::", axis)
			}
			return nil, nil
		}
		st.Name = n
	}
	if st.Axis == Attr {
		if st.Wild {
			return nil, p.errf("attribute wildcards are not supported")
		}
	}
	for p.lit("[") {
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		if !p.lit("]") {
			return nil, p.errf("expected ']' after predicate")
		}
		st.Preds = append(st.Preds, pred)
	}
	return st, nil
}

// predicate parses the inside of `[...]`: a positional integer or a boolean
// condition.
func (p *parser) predicate() (Node, error) {
	p.ws()
	save := p.pos
	if a, err := p.number(); err != nil {
		return nil, err
	} else if a != nil {
		p.ws()
		if p.peekLit("]") {
			if a.Kind != data.KindInt || a.I < 1 {
				return nil, p.errf("positional predicate must be a positive integer")
			}
			return &PosPred{N: int(a.I)}, nil
		}
		p.pos = save // `[2 < price]` style: re-parse as condition
	}
	return p.orExpr()
}

// orExpr := andExpr ('or' andExpr)*
func (p *parser) orExpr() (Node, error) {
	first, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	kids := []Node{first}
	for p.keyword("or") {
		next, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return &LogicExpr{Kind: LOr, Kids: kids}, nil
}

// andExpr := unary ('and' unary)*
func (p *parser) andExpr() (Node, error) {
	first, err := p.unary()
	if err != nil {
		return nil, err
	}
	kids := []Node{first}
	for p.keyword("and") {
		next, err := p.unary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return &LogicExpr{Kind: LAnd, Kids: kids}, nil
}

// unary := 'not' '(' orExpr ')' | '(' orExpr ')' | cmp
func (p *parser) unary() (Node, error) {
	p.ws()
	save := p.pos
	if p.keyword("not") {
		if p.lit("(") {
			inner, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			if !p.lit(")") {
				return nil, p.errf("expected ')' after not(...)")
			}
			return &LogicExpr{Kind: LNot, Kids: []Node{inner}}, nil
		}
		p.pos = save
	}
	if p.lit("(") {
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if !p.lit(")") {
			return nil, p.errf("expected ')'")
		}
		return inner, nil
	}
	return p.cmp()
}

// cmp := operand CMPOP operand
func (p *parser) cmp() (Node, error) {
	l, err := p.operand()
	if err != nil {
		return nil, err
	}
	p.ws()
	var op CmpOp
	switch {
	case p.lit("!="):
		op = OpNe
	case p.lit("<="):
		op = OpLe
	case p.lit(">="):
		op = OpGe
	case p.lit("="):
		op = OpEq
	case p.lit("<"):
		op = OpLt
	case p.lit(">"):
		op = OpGt
	default:
		return nil, p.errf("expected a comparison operator, got %q", p.rest(12))
	}
	r, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &CmpExpr{Op: op, L: l, R: r}, nil
}

// operand := literal | $v steps | '.' steps | relative-path
func (p *parser) operand() (Node, error) {
	p.ws()
	// Boolean literals.
	save := p.pos
	for _, b := range []struct {
		kw string
		v  bool
	}{{"true", true}, {"false", false}} {
		if p.keyword(b.kw) {
			if p.lit("(") && p.lit(")") {
				return &Literal{Atom: data.Bool(b.v)}, nil
			}
			p.pos = save
		}
	}
	if s, ok, err := p.stringLit(); err != nil {
		return nil, err
	} else if ok {
		return &Literal{Atom: data.String(s)}, nil
	}
	if a, err := p.number(); err != nil {
		return nil, err
	} else if a != nil {
		return &Literal{Atom: *a}, nil
	}
	if v := p.variable(); v != "" {
		steps, err := p.steps(false)
		if err != nil {
			return nil, err
		}
		return &PathExpr{Var: v, Steps: steps}, nil
	}
	if p.lit(".") {
		steps, err := p.steps(false)
		if err != nil {
			return nil, err
		}
		return &PathExpr{Steps: steps}, nil
	}
	steps, err := p.steps(true)
	if err != nil {
		return nil, err
	}
	if steps == nil {
		return nil, p.errf("expected an operand, got %q", p.rest(12))
	}
	return &PathExpr{Steps: steps}, nil
}

// constructor parses the return clause: an element constructor, a path, or
// a literal.
func (p *parser) constructor() (Node, error) {
	p.ws()
	if p.peekLit("<") {
		return p.element()
	}
	if path, err := p.rootedPath(); err != nil {
		return nil, err
	} else if path != nil {
		return path, nil
	}
	if s, ok, err := p.stringLit(); err != nil {
		return nil, err
	} else if ok {
		return &Literal{Atom: data.String(s)}, nil
	}
	if a, err := p.number(); err != nil {
		return nil, err
	} else if a != nil {
		return &Literal{Atom: *a}, nil
	}
	return nil, p.errf("expected an element constructor, path or literal after 'return'")
}

// element parses `<name> content </name>`; content is raw text, nested
// elements and `{expr}` embeds.
func (p *parser) element() (Node, error) {
	if !p.lit("<") {
		return nil, p.errf("expected '<'")
	}
	name := p.name()
	if name == "" {
		return nil, p.errf("expected an element name after '<'")
	}
	p.ws()
	if !p.lit(">") {
		return nil, p.errf("expected '>' after <%s", name)
	}
	el := &ElemCons{Name: name}
	for {
		// Raw text until the next markup character. Whitespace-only runs
		// between markup are formatting, not content.
		start := p.pos
		for !p.eof() && p.src[p.pos] != '<' && p.src[p.pos] != '{' {
			p.pos++
		}
		if text := p.src[start:p.pos]; strings.TrimSpace(text) != "" {
			el.Kids = append(el.Kids, &TextCons{S: strings.TrimSpace(text)})
		}
		if p.eof() {
			return nil, p.errf("unterminated element <%s>", name)
		}
		if p.src[p.pos] == '{' {
			p.pos++
			kid, err := p.embed()
			if err != nil {
				return nil, err
			}
			if !p.lit("}") {
				return nil, p.errf("expected '}' after embedded expression")
			}
			el.Kids = append(el.Kids, kid)
			continue
		}
		// '<': closing tag or nested element.
		if strings.HasPrefix(p.src[p.pos:], "</") {
			p.pos += 2
			end := p.name()
			if end != name {
				return nil, p.errf("mismatched closing tag </%s> for <%s>", end, name)
			}
			p.ws()
			if !p.lit(">") {
				return nil, p.errf("expected '>' after </%s", end)
			}
			return el, nil
		}
		kid, err := p.element()
		if err != nil {
			return nil, err
		}
		el.Kids = append(el.Kids, kid)
	}
}

// embed parses the expression inside `{...}`: a path or a literal.
func (p *parser) embed() (Node, error) {
	p.ws()
	if path, err := p.rootedPath(); err != nil {
		return nil, err
	} else if path != nil {
		return path, nil
	}
	if s, ok, err := p.stringLit(); err != nil {
		return nil, err
	} else if ok {
		return &Literal{Atom: data.String(s)}, nil
	}
	if a, err := p.number(); err != nil {
		return nil, err
	} else if a != nil {
		return &Literal{Atom: *a}, nil
	}
	return nil, p.errf("expected a path or literal inside {...}")
}

// IsQuery reports whether src is in this package's query dialect rather
// than YAT_L: xq queries start with `for`, `doc(` or a variable, while a
// YAT_L query body always starts with MAKE.
func IsQuery(src string) bool {
	p := &parser{src: src}
	p.ws()
	if p.eof() {
		return false
	}
	// '.'-rooted paths exist only inside step predicates, not at top level,
	// so a leading '.' is not this dialect.
	if p.src[p.pos] == '$' {
		return true
	}
	save := p.pos
	kw := p.name()
	p.pos = save
	return kw == "for" || kw == "doc"
}
