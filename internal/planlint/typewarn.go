package planlint

// Type-driven advisory diagnostics (Config.Warnings): a second pass runs
// schema-aware type inference (internal/typecheck) over the plan and flags
// operators the inference proves dead. Like the other warning codes these
// never fire without Config.Warnings, so invariant gates that abort on any
// diagnostic stay strict; the optimizer can eliminate the flagged branches
// under its PruneDeadBranches option.

import (
	"repro/internal/algebra"
	"repro/internal/typecheck"
)

// checkTypes emits the type-empty / dead-branch warnings. It needs declared
// structures to prove anything, and its walk mirrors check()'s path
// construction so both diagnostic classes locate operators identically.
func (c *checker) checkTypes(plan algebra.Op) {
	if !c.cfg.Warnings || len(c.cfg.Structures) == 0 {
		return
	}
	st := make(map[string]typecheck.Structure, len(c.cfg.Structures))
	for doc, s := range c.cfg.Structures {
		st[doc] = typecheck.Structure{Model: s.Model, Pattern: s.Pattern}
	}
	ann, err := typecheck.Infer(plan, &typecheck.Config{Structures: st})
	if err != nil {
		return // nil operators are reported by the main pass
	}
	empty := func(op algebra.Op) bool {
		rt := ann.Types[op]
		return rt != nil && rt.Empty
	}
	var walk func(op algebra.Op, path string)
	walk = func(op algebra.Op, path string) {
		if op == nil {
			return
		}
		path = extend(path, opName(op))
		kids := op.Children()
		if len(kids) == 2 && kids[0] != nil && kids[1] != nil {
			le, re := empty(kids[0]), empty(kids[1])
			if le != re {
				side := "L"
				if re {
					side = "R"
				}
				// yat-lint:ignore intentionally partial: only set-combining operators have a prunable side
				switch op.(type) {
				case *algebra.Union:
					c.report(CodeDeadBranch, path, op,
						"union branch %s is provably empty under the declared schemas; the union is its other branch", side)
				case *algebra.Join, *algebra.DJoin, *algebra.Intersect:
					c.report(CodeDeadBranch, path, op,
						"side %s is provably empty under the declared schemas; the operator produces no rows", side)
				}
			}
		}
		// Report emptiness where it originates: an operator that is dead only
		// because a child is dead adds no information.
		if empty(op) {
			childEmpty := false
			for _, k := range kids {
				if empty(k) {
					childEmpty = true
					break
				}
			}
			if !childEmpty {
				c.report(CodeTypeEmpty, path, op,
					"operator provably produces no rows under the declared schemas (inferred type %s)", ann.Types[op])
			}
		}
		for i, k := range kids {
			p := path
			// yat-lint:ignore intentionally partial: only binary operators need side markers
			switch op.(type) {
			case *algebra.Join, *algebra.DJoin, *algebra.Union, *algebra.Intersect:
				p = extend(path, []string{"L", "R"}[i])
			}
			walk(k, p)
		}
	}
	walk(plan, "")
}
