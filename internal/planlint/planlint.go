// Package planlint is a static verifier over algebraic plans: it checks the
// well-formedness invariants every plan must satisfy before execution —
// variable binding and scoping, Skolem-function arity consistency,
// pattern-instantiation compatibility of operator inputs, and capability
// feasibility of pushed subplans — and reports violations as structured
// diagnostics carrying plan-path locations.
//
// The paper's pattern type system is used "both for data description and for
// optimization"; this package is the operational counterpart for plans: the
// optimizer verifies the plan after every rewriting step (the
// Options.CheckInvariants hook in internal/optimizer), and the mediator
// verifies once more before execution, so a miscompiled rewrite is caught at
// the rewrite that introduced it rather than as a wrong answer at runtime.
package planlint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/filter"
	"repro/internal/pattern"
)

// Diagnostic codes.
const (
	CodeNilPlan       = "nil-plan"       // a nil operator or child
	CodeUnboundVar    = "unbound-var"    // expression references a variable no input provides
	CodeUnknownColumn = "unknown-column" // operator names a column its input lacks
	CodeDuplicateCol  = "duplicate-col"  // an operator introduces a column that already exists
	CodeArity         = "arity"          // Union/Intersect inputs with different widths
	CodeSkolemArity   = "skolem-arity"   // one Skolem function used with two arities
	CodePattern       = "pattern"        // filter incompatible with the document's declared type
	CodeCapability    = "capability"     // pushed subplan exceeds the source's interface
	CodeUnknownDoc    = "unknown-doc"    // named document no source or catalog exports
	CodeMalformed     = "malformed"      // an operator form Eval and Columns disagree on
	CodeBatchShape    = "batch-shape"    // DJoin inner plan reads parameters nothing provides

	// Warning codes: emitted only with Config.Warnings, so callers that
	// abort on any diagnostic (the optimizer's CheckInvariants gate) never
	// see them.
	CodeDJoinDegenerate = "djoin-degenerate" // DJoin inner plan has no free variables
	CodeTypeEmpty       = "type-empty"       // operator provably produces no rows (type inference)
	CodeDeadBranch      = "dead-branch"      // one side of a set-combining operator is provably empty
)

// Diagnostic is one invariant violation, located by a plan path: operator
// short names joined by '/', with 'L'/'R' marking which side of a binary
// operator was entered (e.g. "Select/Join/R/Bind").
type Diagnostic struct {
	Code string // one of the Code* constants
	Path string // plan path from the root to the offending operator
	Op   string // the offending operator's Detail() rendering
	Msg  string // human-readable explanation
}

// String renders the diagnostic on one line.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s at %s [%s]: %s", d.Code, d.Path, d.Op, d.Msg)
}

// Structure names a document's structural pattern (mirrors
// optimizer.Structure, which this package cannot import).
type Structure struct {
	Model   *pattern.Model
	Pattern string
}

// Config carries the static knowledge the checks consult. Every field is
// optional: a nil map simply disables the checks needing it, so the verifier
// degrades gracefully when a mediator has no capability descriptions.
type Config struct {
	// Interfaces maps source names to capability interfaces; enables the
	// feasibility check of SourceQuery subplans.
	Interfaces map[string]*capability.Interface
	// SourceDocs maps document names to the source exporting them; a pushed
	// Bind over a document owned by a different source is a violation.
	SourceDocs map[string]string
	// Structures maps document names to declared structural patterns;
	// enables the pattern-compatibility check on document Binds.
	Structures map[string]Structure
	// Docs, when non-nil, is the complete set of resolvable document names
	// (catalog + sources); Binds over other documents are violations.
	Docs map[string]bool
	// Params lists variables the environment provides (e.g. when checking a
	// subplan that runs under a DJoin).
	Params map[string]bool
	// Warnings enables advisory diagnostics (the CodeDJoinDegenerate class):
	// plans that will run correctly but suggest a missed rewrite. Off by
	// default so invariant gates that abort on any diagnostic stay strict.
	Warnings bool
}

// Check verifies a plan and returns its violations (nil when clean).
// The plan is not modified.
func Check(plan algebra.Op, cfg *Config) []Diagnostic {
	if cfg == nil {
		cfg = &Config{}
	}
	c := &checker{cfg: cfg, skolems: map[string]skolemUse{}}
	env := map[string]bool{}
	for p := range cfg.Params {
		env[p] = true
	}
	c.check(plan, "", env, false)
	c.checkTypes(plan)
	return c.diags
}

// Error folds diagnostics into a single error (nil when the slice is empty);
// convenient for call sites that abort on the first dirty plan.
func Error(ds []Diagnostic) error {
	if len(ds) == 0 {
		return nil
	}
	lines := make([]string, len(ds))
	for i, d := range ds {
		lines[i] = d.String()
	}
	return fmt.Errorf("planlint: %d violation(s):\n  %s", len(ds), strings.Join(lines, "\n  "))
}

type skolemUse struct {
	arity int
	path  string
}

type checker struct {
	cfg     *Config
	diags   []Diagnostic
	skolems map[string]skolemUse // Skolem function name -> first seen use
}

func (c *checker) report(code, path string, op algebra.Op, format string, args ...any) {
	detail := "<nil>"
	if op != nil {
		detail = op.Detail()
	}
	c.diags = append(c.diags, Diagnostic{
		Code: code, Path: path, Op: detail, Msg: fmt.Sprintf(format, args...),
	})
}

// opName returns the short operator name used in plan paths.
func opName(op algebra.Op) string {
	switch op.(type) {
	case *algebra.Doc:
		return "Doc"
	case *algebra.Bind:
		return "Bind"
	case *algebra.Select:
		return "Select"
	case *algebra.Project:
		return "Project"
	case *algebra.MapExpr:
		return "Map"
	case *algebra.Join:
		return "Join"
	case *algebra.DJoin:
		return "DJoin"
	case *algebra.Union:
		return "Union"
	case *algebra.Intersect:
		return "Intersect"
	case *algebra.Distinct:
		return "Distinct"
	case *algebra.Group:
		return "Group"
	case *algebra.Sort:
		return "Sort"
	case *algebra.TreeOp:
		return "Tree"
	case *algebra.SourceQuery:
		return "SourceQuery"
	case *algebra.Literal:
		return "Literal"
	default:
		return fmt.Sprintf("%T", op)
	}
}

func extend(path, seg string) string {
	if path == "" {
		return seg
	}
	return path + "/" + seg
}

// check verifies the operator rooted at op. path is the path of op's
// parent; op's own segment is appended here. env is the set of variables the
// surrounding context provides as parameters (DJoin information passing).
// pushed marks subtrees inside a SourceQuery plan.
func (c *checker) check(op algebra.Op, path string, env map[string]bool, pushed bool) {
	if op == nil {
		c.report(CodeNilPlan, extend(path, "<nil>"), nil, "nil operator")
		return
	}
	path = extend(path, opName(op))
	switch x := op.(type) {
	case *algebra.Doc:
		c.checkDoc(x.Name, path, x)
	case *algebra.Literal:
		if x.T == nil {
			c.report(CodeNilPlan, path, x, "Literal with nil Tab")
		}
	case *algebra.Bind:
		c.checkBind(x, path, env, pushed)
	case *algebra.Select:
		c.check(x.From, path, env, pushed)
		if x.Pred == nil {
			c.report(CodeMalformed, path, x, "Select with nil predicate")
		} else {
			c.checkVars(x.Pred.Vars(), childCols(x.From), env, path, x)
		}
	case *algebra.Project:
		c.check(x.From, path, env, pushed)
		from := colSet(childCols(x.From))
		for _, col := range x.Cols {
			src := col
			if i := strings.IndexByte(col, '='); i >= 0 {
				src = col[i+1:]
			}
			if !from[src] {
				c.report(CodeUnknownColumn, path, x,
					"projected column %s is not produced by the input (has %v)", src, childCols(x.From))
			}
		}
	case *algebra.MapExpr:
		c.check(x.From, path, env, pushed)
		if x.E == nil {
			c.report(CodeMalformed, path, x, "Map with nil expression")
		} else {
			c.checkVars(x.E.Vars(), childCols(x.From), env, path, x)
		}
		if colSet(childCols(x.From))[x.Col] {
			c.report(CodeDuplicateCol, path, x,
				"Map introduces column %s which the input already has", x.Col)
		}
	case *algebra.Join:
		c.check(x.L, extend(path, "L"), env, pushed)
		c.check(x.R, extend(path, "R"), env, pushed)
		if x.Pred == nil {
			c.report(CodeMalformed, path, x, "Join with nil predicate")
		} else {
			both := append(append([]string{}, childCols(x.L)...), childCols(x.R)...)
			c.checkVars(x.Pred.Vars(), both, env, path, x)
		}
		c.checkDisjoint(childCols(x.L), childCols(x.R), path, x)
	case *algebra.DJoin:
		c.check(x.L, extend(path, "L"), env, pushed)
		// The right side sees the left columns as parameters.
		renv := union(env, colSet(childCols(x.L)))
		c.check(x.R, extend(path, "R"), renv, pushed)
		c.checkDisjoint(childCols(x.L), childCols(x.R), path, x)
		c.checkBatchShape(x, renv, path)
	case *algebra.Union:
		c.check(x.L, extend(path, "L"), env, pushed)
		c.check(x.R, extend(path, "R"), env, pushed)
		if len(childCols(x.L)) != len(childCols(x.R)) {
			c.report(CodeArity, path, x, "union of incompatible inputs %v / %v",
				childCols(x.L), childCols(x.R))
		}
	case *algebra.Intersect:
		c.check(x.L, extend(path, "L"), env, pushed)
		c.check(x.R, extend(path, "R"), env, pushed)
		if len(childCols(x.L)) != len(childCols(x.R)) {
			c.report(CodeArity, path, x, "intersect of incompatible inputs %v / %v",
				childCols(x.L), childCols(x.R))
		}
	case *algebra.Distinct:
		c.check(x.From, path, env, pushed)
	case *algebra.Group:
		c.check(x.From, path, env, pushed)
		from := colSet(childCols(x.From))
		for _, k := range x.Keys {
			if !from[k] {
				c.report(CodeUnknownColumn, path, x,
					"grouping key %s is not produced by the input (has %v)", k, childCols(x.From))
			}
			if k == x.Into {
				c.report(CodeDuplicateCol, path, x,
					"group target %s collides with a grouping key", x.Into)
			}
		}
	case *algebra.Sort:
		c.check(x.From, path, env, pushed)
		from := colSet(childCols(x.From))
		for _, col := range x.Cols {
			if !from[col] {
				c.report(CodeUnknownColumn, path, x,
					"sort column %s is not produced by the input (has %v)", col, childCols(x.From))
			}
		}
	case *algebra.TreeOp:
		c.check(x.From, path, env, pushed)
		c.checkVars(x.C.AllVars(), childCols(x.From), env, path, x)
		c.checkSkolems(x.C, path, x)
	case *algebra.SourceQuery:
		if pushed {
			c.report(CodeCapability, path, x, "nested SourceQuery inside a pushed plan")
		}
		c.checkSourceQuery(x, path, env)
	default:
		// Unknown operator implementations are opaque: verify children only.
		for i, child := range op.Children() {
			c.check(child, extend(path, fmt.Sprintf("%d", i)), env, pushed)
		}
	}
}

// childCols returns an operator's columns, shielding against nil inputs
// (whose Columns() would panic — the nil is reported separately).
func childCols(op algebra.Op) []string {
	if op == nil {
		return nil
	}
	return op.Columns()
}

func (c *checker) checkDoc(name, path string, op algebra.Op) {
	if c.cfg.Docs != nil && !c.cfg.Docs[name] {
		c.report(CodeUnknownDoc, path, op, "no source or catalog exports document %q", name)
	}
}

// checkBatchShape verifies the invariant set-at-a-time DJoin evaluation
// leans on: the inner plan's free variables (algebra.FreeVars — exactly the
// bindings a batched push ships sideways) must all come from the outer
// columns or the surrounding parameter environment. A violation means the
// deduplicated binding sets would under-determine the inner plan — the same
// condition the unbound-var check reports inside the inner plan, restated
// at the DJoin so the batching impact is visible at the operator that
// ships the bindings.
func (c *checker) checkBatchShape(x *algebra.DJoin, renv map[string]bool, path string) {
	if x.L == nil || x.R == nil {
		return // nil children are reported separately
	}
	free, ok := freeVarsOf(x.R)
	if !ok {
		return // plan too malformed to analyze; nil-plan reports cover it
	}
	for _, v := range free {
		if !renv[v] {
			c.report(CodeBatchShape, path, x,
				"DJoin inner plan reads parameter %s which neither the outer columns nor the environment provide; its binding sets are under-determined", v)
		}
	}
	// Advisory: a DJoin whose inner plan reads nothing from the outer row is
	// a plain Join (or cross product) in disguise. It still evaluates
	// correctly — per-row evaluation repeats the identical inner query once
	// per outer row, and batching collapses the bindings to one — but a Join
	// evaluates the inner side exactly once with no information passing
	// machinery at all.
	if c.cfg.Warnings && len(free) == 0 {
		c.report(CodeDJoinDegenerate, path, x,
			"DJoin inner plan has no free variables; it does not depend on the outer row — a plain Join evaluates it once instead")
	}
}

// freeVarsOf shields FreeVars against malformed plans whose Columns()
// panics on nil children deeper in the tree.
func freeVarsOf(op algebra.Op) (vars []string, ok bool) {
	defer func() {
		if recover() != nil {
			vars, ok = nil, false
		}
	}()
	return algebra.FreeVars(op), true
}

// checkVars verifies that every referenced variable is a column of the input
// or a parameter the environment provides.
func (c *checker) checkVars(vars, cols []string, env map[string]bool, path string, op algebra.Op) {
	set := colSet(cols)
	seen := map[string]bool{}
	for _, v := range vars {
		if set[v] || env[v] || seen[v] {
			continue
		}
		seen[v] = true
		c.report(CodeUnboundVar, path, op,
			"variable %s is not bound upstream (input columns %v)", v, cols)
	}
}

// checkDisjoint flags output columns produced by both sides of a Join/DJoin:
// the concatenated row would carry two columns with one name, and every
// later positional lookup silently reads the left one.
func (c *checker) checkDisjoint(l, r []string, path string, op algebra.Op) {
	ls := colSet(l)
	for _, col := range r {
		if ls[col] {
			c.report(CodeDuplicateCol, path, op,
				"column %s is produced by both join sides", col)
		}
	}
}

func (c *checker) checkBind(b *algebra.Bind, path string, env map[string]bool, pushed bool) {
	if b.F == nil || b.F.Root == nil {
		c.report(CodeNilPlan, path, b, "Bind with nil filter")
		return
	}
	switch {
	case b.Doc != "":
		c.checkDoc(b.Doc, path, b)
		c.checkPattern(b, path)
		if b.From != nil {
			// Eval ignores From when Doc is set, yet Columns() advertises the
			// input columns: rows and headers would disagree.
			c.report(CodeMalformed, path, b,
				"Bind names document %q but also has an input plan", b.Doc)
			c.check(b.From, path, env, pushed)
		}
	case b.From == nil:
		// Bind over a DJoin parameter.
		if b.Col == "" {
			c.report(CodeUnknownColumn, path, b, "Bind with neither document, input nor parameter column")
		} else if !env[b.Col] {
			c.report(CodeUnboundVar, path, b,
				"Bind over parameter %s which no enclosing DJoin provides", b.Col)
		}
	default:
		c.check(b.From, path, env, pushed)
		if !colSet(childCols(b.From))[b.Col] {
			c.report(CodeUnknownColumn, path, b,
				"Bind over column %s which the input does not produce (has %v)", b.Col, childCols(b.From))
		}
	}
	// Filter variables must not collide with input columns: Bind appends
	// them to the row, and a duplicate silently shadows.
	if b.From != nil {
		in := colSet(childCols(b.From))
		for _, v := range b.F.Vars() {
			if in[v] {
				c.report(CodeDuplicateCol, path, b,
					"filter rebinds %s which the input already produces", v)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Skolem arity consistency
// ---------------------------------------------------------------------------

// checkSkolems records every Skolem function use (definition sites and
// reference sites) and flags arity disagreements: Skolem identity is the
// (function, argument values) pair, so two call sites with different arities
// can never fuse and almost certainly indicate a miscompiled construction.
func (c *checker) checkSkolems(cons *algebra.Cons, path string, op algebra.Op) {
	var walk func(n *algebra.Cons)
	record := func(name string, arity int) {
		if name == "" {
			return
		}
		prev, ok := c.skolems[name]
		if !ok {
			c.skolems[name] = skolemUse{arity: arity, path: path}
			return
		}
		if prev.arity != arity {
			c.report(CodeSkolemArity, path, op,
				"Skolem function %s used with %d argument(s) here but %d at %s",
				name, arity, prev.arity, prev.path)
		}
	}
	walk = func(n *algebra.Cons) {
		if n == nil {
			return
		}
		if n.Skolem != "" {
			record(n.Skolem, len(n.SkolemArgs))
		}
		if n.RefTo != "" {
			record(n.RefTo, len(n.RefArgs))
		}
		for _, it := range n.Kids {
			walk(it.C)
		}
	}
	walk(cons)
}

// ---------------------------------------------------------------------------
// Pattern-instantiation compatibility
// ---------------------------------------------------------------------------

// checkPattern verifies a document Bind's filter against the document's
// declared structural pattern. The check is conservative: it only flags
// filters that can NEVER match a conforming document — concretely, a filter
// requiring a label that occurs nowhere in the pattern's closure. (Exact
// positional instantiation checking would reject filters the matcher aligns
// through wrapping levels; label reachability is sound for both.) Collection
// constructor labels (set/bag/list/array) are always allowed: a declared
// pattern describes one instance, while the exported document wraps the
// extent in a collection level the matcher aligns through.
func (c *checker) checkPattern(b *algebra.Bind, path string) {
	st, ok := c.cfg.Structures[b.Doc]
	if !ok || st.Model == nil {
		return
	}
	root := st.Model.Lookup(st.Pattern)
	if root == nil {
		return
	}
	labels := patternLabels(st.Model, root)
	var bad []string
	var walk func(fn *filter.FNode)
	walk = func(fn *filter.FNode) {
		if fn == nil {
			return
		}
		if fn.Label != "" && !labels[fn.Label] &&
			pattern.ColFromString(fn.Label) == pattern.ColNone {
			bad = append(bad, fn.Label)
		}
		for _, it := range fn.Items {
			walk(it.F)
		}
	}
	walk(b.F.Root)
	if len(bad) > 0 {
		sort.Strings(bad)
		c.report(CodePattern, path, b,
			"filter requires label(s) %v which the declared pattern %s of %q can never produce",
			bad, st.Pattern, b.Doc)
	}
}

// patternLabels returns every node label reachable in the pattern's closure
// (following references through the model, cycle-safe).
func patternLabels(m *pattern.Model, p *pattern.P) map[string]bool {
	labels := map[string]bool{}
	seenRefs := map[string]bool{}
	var walk func(p *pattern.P)
	walk = func(p *pattern.P) {
		if p == nil {
			return
		}
		switch p.Kind {
		case pattern.KRef:
			if seenRefs[p.Name] {
				return
			}
			seenRefs[p.Name] = true
			walk(m.Lookup(p.Name))
		case pattern.KUnion:
			for _, a := range p.Alts {
				walk(a)
			}
		case pattern.KNode:
			if p.Label != "" {
				labels[p.Label] = true
			}
			for _, it := range p.Items {
				walk(it.P)
			}
		}
	}
	walk(p)
	return labels
}

// ---------------------------------------------------------------------------
// Capability feasibility
// ---------------------------------------------------------------------------

// opOperation names the interface operation each pushable operator requires.
func opOperation(op algebra.Op) (string, bool) {
	// yat-lint:ignore intentionally partial: the default is the point — any other operator is not pushable
	switch op.(type) {
	case *algebra.Bind:
		return "bind", true
	case *algebra.Select:
		return "select", true
	case *algebra.Project:
		return "project", true
	case *algebra.Join:
		return "join", true
	default:
		return "", false
	}
}

// checkSourceQuery verifies that a pushed subplan only uses operations,
// filters and predicates the target source declared in its capability
// interface (Figure 6), in addition to the ordinary scoping rules.
func (c *checker) checkSourceQuery(sq *algebra.SourceQuery, path string, env map[string]bool) {
	if sq.Plan == nil {
		c.report(CodeNilPlan, path, sq, "SourceQuery with nil plan")
		return
	}
	var iface *capability.Interface
	if c.cfg.Interfaces != nil {
		iface = c.cfg.Interfaces[sq.Source]
		if iface == nil {
			c.report(CodeCapability, path, sq, "no capability interface imported for source %q", sq.Source)
		}
	}
	// The document set the pushed plan touches; scoped capability
	// declarations must cover all of them with a single entry.
	docs := pushedDocs(sq.Plan)
	// Variables bound by Binds inside the pushed plan evaluate at the
	// source; free variables arrive as DJoin parameters. For scoping inside
	// the pushed plan the surrounding env therefore still applies — a pushed
	// plan referencing a variable nobody provides is as broken as a local
	// one. Beyond scoping, each operator needs its declared operation.
	var walk func(op algebra.Op, p string)
	walk = func(op algebra.Op, p string) {
		if op == nil {
			return
		}
		p = extend(p, opName(op))
		if iface != nil {
			opname, pushable := opOperation(op)
			if !pushable {
				c.report(CodeCapability, p, op,
					"operator %s cannot appear in a pushed plan", opName(op))
			} else if !iface.CoversOperation(opname, docs) {
				c.report(CodeCapability, p, op,
					"source %q does not declare operation %q over %v", sq.Source, opname, docs)
			}
			// yat-lint:ignore intentionally partial: per-operator capability detail for the pushable subset only
			switch x := op.(type) {
			case *algebra.Bind:
				if x.Doc == "" {
					c.report(CodeCapability, p, op, "pushed Bind must name a document")
				} else if owner, ok := c.cfg.SourceDocs[x.Doc]; ok && owner != sq.Source {
					c.report(CodeCapability, p, op,
						"pushed Bind reads %q which source %q does not export (owner: %q)",
						x.Doc, sq.Source, owner)
				} else if x.F != nil && x.F.Root != nil {
					if err := iface.AcceptsFilter(x.Doc, x.F); err != nil {
						c.report(CodeCapability, p, op,
							"source %q rejects the filter: %v", sq.Source, err)
					}
				}
			case *algebra.Select:
				for _, conj := range algebra.SplitConj(x.Pred) {
					if err := predFeasible(iface, conj, docs); err != nil {
						c.report(CodeCapability, p, op,
							"source %q cannot evaluate %s: %v", sq.Source, conj, err)
					}
				}
			case *algebra.Join:
				for _, conj := range algebra.SplitConj(x.Pred) {
					if err := predFeasible(iface, conj, docs); err != nil {
						c.report(CodeCapability, p, op,
							"source %q cannot evaluate %s: %v", sq.Source, conj, err)
					}
				}
			}
		}
		for i, child := range op.Children() {
			seg := ""
			// yat-lint:ignore intentionally partial: Join is the only pushable binary operator needing L/R path segments
			switch op.(type) {
			case *algebra.Join:
				seg = []string{"L", "R"}[i]
			}
			if seg != "" {
				walk(child, extend(p, seg))
			} else {
				walk(child, p)
			}
		}
	}
	walk(sq.Plan, path)
	// Ordinary scoping rules also hold inside the pushed plan.
	c.check(sq.Plan, path, env, true)
}

// cmpOperations maps comparison operators to the boolean operation names a
// capability interface declares (mirrors the optimizer's pushdown table).
var cmpOperations = map[algebra.CmpOp]string{
	algebra.OpEq: "eq", algebra.OpNe: "neq",
	algebra.OpLt: "lt", algebra.OpLe: "leq",
	algebra.OpGt: "gt", algebra.OpGe: "geq",
}

// predFeasible reports why a predicate exceeds a source's declared
// operations for the documents a pushed plan touches (nil when the source
// can evaluate it).
func predFeasible(iface *capability.Interface, e algebra.Expr, docs []string) error {
	switch x := e.(type) {
	case algebra.Cmp:
		name, ok := cmpOperations[x.Op]
		if !ok || !iface.CoversOperation(name, docs) {
			return fmt.Errorf("comparison %q is not declared over %v", x.Op, docs)
		}
		if err := operandFeasible(iface, x.L, docs); err != nil {
			return err
		}
		return operandFeasible(iface, x.R, docs)
	case algebra.Call:
		op := iface.OperationFor(x.Name, docs)
		if op == nil || (op.Kind != "external" && op.Kind != "method") {
			return fmt.Errorf("function %s is not declared", x.Name)
		}
		for _, a := range x.Args {
			if err := operandFeasible(iface, a, docs); err != nil {
				return err
			}
		}
		return nil
	case algebra.And:
		if err := predFeasible(iface, x.L, docs); err != nil {
			return err
		}
		return predFeasible(iface, x.R, docs)
	case algebra.Or:
		if err := predFeasible(iface, x.L, docs); err != nil {
			return err
		}
		return predFeasible(iface, x.R, docs)
	case algebra.Not:
		return predFeasible(iface, x.E, docs)
	case algebra.Const:
		return nil
	default:
		return fmt.Errorf("predicate form %T is not pushable", e)
	}
}

func operandFeasible(iface *capability.Interface, e algebra.Expr, docs []string) error {
	switch x := e.(type) {
	case algebra.Var, algebra.Const:
		return nil
	case algebra.Arith:
		if err := operandFeasible(iface, x.L, docs); err != nil {
			return err
		}
		return operandFeasible(iface, x.R, docs)
	case algebra.Call:
		op := iface.OperationFor(x.Name, docs)
		if op == nil || (op.Kind != "external" && op.Kind != "method") {
			return fmt.Errorf("function %s is not declared", x.Name)
		}
		for _, a := range x.Args {
			if err := operandFeasible(iface, a, docs); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("operand form %T is not pushable", e)
	}
}

// pushedDocs returns the distinct documents bound inside a pushed plan.
func pushedDocs(plan algebra.Op) []string {
	seen := map[string]bool{}
	var docs []string
	algebra.Walk(plan, func(n algebra.Op) bool {
		if b, ok := n.(*algebra.Bind); ok && b.Doc != "" && !seen[b.Doc] {
			seen[b.Doc] = true
			docs = append(docs, b.Doc)
		}
		return true
	})
	return docs
}

func colSet(cols []string) map[string]bool {
	m := make(map[string]bool, len(cols))
	for _, c := range cols {
		m[c] = true
	}
	return m
}

func union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}
