package planlint

import (
	"testing"

	"repro/internal/algebra"
)

func warnConfig() *Config {
	cfg := testConfig()
	cfg.Warnings = true
	return cfg
}

// deadBind is well-formed (every label exists in the declared schema) but
// provably empty: num[Int] can never carry the string constant.
func deadBind() *algebra.Bind {
	return docBind(`doc[ *item[ name: $n, num: "zap" ] ]`)
}

func TestTypeEmptyWarning(t *testing.T) {
	one(t, Check(deadBind(), warnConfig()), CodeTypeEmpty, "Bind")
	// Without Warnings the same plan is silent: emptiness is advisory.
	if ds := Check(deadBind(), testConfig()); len(ds) != 0 {
		t.Fatalf("type-empty reported without Warnings: %v", ds)
	}
}

func TestDeadBranchWarning(t *testing.T) {
	plan := &algebra.Union{
		L: docBind(`doc[ *item[ name: $n ] ]`),
		R: deadBind(),
	}
	ds := Check(plan, warnConfig())
	if len(ds) != 2 {
		t.Fatalf("want dead-branch + type-empty, got %v", ds)
	}
	byCode := map[string]string{}
	for _, d := range ds {
		byCode[d.Code] = d.Path
	}
	if byCode[CodeDeadBranch] != "Union" {
		t.Errorf("dead-branch path = %q, want Union", byCode[CodeDeadBranch])
	}
	if byCode[CodeTypeEmpty] != "Union/R/Bind" {
		t.Errorf("type-empty path = %q, want Union/R/Bind", byCode[CodeTypeEmpty])
	}
}

// TestDiagnosticPathsCarryNesting pins the path format for both severities:
// errors and warnings locate their operator with the same plan-path
// notation, including L/R side markers under binary operators.
func TestDiagnosticPathsCarryNesting(t *testing.T) {
	// Error severity: an unbound variable deep under Select/Join/R.
	bad := &algebra.Select{
		From: &algebra.Join{
			L: docBind(`doc[ *item[ name: $n ] ]`),
			R: &algebra.Select{
				From: docBind(`doc[ *item[ num: $v ] ]`),
				Pred: algebra.MustParseExpr(`$zap > 1`),
			},
			Pred: algebra.MustParseExpr(`$n = $v`),
		},
		Pred: algebra.MustParseExpr(`$v > 10`),
	}
	one(t, Check(bad, testConfig()), CodeUnboundVar, "Select/Join/R/Select")

	// Warning severity: a degenerate DJoin nested under a Select carries the
	// same nested path.
	degenerate := &algebra.Select{
		From: &algebra.DJoin{
			L: docBind(`doc[ *item[ name: $n ] ]`),
			R: docBind(`doc[ *item[ num: $v ] ]`),
		},
		Pred: algebra.MustParseExpr(`$n = "x"`),
	}
	one(t, Check(degenerate, warnConfig()), CodeDJoinDegenerate, "Select/DJoin")
}

// TestTypeWarningsNeedStructures: without declared schemas nothing is
// provable and the type pass stays silent even with Warnings on.
func TestTypeWarningsNeedStructures(t *testing.T) {
	cfg := warnConfig()
	cfg.Structures = nil
	if ds := Check(deadBind(), cfg); len(ds) != 0 {
		t.Fatalf("type warnings without structures: %v", ds)
	}
}
