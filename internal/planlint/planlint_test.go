package planlint

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/filter"
	"repro/internal/pattern"
)

// testConfig builds a config with one source ("src") exporting document
// "docs" with a tiny capability interface (bind/select/eq over an
// all-permissive Fpattern) and a declared structure doc[ *item[ name, num ] ].
func testConfig() *Config {
	iface := capability.NewInterface("src")
	fm := capability.NewFModel("F")
	fm.Define("Doc", &capability.FT{Kind: pattern.KAny})
	iface.FModels = []*capability.FModel{fm}
	iface.Binds["docs"] = capability.BindCap{FModel: "F", FPattern: "Doc"}
	iface.Operations = []capability.Operation{
		{Name: "bind", Kind: "algebra"},
		{Name: "select", Kind: "algebra"},
		{Name: "eq", Kind: "boolean"},
	}

	m := pattern.NewModel("test")
	m.Define("Doc", pattern.NodeItems("doc",
		pattern.Starred(pattern.Node("item",
			pattern.Node("name", pattern.Str()),
			pattern.Node("num", pattern.Int())))))

	return &Config{
		Interfaces: map[string]*capability.Interface{"src": iface},
		SourceDocs: map[string]string{"docs": "src"},
		Structures: map[string]Structure{"docs": {Model: m, Pattern: "Doc"}},
		Docs:       map[string]bool{"docs": true},
	}
}

func docBind(src string) *algebra.Bind {
	return &algebra.Bind{Doc: "docs", F: filter.MustParse(src)}
}

// one asserts exactly one diagnostic with the given code and path.
func one(t *testing.T, ds []Diagnostic, code, path string) Diagnostic {
	t.Helper()
	if len(ds) != 1 {
		t.Fatalf("want exactly one diagnostic, got %d: %v", len(ds), ds)
	}
	if ds[0].Code != code {
		t.Errorf("code = %q, want %q (%s)", ds[0].Code, code, ds[0])
	}
	if ds[0].Path != path {
		t.Errorf("path = %q, want %q (%s)", ds[0].Path, path, ds[0])
	}
	return ds[0]
}

func TestCleanPlanHasNoDiagnostics(t *testing.T) {
	plan := &algebra.Select{
		From: docBind(`doc[ *item[ name: $n, num: $v ] ]`),
		Pred: algebra.MustParseExpr(`$v > 10`),
	}
	if ds := Check(plan, testConfig()); len(ds) != 0 {
		t.Fatalf("clean plan got diagnostics: %v", ds)
	}
}

func TestUnboundVariable(t *testing.T) {
	// $missing is bound by no upstream operator.
	plan := &algebra.Select{
		From: docBind(`doc[ *item[ name: $n ] ]`),
		Pred: algebra.MustParseExpr(`$missing = "x"`),
	}
	d := one(t, Check(plan, testConfig()), CodeUnboundVar, "Select")
	if !strings.Contains(d.Msg, "$missing") {
		t.Errorf("diagnostic should name the variable: %s", d)
	}
}

func TestUnboundVariableDeepPath(t *testing.T) {
	// The offending Select sits on the right branch of a Join.
	plan := &algebra.Join{
		L: docBind(`doc[ *item[ name: $n ] ]`),
		R: &algebra.Select{
			From: docBind(`doc[ *item[ num: $v ] ]`),
			Pred: algebra.MustParseExpr(`$ghost = 1`),
		},
		Pred: algebra.MustParseExpr(`$n = $v`),
	}
	one(t, Check(plan, testConfig()), CodeUnboundVar, "Join/R/Select")
}

func TestDJoinParameterIsBound(t *testing.T) {
	// The right side of a DJoin may reference left columns as parameters:
	// this plan is clean even though $n is free on the right.
	plan := &algebra.DJoin{
		L: docBind(`doc[ *item[ name: $n ] ]`),
		R: &algebra.Select{
			From: docBind(`doc[ *item[ num: $v ] ]`),
			Pred: algebra.MustParseExpr(`$v > 1 AND $n = "a"`),
		},
	}
	if ds := Check(plan, testConfig()); len(ds) != 0 {
		t.Fatalf("DJoin parameter flagged as unbound: %v", ds)
	}
	// Outside the DJoin the same Select is a violation.
	if ds := Check(plan.R, testConfig()); len(ds) != 1 || ds[0].Code != CodeUnboundVar {
		t.Fatalf("standalone right side should be unbound: %v", ds)
	}
}

func TestDJoinBatchShape(t *testing.T) {
	// $ghost is provided neither by the left columns nor the environment,
	// so the DJoin's binding sets are under-determined: the unbound-var
	// check fires inside R and the batch-shape check fires at the DJoin.
	plan := &algebra.DJoin{
		L: docBind(`doc[ *item[ name: $n ] ]`),
		R: &algebra.Select{
			From: docBind(`doc[ *item[ num: $v ] ]`),
			Pred: algebra.MustParseExpr(`$ghost = 1`),
		},
	}
	ds := Check(plan, testConfig())
	var shape, unbound bool
	for _, d := range ds {
		switch d.Code {
		case CodeBatchShape:
			shape = true
			if d.Path != "DJoin" || !strings.Contains(d.Msg, "$ghost") {
				t.Errorf("batch-shape diagnostic should sit at the DJoin and name the variable: %s", d)
			}
		case CodeUnboundVar:
			unbound = true
		}
	}
	if !shape || !unbound {
		t.Fatalf("want batch-shape and unbound-var diagnostics, got: %v", ds)
	}
	// A DJoin whose parameters are all determined stays clean (see
	// TestDJoinParameterIsBound); batch-shape must never fire on its own.
}

func TestUnknownProjectColumn(t *testing.T) {
	plan := &algebra.Project{
		From: docBind(`doc[ *item[ name: $n ] ]`),
		Cols: []string{"$n", "$nope"},
	}
	one(t, Check(plan, testConfig()), CodeUnknownColumn, "Project")
}

func TestUndeclaredSourceCapability(t *testing.T) {
	// The interface declares eq but not lt: a pushed `$v < 5` is infeasible.
	plan := &algebra.SourceQuery{Source: "src", Plan: &algebra.Select{
		From: docBind(`doc[ *item[ num: $v ] ]`),
		Pred: algebra.MustParseExpr(`$v < 5`),
	}}
	d := one(t, Check(plan, testConfig()), CodeCapability, "SourceQuery/Select")
	if !strings.Contains(d.Msg, "cannot evaluate") {
		t.Errorf("diagnostic should explain the infeasible predicate: %s", d)
	}
}

func TestUndeclaredSourceOperation(t *testing.T) {
	// project is not among the declared operations.
	plan := &algebra.SourceQuery{Source: "src", Plan: &algebra.Project{
		From: docBind(`doc[ *item[ num: $v, name: $n ] ]`),
		Cols: []string{"$v"},
	}}
	one(t, Check(plan, testConfig()), CodeCapability, "SourceQuery/Project")
}

func TestUnknownSourceInterface(t *testing.T) {
	plan := &algebra.SourceQuery{Source: "ghost", Plan: docBind(`doc[ *item[ name: $n ] ]`)}
	one(t, Check(plan, testConfig()), CodeCapability, "SourceQuery")
}

func TestForeignDocumentPushed(t *testing.T) {
	cfg := testConfig()
	cfg.SourceDocs["other"] = "elsewhere"
	cfg.Docs["other"] = true
	plan := &algebra.SourceQuery{Source: "src", Plan: &algebra.Bind{
		Doc: "other", F: filter.MustParse(`doc[ *item[ name: $n ] ]`)}}
	d := one(t, Check(plan, cfg), CodeCapability, "SourceQuery/Bind")
	if !strings.Contains(d.Msg, `"other"`) {
		t.Errorf("diagnostic should name the foreign document: %s", d)
	}
}

func TestSkolemArityMismatch(t *testing.T) {
	// person() is minted with one argument in the left Tree but referenced
	// with two in the right one: the references can never resolve.
	mk := func(c *algebra.Cons) algebra.Op {
		return &algebra.TreeOp{From: docBind(`doc[ *item[ name: $n, num: $v ] ]`), C: c}
	}
	plan := &algebra.Union{
		L: mk(&algebra.Cons{Label: "p", Skolem: "person", SkolemArgs: []string{"$n"}}),
		R: mk(&algebra.Cons{Label: "q", Kids: []algebra.ConsItem{
			{C: &algebra.Cons{Label: "owner", RefTo: "person", RefArgs: []string{"$n", "$v"}}},
		}}),
	}
	d := one(t, Check(plan, testConfig()), CodeSkolemArity, "Union/R/Tree")
	if !strings.Contains(d.Msg, "person") || !strings.Contains(d.Msg, "Union/L/Tree") {
		t.Errorf("diagnostic should name the function and the first use site: %s", d)
	}
}

func TestPatternMismatch(t *testing.T) {
	// The declared pattern for "docs" has labels doc/item/name/num only.
	plan := docBind(`doc[ *item[ bogus: $b ] ]`)
	d := one(t, Check(plan, testConfig()), CodePattern, "Bind")
	if !strings.Contains(d.Msg, "bogus") {
		t.Errorf("diagnostic should name the impossible label: %s", d)
	}
}

func TestUnionArityMismatch(t *testing.T) {
	plan := &algebra.Union{
		L: docBind(`doc[ *item[ name: $n ] ]`),
		R: docBind(`doc[ *item[ name: $n, num: $v ] ]`),
	}
	one(t, Check(plan, testConfig()), CodeArity, "Union")
}

func TestJoinDuplicateColumns(t *testing.T) {
	plan := &algebra.Join{
		L:    docBind(`doc[ *item[ name: $n ] ]`),
		R:    docBind(`doc[ *item[ name: $n ] ]`),
		Pred: algebra.TrueExpr(),
	}
	one(t, Check(plan, testConfig()), CodeDuplicateCol, "Join")
}

func TestBindOverUnknownParameter(t *testing.T) {
	plan := &algebra.Bind{Col: "$w", F: filter.MustParse(`item[ name: $n ]`)}
	one(t, Check(plan, testConfig()), CodeUnboundVar, "Bind")
	// With the parameter provided (as under a DJoin) the plan is clean.
	cfg := testConfig()
	cfg.Params = map[string]bool{"$w": true}
	if ds := Check(plan, cfg); len(ds) != 0 {
		t.Fatalf("provided parameter still flagged: %v", ds)
	}
}

func TestUnknownDocument(t *testing.T) {
	plan := &algebra.Bind{Doc: "nowhere", F: filter.MustParse(`doc[ *item[ name: $n ] ]`)}
	one(t, Check(plan, testConfig()), CodeUnknownDoc, "Bind")
}

func TestNestedSourceQuery(t *testing.T) {
	plan := &algebra.SourceQuery{Source: "src", Plan: &algebra.SourceQuery{
		Source: "src", Plan: docBind(`doc[ *item[ name: $n ] ]`)}}
	ds := Check(plan, testConfig())
	found := false
	for _, d := range ds {
		if d.Code == CodeCapability && strings.Contains(d.Msg, "nested") {
			found = true
		}
	}
	if !found {
		t.Fatalf("nested SourceQuery not flagged: %v", ds)
	}
}

func TestErrorFolding(t *testing.T) {
	if Error(nil) != nil {
		t.Fatal("Error(nil) must be nil")
	}
	err := Error([]Diagnostic{{Code: CodeUnboundVar, Path: "Select", Op: "Select($x = 1)", Msg: "m"}})
	if err == nil || !strings.Contains(err.Error(), CodeUnboundVar) {
		t.Fatalf("folded error should carry the code: %v", err)
	}
}

func TestDJoinDegenerateWarning(t *testing.T) {
	// The inner plan never reads an outer column: the DJoin is a plain Join
	// in disguise. The advisory fires only with Warnings enabled, so strict
	// invariant gates (abort on any diagnostic) never see it.
	plan := &algebra.DJoin{
		L: docBind(`doc[ *item[ name: $n ] ]`),
		R: &algebra.Select{
			From: docBind(`doc[ *item[ num: $v ] ]`),
			Pred: algebra.MustParseExpr(`$v > 1`),
		},
	}
	if ds := Check(plan, testConfig()); len(ds) != 0 {
		t.Fatalf("degenerate DJoin must stay clean without Warnings: %v", ds)
	}
	cfg := testConfig()
	cfg.Warnings = true
	d := one(t, Check(plan, cfg), CodeDJoinDegenerate, "DJoin")
	if !strings.Contains(d.Msg, "no free variables") {
		t.Errorf("diagnostic should explain the degeneracy: %s", d)
	}

	// A DJoin whose inner plan does read an outer column is genuine
	// information passing: no warning even with Warnings on.
	genuine := &algebra.DJoin{
		L: docBind(`doc[ *item[ name: $n ] ]`),
		R: &algebra.Select{
			From: docBind(`doc[ *item[ num: $v ] ]`),
			Pred: algebra.MustParseExpr(`$v > 1 AND $n = "a"`),
		},
	}
	if ds := Check(genuine, cfg); len(ds) != 0 {
		t.Fatalf("genuine DJoin flagged under Warnings: %v", ds)
	}
}
