package mediator

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/o2"
	"repro/internal/o2wrap"
	"repro/internal/optimizer"
	"repro/internal/tab"
	"repro/internal/waiswrap"
)

// setup builds the full application of Section 2: the O₂ wrapper over the
// trading database, the XML-Wais wrapper over the works, a mediator with
// both connected, capabilities imported and view1 loaded.
func setup(t testing.TB, db *o2.DB, works data.Forest) (*Mediator, *o2wrap.Wrapper, *waiswrap.Wrapper) {
	if t != nil {
		t.Helper()
	}
	ow := o2wrap.New("o2artifact", db)
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(works))
	m := New()
	if err := m.Connect(ow, ow.ExportInterface()); err != nil {
		t.Fatal(err)
	}
	if err := m.Connect(ww, ww.ExportInterface()); err != nil {
		t.Fatal(err)
	}
	ws := ww.ExportStructure()
	m.ImportStructure("works", ws, "Works")
	schema := ow.ExportSchema()
	m.ImportStructure("artifacts", schema, "Artifact")
	m.ImportStructure("persons", schema, "Person")
	m.RegisterFunc("contains", waiswrap.Contains)
	for name, fn := range ow.Funcs() {
		m.RegisterFunc(name, fn)
	}
	if err := m.LoadProgram(datagen.View1Src); err != nil {
		t.Fatal(err)
	}
	return m, ow, ww
}

func paperSetup(t testing.TB) (*Mediator, *o2wrap.Wrapper, *waiswrap.Wrapper) {
	return setup(t, datagen.PaperDB(), datagen.PaperWorks())
}

func titles(res *tab.Tab) []string {
	var out []string
	for _, r := range res.Rows {
		cell := r[0]
		if cell.Kind == tab.CTree && cell.Tree.Child("title") != nil {
			out = append(out, cell.Tree.Child("title").Atom.S)
			continue
		}
		if a, ok := cell.AsAtom(); ok {
			out = append(out, a.Text())
			continue
		}
		out = append(out, cell.String())
	}
	return out
}

func TestConnectAndImports(t *testing.T) {
	m, _, _ := paperSetup(t)
	if len(m.Sources()) != 2 {
		t.Fatalf("sources = %v", m.Sources())
	}
	if m.Interface("o2artifact") == nil || m.Interface("xmlartwork") == nil {
		t.Error("interfaces not imported")
	}
	if len(m.Views()) != 1 || m.View("artworks") == nil {
		t.Errorf("views = %v", m.Views())
	}
	if !strings.Contains(m.Describe(), "artworks") {
		t.Error("Describe must list views")
	}
	// duplicate connections rejected
	ow := o2wrap.New("o2artifact", datagen.PaperDB())
	if err := m.Connect(ow, nil); err == nil {
		t.Error("duplicate source must be rejected")
	}
	ow2 := o2wrap.New("other", datagen.PaperDB())
	if err := m.Connect(ow2, nil); err == nil {
		t.Error("duplicate document export must be rejected")
	}
}

func TestMaterializeView(t *testing.T) {
	m, _, _ := paperSetup(t)
	res, err := m.Materialize("artworks")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("documents = %d", res.Len())
	}
	doc := res.Rows[0][0].Tree
	if len(doc.Children("work")) != 2 {
		t.Errorf("integrated works = %d, want 2:\n%s", len(doc.Children("work")), doc.Indent())
	}
	if _, err := m.Materialize("nosuch"); err == nil {
		t.Error("unknown view must fail")
	}
}

func TestQ1NaiveAndOptimizedAgree(t *testing.T) {
	m, _, _ := paperSetup(t)
	naive, err := m.QueryNaive(datagen.Q1Src)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := m.Query(datagen.Q1Src)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Tab.Len() != 1 || titles(naive.Tab)[0] != "Nympheas" {
		t.Fatalf("naive Q1 = %s", naive.Tab)
	}
	if !naive.Tab.EqualUnordered(opt.Tab) {
		t.Errorf("naive:\n%s\noptimized:\n%s\nplan:\n%s", naive.Tab, opt.Tab, opt.Plan)
	}
}

func TestFigure8Q1PlanShape(t *testing.T) {
	m, _, _ := paperSetup(t)
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")
	res, err := m.Query(datagen.Q1Src)
	if err != nil {
		t.Fatal(err)
	}
	// The composed Bind–Tree pair is eliminated and the O₂ branch pruned:
	// the optimized plan touches only the Wais source.
	if strings.Contains(res.Plan, "artifacts") {
		t.Errorf("O2 branch not pruned:\n%s", res.Plan)
	}
	if strings.Contains(res.Plan, "Tree(") && strings.Count(res.Plan, "Tree(") > 1 {
		t.Errorf("view Tree not eliminated:\n%s", res.Plan)
	}
	if !strings.Contains(res.Plan, "SourceQuery(xmlartwork)") {
		t.Errorf("works bind not pushed to Wais:\n%s", res.Plan)
	}
	if res.Tab.Len() != 1 || titles(res.Tab)[0] != "Nympheas" {
		t.Errorf("Q1 = %s", res.Tab)
	}
	// No whole-document fetches: everything arrived through pushed queries.
	if res.Stats.SourceFetches != 0 {
		t.Errorf("fetches = %d, want 0 (pushdown)", res.Stats.SourceFetches)
	}
	if res.Stats.SourcePushes == 0 {
		t.Error("expected pushed source queries")
	}
}

func TestFigure9Q2PlanShape(t *testing.T) {
	m, ow, ww := paperSetup(t)
	res, err := m.Query(datagen.Q2Src)
	if err != nil {
		t.Fatal(err)
	}
	// Q2 = impressionist artworks sold under 200,000: Waterloo Bridge
	// (price 150,000) qualifies; Nympheas (1,500,000) does not.
	if res.Tab.Len() != 1 {
		t.Fatalf("Q2 rows = %d\n%s\nplan:\n%s", res.Tab.Len(), res.Tab, res.Plan)
	}
	row := res.Tab.Rows[0][0].Tree
	if row.Child("title").Atom.S != "Waterloo Bridge" {
		t.Errorf("Q2 = %s", row)
	}
	// Figure 9 plan shape: a DJoin whose left side queries Wais with a
	// pushed contains, and whose right side is a parameterized O₂ query.
	for _, frag := range []string{"DJoin", "SourceQuery(xmlartwork)", "SourceQuery(o2artifact)", "contains("} {
		if !strings.Contains(res.Plan, frag) {
			t.Errorf("plan missing %q:\n%s", frag, res.Plan)
		}
	}
	// The Wais source ran a full-text search; the O₂ source received the
	// title/artist parameters inline.
	if !strings.Contains(ww.LastSearch, "Impressionist") {
		t.Errorf("Wais search = %q", ww.LastSearch)
	}
	if !strings.Contains(ow.LastOQL, `"Waterloo Bridge"`) && !strings.Contains(ow.LastOQL, `"Nympheas"`) {
		t.Errorf("O2 did not receive passed bindings:\n%s", ow.LastOQL)
	}
	if res.Stats.SourceFetches != 0 {
		t.Errorf("fetches = %d, want 0", res.Stats.SourceFetches)
	}
}

func TestQ2NaiveAgreesWithOptimized(t *testing.T) {
	m, _, _ := paperSetup(t)
	naive, err := m.QueryNaive(datagen.Q2Src)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := m.Query(datagen.Q2Src)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Tab.EqualUnordered(opt.Tab) {
		t.Errorf("naive:\n%s\noptimized:\n%s", naive.Tab, opt.Tab)
	}
}

func TestScaledWorkloadSemanticsPreserved(t *testing.T) {
	// The optimizer must preserve semantics on generated workloads of
	// several sizes, for Q1 (with assumptions) and Q2.
	for _, n := range []int{10, 50, 200} {
		w := datagen.Generate(datagen.DefaultParams(n))
		m, _, _ := setup(t, w.DB, w.Works)
		m.Assume("artifacts", "works", "$y > 1800")
		m.Assume("persons", "works", "$y > 1800")

		naive1, err := m.QueryNaive(datagen.Q1Src)
		if err != nil {
			t.Fatalf("n=%d naive Q1: %v", n, err)
		}
		opt1, err := m.Query(datagen.Q1Src)
		if err != nil {
			t.Fatalf("n=%d opt Q1: %v", n, err)
		}
		if !naive1.Tab.EqualUnordered(opt1.Tab) {
			t.Errorf("n=%d: Q1 mismatch: naive %d rows, optimized %d rows\nplan:\n%s",
				n, naive1.Tab.Len(), opt1.Tab.Len(), opt1.Plan)
		}
		if naive1.Tab.Len() != len(w.GivernyTitles) {
			t.Errorf("n=%d: Q1 rows = %d, ground truth %d", n, naive1.Tab.Len(), len(w.GivernyTitles))
		}

		naive2, err := m.QueryNaive(datagen.Q2Src)
		if err != nil {
			t.Fatalf("n=%d naive Q2: %v", n, err)
		}
		opt2, err := m.Query(datagen.Q2Src)
		if err != nil {
			t.Fatalf("n=%d opt Q2: %v", n, err)
		}
		if !naive2.Tab.EqualUnordered(opt2.Tab) {
			t.Errorf("n=%d: Q2 mismatch (naive %d vs opt %d)\nplan:\n%s",
				n, naive2.Tab.Len(), opt2.Tab.Len(), opt2.Plan)
		}
		if naive2.Tab.Len() != len(w.Q2Titles) {
			t.Errorf("n=%d: Q2 rows = %d, ground truth %d", n, naive2.Tab.Len(), len(w.Q2Titles))
		}
	}
}

func TestOptimizedTransfersLess(t *testing.T) {
	w := datagen.Generate(datagen.DefaultParams(300))
	m, _, _ := setup(t, w.DB, w.Works)
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")
	naive, err := m.QueryNaive(datagen.Q2Src)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := m.Query(datagen.Q2Src)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.BytesShipped >= naive.Stats.BytesShipped {
		t.Errorf("optimized shipped %d bytes, naive %d — pushdown must reduce transfer",
			opt.Stats.BytesShipped, naive.Stats.BytesShipped)
	}
	if opt.Stats.SourceFetches != 0 || naive.Stats.SourceFetches == 0 {
		t.Errorf("fetches: opt=%d naive=%d", opt.Stats.SourceFetches, naive.Stats.SourceFetches)
	}
}

func TestQueryDirectSourceDocument(t *testing.T) {
	// Queries can also target source documents directly (no view).
	m, _, _ := paperSetup(t)
	res, err := m.Query(`MAKE $t MATCH works WITH works[ *work[ title: $t ] ]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tab.Len() != 2 {
		t.Errorf("rows = %d", res.Tab.Len())
	}
}

func TestQueryErrors(t *testing.T) {
	m, _, _ := paperSetup(t)
	if _, err := m.Query(`MAKE $t MATCH ghosts WITH g[ *x[ a: $t ] ]`); err == nil {
		t.Error("unknown document must fail at composition")
	}
	if _, err := m.Query(`not a query`); err == nil {
		t.Error("syntax error must surface")
	}
	// cyclic views
	if err := m.LoadProgram(`loop() := MAKE doc[ t: $x ] MATCH loop WITH doc[ *t: $x ] ;`); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(`MAKE $x MATCH loop WITH doc[ *t: $x ]`); err == nil {
		t.Error("cyclic view must be detected")
	}
}

func TestMethodPredicateMediatorSide(t *testing.T) {
	// current_price can also be evaluated mediator-side through the
	// registered callback when the plan is not pushed.
	m, ow, _ := paperSetup(t)
	_ = ow
	res, err := m.Query(`MAKE $t
MATCH artifacts WITH set[ *class@$art[ artifact.tuple[ title: $t ] ] ]
WHERE current_price($art) > 1000000`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tab.Len() != 1 || titles(res.Tab)[0] != "Nympheas" {
		t.Errorf("method query = %s\nplan:\n%s", res.Tab, res.Plan)
	}
}

func TestLabelVariableQueryOverO2(t *testing.T) {
	// Figure 7 (lower right): semistructured query over structured data —
	// retrieve the attribute names of person objects. Type information
	// expands the label variable into a union of concrete binds.
	m, _, _ := paperSetup(t)
	res, err := m.Query(`MAKE row[ attr: $l, v: $v ]
MATCH persons WITH set[ *class[ person.tuple[ *~$l: $v ] ] ]`)
	if err != nil {
		t.Fatal(err)
	}
	attrs := map[string]bool{}
	for _, r := range res.Tab.Rows {
		attrs[r[0].Tree.Child("attr").Atom.S] = true
	}
	if !attrs["name"] || !attrs["auction"] {
		t.Errorf("attribute names = %v\nplan:\n%s", attrs, res.Plan)
	}
}

func TestWaisEngineReceivesPushedSearch(t *testing.T) {
	m, _, ww := paperSetup(t)
	before := ww.E.SearchesRun
	if _, err := m.Query(datagen.Q2Src); err != nil {
		t.Fatal(err)
	}
	if ww.E.SearchesRun <= before {
		t.Error("optimized Q2 must run a full-text search at the source")
	}
}

func TestMaterializeProgramSkolemFusion(t *testing.T) {
	// Two rules connected through Skolem functions: artworks() references
	// &person($o); persons() constructs person($o) := trees. Materializing
	// the program in one context fuses the identifiers (object fusion).
	m, _, _ := paperSetup(t)
	program := `
fused_artworks() :=
MAKE doc[ *artwork($t) := work[ title: $t, owners[ *owner: &person($o) ] ] ]
MATCH artifacts WITH set[ *class[ artifact.tuple[ title: $t,
      owners.list[ *class[ person.tuple[ name: $o ] ] ] ] ] ] ;

fused_persons() :=
MAKE people[ *person($o) := person[ name: $o ] ]
MATCH persons WITH set[ *class[ person.tuple[ name: $o ] ] ] ;
`
	if err := m.LoadProgram(program); err != nil {
		t.Fatal(err)
	}
	forests, store, err := m.MaterializeProgram()
	if err != nil {
		t.Fatal(err)
	}
	artworks := forests["fused_artworks"]
	if len(artworks) != 1 {
		t.Fatalf("artworks forest = %d trees", len(artworks))
	}
	people := forests["fused_persons"]
	if len(people) != 1 || len(people[0].Children("person")) != 2 {
		t.Fatalf("people = %v", people)
	}
	// Every owner reference resolves to a person tree built by the OTHER rule.
	refs := 0
	artworks[0].Walk(func(n *data.Node) bool {
		if n.IsRef() {
			refs++
			target := store.Lookup(n.Ref)
			if target == nil || target.Label != "person" {
				t.Errorf("reference %s does not resolve to a person: %v", n.Ref, target)
			}
		}
		return true
	})
	if refs == 0 {
		t.Fatal("no references constructed")
	}
}

func TestPruningNeverDropsQueryPredicates(t *testing.T) {
	// Regression: a user predicate on an O₂-side column ($p) must survive
	// even when the containment assumption could prune that branch for
	// queries that do not observe it. Found by the randomized equivalence
	// test; the assumption absorbs only its declared modulo conjuncts.
	w := datagen.Generate(datagen.DefaultParams(120))
	m, _, _ := setup(t, w.DB, w.Works)
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")
	q := `MAKE f: $t
MATCH artworks WITH doc[ *work[ price: $p, title: $t, style: $s ] ]
WHERE $p < 200000`
	naive, err := m.QueryNaive(q)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := m.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Tab.EqualUnordered(opt.Tab) {
		t.Fatalf("price predicate lost: naive %d rows, optimized %d rows\n%s",
			naive.Tab.Len(), opt.Tab.Len(), opt.Plan)
	}
	// The same query without the price predicate still prunes the O₂ branch.
	free := `MAKE f: $t MATCH artworks WITH doc[ *work[ title: $t, style: $s ] ]`
	res, err := m.Query(free)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Plan, "artifacts") {
		t.Errorf("assumption-based pruning regressed:\n%s", res.Plan)
	}
}

func TestSameSourceJoinPushedAsOneOQL(t *testing.T) {
	// A query joining two extents of the same O₂ database is pushed as a
	// single OQL query with two from-ranges.
	db := datagen.PaperDB()
	// make the join non-empty: a collector named like an artist
	if _, err := db.NewObject("Person",
		o2Tuple("Claude Monet", 999)); err != nil {
		t.Fatal(err)
	}
	m, ow, _ := setup(t, db, datagen.PaperWorks())
	res, err := m.Query(`MAKE pair[ t: $t, n: $n ]
MATCH artifacts WITH set[ *class[ artifact.tuple[ title: $t, creator: $c ] ] ],
      persons WITH set[ *class[ person.tuple[ name: $n ] ] ]
WHERE $c = $n`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tab.Len() != 2 {
		t.Fatalf("rows = %d\n%s", res.Tab.Len(), res.Plan)
	}
	if strings.Count(res.Plan, "SourceQuery") != 1 {
		t.Errorf("expected a single merged source query:\n%s", res.Plan)
	}
	if !strings.Contains(ow.LastOQL, "R2 in persons") {
		t.Errorf("OQL lacks the second range:\n%s", ow.LastOQL)
	}
	if res.Stats.SourcePushes != 1 || res.Stats.SourceFetches != 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestQueryCustomAblation(t *testing.T) {
	m, _, _ := paperSetup(t)
	full, err := m.QueryCustom(datagen.Q2Src, nil)
	if err != nil {
		t.Fatal(err)
	}
	noPush, err := m.QueryCustom(datagen.Q2Src, func(o *optimizer.Options) {
		o.DisablePushdown = true
		o.InfoPassing = false
	})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Tab.EqualUnordered(noPush.Tab) {
		t.Error("ablation variants must agree on rows")
	}
	if strings.Contains(noPush.Plan, "SourceQuery") {
		t.Errorf("DisablePushdown left source queries:\n%s", noPush.Plan)
	}
	if !strings.Contains(full.Plan, "SourceQuery") {
		t.Errorf("full optimizer must push:\n%s", full.Plan)
	}
	if noPush.Stats.SourceFetches == 0 || full.Stats.SourceFetches != 0 {
		t.Errorf("fetch stats: noPush=%d full=%d",
			noPush.Stats.SourceFetches, full.Stats.SourceFetches)
	}
}

func TestViewOverViewComposition(t *testing.T) {
	// A second view defined over the first one: composition must substitute
	// recursively, and the optimizer eliminates both Bind–Tree frontiers.
	m, _, _ := paperSetup(t)
	if err := m.LoadProgram(`
summary() :=
MAKE catalog[ *entry($t) := entry[ title: $t, by: $a ] ]
MATCH artworks WITH doc[ *work[ title: $t, artist: $a ] ] ;`); err != nil {
		t.Fatal(err)
	}
	naive, err := m.QueryNaive(`MAKE $t MATCH summary WITH catalog[ *entry[ title: $t ] ]`)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := m.Query(`MAKE $t MATCH summary WITH catalog[ *entry[ title: $t ] ]`)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Tab.Len() != 2 || !naive.Tab.EqualUnordered(opt.Tab) {
		t.Fatalf("view-over-view: naive %d, optimized %d\n%s",
			naive.Tab.Len(), opt.Tab.Len(), opt.Plan)
	}
	if strings.Count(opt.Plan, "Tree(") > 1 {
		t.Errorf("nested view Trees not eliminated:\n%s", opt.Plan)
	}
}

func TestDescendantQueryOverView(t *testing.T) {
	// A GPE-style descendant query (**) over the integrated view: it cannot
	// be pushed (capabilities reject **), but must evaluate correctly.
	m, _, _ := paperSetup(t)
	q := `MAKE $x MATCH artworks WITH doc[ *work@$w[ **technique: $x ] ]`
	naive, err := m.QueryNaive(q)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := m.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Tab.Len() != 1 || !naive.Tab.EqualUnordered(opt.Tab) {
		t.Fatalf("descendant query: naive %d, optimized %d", naive.Tab.Len(), opt.Tab.Len())
	}
	if a, _ := naive.Tab.Rows[0][0].AsAtom(); a.S != "Oil on canvas" {
		t.Errorf("technique = %v", a)
	}
}
