package mediator

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/filter"
	"repro/internal/o2wrap"
	"repro/internal/waiswrap"
	"repro/internal/wire"
)

// setupExchanges is the number of wire exchanges each source serves before
// query traffic starts: hello, interface-request, structures-request.
// Fault injectors skip them (Config.After) so deployment always succeeds
// and faults land on query traffic.
const setupExchanges = 3

// trackingListener records accepted connections so a test can kill a
// wrapper outright — listener and established connections both — to
// simulate a source that is fully down.
type trackingListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *trackingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *trackingListener) kill() {
	l.Listener.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
}

// deployFaulty builds the Figure 2 deployment over TCP with per-source
// fault injectors (nil = clean) and returns the mediator plus a kill switch
// for the xmlartwork wrapper.
func deployFaulty(t *testing.T, n int, o2Inj, waisInj *faults.Injector) (*Mediator, func()) {
	t.Helper()
	w := datagen.Generate(datagen.DefaultParams(n))
	ow := o2wrap.New("o2artifact", w.DB)
	schema := ow.ExportSchema()
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(w.Works))
	deploys := []struct {
		exp wire.Exported
		inj *faults.Injector
	}{
		{wire.Exported{Source: ow, Interface: ow.ExportInterface(),
			Structures: map[string]wire.StructureRef{
				"artifacts": {Model: schema, Pattern: "Artifact"},
				"persons":   {Model: schema, Pattern: "Person"},
			}}, o2Inj},
		{wire.Exported{Source: ww, Interface: ww.ExportInterface(),
			Structures: map[string]wire.StructureRef{
				"works": {Model: ww.ExportStructure(), Pattern: "Works"},
			}}, waisInj},
	}
	m := New()
	var killWais func()
	for i, d := range deploys {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tl := &trackingListener{Listener: ln}
		if i == 1 {
			killWais = tl.kill
		}
		var serveLn net.Listener = tl
		if d.inj != nil {
			serveLn = d.inj.Listener(tl)
		}
		srv := wire.Serve(serveLn, d.exp)
		c, err := wire.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		t.Cleanup(func() { c.Close() })
		iface, err := c.ImportInterface()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Connect(c, iface); err != nil {
			t.Fatal(err)
		}
		sts, err := c.ImportStructures()
		if err != nil {
			t.Fatal(err)
		}
		for doc, ref := range sts {
			m.ImportStructure(doc, ref.Model, ref.Pattern)
		}
	}
	m.RegisterFunc("contains", waiswrap.Contains)
	if err := m.LoadProgram(datagen.View1Src); err != nil {
		t.Fatal(err)
	}
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")
	return m, killWais
}

const faultWorkloadN = 60

// cleanQ2 runs Q2 once on a fault-free deployment and returns the result.
func cleanQ2(t *testing.T) *Result {
	t.Helper()
	m, _ := deployFaulty(t, faultWorkloadN, nil, nil)
	res, err := m.ExecuteContext(context.Background(), datagen.Q2Src, ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tab.Len() == 0 {
		t.Fatal("clean Q2 returned no rows; workload too small for a meaningful matrix")
	}
	return res
}

func TestFaultMatrixQ2(t *testing.T) {
	// One injected fault of each transport kind, on each source, under
	// serial and parallel execution: the rows must come out identical to
	// the clean run, with the recovery visible in the retry counters.
	clean := cleanQ2(t)
	kinds := []faults.Kind{faults.Drop, faults.Truncate, faults.Garble}
	for _, par := range []int{1, 4} {
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s-par%d", kind, par), func(t *testing.T) {
				o2Inj := faults.New(faults.Config{Seed: 7, Rate: 1,
					Kinds: []faults.Kind{kind}, After: setupExchanges, Max: 1})
				waisInj := faults.New(faults.Config{Seed: 11, Rate: 1,
					Kinds: []faults.Kind{kind}, After: setupExchanges, Max: 1})
				m, _ := deployFaulty(t, faultWorkloadN, o2Inj, waisInj)
				res, err := m.ExecuteContext(context.Background(), datagen.Q2Src,
					ExecOptions{Parallelism: par, FanOut: par})
				if err != nil {
					t.Fatalf("Q2 under %s faults: %v", kind, err)
				}
				if !res.Tab.EqualUnordered(clean.Tab) {
					t.Errorf("rows differ from clean run under %s faults:\n%s\nvs clean:\n%s",
						kind, res.Tab, clean.Tab)
				}
				if got := o2Inj.Injected() + waisInj.Injected(); got == 0 {
					t.Fatal("no fault was injected; the matrix tested nothing")
				}
				if res.Stats.Retries+res.Stats.Redials == 0 {
					t.Errorf("stats report no retries/redials after an injected %s fault", kind)
				}
			})
		}
	}
}

func TestFaultMatrixDelayBeyondDeadline(t *testing.T) {
	// A wrapper stalled past the query deadline is a budget failure, not an
	// outage: both serial and parallel execution must surface the typed
	// context error.
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			o2Inj := faults.New(faults.Config{Seed: 3, Rate: 1,
				Kinds: []faults.Kind{faults.Delay}, Delay: 2 * time.Second, After: setupExchanges})
			waisInj := faults.New(faults.Config{Seed: 3, Rate: 1,
				Kinds: []faults.Kind{faults.Delay}, Delay: 2 * time.Second, After: setupExchanges})
			m, _ := deployFaulty(t, faultWorkloadN, o2Inj, waisInj)
			_, err := m.ExecuteContext(context.Background(), datagen.Q2Src,
				ExecOptions{Parallelism: par, FanOut: par, Timeout: 150 * time.Millisecond})
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("Q2 under stall = %v, want context.DeadlineExceeded", err)
			}
		})
	}
}

func TestFaultMatrixKillMidQuery(t *testing.T) {
	// The connection serving the first query exchange on the works wrapper
	// (the batched DJoin push) is killed mid-flight; the retry layer must
	// recover and reproduce the clean rows exactly.
	clean := cleanQ2(t)
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			waisInj := faults.New(faults.Config{Seed: 5, KillNth: setupExchanges + 1})
			m, _ := deployFaulty(t, faultWorkloadN, nil, waisInj)
			res, err := m.ExecuteContext(context.Background(), datagen.Q2Src,
				ExecOptions{Parallelism: par, FanOut: par})
			if err != nil {
				t.Fatalf("Q2 with killed batch conn: %v", err)
			}
			if !res.Tab.EqualUnordered(clean.Tab) {
				t.Errorf("rows differ from clean run after mid-query kill:\n%s", res.Tab)
			}
			if waisInj.Counts()[faults.Kill] != 1 {
				t.Fatalf("kill count = %d, want 1", waisInj.Counts()[faults.Kill])
			}
			if res.Stats.Retries+res.Stats.Redials == 0 {
				t.Error("stats report no recovery work after the kill")
			}
		})
	}
}

func TestOnePercentFaultRateQ2ByteIdentical(t *testing.T) {
	// The acceptance scenario: a 1% fault rate on both wrappers across
	// repeated Q2 runs must never change a row — serial execution is
	// deterministic, so the result must be byte-identical — while the
	// retry counters expose the recovery work.
	// Per-row DJoin pushes give the realistic chatty traffic shape (one
	// exchange per outer row); batched pushdown would leave a 1% rate
	// almost nothing to hit.
	opts := ExecOptions{Parallelism: 1, PerRowDJoin: true}
	cm, _ := deployFaulty(t, faultWorkloadN, nil, nil)
	clean, err := cm.ExecuteContext(context.Background(), datagen.Q2Src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Tab.Len() == 0 {
		t.Fatal("clean Q2 returned no rows")
	}
	o2Inj := faults.New(faults.Config{Seed: 17, Rate: 0.01,
		Kinds: []faults.Kind{faults.Drop, faults.Truncate, faults.Garble}, After: setupExchanges})
	waisInj := faults.New(faults.Config{Seed: 23, Rate: 0.01,
		Kinds: []faults.Kind{faults.Drop, faults.Truncate, faults.Garble}, After: setupExchanges})
	m, _ := deployFaulty(t, faultWorkloadN, o2Inj, waisInj)
	totalRetries := 0
	for i := 0; i < 40; i++ {
		res, err := m.ExecuteContext(context.Background(), datagen.Q2Src, opts)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Tab.String() != clean.Tab.String() {
			t.Fatalf("run %d rows not byte-identical to clean run:\n%s\nvs:\n%s",
				i, res.Tab, clean.Tab)
		}
		totalRetries += res.Stats.Retries + res.Stats.Redials
	}
	if o2Inj.Injected()+waisInj.Injected() == 0 {
		t.Fatal("1% rate injected nothing across 40 runs; raise the run count")
	}
	if totalRetries == 0 {
		t.Error("faults were injected but no retry/redial was ever reported")
	}
}

// crossSourceUnion is a hand-built plan with one branch per source: titles
// from the O₂ artifacts extent unioned with titles from the Wais works
// document. Unlike the join-shaped Q1/Q2, each branch survives alone, so it
// demonstrates partial results from live sources.
func crossSourceUnion() algebra.Op {
	return &algebra.Union{
		L: &algebra.Bind{Doc: "artifacts",
			F: filter.MustParse(`set[ *class[ artifact.tuple[ title: $t ] ] ]`)},
		R: &algebra.Bind{Doc: "works",
			F: filter.MustParse(`works[ *work[ title: $t ] ]`)},
	}
}

func TestAllowPartialReturnsLiveSourceRows(t *testing.T) {
	m, killWais := deployFaulty(t, faultWorkloadN, nil, nil)
	plan := crossSourceUnion()
	full, err := m.ExecutePlan(context.Background(), plan, ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.SourceErrors) != 0 {
		t.Fatalf("clean run reported source errors: %v", full.SourceErrors)
	}
	live, err := m.ExecutePlan(context.Background(), crossSourceUnion(), ExecOptions{Parallelism: 1})
	if err != nil || live.Tab.Len() != full.Tab.Len() {
		t.Fatalf("second clean run: %v, %d rows", err, live.Tab.Len())
	}

	// Take the works wrapper fully down: listener and connections.
	killWais()

	// Without AllowPartial the query fails with the typed unavailability
	// error naming the dead source.
	_, err = m.ExecutePlan(context.Background(), crossSourceUnion(), ExecOptions{Parallelism: 1})
	var ue *algebra.UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("strict execution with a dead source = %v, want UnavailableError", err)
	}
	if ue.Source != "xmlartwork" {
		t.Errorf("unavailable source = %q, want xmlartwork", ue.Source)
	}

	// With AllowPartial the rows derivable from the live source come back,
	// with the outage reported in SourceErrors instead of failing.
	partial, err := m.ExecutePlan(context.Background(), crossSourceUnion(),
		ExecOptions{Parallelism: 1, AllowPartial: true})
	if err != nil {
		t.Fatalf("AllowPartial execution failed outright: %v", err)
	}
	if partial.Tab.Len() == 0 || partial.Tab.Len() >= full.Tab.Len() {
		t.Fatalf("partial rows = %d, want strictly between 0 and %d", partial.Tab.Len(), full.Tab.Len())
	}
	if len(partial.SourceErrors) != 1 || partial.SourceErrors[0].Source != "xmlartwork" {
		t.Fatalf("SourceErrors = %v, want exactly xmlartwork", partial.SourceErrors)
	}
	// Parallel execution degrades the same way.
	partialPar, err := m.ExecutePlan(context.Background(), crossSourceUnion(),
		ExecOptions{Parallelism: 4, AllowPartial: true})
	if err != nil {
		t.Fatalf("parallel AllowPartial: %v", err)
	}
	if !partialPar.Tab.EqualUnordered(partial.Tab) {
		t.Errorf("parallel partial rows differ from serial:\n%s\nvs:\n%s", partialPar.Tab, partial.Tab)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	b := &breaker{opts: BreakerOptions{FailureThreshold: 2, Cooldown: 80 * time.Millisecond}.withDefaults()}
	if err := b.allow(); err != nil {
		t.Fatalf("fresh breaker refuses calls: %v", err)
	}
	transportErr := io.EOF
	b.done(transportErr, true)
	if err := b.allow(); err != nil {
		t.Fatalf("one failure below threshold must not open the breaker: %v", err)
	}
	b.done(transportErr, true)
	if err := b.allow(); err == nil {
		t.Fatal("breaker must be open after reaching the failure threshold")
	}
	if st := b.snapshot(); st.State != "open" || st.Failures != 2 {
		t.Fatalf("snapshot = %+v, want open with 2 failures", st)
	}
	// After the cooldown exactly one probe call passes; concurrent callers
	// keep failing fast until the probe resolves.
	time.Sleep(100 * time.Millisecond)
	if err := b.allow(); err != nil {
		t.Fatalf("probe after cooldown refused: %v", err)
	}
	if err := b.allow(); err == nil {
		t.Fatal("second call during the probe must fail fast")
	}
	// The probe succeeds: breaker closes, calls flow again.
	b.done(nil, false)
	if err := b.allow(); err != nil {
		t.Fatalf("breaker must close after a successful probe: %v", err)
	}
	// A failed probe re-opens for another cooldown.
	b.done(transportErr, true)
	b.done(transportErr, true)
	time.Sleep(100 * time.Millisecond)
	if err := b.allow(); err != nil {
		t.Fatal("probe refused")
	}
	b.done(transportErr, true)
	if err := b.allow(); err == nil {
		t.Fatal("failed probe must re-open the breaker")
	}
}

func TestBreakerIgnoresSemanticAndContextErrors(t *testing.T) {
	// A server-reported <error> proves the source alive; a caller's expired
	// budget says nothing about the source. Neither may trip a breaker.
	b := &breaker{opts: BreakerOptions{FailureThreshold: 1}.withDefaults()}
	for i := 0; i < 5; i++ {
		b.done(&wire.RemoteError{Msg: "no such document"}, transient(&wire.RemoteError{Msg: "x"}))
		b.done(context.DeadlineExceeded, transient(context.DeadlineExceeded))
	}
	if err := b.allow(); err != nil {
		t.Fatalf("breaker tripped by non-transport errors: %v", err)
	}
	if st := b.snapshot(); st.State != "closed" || st.Failures != 0 {
		t.Fatalf("snapshot = %+v, want pristine closed state", st)
	}
}

func TestBreakerFailsFastWhileOpen(t *testing.T) {
	// Once the works wrapper is down and its breaker open, queries stop
	// paying the dial-and-retry tax: the open breaker answers immediately.
	m, killWais := deployFaulty(t, faultWorkloadN, nil, nil)
	m.Breaker = BreakerOptions{FailureThreshold: 2, Cooldown: time.Minute}
	killWais()
	for i := 0; i < 2; i++ {
		if _, err := m.ExecutePlan(context.Background(), crossSourceUnion(), ExecOptions{Parallelism: 1}); err == nil {
			t.Fatal("query against dead source must fail")
		}
	}
	if st := m.Health()["xmlartwork"]; st.State != "open" {
		t.Fatalf("xmlartwork health = %+v, want open", st)
	}
	start := time.Now()
	res, err := m.ExecutePlan(context.Background(), crossSourceUnion(),
		ExecOptions{Parallelism: 1, AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("open breaker did not fail fast: query took %v", elapsed)
	}
	if len(res.SourceErrors) != 1 || res.Tab.Len() == 0 {
		t.Errorf("fail-fast partial result: %d rows, errors %v", res.Tab.Len(), res.SourceErrors)
	}
	if st := m.Health()["o2artifact"]; st.State != "closed" {
		t.Errorf("healthy source health = %+v, want closed", st)
	}
}
