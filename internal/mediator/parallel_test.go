package mediator

import (
	"context"
	"testing"
	"time"

	"repro/internal/datagen"
)

// TestExecuteContextParallelDeterminism is the engine's end-to-end
// determinism property at the query level: for the whole randomized query
// family (including Tree-constructing MAKE heads, whose Skolem mint order is
// observable), an 8-worker execution returns exactly the rows of the serial
// one, in the same order, with identical source accounting.
func TestExecuteContextParallelDeterminism(t *testing.T) {
	w := datagen.Generate(datagen.DefaultParams(120))
	m, _, _ := setup(t, w.DB, w.Works)
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")

	ctx := context.Background()
	for i, query := range randomArtworkQueries(40) {
		serial, err := m.ExecuteContext(ctx, query, ExecOptions{Parallelism: 1})
		if err != nil {
			t.Fatalf("query %d (serial): %v\n%s", i, err, query)
		}
		par, err := m.ExecuteContext(ctx, query, ExecOptions{Parallelism: 8, Timeout: time.Minute})
		if err != nil {
			t.Fatalf("query %d (parallel): %v\n%s", i, err, query)
		}
		if !serial.Tab.Equal(par.Tab) {
			t.Errorf("query %d: parallel diverges from serial\nserial (%d rows):\n%s\nparallel (%d rows):\n%s\nquery:\n%s",
				i, serial.Tab.Len(), serial.Tab, par.Tab.Len(), par.Tab, query)
		}
		if serial.Stats.SourcePushes != par.Stats.SourcePushes ||
			serial.Stats.SourceFetches != par.Stats.SourceFetches {
			t.Errorf("query %d: stats diverge: serial %+v parallel %+v", i, serial.Stats, par.Stats)
		}
	}
}

// TestExecuteContextAgreesWithQuery pins ExecuteContext to the established
// Query path on the paper's own workload.
func TestExecuteContextAgreesWithQuery(t *testing.T) {
	m, _, _ := paperSetup(t)
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")
	for _, src := range []string{datagen.Q1Src, datagen.Q2Src} {
		want, err := m.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.ExecuteContext(context.Background(), src, ExecOptions{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !want.Tab.Equal(got.Tab) {
			t.Errorf("ExecuteContext diverges from Query:\nwant:\n%s\ngot:\n%s", want.Tab, got.Tab)
		}
		if want.Plan != got.Plan {
			t.Errorf("optimized plans differ:\n%s\nvs\n%s", want.Plan, got.Plan)
		}
	}
}
