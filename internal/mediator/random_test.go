package mediator

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/o2"
)

// randomArtworkQueries generates a deterministic family of n YAT_L queries
// over the integrated artworks view — random field subsets, random
// predicates, with and without optional-field navigation. The family is
// shared by the optimizer's semantics-preservation test and the parallel
// engine's determinism test.
func randomArtworkQueries(n int) []string {
	fields := []struct{ name, v string }{
		{"title", "$t"}, {"artist", "$a"}, {"year", "$y"},
		{"price", "$p"}, {"style", "$s"}, {"size", "$si"},
	}
	preds := []string{
		`$s = "Impressionist"`,
		`$s != "Realist"`,
		`$p < 200000`,
		`$p >= 50000`,
		`$y > 1850`,
		`$a = "Claude Monet"`,
		`$cl = "Giverny"`,
		`contains($w, "Oil")`,
		``,
	}
	seed := uint64(12345)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(n))
	}
	var queries []string
	for i := 0; i < n; i++ {
		// choose 1-4 fields, always including those the predicate needs
		nf := 1 + next(4)
		chosen := map[int]bool{}
		for len(chosen) < nf {
			chosen[next(len(fields))] = true
		}
		pred := preds[next(len(preds))]
		items := []string{}
		vars := map[string]bool{}
		for fi := range chosen {
			items = append(items, fields[fi].name+": "+fields[fi].v)
			vars[fields[fi].v] = true
		}
		// predicates referencing unbound vars force the needed bindings
		if strings.Contains(pred, "$s") && !vars["$s"] {
			items = append(items, "style: $s")
		}
		if strings.Contains(pred, "$p") && !vars["$p"] {
			items = append(items, "price: $p")
		}
		if strings.Contains(pred, "$y") && !vars["$y"] {
			items = append(items, "year: $y")
		}
		if strings.Contains(pred, "$a") && !vars["$a"] {
			items = append(items, "artist: $a")
		}
		if strings.Contains(pred, "$cl") {
			items = append(items, "more.cplace: $cl")
		}
		workFilter := "work[ " + strings.Join(items, ", ") + " ]"
		if strings.Contains(pred, "$w") {
			workFilter = "work@$w[ " + strings.Join(items, ", ") + " ]"
		}
		where := ""
		if pred != "" {
			where = "WHERE " + pred
		}
		// One result tree per distinct binding: row order is irrelevant
		// (group-instance order inside a single tree is plan-dependent).
		query := fmt.Sprintf(`MAKE f: $t0
MATCH artworks WITH doc[ *%s ] %s`, workFilter, where)
		// The MAKE references $t0; bind the first chosen field under it.
		query = strings.Replace(query, "$t0", fields[firstKey(chosen)].v, -1)
		queries = append(queries, query)
	}
	return queries
}

// TestRandomQueriesNaiveVsOptimized checks that for every generated query
// the optimized evaluation returns exactly the rows of the naive strategy.
// This is the optimizer's end-to-end semantics-preservation property.
func TestRandomQueriesNaiveVsOptimized(t *testing.T) {
	w := datagen.Generate(datagen.DefaultParams(120))
	m, _, _ := setup(t, w.DB, w.Works)
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")

	queries := randomArtworkQueries(40)
	for i, query := range queries {
		naive, err := m.QueryNaive(query)
		if err != nil {
			t.Fatalf("query %d (naive): %v\n%s", i, err, query)
		}
		opt, err := m.Query(query)
		if err != nil {
			t.Fatalf("query %d (optimized): %v\n%s", i, err, query)
		}
		if !naive.Tab.EqualUnordered(opt.Tab) {
			t.Errorf("query %d: naive %d rows, optimized %d rows\n%s\nplan:\n%s",
				i, naive.Tab.Len(), opt.Tab.Len(), query, opt.Plan)
		}
	}
	if len(queries) != 40 {
		t.Fatalf("generated %d queries", len(queries))
	}
}

func firstKey(m map[int]bool) int {
	min := -1
	for k := range m {
		if min < 0 || k < min {
			min = k
		}
	}
	return min
}

func o2Tuple(name string, auction float64) o2.Val {
	return o2.Tuple("name", o2.Str(name), "auction", o2.Float(auction))
}
