package mediator

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/o2wrap"
	"repro/internal/obs"
	"repro/internal/waiswrap"
	"repro/internal/wire"
)

// statsCounts projects the traced slice of algebra.Stats into obs.Counts for
// exact comparison with a trace's TreeCounts.
func statsCounts(s algebra.Stats) obs.Counts {
	return obs.Counts{
		Fetches:     s.SourceFetches,
		Pushes:      s.SourcePushes,
		Tuples:      s.TuplesShipped,
		CacheHits:   s.CacheHits,
		CacheMisses: s.CacheMisses,
		Retries:     s.Retries,
		Redials:     s.Redials,
	}
}

// TestProfileSumsMatchStats is the tracing subsystem's accounting
// invariant (the paper-facing acceptance criterion): for Fig. 9's Q2 over
// live wire wrappers, the per-node counts of the span tree sum to the
// query's global Stats exactly — no double counting, no dropped work — on
// every execution path (serial/parallel × per-row/batched DJoin).
func TestProfileSumsMatchStats(t *testing.T) {
	m, _ := deployFaulty(t, faultWorkloadN, nil, nil)
	modes := []struct {
		name string
		opts ExecOptions
	}{
		{"serial-batched", ExecOptions{Parallelism: 1}},
		{"serial-perrow", ExecOptions{Parallelism: 1, PerRowDJoin: true}},
		{"parallel-batched", ExecOptions{Parallelism: 8, Timeout: time.Minute}},
		{"parallel-perrow", ExecOptions{Parallelism: 8, PerRowDJoin: true, Timeout: time.Minute}},
	}
	for _, mode := range modes {
		opts := mode.opts
		opts.Trace = true
		res, err := m.ExecuteContext(context.Background(), datagen.Q2Src, opts)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if res.Trace == nil {
			t.Fatalf("%s: Trace requested but Result.Trace is nil", mode.name)
		}
		if res.Trace.SpanCount() < 2 {
			t.Fatalf("%s: trace has %d spans; expected a plan-shaped tree", mode.name, res.Trace.SpanCount())
		}
		if got, want := res.Trace.Rows, res.Tab.Len(); got != want {
			t.Errorf("%s: root span rows = %d, result rows = %d", mode.name, got, want)
		}
		if got, want := res.Trace.TreeCounts(), statsCounts(res.Stats); got != want {
			t.Errorf("%s: span tree counts %+v != global stats %+v", mode.name, got, want)
		}
	}
}

// TestStatsConsistencyAcrossPaths pins the Stats counters across every
// DJoin execution path: per-row and batched modes each return identical
// rows and identical counters whether evaluated serially or in parallel,
// and enabling tracing changes no counter (tracing observes the
// evaluation; it must not alter it).
func TestStatsConsistencyAcrossPaths(t *testing.T) {
	m, _ := deployFaulty(t, faultWorkloadN, nil, nil)
	ctx := context.Background()
	for _, mode := range []struct {
		name   string
		perRow bool
	}{{"batched", false}, {"perrow", true}} {
		serial, err := m.ExecuteContext(ctx, datagen.Q2Src, ExecOptions{Parallelism: 1, PerRowDJoin: mode.perRow})
		if err != nil {
			t.Fatalf("%s serial: %v", mode.name, err)
		}
		par, err := m.ExecuteContext(ctx, datagen.Q2Src, ExecOptions{Parallelism: 8, PerRowDJoin: mode.perRow, Timeout: time.Minute})
		if err != nil {
			t.Fatalf("%s parallel: %v", mode.name, err)
		}
		traced, err := m.ExecuteContext(ctx, datagen.Q2Src, ExecOptions{Parallelism: 1, PerRowDJoin: mode.perRow, Trace: true})
		if err != nil {
			t.Fatalf("%s traced: %v", mode.name, err)
		}
		if !serial.Tab.Equal(par.Tab) || !serial.Tab.Equal(traced.Tab) {
			t.Errorf("%s: rows diverge across serial/parallel/traced", mode.name)
		}
		if serial.Stats != par.Stats {
			t.Errorf("%s: serial stats %+v != parallel stats %+v", mode.name, serial.Stats, par.Stats)
		}
		if serial.Stats != traced.Stats {
			t.Errorf("%s: tracing changed the counters: %+v != %+v", mode.name, serial.Stats, traced.Stats)
		}
	}
	// The two modes must agree on rows but differ in push accounting
	// (batching is the point); sanity-check the workload exercises it.
	batched, _ := m.ExecuteContext(ctx, datagen.Q2Src, ExecOptions{Parallelism: 1})
	perRow, _ := m.ExecuteContext(ctx, datagen.Q2Src, ExecOptions{Parallelism: 1, PerRowDJoin: true})
	if !batched.Tab.Equal(perRow.Tab) {
		t.Error("batched and per-row DJoin disagree on rows")
	}
	if batched.Stats.SourcePushes >= perRow.Stats.SourcePushes {
		t.Errorf("batched pushes (%d) should undercut per-row pushes (%d)",
			batched.Stats.SourcePushes, perRow.Stats.SourcePushes)
	}
}

// deployObserved mirrors deployFaulty with a wire Observer attached to each
// wrapper server, so tests can read the request spans the wrappers record.
func deployObserved(t *testing.T, n int) (*Mediator, []*obs.Observer) {
	t.Helper()
	w := datagen.Generate(datagen.DefaultParams(n))
	ow := o2wrap.New("o2artifact", w.DB)
	schema := ow.ExportSchema()
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(w.Works))
	exps := []wire.Exported{
		{Source: ow, Interface: ow.ExportInterface(),
			Structures: map[string]wire.StructureRef{
				"artifacts": {Model: schema, Pattern: "Artifact"},
				"persons":   {Model: schema, Pattern: "Person"},
			}},
		{Source: ww, Interface: ww.ExportInterface(),
			Structures: map[string]wire.StructureRef{
				"works": {Model: ww.ExportStructure(), Pattern: "Works"},
			}},
	}
	m := New()
	var observers []*obs.Observer
	for i := range exps {
		exps[i].Obs = obs.NewObserver(nil)
		observers = append(observers, exps[i].Obs)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := wire.Serve(ln, exps[i])
		c, err := wire.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		t.Cleanup(func() { c.Close() })
		iface, err := c.ImportInterface()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Connect(c, iface); err != nil {
			t.Fatal(err)
		}
		sts, err := c.ImportStructures()
		if err != nil {
			t.Fatal(err)
		}
		for doc, ref := range sts {
			m.ImportStructure(doc, ref.Model, ref.Pattern)
		}
	}
	m.RegisterFunc("contains", waiswrap.Contains)
	if err := m.LoadProgram(datagen.View1Src); err != nil {
		t.Fatal(err)
	}
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")
	return m, observers
}

// TestTraceIDPropagatesOverWire is the cross-process half of the tracing
// story: wrapper-side request spans carry the mediator's trace id, shipped
// as a tag on the wire frames, so one distributed trace can be assembled
// from both sides of the connection.
func TestTraceIDPropagatesOverWire(t *testing.T) {
	m, observers := deployObserved(t, faultWorkloadN)
	res, err := m.ExecuteContext(context.Background(), datagen.Q2Src, ExecOptions{Parallelism: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.ID == "" {
		t.Fatal("no trace collected")
	}
	carried := 0
	for _, o := range observers {
		for _, sp := range o.Spans() {
			switch sp.Name {
			case "push", "pushbatch", "fetch":
				if sp.ID != res.Trace.ID {
					t.Errorf("wrapper %s span has trace id %q, want the caller's %q", sp.Name, sp.ID, res.Trace.ID)
				} else {
					carried++
				}
			}
		}
	}
	if carried == 0 {
		t.Fatal("no wrapper-side request span carries the caller's trace id")
	}
	// An untraced query must not tag frames: the wrapper spans it records
	// have empty trace ids.
	for _, o := range observers {
		o.Spans() // drain nothing; ring keeps history — count baseline first
	}
	before := make([]int, len(observers))
	for i, o := range observers {
		before[i] = len(o.Spans())
	}
	if _, err := m.ExecuteContext(context.Background(), datagen.Q2Src, ExecOptions{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	for i, o := range observers {
		for _, sp := range o.Spans()[before[i]:] {
			if sp.ID != "" {
				t.Errorf("untraced query produced wrapper span with trace id %q", sp.ID)
			}
		}
	}
}

// TestHealthAndMetricsConcurrentWithQueries is the observability plane's
// -race regression: Health() snapshots and the HTTP metrics endpoint are
// read continuously while traced queries execute against fault-injected
// wrappers. Any unsynchronized access between the query path, the breaker
// bookkeeping and the metrics plane is a test failure under -race.
func TestHealthAndMetricsConcurrentWithQueries(t *testing.T) {
	inj := func(seed int64) *faults.Injector {
		return faults.New(faults.Config{
			Rate: 0.05, Seed: seed, After: setupExchanges,
			Kinds: []faults.Kind{faults.Drop, faults.Truncate, faults.Garble},
		})
	}
	m, _ := deployFaulty(t, faultWorkloadN, inj(7), inj(11))
	reg := obs.NewRegistry()
	m.SetMetrics(reg)
	plane, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // poll breaker state
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				m.Health()
			}
		}
	}()
	go func() { // poll the metrics endpoint
		defer wg.Done()
		url := fmt.Sprintf("http://%s/metrics", plane.Addr)
		for {
			select {
			case <-done:
				return
			default:
				resp, err := http.Get(url)
				if err != nil {
					continue
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var snap map[string]any
				if err := json.Unmarshal(b, &snap); err != nil {
					t.Errorf("metrics endpoint returned invalid JSON: %v", err)
				}
			}
		}
	}()
	for i := 0; i < 6; i++ {
		opts := ExecOptions{Parallelism: 4, Timeout: time.Minute, Trace: i%2 == 0}
		if _, err := m.ExecuteContext(context.Background(), datagen.Q2Src, opts); err != nil {
			t.Fatalf("query %d under faults: %v", i, err)
		}
	}
	close(done)
	wg.Wait()

	// The registry saw every query.
	snap := reg.Snapshot()
	counters := snap["counters"].(map[string]int64)
	if counters["queries_total"] != 6 {
		t.Errorf("queries_total = %d, want 6", counters["queries_total"])
	}
	if counters["source_pushes_total"] == 0 {
		t.Error("source_pushes_total stayed zero across six queries")
	}
}
