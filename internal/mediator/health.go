package mediator

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/tab"
	"repro/internal/wire"
)

// BreakerOptions configure the per-source circuit breakers guarding every
// connected source. A source whose calls keep failing at the transport
// level is declared down (breaker open): further calls fail fast with
// algebra.UnavailableError instead of burning a dial-and-retry cycle each,
// and AllowPartial queries degrade around it. After Cooldown one probe
// call is let through (half-open); its outcome closes or re-opens the
// breaker.
type BreakerOptions struct {
	// FailureThreshold is the number of consecutive transport failures
	// that opens the breaker (0 = default 3).
	FailureThreshold int
	// Cooldown is how long an open breaker refuses calls before letting a
	// probe through (0 = default 2s).
	Cooldown time.Duration
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 2 * time.Second
	}
	return o
}

// Breaker states. A breaker is closed (calls pass) until
// FailureThreshold consecutive transport failures open it; open until the
// cooldown elapses; then half-open, letting exactly one probe through.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one source's health state. Only transport-level failures
// (wire.IsRetryable) count against it: a server-reported <error> frame or
// a semantic failure proves the source alive and resets the count. A
// caller's expired context does not count either — a query with a tight
// budget must not poison the source's health for everyone else.
type breaker struct {
	opts BreakerOptions

	mu      sync.Mutex
	state   int
	fails   int       // consecutive transport failures
	until   time.Time // open: earliest probe time
	lastErr error
}

// allow reports whether a call may proceed; when the breaker is open it
// returns the error to fail fast with.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if time.Now().Before(b.until) {
			return fmt.Errorf("circuit open after %d consecutive failures (last: %v)", b.fails, b.lastErr)
		}
		// Cooldown over: half-open, let this call probe. Concurrent
		// callers keep failing fast until the probe resolves.
		b.state = breakerHalfOpen
		return nil
	case breakerHalfOpen:
		return fmt.Errorf("circuit half-open, probe in flight (last: %v)", b.lastErr)
	default:
		return nil
	}
}

// done records a call outcome. transient marks transport-level failures;
// semantic errors count as proof of life.
func (b *breaker) done(err error, transient bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil || !transient {
		b.state = breakerClosed
		b.fails = 0
		b.lastErr = nil
		return
	}
	b.fails++
	b.lastErr = err
	if b.state == breakerHalfOpen || b.fails >= b.opts.FailureThreshold {
		b.state = breakerOpen
		b.until = time.Now().Add(b.opts.Cooldown)
	}
}

// snapshot reports the breaker's current state for Health.
func (b *breaker) snapshot() SourceHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := SourceHealth{Failures: b.fails}
	switch b.state {
	case breakerOpen:
		h.State = "open"
	case breakerHalfOpen:
		h.State = "half-open"
	default:
		h.State = "closed"
	}
	if b.lastErr != nil {
		h.LastErr = b.lastErr.Error()
	}
	return h
}

// SourceHealth is one source's breaker state as reported by
// Mediator.Health.
type SourceHealth struct {
	State    string // "closed", "open" or "half-open"
	Failures int    // consecutive transport failures
	LastErr  string // most recent transport failure, if any
}

// transient classifies an error as a transport-level availability failure
// — the class that trips breakers and that AllowPartial degrades around.
func transient(err error) bool { return wire.IsRetryable(err) }

// guard wraps a connected source with its circuit breaker: calls fail fast
// while the breaker is open, transport failures are wrapped in
// algebra.UnavailableError (the marker graceful degradation keys on) and
// recorded, successes and semantic errors reset the breaker.
type guard struct {
	name string
	src  algebra.Source
	br   *breaker
}

// guardSource wraps src with its breaker, preserving the BatchSource
// capability exactly when the underlying source has it (the DJoin batch
// path type-asserts for it).
func guardSource(name string, src algebra.Source, br *breaker) algebra.Source {
	g := &guard{name: name, src: src, br: br}
	if _, ok := src.(algebra.BatchSource); ok {
		return &guardBatch{guard: g}
	}
	return g
}

// call runs one source call through the breaker.
func (g *guard) call(fn func() error) error {
	if err := g.br.allow(); err != nil {
		return &algebra.UnavailableError{Source: g.name, Err: err}
	}
	err := fn()
	tr := err != nil && transient(err)
	g.br.done(err, tr)
	if tr {
		return &algebra.UnavailableError{Source: g.name, Err: err}
	}
	return err
}

// Name implements algebra.Source.
func (g *guard) Name() string { return g.src.Name() }

// Documents implements algebra.Source (local metadata; no breaker).
func (g *guard) Documents() []string { return g.src.Documents() }

// Fetch implements algebra.Source.
func (g *guard) Fetch(doc string) (data.Forest, error) {
	var f data.Forest
	err := g.call(func() (e error) { f, e = g.src.Fetch(doc); return })
	return f, err
}

// FetchContext implements algebra.ContextSource, falling back to the plain
// call when the underlying source is not context-aware.
func (g *guard) FetchContext(ctx context.Context, doc string) (data.Forest, error) {
	var f data.Forest
	err := g.call(func() (e error) {
		if cs, ok := g.src.(algebra.ContextSource); ok {
			f, e = cs.FetchContext(ctx, doc)
		} else {
			f, e = g.src.Fetch(doc)
		}
		return
	})
	return f, err
}

// Push implements algebra.Source.
func (g *guard) Push(plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	var t *tab.Tab
	err := g.call(func() (e error) { t, e = g.src.Push(plan, params); return })
	return t, err
}

// PushContext implements algebra.ContextSource.
func (g *guard) PushContext(ctx context.Context, plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	var t *tab.Tab
	err := g.call(func() (e error) {
		if cs, ok := g.src.(algebra.ContextSource); ok {
			t, e = cs.PushContext(ctx, plan, params)
		} else {
			t, e = g.src.Push(plan, params)
		}
		return
	})
	return t, err
}

// FetchStream implements algebra.StreamSource. The breaker outcome is
// recorded at open time — a successful stream handshake is the proof of
// life — and mid-stream transport failures are reported supplementarily by
// the cursor wrapper, so an abandoned stream can never strand a half-open
// probe.
func (g *guard) FetchStream(ctx context.Context, doc string) (algebra.ForestCursor, error) {
	var cur algebra.ForestCursor
	err := g.call(func() (e error) {
		if ss, ok := g.src.(algebra.StreamSource); ok {
			cur, e = ss.FetchStream(ctx, doc)
			return
		}
		// No native stream support: materialize behind the guard and chunk,
		// so the caller sees one uniform streaming surface.
		var f data.Forest
		if cs, ok := g.src.(algebra.ContextSource); ok {
			f, e = cs.FetchContext(ctx, doc)
		} else {
			f, e = g.src.Fetch(doc)
		}
		if e == nil {
			cur = algebra.NewSliceForestCursor(f, tab.DefaultStreamChunk)
		}
		return
	})
	if err != nil {
		return nil, err
	}
	return &guardForestCursor{cur: cur, g: g}, nil
}

// PushStream implements algebra.PushStreamSource, with the same breaker
// protocol as FetchStream.
func (g *guard) PushStream(ctx context.Context, plan algebra.Op, params map[string]tab.Cell) (tab.Cursor, error) {
	var cur tab.Cursor
	err := g.call(func() (e error) {
		if ps, ok := g.src.(algebra.PushStreamSource); ok {
			cur, e = ps.PushStream(ctx, plan, params)
			return
		}
		var t *tab.Tab
		if cs, ok := g.src.(algebra.ContextSource); ok {
			t, e = cs.PushContext(ctx, plan, params)
		} else {
			t, e = g.src.Push(plan, params)
		}
		if e == nil {
			cur = tab.NewSliceCursor(t, tab.DefaultStreamChunk)
		}
		return
	})
	if err != nil {
		return nil, err
	}
	return &guardTabCursor{cur: cur, g: g}, nil
}

// guardForestCursor reports mid-stream transport failures to the breaker
// and wraps them in UnavailableError so graceful degradation keys on them.
type guardForestCursor struct {
	cur algebra.ForestCursor
	g   *guard
}

func (c *guardForestCursor) Next() (data.Forest, error) {
	f, err := c.cur.Next()
	if err != nil && err != io.EOF && transient(err) {
		c.g.br.done(err, true)
		return nil, &algebra.UnavailableError{Source: c.g.name, Err: err}
	}
	return f, err
}

func (c *guardForestCursor) Close() error { return c.cur.Close() }

// guardTabCursor is guardForestCursor for row streams.
type guardTabCursor struct {
	cur tab.Cursor
	g   *guard
}

func (c *guardTabCursor) Cols() []string { return c.cur.Cols() }

func (c *guardTabCursor) Next() (*tab.Tab, error) {
	t, err := c.cur.Next()
	if err != nil && err != io.EOF && transient(err) {
		c.g.br.done(err, true)
		return nil, &algebra.UnavailableError{Source: c.g.name, Err: err}
	}
	return t, err
}

func (c *guardTabCursor) Close() error { return c.cur.Close() }

// SourceState implements algebra.StateReporter: traced evaluation
// annotates each push with the breaker state it ran under, so a profile
// shows which calls went through a recovering source.
func (g *guard) SourceState() string { return g.br.snapshot().State }

// TakeRetryStats implements algebra.RetryReporter by forwarding to the
// underlying source's transport layer.
func (g *guard) TakeRetryStats() (retries, redials int) {
	if rr, ok := g.src.(algebra.RetryReporter); ok {
		return rr.TakeRetryStats()
	}
	return 0, 0
}

// guardBatch adds the BatchSource methods for sources that have them.
type guardBatch struct{ *guard }

// PushBatch implements algebra.BatchSource.
func (g *guardBatch) PushBatch(plan algebra.Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error) {
	var ts []*tab.Tab
	err := g.call(func() (e error) {
		ts, e = g.src.(algebra.BatchSource).PushBatch(plan, bindings)
		return
	})
	return ts, err
}

// PushBatchContext implements algebra.BatchSource.
func (g *guardBatch) PushBatchContext(ctx context.Context, plan algebra.Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error) {
	var ts []*tab.Tab
	err := g.call(func() (e error) {
		ts, e = g.src.(algebra.BatchSource).PushBatchContext(ctx, plan, bindings)
		return
	})
	return ts, err
}

// breakerFor returns (creating on first use) the named source's breaker.
func (m *Mediator) breakerFor(name string) *breaker {
	m.healthMu.Lock()
	defer m.healthMu.Unlock()
	if b, ok := m.health[name]; ok {
		return b
	}
	b := &breaker{opts: m.Breaker.withDefaults()}
	m.health[name] = b
	return b
}

// Health reports every connected source's breaker state. The source list
// is read under the registration lock and every breaker is collected under
// a single healthMu acquisition (not one per source via breakerFor), so the
// report is one coherent pass even while queries trip breakers and
// operators connect sources concurrently.
func (m *Mediator) Health() map[string]SourceHealth {
	m.regMu.RLock()
	names := make([]string, 0, len(m.sources))
	for name := range m.sources {
		names = append(names, name)
	}
	m.regMu.RUnlock()
	brs := make(map[string]*breaker, len(names))
	m.healthMu.Lock()
	for _, name := range names {
		b, ok := m.health[name]
		if !ok {
			b = &breaker{opts: m.Breaker.withDefaults()}
			m.health[name] = b
		}
		brs[name] = b
	}
	m.healthMu.Unlock()
	out := make(map[string]SourceHealth, len(brs))
	for name, b := range brs {
		out[name] = b.snapshot()
	}
	return out
}
