// Package mediator implements the YAT mediator of Figure 2: it connects
// wrappers, imports their structural and operational capabilities, loads
// YAT_L integration programs (views), composes user queries with view
// definitions, invokes the three-round optimizer and executes the resulting
// distributed plans.
package mediator

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/pattern"
	"repro/internal/planlint"
	"repro/internal/tab"
	"repro/internal/typecheck"
	"repro/internal/xq"
	xqcompile "repro/internal/xq/compile"
	"repro/internal/yatl"
)

// Mediator coordinates sources, views and query evaluation.
type Mediator struct {
	// regMu guards the registration catalog below. A long-running service
	// interleaves Connect/DefineView/RegisterFunc (the front door's
	// operators re-pointing sources, a console session loading views) with
	// live queries, whose newContext/Compose snapshots read these maps; the
	// lock makes registration linearizable against query admission. Readers
	// take snapshots under RLock and never hold the lock across evaluation,
	// so a query in flight keeps the catalog it was admitted under.
	regMu      sync.RWMutex
	sources    map[string]algebra.Source
	ifaces     map[string]*capability.Interface
	sourceDocs map[string]string
	structures map[string]optimizer.Structure
	funcs      map[string]algebra.Func
	views      map[string]*View
	viewOrder  []string
	assume     []optimizer.Containment
	// Trace receives optimizer rewriting lines when non-nil.
	Trace func(string)
	// CheckInvariants verifies plans with planlint after every optimizer
	// rewriting step and again immediately before execution; a violation
	// aborts the query instead of producing a wrong answer.
	CheckInvariants bool
	// Breaker configures the per-source circuit breakers (zero value =
	// defaults: 3 consecutive transport failures open a breaker for 2s).
	Breaker BreakerOptions

	// cache, when installed (EnableCache or ExecOptions.CacheSize),
	// memoizes wrapper results across the rows of one DJoin and across
	// queries; cacheMu guards installation, the cache itself is
	// thread-safe.
	cacheMu sync.Mutex
	cache   *algebra.ResultCache

	// health holds one circuit breaker per connected source, created
	// lazily and shared across queries so failures accumulate and an open
	// breaker protects every caller.
	healthMu sync.Mutex
	health   map[string]*breaker

	// metrics, when installed (SetMetrics), receives per-query counters
	// and latency observations, per-Stats counter totals, and breaker
	// state gauges/transition counts — the data the -metrics-addr HTTP
	// plane serves.
	metricsMu sync.Mutex
	metrics   *obs.Registry
}

// View is a registered YAT_L rule with its algebraic translation.
type View struct {
	Rule *yatl.Rule
	Plan algebra.Op
}

// New returns an empty mediator.
func New() *Mediator {
	return &Mediator{
		sources:    map[string]algebra.Source{},
		ifaces:     map[string]*capability.Interface{},
		sourceDocs: map[string]string{},
		structures: map[string]optimizer.Structure{},
		funcs:      map[string]algebra.Func{},
		views:      map[string]*View{},
		health:     map[string]*breaker{},
	}
}

// Connect registers a wrapper and imports its operational interface (the
// `connect` + `import` steps of Figure 2). Every document the source
// exports becomes resolvable.
func (m *Mediator) Connect(src algebra.Source, iface *capability.Interface) error {
	m.regMu.Lock()
	defer m.regMu.Unlock()
	name := src.Name()
	if _, dup := m.sources[name]; dup {
		return fmt.Errorf("mediator: source %q already connected", name)
	}
	m.sources[name] = src
	if iface != nil {
		m.ifaces[name] = iface
	}
	for _, d := range src.Documents() {
		if owner, dup := m.sourceDocs[d]; dup {
			return fmt.Errorf("mediator: document %q exported by both %s and %s", d, owner, name)
		}
		m.sourceDocs[d] = name
	}
	// Seed plan typing from the schemas the capability description
	// carries; an explicit ImportStructure can still override them.
	if iface != nil {
		for doc, ref := range iface.Structures {
			if _, have := m.structures[doc]; !have && ref.Model != nil {
				m.structures[doc] = optimizer.Structure{Model: ref.Model, Pattern: ref.Pattern}
			}
		}
	}
	return nil
}

// ImportStructure records the structural pattern governing a document,
// enabling the type-driven rewritings of Section 5.1.
func (m *Mediator) ImportStructure(doc string, model *pattern.Model, patternName string) {
	m.regMu.Lock()
	defer m.regMu.Unlock()
	m.structures[doc] = optimizer.Structure{Model: model, Pattern: patternName}
}

// RegisterFunc registers an external function evaluable at the mediator
// (e.g. contains, or a method the wrapper exposes for callback).
func (m *Mediator) RegisterFunc(name string, fn algebra.Func) {
	m.regMu.Lock()
	defer m.regMu.Unlock()
	m.funcs[name] = fn
}

// Assume declares a containment assumption enabling source pruning
// (Figure 8): joining keep with the drop branch preserves all keep rows.
// The optional modulo conjuncts (printed predicate forms, e.g. "$y > 1800")
// are the selections the assumption absorbs; branches carrying any other
// selection are never pruned.
func (m *Mediator) Assume(drop, keep string, modulo ...string) {
	m.regMu.Lock()
	defer m.regMu.Unlock()
	m.assume = append(m.assume, optimizer.Containment{Drop: drop, Keep: keep, Modulo: modulo})
}

// LoadProgram parses a YAT_L integration program and registers each rule as
// a view (the `load "view1.yat"` step of Figure 2).
func (m *Mediator) LoadProgram(src string) error {
	p, err := yatl.Parse(src)
	if err != nil {
		return err
	}
	for i := range p.Rules {
		if err := m.DefineView(&p.Rules[i]); err != nil {
			return err
		}
	}
	return nil
}

// DefineView translates and registers one rule.
func (m *Mediator) DefineView(r *yatl.Rule) error {
	plan, err := yatl.Translate(r)
	if err != nil {
		return err
	}
	m.regMu.Lock()
	defer m.regMu.Unlock()
	if _, dup := m.views[r.Name]; !dup {
		m.viewOrder = append(m.viewOrder, r.Name)
	}
	m.views[r.Name] = &View{Rule: r, Plan: plan}
	return nil
}

// Views lists the registered view names in definition order.
func (m *Mediator) Views() []string {
	m.regMu.RLock()
	defer m.regMu.RUnlock()
	return append([]string(nil), m.viewOrder...)
}

// View returns a registered view, or nil.
func (m *Mediator) View(name string) *View {
	m.regMu.RLock()
	defer m.regMu.RUnlock()
	return m.views[name]
}

// Sources lists connected source names.
func (m *Mediator) Sources() []string {
	m.regMu.RLock()
	defer m.regMu.RUnlock()
	var out []string
	for n := range m.sources {
		out = append(out, n)
	}
	return out
}

// Interface returns a connected source's capability interface.
func (m *Mediator) Interface(source string) *capability.Interface {
	m.regMu.RLock()
	defer m.regMu.RUnlock()
	return m.ifaces[source]
}

// EnableCache installs a wrapper-result cache bounded to the given number
// of entries, shared by every subsequent query this mediator executes (see
// algebra.ResultCache; the cache assumes quiescent sources). A bound below
// 1 removes the cache. Replacing an existing cache drops its contents.
func (m *Mediator) EnableCache(entries int) {
	m.cacheMu.Lock()
	m.cache = algebra.NewResultCache(entries)
	m.cacheMu.Unlock()
}

// resultCache returns the installed cache (nil when caching is off).
func (m *Mediator) resultCache() *algebra.ResultCache {
	m.cacheMu.Lock()
	defer m.cacheMu.Unlock()
	return m.cache
}

// ensureCache installs a cache if none is present yet (the
// ExecOptions.CacheSize path; an explicitly enabled cache is kept, so a
// warm cache survives across queries with the same options).
func (m *Mediator) ensureCache(entries int) {
	m.cacheMu.Lock()
	if m.cache == nil {
		m.cache = algebra.NewResultCache(entries)
	}
	m.cacheMu.Unlock()
}

// newContext builds a fresh evaluation context for one query: a snapshot of
// the catalog taken under the registration lock, so a Connect or
// RegisterFunc racing the query cannot tear the maps mid-read. The lock is
// released before the context is used — evaluation never holds it.
func (m *Mediator) newContext() *algebra.Context {
	ctx := algebra.NewContext()
	ctx.Cache = m.resultCache()
	m.regMu.RLock()
	sources := make(map[string]algebra.Source, len(m.sources))
	for n, s := range m.sources {
		sources[n] = s
	}
	for n, f := range m.funcs {
		ctx.Funcs[n] = f
	}
	merged := pattern.NewModel("mediator")
	for _, st := range m.structures {
		for _, name := range st.Model.Names() {
			merged.Define(name, st.Model.Defs[name])
		}
	}
	m.regMu.RUnlock()
	for n, s := range sources {
		ctx.Sources[n] = guardSource(n, s, m.breakerFor(n))
	}
	ctx.Model = merged
	return ctx
}

// Compose parses a query and substitutes view definitions for the named
// documents it matches, yielding the naive composed plan (the left-hand
// side of Figure 8). Two dialects are accepted: YAT_L query bodies
// (MAKE/MATCH/WHERE) and XPath/XQuery-FLWR text (`for $v in doc(...)...` or
// a bare path), which internal/xq/compile lowers to the same algebra.
func (m *Mediator) Compose(querySrc string) (algebra.Op, error) {
	plan, err := m.compose(querySrc)
	if err != nil {
		return nil, err
	}
	return m.substituteViews(plan, 0)
}

func (m *Mediator) compose(querySrc string) (algebra.Op, error) {
	if xq.IsQuery(querySrc) {
		q, err := xq.Parse(strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(querySrc), ";")))
		if err != nil {
			return nil, err
		}
		return xqcompile.Compile(q, m.xqOptions())
	}
	q, err := yatl.ParseQuery(querySrc)
	if err != nil {
		return nil, err
	}
	return yatl.Translate(q)
}

// xqOptions configures the xq compiler against this mediator's catalog.
func (m *Mediator) xqOptions() xqcompile.Options {
	return xqcompile.Options{IsView: func(doc string) bool {
		return m.View(doc) != nil
	}}
}

// substituteViews replaces Bind(doc) leaves naming views with Binds over
// the view's Tree plan.
func (m *Mediator) substituteViews(op algebra.Op, depth int) (algebra.Op, error) {
	if depth > 16 {
		return nil, fmt.Errorf("mediator: view nesting too deep (cycle?)")
	}
	var firstErr error
	rebuild := func(c algebra.Op) algebra.Op {
		out, err := m.substituteViews(c, depth)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return out
	}
	// yat-lint:ignore intentionally partial: only Bind and Doc name view documents; default rebuilds children via the exhaustive rebuildAll
	switch x := op.(type) {
	case *algebra.Bind:
		if x.Doc != "" {
			if v := m.View(x.Doc); v != nil {
				inner, err := m.substituteViews(v.Plan, depth+1)
				if err != nil {
					return nil, err
				}
				t, ok := inner.(*algebra.TreeOp)
				if !ok {
					return nil, fmt.Errorf("mediator: view %s does not end in a Tree", x.Doc)
				}
				return &algebra.Bind{From: t, Col: t.Columns()[0], F: x.F}, nil
			}
			if !m.docExported(x.Doc) {
				return nil, fmt.Errorf("mediator: unknown document %q (no source or view exports it)", x.Doc)
			}
			return x, nil
		}
		if x.From != nil {
			out := rebuildBind(x, rebuild(x.From))
			return out, firstErr
		}
		return x, nil
	case *algebra.Doc:
		if m.View(x.Name) != nil {
			return nil, fmt.Errorf("mediator: Doc over view %q is not supported; use Bind", x.Name)
		}
		return x, nil
	default:
		out := rebuildAll(op, rebuild)
		return out, firstErr
	}
}

// docExported reports whether any connected source exports the document.
func (m *Mediator) docExported(doc string) bool {
	m.regMu.RLock()
	defer m.regMu.RUnlock()
	_, known := m.sourceDocs[doc]
	return known
}

func rebuildBind(b *algebra.Bind, from algebra.Op) *algebra.Bind {
	return &algebra.Bind{From: from, Doc: b.Doc, Col: b.Col, F: b.F}
}

// rebuildAll rebuilds any operator with mapped children.
func rebuildAll(op algebra.Op, fn func(algebra.Op) algebra.Op) algebra.Op {
	switch x := op.(type) {
	case *algebra.Select:
		return &algebra.Select{From: fn(x.From), Pred: x.Pred}
	case *algebra.Project:
		return &algebra.Project{From: fn(x.From), Cols: x.Cols}
	case *algebra.MapExpr:
		return &algebra.MapExpr{From: fn(x.From), Col: x.Col, E: x.E}
	case *algebra.Join:
		return &algebra.Join{L: fn(x.L), R: fn(x.R), Pred: x.Pred}
	case *algebra.DJoin:
		return &algebra.DJoin{L: fn(x.L), R: fn(x.R)}
	case *algebra.Union:
		return &algebra.Union{L: fn(x.L), R: fn(x.R)}
	case *algebra.Intersect:
		return &algebra.Intersect{L: fn(x.L), R: fn(x.R)}
	case *algebra.Distinct:
		return &algebra.Distinct{From: fn(x.From)}
	case *algebra.Group:
		return &algebra.Group{From: fn(x.From), Keys: x.Keys, Into: x.Into}
	case *algebra.Sort:
		return &algebra.Sort{From: fn(x.From), Cols: x.Cols}
	case *algebra.TreeOp:
		return &algebra.TreeOp{From: fn(x.From), C: x.C, OutCol: x.OutCol}
	case *algebra.Bind:
		if x.From != nil {
			return rebuildBind(x, fn(x.From))
		}
		return op
	case *algebra.SourceQuery:
		return &algebra.SourceQuery{Source: x.Source, Plan: fn(x.Plan)}
	case *algebra.Doc, *algebra.Literal:
		return op // leaves
	default:
		return op
	}
}

// optimizerOptions assembles the optimizer configuration from the imported
// capabilities.
func (m *Mediator) optimizerOptions() optimizer.Options {
	m.regMu.RLock()
	defer m.regMu.RUnlock()
	ifaces := make(map[string]*capability.Interface, len(m.ifaces))
	for n, i := range m.ifaces {
		ifaces[n] = i
	}
	sourceDocs := make(map[string]string, len(m.sourceDocs))
	for d, s := range m.sourceDocs {
		sourceDocs[d] = s
	}
	structures := make(map[string]optimizer.Structure, len(m.structures))
	for d, st := range m.structures {
		structures[d] = st
	}
	return optimizer.Options{
		Interfaces:      ifaces,
		SourceDocs:      sourceDocs,
		Structures:      structures,
		Assume:          append([]optimizer.Containment(nil), m.assume...),
		InfoPassing:     true,
		CheckInvariants: m.CheckInvariants,
		Trace:           m.Trace,
	}
}

// lintConfig assembles the planlint configuration from the mediator's
// catalog. Unlike the optimizer, the mediator knows the full document
// catalog, so unknown-document diagnostics are enabled.
func (m *Mediator) lintConfig() *planlint.Config {
	m.regMu.RLock()
	defer m.regMu.RUnlock()
	structures := make(map[string]planlint.Structure, len(m.structures))
	for doc, st := range m.structures {
		structures[doc] = planlint.Structure{Model: st.Model, Pattern: st.Pattern}
	}
	docs := make(map[string]bool, len(m.sourceDocs))
	for d := range m.sourceDocs {
		docs[d] = true
	}
	ifaces := make(map[string]*capability.Interface, len(m.ifaces))
	for n, i := range m.ifaces {
		ifaces[n] = i
	}
	sourceDocs := make(map[string]string, len(m.sourceDocs))
	for d, s := range m.sourceDocs {
		sourceDocs[d] = s
	}
	return &planlint.Config{
		Interfaces: ifaces,
		SourceDocs: sourceDocs,
		Structures: structures,
		Docs:       docs,
	}
}

// Lint verifies a plan against the mediator's catalog and capability
// interfaces, returning every violation found.
func (m *Mediator) Lint(plan algebra.Op) []planlint.Diagnostic {
	return planlint.Check(plan, m.lintConfig())
}

// lintBeforeExec is the pre-execution gate: with CheckInvariants set, a plan
// that fails verification is refused instead of evaluated.
func (m *Mediator) lintBeforeExec(stage string, plan algebra.Op) error {
	if !m.CheckInvariants {
		return nil
	}
	if ds := m.Lint(plan); len(ds) > 0 {
		return fmt.Errorf("mediator: refusing to execute %s plan: %w", stage, planlint.Error(ds))
	}
	return nil
}

// Optimize runs the three-round optimizer over a composed plan.
func (m *Mediator) Optimize(plan algebra.Op) algebra.Op {
	return optimizer.New(m.optimizerOptions()).Optimize(plan)
}

// Result bundles a query outcome with its plans and execution counters.
// SourceErrors is non-empty only for AllowPartial executions that degraded:
// it lists the sources the query could not reach, and marks the rows as a
// lower bound of the complete answer. Trace is non-nil only for executions
// with ExecOptions.Trace set: the root of the plan-shaped span tree
// (render with obs.Render, export with obs.ChromeTrace).
type Result struct {
	Tab          *tab.Tab
	NaivePlan    string
	Plan         string
	Stats        algebra.Stats
	SourceErrors []algebra.SourceFailure
	Trace        *obs.Span
}

// SetMetrics installs a metrics registry: every subsequent query folds its
// duration, outcome and Stats counters into it, and breaker transitions
// are counted as they happen. Pass nil to detach.
func (m *Mediator) SetMetrics(reg *obs.Registry) {
	m.metricsMu.Lock()
	m.metrics = reg
	m.metricsMu.Unlock()
}

// Metrics returns the installed registry (nil when none).
func (m *Mediator) Metrics() *obs.Registry {
	m.metricsMu.Lock()
	defer m.metricsMu.Unlock()
	return m.metrics
}

// recordQuery folds one query execution into the installed registry:
// outcome counters, a latency observation, the run's Stats (recorded on
// failure too — the work done before a failure is still work done), and a
// state gauge per source breaker (0 closed, 1 half-open, 2 open).
func (m *Mediator) recordQuery(d time.Duration, stats algebra.Stats, err error) {
	reg := m.Metrics()
	if reg == nil {
		return
	}
	reg.Counter("queries_total").Add(1)
	if err != nil {
		reg.Counter("query_errors_total").Add(1)
	}
	reg.Histogram("query_ms").Observe(float64(d) / float64(time.Millisecond))
	reg.Counter("source_fetches_total").Add(int64(stats.SourceFetches))
	reg.Counter("source_pushes_total").Add(int64(stats.SourcePushes))
	reg.Counter("tuples_shipped_total").Add(int64(stats.TuplesShipped))
	reg.Counter("bytes_shipped_total").Add(stats.BytesShipped)
	reg.Counter("cache_hits_total").Add(int64(stats.CacheHits))
	reg.Counter("cache_misses_total").Add(int64(stats.CacheMisses))
	reg.Counter("retries_total").Add(int64(stats.Retries))
	reg.Counter("redials_total").Add(int64(stats.Redials))
	for name, h := range m.Health() {
		var v int64
		switch h.State {
		case "half-open":
			v = 1
		case "open":
			v = 2
		}
		reg.Gauge("breaker_state_" + name).Set(v)
	}
}

// Query composes, optimizes and executes a YAT_L query.
func (m *Mediator) Query(querySrc string) (*Result, error) {
	naive, err := m.Compose(querySrc)
	if err != nil {
		return nil, err
	}
	opt, err := optimizer.New(m.optimizerOptions()).OptimizeChecked(naive)
	if err != nil {
		return nil, err
	}
	if err := m.lintBeforeExec("optimized", opt); err != nil {
		return nil, err
	}
	ctx := m.newContext()
	start := time.Now()
	t, err := opt.Eval(ctx)
	m.recordQuery(time.Since(start), *ctx.Stats, err)
	if err != nil {
		return nil, err
	}
	return &Result{
		Tab:       t,
		NaivePlan: algebra.Describe(naive),
		Plan:      algebra.Describe(opt),
		Stats:     *ctx.Stats,
	}, nil
}

// ExecOptions configure plan execution for ExecuteContext: Parallelism
// bounds the worker pool (1 = serial, the exact behaviour of Query), FanOut
// bounds one DJoin's in-flight sub-queries, Timeout is the per-query
// deadline, BatchChunk sizes batched DJoin pushes, PerRowDJoin restores the
// one-push-per-row baseline, CacheSize installs a shared wrapper-result
// cache (kept warm across queries), Trace collects a per-operator span
// tree returned in Result.Trace, and Stream/StreamBuffer route execution
// through the chunked pipeline (StreamContext drained to a table).
// Non-positive BatchChunk or StreamBuffer values are rejected up front by
// Validate, which every mediator entry point calls.
type ExecOptions = exec.Options

// typecheckConfig builds the inference configuration from the imported
// structures (capability exports and ImportStructure calls).
func (m *Mediator) typecheckConfig() *typecheck.Config {
	m.regMu.RLock()
	defer m.regMu.RUnlock()
	st := make(map[string]typecheck.Structure, len(m.structures))
	for doc, s := range m.structures {
		st[doc] = typecheck.Structure{Model: s.Model, Pattern: s.Pattern}
	}
	return &typecheck.Config{Structures: st}
}

// TypecheckPlan runs pattern-type inference over a plan under the
// mediator's imported structures (the console's `typecheck` command and
// the wire conformance mode both build on it).
func (m *Mediator) TypecheckPlan(plan algebra.Op) (*typecheck.Annotation, error) {
	return typecheck.Infer(plan, m.typecheckConfig())
}

// ConformanceError reports a wrapper response row that does not
// instantiate the inferred type of the pushed plan (wire conformance mode,
// ExecOptions.CheckTypes).
type ConformanceError struct {
	Source  string
	Column  string
	Row     int
	Pattern string
}

func (e *ConformanceError) Error() string {
	return fmt.Sprintf("mediator: wire conformance violation: source %s shipped row %d whose column %s does not instantiate %s",
		e.Source, e.Row, e.Column, e.Pattern)
}

// installWireChecker attaches the wire conformance validator to the
// evaluation context when the options request it: every shipped wrapper
// row is checked against the SourceQuery's inferred column types, a
// violation aborts the query with a ConformanceError and increments the
// type_violations_total counter.
func (m *Mediator) installWireChecker(actx *algebra.Context, plan algebra.Op, opts ExecOptions) {
	if !opts.CheckTypes {
		return
	}
	ann, err := m.TypecheckPlan(plan)
	if err != nil {
		return // malformed plans are the lint gate's concern
	}
	actx.CheckWire = func(q *algebra.SourceQuery, t *tab.Tab) error {
		rt := ann.Types[q]
		if rt == nil || t == nil {
			return nil
		}
		for ci, col := range t.Cols {
			p := rt.Type(col)
			if p == nil {
				continue
			}
			for ri, row := range t.Rows {
				if !typecheck.CellConforms(ann.Model, p, row[ci]) {
					if reg := m.Metrics(); reg != nil {
						reg.Counter("type_violations_total").Add(1)
					}
					return &ConformanceError{Source: q.Source, Column: col, Row: ri, Pattern: p.String()}
				}
			}
		}
		return nil
	}
}

// ExecuteContext composes, optimizes and executes a YAT_L query on the
// parallel execution engine of internal/exec, under a cancellation context
// and the given execution options. With Parallelism=1 it returns exactly
// what Query returns (the serial path stays available so experiment
// baselines remain comparable); with Parallelism>1, independent subplans
// and DJoin sub-queries evaluate concurrently, with identical result rows
// and identical statistics.
func (m *Mediator) ExecuteContext(ctx context.Context, querySrc string, opts ExecOptions) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Stream {
		// The streamed pipeline is the same path drained to a table: byte-
		// identical rows, bounded intermediate memory.
		return m.executeStreamed(ctx, querySrc, opts)
	}
	if opts.CacheSize > 0 {
		m.ensureCache(opts.CacheSize)
	}
	naive, err := m.Compose(querySrc)
	if err != nil {
		return nil, err
	}
	opt, err := optimizer.New(m.optimizerOptions()).OptimizeChecked(naive)
	if err != nil {
		return nil, err
	}
	if err := m.lintBeforeExec("optimized", opt); err != nil {
		return nil, err
	}
	actx := m.newContext()
	if opts.AllowPartial {
		// Pre-attach the report: Run operates on a shallow copy of the
		// context, so a report it creates itself would be unreadable here.
		actx.Partial = algebra.NewPartialReport()
	}
	m.installWireChecker(actx, opt, opts)
	root := m.attachTrace(actx, opts)
	start := time.Now()
	t, err := exec.New(opts).Run(ctx, opt, actx)
	finishTrace(root, t, err)
	m.recordQuery(time.Since(start), *actx.Stats, err)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Tab:       t,
		NaivePlan: algebra.Describe(naive),
		Plan:      algebra.Describe(opt),
		Stats:     *actx.Stats,
		Trace:     root,
	}
	if actx.Partial != nil {
		res.SourceErrors = actx.Partial.Failures()
	}
	return res, nil
}

// attachTrace mints a root span on the evaluation context when the options
// ask for tracing, returning it (nil otherwise).
func (m *Mediator) attachTrace(actx *algebra.Context, opts ExecOptions) *obs.Span {
	if !opts.Trace {
		return nil
	}
	root := obs.NewTrace("query")
	actx.Trace = root
	return root
}

// finishTrace closes a query's root span (no-op for untraced runs).
func finishTrace(root *obs.Span, t *tab.Tab, err error) {
	if root == nil {
		return
	}
	rows := -1
	if t != nil {
		rows = t.Len()
	}
	root.Finish(rows, err)
}

// ExecutePlan executes an already-built algebra plan on the execution
// engine, under the mediator's catalog, guards and (with CheckInvariants)
// the planlint gate. It serves callers that assemble plans outside the
// YAT_L pipeline — tests exercising degradation shapes, or tools replaying
// optimizer output — with the same health tracking and partial-result
// reporting as ExecuteContext.
func (m *Mediator) ExecutePlan(ctx context.Context, plan algebra.Op, opts ExecOptions) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.CacheSize > 0 {
		m.ensureCache(opts.CacheSize)
	}
	if err := m.lintBeforeExec("custom", plan); err != nil {
		return nil, err
	}
	actx := m.newContext()
	if opts.AllowPartial {
		actx.Partial = algebra.NewPartialReport()
	}
	m.installWireChecker(actx, plan, opts)
	root := m.attachTrace(actx, opts)
	start := time.Now()
	t, err := exec.New(opts).Run(ctx, plan, actx)
	finishTrace(root, t, err)
	m.recordQuery(time.Since(start), *actx.Stats, err)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Tab:   t,
		Plan:  algebra.Describe(plan),
		Stats: *actx.Stats,
		Trace: root,
	}
	if actx.Partial != nil {
		res.SourceErrors = actx.Partial.Failures()
	}
	return res, nil
}

// QueryCustom composes and executes a query with a tuned optimizer
// configuration; tune may flip the ablation switches (used by the
// EXPERIMENTS.md driver to isolate the contribution of each round).
func (m *Mediator) QueryCustom(querySrc string, tune func(*optimizer.Options)) (*Result, error) {
	naive, err := m.Compose(querySrc)
	if err != nil {
		return nil, err
	}
	opts := m.optimizerOptions()
	if tune != nil {
		tune(&opts)
	}
	opt, err := optimizer.New(opts).OptimizeChecked(naive)
	if err != nil {
		return nil, err
	}
	if err := m.lintBeforeExec("optimized", opt); err != nil {
		return nil, err
	}
	ctx := m.newContext()
	t, err := opt.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return &Result{
		Tab:       t,
		NaivePlan: algebra.Describe(naive),
		Plan:      algebra.Describe(opt),
		Stats:     *ctx.Stats,
	}, nil
}

// QueryNaive composes and executes a query without optimization: the view
// is materialized and the query evaluated on the result (the naive strategy
// of Section 5.2).
func (m *Mediator) QueryNaive(querySrc string) (*Result, error) {
	naive, err := m.Compose(querySrc)
	if err != nil {
		return nil, err
	}
	if err := m.lintBeforeExec("naive", naive); err != nil {
		return nil, err
	}
	ctx := m.newContext()
	t, err := naive.Eval(ctx)
	if err != nil {
		return nil, err
	}
	return &Result{Tab: t, NaivePlan: algebra.Describe(naive), Plan: algebra.Describe(naive), Stats: *ctx.Stats}, nil
}

// Materialize evaluates a view and returns its document forest (used by
// examples to display the integrated XML).
func (m *Mediator) Materialize(view string) (*tab.Tab, error) {
	v := m.View(view)
	if v == nil {
		return nil, fmt.Errorf("mediator: unknown view %q", view)
	}
	plan, err := m.substituteViews(v.Plan, 1)
	if err != nil {
		return nil, err
	}
	return plan.Eval(m.newContext())
}

// MaterializeProgram evaluates every registered view within one shared
// context, so that Skolem identifiers fuse across rules (the object fusion
// of Section 2: "partial results are connected together through Skolem
// functions"). A reference created by one rule — e.g. &person($o) inside
// artworks() — resolves to the tree another rule builds with the same
// Skolem function and arguments. It returns one forest per view plus the
// store resolving every identifier minted during materialization.
func (m *Mediator) MaterializeProgram() (map[string]data.Forest, *data.Store, error) {
	ctx := m.newContext()
	out := map[string]data.Forest{}
	for _, name := range m.Views() {
		plan, err := m.substituteViews(m.View(name).Plan, 1)
		if err != nil {
			return nil, nil, err
		}
		t, err := plan.Eval(ctx)
		if err != nil {
			return nil, nil, fmt.Errorf("view %s: %w", name, err)
		}
		var forest data.Forest
		for _, r := range t.Rows {
			if r[0].Kind == tab.CTree {
				forest = append(forest, r[0].Tree)
			}
		}
		out[name] = forest
		ctx.Catalog[name] = forest
	}
	return out, ctx.Store, nil
}

// Describe renders a summary of the mediator's state (console `status`).
func (m *Mediator) Describe() string {
	m.regMu.RLock()
	sources := make(map[string]algebra.Source, len(m.sources))
	for n, s := range m.sources {
		sources[n] = s
	}
	views := append([]string(nil), m.viewOrder...)
	m.regMu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "sources:\n")
	for n, s := range sources {
		fmt.Fprintf(&b, "  %s exports %s\n", n, strings.Join(s.Documents(), ", "))
	}
	fmt.Fprintf(&b, "views: %s\n", strings.Join(views, ", "))
	return b.String()
}
