package mediator

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/filter"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/tab"
)

// lyingSource answers every push with a canned table — including rows that
// violate the schema its capability interface declares.
type lyingSource struct{ rows *tab.Tab }

func (s *lyingSource) Name() string        { return "liar" }
func (s *lyingSource) Documents() []string { return []string{"docs"} }
func (s *lyingSource) Fetch(string) (data.Forest, error) {
	return nil, fmt.Errorf("liar: no fetch")
}
func (s *lyingSource) Push(algebra.Op, map[string]tab.Cell) (*tab.Tab, error) {
	return s.rows, nil
}

// liarInterface declares bind capability over docs plus the structural
// schema doc[ *item[ name[String] ] ] — the claim the source then breaks.
func liarInterface() *capability.Interface {
	iface := capability.NewInterface("liar")
	fm := capability.NewFModel("F")
	fm.Define("Doc", &capability.FT{Kind: pattern.KAny})
	iface.FModels = []*capability.FModel{fm}
	iface.Binds["docs"] = capability.BindCap{FModel: "F", FPattern: "Doc"}
	iface.Operations = []capability.Operation{{Name: "bind", Kind: "algebra"}}
	m := pattern.NewModel("liar")
	m.Define("Doc", pattern.NodeItems("doc",
		pattern.Starred(pattern.Node("item", pattern.Node("name", pattern.Str())))))
	iface.Structures["docs"] = capability.StructureRef{Model: m, Pattern: "Doc"}
	return iface
}

// TestCheckTypesCatchesLyingSource: the wire conformance mode validates
// each shipped row against the pushed plan's inferred type. The structure
// is seeded purely from the capability interface on Connect — no explicit
// ImportStructure.
func TestCheckTypesCatchesLyingSource(t *testing.T) {
	rows := tab.New("$n")
	rows.AddRow(tab.Row{tab.AtomCell(data.String("fine"))})
	rows.AddRow(tab.Row{tab.AtomCell(data.Int(42))}) // violates name: String
	m := New()
	if err := m.Connect(&lyingSource{rows: rows}, liarInterface()); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.structures["docs"]; !ok {
		t.Fatal("Connect did not seed the structure from the capability interface")
	}
	m.SetMetrics(obs.NewRegistry())
	plan := &algebra.SourceQuery{Source: "liar", Plan: &algebra.Bind{
		Doc: "docs", F: filter.MustParse(`doc[ *item[ name: $n ] ]`),
	}}

	// Unchecked, the lie sails through.
	res, err := m.ExecutePlan(context.Background(), plan, ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatalf("unchecked execution: %v", err)
	}
	if res.Tab.Len() != 2 {
		t.Fatalf("unchecked rows = %d, want 2", res.Tab.Len())
	}

	// Checked, the query aborts with a structured violation and the
	// counter ticks.
	_, err = m.ExecutePlan(context.Background(), plan, ExecOptions{Parallelism: 1, CheckTypes: true})
	var ce *ConformanceError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ConformanceError", err)
	}
	if ce.Source != "liar" || ce.Column != "$n" || ce.Row != 1 {
		t.Errorf("violation = %+v", ce)
	}
	if got := m.Metrics().Counter("type_violations_total").Value(); got != 1 {
		t.Errorf("type_violations_total = %d, want 1", got)
	}
}

// TestCheckTypesWireEndToEnd runs Fig. 9's Q2 over live wire wrappers in
// wire conformance mode: with the truthfully imported structures the
// checked run returns exactly the unchecked result; after re-importing a
// deliberately wrong works schema (artist declared Int) the same query
// aborts with a ConformanceError naming the XML wrapper.
func TestCheckTypesWireEndToEnd(t *testing.T) {
	m, _ := deployFaulty(t, 40, nil, nil)
	ctx := context.Background()
	plain, err := m.ExecuteContext(ctx, datagen.Q2Src, ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	checked, err := m.ExecuteContext(ctx, datagen.Q2Src, ExecOptions{Parallelism: 1, CheckTypes: true})
	if err != nil {
		t.Fatalf("conforming wire traffic rejected: %v", err)
	}
	if !plain.Tab.Equal(checked.Tab) {
		t.Fatal("type checking changed the result rows")
	}

	wrong := pattern.MustParseModel(`model Wrong
Works := works[ *&Work ]
Work  := work[ artist: Int, title: String, style: String, size: String,
               *&Field ]
Field := Symbol[ *( Int | Float | Bool | String | &Field ) ]`)
	m.ImportStructure("works", wrong, "Works")
	_, err = m.ExecuteContext(ctx, datagen.Q2Src, ExecOptions{Parallelism: 1, CheckTypes: true})
	var ce *ConformanceError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ConformanceError", err)
	}
	if ce.Source != "xmlartwork" {
		t.Errorf("violation source = %q, want xmlartwork", ce.Source)
	}
}
