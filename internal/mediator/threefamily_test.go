package mediator

import (
	"context"
	"errors"
	"net"
	"reflect"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/datagen"
	"repro/internal/feed"
	"repro/internal/filter"
	"repro/internal/o2wrap"
	"repro/internal/waiswrap"
	"repro/internal/wire"
)

// Three-family deployment: the Figure 2 pair (O₂ + Wais) extended with the
// bulk-feed wrapper, all three behind real wire connections. The feed store
// ingests a generated dump, so the deployment exercises the whole ingest
// pipeline before the first query.

const threeFamilyN = 60

// deployThreeFamilies connects o2artifact, xmlartwork and bulkfeed to one
// mediator over TCP and returns a kill switch for the feed wrapper.
func deployThreeFamilies(t *testing.T, n int) (*Mediator, func()) {
	t.Helper()
	w := datagen.Generate(datagen.DefaultParams(n))
	ow := o2wrap.New("o2artifact", w.DB)
	schema := ow.ExportSchema()
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(w.Works))
	fw := feed.New("bulkfeed", datagen.NewFeedStore(datagen.GenerateFeed(datagen.DefaultFeedParams(n))))
	deploys := []wire.Exported{
		{Source: ow, Interface: ow.ExportInterface(),
			Structures: map[string]wire.StructureRef{
				"artifacts": {Model: schema, Pattern: "Artifact"},
				"persons":   {Model: schema, Pattern: "Person"},
			}},
		{Source: ww, Interface: ww.ExportInterface(),
			Structures: map[string]wire.StructureRef{
				"works": {Model: ww.ExportStructure(), Pattern: "Works"},
			}},
		{Source: fw, Interface: fw.ExportInterface(),
			Structures: map[string]wire.StructureRef{
				"records": {Model: fw.ExportStructure(), Pattern: "Records"},
			}},
	}
	m := New()
	var killFeed func()
	for i, exp := range deploys {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tl := &trackingListener{Listener: ln}
		if i == 2 {
			killFeed = tl.kill
		}
		srv := wire.Serve(tl, exp)
		c, err := wire.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		t.Cleanup(func() { c.Close() })
		iface, err := c.ImportInterface()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Connect(c, iface); err != nil {
			t.Fatal(err)
		}
		sts, err := c.ImportStructures()
		if err != nil {
			t.Fatal(err)
		}
		for doc, ref := range sts {
			m.ImportStructure(doc, ref.Model, ref.Pattern)
		}
	}
	m.RegisterFunc("contains", waiswrap.Contains)
	m.RegisterFunc("prefix", feed.Prefix)
	return m, killFeed
}

// threeFamilyUnion builds one title branch per wrapper family; each branch
// survives alone, so killing one source must cost exactly its rows.
func threeFamilyUnion() algebra.Op {
	return &algebra.Union{
		L: &algebra.Union{
			L: &algebra.Bind{Doc: "artifacts",
				F: filter.MustParse(`set[ *class[ artifact.tuple[ title: $t ] ] ]`)},
			R: &algebra.Bind{Doc: "works",
				F: filter.MustParse(`works[ *work[ title: $t ] ]`)},
		},
		R: &algebra.Bind{Doc: "records",
			F: filter.MustParse(`records[ *record[ title: $t ] ]`)},
	}
}

func TestThreeFamilyAllowPartial(t *testing.T) {
	m, killFeed := deployThreeFamilies(t, threeFamilyN)
	full, err := m.ExecutePlan(context.Background(), threeFamilyUnion(), ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Tab.Len() == 0 || len(full.SourceErrors) != 0 {
		t.Fatalf("clean run: %d rows, errors %v", full.Tab.Len(), full.SourceErrors)
	}

	// The feed wrapper goes fully down: listener and live connections.
	killFeed()

	// Strict execution fails with the typed outage naming the feed source.
	_, err = m.ExecutePlan(context.Background(), threeFamilyUnion(), ExecOptions{Parallelism: 1})
	var ue *algebra.UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("strict execution with dead feed = %v, want UnavailableError", err)
	}
	if ue.Source != "bulkfeed" {
		t.Errorf("unavailable source = %q, want bulkfeed", ue.Source)
	}

	// AllowPartial keeps the O₂ and Wais rows and reports the feed outage.
	var serial *Result
	for _, par := range []int{1, 4} {
		partial, err := m.ExecutePlan(context.Background(), threeFamilyUnion(),
			ExecOptions{Parallelism: par, AllowPartial: true})
		if err != nil {
			t.Fatalf("AllowPartial par=%d: %v", par, err)
		}
		if partial.Tab.Len() == 0 || partial.Tab.Len() >= full.Tab.Len() {
			t.Fatalf("par=%d partial rows = %d, want strictly between 0 and %d",
				par, partial.Tab.Len(), full.Tab.Len())
		}
		if len(partial.SourceErrors) != 1 || partial.SourceErrors[0].Source != "bulkfeed" {
			t.Fatalf("par=%d SourceErrors = %v, want exactly bulkfeed", par, partial.SourceErrors)
		}
		if serial == nil {
			serial = partial
		} else if !partial.Tab.EqualUnordered(serial.Tab) {
			t.Errorf("parallel partial rows differ from serial:\n%s\nvs:\n%s", partial.Tab, serial.Tab)
		}
	}
}

func TestThreeFamilyAllowPartialStreaming(t *testing.T) {
	m, killFeed := deployThreeFamilies(t, threeFamilyN)
	s, err := m.StreamPlan(context.Background(), threeFamilyUnion(), ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	fullTab, fullRes := drainStream(t, s)
	if fullTab.Len() == 0 || len(fullRes.SourceErrors) != 0 {
		t.Fatalf("clean stream: %d rows, errors %v", fullTab.Len(), fullRes.SourceErrors)
	}

	killFeed()

	// The streaming path degrades the same way as the materialized one: the
	// live sources' frames arrive, the outage lands in Result.SourceErrors.
	for _, par := range []int{1, 4} {
		s, err := m.StreamPlan(context.Background(), threeFamilyUnion(),
			ExecOptions{Parallelism: par, AllowPartial: true})
		if err != nil {
			t.Fatalf("AllowPartial stream par=%d: %v", par, err)
		}
		got, res := drainStream(t, s)
		if got.Len() == 0 || got.Len() >= fullTab.Len() {
			t.Fatalf("par=%d streamed partial rows = %d, want strictly between 0 and %d",
				par, got.Len(), fullTab.Len())
		}
		if len(res.SourceErrors) != 1 || res.SourceErrors[0].Source != "bulkfeed" {
			t.Fatalf("par=%d stream SourceErrors = %v, want exactly bulkfeed", par, res.SourceErrors)
		}
	}
}

// TestFeedPushdownSplitsSupportedPredicates is the feed-family acceptance
// check: the equality on journal is within the published profile and must
// ship to the wrapper as a source query, while the ordering comparison on
// year is outside it (the feed declares no lt/gt) and must stay behind as a
// mediator-side Select over the pushed rows.
func TestFeedPushdownSplitsSupportedPredicates(t *testing.T) {
	m, _ := deployThreeFamilies(t, threeFamilyN)
	const src = `
MAKE result[ title: $t, year: $y ]
MATCH records WITH records[ *record[ title: $t, journal: $j, year: $y ] ]
WHERE $j = "Journal of Modern Art" AND $y > 1900
`
	naive, err := m.QueryNaive(src)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := m.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	want := renderRows(naive.Tab)
	if len(want) == 0 {
		t.Fatal("naive run returned no rows; corpus too small for the check")
	}
	if got := renderRows(opt.Tab); !reflect.DeepEqual(got, want) {
		t.Fatalf("optimized rows differ: %v vs %v\n%s", got, want, opt.Plan)
	}
	if !strings.Contains(opt.Plan, "SourceQuery(bulkfeed)") {
		t.Errorf("journal equality not pushed to the feed wrapper:\n%s", opt.Plan)
	}
	// The unsupported ordering comparison survives as a mediator-side
	// Select above the source query.
	if !strings.Contains(opt.Plan, "Select($y > 1900)") {
		t.Errorf("year predicate must stay mediator-side:\n%s", opt.Plan)
	}
	if opt.Stats.SourcePushes == 0 {
		t.Errorf("stats = %+v, want at least one source push", opt.Stats)
	}
	if naive.Stats.SourceFetches == 0 {
		t.Errorf("naive stats = %+v, expected document fetches", naive.Stats)
	}
	if opt.Stats.SourceFetches >= naive.Stats.SourceFetches {
		t.Errorf("pushdown did not reduce fetches: opt=%d naive=%d",
			opt.Stats.SourceFetches, naive.Stats.SourceFetches)
	}
}

// The declared prefix operation pushes as an external call; rows must match
// the naive evaluation through the registered mediator function.
func TestFeedPushdownPrefixCall(t *testing.T) {
	m, _ := deployThreeFamilies(t, threeFamilyN)
	const src = `
MAKE result[ title: $t, journal: $j ]
MATCH records WITH records[ *record[ title: $t, journal: $j ] ]
WHERE prefix($j, "Journal of")
`
	naive, err := m.QueryNaive(src)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := m.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	want := renderRows(naive.Tab)
	if len(want) == 0 {
		t.Fatal("naive prefix query returned no rows")
	}
	for _, r := range naive.Tab.Rows {
		if j := r[0].Tree.Child("journal"); j == nil || !strings.HasPrefix(j.Atom.S, "Journal of") {
			t.Fatalf("naive row outside the prefix: %s", r[0].Tree)
		}
	}
	if got := renderRows(opt.Tab); !reflect.DeepEqual(got, want) {
		t.Fatalf("optimized rows differ: %v vs %v\n%s", got, want, opt.Plan)
	}
	for _, frag := range []string{"SourceQuery(bulkfeed)", "prefix("} {
		if !strings.Contains(opt.Plan, frag) {
			t.Errorf("plan missing %q:\n%s", frag, opt.Plan)
		}
	}
	if opt.Stats.SourcePushes == 0 {
		t.Errorf("stats = %+v, want at least one source push", opt.Stats)
	}
}

// Sanity for the union fixture itself: the feed branch contributes rows
// through the wire Bind path (whole-document fetch plus mediator-side
// match), proving fetch interop independent of pushdown.
func TestThreeFamilyUnionFeedRows(t *testing.T) {
	m, killFeed := deployThreeFamilies(t, threeFamilyN)
	full, err := m.ExecutePlan(context.Background(), threeFamilyUnion(), ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	killFeed()
	partial, err := m.ExecutePlan(context.Background(), threeFamilyUnion(),
		ExecOptions{Parallelism: 1, AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	feedRows := full.Tab.Len() - partial.Tab.Len()
	want := datagen.GenerateFeed(datagen.DefaultFeedParams(threeFamilyN))
	if feedRows != len(want.Records) {
		t.Errorf("feed branch contributed %d rows, want %d surviving records",
			feedRows, len(want.Records))
	}
}
