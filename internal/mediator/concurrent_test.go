package mediator

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/tab"
	"repro/internal/waiswrap"
)

// regSource is a minimal source used to exercise Connect during live
// queries; each instance exports one uniquely named document.
type regSource struct{ name string }

func (s *regSource) Name() string                      { return s.name }
func (s *regSource) Documents() []string               { return []string{s.name + ".doc"} }
func (s *regSource) Fetch(string) (data.Forest, error) { return nil, nil }
func (s *regSource) Push(algebra.Op, map[string]tab.Cell) (*tab.Tab, error) {
	return tab.New("x"), nil
}

// TestRegistrationRacesLiveQueries is the regression test for the
// registration-map data race: Connect/DefineView/RegisterFunc/
// ImportStructure mutating the catalog while queries read it through
// newContext/Compose. Before the regMu fix this fails under -race (catalog
// map writes torn against query-side iteration); with it, registrations
// linearize against query admission and every query still answers
// correctly.
func TestRegistrationRacesLiveQueries(t *testing.T) {
	m, _, _ := paperSetup(t)
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")

	want, err := m.ExecuteContext(context.Background(), datagen.Q2Src, ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: keeps registering new catalog entries — fresh sources, views,
	// functions and structures — as a long-running service's operator would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		model := pattern.NewModel("reg")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.Connect(&regSource{name: fmt.Sprintf("reg%d", i)}, nil); err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			m.RegisterFunc(fmt.Sprintf("regfn%d", i), waiswrap.Contains)
			m.ImportStructure(fmt.Sprintf("regdoc%d", i), model, "Works")
			rule := fmt.Sprintf("regview%d() := MAKE r[ t: $t ] MATCH works WITH doc[ *work[ title: $t ] ]", i)
			if err := m.LoadProgram(rule); err != nil {
				t.Errorf("LoadProgram: %v", err)
				return
			}
			_ = m.Describe()
			_ = m.Health()
		}
	}()

	// Readers: live queries against the shared mediator while the catalog
	// churns underneath them. They control the test's duration; the writer
	// stops once they are done.
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 8; i++ {
				res, err := m.ExecuteContext(context.Background(), datagen.Q2Src,
					ExecOptions{Parallelism: 2, Timeout: time.Minute})
				if err != nil {
					t.Errorf("query during registration churn: %v", err)
					return
				}
				if !res.Tab.Equal(want.Tab) {
					t.Errorf("rows diverged during registration churn")
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	wg.Wait()
}

// TestConcurrentSharedMediator drives many concurrent ExecuteContext and
// StreamContext calls through ONE shared Mediator under -race, mixing
// cached and uncached execution, serial and parallel engines, and both
// Q1 and Q2 — every result must be byte-identical to its serial baseline.
func TestConcurrentSharedMediator(t *testing.T) {
	w := datagen.Generate(datagen.DefaultParams(120))
	m, _, _ := setup(t, w.DB, w.Works)
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")

	queries := []string{datagen.Q1Src, datagen.Q2Src}
	want := make([]*tab.Tab, len(queries))
	for i, q := range queries {
		res, err := m.ExecuteContext(context.Background(), q, ExecOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Tab
	}

	const workers = 16
	const iters = 6
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(queries)
				opts := ExecOptions{Parallelism: 1 + (g % 4), Timeout: time.Minute}
				if g%2 == 0 {
					opts.CacheSize = 64 // cached path: shared LRU under contention
				}
				var got *tab.Tab
				if (g+i)%3 == 0 {
					// Streamed path: drain the chunk channel into a table.
					s, err := m.StreamContext(context.Background(), queries[qi], opts)
					if err != nil {
						t.Errorf("worker %d: stream: %v", g, err)
						return
					}
					out := tab.New(s.Cols()...)
					for c := range s.Chunks() {
						for _, r := range c.Rows {
							out.AddRow(r)
						}
					}
					if _, err := s.Result(); err != nil {
						t.Errorf("worker %d: stream result: %v", g, err)
						return
					}
					got = out
				} else {
					res, err := m.ExecuteContext(context.Background(), queries[qi], opts)
					if err != nil {
						t.Errorf("worker %d: execute: %v", g, err)
						return
					}
					got = res.Tab
				}
				if !got.Equal(want[qi]) {
					t.Errorf("worker %d iter %d: rows diverge from serial baseline\nwant (%d rows):\n%s\ngot (%d rows):\n%s",
						g, i, want[qi].Len(), want[qi], got.Len(), got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestHealthSnapshotConcurrent hammers Health against live queries and
// registrations: the single-lock snapshot must stay coherent (every
// connected source present, no torn map) under -race.
func TestHealthSnapshotConcurrent(t *testing.T) {
	m, _, _ := paperSetup(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := m.ExecuteContext(context.Background(), datagen.Q1Src, ExecOptions{Parallelism: 2}); err != nil {
				t.Errorf("query: %v", err)
			}
		}
		close(stop)
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := m.Health()
				for name, sh := range h {
					if sh.State != "closed" && sh.State != "open" && sh.State != "half-open" {
						t.Errorf("source %s: invalid breaker state %q", name, sh.State)
						return
					}
				}
				if len(h) < 2 {
					t.Errorf("health snapshot lost sources: %v", h)
					return
				}
			}
		}()
	}
	wg.Wait()
}
