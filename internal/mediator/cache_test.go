package mediator

import (
	"context"
	"testing"

	"repro/internal/datagen"
)

// TestWarmCacheSkipsPushes is the mediator-level cache contract: with
// ExecOptions.CacheSize set, rerunning a pushdown query answers every wrapper
// push from the installed cache — zero additional round trips, identical rows.
func TestWarmCacheSkipsPushes(t *testing.T) {
	m, _, _ := paperSetup(t)
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")

	opts := ExecOptions{Parallelism: 1, CacheSize: 256}
	cold, err := m.ExecuteContext(context.Background(), datagen.Q2Src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.SourcePushes == 0 {
		t.Fatal("Q2 must push to sources")
	}
	if cold.Stats.CacheHits != 0 {
		t.Errorf("cold run hits = %d", cold.Stats.CacheHits)
	}

	warm, err := m.ExecuteContext(context.Background(), datagen.Q2Src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Tab.Equal(warm.Tab) {
		t.Errorf("warm rows diverge:\ncold:\n%s\nwarm:\n%s", cold.Tab, warm.Tab)
	}
	if warm.Stats.CacheHits == 0 {
		t.Errorf("warm run hits = 0 (stats %+v)", warm.Stats)
	}
	if warm.Stats.SourcePushes != 0 {
		t.Errorf("warm run still pushed %d times", warm.Stats.SourcePushes)
	}

	// Without CacheSize no cache is installed and the counters stay silent.
	m2, _, _ := paperSetup(t)
	m2.Assume("artifacts", "works", "$y > 1800")
	m2.Assume("persons", "works", "$y > 1800")
	plain, err := m2.ExecuteContext(context.Background(), datagen.Q2Src, ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.CacheHits != 0 || plain.Stats.CacheMisses != 0 {
		t.Errorf("uncached run touched cache counters: %+v", plain.Stats)
	}
}

// TestEnableCacheSurvivesAcrossOptions pins the install-once semantics: an
// explicitly enabled cache stays warm across queries even when later calls
// pass a different CacheSize.
func TestEnableCacheSurvivesAcrossOptions(t *testing.T) {
	m, _, _ := paperSetup(t)
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")
	m.EnableCache(64)

	if _, err := m.ExecuteContext(context.Background(), datagen.Q2Src, ExecOptions{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	warm, err := m.ExecuteContext(context.Background(), datagen.Q2Src, ExecOptions{Parallelism: 1, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheHits == 0 {
		t.Errorf("explicitly enabled cache was replaced: %+v", warm.Stats)
	}
	// Disabling drops the cache.
	m.EnableCache(0)
	off, err := m.ExecuteContext(context.Background(), datagen.Q2Src, ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.CacheHits != 0 || off.Stats.SourcePushes == 0 {
		t.Errorf("disabled cache still answering: %+v", off.Stats)
	}
}
