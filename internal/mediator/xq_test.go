package mediator

import (
	"context"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/tab"
)

// renderRows renders every row to its textual form, sorted, so two result
// tables can be compared byte for byte regardless of arrival order.
func renderRows(res *tab.Tab) []string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		var parts []string
		for _, c := range r {
			parts = append(parts, c.String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

// goldenAgainst runs the XQuery text and the hand-built YAT_L source on the
// serial and the parallel engine and requires all four row sets identical.
func goldenAgainst(t *testing.T, m *Mediator, xquerySrc, yatlSrc string, wantRows int) {
	t.Helper()
	hand, err := m.Query(yatlSrc)
	if err != nil {
		t.Fatal(err)
	}
	if hand.Tab.Len() != wantRows {
		t.Fatalf("hand-built rows = %d, want %d\n%s", hand.Tab.Len(), wantRows, hand.Tab)
	}
	want := renderRows(hand.Tab)

	compiled, err := m.Query(xquerySrc)
	if err != nil {
		t.Fatalf("compiled query: %v", err)
	}
	if got := renderRows(compiled.Tab); !reflect.DeepEqual(got, want) {
		t.Errorf("serial rows differ\ncompiled: %v\nhand:     %v\nplan:\n%s", got, want, compiled.Plan)
	}

	par, err := m.ExecuteContext(context.Background(), xquerySrc, ExecOptions{Parallelism: 4})
	if err != nil {
		t.Fatalf("compiled query (parallel): %v", err)
	}
	if got := renderRows(par.Tab); !reflect.DeepEqual(got, want) {
		t.Errorf("parallel rows differ\ncompiled: %v\nhand:     %v", got, want)
	}

	naive, err := m.QueryNaive(xquerySrc)
	if err != nil {
		t.Fatalf("compiled query (naive): %v", err)
	}
	if got := renderRows(naive.Tab); !reflect.DeepEqual(got, want) {
		t.Errorf("naive rows differ\ncompiled: %v\nhand:     %v", got, want)
	}
}

func TestXQueryQ1Golden(t *testing.T) {
	m, _, _ := paperSetup(t)
	goldenAgainst(t, m, datagen.Q1XQuerySrc, datagen.Q1Src, 1)
}

func TestXQueryQ2Golden(t *testing.T) {
	m, _, _ := paperSetup(t)
	goldenAgainst(t, m, datagen.Q2XQuerySrc, datagen.Q2Src, 1)
}

// TestXQueryDescendantPushdown is the acceptance check for axis pushdown: a
// descendant step compiles to pre/post range predicates over the source's
// node table, and the optimizer ships them to the wrapper instead of
// fetching the whole table and filtering mediator-side.
func TestXQueryDescendantPushdown(t *testing.T) {
	m, _, _ := paperSetup(t)
	const src = `doc("works")/works//technique`

	naive, err := m.QueryNaive(src)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := m.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	want := renderRows(naive.Tab)
	if len(want) != 1 || !strings.Contains(want[0], "Oil on canvas") {
		t.Fatalf("naive rows = %v", want)
	}
	if got := renderRows(opt.Tab); !reflect.DeepEqual(got, want) {
		t.Fatalf("optimized rows differ: %v vs %v\n%s", got, want, opt.Plan)
	}
	if !strings.Contains(opt.Plan, "SourceQuery") {
		t.Errorf("axis predicates not pushed:\n%s", opt.Plan)
	}
	if opt.Stats.SourcePushes == 0 {
		t.Errorf("stats = %+v, want at least one source push", opt.Stats)
	}
	// The pushed plan must ship strictly fewer mediator-side rows than the
	// fetch-everything naive plan (the whole point of pushing the axis).
	if naive.Stats.SourceFetches == 0 {
		t.Errorf("naive stats = %+v, expected table fetches", naive.Stats)
	}
	if opt.Stats.SourceFetches >= naive.Stats.SourceFetches {
		t.Errorf("pushdown did not reduce fetches: opt=%d naive=%d",
			opt.Stats.SourceFetches, naive.Stats.SourceFetches)
	}
}
