package mediator

import (
	"context"
	"io"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/tab"
)

// Stream is one live streamed query: result chunks arrive on a bounded
// channel as the pipeline produces them, so the consumer's pace
// backpressures the whole plan down to the wrappers and the mediator never
// holds more than the buffer. The consumer ranges over Chunks() and then
// reads the terminal outcome from Result (or Err); abandoning early via
// Close cancels the producing pipeline, which propagates to in-flight
// wrapper streams.
type Stream struct {
	cols   []string
	chunks chan *tab.Tab

	cancel   context.CancelFunc
	stop     chan struct{} // closed by Close: unblocks a pump mid-send
	stopOnce sync.Once
	done     chan struct{} // closed when the pump exits

	mu  sync.Mutex
	err error
	res *Result
}

// Cols reports the result column set, known before the first chunk.
func (s *Stream) Cols() []string { return append([]string(nil), s.cols...) }

// Chunks is the bounded result channel. It is closed after the last chunk
// (or after a failure — check Err or Result then).
func (s *Stream) Chunks() <-chan *tab.Tab { return s.chunks }

// Err reports the stream's failure, if any; valid once Chunks is closed.
func (s *Stream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Result blocks until the stream terminates and returns the query outcome:
// plans, statistics, trace and partial-failure report. Result.Tab is nil —
// the rows went through Chunks and were never retained. An AllowPartial
// stream that degraded reports the unreachable sources in SourceErrors; the
// rows already streamed stand as a lower bound of the complete answer.
func (s *Stream) Result() (*Result, error) {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return nil, s.err
	}
	return s.res, nil
}

// Close abandons the stream: the producing pipeline is cancelled, in-flight
// wrapper streams are torn down, and the chunk channel drains and closes.
// Closing a finished stream is a no-op. Safe to call concurrently with a
// consumer blocked on Chunks.
func (s *Stream) Close() {
	s.stopOnce.Do(func() {
		s.cancel()
		close(s.stop)
	})
	<-s.done
}

// StreamContext composes, optimizes and executes a query exactly like
// ExecuteContext, but returns the result as a Stream instead of a
// materialized table: chunks surface as the pipelined engine produces them,
// peak memory is bounded by the chunk buffer (ExecOptions.StreamBuffer
// rows; default 2×tab.DefaultStreamChunk), and the first row arrives long
// before the last wrapper finishes. Retries, circuit breakers, AllowPartial
// degradation, wire conformance checking, tracing and the result cache all
// apply unchanged.
func (m *Mediator) StreamContext(ctx context.Context, querySrc string, opts ExecOptions) (*Stream, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.CacheSize > 0 {
		m.ensureCache(opts.CacheSize)
	}
	naive, err := m.Compose(querySrc)
	if err != nil {
		return nil, err
	}
	opt, err := optimizer.New(m.optimizerOptions()).OptimizeChecked(naive)
	if err != nil {
		return nil, err
	}
	if err := m.lintBeforeExec("optimized", opt); err != nil {
		return nil, err
	}
	return m.streamPlan(ctx, naive, opt, opts)
}

// StreamPlan is StreamContext for an already-built plan (the ExecutePlan
// analogue).
func (m *Mediator) StreamPlan(ctx context.Context, plan algebra.Op, opts ExecOptions) (*Stream, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.CacheSize > 0 {
		m.ensureCache(opts.CacheSize)
	}
	if err := m.lintBeforeExec("custom", plan); err != nil {
		return nil, err
	}
	return m.streamPlan(ctx, nil, plan, opts)
}

func (m *Mediator) streamPlan(ctx context.Context, naive, opt algebra.Op, opts ExecOptions) (*Stream, error) {
	actx := m.newContext()
	if opts.AllowPartial {
		actx.Partial = algebra.NewPartialReport()
	}
	m.installWireChecker(actx, opt, opts)
	root := m.attachTrace(actx, opts)
	// The cancel lever covers the whole pipeline: Close (abandon) cancels
	// it, which unblocks any in-flight pull down to the wrapper reads.
	sctx, cancel := context.WithCancel(ctx)
	start := time.Now()
	cur, err := exec.New(opts).Stream(sctx, opt, actx)
	if err != nil {
		cancel()
		if root != nil {
			root.Finish(-1, err)
		}
		m.recordQuery(time.Since(start), *actx.Stats, err)
		return nil, err
	}
	buf := opts.StreamBuffer
	if buf <= 0 {
		buf = 2 * tab.DefaultStreamChunk
	}
	depth := buf / tab.DefaultStreamChunk
	if depth < 1 {
		depth = 1
	}
	s := &Stream{
		cols:   cur.Cols(),
		chunks: make(chan *tab.Tab, depth),
		cancel: cancel,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	res := &Result{Plan: algebra.Describe(opt), Trace: root}
	if naive != nil {
		res.NaivePlan = algebra.Describe(naive)
	}
	go s.pump(cur, m, actx, root, res, start)
	return s, nil
}

// pump pulls chunks from the pipeline into the bounded channel until EOF,
// failure or abandon, then settles the stream's outcome: trace root closed
// with the row count, metrics recorded, statistics and the partial report
// snapshotted into the Result.
func (s *Stream) pump(cur tab.Cursor, m *Mediator, actx *algebra.Context, root *obs.Span, res *Result, start time.Time) {
	defer close(s.done)
	defer close(s.chunks)
	rows := 0
	var err error
pull:
	for {
		t, nerr := cur.Next()
		if nerr == io.EOF {
			break
		}
		if nerr != nil {
			err = nerr
			break
		}
		if t.Len() == 0 {
			continue
		}
		select {
		case s.chunks <- t:
			rows += t.Len()
		case <-s.stop:
			break pull // abandoned: the consumer is gone
		}
	}
	cur.Close()
	if root != nil {
		if err != nil {
			root.Finish(-1, err)
		} else {
			root.Finish(rows, nil)
		}
	}
	m.recordQuery(time.Since(start), *actx.Stats, err)
	res.Stats = *actx.Stats
	if actx.Partial != nil {
		res.SourceErrors = actx.Partial.Failures()
	}
	s.mu.Lock()
	s.err = err
	s.res = res
	s.mu.Unlock()
}

// executeStreamed is ExecuteContext routed through the streaming pipeline
// (ExecOptions.Stream): the same Result, produced by draining the chunk
// stream instead of materializing bottom-up. Row content and order match
// the serial materialized engine; only peak memory and time-to-first-row
// differ.
func (m *Mediator) executeStreamed(ctx context.Context, querySrc string, opts ExecOptions) (*Result, error) {
	s, err := m.StreamContext(ctx, querySrc, opts)
	if err != nil {
		return nil, err
	}
	out := tab.New(s.Cols()...)
	for t := range s.Chunks() {
		for _, r := range t.Rows {
			out.AddRow(r)
		}
	}
	res, err := s.Result()
	if err != nil {
		return nil, err
	}
	res.Tab = out
	return res, nil
}
