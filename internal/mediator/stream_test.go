package mediator

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/tab"
)

// drainStream consumes a Stream to completion and returns the materialized
// rows plus the settled Result.
func drainStream(t *testing.T, s *Stream) (*tab.Tab, *Result) {
	t.Helper()
	out := tab.New(s.Cols()...)
	for c := range s.Chunks() {
		for _, r := range c.Rows {
			out.AddRow(r)
		}
	}
	res, err := s.Result()
	if err != nil {
		t.Fatalf("stream failed: %v", err)
	}
	return out, res
}

func TestStreamMatchesMaterializedInProcess(t *testing.T) {
	// The fidelity contract: a streamed query returns exactly the rows of
	// the materialized serial engine — byte-identical under serial
	// execution, bag-equal under parallel (Union interleaves child chunks).
	m, _, _ := paperSetup(t)
	for _, q := range []struct {
		name, src string
	}{
		{"Q1", datagen.Q1Src},
		{"Q2", datagen.Q2Src},
	} {
		t.Run(q.name, func(t *testing.T) {
			base, err := m.ExecuteContext(context.Background(), q.src, ExecOptions{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			// Direct StreamContext drain, serial: order-identical.
			s, err := m.StreamContext(context.Background(), q.src, ExecOptions{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			rows, res := drainStream(t, s)
			if rows.String() != base.Tab.String() {
				t.Errorf("serial streamed rows not byte-identical:\n%s\nvs materialized:\n%s", rows, base.Tab)
			}
			if res.Tab != nil {
				t.Error("streamed Result retained a materialized Tab")
			}
			// ExecuteContext with Stream routes through the same pipeline and
			// must materialize the identical table.
			st, err := m.ExecuteContext(context.Background(), q.src, ExecOptions{Parallelism: 1, Stream: true})
			if err != nil {
				t.Fatal(err)
			}
			if st.Tab.String() != base.Tab.String() {
				t.Errorf("Stream:true ExecuteContext rows differ:\n%s\nvs:\n%s", st.Tab, base.Tab)
			}
			// Parallel streaming: same bag of rows.
			sp, err := m.StreamContext(context.Background(), q.src, ExecOptions{Parallelism: 4, FanOut: 4})
			if err != nil {
				t.Fatal(err)
			}
			prows, _ := drainStream(t, sp)
			if !prows.EqualUnordered(base.Tab) {
				t.Errorf("parallel streamed rows differ from materialized:\n%s\nvs:\n%s", prows, base.Tab)
			}
		})
	}
}

func TestStreamMatchesMaterializedOverWire(t *testing.T) {
	// Same fidelity contract over real TCP wrappers, where the wire layer's
	// fetchstream/pushstream framing carries the chunks.
	m, _ := deployFaulty(t, faultWorkloadN, nil, nil)
	base, err := m.ExecuteContext(context.Background(), datagen.Q2Src, ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.StreamContext(context.Background(), datagen.Q2Src, ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := drainStream(t, s)
	if rows.String() != base.Tab.String() {
		t.Errorf("streamed Q2 over wire not byte-identical:\n%s\nvs:\n%s", rows, base.Tab)
	}
	sp, err := m.StreamContext(context.Background(), datagen.Q2Src, ExecOptions{Parallelism: 4, FanOut: 4})
	if err != nil {
		t.Fatal(err)
	}
	prows, _ := drainStream(t, sp)
	if !prows.EqualUnordered(base.Tab) {
		t.Errorf("parallel streamed Q2 over wire differs:\n%s\nvs:\n%s", prows, base.Tab)
	}
}

func TestStreamMidStreamKillAllowPartial(t *testing.T) {
	// A wrapper dying after the first chunks have streamed: AllowPartial
	// keeps the stream alive, hands over every row the live sources can
	// derive, and reports the outage in SourceErrors. The workload is big
	// enough that the O₂ branch spans several chunks, so the kill lands
	// while the works branch is still unopened.
	const n = 400
	m, killWais := deployFaulty(t, n, nil, nil)
	full, err := m.ExecutePlan(context.Background(), crossSourceUnion(), ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Tab.Len() <= 2*tab.DefaultStreamChunk {
		t.Fatalf("workload too small for a mid-stream kill: %d rows", full.Tab.Len())
	}

	s, err := m.StreamPlan(context.Background(), crossSourceUnion(),
		ExecOptions{Parallelism: 1, AllowPartial: true, StreamBuffer: tab.DefaultStreamChunk})
	if err != nil {
		t.Fatal(err)
	}
	got := tab.New(s.Cols()...)
	first := <-s.Chunks()
	if first == nil {
		t.Fatal("stream produced no chunk before the kill")
	}
	for _, r := range first.Rows {
		got.AddRow(r)
	}
	// The pump is at most one buffered chunk ahead: the union's second
	// branch (the works wrapper) has not been contacted yet. Take it down.
	killWais()
	for c := range s.Chunks() {
		for _, r := range c.Rows {
			got.AddRow(r)
		}
	}
	res, err := s.Result()
	if err != nil {
		t.Fatalf("AllowPartial stream failed outright after the kill: %v", err)
	}
	if got.Len() == 0 || got.Len() >= full.Tab.Len() {
		t.Fatalf("partial streamed rows = %d, want strictly between 0 and %d", got.Len(), full.Tab.Len())
	}
	if len(res.SourceErrors) != 1 || res.SourceErrors[0].Source != "xmlartwork" {
		t.Fatalf("SourceErrors = %v, want exactly xmlartwork", res.SourceErrors)
	}

	// Without AllowPartial the same stream surfaces the typed
	// unavailability error from Result.
	strict, err := m.StreamPlan(context.Background(), crossSourceUnion(), ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for range strict.Chunks() {
	}
	_, err = strict.Result()
	var ue *algebra.UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("strict stream with a dead source = %v, want UnavailableError", err)
	}
	if ue.Source != "xmlartwork" {
		t.Errorf("unavailable source = %q, want xmlartwork", ue.Source)
	}
}

func TestStreamCloseCancelsInFlightWrapper(t *testing.T) {
	// Abandoning a stream must tear down in-flight wrapper calls promptly:
	// the works wrapper is stalled by a long delay injector, the consumer
	// reads the fast O₂ branch and walks away; Close has to return well
	// before the delay elapses, proving cancellation reached the transport.
	const stall = 3 * time.Second
	waisInj := faults.New(faults.Config{Seed: 11, Rate: 1,
		Kinds: []faults.Kind{faults.Delay}, Delay: stall, After: setupExchanges})
	m, _ := deployFaulty(t, faultWorkloadN, nil, waisInj)
	s, err := m.StreamPlan(context.Background(), crossSourceUnion(), ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := <-s.Chunks()
	if first == nil || first.Len() == 0 {
		t.Fatal("no rows from the live branch before abandoning")
	}
	// Give the pump a moment to run ahead into the stalled works branch.
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	s.Close()
	if d := time.Since(start); d > 1500*time.Millisecond {
		t.Fatalf("Close took %v with a %v wrapper stall; cancellation did not propagate", d, stall)
	}
}

func TestStreamTraceRecordsFirstRow(t *testing.T) {
	// EXPLAIN ANALYZE over a streamed run annotates spans with the
	// time-to-first-row mark.
	m, _, _ := paperSetup(t)
	res, err := m.ExecuteContext(context.Background(), datagen.Q1Src,
		ExecOptions{Parallelism: 1, Stream: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("traced streamed run returned no trace")
	}
	if out := obs.Render(res.Trace); !strings.Contains(out, "first=") {
		t.Errorf("rendered trace lacks first-row marks:\n%s", out)
	}
}

func TestStreamOptionsValidated(t *testing.T) {
	m, _, _ := paperSetup(t)
	for _, bad := range []ExecOptions{
		{BatchChunk: -1},
		{StreamBuffer: -5},
	} {
		if _, err := m.ExecuteContext(context.Background(), datagen.Q1Src, bad); err == nil {
			t.Errorf("ExecuteContext accepted invalid options %+v", bad)
		}
		if _, err := m.StreamContext(context.Background(), datagen.Q1Src, bad); err == nil {
			t.Errorf("StreamContext accepted invalid options %+v", bad)
		}
		if _, err := m.ExecutePlan(context.Background(), crossSourceUnion(), bad); err == nil {
			t.Errorf("ExecutePlan accepted invalid options %+v", bad)
		}
	}
}
