package datagen

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/wais"
	"repro/internal/yatl"
)

func TestPaperDBShape(t *testing.T) {
	db := PaperDB()
	if db.ExtentSize("artifacts") != 3 || db.ExtentSize("persons") != 2 {
		t.Fatalf("extents: %d artifacts, %d persons",
			db.ExtentSize("artifacts"), db.ExtentSize("persons"))
	}
	res, err := db.Execute(`select t: A.title from A in artifacts where A.year > 1800`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Elems) != 2 {
		t.Errorf("post-1800 artifacts = %d, want 2", len(res.Elems))
	}
	// current_price is registered
	if _, err := db.Execute(`select p: A.current_price() from A in artifacts`); err != nil {
		t.Errorf("current_price: %v", err)
	}
}

func TestPaperWorksFigure1Shapes(t *testing.T) {
	works := PaperWorks()
	if len(works) != 2 {
		t.Fatalf("works = %d", len(works))
	}
	nym := works[0]
	if nym.Child("title").Atom.S != "Nympheas" || nym.Child("cplace").Atom.S != "Giverny" {
		t.Errorf("Nympheas fixture = %s", nym)
	}
	bridge := works[1]
	hist := bridge.Child("history")
	if hist == nil || hist.Child("technique") == nil {
		t.Errorf("Waterloo Bridge must carry nested history/technique: %s", bridge)
	}
	// Works match the Artworks structure (mandatory fields + extras).
	m := pattern.MustParseModel(`model artworks
Work  := work[ artist: String, title: String, style: String, size: String, *&Field ]
Field := Symbol[ *( Int | Float | Bool | String | &Field ) ]`)
	for _, w := range works {
		if !pattern.MatchData(m, m.Lookup("Work"), w) {
			t.Errorf("fixture does not match the Artworks structure: %s", w)
		}
	}
}

func TestProgramsParse(t *testing.T) {
	if _, err := yatl.Parse(View1Src); err != nil {
		t.Errorf("View1Src: %v", err)
	}
	for _, q := range []string{Q1Src, Q2Src} {
		if _, err := yatl.ParseQuery(q); err != nil {
			t.Errorf("query %q: %v", q, err)
		}
	}
	if _, err := wais.ParseConfig(MuseumSrc); err != nil {
		t.Errorf("MuseumSrc: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultParams(200))
	b := Generate(DefaultParams(200))
	if a.DB.ExtentSize("artifacts") != b.DB.ExtentSize("artifacts") ||
		len(a.Works) != len(b.Works) ||
		len(a.GivernyTitles) != len(b.GivernyTitles) ||
		len(a.Q2Titles) != len(b.Q2Titles) {
		t.Error("generation must be deterministic for equal params")
	}
	c := Generate(Params{Artifacts: 200, Persons: 101, OverlapPct: 80,
		ImpressionistPct: 30, CplacePct: 40, GivernyPct: 25, CheapPct: 50, Seed: 7})
	if len(c.Works) == len(a.Works) && len(c.GivernyTitles) == len(a.GivernyTitles) {
		t.Log("different seeds produced identical counts (possible but unlikely)")
	}
}

func TestGenerateInvariants(t *testing.T) {
	p := DefaultParams(500)
	w := Generate(p)
	if w.DB.ExtentSize("artifacts") != 500 {
		t.Errorf("artifacts = %d", w.DB.ExtentSize("artifacts"))
	}
	if len(w.Works) == 0 || len(w.Works) >= 500 {
		t.Errorf("works = %d (should be a post-1800 overlap subset)", len(w.Works))
	}
	// Every work title exists in the trading database with year > 1800
	// (the Figure 8 containment guarantee).
	for _, work := range w.Works {
		title := work.Child("title").Atom.S
		res, err := w.DB.Execute(`select y: A.year from A in artifacts where A.title = "` + title + `"`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Elems) != 1 || res.Elems[0].Fields["y"].I <= 1800 {
			t.Fatalf("work %q violates the containment guarantee", title)
		}
	}
	// Indexes built by default; NoIndexes disables them.
	if !w.DB.HasIndex("Artifact", "title") || !w.DB.HasIndex("Artifact", "creator") {
		t.Error("default workload must index title and creator")
	}
	p.NoIndexes = true
	if Generate(p).DB.HasIndex("Artifact", "title") {
		t.Error("NoIndexes must skip index construction")
	}
}

func TestGroundTruthSubsets(t *testing.T) {
	w := Generate(DefaultParams(400))
	titles := map[string]bool{}
	for _, work := range w.Works {
		titles[work.Child("title").Atom.S] = true
	}
	for _, tt := range w.GivernyTitles {
		if !titles[tt] {
			t.Errorf("Giverny title %q not among works", tt)
		}
	}
	for _, tt := range w.Q2Titles {
		if !titles[tt] {
			t.Errorf("Q2 title %q not among works", tt)
		}
	}
	if len(w.GivernyTitles) == 0 || len(w.Q2Titles) == 0 {
		t.Error("default parameters must produce non-empty answer sets")
	}
}

func TestNewWaisEngine(t *testing.T) {
	e := NewWaisEngine(PaperWorks())
	if e.Size() != 2 {
		t.Errorf("engine size = %d", e.Size())
	}
	if got := e.Search("Giverny"); len(got) != 1 {
		t.Errorf("search = %v", got)
	}
	if !e.Queryable("cplace") {
		t.Error("museum config must allow cplace queries")
	}
}
