// Package datagen builds the cultural-goods workloads of the paper: the
// exact fixtures of Figures 1-3 (three artifacts, two persons, works with
// optional cplace/history fields) and deterministic scaled generators with
// controlled cardinalities, selectivities and source overlap, used by the
// integration tests, the examples and every experiment of EXPERIMENTS.md.
//
// The generators substitute for the paper's unavailable data (christies.com
// trading data, Aquarelle museum corpora): the experiments only depend on
// controlled sizes and selectivities, which these generators provide.
package datagen

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/o2"
	"repro/internal/wais"
)

// View1Src is the integration program view1.yat of Section 2, in this
// reproduction's YAT_L concrete syntax.
const View1Src = `
# view1.yat — cultural goods integration (Section 2)
artworks() :=
MAKE doc[ *artwork($t, $c) := work[ title: $t, artist: $a, year: $y, price: $p,
          style: $s, size: $si, owners[ *owner: $o ], more: $fields ] ]
MATCH artifacts WITH set[ *class[ artifact.tuple[ title: $t, year: $y, creator: $c, price: $p,
          owners.list[ *class[ person.tuple[ name: $o, auction: $au ] ] ] ] ] ],
      works WITH works[ *work[ artist: $a, title: $t', style: $s, size: $si, *($fields) ] ]
WHERE $y > 1800 AND $c = $a AND $t = $t' ;
`

// Q1Src is query Q1 (Section 2): what are the artifacts created at
// "Giverny"?
const Q1Src = `
MAKE $t
MATCH artworks WITH doc[ *work[ title: $t, more.cplace: $cl ] ]
WHERE $cl = "Giverny"
`

// Q2Src is query Q2 (Section 5.3): which impressionist artworks are sold
// for less than 200,000?
const Q2Src = `
MAKE result[ title: $t, price: $p ]
MATCH artworks WITH doc[ *work[ title: $t, style: $s, price: $p ] ]
WHERE $s = "Impressionist" AND $p < 200000
`

// Q1XQuerySrc is Q1 in the XQuery-FLWR dialect of internal/xq; it compiles
// to the same algebra as Q1Src and must return byte-identical rows.
const Q1XQuerySrc = `for $w in doc("artworks")/doc/work
where $w/more/cplace = "Giverny"
return $w/title`

// Q2XQuerySrc is Q2 in the XQuery-FLWR dialect; the element constructor
// mirrors Q2Src's MAKE pattern.
const Q2XQuerySrc = `for $w in doc("artworks")/doc/work
where $w/style = "Impressionist" and $w/price < 200000
return <result><title>{$w/title}</title><price>{$w/price}</price></result>`

// MuseumSrc is the Wais source configuration of Figure 2 (museum.src).
const MuseumSrc = `
source museum
queryable artist title style size cplace history technique
retrievable artist title style size cplace history technique
`

// Artist/style/place domains for generated data.
var (
	artists = []string{"Claude Monet", "Edgar Degas", "Berthe Morisot",
		"Camille Pissarro", "Auguste Renoir", "Paul Cezanne", "Mary Cassatt",
		"Alfred Sisley", "Gustave Caillebotte", "Eva Gonzales"}
	styles = []string{"Impressionist", "Realist", "Cubist", "Baroque", "Romantic"}
	places = []string{"Giverny", "Paris", "Argenteuil", "London", "Vetheuil"}
)

// rng is a small deterministic generator (SplitMix-style) so that fixtures
// are reproducible without math/rand.
type rng struct{ s uint64 }

func newRng(seed int64) *rng { return &rng{s: uint64(seed)*2862933555777941757 + 3037000493} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pct(p int) bool { return r.intn(100) < p }

// NewTradingSchema declares the Person/Artifact schema of the paper with
// the current_price method (a 10% premium over the recorded price).
func NewTradingSchema() *o2.Schema {
	s := o2.NewSchema()
	s.AddClass("Person", o2.TyTuple(
		o2.F("name", o2.TyStr()),
		o2.F("auction", o2.TyFloat()),
	), "persons")
	s.AddClass("Artifact", o2.TyTuple(
		o2.F("title", o2.TyStr()),
		o2.F("year", o2.TyInt()),
		o2.F("creator", o2.TyStr()),
		o2.F("price", o2.TyFloat()),
		o2.F("owners", o2.TyColl(o2.CList, o2.TyClass("Person"))),
	), "artifacts")
	_ = s.AddMethod("Artifact", "current_price", o2.TyFloat(),
		func(db *o2.DB, self *o2.Object) (o2.Val, error) {
			return o2.Float(self.Value.Fields["price"].AsFloat() * 1.1), nil
		})
	return s
}

// PaperDB builds the trading database of the paper's running example:
// Nympheas (1897, two owners), Waterloo Bridge (1900, one owner) and a
// pre-1800 Old Canvas filtered out by the view.
func PaperDB() *o2.DB {
	db := o2.NewDB(NewTradingSchema())
	p1, _ := db.NewObject("Person", o2.Tuple("name", o2.Str("Doctor X"), "auction", o2.Float(1500000)))
	p2, _ := db.NewObject("Person", o2.Tuple("name", o2.Str("Mme Y"), "auction", o2.Float(200000)))
	mustArtifact(db, "Nympheas", 1897, "Claude Monet", 1500000, p1, p2)
	mustArtifact(db, "Waterloo Bridge", 1900, "Claude Monet", 150000, p1)
	mustArtifact(db, "Old Canvas", 1750, "Anonymous", 1000, p2)
	return db
}

func mustArtifact(db *o2.DB, title string, year int64, creator string, price float64, owners ...string) string {
	refs := make([]o2.Val, len(owners))
	for i, o := range owners {
		refs[i] = o2.Oid(o)
	}
	oid, err := db.NewObject("Artifact", o2.Tuple(
		"title", o2.Str(title), "year", o2.Int(year), "creator", o2.Str(creator),
		"price", o2.Float(price), "owners", o2.Coll(o2.CList, refs...)))
	if err != nil {
		panic(err)
	}
	return oid
}

// PaperWorks builds the XML works of Figure 1: Nympheas carries a cplace
// field, Waterloo Bridge a history field with a nested technique.
func PaperWorks() data.Forest {
	return data.Forest{
		data.Elem("work",
			data.Text("artist", "Claude Monet"),
			data.Text("title", "Nympheas"),
			data.Text("style", "Impressionist"),
			data.Text("size", "21 x 61"),
			data.Text("cplace", "Giverny"),
		),
		data.Elem("work",
			data.Text("artist", "Claude Monet"),
			data.Text("title", "Waterloo Bridge"),
			data.Text("style", "Impressionist"),
			data.Text("size", "29.2 x 46.4"),
			data.Elem("history",
				data.Text("", "Painted with"),
				data.Text("technique", "Oil on canvas"),
				data.Text("", "in London"),
			),
		),
	}
}

// Params controls the scaled workload.
type Params struct {
	Artifacts int // artifacts in the O₂ source
	Persons   int // persons in the O₂ source
	// OverlapPct is the percentage of artifacts that also appear as works
	// in the Wais source (joinable across sources).
	OverlapPct int
	// ImpressionistPct is the selectivity of style = "Impressionist".
	ImpressionistPct int
	// CplacePct is the percentage of works carrying the optional cplace
	// field; of these, GivernyPct are at "Giverny".
	CplacePct  int
	GivernyPct int
	// CheapPct is the percentage of artifacts priced under 200,000.
	CheapPct int
	// NoIndexes skips the title/creator hash indexes the trading database
	// normally maintains (used by the E12 scan-vs-index ablation).
	NoIndexes bool
	Seed      int64
}

// DefaultParams returns the baseline workload of EXPERIMENTS.md.
func DefaultParams(n int) Params {
	return Params{
		Artifacts:        n,
		Persons:          n/2 + 1,
		OverlapPct:       80,
		ImpressionistPct: 30,
		CplacePct:        40,
		GivernyPct:       25,
		CheapPct:         50,
		Seed:             42,
	}
}

// Workload is a generated pair of sources plus the ground truth needed by
// experiment assertions.
type Workload struct {
	DB    *o2.DB
	Works data.Forest
	// GivernyTitles are the titles of post-1800, joinable works created at
	// Giverny (the Q1 answer set).
	GivernyTitles []string
	// Q2Titles are the titles of joinable impressionist works priced under
	// 200,000 (the Q2 answer set).
	Q2Titles []string
}

// Generate builds a deterministic workload.
func Generate(p Params) *Workload {
	r := newRng(p.Seed)
	db := o2.NewDB(NewTradingSchema())
	w := &Workload{DB: db}
	oids := make([]string, 0, p.Persons)
	for i := 0; i < p.Persons; i++ {
		oid, err := db.NewObject("Person", o2.Tuple(
			"name", o2.Str(fmt.Sprintf("Collector %d", i)),
			"auction", o2.Float(float64(10000+r.intn(2000000)))))
		if err != nil {
			panic(err)
		}
		oids = append(oids, oid)
	}
	for i := 0; i < p.Artifacts; i++ {
		title := fmt.Sprintf("Painting %d", i)
		artist := artists[r.intn(len(artists))]
		year := int64(1700 + r.intn(300))
		price := float64(1000 + r.intn(400000))
		if !r.pct(p.CheapPct) {
			price += 250000
		}
		nOwners := 1 + r.intn(3)
		owners := make([]string, nOwners)
		for j := range owners {
			owners[j] = oids[r.intn(len(oids))]
		}
		mustArtifact(db, title, year, artist, price, owners...)

		// The museum catalog (Wais source) covers only modern works: this
		// guarantees the Figure 8 containment assumption — every catalogued
		// work corresponds to a post-1800 artifact in the trading database.
		if year <= 1800 || !r.pct(p.OverlapPct) {
			continue
		}
		style := styles[1+r.intn(len(styles)-1)]
		if r.pct(p.ImpressionistPct) {
			style = "Impressionist"
		}
		work := data.Elem("work",
			data.Text("artist", artist),
			data.Text("title", title),
			data.Text("style", style),
			data.Text("size", fmt.Sprintf("%d x %d", 10+r.intn(90), 10+r.intn(90))),
		)
		giverny := false
		if r.pct(p.CplacePct) {
			place := places[1+r.intn(len(places)-1)]
			if r.pct(p.GivernyPct) {
				place = "Giverny"
				giverny = true
			}
			work.Add(data.Text("cplace", place))
		}
		if r.pct(30) {
			work.Add(data.Elem("history",
				data.Text("technique", "Oil on canvas"),
				data.Text("", fmt.Sprintf("restored in %d", 1900+r.intn(99))),
			))
		}
		w.Works = append(w.Works, work)
		if year > 1800 {
			if giverny {
				w.GivernyTitles = append(w.GivernyTitles, title)
			}
			if style == "Impressionist" && price < 200000 {
				w.Q2Titles = append(w.Q2Titles, title)
			}
		}
	}
	if !p.NoIndexes {
		// A trading database maintains associative access paths on the
		// attributes its clients search by; pushed parameterized queries
		// (Section 5.3) rely on them.
		if err := db.BuildIndex("Artifact", "title"); err != nil {
			panic(err)
		}
		if err := db.BuildIndex("Artifact", "creator"); err != nil {
			panic(err)
		}
	}
	return w
}

// NewWaisEngine indexes a forest of works under the museum configuration.
func NewWaisEngine(works data.Forest) *wais.Engine {
	cfg, err := wais.ParseConfig(MuseumSrc)
	if err != nil {
		panic(err)
	}
	e := wais.New(cfg.Name)
	e.Configure(cfg)
	for _, w := range works {
		e.Add(w)
	}
	return e
}
