package datagen

import (
	"archive/zip"
	"fmt"
	"io"
	"strings"

	"repro/internal/feed"
)

// The bulk-feed corpus: deterministic newline-delimited XML metadata dumps
// (and zip archives of them) for the third wrapper family. Sizes, seeds and
// the malformed-record rate are parameters, and the generator returns the
// ground truth the tests and experiments assert against — the surviving
// records and the expected quarantine histogram.

// FeedParams controls a generated metadata dump.
type FeedParams struct {
	Records int // total dump lines, valid and malformed together
	// MalformedPct is the percentage of lines that are deliberately broken,
	// cycling through the quarantine classes (undecodable XML, bad ISSN
	// checksum, empty title, out-of-range year, duplicate id).
	MalformedPct int
	Seed         int64
}

// DefaultFeedParams returns the baseline feed corpus of EXPERIMENTS.md E23.
func DefaultFeedParams(n int) FeedParams {
	return FeedParams{Records: n, MalformedPct: 4, Seed: 42}
}

// FeedRecord is the ground truth of one valid dump record, in normalized
// form (the canonical ISSN the store should hold after ingest).
type FeedRecord struct {
	ID, Title, ISSN, Journal, Publisher string
	Year                                int
}

// FeedCorpus is a generated dump: the raw lines in dump order plus the
// ground truth — the records that must survive ingest and the quarantine
// reasons the malformed lines must be counted under.
type FeedCorpus struct {
	Lines   []string
	Records []FeedRecord
	// Malformed histograms the expected quarantine reasons, matching
	// feed.Stats.Reasons after a clean ingest.
	Malformed map[string]int
}

// Journal and publisher domains. The two "Journal of ..." entries give
// prefix queries a selective, deterministic answer set.
var (
	feedJournals = []string{"Journal of Impressionism", "Journal of Modern Art",
		"Revue des Beaux-Arts", "Annales du Louvre", "Gazette of Fine Arts"}
	feedPublishers = []string{"Musee Press", "Atelier House", "Seine Editions", "Canvas & Co"}
)

// GenerateFeed builds a deterministic dump. Titles share the "Painting N"
// namespace of the trading workload so three-family queries can meet on
// them; ISSNs are minted valid (checksum included) and unique per record.
func GenerateFeed(p FeedParams) *FeedCorpus {
	r := newRng(p.Seed)
	c := &FeedCorpus{Malformed: map[string]int{}}
	kind := 0
	for i := 0; i < p.Records; i++ {
		rec := FeedRecord{
			ID:        fmt.Sprintf("rec-%06d", i),
			Title:     fmt.Sprintf("Painting %d", i),
			ISSN:      mintISSN(i),
			Journal:   feedJournals[r.intn(len(feedJournals))],
			Publisher: feedPublishers[r.intn(len(feedPublishers))],
			Year:      1800 + r.intn(220),
		}
		if r.pct(p.MalformedPct) {
			dupID := ""
			if len(c.Records) > 0 {
				dupID = c.Records[0].ID
			}
			line, reason := breakRecord(rec, kind, dupID)
			kind++
			c.Lines = append(c.Lines, line)
			c.Malformed[reason]++
			continue
		}
		c.Lines = append(c.Lines, recordLine(rec))
		c.Records = append(c.Records, rec)
	}
	return c
}

// mintISSN returns a distinct valid ISSN in canonical form for record i.
func mintISSN(i int) string {
	seven := fmt.Sprintf("%07d", 1000+i*7)
	check, err := feed.ISSNCheckDigit(seven)
	if err != nil {
		panic(err)
	}
	return seven[:4] + "-" + seven[4:] + string(check)
}

var xmlEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

// recordLine renders a record as one dump line, escaping markup characters
// in field values ("Canvas &amp; Co").
func recordLine(r FeedRecord) string {
	return fmt.Sprintf("<record><id>%s</id><title>%s</title><issn>%s</issn>"+
		"<journal>%s</journal><year>%d</year><publisher>%s</publisher></record>",
		xmlEscaper.Replace(r.ID), xmlEscaper.Replace(r.Title), r.ISSN,
		xmlEscaper.Replace(r.Journal), r.Year, xmlEscaper.Replace(r.Publisher))
}

// breakRecord renders a deliberately malformed line for the record,
// cycling through the quarantine classes, and returns the reason the
// ingest pipeline must count it under. Duplicate ids collide with the
// first valid record (dupID); before one exists that class falls back to
// undecodable XML.
func breakRecord(r FeedRecord, kind int, dupID string) (string, string) {
	switch k := kind % 5; {
	case k == 0 || (k == 4 && dupID == ""):
		return "<record><id>" + r.ID + "</id><title>", "decode"
	case k == 1:
		r.ISSN = r.ISSN[:len(r.ISSN)-1] + "Z"
		return recordLine(r), "issn"
	case k == 2:
		r.Title = "   "
		return recordLine(r), "title"
	case k == 3:
		r.Year = 99
		return recordLine(r), "year"
	default: // k == 4: reuse the first valid id
		r.ID = dupID
		return recordLine(r), "duplicate-id"
	}
}

// WriteNDXML writes the dump as newline-delimited XML.
func (c *FeedCorpus) WriteNDXML(w io.Writer) error {
	for _, l := range c.Lines {
		if _, err := io.WriteString(w, l+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteZip writes the dump as a zip archive of `entries` .ndxml members,
// lines distributed round-trip-stable in contiguous runs. Headers carry no
// timestamps, so the archive bytes are a pure function of the corpus.
func (c *FeedCorpus) WriteZip(w io.Writer, entries int) error {
	if entries < 1 {
		entries = 1
	}
	zw := zip.NewWriter(w)
	per := (len(c.Lines) + entries - 1) / entries
	for e := 0; e < entries; e++ {
		lo := e * per
		if lo >= len(c.Lines) && e > 0 {
			break
		}
		hi := lo + per
		if hi > len(c.Lines) {
			hi = len(c.Lines)
		}
		f, err := zw.CreateHeader(&zip.FileHeader{
			Name: fmt.Sprintf("part-%03d.ndxml", e), Method: zip.Deflate})
		if err != nil {
			return err
		}
		for _, l := range c.Lines[lo:hi] {
			if _, err := io.WriteString(f, l+"\n"); err != nil {
				return err
			}
		}
	}
	return zw.Close()
}

// NewFeedStore ingests the corpus into a fresh store, panicking on
// transport errors (a generated corpus has none) — the fixture helper the
// tests and benchmarks build wrappers from.
func NewFeedStore(c *FeedCorpus) *feed.Store {
	s := feed.NewStore()
	var sb strings.Builder
	if err := c.WriteNDXML(&sb); err != nil {
		panic(err)
	}
	if _, err := s.Ingest(feed.NewNDXML(strings.NewReader(sb.String()), "corpus.ndxml")); err != nil {
		panic(err)
	}
	return s
}
