package datagen

import (
	"bytes"
	"strings"
	"testing"
)

// TestGenerateFeedDeterministic pins that the corpus — lines, ground truth
// and archive bytes — is a pure function of its parameters.
func TestGenerateFeedDeterministic(t *testing.T) {
	p := FeedParams{Records: 250, MalformedPct: 8, Seed: 99}
	a, b := GenerateFeed(p), GenerateFeed(p)
	if len(a.Lines) != len(b.Lines) || len(a.Records) != len(b.Records) {
		t.Fatalf("sizes differ: %d/%d lines, %d/%d records",
			len(a.Lines), len(b.Lines), len(a.Records), len(b.Records))
	}
	for i := range a.Lines {
		if a.Lines[i] != b.Lines[i] {
			t.Fatalf("line %d differs", i)
		}
	}
	var za, zb bytes.Buffer
	if err := a.WriteZip(&za, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteZip(&zb, 4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(za.Bytes(), zb.Bytes()) {
		t.Error("zip archives differ across identical generations")
	}
	if other := GenerateFeed(FeedParams{Records: 250, MalformedPct: 8, Seed: 100}); len(other.Records) == len(a.Records) {
		same := true
		for i := range other.Records {
			if other.Records[i] != a.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical corpora")
		}
	}
}

// TestGenerateFeedCleanCorpus pins the malformed-rate knob at zero.
func TestGenerateFeedCleanCorpus(t *testing.T) {
	c := GenerateFeed(FeedParams{Records: 100, MalformedPct: 0, Seed: 1})
	if len(c.Records) != 100 || len(c.Malformed) != 0 {
		t.Fatalf("clean corpus: %d records, malformed %v", len(c.Records), c.Malformed)
	}
	for i, r := range c.Records {
		if !strings.HasPrefix(r.ID, "rec-") || r.Year < 1800 || r.Year > 2100 {
			t.Fatalf("record %d out of domain: %+v", i, r)
		}
	}
}
