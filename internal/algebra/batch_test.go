package algebra

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/tab"
)

func TestFreeVars(t *testing.T) {
	inner := tab.New("$v")
	inner.Add(tab.AtomCell(data.Int(1)))
	lit := &Literal{T: inner}
	cases := []struct {
		name string
		plan Op
		want string
	}{
		{"select over literal", &Select{From: lit, Pred: MustParseExpr(`$v = $n`)}, "$n"},
		{"bound by input", &Select{From: lit, Pred: MustParseExpr(`$v = 1`)}, ""},
		{"param bind", &Bind{Col: "$w", F: mustFilter(t, `x: $y`)}, "$w"},
		{"doc bind", &Bind{Doc: "d", F: mustFilter(t, `x: $y`)}, ""},
		{"map expr", &MapExpr{From: lit, Col: "$m", E: MustParseExpr(`$v + $k`)}, "$k"},
		{"source query", &SourceQuery{Source: "s", Plan: &Select{From: lit, Pred: MustParseExpr(`$v = $p`)}}, "$p"},
		{"join needs both", &Join{L: lit, R: &Literal{T: tab.New("$w")},
			Pred: MustParseExpr(`$v = $w AND $q = 1`)}, "$q"},
		// A nested DJoin satisfies its inner plan's $v from its own left
		// columns; only $z escapes.
		{"djoin subtracts left columns", &DJoin{L: lit,
			R: &Select{From: &Literal{T: tab.New("$w")}, Pred: MustParseExpr(`$w = $v AND $w = $z`)}}, "$z"},
		// Cons variables read input columns, never parameters.
		{"cons excluded", &TreeOp{From: lit, C: MustParseCons(`work[ title: $v ]`)}, ""},
		{"nil plan", nil, ""},
	}
	for _, c := range cases {
		got := strings.Join(FreeVars(c.plan), ",")
		if got != c.want {
			t.Errorf("%s: FreeVars = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestResultCacheLRU(t *testing.T) {
	one := tab.New("$a")
	if NewResultCache(0) != nil {
		t.Fatal("bound < 1 must disable the cache")
	}
	var nilCache *ResultCache
	if _, ok := nilCache.Get("k"); ok || nilCache.Put("k", one) || nilCache.Len() != 0 {
		t.Fatal("nil cache must be inert")
	}

	c := NewResultCache(2)
	if c.Put("a", one) || c.Put("b", one) {
		t.Fatal("no eviction below capacity")
	}
	// Touch "a" so "b" is the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a cached")
	}
	if !c.Put("c", one) {
		t.Fatal("third insert must evict")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (a was touched)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a survives")
	}
	// Overwriting an existing key never evicts.
	if c.Put("a", one) || c.Len() != 2 {
		t.Errorf("overwrite: len = %d", c.Len())
	}
}

func TestDJoinBindingsDedup(t *testing.T) {
	l := tab.New("$n", "$x")
	add := func(n string, x int64) {
		l.Add(tab.AtomCell(data.String(n)), tab.AtomCell(data.Int(x)))
	}
	add("a", 1)
	add("b", 2)
	add("a", 3) // same $n as row 0: same binding set over vars {$n}
	add("b", 4)

	outer := map[string]tab.Cell{"$k": tab.AtomCell(data.Int(9))}
	b := NewDJoinBindings(l, []string{"$k", "$n", "$ghost"}, outer)
	if len(b.Sets) != 2 {
		t.Fatalf("distinct sets = %d, want 2", len(b.Sets))
	}
	if want := []int{0, 1, 0, 1}; fmt.Sprint(b.Row) != fmt.Sprint(want) {
		t.Errorf("row map = %v, want %v", b.Row, want)
	}
	// $k is a constant from the surrounding parameters, $ghost is absent.
	if a, _ := b.Sets[0]["$k"].AsAtom(); a.I != 9 {
		t.Errorf("outer constant not threaded: %v", b.Sets[0])
	}
	if _, ok := b.Sets[0]["$ghost"]; ok {
		t.Error("unbound variable must be absent, not null")
	}
	if b.Keys[0] == b.Keys[1] {
		t.Error("distinct sets must have distinct keys")
	}

	empty := NewDJoinBindings(tab.New("$n"), []string{"$n"}, nil)
	if len(empty.Sets) != 0 || len(empty.Row) != 0 {
		t.Errorf("empty outer input: %+v", empty)
	}

	// With no free variables every row shares the one empty binding set.
	none := NewDJoinBindings(l, nil, nil)
	if len(none.Sets) != 1 {
		t.Errorf("no free vars: sets = %d, want 1", len(none.Sets))
	}
}

// evalBatchSource is a BatchSource that really evaluates the pushed plan per
// binding, counting push round trips.
type evalBatchSource struct {
	fakeSource
	batchCalls int
	rowCalls   int
	failAt     int // fail when evaluating binding #failAt (1-based); 0 = never
	seen       int
}

func (f *evalBatchSource) evalOne(plan Op, params map[string]tab.Cell) (*tab.Tab, error) {
	f.seen++
	if f.failAt > 0 && f.seen >= f.failAt {
		return nil, fmt.Errorf("wrapper exploded")
	}
	ctx := NewContext()
	ctx.Params = params
	return plan.Eval(ctx)
}

func (f *evalBatchSource) Push(plan Op, params map[string]tab.Cell) (*tab.Tab, error) {
	f.rowCalls++
	return f.evalOne(plan, params)
}

func (f *evalBatchSource) PushBatch(plan Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error) {
	return f.PushBatchContext(context.Background(), plan, bindings)
}

func (f *evalBatchSource) PushBatchContext(_ context.Context, plan Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error) {
	f.batchCalls++
	out := make([]*tab.Tab, len(bindings))
	for i, b := range bindings {
		t, err := f.evalOne(plan, b)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// batchFixture returns a DJoin whose inner plan is a pushdown SourceQuery,
// an outer input with duplicate binding rows, and the counting source.
func batchFixture() (*DJoin, *evalBatchSource, *Context) {
	inner := tab.New("$v")
	for i := 1; i <= 3; i++ {
		inner.Add(tab.AtomCell(data.Int(int64(i))))
	}
	l := tab.New("$n")
	for _, n := range []int64{1, 2, 1, 3, 2, 1} {
		l.Add(tab.AtomCell(data.Int(n)))
	}
	j := &DJoin{
		L: &Literal{T: l},
		R: &SourceQuery{Source: "w", Plan: &Select{
			From: &Literal{T: inner},
			Pred: MustParseExpr(`$v <= $n`),
		}},
	}
	src := &evalBatchSource{fakeSource: fakeSource{name: "w"}}
	ctx := NewContext()
	ctx.Sources["w"] = src
	return j, src, ctx
}

func TestDJoinBatchedMatchesPerRow(t *testing.T) {
	j, src, ctx := batchFixture()
	ctx.PerRowDJoin = true
	want, err := j.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if src.rowCalls != 6 || ctx.Stats.SourcePushes != 6 {
		t.Fatalf("per-row path: rowCalls=%d pushes=%d, want 6", src.rowCalls, ctx.Stats.SourcePushes)
	}

	j2, src2, ctx2 := batchFixture()
	got, err := j2.Eval(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("batched rows differ from per-row:\n%s\nvs\n%s", got, want)
	}
	// 3 distinct bindings, one chunk: a single round trip.
	if src2.batchCalls != 1 || src2.rowCalls != 0 || ctx2.Stats.SourcePushes != 1 {
		t.Errorf("batched: batchCalls=%d rowCalls=%d pushes=%d, want 1/0/1",
			src2.batchCalls, src2.rowCalls, ctx2.Stats.SourcePushes)
	}

	// A chunk bound of 2 splits 3 distinct bindings into 2 round trips.
	j3, src3, ctx3 := batchFixture()
	ctx3.BatchChunk = 2
	if _, err := j3.Eval(ctx3); err != nil {
		t.Fatal(err)
	}
	if src3.batchCalls != 2 || ctx3.Stats.SourcePushes != 2 {
		t.Errorf("chunked: batchCalls=%d pushes=%d, want 2/2", src3.batchCalls, ctx3.Stats.SourcePushes)
	}
}

func TestDJoinWarmCacheSkipsPushes(t *testing.T) {
	cache := NewResultCache(16)
	j, src, ctx := batchFixture()
	ctx.Cache = cache
	cold, err := j.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.CacheMisses != 3 || ctx.Stats.CacheHits != 0 || ctx.Stats.SourcePushes != 1 {
		t.Fatalf("cold run stats = %+v", ctx.Stats)
	}

	// Same plan, fresh context, shared cache: zero round trips.
	ctx2 := NewContext()
	ctx2.Sources["w"] = src
	ctx2.Cache = cache
	warm, err := j.Eval(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if warm.String() != cold.String() {
		t.Error("warm rows differ from cold")
	}
	if ctx2.Stats.CacheHits != 3 || ctx2.Stats.SourcePushes != 0 || src.batchCalls != 1 {
		t.Errorf("warm run stats = %+v, batchCalls = %d", ctx2.Stats, src.batchCalls)
	}

	// The cache also answers a plain SourceQuery push of the same subplan
	// under the same binding (key unification across both paths).
	ctx3 := NewContext()
	ctx3.Sources["w"] = src
	ctx3.Cache = cache
	ctx3.Params = map[string]tab.Cell{"$n": tab.AtomCell(data.Int(2))}
	if _, err := j.R.Eval(ctx3); err != nil {
		t.Fatal(err)
	}
	if ctx3.Stats.CacheHits != 1 || ctx3.Stats.SourcePushes != 0 {
		t.Errorf("SourceQuery should hit batch-cached entry: %+v", ctx3.Stats)
	}
}

func TestDJoinBatchErrorLeavesCacheClean(t *testing.T) {
	cache := NewResultCache(16)
	j, src, ctx := batchFixture()
	src.failAt = 2 // second binding of the batch fails
	ctx.Cache = cache
	if _, err := j.Eval(ctx); err == nil || !strings.Contains(err.Error(), "wrapper exploded") {
		t.Fatalf("batch error must propagate, got %v", err)
	}
	if cache.Len() != 0 {
		t.Errorf("partial batch results leaked into the cache: %d entries", cache.Len())
	}
}

func TestDJoinDedupWithoutBatchSource(t *testing.T) {
	// Inner plan is NOT a SourceQuery: no batching, but distinct-set
	// deduplication still applies. The marker function counts inner
	// evaluations via Stats.FuncCalls.
	inner := tab.New("$v")
	inner.Add(tab.AtomCell(data.Int(1)))
	j := &DJoin{
		L: &Literal{T: func() *tab.Tab {
			l := tab.New("$n")
			for _, n := range []int64{5, 7, 5, 7, 5} {
				l.Add(tab.AtomCell(data.Int(n)))
			}
			return l
		}()},
		R: &Select{From: &Literal{T: inner}, Pred: MustParseExpr(`mark($n) > $v`)},
	}
	ctx := NewContext()
	ctx.Funcs["mark"] = func(args []tab.Cell) (tab.Cell, error) { return args[0], nil }
	got, err := j.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 {
		t.Errorf("rows = %d, want 5 (every outer row matches)", got.Len())
	}
	if ctx.Stats.FuncCalls != 2 {
		t.Errorf("inner plan evaluated %d times, want 2 (distinct sets)", ctx.Stats.FuncCalls)
	}
}

func TestDJoinEmptyOuter(t *testing.T) {
	j, src, ctx := batchFixture()
	j.L = &Literal{T: tab.New("$n")}
	got, err := j.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || src.batchCalls != 0 || src.rowCalls != 0 {
		t.Errorf("empty outer: rows=%d batch=%d row=%d", got.Len(), src.batchCalls, src.rowCalls)
	}
}
