package algebra

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/tab"
)

func samplePlans() []Op {
	lit := tab.New("$x")
	lit.Add(tab.AtomCell(data.Int(1)))
	bindWorks := &Bind{Doc: "works", F: filter.MustParse(`works[ *work[ title: $t, style: $s, *($fields) ] ]`)}
	bindArts := &Bind{Doc: "artifacts", F: filter.MustParse(`set[ *class[ artifact.tuple[ title: $t2, price: $p ] ] ]`)}
	return []Op{
		&Doc{Name: "artifacts"},
		bindWorks,
		&Select{From: bindWorks, Pred: MustParseExpr(`$s = "Impressionist" AND contains($fields, "Giverny")`)},
		&Project{From: bindWorks, Cols: []string{"title=$t", "$s"}},
		&MapExpr{From: bindWorks, Col: "$n", E: MustParseExpr(`1 + 2 * 3`)},
		&Join{L: bindWorks, R: bindArts, Pred: MustParseExpr(`$t = $t2`)},
		&DJoin{L: bindWorks, R: &Bind{Col: "$fields", F: filter.MustParse(`cplace: $cl`)}},
		&Union{L: bindWorks, R: bindWorks},
		&Intersect{L: bindWorks, R: bindWorks},
		&Distinct{From: bindWorks},
		&Group{From: bindWorks, Keys: []string{"$s"}, Into: "$g"},
		&Sort{From: bindWorks, Cols: []string{"$t"}},
		&TreeOp{From: bindWorks, C: MustParseCons(`doc[ *w($t) := work[ title: $t, note: "a b  c" ] ]`), OutCol: "$out"},
		&SourceQuery{Source: "o2artifact", Plan: bindArts},
		&Literal{T: lit},
	}
}

func TestPlanXMLRoundTrip(t *testing.T) {
	for _, plan := range samplePlans() {
		s, err := MarshalPlan(plan)
		if err != nil {
			t.Errorf("marshal %s: %v", plan.Detail(), err)
			continue
		}
		back, err := UnmarshalPlan(s)
		if err != nil {
			t.Errorf("unmarshal %s: %v\n%s", plan.Detail(), err, s)
			continue
		}
		if Describe(back) != Describe(plan) {
			t.Errorf("round trip changed plan:\n%s\nvs\n%s\nxml: %s",
				Describe(plan), Describe(back), s)
		}
	}
}

func TestPlanXMLPreservesStringConstants(t *testing.T) {
	// Embedded string constants with awkward characters must survive.
	plan := &Select{
		From: &Bind{Doc: "works", F: filter.MustParse(`works[ *work[ title: $t ] ]`)},
		Pred: MustParseExpr(`$t = "a <b> & \"c\"  double  space"`),
	}
	s, err := MarshalPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(s)
	if err != nil {
		t.Fatalf("%v\n%s", err, s)
	}
	if Describe(back) != Describe(plan) {
		t.Errorf("constants corrupted:\n%s\nvs\n%s", Describe(plan), Describe(back))
	}
}

func TestPlanXMLExecutesAfterRoundTrip(t *testing.T) {
	ctx := worksCtx()
	plan := &Select{
		From: &Bind{Doc: "artworks", F: filter.MustParse(fig4FilterSrc)},
		Pred: MustParseExpr(`$a = "Claude Monet"`),
	}
	s, err := MarshalPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Eval(worksCtx())
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Errorf("deserialized plan computed differently")
	}
}

func TestPlanXMLErrors(t *testing.T) {
	bad := []string{
		`<mystery/>`,
		`<select pred="$x ="><from><doc name="a"/></from></select>`,
		`<select pred="$x = 1"/>`,
		`<join pred="$x = 1"><left><doc name="a"/></left></join>`,
		`<bind filter="broken["/>`,
		`<tree cons="broken[" ><from><doc name="a"/></from></tree>`,
		`<sourcequery source="s"/>`,
		`<literal><notatab/></literal>`,
	}
	for _, src := range bad {
		if _, err := UnmarshalPlan(src); err == nil {
			t.Errorf("UnmarshalPlan(%q) should fail", src)
		}
	}
}

func TestDetailStrings(t *testing.T) {
	for _, plan := range samplePlans() {
		if strings.TrimSpace(plan.Detail()) == "" {
			t.Errorf("empty detail for %T", plan)
		}
	}
}

// genPlan builds a pseudo-random plan for serialization property tests.
func genPlan(seed int64, depth int) Op {
	s := seed
	next := func(n int64) int64 {
		s = s*6364136223846793005 + 1442695040888963407
		v := (s >> 33) % n
		if v < 0 {
			v = -v
		}
		return v
	}
	filters := []string{
		`works[ *work[ title: $t%d ] ]`,
		`set[ *class[ artifact.tuple[ year: $y%d, price: $p%d ] ] ]`,
		`doc[ *work@$w%d[ style: "Impressionist", *($f%d) ] ]`,
	}
	leaf := func() Op {
		src := filters[next(int64(len(filters)))]
		src = strings.ReplaceAll(src, "%d", fmt.Sprint(next(1000)))
		return &Bind{Doc: "works", F: filter.MustParse(src)}
	}
	var build func(d int) Op
	build = func(d int) Op {
		if d <= 0 {
			return leaf()
		}
		switch next(8) {
		case 0:
			return &Select{From: build(d - 1), Pred: MustParseExpr(fmt.Sprintf(`$x%d = %d`, next(10), next(100)))}
		case 1:
			return &Project{From: build(d - 1), Cols: []string{fmt.Sprintf("$a%d=$b%d", next(10), next(10))}}
		case 2:
			return &Join{L: build(d - 1), R: build(d - 1), Pred: MustParseExpr(fmt.Sprintf(`$l%d = $r%d`, next(10), next(10)))}
		case 3:
			return &DJoin{L: build(d - 1), R: build(d - 1)}
		case 4:
			return &Distinct{From: build(d - 1)}
		case 5:
			return &TreeOp{From: build(d - 1), C: MustParseCons(fmt.Sprintf(`doc[ *w($k%d) := item[ k: $k%d ] ]`, next(10), next(10)))}
		case 6:
			return &SourceQuery{Source: "s", Plan: build(d - 1)}
		default:
			return &Union{L: build(d - 1), R: build(d - 1)}
		}
	}
	return build(depth)
}

func TestPropertyRandomPlanXMLRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		plan := genPlan(seed, 3)
		s, err := MarshalPlan(plan)
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		back, err := UnmarshalPlan(s)
		if err != nil {
			t.Fatalf("seed %d: unmarshal: %v\n%s", seed, err, s)
		}
		if Describe(back) != Describe(plan) {
			t.Fatalf("seed %d: round trip changed plan:\n%s\nvs\n%s",
				seed, Describe(plan), Describe(back))
		}
	}
}
