package algebra

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/tab"
)

// Source is a wrapped external source as seen by the algebra: it exports
// named documents and can either ship a whole document (Fetch, the costly
// path) or evaluate a pushed subplan natively (Push, the capability-based
// path of Section 5.3).
type Source interface {
	// Name identifies the source ("o2artifact", "xmlartwork", ...).
	Name() string
	// Documents lists the document names the source exports.
	Documents() []string
	// Fetch ships an entire named document to the mediator.
	Fetch(doc string) (data.Forest, error)
	// Push evaluates a plan at the source. The plan only contains
	// operations the source declared in its capability interface; params
	// carries bindings passed sideways by a DJoin (information passing).
	Push(plan Op, params map[string]tab.Cell) (*tab.Tab, error)
}

// ContextSource is the optional cancellable extension of Source: sources
// that perform I/O (the wire client above TCP wrappers) implement it so a
// query deadline or cancellation propagates into in-flight requests instead
// of hanging the evaluation on a dead wrapper. Evaluation uses these
// variants whenever the evaluation context carries a context.Context.
type ContextSource interface {
	Source
	// FetchContext is Fetch under a cancellation context.
	FetchContext(ctx context.Context, doc string) (data.Forest, error)
	// PushContext is Push under a cancellation context.
	PushContext(ctx context.Context, plan Op, params map[string]tab.Cell) (*tab.Tab, error)
}

// Stats counts the externally observable work of a plan execution; the
// experiments of EXPERIMENTS.md report these counters.
type Stats struct {
	SourceFetches int   // whole documents shipped to the mediator
	SourcePushes  int   // push requests issued to sources (a batched push counts once)
	TuplesShipped int   // rows returned by sources
	BytesShipped  int64 // approximate serialized volume received from sources
	FuncCalls     int   // external predicate/method invocations
	BindRows      int   // rows produced by mediator-side Bind operations

	CacheHits      int // pushes answered by the wrapper-result cache
	CacheMisses    int // cache probes that went to the source
	CacheEvictions int // entries displaced by the cache's LRU bound

	Retries int // transport exchanges retried after a transient failure
	Redials int // stale pooled connections transparently redialed
}

// Add accumulates s2 into s.
func (s *Stats) Add(s2 Stats) {
	s.SourceFetches += s2.SourceFetches
	s.SourcePushes += s2.SourcePushes
	s.TuplesShipped += s2.TuplesShipped
	s.BytesShipped += s2.BytesShipped
	s.FuncCalls += s2.FuncCalls
	s.BindRows += s2.BindRows
	s.CacheHits += s2.CacheHits
	s.CacheMisses += s2.CacheMisses
	s.CacheEvictions += s2.CacheEvictions
	s.Retries += s2.Retries
	s.Redials += s2.Redials
}

// Skolems mints stable identifiers: one per (function name, argument
// values) pair, as required by Skolem-function semantics (Section 3.1).
type Skolems struct {
	mu  sync.Mutex
	ids map[string]string
	n   int
}

// NewSkolems returns an empty registry.
func NewSkolems() *Skolems { return &Skolems{ids: make(map[string]string)} }

// ID returns the identifier for the given function name and key cells,
// minting a fresh one on first use.
func (s *Skolems) ID(name string, key []tab.Cell) string {
	var b strings.Builder
	b.WriteString(name)
	for _, c := range key {
		b.WriteByte('\x00')
		b.WriteString(c.Key())
	}
	k := b.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[k]; ok {
		return id
	}
	s.n++
	id := fmt.Sprintf("%s_%d", name, s.n)
	s.ids[k] = id
	return id
}

// Len reports the number of minted identifiers.
func (s *Skolems) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ids)
}

// Context carries everything a plan needs to evaluate.
type Context struct {
	// Catalog maps named documents to local forests (mediator-resident
	// data, view materializations, test fixtures).
	Catalog map[string]data.Forest
	// Sources maps source names to connections; named documents not in
	// the catalog are fetched from the source exporting them.
	Sources map[string]Source
	// Store resolves identifiers during Bind navigation.
	Store *data.Store
	// Skolem mints identifiers for Tree construction.
	Skolem *Skolems
	// Funcs holds external functions (contains, current_price, ...).
	Funcs map[string]Func
	// Params holds DJoin information-passing bindings.
	Params map[string]tab.Cell
	// Model resolves named type filters.
	Model *pattern.Model
	// Stats accumulates execution counters.
	Stats *Stats
	// Ctx, when non-nil, carries the query's cancellation context:
	// long-running operators check it between units of work and
	// ContextSource connections receive it for in-flight I/O.
	Ctx context.Context
	// Cache, when non-nil, memoizes pushed-subplan results across rows and
	// queries (see ResultCache); the mediator installs a shared instance.
	Cache *ResultCache
	// BatchChunk bounds the binding sets shipped per batched push; it must
	// be positive (NewContext seeds DefaultBatchChunk; values entering from
	// configuration are validated by exec.Options.Validate and the console
	// flag, never silently defaulted downstream). A fixed default (rather
	// than one derived from worker counts) keeps push counts identical
	// between serial and parallel execution.
	BatchChunk int
	// PerRowDJoin disables set-at-a-time DJoin evaluation, restoring the
	// one-push-per-outer-row baseline (kept for comparison experiments).
	PerRowDJoin bool
	// Partial, when non-nil, enables graceful degradation: source
	// failures marked UnavailableError are recorded here and the failing
	// input replaced by an empty one instead of aborting the query (see
	// exec.Options.AllowPartial). Shared, not forked: every worker
	// records into the same report.
	Partial *PartialReport
	// Trace, when non-nil, is the span the current work belongs to:
	// EvalOp opens a child span per operator evaluation under it, and the
	// counter-mutation sites mirror their Stats increments into it (see
	// internal/obs). Nil means tracing is off — the only cost is a nil
	// check per operator.
	Trace *obs.Span
	// CheckWire, when non-nil, validates every wrapper response the
	// moment it arrives: SourceQuery.Eval calls it with the shipped table
	// before caching or returning it, and a non-nil error aborts the
	// query. The mediator installs a checker comparing rows against the
	// plan's inferred types when ExecOptions.CheckTypes is set.
	CheckWire func(q *SourceQuery, t *tab.Tab) error
}

// NewContext returns an empty evaluation context. The builtin function
// id(tree) — the identifier of an identified tree, or the target of a
// reference — is preregistered: it lets queries join references with the
// identified trees they point at (the DJoin-to-Join rewriting of Figure 7
// compares owner references with the persons extent this way).
func NewContext() *Context {
	ctx := &Context{
		Catalog:    make(map[string]data.Forest),
		Sources:    make(map[string]Source),
		Store:      data.NewStore(),
		Skolem:     NewSkolems(),
		Funcs:      make(map[string]Func),
		Stats:      &Stats{},
		BatchChunk: DefaultBatchChunk,
	}
	ctx.Funcs["id"] = func(args []tab.Cell) (tab.Cell, error) {
		if len(args) != 1 || args[0].Kind != tab.CTree {
			return tab.Null(), fmt.Errorf("id expects one tree argument")
		}
		n := args[0].Tree
		switch {
		case n.IsRef():
			return tab.AtomCell(data.String(n.Ref)), nil
		case n.ID != "":
			return tab.AtomCell(data.String(n.ID)), nil
		default:
			return tab.Null(), nil
		}
	}
	return ctx
}

// WithParams returns a shallow copy of the context with extra parameter
// bindings (used by DJoin to pass left-hand values to the right).
func (c *Context) WithParams(extra map[string]tab.Cell) *Context {
	cc := *c
	cc.Params = make(map[string]tab.Cell, len(c.Params)+len(extra))
	for k, v := range c.Params {
		cc.Params[k] = v
	}
	for k, v := range extra {
		cc.Params[k] = v
	}
	return &cc
}

// WithContext returns a shallow copy of the context carrying a cancellation
// context (threaded from Mediator.ExecuteContext down to the sources).
func (c *Context) WithContext(ctx context.Context) *Context {
	cc := *c
	cc.Ctx = ctx
	return &cc
}

// Fork returns a shallow copy with a fresh Stats accumulator. Parallel
// evaluation gives every concurrent worker its own fork so counter updates
// never race; the parent merges the forks back with Stats.Add, keeping the
// accounting exact (per-worker merge instead of shared atomics).
func (c *Context) Fork() *Context {
	cc := *c
	cc.Stats = &Stats{}
	return &cc
}

// Err reports the cancellation state of the attached context; a context-free
// evaluation is never cancelled.
func (c *Context) Err() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// Input resolves a named document: catalog first, then connected sources.
func (c *Context) Input(name string) (data.Forest, error) {
	if f, ok := c.Catalog[name]; ok {
		return f, nil
	}
	var names []string
	for _, s := range c.Sources {
		for _, d := range s.Documents() {
			if d == name {
				var f data.Forest
				var err error
				if cs, ok := s.(ContextSource); ok && c.Ctx != nil {
					f, err = cs.FetchContext(c.Ctx, name)
				} else {
					f, err = s.Fetch(name)
				}
				drainRetryStats(c, s)
				if err != nil {
					return nil, err
				}
				c.Stats.SourceFetches++
				traceCounts(c, obs.Counts{Fetches: 1})
				for _, n := range f {
					c.Stats.BytesShipped += int64(n.Size()) * 16
					c.Store.Register(n)
				}
				return f, nil
			}
			names = append(names, s.Name()+"."+d)
		}
	}
	sort.Strings(names)
	return nil, fmt.Errorf("algebra: unknown input %q (known: %s)", name, strings.Join(names, ", "))
}

// Op is a node of an algebraic plan.
type Op interface {
	// Columns returns the output column names, statically.
	Columns() []string
	// Children returns the input plans.
	Children() []Op
	// Eval materializes the operator's result.
	Eval(ctx *Context) (*tab.Tab, error)
	// Detail renders the operator head for plan printing.
	Detail() string
}

// Run evaluates a plan against a context (traced when ctx.Trace is set).
func Run(op Op, ctx *Context) (*tab.Tab, error) { return EvalOp(op, ctx) }

// ---------------------------------------------------------------------------
// Doc: named-document input
// ---------------------------------------------------------------------------

// Doc is the input operation of an algebraic expression: a named document
// (e.g. "artifacts"). It produces one row per tree of the document's forest
// in a single column.
type Doc struct {
	Name string
	Col  string // output column; defaults to "$doc"
}

func (d *Doc) col() string {
	if d.Col == "" {
		return "$doc"
	}
	return d.Col
}

// Columns implements Op.
func (d *Doc) Columns() []string { return []string{d.col()} }

// Children implements Op.
func (d *Doc) Children() []Op { return nil }

// Detail implements Op.
func (d *Doc) Detail() string { return fmt.Sprintf("Doc(%s)", d.Name) }

// Eval implements Op.
func (d *Doc) Eval(ctx *Context) (*tab.Tab, error) {
	f, err := ctx.Input(d.Name)
	if err != nil {
		return nil, err
	}
	t := tab.New(d.col())
	for _, n := range f {
		t.Add(tab.TreeCell(n))
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Bind
// ---------------------------------------------------------------------------

// Bind extracts variable bindings from trees using a filter (Figure 4).
// Three input forms exist:
//
//   - Doc != "": bind over a named document (the common leaf of a plan);
//   - From != nil, Col != "": bind over the trees in column Col of each
//     input row, extending the row (the "linear split" form of Figure 7);
//   - From == nil, Doc == "", Col != "": bind over a DJoin parameter.
type Bind struct {
	From Op
	Doc  string
	Col  string
	F    *filter.Filter
}

// Columns implements Op.
func (b *Bind) Columns() []string {
	var out []string
	if b.From != nil {
		out = append(out, b.From.Columns()...)
	}
	return append(out, b.F.Vars()...)
}

// Children implements Op.
func (b *Bind) Children() []Op {
	if b.From == nil {
		return nil
	}
	return []Op{b.From}
}

// Detail implements Op.
func (b *Bind) Detail() string {
	src := b.Doc
	if src == "" {
		src = b.Col
	}
	return fmt.Sprintf("Bind(%s, %s)", src, b.F)
}

// Eval implements Op.
func (b *Bind) Eval(ctx *Context) (*tab.Tab, error) {
	f := b.F
	if f.Model == nil && ctx.Model != nil {
		f = &filter.Filter{Root: f.Root, Model: ctx.Model}
	}
	switch {
	case b.Doc != "":
		forest, err := ctx.Input(b.Doc)
		if err != nil {
			return nil, err
		}
		t := f.MatchForest(ctx.Store, forest)
		ctx.Stats.BindRows += t.Len()
		return t, nil
	case b.From == nil:
		cell, ok := ctx.Params[b.Col]
		if !ok {
			return nil, fmt.Errorf("algebra: Bind over unbound parameter %s", b.Col)
		}
		t := f.MatchForest(ctx.Store, cell.AsForest())
		ctx.Stats.BindRows += t.Len()
		return t, nil
	default:
		in, err := EvalOp(b.From, ctx)
		if err != nil {
			return nil, err
		}
		ci := in.ColIndex(b.Col)
		if ci < 0 {
			return nil, fmt.Errorf("algebra: Bind over unknown column %s of %v", b.Col, in.Cols)
		}
		out := tab.New(b.Columns()...)
		for _, r := range in.Rows {
			sub := f.MatchForest(ctx.Store, r[ci].AsForest())
			for _, sr := range sub.Rows {
				out.AddRow(append(r.Clone(), sr...))
			}
		}
		ctx.Stats.BindRows += out.Len()
		return out, nil
	}
}

// ---------------------------------------------------------------------------
// Select, Project, Map
// ---------------------------------------------------------------------------

// Select filters rows by a predicate.
type Select struct {
	From Op
	Pred Expr
}

// Columns implements Op.
func (s *Select) Columns() []string { return s.From.Columns() }

// Children implements Op.
func (s *Select) Children() []Op { return []Op{s.From} }

// Detail implements Op.
func (s *Select) Detail() string { return fmt.Sprintf("Select(%s)", s.Pred) }

// Eval implements Op.
func (s *Select) Eval(ctx *Context) (*tab.Tab, error) {
	in, err := EvalOp(s.From, ctx)
	if err != nil {
		return nil, err
	}
	cols := colIndex(in.Cols)
	out := tab.New(in.Cols...)
	for _, r := range in.Rows {
		ok, err := truth(s.Pred, ctx, cols, r)
		if err != nil {
			return nil, fmt.Errorf("select: %w", err)
		}
		if ok {
			out.Rows = append(out.Rows, r)
		}
	}
	return out, nil
}

// Project keeps (and possibly renames, "new=old") the given columns.
type Project struct {
	From Op
	Cols []string
}

// Columns implements Op.
func (p *Project) Columns() []string {
	out := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		if j := strings.IndexByte(c, '='); j >= 0 {
			out[i] = c[:j]
		} else {
			out[i] = c
		}
	}
	return out
}

// Children implements Op.
func (p *Project) Children() []Op { return []Op{p.From} }

// Detail implements Op.
func (p *Project) Detail() string { return fmt.Sprintf("Project(%s)", strings.Join(p.Cols, ", ")) }

// Eval implements Op.
func (p *Project) Eval(ctx *Context) (*tab.Tab, error) {
	in, err := EvalOp(p.From, ctx)
	if err != nil {
		return nil, err
	}
	return in.Project(p.Cols...), nil
}

// MapExpr extends each row with a computed column (the algebra's Map).
type MapExpr struct {
	From Op
	Col  string
	E    Expr
}

// Columns implements Op.
func (m *MapExpr) Columns() []string { return append(m.From.Columns(), m.Col) }

// Children implements Op.
func (m *MapExpr) Children() []Op { return []Op{m.From} }

// Detail implements Op.
func (m *MapExpr) Detail() string { return fmt.Sprintf("Map(%s := %s)", m.Col, m.E) }

// Eval implements Op.
func (m *MapExpr) Eval(ctx *Context) (*tab.Tab, error) {
	in, err := EvalOp(m.From, ctx)
	if err != nil {
		return nil, err
	}
	cols := colIndex(in.Cols)
	out := tab.New(m.Columns()...)
	for _, r := range in.Rows {
		v, err := m.E.Eval(ctx, cols, r)
		if err != nil {
			return nil, fmt.Errorf("map: %w", err)
		}
		out.AddRow(append(r.Clone(), v))
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Join, DJoin
// ---------------------------------------------------------------------------

// Join combines two inputs under a predicate. When the predicate contains
// column-column equalities across the two sides, a hash join is used;
// otherwise nested loops.
type Join struct {
	L, R Op
	Pred Expr
}

// Columns implements Op.
func (j *Join) Columns() []string { return append(j.L.Columns(), j.R.Columns()...) }

// Children implements Op.
func (j *Join) Children() []Op { return []Op{j.L, j.R} }

// Detail implements Op.
func (j *Join) Detail() string { return fmt.Sprintf("Join(%s)", j.Pred) }

// Eval implements Op.
func (j *Join) Eval(ctx *Context) (*tab.Tab, error) {
	l, err := EvalOp(j.L, ctx)
	if err != nil {
		return nil, err
	}
	r, err := EvalOp(j.R, ctx)
	if err != nil {
		return nil, err
	}
	out := tab.New(j.Columns()...)
	cols := colIndex(out.Cols)
	// Hash strategy: collect cross-side equalities.
	var lKeys, rKeys []int
	var rest []Expr
	lIdx, rIdx := colIndex(l.Cols), colIndex(r.Cols)
	for _, c := range SplitConj(j.Pred) {
		if a, b, ok := EqColumns(c); ok {
			if li, lok := lIdx[a]; lok {
				if ri, rok := rIdx[b]; rok {
					lKeys = append(lKeys, li)
					rKeys = append(rKeys, ri)
					continue
				}
			}
			if li, lok := lIdx[b]; lok {
				if ri, rok := rIdx[a]; rok {
					lKeys = append(lKeys, li)
					rKeys = append(rKeys, ri)
					continue
				}
			}
		}
		rest = append(rest, c)
	}
	residual := Conj(rest...)
	emit := func(lr, rr tab.Row) error {
		row := append(lr.Clone(), rr...)
		ok, err := truth(residual, ctx, cols, row)
		if err != nil {
			return fmt.Errorf("join: %w", err)
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
		return nil
	}
	if len(lKeys) > 0 {
		buckets := make(map[string][]tab.Row, len(r.Rows))
		for _, rr := range r.Rows {
			var b strings.Builder
			for _, k := range rKeys {
				b.WriteString(rr[k].Key())
				b.WriteByte('\x00')
			}
			buckets[b.String()] = append(buckets[b.String()], rr)
		}
		for _, lr := range l.Rows {
			var b strings.Builder
			for _, k := range lKeys {
				b.WriteString(lr[k].Key())
				b.WriteByte('\x00')
			}
			for _, rr := range buckets[b.String()] {
				if err := emit(lr, rr); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}
	for _, lr := range l.Rows {
		for _, rr := range r.Rows {
			if err := emit(lr, rr); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// DJoin is the dependency join: the right-hand plan is evaluated with the
// left rows' columns available as parameters (the "information passing" of
// Section 5.3 and the Bind-split of Figure 7). Evaluation is set-at-a-time:
// outer rows are deduplicated to distinct binding sets over the inner
// plan's free variables, each set is evaluated once — through one batched
// push per chunk when the inner plan is a SourceQuery over a BatchSource —
// and the results are re-expanded per outer row, so the output is row for
// row what one-evaluation-per-row produces (Context.PerRowDJoin restores
// that baseline).
type DJoin struct {
	L, R Op

	prepOnce sync.Once
	prep     *PreparedPlan
}

// Prepared returns the per-DJoin preparation of the inner plan (free
// variables, canonical encoding), computed once instead of once per row.
func (j *DJoin) Prepared() *PreparedPlan {
	j.prepOnce.Do(func() { j.prep = PreparePlan(j.R) })
	return j.prep
}

// Columns implements Op.
func (j *DJoin) Columns() []string { return append(j.L.Columns(), j.R.Columns()...) }

// Children implements Op.
func (j *DJoin) Children() []Op { return []Op{j.L, j.R} }

// Detail implements Op.
func (j *DJoin) Detail() string { return "DJoin" }

// Eval implements Op.
func (j *DJoin) Eval(ctx *Context) (*tab.Tab, error) {
	l, err := EvalOp(j.L, ctx)
	if err != nil {
		return nil, err
	}
	if ctx.PerRowDJoin {
		return j.evalPerRow(ctx, l)
	}
	set := NewDJoinSet(ctx, j, l)
	if set.Batchable() {
		chunks, err := set.PendingChunks(ctx)
		if err != nil {
			return nil, err
		}
		for _, chunk := range chunks {
			if err := set.EvalChunk(ctx, chunk); err != nil {
				return nil, err
			}
		}
	} else {
		for i := range set.Bindings.Sets {
			err := set.EvalSet(ctx, i, j.R, func(c *Context, op Op) (*tab.Tab, error) {
				return EvalOp(op, c)
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return set.Expand(l, j.Columns()), nil
}

// evalPerRow is the pre-batching baseline: one inner evaluation per outer
// row with the full row bound as parameters.
func (j *DJoin) evalPerRow(ctx *Context, l *tab.Tab) (*tab.Tab, error) {
	out := tab.New(j.Columns()...)
	for _, lr := range l.Rows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// A fresh map per row: reusing one map across rows races with any
		// concurrent reader of a previous row's bindings (the parallel
		// DJoin fan-out of internal/exec reads them while this loop would
		// be rewriting the shared map).
		params := make(map[string]tab.Cell, len(l.Cols))
		for i, c := range l.Cols {
			params[c] = lr[i]
		}
		sub, err := EvalOp(j.R, ctx.WithParams(params))
		if err != nil {
			return nil, err
		}
		for _, rr := range sub.Rows {
			out.AddRow(append(lr.Clone(), rr...))
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Union, Intersect, Distinct
// ---------------------------------------------------------------------------

// Union concatenates two inputs with identical columns (bag semantics).
type Union struct{ L, R Op }

// Columns implements Op.
func (u *Union) Columns() []string { return u.L.Columns() }

// Children implements Op.
func (u *Union) Children() []Op { return []Op{u.L, u.R} }

// Detail implements Op.
func (u *Union) Detail() string { return "Union" }

// Eval implements Op.
func (u *Union) Eval(ctx *Context) (*tab.Tab, error) {
	l, err := EvalOp(u.L, ctx)
	if err != nil {
		return nil, err
	}
	r, err := EvalOp(u.R, ctx)
	if err != nil {
		return nil, err
	}
	out := tab.New(l.Cols...)
	out.Rows = append(append(out.Rows, l.Rows...), r.Rows...)
	if len(r.Cols) != len(l.Cols) {
		return nil, fmt.Errorf("algebra: union of incompatible tabs %v / %v", l.Cols, r.Cols)
	}
	return out, nil
}

// Intersect keeps the distinct rows present in both inputs.
type Intersect struct{ L, R Op }

// Columns implements Op.
func (i *Intersect) Columns() []string { return i.L.Columns() }

// Children implements Op.
func (i *Intersect) Children() []Op { return []Op{i.L, i.R} }

// Detail implements Op.
func (i *Intersect) Detail() string { return "Intersect" }

// Eval implements Op.
func (i *Intersect) Eval(ctx *Context) (*tab.Tab, error) {
	l, err := EvalOp(i.L, ctx)
	if err != nil {
		return nil, err
	}
	r, err := EvalOp(i.R, ctx)
	if err != nil {
		return nil, err
	}
	if len(r.Cols) != len(l.Cols) {
		return nil, fmt.Errorf("algebra: intersect of incompatible tabs %v / %v", l.Cols, r.Cols)
	}
	inR := make(map[string]bool, len(r.Rows))
	for _, rr := range r.Rows {
		inR[rr.Key()] = true
	}
	out := tab.New(l.Cols...)
	seen := map[string]bool{}
	for _, lr := range l.Rows {
		k := lr.Key()
		if inR[k] && !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, lr)
		}
	}
	return out, nil
}

// Distinct removes duplicate rows.
type Distinct struct{ From Op }

// Columns implements Op.
func (d *Distinct) Columns() []string { return d.From.Columns() }

// Children implements Op.
func (d *Distinct) Children() []Op { return []Op{d.From} }

// Detail implements Op.
func (d *Distinct) Detail() string { return "Distinct" }

// Eval implements Op.
func (d *Distinct) Eval(ctx *Context) (*tab.Tab, error) {
	in, err := EvalOp(d.From, ctx)
	if err != nil {
		return nil, err
	}
	return in.Distinct(), nil
}

// ---------------------------------------------------------------------------
// Group, Sort
// ---------------------------------------------------------------------------

// Group nests the non-key columns of each key group into a nested Tab.
type Group struct {
	From Op
	Keys []string
	Into string
}

// Columns implements Op.
func (g *Group) Columns() []string { return append(append([]string{}, g.Keys...), g.Into) }

// Children implements Op.
func (g *Group) Children() []Op { return []Op{g.From} }

// Detail implements Op.
func (g *Group) Detail() string {
	return fmt.Sprintf("Group(%s ⇒ %s)", strings.Join(g.Keys, ", "), g.Into)
}

// Eval implements Op.
func (g *Group) Eval(ctx *Context) (*tab.Tab, error) {
	in, err := EvalOp(g.From, ctx)
	if err != nil {
		return nil, err
	}
	return in.GroupBy(g.Into, g.Keys...), nil
}

// Sort orders rows by the given columns.
type Sort struct {
	From Op
	Cols []string
}

// Columns implements Op.
func (s *Sort) Columns() []string { return s.From.Columns() }

// Children implements Op.
func (s *Sort) Children() []Op { return []Op{s.From} }

// Detail implements Op.
func (s *Sort) Detail() string { return fmt.Sprintf("Sort(%s)", strings.Join(s.Cols, ", ")) }

// Eval implements Op.
func (s *Sort) Eval(ctx *Context) (*tab.Tab, error) {
	in, err := EvalOp(s.From, ctx)
	if err != nil {
		return nil, err
	}
	out := tab.New(in.Cols...)
	out.Rows = append(out.Rows, in.Rows...)
	out.SortBy(s.Cols...)
	return out, nil
}

// ---------------------------------------------------------------------------
// SourceQuery and Literal
// ---------------------------------------------------------------------------

// SourceQuery wraps a subplan pushed to an external source: the source
// evaluates Plan natively (e.g. by translating it to OQL or to a Wais
// full-text call) and ships back only the result rows.
type SourceQuery struct {
	Source string
	Plan   Op

	prepOnce sync.Once
	prep     *PreparedPlan
}

// Prepared returns the canonical encoding and free variables of the pushed
// plan, computed once per node instead of once per push (cache keys and
// batched pushes both need them).
func (q *SourceQuery) Prepared() *PreparedPlan {
	q.prepOnce.Do(func() { q.prep = PreparePlan(q.Plan) })
	return q.prep
}

// Columns implements Op.
func (q *SourceQuery) Columns() []string { return q.Plan.Columns() }

// Children implements Op.
func (q *SourceQuery) Children() []Op { return []Op{q.Plan} }

// Detail implements Op.
func (q *SourceQuery) Detail() string { return fmt.Sprintf("SourceQuery(%s)", q.Source) }

// Eval implements Op.
func (q *SourceQuery) Eval(ctx *Context) (*tab.Tab, error) {
	src, ok := ctx.Sources[q.Source]
	if !ok {
		return nil, fmt.Errorf("algebra: unknown source %q", q.Source)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Probe the wrapper-result cache under (source, canonical plan
	// encoding, free-variable bindings): only the plan's free variables
	// influence what the source computes, so restricting the key to them
	// lets a hit stand in for any parameter environment agreeing on them.
	var key string
	if ctx.Cache != nil {
		if p := q.Prepared(); p.Enc != "" {
			key = CacheKey(q.Source, p.Enc, ParamsKey(p.Vars, ctx.Params))
			if t, ok := ctx.Cache.Get(key); ok {
				ctx.Stats.CacheHits++
				traceCounts(ctx, obs.Counts{CacheHits: 1})
				traceAnnotate(ctx, "cache", "hit")
				return t, nil
			}
			ctx.Stats.CacheMisses++
			traceCounts(ctx, obs.Counts{CacheMisses: 1})
		}
	}
	if sr, ok := src.(StateReporter); ok {
		traceAnnotate(ctx, "breaker", sr.SourceState())
	}
	var t *tab.Tab
	var err error
	if cs, ok := src.(ContextSource); ok && ctx.Ctx != nil {
		t, err = cs.PushContext(ctx.Ctx, q.Plan, ctx.Params)
	} else {
		t, err = src.Push(q.Plan, ctx.Params)
	}
	drainRetryStats(ctx, src)
	if err != nil {
		return nil, fmt.Errorf("source %s: %w", q.Source, err)
	}
	ctx.Stats.SourcePushes++
	traceCounts(ctx, obs.Counts{Pushes: 1})
	countShipped(ctx, t)
	if ctx.CheckWire != nil {
		// Validate before caching: a non-conforming response must not be
		// served from the cache on a later probe.
		if err := ctx.CheckWire(q, t); err != nil {
			return nil, err
		}
	}
	if key != "" {
		if ctx.Cache.Put(key, t) {
			ctx.Stats.CacheEvictions++
		}
	}
	return t, nil
}

// Literal wraps a constant Tab (fixtures, unit tests, explain samples).
type Literal struct{ T *tab.Tab }

// Columns implements Op.
func (l *Literal) Columns() []string { return l.T.Cols }

// Children implements Op.
func (l *Literal) Children() []Op { return nil }

// Detail implements Op.
func (l *Literal) Detail() string { return fmt.Sprintf("Literal(%d rows)", l.T.Len()) }

// Eval implements Op.
func (l *Literal) Eval(*Context) (*tab.Tab, error) { return l.T, nil }

func colIndex(cols []string) map[string]int {
	m := make(map[string]int, len(cols))
	for i, c := range cols {
		m[c] = i
	}
	return m
}

// Describe renders the plan as an indented operator tree.
func Describe(op Op) string {
	var b strings.Builder
	describe(&b, op, 0)
	return b.String()
}

func describe(b *strings.Builder, op Op, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	if op == nil {
		b.WriteString("<nil>\n")
		return
	}
	b.WriteString(op.Detail())
	b.WriteByte('\n')
	for _, c := range op.Children() {
		describe(b, c, depth+1)
	}
}

// Walk visits the plan tree in pre-order.
func Walk(op Op, fn func(Op) bool) {
	if op == nil || !fn(op) {
		return
	}
	for _, c := range op.Children() {
		Walk(c, fn)
	}
}
