package algebra

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/tab"
)

// StateReporter is implemented by sources that can report an availability
// state ("closed", "open", "half-open" for the mediator's circuit-breaker
// guards). Traced evaluation annotates source spans with it so a profile
// shows which pushes ran against a degraded source.
type StateReporter interface {
	SourceState() string
}

// OpKind names an operator for tracing and profiling. The type switch is
// exhaustive over the algebra (yat-lint enforces that), so a new operator
// cannot silently profile as "unknown".
func OpKind(op Op) string {
	switch op.(type) {
	case *Doc:
		return "Doc"
	case *Bind:
		return "Bind"
	case *Select:
		return "Select"
	case *Project:
		return "Project"
	case *MapExpr:
		return "MapExpr"
	case *Join:
		return "Join"
	case *DJoin:
		return "DJoin"
	case *Union:
		return "Union"
	case *Intersect:
		return "Intersect"
	case *Distinct:
		return "Distinct"
	case *Group:
		return "Group"
	case *Sort:
		return "Sort"
	case *SourceQuery:
		return "SourceQuery"
	case *Literal:
		return "Literal"
	case *TreeOp:
		return "Tree"
	default:
		return fmt.Sprintf("%T", op)
	}
}

// EvalOp is the traced evaluation entry point: every recursive evaluation in
// this package goes through it. With tracing off (Context.Trace == nil) it
// is a nil check and a direct Eval — the near-zero overhead pinned by
// BenchmarkTraceOverhead. With tracing on it opens a child span per operator
// (Literals excepted: they are materialized constants, and the parallel
// engine re-wraps evaluated inputs in them), threads the span through the
// context — and through Context.Ctx, so the wire client can tag outgoing
// frames with the trace id — and records wall time, output rows and failure.
func EvalOp(op Op, ctx *Context) (*tab.Tab, error) {
	if ctx.Trace == nil {
		return op.Eval(ctx)
	}
	if _, ok := op.(*Literal); ok {
		return op.Eval(ctx)
	}
	sp := ctx.Trace.NewChild(OpKind(op), op.Detail())
	cc := *ctx
	cc.Trace = sp
	if cc.Ctx != nil {
		cc.Ctx = obs.WithSpan(cc.Ctx, sp)
	}
	t, err := op.Eval(&cc)
	rows := -1
	if t != nil {
		rows = t.Len()
	}
	sp.Finish(rows, err)
	return t, err
}

// traceCounts folds source-work counts into the ambient span, if tracing.
// Every Stats counter mutation in this package pairs with a traceCounts call
// on the span the work happened under — that is what makes a trace's
// TreeCounts sum to the global Stats exactly (TestProfileSumsMatchStats).
func traceCounts(ctx *Context, c obs.Counts) {
	if ctx.Trace != nil {
		ctx.Trace.AddCounts(c)
	}
}

// traceAnnotate attaches a key/value annotation to the ambient span, if
// tracing.
func traceAnnotate(ctx *Context, key, value string) {
	if ctx.Trace != nil {
		ctx.Trace.Annotate(key, value)
	}
}
