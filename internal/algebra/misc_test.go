package algebra

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/tab"
)

func TestExprVarsAndStrings(t *testing.T) {
	cases := []struct {
		src  string
		vars []string
	}{
		{`$a = $b`, []string{"$a", "$b"}},
		{`$a + $b * $c`, []string{"$a", "$b", "$c"}},
		{`NOT ($x = 1) AND $y < 2 OR $z >= 3`, []string{"$x", "$y", "$z"}},
		{`contains($w, "text")`, []string{"$w"}},
		{`true`, nil},
		{`"const"`, nil},
	}
	for _, c := range cases {
		e := MustParseExpr(c.src)
		got := append([]string(nil), e.Vars()...)
		sort.Strings(got)
		want := append([]string(nil), c.vars...)
		sort.Strings(want)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s: Vars = %v, want %v", c.src, got, want)
		}
		// String round-trips through the parser.
		back, err := ParseExpr(e.String())
		if err != nil {
			t.Errorf("reparse %q: %v", e.String(), err)
			continue
		}
		if back.String() != e.String() {
			t.Errorf("unstable: %q -> %q", e.String(), back.String())
		}
	}
}

func TestExprHelpers(t *testing.T) {
	if Eq(Var{"$a"}, Var{"$b"}).String() != "$a = $b" {
		t.Error("Eq")
	}
	if VarEq("$a", "$b").String() != "$a = $b" {
		t.Error("VarEq")
	}
	if Conj().String() != "true" {
		t.Error("empty Conj is true")
	}
	one := MustParseExpr(`$a = 1`)
	if Conj(one, nil).String() != one.String() {
		t.Error("Conj skips nils")
	}
	conj := Conj(one, MustParseExpr(`$b = 2`), MustParseExpr(`$c = 3`))
	if len(SplitConj(conj)) != 3 {
		t.Errorf("SplitConj = %v", SplitConj(conj))
	}
	if len(SplitConj(TrueExpr())) != 0 {
		t.Error("SplitConj(true) is empty")
	}
	if a, b, ok := EqColumns(MustParseExpr(`$x = $y`)); !ok || a != "$x" || b != "$y" {
		t.Error("EqColumns on var=var")
	}
	if _, _, ok := EqColumns(MustParseExpr(`$x = 1`)); ok {
		t.Error("EqColumns must reject var=const")
	}
	if _, _, ok := EqColumns(MustParseExpr(`$x < $y`)); ok {
		t.Error("EqColumns must reject non-eq")
	}
}

func TestBuiltinIDFunction(t *testing.T) {
	ctx := NewContext()
	fn := ctx.Funcs["id"]
	ident := data.Elem("class").WithID("a1")
	v, err := fn([]tab.Cell{tab.TreeCell(ident)})
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := v.AsAtom(); a.S != "a1" {
		t.Errorf("id(identified) = %v", a)
	}
	ref := data.RefNode("owner", "p7")
	v, err = fn([]tab.Cell{tab.TreeCell(ref)})
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := v.AsAtom(); a.S != "p7" {
		t.Errorf("id(ref) = %v", a)
	}
	v, err = fn([]tab.Cell{tab.TreeCell(data.Elem("anon"))})
	if err != nil || !v.IsNull() {
		t.Errorf("id(anonymous) = %v, %v", v, err)
	}
	if _, err := fn([]tab.Cell{tab.AtomCell(data.Int(1))}); err == nil {
		t.Error("id of non-tree must fail")
	}
	if _, err := fn(nil); err == nil {
		t.Error("id arity check")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{SourceFetches: 1, SourcePushes: 2, TuplesShipped: 3, BytesShipped: 4, FuncCalls: 5, BindRows: 6,
		CacheHits: 7, CacheMisses: 8, CacheEvictions: 9}
	b := Stats{SourceFetches: 10, SourcePushes: 20, TuplesShipped: 30, BytesShipped: 40, FuncCalls: 50, BindRows: 60,
		CacheHits: 70, CacheMisses: 80, CacheEvictions: 90}
	a.Add(b)
	if a.SourceFetches != 11 || a.SourcePushes != 22 || a.TuplesShipped != 33 ||
		a.BytesShipped != 44 || a.FuncCalls != 55 || a.BindRows != 66 ||
		a.CacheHits != 77 || a.CacheMisses != 88 || a.CacheEvictions != 99 {
		t.Errorf("Stats.Add = %+v", a)
	}
}

func TestRunHelper(t *testing.T) {
	lit := tab.New("$x")
	lit.Add(tab.AtomCell(data.Int(1)))
	res, err := Run(&Literal{T: lit}, NewContext())
	if err != nil || res.Len() != 1 {
		t.Errorf("Run = %v, %v", res, err)
	}
}

func TestConsVarHelpers(t *testing.T) {
	c := MustParseCons(`doc[ *artwork($t, $c) := work[ title: $t, owner: &person($o) ], note: $n ]`)
	direct := strings.Join(c.DirectVars(), ",")
	if direct != "$n" {
		t.Errorf("DirectVars = %q (starred kids excluded)", direct)
	}
	all := strings.Join(c.AllVars(), ",")
	for _, v := range []string{"$t", "$c", "$o", "$n"} {
		if !strings.Contains(all, v) {
			t.Errorf("AllVars missing %s: %q", v, all)
		}
	}
}

func TestBindParamErrorAndUnknownColumn(t *testing.T) {
	ctx := NewContext()
	b := &Bind{Col: "$missing", F: mustFilter(t, `x: $v`)}
	if _, err := b.Eval(ctx); err == nil {
		t.Error("bind over unbound parameter must fail")
	}
	lit := tab.New("$a")
	lit.Add(tab.AtomCell(data.Int(1)))
	b2 := &Bind{From: &Literal{T: lit}, Col: "$nope", F: mustFilter(t, `x: $v`)}
	if _, err := b2.Eval(ctx); err == nil {
		t.Error("bind over unknown column must fail")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	lit := tab.New("$s")
	lit.Add(tab.AtomCell(data.String("x")))
	m := &MapExpr{From: &Literal{T: lit}, Col: "$y", E: MustParseExpr(`$s + 1`)}
	if _, err := m.Eval(NewContext()); err == nil {
		t.Error("map over type error must fail")
	}
	s := &Select{From: &Literal{T: lit}, Pred: MustParseExpr(`$s + 1`)}
	if _, err := s.Eval(NewContext()); err == nil {
		t.Error("non-boolean predicate must fail")
	}
}

func TestSortAndGroupDetails(t *testing.T) {
	lit := tab.New("$k", "$v")
	lit.Add(tab.AtomCell(data.String("b")), tab.AtomCell(data.Int(1)))
	lit.Add(tab.AtomCell(data.String("a")), tab.AtomCell(data.Int(2)))
	lit.Add(tab.AtomCell(data.String("a")), tab.AtomCell(data.Int(3)))
	srt := &Sort{From: &Literal{T: lit}, Cols: []string{"$k", "$v"}}
	if !strings.Contains(srt.Detail(), "$k") {
		t.Error("Sort detail")
	}
	res, err := srt.Eval(NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := res.Rows[0][1].AsAtom(); a.I != 2 {
		t.Errorf("sorted first = %v", res.Rows[0])
	}
	grp := &Group{From: &Literal{T: lit}, Keys: []string{"$k"}, Into: "$g"}
	gres, err := grp.Eval(NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if gres.Len() != 2 || gres.Rows[1][1].Tab.Len() != 2 {
		t.Errorf("group = %s", gres)
	}
	if !strings.Contains(grp.Detail(), "⇒ $g") {
		t.Error("Group detail")
	}
}

func mustFilter(t *testing.T, src string) *filter.Filter {
	t.Helper()
	f, err := filter.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
