package algebra

import (
	"fmt"
	"strings"

	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/tab"
	"repro/internal/xmlenc"
)

// XML serialization of algebraic plans, used by the wire protocol when the
// mediator pushes a subplan to a remote wrapper (Figure 2 deployment).
// Filters, predicates and construction patterns are embedded in their
// stable textual syntaxes (each has a print/parse round-trip property
// verified by tests); the plan structure itself is XML.

// PlanToXML serializes a plan.
func PlanToXML(op Op) (*data.Node, error) {
	switch x := op.(type) {
	case *Doc:
		n := data.Elem("doc")
		n.Add(data.Text("@name", x.Name))
		if x.Col != "" {
			n.Add(data.Text("@col", x.Col))
		}
		return n, nil
	case *Bind:
		n := data.Elem("bind")
		if x.Doc != "" {
			n.Add(data.Text("@doc", x.Doc))
		}
		if x.Col != "" {
			n.Add(data.Text("@col", x.Col))
		}
		n.Add(data.Text("@filter", x.F.String()))
		if x.From != nil {
			from, err := PlanToXML(x.From)
			if err != nil {
				return nil, err
			}
			n.Add(data.Elem("from", from))
		}
		return n, nil
	case *Select:
		return unaryXML("select", x.From, data.Text("@pred", x.Pred.String()))
	case *Project:
		return unaryXML("project", x.From, data.Text("@cols", strings.Join(x.Cols, " ")))
	case *MapExpr:
		n, err := unaryXML("map", x.From, data.Text("@expr", x.E.String()))
		if err != nil {
			return nil, err
		}
		n.Add(data.Text("@col", x.Col))
		return n, nil
	case *Join:
		return binaryXML("join", x.L, x.R, data.Text("@pred", x.Pred.String()))
	case *DJoin:
		return binaryXML("djoin", x.L, x.R)
	case *Union:
		return binaryXML("union", x.L, x.R)
	case *Intersect:
		return binaryXML("intersect", x.L, x.R)
	case *Distinct:
		return unaryXML("distinct", x.From)
	case *Group:
		n, err := unaryXML("group", x.From, data.Text("@keys", strings.Join(x.Keys, " ")))
		if err != nil {
			return nil, err
		}
		n.Add(data.Text("@into", x.Into))
		return n, nil
	case *Sort:
		return unaryXML("sort", x.From, data.Text("@cols", strings.Join(x.Cols, " ")))
	case *TreeOp:
		n, err := unaryXML("tree", x.From, data.Text("@cons", x.C.String()))
		if err != nil {
			return nil, err
		}
		if x.OutCol != "" {
			n.Add(data.Text("@out", x.OutCol))
		}
		return n, nil
	case *SourceQuery:
		inner, err := PlanToXML(x.Plan)
		if err != nil {
			return nil, err
		}
		n := data.Elem("sourcequery", data.Elem("plan", inner))
		n.Add(data.Text("@source", x.Source))
		return n, nil
	case *Literal:
		return data.Elem("literal", tab.ToXML(x.T)), nil
	default:
		return nil, fmt.Errorf("algebra: cannot serialize operator %T", op)
	}
}

func unaryXML(label string, from Op, extra ...*data.Node) (*data.Node, error) {
	f, err := PlanToXML(from)
	if err != nil {
		return nil, err
	}
	n := data.Elem(label)
	n.Add(extra...)
	n.Add(data.Elem("from", f))
	return n, nil
}

func binaryXML(label string, l, r Op, extra ...*data.Node) (*data.Node, error) {
	ln, err := PlanToXML(l)
	if err != nil {
		return nil, err
	}
	rn, err := PlanToXML(r)
	if err != nil {
		return nil, err
	}
	n := data.Elem(label)
	n.Add(extra...)
	n.Add(data.Elem("left", ln), data.Elem("right", rn))
	return n, nil
}

// PlanFromXML deserializes a plan.
func PlanFromXML(n *data.Node) (Op, error) {
	if n == nil {
		return nil, fmt.Errorf("algebra: nil plan element")
	}
	switch n.Label {
	case "doc":
		return &Doc{Name: xattr(n, "name"), Col: xattr(n, "col")}, nil
	case "bind":
		fsrc := xattr(n, "filter")
		f, err := filter.Parse(fsrc)
		if err != nil {
			return nil, fmt.Errorf("algebra: bind filter: %w", err)
		}
		b := &Bind{Doc: xattr(n, "doc"), Col: xattr(n, "col"), F: f}
		if from := n.Child("from"); from != nil {
			inner, err := PlanFromXML(firstChildElem(from))
			if err != nil {
				return nil, err
			}
			b.From = inner
		}
		return b, nil
	case "select":
		from, err := fromOf(n)
		if err != nil {
			return nil, err
		}
		pred, err := ParseExpr(xattr(n, "pred"))
		if err != nil {
			return nil, fmt.Errorf("algebra: select pred: %w", err)
		}
		return &Select{From: from, Pred: pred}, nil
	case "project":
		from, err := fromOf(n)
		if err != nil {
			return nil, err
		}
		return &Project{From: from, Cols: fields(xattr(n, "cols"))}, nil
	case "map":
		from, err := fromOf(n)
		if err != nil {
			return nil, err
		}
		e, err := ParseExpr(xattr(n, "expr"))
		if err != nil {
			return nil, fmt.Errorf("algebra: map expr: %w", err)
		}
		return &MapExpr{From: from, Col: xattr(n, "col"), E: e}, nil
	case "join":
		l, r, err := sidesOf(n)
		if err != nil {
			return nil, err
		}
		pred, err := ParseExpr(xattr(n, "pred"))
		if err != nil {
			return nil, fmt.Errorf("algebra: join pred: %w", err)
		}
		return &Join{L: l, R: r, Pred: pred}, nil
	case "djoin":
		l, r, err := sidesOf(n)
		if err != nil {
			return nil, err
		}
		return &DJoin{L: l, R: r}, nil
	case "union":
		l, r, err := sidesOf(n)
		if err != nil {
			return nil, err
		}
		return &Union{L: l, R: r}, nil
	case "intersect":
		l, r, err := sidesOf(n)
		if err != nil {
			return nil, err
		}
		return &Intersect{L: l, R: r}, nil
	case "distinct":
		from, err := fromOf(n)
		if err != nil {
			return nil, err
		}
		return &Distinct{From: from}, nil
	case "group":
		from, err := fromOf(n)
		if err != nil {
			return nil, err
		}
		return &Group{From: from, Keys: fields(xattr(n, "keys")), Into: xattr(n, "into")}, nil
	case "sort":
		from, err := fromOf(n)
		if err != nil {
			return nil, err
		}
		return &Sort{From: from, Cols: fields(xattr(n, "cols"))}, nil
	case "tree":
		from, err := fromOf(n)
		if err != nil {
			return nil, err
		}
		c, err := ParseCons(xattr(n, "cons"))
		if err != nil {
			return nil, fmt.Errorf("algebra: tree cons: %w", err)
		}
		return &TreeOp{From: from, C: c, OutCol: xattr(n, "out")}, nil
	case "sourcequery":
		plan := n.Child("plan")
		if plan == nil {
			return nil, fmt.Errorf("algebra: sourcequery without plan")
		}
		inner, err := PlanFromXML(firstChildElem(plan))
		if err != nil {
			return nil, err
		}
		return &SourceQuery{Source: xattr(n, "source"), Plan: inner}, nil
	case "literal":
		t, err := tab.FromXML(firstChildElem(n))
		if err != nil {
			return nil, err
		}
		return &Literal{T: t}, nil
	default:
		return nil, fmt.Errorf("algebra: unknown plan element <%s>", n.Label)
	}
}

func fromOf(n *data.Node) (Op, error) {
	from := n.Child("from")
	if from == nil {
		return nil, fmt.Errorf("algebra: <%s> without <from>", n.Label)
	}
	return PlanFromXML(firstChildElem(from))
}

func sidesOf(n *data.Node) (Op, Op, error) {
	ln, rn := n.Child("left"), n.Child("right")
	if ln == nil || rn == nil {
		return nil, nil, fmt.Errorf("algebra: <%s> without both sides", n.Label)
	}
	l, err := PlanFromXML(firstChildElem(ln))
	if err != nil {
		return nil, nil, err
	}
	r, err := PlanFromXML(firstChildElem(rn))
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

func xattr(n *data.Node, name string) string {
	if c := n.Child("@" + name); c != nil && c.Atom != nil {
		return c.Atom.S
	}
	return ""
}

func firstChildElem(n *data.Node) *data.Node {
	for _, k := range n.Kids {
		if len(k.Label) > 0 && k.Label[0] != '@' {
			return k
		}
	}
	return nil
}

func fields(s string) []string {
	var out []string
	for _, f := range strings.Fields(s) {
		out = append(out, f)
	}
	return out
}

// MarshalPlan renders a plan as XML text.
func MarshalPlan(op Op) (string, error) {
	n, err := PlanToXML(op)
	if err != nil {
		return "", err
	}
	return xmlenc.Serialize(n), nil
}

// UnmarshalPlan parses a plan from XML text.
func UnmarshalPlan(src string) (Op, error) {
	n, err := xmlenc.Parse(src)
	if err != nil {
		return nil, err
	}
	return PlanFromXML(n)
}
