package algebra

import (
	"fmt"
	"strings"

	"repro/internal/data"
	"repro/internal/tab"
)

// Cons is a construction pattern: the specification consumed by the Tree
// operator (Figure 4) to build new nested XML structures out of a Tab. It
// supports grouping (the *(vars) primitive), Skolem functions (creating
// identified trees), and references to Skolem-identified trees.
type Cons struct {
	Label      string     // element label ("" for content positions)
	LabelVar   string     // label taken from a variable's value (~$l)
	Var        string     // splice a variable's value (atom, tree or sequence)
	Const      *data.Atom // constant leaf content
	Skolem     string     // Skolem function name: mint an identifier for this node
	SkolemArgs []string   // Skolem function arguments
	RefTo      string     // construct a reference to skolem RefTo(RefArgs...)
	RefArgs    []string
	Kids       []ConsItem
}

// ConsItem is one child of a construction pattern.
type ConsItem struct {
	C    *Cons
	Star bool     // one instance per group of rows
	Keys []string // explicit grouping keys *(keys); defaults to Skolem args or the vars below
}

// DirectVars returns the variables a construction references outside its
// starred children; they define the grouping keys of the enclosing level.
func (c *Cons) DirectVars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	var walk func(n *Cons)
	walk = func(n *Cons) {
		if n == nil {
			return
		}
		add(n.LabelVar)
		add(n.Var)
		for _, a := range n.SkolemArgs {
			add(a)
		}
		for _, a := range n.RefArgs {
			add(a)
		}
		for _, it := range n.Kids {
			if !it.Star {
				walk(it.C)
			}
		}
	}
	walk(c)
	return out
}

// AllVars returns every variable referenced anywhere in the construction.
func (c *Cons) AllVars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	var walk func(n *Cons)
	walk = func(n *Cons) {
		if n == nil {
			return
		}
		add(n.LabelVar)
		add(n.Var)
		for _, a := range n.SkolemArgs {
			add(a)
		}
		for _, a := range n.RefArgs {
			add(a)
		}
		for _, it := range n.Kids {
			for _, k := range it.Keys {
				add(k)
			}
			walk(it.C)
		}
	}
	walk(c)
	return out
}

// groupKeys returns the grouping keys of a starred item.
func (it ConsItem) groupKeys() []string {
	if len(it.Keys) > 0 {
		return it.Keys
	}
	if it.C != nil && len(it.C.SkolemArgs) > 0 {
		return it.C.SkolemArgs
	}
	return it.C.DirectVars()
}

// BuildForest evaluates the construction over a Tab: rows are partitioned
// by the root's direct variables (one tree per distinct binding), starred
// children by their grouping keys within the parent partition. Skolem
// identifiers are minted through the registry; the same (function, args)
// always yields the same identifier, letting separate rules fuse trees.
func (c *Cons) BuildForest(t *tab.Tab, reg *Skolems) (data.Forest, error) {
	cols := colIndex(t.Cols)
	parts := partition(t.Rows, cols, c.DirectVars())
	var out data.Forest
	for _, p := range parts {
		f, err := build(c, p, cols, reg)
		if err != nil {
			return nil, err
		}
		out = append(out, f...)
	}
	return out, nil
}

// partition splits rows by the values of the key columns, preserving
// first-seen order. With no keys it returns a single partition (possibly
// empty, in which case construction yields an empty skeleton).
func partition(rows []tab.Row, cols map[string]int, keys []string) [][]tab.Row {
	if len(keys) == 0 {
		return [][]tab.Row{rows}
	}
	var order []string
	groups := map[string][]tab.Row{}
	for _, r := range rows {
		var b strings.Builder
		for _, k := range keys {
			if i, ok := cols[k]; ok && i < len(r) {
				b.WriteString(r[i].Key())
			}
			b.WriteByte('\x00')
		}
		k := b.String()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	out := make([][]tab.Row, len(order))
	for i, k := range order {
		out[i] = groups[k]
	}
	return out
}

// build constructs the forest for one partition of rows.
func build(c *Cons, rows []tab.Row, cols map[string]int, reg *Skolems) (data.Forest, error) {
	cell := func(v string) tab.Cell {
		if len(rows) == 0 {
			return tab.Null()
		}
		if i, ok := cols[v]; ok && i < len(rows[0]) {
			return rows[0][i]
		}
		return tab.Null()
	}
	// Pure variable splice: expand the cell into nodes.
	if c.Var != "" && c.Label == "" && c.LabelVar == "" {
		return spliceCell(cell(c.Var)), nil
	}
	label := c.Label
	if c.LabelVar != "" {
		a, ok := cell(c.LabelVar).AsAtom()
		if !ok {
			return nil, fmt.Errorf("tree: label variable %s is not atomic", c.LabelVar)
		}
		label = a.Text()
	}
	if c.RefTo != "" {
		id := reg.ID(c.RefTo, keyCells(c.RefArgs, rows, cols))
		return data.Forest{data.RefNode(label, id)}, nil
	}
	n := data.Elem(label)
	if c.Skolem != "" {
		n.ID = reg.ID(c.Skolem, keyCells(c.SkolemArgs, rows, cols))
	}
	if c.Const != nil {
		a := *c.Const
		n.Atom = &a
		return data.Forest{n}, nil
	}
	if c.Var != "" { // labeled node spliced with a variable's content
		n.Kids = append(n.Kids, spliceCell(cell(c.Var))...)
	}
	for _, it := range c.Kids {
		if !it.Star {
			f, err := build(it.C, rows, cols, reg)
			if err != nil {
				return nil, err
			}
			n.Kids = append(n.Kids, f...)
			continue
		}
		for _, p := range partition(rows, cols, it.groupKeys()) {
			if len(p) == 0 {
				continue
			}
			f, err := build(it.C, p, cols, reg)
			if err != nil {
				return nil, err
			}
			n.Kids = append(n.Kids, f...)
		}
	}
	normalizeCons(n)
	return data.Forest{n}, nil
}

// normalizeCons collapses a node whose single child is an unlabeled leaf
// into a leaf (so `title: $t` yields <title>Nympheas</title>).
func normalizeCons(n *data.Node) {
	if len(n.Kids) != 1 || n.Kids[0].Label != "" || n.Kids[0].ID != "" {
		return
	}
	switch {
	case n.Kids[0].Atom != nil:
		n.Atom = n.Kids[0].Atom
		n.Kids = nil
	case n.Kids[0].IsRef():
		// `owner: &person($o)` yields <owner ref="..."/>, not a wrapper
		// around an unlabeled reference.
		n.Ref = n.Kids[0].Ref
		n.Kids = nil
	}
}

// spliceCell renders a cell as constructed content.
func spliceCell(c tab.Cell) data.Forest {
	switch c.Kind {
	case tab.CAtom:
		a := c.Atom
		return data.Forest{{Atom: &a}}
	case tab.CTree:
		return data.Forest{c.Tree.Clone()}
	case tab.CSeq:
		return c.Seq.Clone()
	case tab.CTab:
		return c.AsForest()
	default:
		return nil
	}
}

func keyCells(vars []string, rows []tab.Row, cols map[string]int) []tab.Cell {
	out := make([]tab.Cell, len(vars))
	for i, v := range vars {
		out[i] = tab.Null()
		if len(rows) > 0 {
			if j, ok := cols[v]; ok && j < len(rows[0]) {
				out[i] = rows[0][j]
			}
		}
	}
	return out
}

// String renders the construction in the syntax accepted by ParseCons.
func (c *Cons) String() string {
	var b strings.Builder
	c.write(&b)
	return b.String()
}

func (c *Cons) write(b *strings.Builder) {
	if c == nil {
		b.WriteString("<nil>")
		return
	}
	if c.Skolem != "" {
		fmt.Fprintf(b, "%s(%s) := ", c.Skolem, strings.Join(c.SkolemArgs, ", "))
	}
	if c.RefTo != "" {
		if c.Label != "" {
			b.WriteString(c.Label)
			b.WriteString(": ")
		}
		fmt.Fprintf(b, "&%s(%s)", c.RefTo, strings.Join(c.RefArgs, ", "))
		return
	}
	head := false
	switch {
	case c.LabelVar != "":
		b.WriteByte('~')
		b.WriteString(c.LabelVar)
		head = true
	case c.Label != "":
		b.WriteString(c.Label)
		head = true
	}
	switch {
	case c.Const != nil:
		if head {
			b.WriteString(": ")
		}
		if c.Const.Kind == data.KindString {
			fmt.Fprintf(b, "%q", c.Const.S)
		} else {
			b.WriteString(c.Const.Text())
		}
		return
	case c.Var != "":
		if head {
			b.WriteString(": ")
		}
		b.WriteString(c.Var)
		return
	}
	if !head {
		b.WriteString("%")
	}
	if len(c.Kids) == 0 {
		b.WriteString("[]")
		return
	}
	if len(c.Kids) == 1 && !c.Kids[0].Star && isSimpleCons(c.Kids[0].C) {
		b.WriteString(": ")
		c.Kids[0].C.write(b)
		return
	}
	b.WriteString("[ ")
	for i, it := range c.Kids {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteByte('*')
			if len(it.Keys) > 0 {
				fmt.Fprintf(b, "(%s) ", strings.Join(it.Keys, ", "))
			}
		}
		it.C.write(b)
	}
	b.WriteString(" ]")
}

func isSimpleCons(c *Cons) bool {
	return c != nil && c.Skolem == "" && len(c.Kids) == 0
}

// TreeOp is the Tree operator: the inverse frontier operation to Bind,
// generating a collection of trees from a Tab according to a construction
// pattern. Constructed identified trees are registered in the context's
// store so that references created by Skolem functions resolve.
type TreeOp struct {
	From   Op
	C      *Cons
	OutCol string // output column, default "$doc"
}

func (t *TreeOp) col() string {
	if t.OutCol == "" {
		return "$doc"
	}
	return t.OutCol
}

// Columns implements Op.
func (t *TreeOp) Columns() []string { return []string{t.col()} }

// Children implements Op.
func (t *TreeOp) Children() []Op { return []Op{t.From} }

// Detail implements Op.
func (t *TreeOp) Detail() string { return fmt.Sprintf("Tree(%s)", t.C) }

// Eval implements Op.
func (t *TreeOp) Eval(ctx *Context) (*tab.Tab, error) {
	in, err := EvalOp(t.From, ctx)
	if err != nil {
		return nil, err
	}
	forest, err := t.C.BuildForest(in, ctx.Skolem)
	if err != nil {
		return nil, err
	}
	out := tab.New(t.col())
	for _, n := range forest {
		ctx.Store.Register(n)
		out.Add(tab.TreeCell(n))
	}
	return out, nil
}
