package algebra

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/tab"
)

// figure1Works reproduces the XML collection of works of Figure 1.
func figure1Works() *data.Node {
	return data.Elem("works",
		data.Elem("work",
			data.Text("artist", "Claude Monet"),
			data.Text("title", "Nympheas"),
			data.Text("style", "Impressionist"),
			data.Text("size", "21 x 61"),
			data.Text("cplace", "Giverny"),
		),
		data.Elem("work",
			data.Text("artist", "Claude Monet"),
			data.Text("title", "Waterloo Bridge"),
			data.Text("style", "Impressionist"),
			data.Text("size", "29.2 x 46.4"),
			data.Elem("history", data.Text("technique", "Oil on canvas")),
		),
		data.Elem("work",
			data.Text("artist", "Edgar Degas"),
			data.Text("title", "Dancers"),
			data.Text("style", "Impressionist"),
			data.Text("size", "10 x 10"),
		),
	)
}

func worksCtx() *Context {
	ctx := NewContext()
	ctx.Catalog["artworks"] = data.Forest{figure1Works()}
	return ctx
}

func mustEval(t *testing.T, op Op, ctx *Context) *tab.Tab {
	t.Helper()
	res, err := op.Eval(ctx)
	if err != nil {
		t.Fatalf("eval %s: %v", op.Detail(), err)
	}
	return res
}

const fig4FilterSrc = `works[ *work[ artist: $a, title: $t, style: $s, size: $si, *($fields) ] ]`

func TestFigure4BindOperator(t *testing.T) {
	ctx := worksCtx()
	bind := &Bind{Doc: "artworks", F: filter.MustParse(fig4FilterSrc)}
	got := mustEval(t, bind, ctx)
	if got.Len() != 3 {
		t.Fatalf("rows = %d\n%s", got.Len(), got)
	}
	if strings.Join(got.Cols, " ") != "$a $t $s $si $fields" {
		t.Errorf("cols = %v", got.Cols)
	}
	if ctx.Stats.BindRows != 3 {
		t.Errorf("BindRows stat = %d", ctx.Stats.BindRows)
	}
}

func TestFigure4TreeOperator(t *testing.T) {
	// Tree regroups works per artist: artists[ artist*($a)[ name, titles ] ]
	ctx := worksCtx()
	plan := &TreeOp{
		From: &Bind{Doc: "artworks", F: filter.MustParse(fig4FilterSrc)},
		C:    MustParseCons(`artists[ *($a) artist[ name: $a, *($t) title: $t ] ]`),
	}
	got := mustEval(t, plan, ctx)
	if got.Len() != 1 {
		t.Fatalf("tree rows = %d", got.Len())
	}
	root := got.Rows[0][0].Tree
	if root.Label != "artists" || len(root.Kids) != 2 {
		t.Fatalf("unexpected tree: %s", root)
	}
	monet := root.Kids[0]
	if monet.Child("name").Atom.S != "Claude Monet" {
		t.Errorf("first artist = %v", monet.Child("name"))
	}
	if len(monet.Children("title")) != 2 {
		t.Errorf("Monet titles = %d, want 2", len(monet.Children("title")))
	}
	degas := root.Kids[1]
	if degas.Child("name").Atom.S != "Edgar Degas" || len(degas.Children("title")) != 1 {
		t.Errorf("second artist = %s", degas)
	}
}

func TestSelectProject(t *testing.T) {
	ctx := worksCtx()
	plan := &Project{
		From: &Select{
			From: &Bind{Doc: "artworks", F: filter.MustParse(fig4FilterSrc)},
			Pred: MustParseExpr(`$a = "Claude Monet"`),
		},
		Cols: []string{"$t"},
	}
	got := mustEval(t, plan, ctx)
	if got.Len() != 2 || len(got.Cols) != 1 {
		t.Fatalf("got %s", got)
	}
}

func TestSelectComparisonsAndNullSemantics(t *testing.T) {
	lit := tab.New("$y")
	lit.Add(tab.AtomCell(data.Int(1750)))
	lit.Add(tab.AtomCell(data.Int(1897)))
	lit.Add(tab.Null())
	plan := &Select{From: &Literal{lit}, Pred: MustParseExpr(`$y > 1800`)}
	got := mustEval(t, plan, NewContext())
	if got.Len() != 1 {
		t.Fatalf("rows = %d (null must compare false, not error)", got.Len())
	}
	if a, _ := got.Rows[0][0].AsAtom(); a.I != 1897 {
		t.Errorf("row = %v", got.Rows[0])
	}
}

func TestJoinHashAndNested(t *testing.T) {
	l := tab.New("$a", "$x")
	l.Add(tab.AtomCell(data.String("monet")), tab.AtomCell(data.Int(1)))
	l.Add(tab.AtomCell(data.String("degas")), tab.AtomCell(data.Int(2)))
	r := tab.New("$b", "$y")
	r.Add(tab.AtomCell(data.String("monet")), tab.AtomCell(data.Int(10)))
	r.Add(tab.AtomCell(data.String("monet")), tab.AtomCell(data.Int(11)))
	r.Add(tab.AtomCell(data.String("renoir")), tab.AtomCell(data.Int(12)))

	eq := &Join{L: &Literal{l}, R: &Literal{r}, Pred: MustParseExpr(`$a = $b`)}
	got := mustEval(t, eq, NewContext())
	if got.Len() != 2 {
		t.Fatalf("equi join rows = %d", got.Len())
	}
	// theta join falls back to nested loops
	theta := &Join{L: &Literal{l}, R: &Literal{r}, Pred: MustParseExpr(`$x < $y`)}
	got2 := mustEval(t, theta, NewContext())
	if got2.Len() != 6 {
		t.Fatalf("theta join rows = %d", got2.Len())
	}
	// mixed: equality plus residual
	mixed := &Join{L: &Literal{l}, R: &Literal{r}, Pred: MustParseExpr(`$a = $b AND $y > 10`)}
	got3 := mustEval(t, mixed, NewContext())
	if got3.Len() != 1 {
		t.Fatalf("mixed join rows = %d", got3.Len())
	}
}

func TestDJoinParameterPassing(t *testing.T) {
	// Left: works bindings; right: a Bind over the $fields parameter,
	// extracting cplace — the split form of Figure 7.
	ctx := worksCtx()
	plan := &DJoin{
		L: &Bind{Doc: "artworks", F: filter.MustParse(`works[ *work@$w[ title: $t, *($fields) ] ]`)},
		R: &Bind{Col: "$fields", F: filter.MustParse(`cplace: $cl`)},
	}
	got := mustEval(t, plan, ctx)
	if got.Len() != 1 {
		t.Fatalf("djoin rows = %d\n%s", got.Len(), got)
	}
	if a, _ := got.Rows[0][got.ColIndex("$cl")].AsAtom(); a.S != "Giverny" {
		t.Errorf("$cl = %v", got.Rows[0])
	}
}

func TestDJoinEquivalentToJoinWhenIndependent(t *testing.T) {
	l := tab.New("$x")
	l.Add(tab.AtomCell(data.Int(1)))
	l.Add(tab.AtomCell(data.Int(2)))
	r := tab.New("$y")
	r.Add(tab.AtomCell(data.Int(10)))
	dj := &DJoin{L: &Literal{l}, R: &Literal{r}}
	j := &Join{L: &Literal{l}, R: &Literal{r}, Pred: TrueExpr()}
	a := mustEval(t, dj, NewContext())
	b := mustEval(t, j, NewContext())
	if !a.EqualUnordered(b) {
		t.Errorf("DJoin over independent right must equal cross join:\n%s\nvs\n%s", a, b)
	}
}

func TestUnionIntersectDistinct(t *testing.T) {
	a := tab.New("$x")
	a.Add(tab.AtomCell(data.Int(1)))
	a.Add(tab.AtomCell(data.Int(2)))
	b := tab.New("$x")
	b.Add(tab.AtomCell(data.Int(2)))
	b.Add(tab.AtomCell(data.Int(3)))
	u := mustEval(t, &Union{&Literal{a}, &Literal{b}}, NewContext())
	if u.Len() != 4 {
		t.Errorf("union rows = %d", u.Len())
	}
	i := mustEval(t, &Intersect{&Literal{a}, &Literal{b}}, NewContext())
	if i.Len() != 1 {
		t.Errorf("intersect rows = %d", i.Len())
	}
	d := mustEval(t, &Distinct{&Union{&Literal{a}, &Literal{b}}}, NewContext())
	if d.Len() != 3 {
		t.Errorf("distinct rows = %d", d.Len())
	}
	// incompatible arities error
	c := tab.New("$x", "$y")
	if _, err := (&Union{&Literal{a}, &Literal{c}}).Eval(NewContext()); err == nil {
		t.Error("union of incompatible tabs must fail")
	}
	if _, err := (&Intersect{&Literal{a}, &Literal{c}}).Eval(NewContext()); err == nil {
		t.Error("intersect of incompatible tabs must fail")
	}
}

func TestGroupSortMap(t *testing.T) {
	ctx := worksCtx()
	bind := &Bind{Doc: "artworks", F: filter.MustParse(fig4FilterSrc)}
	g := mustEval(t, &Group{From: bind, Keys: []string{"$a"}, Into: "$works"}, ctx)
	if g.Len() != 2 {
		t.Errorf("groups = %d", g.Len())
	}
	s := mustEval(t, &Sort{From: bind, Cols: []string{"$t"}}, ctx)
	first, _ := s.Rows[0][s.ColIndex("$t")].AsAtom()
	if first.S != "Dancers" {
		t.Errorf("sort first = %v", first)
	}
	m := mustEval(t, &MapExpr{
		From: &Literal{tab.New("$p").Add(tab.AtomCell(data.Int(100)))},
		Col:  "$tax", E: MustParseExpr(`$p * 2`),
	}, NewContext())
	if a, _ := m.Rows[0][1].AsAtom(); a.I != 200 {
		t.Errorf("map value = %v", m.Rows[0][1])
	}
}

func TestSkolemIdentityAndFusion(t *testing.T) {
	reg := NewSkolems()
	id1 := reg.ID("artwork", []tab.Cell{tab.AtomCell(data.String("Nympheas"))})
	id2 := reg.ID("artwork", []tab.Cell{tab.AtomCell(data.String("Nympheas"))})
	id3 := reg.ID("artwork", []tab.Cell{tab.AtomCell(data.String("Dancers"))})
	if id1 != id2 {
		t.Error("same key must yield the same Skolem id")
	}
	if id1 == id3 {
		t.Error("different keys must yield different ids")
	}
	if reg.Len() != 2 {
		t.Errorf("registry size = %d", reg.Len())
	}
}

func TestTreeSkolemAndReferences(t *testing.T) {
	rows := tab.New("$t", "$o")
	rows.Add(tab.AtomCell(data.String("Nympheas")), tab.AtomCell(data.String("Doctor X")))
	rows.Add(tab.AtomCell(data.String("Nympheas")), tab.AtomCell(data.String("Mme Y")))
	ctx := NewContext()
	plan := &TreeOp{
		From: &Literal{rows},
		C: MustParseCons(`doc[ *artwork($t) := work[ title: $t, owners[ *owner: &person($o) ] ],
		                       *person($o) := person[ name: $o ] ]`),
	}
	got := mustEval(t, plan, ctx)
	root := got.Rows[0][0].Tree
	works := root.Children("work")
	persons := root.Children("person")
	if len(works) != 1 || len(persons) != 2 {
		t.Fatalf("works=%d persons=%d\n%s", len(works), len(persons), root.Indent())
	}
	if works[0].ID == "" {
		t.Error("Skolem must identify the work")
	}
	owners := works[0].Child("owners")
	if len(owners.Kids) != 2 || !owners.Kids[0].IsRef() {
		t.Fatalf("owners = %s", owners)
	}
	// the reference resolves to the person with the same Skolem key
	target := ctx.Store.Lookup(owners.Kids[0].Ref)
	if target == nil || target.Child("name").Atom.S != "Doctor X" {
		t.Errorf("reference target = %v", target)
	}
}

func TestTreeRootPerRow(t *testing.T) {
	// MAKE $t — one result per distinct binding.
	rows := tab.New("$t")
	rows.Add(tab.AtomCell(data.String("A")))
	rows.Add(tab.AtomCell(data.String("B")))
	rows.Add(tab.AtomCell(data.String("A")))
	got := mustEval(t, &TreeOp{From: &Literal{rows}, C: MustParseCons(`title: $t`)}, NewContext())
	if got.Len() != 2 {
		t.Fatalf("rows = %d (distinct grouping)", got.Len())
	}
	if got.Rows[0][0].Tree.Atom.S != "A" {
		t.Errorf("first = %v", got.Rows[0][0])
	}
}

func TestTreeSpliceSeq(t *testing.T) {
	rows := tab.New("$t", "$fields")
	rows.Add(tab.AtomCell(data.String("W")),
		tab.SeqCell(data.Forest{data.Text("cplace", "Giverny"), data.Text("note", "x")}))
	got := mustEval(t, &TreeOp{From: &Literal{rows},
		C: MustParseCons(`work[ title: $t, more: $fields ]`)}, NewContext())
	more := got.Rows[0][0].Tree.Child("more")
	if len(more.Kids) != 2 || more.Kids[0].Label != "cplace" {
		t.Errorf("more = %s", more)
	}
}

func TestTreeLabelVariable(t *testing.T) {
	rows := tab.New("$l", "$v")
	rows.Add(tab.AtomCell(data.String("cplace")), tab.AtomCell(data.String("Giverny")))
	got := mustEval(t, &TreeOp{From: &Literal{rows}, C: MustParseCons(`~$l: $v`)}, NewContext())
	n := got.Rows[0][0].Tree
	if n.Label != "cplace" || n.Atom.S != "Giverny" {
		t.Errorf("constructed = %s", n)
	}
}

func TestTreeEmptyInput(t *testing.T) {
	got := mustEval(t, &TreeOp{From: &Literal{tab.New("$t")},
		C: MustParseCons(`doc[ *title: $t ]`)}, NewContext())
	if got.Len() != 1 {
		t.Fatalf("rows = %d (empty doc skeleton)", got.Len())
	}
	if n := got.Rows[0][0].Tree; n.Label != "doc" || len(n.Kids) != 0 {
		t.Errorf("skeleton = %s", n)
	}
}

type fakeSource struct {
	name   string
	docs   map[string]data.Forest
	pushed []Op
	result *tab.Tab
}

func (f *fakeSource) Name() string { return f.name }
func (f *fakeSource) Documents() []string {
	var out []string
	for d := range f.docs {
		out = append(out, d)
	}
	return out
}
func (f *fakeSource) Fetch(doc string) (data.Forest, error) { return f.docs[doc], nil }
func (f *fakeSource) Push(plan Op, params map[string]tab.Cell) (*tab.Tab, error) {
	f.pushed = append(f.pushed, plan)
	return f.result, nil
}

func TestSourceQueryAndStats(t *testing.T) {
	res := tab.New("$t")
	res.Add(tab.AtomCell(data.String("Nympheas")))
	src := &fakeSource{name: "o2", docs: map[string]data.Forest{"artifacts": {figure1Works()}}, result: res}
	ctx := NewContext()
	ctx.Sources["o2"] = src
	q := &SourceQuery{Source: "o2", Plan: &Literal{res}}
	got := mustEval(t, q, ctx)
	if got.Len() != 1 || len(src.pushed) != 1 {
		t.Fatalf("push failed: %v", got)
	}
	if ctx.Stats.SourcePushes != 1 || ctx.Stats.TuplesShipped != 1 || ctx.Stats.BytesShipped == 0 {
		t.Errorf("stats = %+v", ctx.Stats)
	}
	// Doc resolution through a source counts a fetch.
	d := &Doc{Name: "artifacts"}
	if got := mustEval(t, d, ctx); got.Len() != 1 {
		t.Errorf("doc rows = %d", got.Len())
	}
	if ctx.Stats.SourceFetches != 1 {
		t.Errorf("fetches = %d", ctx.Stats.SourceFetches)
	}
	if _, err := (&Doc{Name: "nope"}).Eval(ctx); err == nil {
		t.Error("unknown doc must fail")
	}
	if _, err := (&SourceQuery{Source: "nope", Plan: q.Plan}).Eval(ctx); err == nil {
		t.Error("unknown source must fail")
	}
}

func TestExprEval(t *testing.T) {
	cols := map[string]int{"$x": 0, "$y": 1}
	row := tab.Row{tab.AtomCell(data.Int(3)), tab.AtomCell(data.Float(1.5))}
	ctx := NewContext()
	cases := []struct {
		src  string
		want string
	}{
		{`$x + 1`, "4"},
		{`$x - 1`, "2"},
		{`$x * 2`, "6"},
		{`$x / 2`, "1.5"},
		{`$x + $y`, "4.5"},
		{`-$x`, "-3"},
		{`$x = 3`, "true"},
		{`$x != 3`, "false"},
		{`$x <= 3 AND $y < 2`, "true"},
		{`$x > 3 OR $y >= 1.5`, "true"},
		{`NOT ($x = 3)`, "false"},
		{`true`, "true"},
		{`false OR true`, "true"},
		{`"a" = "a"`, "true"},
	}
	for _, c := range cases {
		e := MustParseExpr(c.src)
		v, err := e.Eval(ctx, cols, row)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		a, _ := v.AsAtom()
		if a.Text() != c.want {
			t.Errorf("%s = %s, want %s", c.src, a.Text(), c.want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	cols := map[string]int{"$s": 0}
	row := tab.Row{tab.AtomCell(data.String("x"))}
	ctx := NewContext()
	for _, src := range []string{`$s + 1`, `$missing = 1`, `$s / 0`, `unknownfn($s)`} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("parse %s: %v", src, err)
			continue
		}
		if _, err := e.Eval(ctx, cols, row); err == nil {
			t.Errorf("%s should fail at eval", src)
		}
	}
	if _, err := ParseExpr(`1 +`); err == nil {
		t.Error("dangling operator must fail")
	}
	if _, err := ParseExpr(`(1`); err == nil {
		t.Error("unbalanced paren must fail")
	}
	if _, err := ParseExpr(`1 2`); err == nil {
		t.Error("trailing input must fail")
	}
	if _, err := ParseExpr(`name`); err == nil {
		t.Error("bare name must fail (functions need parentheses)")
	}
}

func TestCallFunction(t *testing.T) {
	ctx := NewContext()
	ctx.Funcs["double"] = func(args []tab.Cell) (tab.Cell, error) {
		a, _ := args[0].AsAtom()
		return tab.AtomCell(data.Int(a.I * 2)), nil
	}
	e := MustParseExpr(`double($x)`)
	v, err := e.Eval(ctx, map[string]int{"$x": 0}, tab.Row{tab.AtomCell(data.Int(21))})
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := v.AsAtom(); a.I != 42 {
		t.Errorf("double = %v", a)
	}
	if ctx.Stats.FuncCalls != 1 {
		t.Errorf("FuncCalls = %d", ctx.Stats.FuncCalls)
	}
}

func TestParamFallback(t *testing.T) {
	ctx := NewContext()
	ctx.Params = map[string]tab.Cell{"$p": tab.AtomCell(data.Int(7))}
	v, err := Var{"$p"}.Eval(ctx, map[string]int{}, tab.Row{})
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := v.AsAtom(); a.I != 7 {
		t.Errorf("param = %v", a)
	}
}

func TestConsParsePrintStability(t *testing.T) {
	cases := []string{
		`doc[ *artwork($t, $c) := work[ title: $t, artist: $a ] ]`,
		`artists[ *($a) artist[ name: $a, *($t) title: $t ] ]`,
		`work[ owners[ *owner: &person($o) ] ]`,
		`title: $t`,
		`~$l: $v`,
		`work[ kind: "painting", year: 1897, rate: 1.5 ]`,
		`doc[]`,
	}
	for _, src := range cases {
		c, err := ParseCons(src)
		if err != nil {
			t.Errorf("ParseCons(%q): %v", src, err)
			continue
		}
		printed := c.String()
		c2, err := ParseCons(printed)
		if err != nil {
			t.Errorf("reparse %q -> %q: %v", src, printed, err)
			continue
		}
		if c2.String() != printed {
			t.Errorf("unstable: %q -> %q -> %q", src, printed, c2.String())
		}
	}
}

func TestConsParseErrors(t *testing.T) {
	bad := []string{
		``, `doc[`, `&name`, `&name(`, `*$x`, `doc[ * ]`,
		`f($x) :=`, `doc[ x: ]`, `doc] y`, `~notavar`,
	}
	for _, src := range bad {
		if _, err := ParseCons(src); err == nil {
			t.Errorf("ParseCons(%q) should fail", src)
		}
	}
}

func TestDescribePlan(t *testing.T) {
	plan := &Select{
		From: &Join{
			L:    &Bind{Doc: "artifacts", F: filter.MustParse(`set[ *%[ title: $t ] ]`)},
			R:    &Bind{Doc: "artworks", F: filter.MustParse(`works[ *work[ title: $t2 ] ]`)},
			Pred: MustParseExpr(`$t = $t2`),
		},
		Pred: MustParseExpr(`$t != "x"`),
	}
	s := Describe(plan)
	for _, frag := range []string{"Select", "Join", "Bind(artifacts", "Bind(artworks"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Describe missing %q:\n%s", frag, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Errorf("plan lines = %d", len(lines))
	}
	count := 0
	Walk(plan, func(Op) bool { count++; return true })
	if count != 4 {
		t.Errorf("Walk visited %d ops", count)
	}
}

func TestPropertyHashJoinEqualsNestedLoop(t *testing.T) {
	f := func(ls, rs []uint8) bool {
		l := tab.New("$a")
		for _, v := range ls {
			l.Add(tab.AtomCell(data.Int(int64(v % 8))))
		}
		r := tab.New("$b")
		for _, v := range rs {
			r.Add(tab.AtomCell(data.Int(int64(v % 8))))
		}
		hash := &Join{L: &Literal{l}, R: &Literal{r}, Pred: MustParseExpr(`$a = $b`)}
		// Force nested loops via a semantically identical non-Var equality.
		nested := &Join{L: &Literal{l}, R: &Literal{r}, Pred: MustParseExpr(`$a + 0 = $b + 0`)}
		a, err1 := hash.Eval(NewContext())
		b, err2 := nested.Eval(NewContext())
		if err1 != nil || err2 != nil {
			return false
		}
		return a.EqualUnordered(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDJoinMatchesJoinOnParams(t *testing.T) {
	// DJoin(L, σ_{$b=$a}(R)) ≡ Join(L, R, $a=$b) — the information-passing
	// equivalence underlying Section 5.3.
	f := func(ls, rs []uint8) bool {
		l := tab.New("$a")
		for _, v := range ls {
			l.Add(tab.AtomCell(data.Int(int64(v % 5))))
		}
		r := tab.New("$b")
		for _, v := range rs {
			r.Add(tab.AtomCell(data.Int(int64(v % 5))))
		}
		dj := &DJoin{L: &Literal{l}, R: &Select{From: &Literal{r}, Pred: MustParseExpr(`$b = $a`)}}
		j := &Join{L: &Literal{l}, R: &Literal{r}, Pred: MustParseExpr(`$a = $b`)}
		a, err1 := dj.Eval(NewContext())
		b, err2 := j.Eval(NewContext())
		if err1 != nil || err2 != nil {
			return false
		}
		return a.EqualUnordered(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
