package algebra

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// UnavailableError marks a source call that failed because the source is
// unreachable — a transport failure after retries, an expired call budget,
// or a circuit breaker refusing the call while the source cools down. The
// mediator's per-source guards wrap transient failures in it; graceful
// degradation (exec.Options.AllowPartial) recognizes it and substitutes an
// empty input instead of failing the whole query, mirroring the paper's
// observation that Skolem-connected partial results still compose.
type UnavailableError struct {
	Source string
	Err    error
}

// Error implements error.
func (e *UnavailableError) Error() string {
	return fmt.Sprintf("source %s unavailable: %v", e.Source, e.Err)
}

// Unwrap exposes the underlying failure.
func (e *UnavailableError) Unwrap() error { return e.Err }

// SourceFailure is one entry of a partial-result report: a source the
// query touched but could not reach, with the failure that made it
// unreachable.
type SourceFailure struct {
	Source string
	Err    error
}

// PartialReport collects the per-source failures that graceful degradation
// converted into empty inputs instead of query failure. It is shared (not
// forked) across concurrent workers and thread-safe. A non-empty report
// means the result is a lower bound: every returned row is correct, but
// rows depending on the failed sources are missing.
type PartialReport struct {
	mu    sync.Mutex
	fails []SourceFailure
	seen  map[string]bool
}

// NewPartialReport returns an empty report.
func NewPartialReport() *PartialReport {
	return &PartialReport{seen: map[string]bool{}}
}

// Record notes a degraded source. One entry is kept per source: a dead
// source touched by many plan branches reports once.
func (r *PartialReport) Record(source string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[source] {
		return
	}
	r.seen[source] = true
	r.fails = append(r.fails, SourceFailure{Source: source, Err: err})
}

// Failures returns the recorded failures in first-recorded order.
func (r *PartialReport) Failures() []SourceFailure {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SourceFailure(nil), r.fails...)
}

// Len reports the number of degraded sources.
func (r *PartialReport) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.fails)
}

// RetryReporter is implemented by sources whose transport layer retries
// transient failures (the wire client): TakeRetryStats drains the counters
// accumulated since the last call. Evaluation invokes it after every
// source call, folding the counts into Stats.Retries/Stats.Redials — a
// retried exchange therefore never inflates SourcePushes or SourceFetches;
// it only shows up in the dedicated counters.
type RetryReporter interface {
	TakeRetryStats() (retries, redials int)
}

// drainRetryStats folds a source's pending retry counters into the
// context's Stats; called after every fetch/push/pushbatch, on success and
// failure alike (the retries preceding a final failure count too). Under
// tracing, the ambient span records the same counts — so a profile shows
// which operator's source calls needed recovery.
func drainRetryStats(ctx *Context, src Source) {
	if rr, ok := src.(RetryReporter); ok {
		r, d := rr.TakeRetryStats()
		ctx.Stats.Retries += r
		ctx.Stats.Redials += d
		if (r > 0 || d > 0) && ctx.Trace != nil {
			ctx.Trace.AddCounts(obs.Counts{Retries: r, Redials: d})
			ctx.Trace.Annotate("recovered", fmt.Sprintf("%d retries, %d redials", r, d))
		}
	}
}
