package algebra

import (
	"container/list"
	"strings"
	"sync"

	"repro/internal/tab"
)

// ResultCache is a bounded, thread-safe LRU cache of wrapper results. The
// mediator installs one shared instance so repeated pushes of the same
// subplan under the same parameter bindings — across the rows of one DJoin
// or across whole queries — are answered locally instead of paying another
// source round trip. Keys combine the source name, the canonical plan
// encoding and the binding values (see CacheKey); cached tabs are shared,
// never copied, relying on the repo-wide convention that result rows are
// treated as immutable.
//
// The cache assumes quiescent sources (the paper's read-only integration
// scenario): it has no invalidation beyond LRU eviction.
type ResultCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently used
	byKey map[string]*list.Element
}

type cacheSlot struct {
	key string
	t   *tab.Tab
}

// NewResultCache returns a cache bounded to the given number of entries;
// a bound below 1 disables caching (nil is returned, and a nil *ResultCache
// is safe to use everywhere).
func NewResultCache(entries int) *ResultCache {
	if entries < 1 {
		return nil
	}
	return &ResultCache{cap: entries, lru: list.New(), byKey: map[string]*list.Element{}}
}

// Get returns the cached result for key, marking it most recently used.
func (c *ResultCache) Get(key string) (*tab.Tab, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheSlot).t, true
}

// Put stores a result under key, reporting whether an older entry was
// evicted to make room.
func (c *ResultCache) Put(key string, t *tab.Tab) (evicted bool) {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheSlot).t = t
		c.lru.MoveToFront(el)
		return false
	}
	c.byKey[key] = c.lru.PushFront(&cacheSlot{key: key, t: t})
	if c.lru.Len() <= c.cap {
		return false
	}
	oldest := c.lru.Back()
	c.lru.Remove(oldest)
	delete(c.byKey, oldest.Value.(*cacheSlot).key)
	return true
}

// Len reports the number of cached entries.
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// CacheKey builds a cache key from a source name, a canonical plan encoding
// and a parameter-binding fragment (see ParamsKey). The components are
// length-separated by construction: source names contain no NUL and the
// plan encoding is XML.
func CacheKey(source, planEnc, paramsKey string) string {
	return source + "\x00" + planEnc + "\x00" + paramsKey
}

// ParamsKey renders the values of the given variables (the plan's free
// variables, sorted) under the binding lookup as a canonical fragment for
// CacheKey. Absent variables are skipped — by construction a variable is
// either bound for every row of a DJoin batch or for none, so absence never
// aliases a binding.
func ParamsKey(vars []string, params map[string]tab.Cell) string {
	var b strings.Builder
	for _, v := range vars {
		c, ok := params[v]
		if !ok {
			continue
		}
		b.WriteString(v)
		b.WriteByte('=')
		b.WriteString(c.Key())
		b.WriteByte('\x00')
	}
	return b.String()
}
