// Package algebra implements the YAT XML algebra of Section 3: the Bind and
// Tree operators newly introduced for tree structures, the classical
// operators inherited from the object algebra (Select, Project, Join, DJoin,
// Union, Intersect, Group, Sort, Map), Skolem functions, and SourceQuery
// nodes that push subplans to wrapped sources. Plans are operator trees
// evaluated against a Context holding the catalog of named inputs, the
// identifier store, the Skolem registry and external functions.
package algebra

import (
	"fmt"
	"strings"

	"repro/internal/data"
	"repro/internal/tab"
)

// Expr is a side-effect-free expression evaluated against one row.
type Expr interface {
	// Eval computes the expression value for a row; cols maps column names
	// to row positions. Free variables not bound by the row are looked up
	// in the context parameters (information passing through DJoin).
	Eval(ctx *Context, cols map[string]int, row tab.Row) (tab.Cell, error)
	// Vars returns the column names the expression reads.
	Vars() []string
	// String renders the expression in the textual syntax accepted by
	// ParseExpr.
	String() string
}

// Var reads a column (or a DJoin parameter when the column is absent).
type Var struct{ Name string }

// Eval implements Expr.
func (v Var) Eval(ctx *Context, cols map[string]int, row tab.Row) (tab.Cell, error) {
	if i, ok := cols[v.Name]; ok && i < len(row) {
		return row[i], nil
	}
	if ctx != nil {
		if c, ok := ctx.Params[v.Name]; ok {
			return c, nil
		}
	}
	return tab.Null(), fmt.Errorf("algebra: unbound variable %s", v.Name)
}

// Vars implements Expr.
func (v Var) Vars() []string { return []string{v.Name} }

// String implements Expr.
func (v Var) String() string { return v.Name }

// Const is a literal atom.
type Const struct{ Atom data.Atom }

// Eval implements Expr.
func (c Const) Eval(*Context, map[string]int, tab.Row) (tab.Cell, error) {
	return tab.AtomCell(c.Atom), nil
}

// Vars implements Expr.
func (c Const) Vars() []string { return nil }

// String implements Expr.
func (c Const) String() string {
	if c.Atom.Kind == data.KindString {
		return fmt.Sprintf("%q", c.Atom.S)
	}
	return c.Atom.Text()
}

// CmpOp enumerates comparison operators.
type CmpOp string

// Comparison operators.
const (
	OpEq CmpOp = "="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Cmp compares two sub-expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c Cmp) Eval(ctx *Context, cols map[string]int, row tab.Row) (tab.Cell, error) {
	l, err := c.L.Eval(ctx, cols, row)
	if err != nil {
		return tab.Null(), err
	}
	r, err := c.R.Eval(ctx, cols, row)
	if err != nil {
		return tab.Null(), err
	}
	if l.IsNull() || r.IsNull() {
		// Comparisons against absent optional fields are false, never errors:
		// semistructured data routinely misses fields.
		return tab.AtomCell(data.Bool(false)), nil
	}
	var res bool
	switch c.Op {
	case OpEq:
		res = l.Equal(r)
	case OpNe:
		res = !l.Equal(r)
	default:
		la, lok := l.AsAtom()
		ra, rok := r.AsAtom()
		if !lok || !rok {
			return tab.Null(), fmt.Errorf("algebra: ordered comparison %s on non-atomic cells", c.Op)
		}
		cmp := la.Compare(ra)
		switch c.Op {
		case OpLt:
			res = cmp < 0
		case OpLe:
			res = cmp <= 0
		case OpGt:
			res = cmp > 0
		case OpGe:
			res = cmp >= 0
		default:
			return tab.Null(), fmt.Errorf("algebra: unknown comparison %q", c.Op)
		}
	}
	return tab.AtomCell(data.Bool(res)), nil
}

// Vars implements Expr.
func (c Cmp) Vars() []string { return append(c.L.Vars(), c.R.Vars()...) }

// String implements Expr.
func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// And is conjunction.
type And struct{ L, R Expr }

// Eval implements Expr.
func (a And) Eval(ctx *Context, cols map[string]int, row tab.Row) (tab.Cell, error) {
	l, err := truth(a.L, ctx, cols, row)
	if err != nil {
		return tab.Null(), err
	}
	if !l {
		return tab.AtomCell(data.Bool(false)), nil
	}
	r, err := truth(a.R, ctx, cols, row)
	if err != nil {
		return tab.Null(), err
	}
	return tab.AtomCell(data.Bool(r)), nil
}

// Vars implements Expr.
func (a And) Vars() []string { return append(a.L.Vars(), a.R.Vars()...) }

// String implements Expr.
func (a And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is disjunction.
type Or struct{ L, R Expr }

// Eval implements Expr.
func (o Or) Eval(ctx *Context, cols map[string]int, row tab.Row) (tab.Cell, error) {
	l, err := truth(o.L, ctx, cols, row)
	if err != nil {
		return tab.Null(), err
	}
	if l {
		return tab.AtomCell(data.Bool(true)), nil
	}
	r, err := truth(o.R, ctx, cols, row)
	if err != nil {
		return tab.Null(), err
	}
	return tab.AtomCell(data.Bool(r)), nil
}

// Vars implements Expr.
func (o Or) Vars() []string { return append(o.L.Vars(), o.R.Vars()...) }

// String implements Expr.
func (o Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not is negation.
type Not struct{ E Expr }

// Eval implements Expr.
func (n Not) Eval(ctx *Context, cols map[string]int, row tab.Row) (tab.Cell, error) {
	v, err := truth(n.E, ctx, cols, row)
	if err != nil {
		return tab.Null(), err
	}
	return tab.AtomCell(data.Bool(!v)), nil
}

// Vars implements Expr.
func (n Not) Vars() []string { return n.E.Vars() }

// String implements Expr.
func (n Not) String() string { return fmt.Sprintf("NOT (%s)", n.E) }

// Call invokes an external function registered in the context, e.g. the
// Wais contains predicate or the O₂ current_price method (Section 4).
type Call struct {
	Name string
	Args []Expr
}

// Eval implements Expr.
func (c Call) Eval(ctx *Context, cols map[string]int, row tab.Row) (tab.Cell, error) {
	if ctx == nil || ctx.Funcs == nil {
		return tab.Null(), fmt.Errorf("algebra: no function registry for %s", c.Name)
	}
	fn, ok := ctx.Funcs[c.Name]
	if !ok {
		return tab.Null(), fmt.Errorf("algebra: unknown function %s", c.Name)
	}
	args := make([]tab.Cell, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(ctx, cols, row)
		if err != nil {
			return tab.Null(), err
		}
		args[i] = v
	}
	ctx.Stats.FuncCalls++
	return fn(args)
}

// Vars implements Expr.
func (c Call) Vars() []string {
	var out []string
	for _, a := range c.Args {
		out = append(out, a.Vars()...)
	}
	return out
}

// String implements Expr.
func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}

// ArithOp enumerates arithmetic operators.
type ArithOp string

// Arithmetic operators.
const (
	OpAdd ArithOp = "+"
	OpSub ArithOp = "-"
	OpMul ArithOp = "×"
	OpDiv ArithOp = "/"
)

// Arith computes numeric arithmetic over two sub-expressions.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr.
func (a Arith) Eval(ctx *Context, cols map[string]int, row tab.Row) (tab.Cell, error) {
	l, err := a.L.Eval(ctx, cols, row)
	if err != nil {
		return tab.Null(), err
	}
	r, err := a.R.Eval(ctx, cols, row)
	if err != nil {
		return tab.Null(), err
	}
	la, lok := l.AsAtom()
	ra, rok := r.AsAtom()
	if !lok || !rok || !la.IsNumeric() || !ra.IsNumeric() {
		return tab.Null(), fmt.Errorf("algebra: arithmetic %s on non-numeric cells", a.Op)
	}
	if la.Kind == data.KindInt && ra.Kind == data.KindInt && a.Op != OpDiv {
		var v int64
		switch a.Op {
		case OpAdd:
			v = la.I + ra.I
		case OpSub:
			v = la.I - ra.I
		case OpMul:
			v = la.I * ra.I
		}
		return tab.AtomCell(data.Int(v)), nil
	}
	x, y := la.AsFloat(), ra.AsFloat()
	var v float64
	switch a.Op {
	case OpAdd:
		v = x + y
	case OpSub:
		v = x - y
	case OpMul:
		v = x * y
	case OpDiv:
		if y == 0 {
			return tab.Null(), fmt.Errorf("algebra: division by zero")
		}
		v = x / y
	default:
		return tab.Null(), fmt.Errorf("algebra: unknown arithmetic %q", a.Op)
	}
	return tab.AtomCell(data.Float(v)), nil
}

// Vars implements Expr.
func (a Arith) Vars() []string { return append(a.L.Vars(), a.R.Vars()...) }

// String implements Expr.
func (a Arith) String() string {
	op := string(a.Op)
	if a.Op == OpMul {
		op = "*"
	}
	return fmt.Sprintf("(%s %s %s)", a.L, op, a.R)
}

// truth evaluates e and coerces to boolean.
func truth(e Expr, ctx *Context, cols map[string]int, row tab.Row) (bool, error) {
	v, err := e.Eval(ctx, cols, row)
	if err != nil {
		return false, err
	}
	a, ok := v.AsAtom()
	if !ok || a.Kind != data.KindBool {
		return false, fmt.Errorf("algebra: predicate %s did not evaluate to a boolean", e)
	}
	return a.B, nil
}

// Func is an external function callable from expressions.
type Func func(args []tab.Cell) (tab.Cell, error)

// TrueExpr returns a constant-true predicate.
func TrueExpr() Expr { return Const{Atom: data.Bool(true)} }

// Eq builds L = R.
func Eq(l, r Expr) Expr { return Cmp{Op: OpEq, L: l, R: r} }

// VarEq builds $l = $r over two columns.
func VarEq(l, r string) Expr { return Eq(Var{l}, Var{r}) }

// Conj folds a list of predicates into a conjunction (true when empty).
func Conj(es ...Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = And{out, e}
		}
	}
	if out == nil {
		return TrueExpr()
	}
	return out
}

// SplitConj flattens nested conjunctions into a list of conjuncts.
func SplitConj(e Expr) []Expr {
	if a, ok := e.(And); ok {
		return append(SplitConj(a.L), SplitConj(a.R)...)
	}
	if c, ok := e.(Const); ok && c.Atom.Kind == data.KindBool && c.Atom.B {
		return nil
	}
	return []Expr{e}
}

// EqColumns recognises an equality between two columns, returning the pair;
// used by the Join operator to choose a hash strategy and by the optimizer
// for Join/DJoin reasoning.
func EqColumns(e Expr) (string, string, bool) {
	c, ok := e.(Cmp)
	if !ok || c.Op != OpEq {
		return "", "", false
	}
	l, lok := c.L.(Var)
	r, rok := c.R.(Var)
	if !lok || !rok {
		return "", "", false
	}
	return l.Name, r.Name, true
}
